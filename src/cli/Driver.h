//===-- cli/Driver.h - Testable command-line driver -----------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole mahjong-cli command surface as a library function, so the
/// test suite can drive every command and assert on exit codes and output
/// without spawning processes. tools/mahjong-cli.cpp is a two-line main()
/// over runCli().
///
/// Exit code contract (stable, scripts may rely on it):
///   0  success
///   1  I/O error (unreadable input, unwritable output)
///   2  usage error (unknown command, unknown/malformed flag, bad arity)
///   3  parse error (.mj source, .mjsnap decode, query text, workload spec)
///   4  analysis error (e.g. the time budget was exceeded)
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CLI_DRIVER_H
#define MAHJONG_CLI_DRIVER_H

#include <ostream>

namespace mahjong::cli {

enum ExitCode : int {
  ExitOk = 0,
  ExitIOError = 1,
  ExitUsage = 2,
  ExitParseError = 3,
  ExitAnalysisError = 4,
};

/// Runs one CLI invocation. \p Argv follows main() conventions
/// (Argv[0] is the program name). Normal output goes to \p Out,
/// diagnostics to \p Err.
int runCli(int Argc, const char *const *Argv, std::ostream &Out,
           std::ostream &Err);

} // namespace mahjong::cli

#endif // MAHJONG_CLI_DRIVER_H
