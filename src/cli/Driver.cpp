//===-- cli/Driver.cpp - Testable command-line driver ------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cli/Driver.h"

#include "clients/Clients.h"
#include "core/GraphExport.h"
#include "core/Mahjong.h"
#include "ir/Parser.h"
#include "ir/PrettyPrinter.h"
#include "net/Protocol.h"
#include "net/SnapshotServer.h"
#include "net/SocketTraffic.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pta/FactsExport.h"
#include "serve/QueryEngine.h"
#include "serve/Snapshot.h"
#include "serve/Traffic.h"
#include "support/Timer.h"
#include "workload/BenchmarkPrograms.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace mahjong;
using namespace mahjong::cli;

namespace {

int usage(std::ostream &Err) {
  Err << "usage: mahjong-cli <command> [options]\n"
         "commands:\n"
         "  analyze <file.mj> [--analysis ci|2cs|2obj|3obj|2type|3type]\n"
         "                    [--heap site|type|mahjong] [--budget SECONDS]\n"
         "                    [--solver auto|wave|naive|parallel] "
         "[--threads N]\n"
         "                    [--facts DIR] [--save-snapshot FILE.mjsnap]\n"
         "                    [--trace-out FILE.json] [--metrics-out FILE]\n"
         "                    [--stats-json FILE]\n"
         "  gen <profile> <out.mj> [--scale S]   write a workload profile "
         "as .mj source\n"
         "  query <file.mjsnap> <query...>   e.g. query s.mjsnap points-to "
         "Main.main/0::x (or: stats)\n"
         "  serve <file.mjsnap> [--listen HOST:PORT] [--max-conns N]\n"
         "                    [--max-inflight N] [--workers N] "
         "[--swap-fifo PATH]\n"
         "                    [--duration SECONDS] [--metrics-out FILE]\n"
         "  serve-bench <file.mjsnap> [--spec FILE] [--smoke] "
         "[--heartbeat SECONDS]\n"
         "                    [--connect HOST:PORT] [--metrics-out FILE]\n"
         "  merge-report <file.mj>\n"
         "  dot-fpg <file.mj> <objIndex>\n"
         "  dot-dfa <file.mj> <objIndex>\n"
         "  dot-callgraph <file.mj>\n"
         "exit codes: 0 ok, 1 io error, 2 usage, 3 parse error, "
         "4 analysis error\n";
  return ExitUsage;
}

/// Flag cursor distinguishing "unknown flag" from "flag missing its
/// value", so both diagnostics can name the offending flag.
class FlagParser {
public:
  FlagParser(int Argc, const char *const *Argv, int First,
             std::ostream &Err)
      : Argc(Argc), Argv(Argv), I(First), Err(Err) {}

  bool done() const { return I >= Argc; }
  const char *current() const { return Argv[I]; }

  /// If the current flag is \p Flag, consumes it and its value.
  bool take(const char *Flag, std::string &Value) {
    if (std::strcmp(Argv[I], Flag) != 0)
      return false;
    if (I + 1 >= Argc) {
      Err << "error: flag '" << Flag << "' requires a value\n";
      Malformed = true;
      return false;
    }
    Value = Argv[++I];
    ++I;
    return true;
  }

  /// If the current flag is \p Flag (valueless), consumes it.
  bool takeBare(const char *Flag) {
    if (std::strcmp(Argv[I], Flag) != 0)
      return false;
    ++I;
    return true;
  }

  /// True once a malformed flag has been reported via take().
  bool malformed() const { return Malformed; }

  /// Reports the current token as unknown and fails the parse.
  int unknown() {
    Err << "error: unknown option '" << Argv[I] << "'\n";
    return ExitUsage;
  }

private:
  int Argc;
  const char *const *Argv;
  int I;
  std::ostream &Err;
  bool Malformed = false;
};

std::unique_ptr<ir::Program> load(const char *Path, std::ostream &Err,
                                  int &Exit) {
  std::ifstream In(Path);
  if (!In) {
    Err << "error: cannot open '" << Path << "'\n";
    Exit = ExitIOError;
    return nullptr;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string ParseErr;
  auto P = ir::parseProgram(Buf.str(), ParseErr);
  if (!P) {
    Err << Path << ":" << ParseErr << ": parse error\n";
    Exit = ExitParseError;
  }
  return P;
}

std::shared_ptr<const serve::SnapshotData>
loadSnap(const char *Path, std::ostream &Err, int &Exit) {
  std::string LoadErr;
  std::shared_ptr<const serve::SnapshotData> D =
      serve::loadSnapshot(Path, LoadErr);
  if (!D) {
    Err << "error: " << LoadErr << "\n";
    // "cannot open" is an I/O failure; everything else means the bytes
    // did not decode.
    Exit = LoadErr.rfind("cannot open", 0) == 0 ? ExitIOError
                                                : ExitParseError;
  }
  return D;
}

bool parseAnalysis(const std::string &Name, pta::ContextKind &Kind,
                   unsigned &K) {
  if (Name == "ci") {
    Kind = pta::ContextKind::Insensitive;
    K = 0;
    return true;
  }
  auto Depth = [&Name, &K](size_t SuffixLen) {
    K = Name[0] - '0';
    return Name.size() == SuffixLen + 1 && K >= 1 && K <= 9;
  };
  if (Name.size() >= 2 && std::isdigit(static_cast<unsigned char>(Name[0]))) {
    if (Name.substr(1) == "cs") {
      Kind = pta::ContextKind::CallSite;
      return Depth(2);
    }
    if (Name.substr(1) == "obj") {
      Kind = pta::ContextKind::Object;
      return Depth(3);
    }
    if (Name.substr(1) == "type") {
      Kind = pta::ContextKind::Type;
      return Depth(4);
    }
  }
  return false;
}

/// Installs a trace sink for the enclosing scope and guarantees it is
/// uninstalled (and every span quiesced from this thread's view) before
/// the sink object dies — even on early error returns.
class ScopedTraceSink {
public:
  explicit ScopedTraceSink(bool Enabled) {
    if (Enabled)
      obs::installTraceSink(&Sink);
  }
  ~ScopedTraceSink() { release(); }
  /// Uninstalls so the sink can be safely serialized.
  void release() {
    if (obs::currentTraceSink() == &Sink)
      obs::installTraceSink(nullptr);
  }
  obs::TraceSink &sink() { return Sink; }

private:
  obs::TraceSink Sink;
};

/// Writes \p Body to \p Path; reports on \p Err and returns false on
/// failure.
bool writeTextFile(const std::string &Path, const std::string &Body,
                   std::ostream &Err) {
  std::ofstream OutF(Path, std::ios::binary);
  if (!OutF || !(OutF << Body) || !OutF.flush()) {
    Err << "error: cannot write '" << Path << "'\n";
    return false;
  }
  return true;
}

/// True when \p Path names a Prometheus text file (.prom); anything else
/// gets the JSON rendering.
bool wantsPrometheus(const std::string &Path) {
  return Path.size() >= 5 && Path.compare(Path.size() - 5, 5, ".prom") == 0;
}

int cmdAnalyze(int Argc, const char *const *Argv, std::ostream &Out,
               std::ostream &Err) {
  if (Argc < 3)
    return usage(Err);
  std::string Analysis = "2obj", HeapKind = "mahjong", SolverKind = "auto",
              FactsDir, SnapPath, BudgetStr, ThreadsStr, TraceOut,
              MetricsOut, StatsJson;
  FlagParser Flags(Argc, Argv, 3, Err);
  while (!Flags.done()) {
    if (Flags.take("--analysis", Analysis) || Flags.take("--heap", HeapKind) ||
        Flags.take("--budget", BudgetStr) || Flags.take("--facts", FactsDir) ||
        Flags.take("--solver", SolverKind) ||
        Flags.take("--threads", ThreadsStr) ||
        Flags.take("--save-snapshot", SnapPath) ||
        Flags.take("--trace-out", TraceOut) ||
        Flags.take("--metrics-out", MetricsOut) ||
        Flags.take("--stats-json", StatsJson))
      continue;
    return Flags.malformed() ? ExitUsage : Flags.unknown();
  }
  double Budget = 0;
  if (!BudgetStr.empty()) {
    char *End = nullptr;
    Budget = std::strtod(BudgetStr.c_str(), &End);
    if (!End || *End != '\0' || Budget < 0) {
      Err << "error: flag '--budget' needs a non-negative number, got '"
          << BudgetStr << "'\n";
      return ExitUsage;
    }
  }
  pta::ContextKind Kind;
  unsigned K;
  if (!parseAnalysis(Analysis, Kind, K)) {
    Err << "error: flag '--analysis' got unknown analysis '" << Analysis
        << "'\n";
    return ExitUsage;
  }
  if (SolverKind != "auto" && SolverKind != "wave" &&
      SolverKind != "naive" && SolverKind != "parallel") {
    Err << "error: flag '--solver' got unknown engine '" << SolverKind
        << "'\n";
    return ExitUsage;
  }
  unsigned SolverThreads = 0; // 0 = hardware concurrency
  if (!ThreadsStr.empty()) {
    char *End = nullptr;
    unsigned long N = std::strtoul(ThreadsStr.c_str(), &End, 10);
    if (!End || *End != '\0' || N < 1 || N > 256) {
      Err << "error: flag '--threads' needs a thread count in [1, 256], "
             "got '"
          << ThreadsStr << "'\n";
      return ExitUsage;
    }
    SolverThreads = static_cast<unsigned>(N);
  }
  // The sink must outlive every traced phase below; the guard uninstalls
  // it on all exits so spans can never outlive their destination.
  ScopedTraceSink Trace(!TraceOut.empty());
  obs::MetricsRegistry Reg;

  int Exit = ExitOk;
  Timer PhaseClock;
  std::unique_ptr<ir::Program> P;
  {
    obs::ScopedSpan Span("parse");
    P = load(Argv[2], Err, Exit);
  }
  if (!P)
    return Exit;
  Reg.gauge("phase.parse_seconds").set(PhaseClock.seconds());
  PhaseClock.reset();
  std::unique_ptr<ir::ClassHierarchy> CHPtr;
  {
    obs::ScopedSpan Span("cha");
    CHPtr = std::make_unique<ir::ClassHierarchy>(*P);
  }
  ir::ClassHierarchy &CH = *CHPtr;
  Reg.gauge("phase.cha_seconds").set(PhaseClock.seconds());

  std::unique_ptr<pta::AllocTypeAbstraction> TypeHeap;
  core::MahjongResult MR;
  pta::AnalysisOptions Opts;
  Opts.Kind = Kind;
  Opts.K = K;
  Opts.TimeBudgetSeconds = Budget;
  Opts.Engine = SolverKind == "naive"      ? pta::SolverEngine::Naive
                : SolverKind == "parallel" ? pta::SolverEngine::ParallelWave
                : SolverKind == "auto"     ? pta::SolverEngine::Auto
                                           : pta::SolverEngine::Wave;
  Opts.SolverThreads = SolverThreads;
  if (HeapKind == "mahjong") {
    MR = core::buildMahjongHeap(*P, CH);
    Opts.Heap = MR.Heap.get();
    Out << "mahjong heap: " << MR.numAllocSiteObjects() << " sites -> "
        << MR.numMahjongObjects() << " objects (pre " << std::fixed
        << std::setprecision(2)
        << MR.PreSeconds + MR.FPGSeconds + MR.MahjongSeconds << "s)\n";
    Reg.gauge("phase.pre_analysis_seconds").set(MR.PreSeconds);
    Reg.gauge("phase.fpg_build_seconds").set(MR.FPGSeconds);
    Reg.gauge("phase.mahjong_merge_seconds").set(MR.MahjongSeconds);
    Reg.counter("mahjong.alloc_sites").set(MR.numAllocSiteObjects());
    Reg.counter("mahjong.objects").set(MR.numMahjongObjects());
  } else if (HeapKind == "type") {
    TypeHeap = std::make_unique<pta::AllocTypeAbstraction>(*P);
    Opts.Heap = TypeHeap.get();
  } else if (HeapKind != "site") {
    Err << "error: flag '--heap' got unknown heap '" << HeapKind << "'\n";
    return ExitUsage;
  }

  std::unique_ptr<pta::PTAResult> R;
  {
    obs::ScopedSpan Span("main-analysis");
    R = pta::runPointerAnalysis(*P, CH, Opts);
  }
  Reg.gauge("phase.main_analysis_seconds").set(R->Stats.Seconds);
  if (R->Stats.TimedOut) {
    Err << Analysis << ": exceeded the " << std::fixed
        << std::setprecision(0) << Budget << "s budget (unscalable)\n";
    return ExitAnalysisError;
  }
  clients::ClientResults CR = clients::evaluateClients(*R);
  Out << Analysis << " (" << HeapKind << " heap): " << std::fixed
      << std::setprecision(2) << R->Stats.Seconds << "s\n";
  Out << "  reachable methods:  " << CR.ReachableMethods << "\n";
  Out << "  call graph edges:   " << CR.CallGraphEdges << "\n";
  Out << "  poly call sites:    " << CR.PolyCallSites
      << " (mono: " << CR.MonoCallSites << ")\n";
  Out << "  may-fail casts:     " << CR.MayFailCasts << " / " << CR.TotalCasts
      << "\n";
  // Under --solver auto the heuristic's choice is part of the story:
  // "auto:wave" says both what was asked and what ran.
  std::string EngineShown =
      SolverKind == "auto" ? "auto:" + R->EngineName : SolverKind;
  Out << "  solver (" << EngineShown << "):     " << R->Stats.WorklistPops
      << " pops, " << R->Stats.SCCsCollapsed << " SCCs collapsed ("
      << R->Stats.NodesCollapsed << " nodes), " << R->Stats.FilterBitmapHits
      << " filter bitmap hits\n";
  if (R->EngineName == "parallel")
    Out << "  parallel waves:     " << R->Stats.ParallelWaves << " ("
        << R->Stats.DeltasBuffered << " deltas buffered, "
        << R->Stats.DeltasMerged << " merged, " << R->Stats.DeltasDropped
        << " dropped)\n"
        << "  parallel balance:   shard imbalance " << std::setprecision(1)
        << R->Stats.ShardImbalancePct << "% mean / "
        << R->Stats.ShardImbalanceMaxPct << "% max, " << R->Stats.WorkSteals
        << " chunks stolen\n";
  if (!FactsDir.empty()) {
    if (!pta::writeAllFacts(*R, FactsDir)) {
      Err << "error: cannot write facts into '" << FactsDir << "'\n";
      return ExitIOError;
    }
    Out << "facts written to " << FactsDir << "/*.facts\n";
  }
  if (!SnapPath.empty()) {
    PhaseClock.reset();
    std::string SaveErr;
    if (!serve::saveSnapshot(*R, SnapPath, SaveErr)) {
      Err << "error: " << SaveErr << "\n";
      return ExitIOError;
    }
    Reg.gauge("phase.snapshot_encode_seconds").set(PhaseClock.seconds());
    Out << "snapshot written to " << SnapPath << "\n";
  }

  // Assemble the rest of the registry: every PTAStats field, the client
  // metrics, and the per-wave latency histogram of this run.
  pta::exportStats(R->Stats, Reg);
  Reg.counter("clients.reachable_methods").set(CR.ReachableMethods);
  Reg.counter("clients.call_graph_edges").set(CR.CallGraphEdges);
  Reg.counter("clients.poly_call_sites").set(CR.PolyCallSites);
  Reg.counter("clients.mono_call_sites").set(CR.MonoCallSites);
  Reg.counter("clients.may_fail_casts").set(CR.MayFailCasts);
  Reg.counter("clients.total_casts").set(CR.TotalCasts);
  if (R->WaveMicros.count() > 0)
    Reg.histogram("pta.wave_us").mergeFrom(R->WaveMicros);

  if (!TraceOut.empty()) {
    // Quiesce: no traced work remains, so uninstall before serializing.
    Trace.release();
    std::string TraceErr;
    if (!Trace.sink().writeFile(TraceOut, TraceErr)) {
      Err << "error: " << TraceErr << "\n";
      return ExitIOError;
    }
    Out << "trace written to " << TraceOut << " ("
        << Trace.sink().eventCount() << " events, "
        << Trace.sink().laneCount() << " lanes)\n";
  }
  if (!MetricsOut.empty()) {
    if (!writeTextFile(MetricsOut,
                       wantsPrometheus(MetricsOut) ? Reg.toPrometheus()
                                                   : Reg.toJson(),
                       Err))
      return ExitIOError;
    Out << "metrics written to " << MetricsOut << "\n";
  }
  if (!StatsJson.empty()) {
    if (!writeTextFile(StatsJson, Reg.toJson(), Err))
      return ExitIOError;
    Out << "stats written to " << StatsJson << "\n";
  }
  return ExitOk;
}

int cmdGen(int Argc, const char *const *Argv, std::ostream &Out,
           std::ostream &Err) {
  if (Argc < 4)
    return usage(Err);
  std::string Profile = Argv[2], OutPath = Argv[3], ScaleStr;
  FlagParser Flags(Argc, Argv, 4, Err);
  while (!Flags.done()) {
    if (Flags.take("--scale", ScaleStr))
      continue;
    return Flags.malformed() ? ExitUsage : Flags.unknown();
  }
  double Scale = 1.0;
  if (!ScaleStr.empty()) {
    char *End = nullptr;
    Scale = std::strtod(ScaleStr.c_str(), &End);
    if (!End || *End != '\0' || Scale <= 0) {
      Err << "error: flag '--scale' needs a positive number, got '"
          << ScaleStr << "'\n";
      return ExitUsage;
    }
  }
  const std::vector<std::string> &Names = workload::benchmarkNames();
  if (std::find(Names.begin(), Names.end(), Profile) == Names.end()) {
    Err << "error: unknown profile '" << Profile << "' (expected one of:";
    for (const std::string &N : Names)
      Err << " " << N;
    Err << ")\n";
    return ExitUsage;
  }
  std::unique_ptr<ir::Program> P =
      workload::buildBenchmarkProgram(Profile, Scale);
  if (!writeTextFile(OutPath, ir::printProgram(*P), Err))
    return ExitIOError;
  Out << Profile << " written to " << OutPath << " (" << P->numMethods()
      << " methods, " << P->numObjs() << " objects)\n";
  return ExitOk;
}

int cmdQuery(int Argc, const char *const *Argv, std::ostream &Out,
             std::ostream &Err) {
  if (Argc < 4)
    return usage(Err);
  int Exit = ExitOk;
  auto D = loadSnap(Argv[2], Err, Exit);
  if (!D)
    return Exit;
  std::string Text;
  for (int I = 3; I < Argc; ++I) {
    if (I > 3)
      Text += ' ';
    Text += Argv[I];
  }
  serve::QueryEngine Engine(D);
  serve::QueryResult R = Engine.run(Text);
  if (!R.Ok) {
    Err << "error: " << R.Error << "\n";
    return ExitParseError;
  }
  if (R.HasVerdict) {
    Out << (R.Verdict ? "true" : "false") << "\n";
  } else {
    Out << R.Items.size() << " result(s)\n";
    for (const std::string &Item : R.Items)
      Out << "  " << Item << "\n";
  }
  return ExitOk;
}

/// Parses a non-negative integer flag value into \p Out (bounded by
/// [\p Min, \p Max]); reports with the offending flag name on failure.
bool parseUnsignedFlag(const char *Flag, const std::string &S,
                       unsigned long Min, unsigned long Max,
                       unsigned long &Out, std::ostream &Err) {
  char *End = nullptr;
  unsigned long N = std::strtoul(S.c_str(), &End, 10);
  if (S.empty() || !End || *End != '\0' || N < Min || N > Max) {
    Err << "error: flag '" << Flag << "' needs an integer in [" << Min
        << ", " << Max << "], got '" << S << "'\n";
    return false;
  }
  Out = N;
  return true;
}

/// SIGINT/SIGTERM flag for `serve`: the handler may only touch a
/// lock-free atomic, so the run loop polls this.
std::atomic<bool> ServeInterrupted{false};

void serveSignalHandler(int) {
  ServeInterrupted.store(true, std::memory_order_relaxed);
}

int cmdServe(int Argc, const char *const *Argv, std::ostream &Out,
             std::ostream &Err) {
  if (Argc < 3)
    return usage(Err);
  std::string Listen = "127.0.0.1:0", MaxConnsStr, MaxInflightStr,
              WorkersStr, SwapFifo, DurationStr, MetricsOut;
  FlagParser Flags(Argc, Argv, 3, Err);
  while (!Flags.done()) {
    if (Flags.take("--listen", Listen) ||
        Flags.take("--max-conns", MaxConnsStr) ||
        Flags.take("--max-inflight", MaxInflightStr) ||
        Flags.take("--workers", WorkersStr) ||
        Flags.take("--swap-fifo", SwapFifo) ||
        Flags.take("--duration", DurationStr) ||
        Flags.take("--metrics-out", MetricsOut))
      continue;
    return Flags.malformed() ? ExitUsage : Flags.unknown();
  }
  net::ServerConfig Cfg;
  std::string HpErr;
  if (!net::parseHostPort(Listen, Cfg.Host, Cfg.Port, HpErr)) {
    Err << "error: flag '--listen' got '" << Listen << "': " << HpErr
        << "\n";
    return ExitUsage;
  }
  unsigned long U;
  if (!MaxConnsStr.empty()) {
    if (!parseUnsignedFlag("--max-conns", MaxConnsStr, 1, 65536, U, Err))
      return ExitUsage;
    Cfg.MaxConns = static_cast<unsigned>(U);
  }
  if (!MaxInflightStr.empty()) {
    if (!parseUnsignedFlag("--max-inflight", MaxInflightStr, 1, 65536, U,
                           Err))
      return ExitUsage;
    Cfg.MaxInflight = static_cast<unsigned>(U);
  }
  if (!WorkersStr.empty()) {
    if (!parseUnsignedFlag("--workers", WorkersStr, 0, 256, U, Err))
      return ExitUsage;
    Cfg.Workers = static_cast<unsigned>(U);
  }
  Cfg.SwapFifo = SwapFifo;
  double Duration = 0; // 0 = run until SIGINT/SIGTERM
  if (!DurationStr.empty()) {
    char *End = nullptr;
    Duration = std::strtod(DurationStr.c_str(), &End);
    if (!End || *End != '\0' || Duration < 0) {
      Err << "error: flag '--duration' needs a non-negative number, got '"
          << DurationStr << "'\n";
      return ExitUsage;
    }
  }

  int Exit = ExitOk;
  auto D = loadSnap(Argv[2], Err, Exit);
  if (!D)
    return Exit;
  net::SnapshotRegistry Registry(std::move(D), Argv[2]);
  net::SnapshotServer Server(Registry, Cfg);
  std::string StartErr;
  if (!Server.start(StartErr)) {
    Err << "error: " << StartErr << "\n";
    return ExitIOError;
  }
  Out << "listening on " << Server.host() << ":" << Server.port() << "\n"
      << std::flush;

  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Duration > 0 ? Clock::now() + std::chrono::duration_cast<
                                        Clock::duration>(
                                        std::chrono::duration<double>(
                                            Duration))
                   : Clock::time_point::max();
  ServeInterrupted.store(false, std::memory_order_relaxed);
  auto OldInt = std::signal(SIGINT, serveSignalHandler);
  auto OldTerm = std::signal(SIGTERM, serveSignalHandler);
  while (!ServeInterrupted.load(std::memory_order_relaxed) &&
         Clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::signal(SIGINT, OldInt);
  std::signal(SIGTERM, OldTerm);

  Server.stop();
  obs::MetricsRegistry &Reg = Server.metrics();
  Reg.counter("net.swaps_total").set(Registry.swapCount());
  Reg.gauge("net.retired_snapshots")
      .set(static_cast<double>(Registry.retiredAlive()));
  if (!MetricsOut.empty()) {
    if (!writeTextFile(MetricsOut,
                       wantsPrometheus(MetricsOut) ? Reg.toPrometheus()
                                                   : Reg.toJson(),
                       Err))
      return ExitIOError;
    Out << "metrics written to " << MetricsOut << "\n";
  }
  Out << "server drained: " << Reg.counter("net.queries_total").value()
      << " queries, " << Reg.counter("net.accepted_total").value()
      << " connections, " << Registry.swapCount() << " swaps\n";
  return ExitOk;
}

int cmdServeBench(int Argc, const char *const *Argv, std::ostream &Out,
                  std::ostream &Err) {
  if (Argc < 3)
    return usage(Err);
  std::string SpecPath, HeartbeatStr, Connect, MetricsOut;
  bool Smoke = false;
  FlagParser Flags(Argc, Argv, 3, Err);
  while (!Flags.done()) {
    if (Flags.take("--spec", SpecPath) ||
        Flags.take("--heartbeat", HeartbeatStr) ||
        Flags.take("--connect", Connect) ||
        Flags.take("--metrics-out", MetricsOut))
      continue;
    if (Flags.takeBare("--smoke")) {
      Smoke = true;
      continue;
    }
    return Flags.malformed() ? ExitUsage : Flags.unknown();
  }
  double Heartbeat = -1;
  if (!HeartbeatStr.empty()) {
    char *End = nullptr;
    Heartbeat = std::strtod(HeartbeatStr.c_str(), &End);
    if (!End || *End != '\0' || Heartbeat < 0) {
      Err << "error: flag '--heartbeat' needs a non-negative number, "
             "got '"
          << HeartbeatStr << "'\n";
      return ExitUsage;
    }
  }
  serve::QueryWorkload W;
  if (!SpecPath.empty()) {
    std::ifstream In(SpecPath);
    if (!In) {
      Err << "error: cannot open '" << SpecPath << "'\n";
      return ExitIOError;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string SpecErr;
    if (!serve::parseWorkloadSpec(Buf.str(), W, SpecErr)) {
      Err << SpecPath << ": " << SpecErr << "\n";
      return ExitParseError;
    }
  }
  if (Smoke) {
    // The CI smoke contract: tiny, fast, and still concurrent. Socket
    // mode gets a larger count so QPS amortizes connect overhead into a
    // stable number.
    W.Clients = 2;
    W.QueriesPerClient = Connect.empty() ? 250 : 2500;
    W.DurationSeconds = 0;
    W.Workers = 2;
  }
  int Exit = ExitOk;
  auto D = loadSnap(Argv[2], Err, Exit);
  if (!D)
    return Exit;
  // --heartbeat overrides the spec; progress lines go to stderr so the
  // JSON report on stdout stays machine-parseable.
  if (Heartbeat >= 0)
    W.HeartbeatSeconds = Heartbeat;

  if (!Connect.empty()) {
    // Socket mode: the snapshot argument still supplies the key pools,
    // so the generated stream matches in-process mode byte for byte —
    // only the transport differs.
    net::SocketTrafficOptions SOpts;
    std::string HpErr;
    if (!net::parseHostPort(Connect, SOpts.Host, SOpts.Port, HpErr)) {
      Err << "error: flag '--connect' got '" << Connect << "': " << HpErr
          << "\n";
      return ExitUsage;
    }
    net::SocketTrafficReport Rep = net::runSocketTraffic(*D, W, SOpts, &Err);
    Out << Rep.toJson() << "\n";
    if (!MetricsOut.empty()) {
      if (!writeTextFile(MetricsOut, Rep.MetricsJson, Err))
        return ExitIOError;
    }
    if (Rep.Queries == 0 || Rep.Failed != 0 || Rep.TransportErrors != 0) {
      Err << "error: serve-bench answered " << Rep.Queries
          << " queries with " << Rep.Failed << " failures and "
          << Rep.TransportErrors << " transport errors\n";
      return ExitAnalysisError;
    }
    return ExitOk;
  }

  serve::QueryEngine Engine(D);
  serve::TrafficReport Rep = serve::runTraffic(Engine, W, &Err);
  Out << Rep.toJson() << "\n";
  if (!MetricsOut.empty()) {
    if (!writeTextFile(MetricsOut, Rep.toJson(), Err))
      return ExitIOError;
  }
  if (Rep.Queries == 0 || Rep.Failed != 0) {
    Err << "error: serve-bench answered " << Rep.Queries << " queries with "
        << Rep.Failed << " failures\n";
    return ExitAnalysisError;
  }
  return ExitOk;
}

int cmdMergeReport(int Argc, const char *const *Argv, std::ostream &Out,
                   std::ostream &Err) {
  if (Argc < 3)
    return usage(Err);
  int Exit = ExitOk;
  auto P = load(Argv[2], Err, Exit);
  if (!P)
    return Exit;
  ir::ClassHierarchy CH(*P);
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  auto Classes = core::equivalenceClasses(*MR.FPG, MR.Modeling);
  Out << MR.numAllocSiteObjects() << " sites -> " << Classes.size()
      << " classes\n";
  for (const auto &[Repr, Members] : Classes) {
    if (Members.size() == 1)
      continue;
    Out << "  class of " << P->describeObj(Repr) << " (" << Members.size()
        << " members):";
    for (size_t I = 0; I < Members.size() && I < 8; ++I)
      Out << " o" << Members[I].idx();
    if (Members.size() > 8)
      Out << " ...";
    Out << "\n";
  }
  return ExitOk;
}

int cmdDot(int Argc, const char *const *Argv, const char *Which,
           std::ostream &Out, std::ostream &Err) {
  bool NeedsObj = std::strcmp(Which, "callgraph") != 0;
  if (Argc < (NeedsObj ? 4 : 3))
    return usage(Err);
  int Exit = ExitOk;
  auto P = load(Argv[2], Err, Exit);
  if (!P)
    return Exit;
  ir::ClassHierarchy CH(*P);
  pta::AnalysisOptions PreOpts;
  auto Pre = pta::runPointerAnalysis(*P, CH, PreOpts);
  if (!NeedsObj) {
    Out << core::callGraphToDot(*Pre);
    return ExitOk;
  }
  char *End = nullptr;
  long Idx = std::strtol(Argv[3], &End, 10);
  if (!End || *End != '\0' || Idx < 0) {
    Err << "error: malformed object index '" << Argv[3] << "'\n";
    return ExitUsage;
  }
  if (static_cast<uint32_t>(Idx) >= P->numObjs()) {
    Err << "error: object index " << Idx << " out of range (0.."
        << P->numObjs() - 1 << ")\n";
    return ExitUsage;
  }
  core::FieldPointsToGraph G(*Pre);
  if (std::strcmp(Which, "fpg") == 0) {
    Out << core::fpgToDot(G, ObjId(static_cast<uint32_t>(Idx)));
  } else {
    core::DFACache Cache(G);
    Out << core::dfaToDot(G, Cache, ObjId(static_cast<uint32_t>(Idx)));
  }
  return ExitOk;
}

} // namespace

int mahjong::cli::runCli(int Argc, const char *const *Argv, std::ostream &Out,
                         std::ostream &Err) {
  if (Argc < 2)
    return usage(Err);
  const char *Cmd = Argv[1];
  if (std::strcmp(Cmd, "analyze") == 0)
    return cmdAnalyze(Argc, Argv, Out, Err);
  if (std::strcmp(Cmd, "gen") == 0)
    return cmdGen(Argc, Argv, Out, Err);
  if (std::strcmp(Cmd, "query") == 0)
    return cmdQuery(Argc, Argv, Out, Err);
  if (std::strcmp(Cmd, "serve") == 0)
    return cmdServe(Argc, Argv, Out, Err);
  if (std::strcmp(Cmd, "serve-bench") == 0)
    return cmdServeBench(Argc, Argv, Out, Err);
  if (std::strcmp(Cmd, "merge-report") == 0)
    return cmdMergeReport(Argc, Argv, Out, Err);
  if (std::strcmp(Cmd, "dot-fpg") == 0)
    return cmdDot(Argc, Argv, "fpg", Out, Err);
  if (std::strcmp(Cmd, "dot-dfa") == 0)
    return cmdDot(Argc, Argv, "dfa", Out, Err);
  if (std::strcmp(Cmd, "dot-callgraph") == 0)
    return cmdDot(Argc, Argv, "callgraph", Out, Err);
  Err << "error: unknown command '" << Cmd << "'\n";
  usage(Err);
  return ExitUsage;
}
