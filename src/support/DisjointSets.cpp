//===-- support/DisjointSets.cpp - Union-find forest ----------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/DisjointSets.h"

#include <cassert>

using namespace mahjong;

void DisjointSets::grow(uint32_t NewSize) {
  if (NewSize <= Parent.size())
    return;
  uint32_t Old = static_cast<uint32_t>(Parent.size());
  Parent.resize(NewSize);
  Rank.resize(NewSize, 0);
  Size.resize(NewSize, 1);
  for (uint32_t I = Old; I < NewSize; ++I)
    Parent[I] = I;
  NumSets += NewSize - Old;
}

void DisjointSets::reserve(uint32_t Capacity) {
  Parent.reserve(Capacity);
  Rank.reserve(Capacity);
  Size.reserve(Capacity);
}

uint32_t DisjointSets::findSlow(uint32_t X) {
  assert(X < Parent.size() && "element out of range");
  // Iterative two-pass path compression: find the root, then repoint every
  // node on the path directly at it.
  uint32_t Root = X;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  while (Parent[X] != Root) {
    uint32_t Next = Parent[X];
    Parent[X] = Root;
    X = Next;
  }
  return Root;
}

uint32_t DisjointSets::unite(uint32_t X, uint32_t Y) {
  uint32_t RX = find(X), RY = find(Y);
  if (RX == RY)
    return RX;
  if (Rank[RX] < Rank[RY])
    std::swap(RX, RY);
  Parent[RY] = RX;
  Size[RX] += Size[RY];
  if (Rank[RX] == Rank[RY])
    ++Rank[RX];
  --NumSets;
  return RX;
}
