//===-- support/DeltaBuffer.h - Buffered delta emission -------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The private per-worker buffer of the wave-parallel solver. During the
/// concurrent phase of a wave each worker appends the delta it computed
/// for every node it owns (one PointsToSet per node, stored once) plus
/// lightweight emission records — (target, delta slot, filter) triples —
/// bucketed by the target's shard. No shared PointsToSet is ever mutated:
/// the records reference the stored deltas by slot, so emission is
/// zero-copy no matter how many edges fan out of a node.
///
/// A later merge phase drains the buckets: the worker owning target shard
/// t scans bucket t of every buffer in fixed buffer order, which makes
/// the fold independent of thread scheduling. The buffer itself is
/// single-writer by construction and exposes only const access afterward.
///
/// reset() retains every capacity the buffer ever grew: record buckets
/// keep their vectors, and delta slots are recycled by live count rather
/// than destroyed — the engine resets each buffer once per wave, and a
/// run has thousands of waves, so per-wave reallocation churn would
/// dominate small-wave cost. The capacity probes (deltaSlotCapacity,
/// bucketCapacity) exist so a regression test can pin steady-state
/// allocations flat (tests/support/DeltaBufferTest.cpp).
///
/// Emission and drain counters (numRecords / numDeltas) let the solver
/// assert conservation: every buffered record must be folded exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_DELTABUFFER_H
#define MAHJONG_SUPPORT_DELTABUFFER_H

#include "support/PointsToSet.h"

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace mahjong {

/// One worker's buffered output for one wave: owned deltas plus emission
/// records sub-bucketed by target shard.
class DeltaBuffer {
public:
  /// One buffered delivery. FilterPlus1 is a type-filter id biased by one
  /// (0 = unfiltered); the buffer is agnostic to what the id means.
  struct Record {
    uint32_t Target;      ///< destination node (a representative id)
    uint32_t DeltaSlot;   ///< index into this buffer's delta store
    uint32_t FilterPlus1; ///< 0 = deliver as-is, else filter id + 1
  };

  /// Empties all deltas and records and re-buckets for \p NumTargetShards.
  /// All storage — bucket vectors and delta slots (including each slot's
  /// PointsToSet chunk array) — is retained, so a steady-state wave loop
  /// allocates nothing here.
  void reset(uint32_t NumTargetShards) {
    LiveDeltas = 0;
    if (Buckets.size() < NumTargetShards)
      Buckets.resize(NumTargetShards);
    NumShards = NumTargetShards;
    for (auto &B : Buckets)
      B.clear(); // clears *every* bucket, so a shrink leaves no stale records
  }

  /// Stores the delta that node \p Node gained this wave. Returns the slot
  /// for use in emit(); the set is stored once regardless of fan-out.
  uint32_t addDelta(uint32_t Node, PointsToSet &&Delta) {
    if (LiveDeltas < Deltas.size()) {
      // Recycle a retired slot: move-assign reuses the set's storage.
      Deltas[LiveDeltas].first = Node;
      Deltas[LiveDeltas].second = std::move(Delta);
    } else {
      Deltas.emplace_back(Node, std::move(Delta));
    }
    return LiveDeltas++;
  }

  /// Records delivery of delta \p DeltaSlot to \p Target, whose shard is
  /// \p TargetShard. Call only from the worker that owns this buffer.
  void emit(uint32_t TargetShard, uint32_t Target, uint32_t DeltaSlot,
            uint32_t FilterPlus1) {
    assert(TargetShard < NumShards && "target shard out of range");
    assert(DeltaSlot < LiveDeltas && "emit before addDelta");
    Buckets[TargetShard].push_back({Target, DeltaSlot, FilterPlus1});
  }

  /// Records destined for \p TargetShard, in emission order.
  const std::vector<Record> &records(uint32_t TargetShard) const {
    assert(TargetShard < NumShards && "target shard out of range");
    return Buckets[TargetShard];
  }

  const PointsToSet &delta(uint32_t Slot) const {
    assert(Slot < LiveDeltas && "dead delta slot");
    return Deltas[Slot].second;
  }

  /// Deltas in the order the worker produced them (wave order within the
  /// worker's contiguous chunk). The solver's serialized growth phase
  /// walks these buffer-by-buffer, reconstructing global wave order.
  size_t numDeltas() const { return LiveDeltas; }
  uint32_t deltaNode(size_t I) const {
    assert(I < LiveDeltas && "dead delta slot");
    return Deltas[I].first;
  }
  const PointsToSet &deltaSet(size_t I) const {
    assert(I < LiveDeltas && "dead delta slot");
    return Deltas[I].second;
  }

  /// Total records emitted across all buckets (conservation check).
  size_t numRecords() const {
    size_t Total = 0;
    for (uint32_t B = 0; B < NumShards; ++B)
      Total += Buckets[B].size();
    return Total;
  }

  uint32_t numTargetShards() const { return NumShards; }

  // --- Capacity probes (regression tests only) ---

  /// Retained delta slots, live or recycled.
  size_t deltaSlotCapacity() const { return Deltas.size(); }
  /// Retained record capacity of one bucket.
  size_t bucketCapacity(uint32_t TargetShard) const {
    return TargetShard < Buckets.size() ? Buckets[TargetShard].capacity() : 0;
  }
  /// Sum of all bucket capacities ever grown (including shards beyond the
  /// current reset width — those are retained too).
  size_t totalBucketCapacity() const {
    size_t Total = 0;
    for (const auto &B : Buckets)
      Total += B.capacity();
    return Total;
  }

private:
  std::vector<std::pair<uint32_t, PointsToSet>> Deltas;
  uint32_t LiveDeltas = 0; ///< Deltas[0, LiveDeltas) are this wave's
  std::vector<std::vector<Record>> Buckets; ///< grown, never shrunk
  uint32_t NumShards = 0; ///< buckets addressable since the last reset
};

} // namespace mahjong

#endif // MAHJONG_SUPPORT_DELTABUFFER_H
