//===-- support/DeltaBuffer.h - Buffered delta emission -------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The private per-worker buffer of the wave-parallel solver. During the
/// concurrent phase of a wave each worker appends the delta it computed
/// for every node it owns (one PointsToSet per node, stored once) plus
/// lightweight emission records — (target, delta slot, filter) triples —
/// bucketed by the target's shard. No shared PointsToSet is ever mutated:
/// the records reference the stored deltas by slot, so emission is
/// zero-copy no matter how many edges fan out of a node.
///
/// A later merge phase drains the buckets: the worker owning target shard
/// t scans bucket t of every buffer in fixed buffer order, which makes
/// the fold independent of thread scheduling. The buffer itself is
/// single-writer by construction and exposes only const access afterward.
///
/// Emission and drain counters (numRecords / numDeltas) let the solver
/// assert conservation: every buffered record must be folded exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_DELTABUFFER_H
#define MAHJONG_SUPPORT_DELTABUFFER_H

#include "support/PointsToSet.h"

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace mahjong {

/// One worker's buffered output for one wave: owned deltas plus emission
/// records sub-bucketed by target shard.
class DeltaBuffer {
public:
  /// One buffered delivery. FilterPlus1 is a type-filter id biased by one
  /// (0 = unfiltered); the buffer is agnostic to what the id means.
  struct Record {
    uint32_t Target;      ///< destination node (a representative id)
    uint32_t DeltaSlot;   ///< index into this buffer's delta store
    uint32_t FilterPlus1; ///< 0 = deliver as-is, else filter id + 1
  };

  /// Clears all deltas and records and re-buckets for \p NumTargetShards.
  /// Bucket storage is retained across waves to avoid reallocation.
  void reset(uint32_t NumTargetShards) {
    Deltas.clear();
    if (Buckets.size() != NumTargetShards)
      Buckets.resize(NumTargetShards);
    for (auto &B : Buckets)
      B.clear();
  }

  /// Stores the delta that node \p Node gained this wave. Returns the slot
  /// for use in emit(); the set is stored once regardless of fan-out.
  uint32_t addDelta(uint32_t Node, PointsToSet &&Delta) {
    Deltas.emplace_back(Node, std::move(Delta));
    return static_cast<uint32_t>(Deltas.size() - 1);
  }

  /// Records delivery of delta \p DeltaSlot to \p Target, whose shard is
  /// \p TargetShard. Call only from the worker that owns this buffer.
  void emit(uint32_t TargetShard, uint32_t Target, uint32_t DeltaSlot,
            uint32_t FilterPlus1) {
    assert(TargetShard < Buckets.size() && "target shard out of range");
    assert(DeltaSlot < Deltas.size() && "emit before addDelta");
    Buckets[TargetShard].push_back({Target, DeltaSlot, FilterPlus1});
  }

  /// Records destined for \p TargetShard, in emission order.
  const std::vector<Record> &records(uint32_t TargetShard) const {
    return Buckets[TargetShard];
  }

  const PointsToSet &delta(uint32_t Slot) const { return Deltas[Slot].second; }

  /// Deltas in the order the worker produced them (wave order within the
  /// worker's contiguous chunk). The solver's serialized growth phase
  /// walks these buffer-by-buffer, reconstructing global wave order.
  size_t numDeltas() const { return Deltas.size(); }
  uint32_t deltaNode(size_t I) const { return Deltas[I].first; }
  const PointsToSet &deltaSet(size_t I) const { return Deltas[I].second; }

  /// Total records emitted across all buckets (conservation check).
  size_t numRecords() const {
    size_t Total = 0;
    for (const auto &B : Buckets)
      Total += B.size();
    return Total;
  }

  uint32_t numTargetShards() const {
    return static_cast<uint32_t>(Buckets.size());
  }

private:
  std::vector<std::pair<uint32_t, PointsToSet>> Deltas;
  std::vector<std::vector<Record>> Buckets;
};

} // namespace mahjong

#endif // MAHJONG_SUPPORT_DELTABUFFER_H
