//===-- support/Parallel.h - Chunked fan-out over ThreadPool --*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared chunking helpers over support::ThreadPool. Both parallel
/// subsystems — the heap modeler's per-type bucket fan-out and the
/// wave-parallel solver's shard sweep — split a dense index range into
/// contiguous chunks, run each chunk as one pool task, and rely on
/// ThreadPool::wait() to propagate the first worker exception. Keeping
/// that slicing in one place means one tested code path for boundary
/// arithmetic (empty ranges, more chunks than items) and one exception
/// contract instead of per-subsystem copies.
///
/// Determinism note: chunk boundaries depend only on (N, NumChunks),
/// never on thread scheduling, so a caller that derives per-chunk state
/// (the solver's shard buffers) gets the same item-to-chunk assignment on
/// every run and at every pool width.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_PARALLEL_H
#define MAHJONG_SUPPORT_PARALLEL_H

#include "support/ThreadPool.h"

#include <algorithm>
#include <cstddef>

namespace mahjong {

/// First index of chunk \p Chunk when [0, N) is cut into \p NumChunks
/// contiguous near-equal pieces (the first N % NumChunks chunks carry one
/// extra item). chunkBegin(NumChunks) == N, so chunk c spans
/// [chunkBegin(c), chunkBegin(c + 1)).
inline size_t chunkBegin(size_t N, size_t NumChunks, size_t Chunk) {
  size_t Base = N / NumChunks, Extra = N % NumChunks;
  return Chunk * Base + std::min(Chunk, Extra);
}

/// Cuts [0, N) into exactly \p NumChunks contiguous chunks and runs
/// \p Body(ChunkIdx, Begin, End) for every non-empty chunk on \p Pool,
/// blocking until all finish. The first exception thrown by any chunk is
/// rethrown from the final wait. With NumChunks == 1 (or N small enough
/// that only one chunk is non-empty) the body runs inline on the calling
/// thread — callers get an identical code path with zero handoff cost.
template <typename BodyFn>
void parallelChunks(ThreadPool &Pool, size_t N, size_t NumChunks,
                    const BodyFn &Body) {
  if (N == 0)
    return;
  NumChunks = std::max<size_t>(NumChunks, 1);
  size_t NonEmpty = std::min(N, NumChunks);
  if (NonEmpty == 1) {
    Body(size_t(0), size_t(0), N);
    return;
  }
  for (size_t C = 0; C < NumChunks; ++C) {
    size_t Begin = chunkBegin(N, NumChunks, C);
    size_t End = chunkBegin(N, NumChunks, C + 1);
    if (Begin == End)
      continue;
    Pool.enqueue([&Body, C, Begin, End] { Body(C, Begin, End); });
  }
  Pool.wait();
}

/// Launches exactly \p NumWorkers copies of \p Body(WorkerId) on \p Pool
/// and blocks until all return, rethrowing the first worker exception.
/// For cooperative schedulers — the wave-parallel solver's fused
/// sweep/merge region — where each worker claims work items itself
/// instead of receiving a pre-cut range: the pool sees opaque
/// long-running tasks, the caller owns the claiming discipline.
template <typename BodyFn>
void parallelWorkers(ThreadPool &Pool, unsigned NumWorkers,
                     const BodyFn &Body) {
  if (NumWorkers <= 1) {
    Body(0u);
    return;
  }
  for (unsigned W = 0; W < NumWorkers; ++W)
    Pool.enqueue([&Body, W] { Body(W); });
  Pool.wait();
}

/// Runs \p Body(I) for every I in [0, N) across \p Pool. Work is split
/// into more chunks than workers (4x oversubscription) so uneven items —
/// the modeler's type buckets differ by orders of magnitude — still load-
/// balance, while tiny ranges collapse to one inline chunk. Exceptions
/// propagate through ThreadPool::wait() exactly as with parallelChunks.
template <typename BodyFn>
void parallelFor(ThreadPool &Pool, size_t N, const BodyFn &Body) {
  size_t NumChunks = std::max<size_t>(size_t(Pool.numThreads()) * 4, 1);
  parallelChunks(Pool, N, NumChunks,
                 [&Body](size_t, size_t Begin, size_t End) {
                   for (size_t I = Begin; I < End; ++I)
                     Body(I);
                 });
}

} // namespace mahjong

#endif // MAHJONG_SUPPORT_PARALLEL_H
