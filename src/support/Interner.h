//===-- support/Interner.h - Dense interning tables -----------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic interning of values to dense 32-bit ids, used for contexts,
/// context-sensitive variables/objects, and determinized automaton states.
/// Interned values are stored once; ids index a side vector for O(1)
/// reverse lookup.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_INTERNER_H
#define MAHJONG_SUPPORT_INTERNER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mahjong {

/// Hash for vectors of integral values (FNV-1a over the elements).
struct VectorHash {
  template <typename T>
  size_t operator()(const std::vector<T> &V) const noexcept {
    size_t H = 1469598103934665603ull;
    for (const T &E : V) {
      H ^= static_cast<size_t>(E);
      H *= 1099511628211ull;
    }
    return H;
  }
};

/// Interns values of type \p V, handing out ids of type \p IdT in insertion
/// order. \p IdT must be constructible from uint32_t and expose idx().
template <typename IdT, typename V, typename Hash = std::hash<V>>
class Interner {
public:
  /// Returns the id for \p Value, interning it on first sight.
  IdT intern(const V &Value) {
    auto [It, Inserted] =
        Map.try_emplace(Value, static_cast<uint32_t>(Values.size()));
    if (Inserted)
      Values.push_back(Value);
    return IdT(It->second);
  }

  /// Returns the id for \p Value if already interned, an invalid id else.
  IdT lookup(const V &Value) const {
    auto It = Map.find(Value);
    return It == Map.end() ? IdT::invalid() : IdT(It->second);
  }

  /// Returns the stored value for \p Id. The reference is invalidated by
  /// the next intern() that adds a value (the backing vector may move), so
  /// copy the value before interning anything else.
  const V &get(IdT Id) const {
    assert(Id.idx() < Values.size() && "interner id out of range");
    return Values[Id.idx()];
  }

  uint32_t size() const { return static_cast<uint32_t>(Values.size()); }

private:
  std::unordered_map<V, uint32_t, Hash> Map;
  std::vector<V> Values;
};

} // namespace mahjong

#endif // MAHJONG_SUPPORT_INTERNER_H
