//===-- support/ThreadPool.h - Fixed-size worker pool ---------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size thread pool used by the heap modeler's parallel
/// type-consistency checks (paper section 5). Tasks are independent by
/// construction (one per class type), so the pool needs no futures or
/// task-local results: callers enqueue closures and wait for quiescence.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_THREADPOOL_H
#define MAHJONG_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mahjong {

/// Fixed pool of worker threads executing enqueued closures.
class ThreadPool {
public:
  /// Creates \p NumThreads workers. Zero means "hardware concurrency".
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Schedules \p Task for execution on some worker.
  void enqueue(std::function<void()> Task);

  /// Blocks until every enqueued task has finished running. If any task
  /// exited with an exception, rethrows the first one captured (the rest
  /// are dropped); the pool stays usable afterwards. Exceptions still
  /// pending at destruction are discarded.
  void wait();

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable AllDone;
  std::exception_ptr FirstError; ///< first task exception, for wait()
  size_t Active = 0;
  bool ShuttingDown = false;
};

} // namespace mahjong

#endif // MAHJONG_SUPPORT_THREADPOOL_H
