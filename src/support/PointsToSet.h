//===-- support/PointsToSet.h - Chunked sparse bitmap sets ----*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The points-to set representation used by the solver: a sparse bitmap
/// stored as a sorted vector of (chunk index, 64-bit word) pairs, where
/// element e lives in chunk e/64 at bit e%64. Unions and differences are
/// merge-joins over the chunk arrays, so propagating a delta into a large
/// set costs O(chunks of the delta), not O(size of the set) — the
/// difference between a points-to solver that scales and one that is
/// quadratic in the heap. Iteration is in ascending element order and the
/// whole structure is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_POINTSTOSET_H
#define MAHJONG_SUPPORT_POINTSTOSET_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace mahjong {

/// A set of dense 32-bit ids as a chunked sparse bitmap.
class PointsToSet {
  struct Chunk {
    uint32_t Index;
    uint64_t Word;
  };

public:
  PointsToSet() = default;

  /// Inserts \p Elem. \returns true if the set changed.
  bool insert(uint32_t Elem) {
    uint32_t Idx = Elem >> 6;
    uint64_t Bit = 1ull << (Elem & 63);
    auto It = lowerBound(Idx);
    if (It != Chunks.end() && It->Index == Idx) {
      if (It->Word & Bit)
        return false;
      It->Word |= Bit;
    } else {
      Chunks.insert(It, {Idx, Bit});
    }
    ++Count;
    return true;
  }

  bool contains(uint32_t Elem) const {
    uint32_t Idx = Elem >> 6;
    auto It = lowerBound(Idx);
    return It != Chunks.end() && It->Index == Idx &&
           (It->Word & (1ull << (Elem & 63)));
  }

  /// Unions \p Other into this set. \returns true if the set changed.
  /// A union that adds nothing — the common case once a solver reaches
  /// its fixpoint — is a pure merge-join scan: it allocates nothing.
  bool unionWith(const PointsToSet &Other) {
    if (Other.empty())
      return false;
    if (empty()) {
      *this = Other;
      return true;
    }
    // Fast path: all new chunks beyond our current maximum.
    if (Other.Chunks.front().Index > Chunks.back().Index) {
      Chunks.insert(Chunks.end(), Other.Chunks.begin(), Other.Chunks.end());
      Count += Other.Count;
      return true;
    }
    // Pre-scan: walk the join until Other contributes its first new bit.
    // If it never does, the union is a no-op and we are done without
    // having materialized anything.
    size_t I = 0, J = 0;
    bool Changed = false;
    while (J < Other.Chunks.size()) {
      if (I >= Chunks.size() || Other.Chunks[J].Index < Chunks[I].Index) {
        Changed = true; // a chunk we lack entirely
        break;
      }
      if (Chunks[I].Index < Other.Chunks[J].Index) {
        ++I;
        continue;
      }
      if (Other.Chunks[J].Word & ~Chunks[I].Word) {
        Changed = true; // new bits inside a shared chunk
        break;
      }
      ++I;
      ++J;
    }
    if (!Changed)
      return false;
    // Something new exists: now the merge allocation is justified. The
    // prefix up to (I, J) is already known to carry nothing new, but
    // re-merging it keeps the join trivially correct.
    std::vector<Chunk> Merged;
    Merged.reserve(Chunks.size() + Other.Chunks.size());
    I = 0;
    J = 0;
    while (I < Chunks.size() || J < Other.Chunks.size()) {
      if (J >= Other.Chunks.size() ||
          (I < Chunks.size() && Chunks[I].Index < Other.Chunks[J].Index)) {
        Merged.push_back(Chunks[I++]);
      } else if (I >= Chunks.size() ||
                 Other.Chunks[J].Index < Chunks[I].Index) {
        Merged.push_back(Other.Chunks[J++]);
        Count += std::popcount(Merged.back().Word);
      } else {
        uint64_t Added = Other.Chunks[J].Word & ~Chunks[I].Word;
        Count += std::popcount(Added);
        Merged.push_back({Chunks[I].Index, Chunks[I].Word | Added});
        ++I;
        ++J;
      }
    }
    Chunks = std::move(Merged);
    return true;
  }

  /// Computes \p Other minus this set (the elements of Other we lack).
  PointsToSet differenceFrom(const PointsToSet &Other) const {
    PointsToSet Diff;
    size_t I = 0;
    for (const Chunk &C : Other.Chunks) {
      while (I < Chunks.size() && Chunks[I].Index < C.Index)
        ++I;
      uint64_t Word = C.Word;
      if (I < Chunks.size() && Chunks[I].Index == C.Index)
        Word &= ~Chunks[I].Word;
      if (Word) {
        Diff.Chunks.push_back({C.Index, Word});
        Diff.Count += std::popcount(Word);
      }
    }
    return Diff;
  }

  bool empty() const { return Chunks.empty(); }
  size_t size() const { return Count; }
  void clear() {
    Chunks.clear();
    Count = 0;
  }

  /// Forward iterator over the elements in ascending order.
  class const_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t *;
    using reference = uint32_t;

    const_iterator(const std::vector<Chunk> *Chunks, size_t Pos)
        : Chunks(Chunks), Pos(Pos) {
      if (Pos < Chunks->size())
        Word = (*Chunks)[Pos].Word;
    }

    uint32_t operator*() const {
      return ((*Chunks)[Pos].Index << 6) +
             static_cast<uint32_t>(std::countr_zero(Word));
    }

    const_iterator &operator++() {
      Word &= Word - 1; // clear the lowest set bit
      while (Word == 0 && ++Pos < Chunks->size())
        Word = (*Chunks)[Pos].Word;
      return *this;
    }

    const_iterator operator++(int) {
      const_iterator Old = *this;
      ++*this;
      return Old;
    }

    bool operator!=(const const_iterator &O) const {
      return Pos != O.Pos || (Pos < Chunks->size() && Word != O.Word);
    }
    bool operator==(const const_iterator &O) const { return !(*this != O); }

  private:
    const std::vector<Chunk> *Chunks;
    size_t Pos;
    uint64_t Word = 0;
  };

  const_iterator begin() const { return const_iterator(&Chunks, 0); }
  const_iterator end() const { return const_iterator(&Chunks, Chunks.size()); }

  /// Materializes the elements as a sorted vector.
  std::vector<uint32_t> toVector() const {
    std::vector<uint32_t> V;
    V.reserve(Count);
    for (uint32_t E : *this)
      V.push_back(E);
    return V;
  }

  friend bool operator==(const PointsToSet &A, const PointsToSet &B) {
    if (A.Count != B.Count || A.Chunks.size() != B.Chunks.size())
      return false;
    for (size_t I = 0; I < A.Chunks.size(); ++I)
      if (A.Chunks[I].Index != B.Chunks[I].Index ||
          A.Chunks[I].Word != B.Chunks[I].Word)
        return false;
    return true;
  }

private:
  std::vector<Chunk>::iterator lowerBound(uint32_t Idx) {
    return std::lower_bound(
        Chunks.begin(), Chunks.end(), Idx,
        [](const Chunk &C, uint32_t Key) { return C.Index < Key; });
  }
  std::vector<Chunk>::const_iterator lowerBound(uint32_t Idx) const {
    return std::lower_bound(
        Chunks.begin(), Chunks.end(), Idx,
        [](const Chunk &C, uint32_t Key) { return C.Index < Key; });
  }

  std::vector<Chunk> Chunks;
  size_t Count = 0;
};

} // namespace mahjong

#endif // MAHJONG_SUPPORT_POINTSTOSET_H
