//===-- support/PointsToSet.h - Chunked sparse bitmap sets ----*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The points-to set representation used by the solver: a sparse bitmap
/// stored as a sorted vector of (chunk index, 64-bit word) pairs, where
/// element e lives in chunk e/64 at bit e%64. Unions and differences are
/// merge-joins over the chunk arrays, so propagating a delta into a large
/// set costs O(chunks of the delta), not O(size of the set) — the
/// difference between a points-to solver that scales and one that is
/// quadratic in the heap. Iteration is in ascending element order and the
/// whole structure is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_POINTSTOSET_H
#define MAHJONG_SUPPORT_POINTSTOSET_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace mahjong {

/// A set of dense 32-bit ids as a chunked sparse bitmap.
class PointsToSet {
  struct Chunk {
    uint32_t Index;
    uint64_t Word;
  };

public:
  PointsToSet() = default;

  /// Inserts \p Elem. \returns true if the set changed.
  bool insert(uint32_t Elem) {
    uint32_t Idx = Elem >> 6;
    uint64_t Bit = 1ull << (Elem & 63);
    auto It = lowerBound(Idx);
    if (It != Chunks.end() && It->Index == Idx) {
      if (It->Word & Bit)
        return false;
      It->Word |= Bit;
    } else {
      Chunks.insert(It, {Idx, Bit});
    }
    ++Count;
    return true;
  }

  bool contains(uint32_t Elem) const {
    uint32_t Idx = Elem >> 6;
    auto It = lowerBound(Idx);
    return It != Chunks.end() && It->Index == Idx &&
           (It->Word & (1ull << (Elem & 63)));
  }

  /// Unions \p Other into this set. \returns true if the set changed.
  ///
  /// Cost is bounded by the *window* of this set at or above Other's
  /// first chunk index, never by the whole set: solver deltas carry
  /// overwhelmingly recently interned (= high) ids, so a delivery into a
  /// large accumulated set touches its tail, not its body. A union that
  /// adds nothing — the common case once a solver reaches its fixpoint —
  /// is a pure merge-join scan of that window and allocates nothing; a
  /// union that only sets bits in existing chunks ORs them in place; only
  /// genuinely new chunks shift the window right (backward in-place
  /// merge, amortized by vector capacity doubling).
  bool unionWith(const PointsToSet &Other) {
    if (Other.empty())
      return false;
    if (empty()) {
      *this = Other;
      return true;
    }
    // Fast path: all new chunks beyond our current maximum.
    if (Other.Chunks.front().Index > Chunks.back().Index) {
      Chunks.insert(Chunks.end(), Other.Chunks.begin(), Other.Chunks.end());
      Count += Other.Count;
      return true;
    }
    // Everything below Other's first chunk index is untouched by the join.
    size_t Lo = static_cast<size_t>(lowerBound(Other.Chunks.front().Index) -
                                    Chunks.begin());
    // Pre-scan the window: does Other contribute any new bit, and how
    // many chunks does it add that we lack entirely?
    size_t I = Lo, J = 0, NewChunks = 0;
    bool Changed = false;
    while (J < Other.Chunks.size()) {
      if (I >= Chunks.size() || Other.Chunks[J].Index < Chunks[I].Index) {
        ++NewChunks;
        ++J;
        Changed = true;
      } else if (Chunks[I].Index < Other.Chunks[J].Index) {
        ++I;
      } else {
        Changed |= (Other.Chunks[J].Word & ~Chunks[I].Word) != 0;
        ++I;
        ++J;
      }
    }
    if (!Changed)
      return false;
    if (NewChunks == 0) {
      // Bits land only in chunks we already have: OR them in, in place.
      I = Lo;
      for (const Chunk &C : Other.Chunks) {
        while (Chunks[I].Index < C.Index)
          ++I;
        uint64_t Added = C.Word & ~Chunks[I].Word;
        Chunks[I].Word |= Added;
        Count += std::popcount(Added);
        ++I;
      }
      return true;
    }
    // Backward in-place merge. When the delta is exhausted the write and
    // read cursors have met (every slot above came from a move, a merge,
    // or one of the NewChunks inserts), so the prefix [Lo, Ri) is already
    // in its final position and the merge stops at the window, not at the
    // start of the array.
    size_t OldSize = Chunks.size();
    Chunks.resize(OldSize + NewChunks);
    size_t W = Chunks.size(), Ri = OldSize;
    J = Other.Chunks.size();
    while (J > 0) {
      if (Ri > Lo && Chunks[Ri - 1].Index > Other.Chunks[J - 1].Index) {
        Chunks[--W] = Chunks[--Ri];
      } else if (Ri > Lo &&
                 Chunks[Ri - 1].Index == Other.Chunks[J - 1].Index) {
        uint64_t Added = Other.Chunks[J - 1].Word & ~Chunks[Ri - 1].Word;
        Count += std::popcount(Added);
        --W;
        --Ri;
        --J;
        Chunks[W] = {Chunks[Ri].Index, Chunks[Ri].Word | Added};
      } else {
        --W;
        --J;
        Chunks[W] = Other.Chunks[J];
        Count += std::popcount(Chunks[W].Word);
      }
    }
    return true;
  }

  /// Intersects this set with \p Other in place. Like unionWith, a
  /// merge-join over the chunk arrays; allocates nothing (chunks are
  /// compacted in place).
  void intersectWith(const PointsToSet &Other) {
    if (empty())
      return;
    if (Other.empty()) {
      clear();
      return;
    }
    size_t Kept = 0, J = 0;
    size_t NewCount = 0;
    for (size_t I = 0; I < Chunks.size(); ++I) {
      while (J < Other.Chunks.size() &&
             Other.Chunks[J].Index < Chunks[I].Index)
        ++J;
      if (J >= Other.Chunks.size())
        break;
      if (Other.Chunks[J].Index != Chunks[I].Index)
        continue;
      uint64_t Word = Chunks[I].Word & Other.Chunks[J].Word;
      if (Word) {
        Chunks[Kept++] = {Chunks[I].Index, Word};
        NewCount += std::popcount(Word);
      }
    }
    Chunks.resize(Kept);
    Count = NewCount;
  }

  /// \returns true if this set and \p Other share at least one element.
  /// A merge-join scan with early exit; never allocates.
  bool anyCommon(const PointsToSet &Other) const {
    size_t I = 0, J = 0;
    while (I < Chunks.size() && J < Other.Chunks.size()) {
      if (Chunks[I].Index < Other.Chunks[J].Index)
        ++I;
      else if (Other.Chunks[J].Index < Chunks[I].Index)
        ++J;
      else if (Chunks[I].Word & Other.Chunks[J].Word)
        return true;
      else {
        ++I;
        ++J;
      }
    }
    return false;
  }

  /// Computes \p Other minus this set (the elements of Other we lack).
  PointsToSet differenceFrom(const PointsToSet &Other) const {
    PointsToSet Diff;
    size_t I = 0;
    for (const Chunk &C : Other.Chunks) {
      while (I < Chunks.size() && Chunks[I].Index < C.Index)
        ++I;
      uint64_t Word = C.Word;
      if (I < Chunks.size() && Chunks[I].Index == C.Index)
        Word &= ~Chunks[I].Word;
      if (Word) {
        Diff.Chunks.push_back({C.Index, Word});
        Diff.Count += std::popcount(Word);
      }
    }
    return Diff;
  }

  bool empty() const { return Chunks.empty(); }
  size_t size() const { return Count; }

  /// Heap bytes owned by this set (capacity, not just live chunks) —
  /// the unit of the solver's engine-owned working-set statistic
  /// (PTAStats::WorkingSetBytes).
  size_t memoryBytes() const { return Chunks.capacity() * sizeof(Chunk); }

  /// Bytes of live chunk storage. A pure function of the set's contents
  /// — unlike memoryBytes() it ignores allocator slack, so it compares
  /// equal across solver engines that compute the same solution
  /// (PTAStats::SetBytes).
  size_t liveBytes() const { return Chunks.size() * sizeof(Chunk); }
  void clear() {
    Chunks.clear();
    Count = 0;
  }

  /// Forward iterator over the elements in ascending order.
  class const_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t *;
    using reference = uint32_t;

    const_iterator(const std::vector<Chunk> *Chunks, size_t Pos)
        : Chunks(Chunks), Pos(Pos) {
      if (Pos < Chunks->size())
        Word = (*Chunks)[Pos].Word;
    }

    uint32_t operator*() const {
      return ((*Chunks)[Pos].Index << 6) +
             static_cast<uint32_t>(std::countr_zero(Word));
    }

    const_iterator &operator++() {
      Word &= Word - 1; // clear the lowest set bit
      while (Word == 0 && ++Pos < Chunks->size())
        Word = (*Chunks)[Pos].Word;
      return *this;
    }

    const_iterator operator++(int) {
      const_iterator Old = *this;
      ++*this;
      return Old;
    }

    bool operator!=(const const_iterator &O) const {
      return Pos != O.Pos || (Pos < Chunks->size() && Word != O.Word);
    }
    bool operator==(const const_iterator &O) const { return !(*this != O); }

  private:
    const std::vector<Chunk> *Chunks;
    size_t Pos;
    uint64_t Word = 0;
  };

  const_iterator begin() const { return const_iterator(&Chunks, 0); }
  const_iterator end() const { return const_iterator(&Chunks, Chunks.size()); }

  /// Materializes the elements as a sorted vector.
  std::vector<uint32_t> toVector() const {
    std::vector<uint32_t> V;
    V.reserve(Count);
    for (uint32_t E : *this)
      V.push_back(E);
    return V;
  }

  friend bool operator==(const PointsToSet &A, const PointsToSet &B) {
    if (A.Count != B.Count || A.Chunks.size() != B.Chunks.size())
      return false;
    for (size_t I = 0; I < A.Chunks.size(); ++I)
      if (A.Chunks[I].Index != B.Chunks[I].Index ||
          A.Chunks[I].Word != B.Chunks[I].Word)
        return false;
    return true;
  }

private:
  std::vector<Chunk>::iterator lowerBound(uint32_t Idx) {
    return std::lower_bound(
        Chunks.begin(), Chunks.end(), Idx,
        [](const Chunk &C, uint32_t Key) { return C.Index < Key; });
  }
  std::vector<Chunk>::const_iterator lowerBound(uint32_t Idx) const {
    return std::lower_bound(
        Chunks.begin(), Chunks.end(), Idx,
        [](const Chunk &C, uint32_t Key) { return C.Index < Key; });
  }

  std::vector<Chunk> Chunks;
  size_t Count = 0;
};

} // namespace mahjong

#endif // MAHJONG_SUPPORT_POINTSTOSET_H
