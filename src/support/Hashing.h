//===-- support/Hashing.h - Byte-stream and key hashing -------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic hashes shared by the snapshot format and the query
/// engine: a streaming FNV-1a 64-bit digest (the .mjsnap payload checksum)
/// and splitmix64 for mixing fixed-width keys. Both are stable across
/// platforms and runs, which is what a persisted, checksummed format needs
/// — std::hash guarantees neither.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_HASHING_H
#define MAHJONG_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mahjong {

/// Streaming FNV-1a over bytes; feed any number of chunks, then read
/// digest(). Default-constructed state is the standard offset basis.
class Fnv1a64 {
public:
  void update(const void *Data, size_t Len) {
    const auto *Bytes = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Len; ++I) {
      State ^= Bytes[I];
      State *= 1099511628211ull;
    }
  }
  void update(std::string_view S) { update(S.data(), S.size()); }

  uint64_t digest() const { return State; }

private:
  uint64_t State = 1469598103934665603ull;
};

/// One-shot FNV-1a of a byte range.
inline uint64_t fnv1a64(const void *Data, size_t Len) {
  Fnv1a64 H;
  H.update(Data, Len);
  return H.digest();
}

inline uint64_t fnv1a64(std::string_view S) {
  return fnv1a64(S.data(), S.size());
}

/// splitmix64 finalizer: a cheap, well-distributed mix of a 64-bit key.
/// Also the standard way to seed/step small deterministic RNGs (the
/// traffic driver gives every simulated client splitmix64(seed, client)).
inline uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace mahjong

#endif // MAHJONG_SUPPORT_HASHING_H
