//===-- support/Ids.h - Strong dense identifier types ---------*- C++ -*-===//
//
// Part of mahjong-cpp, a reproduction of the PLDI'17 MAHJONG heap
// abstraction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed dense identifiers. Every entity in the analysis (types,
/// fields, methods, variables, objects, call sites, contexts, ...) is
/// referred to by a 32-bit index into an arena owned by its registry.
/// Wrapping the index in a tagged struct prevents accidentally mixing id
/// kinds while keeping the runtime representation a plain uint32_t.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_IDS_H
#define MAHJONG_SUPPORT_IDS_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace mahjong {

/// A strongly typed wrapper around a dense 32-bit index.
///
/// \tparam Tag an empty struct that distinguishes id kinds at compile time.
template <typename Tag> class Id {
public:
  static constexpr uint32_t InvalidValue = 0xFFFFFFFFu;

  constexpr Id() = default;
  constexpr explicit Id(uint32_t Value) : Value(Value) {}

  /// Returns the raw index. Only valid ids may be dereferenced.
  constexpr uint32_t idx() const {
    assert(isValid() && "dereferencing an invalid id");
    return Value;
  }

  /// Returns the raw value without the validity assertion (for hashing).
  constexpr uint32_t raw() const { return Value; }

  constexpr bool isValid() const { return Value != InvalidValue; }

  static constexpr Id invalid() { return Id(); }

  friend constexpr bool operator==(Id A, Id B) { return A.Value == B.Value; }
  friend constexpr bool operator!=(Id A, Id B) { return A.Value != B.Value; }
  friend constexpr bool operator<(Id A, Id B) { return A.Value < B.Value; }

private:
  uint32_t Value = InvalidValue;
};

// Tags for the id kinds used throughout the project.
struct TypeTag;
struct FieldTag;
struct MethodTag;
struct VarTag;
struct ObjTag;      // abstract heap object == allocation site
struct CallSiteTag;
struct ContextTag;  // interned context
struct CSVarTag;    // context-sensitive variable
struct CSObjTag;    // context-sensitive object
struct CSMethodTag; // context-sensitive method
struct DFAStateTag; // interned determinized automaton state

using TypeId = Id<TypeTag>;
using FieldId = Id<FieldTag>;
using MethodId = Id<MethodTag>;
using VarId = Id<VarTag>;
using ObjId = Id<ObjTag>;
using CallSiteId = Id<CallSiteTag>;
using ContextId = Id<ContextTag>;
using CSVarId = Id<CSVarTag>;
using CSObjId = Id<CSObjTag>;
using CSMethodId = Id<CSMethodTag>;
using DFAStateId = Id<DFAStateTag>;

} // namespace mahjong

namespace std {
template <typename Tag> struct hash<mahjong::Id<Tag>> {
  size_t operator()(mahjong::Id<Tag> Id) const noexcept {
    return std::hash<uint32_t>()(Id.raw());
  }
};
} // namespace std

#endif // MAHJONG_SUPPORT_IDS_H
