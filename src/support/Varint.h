//===-- support/Varint.h - LEB128 byte-buffer codec -----------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unsigned LEB128 varints over a std::string byte buffer, plus a
/// bounds-checked cursor for decoding. This is the primitive layer of the
/// .mjsnap snapshot format: ids are small after dense interning and
/// points-to sets are stored as deltas of sorted ids, so the overwhelming
/// majority of values fit in one byte.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_VARINT_H
#define MAHJONG_SUPPORT_VARINT_H

#include <cstdint>
#include <string>
#include <string_view>

namespace mahjong {

/// Appends \p Value to \p Buf as unsigned LEB128 (1..10 bytes).
inline void putVarint(std::string &Buf, uint64_t Value) {
  while (Value >= 0x80) {
    Buf.push_back(static_cast<char>((Value & 0x7f) | 0x80));
    Value >>= 7;
  }
  Buf.push_back(static_cast<char>(Value));
}

/// Appends a length-prefixed string.
inline void putString(std::string &Buf, std::string_view S) {
  putVarint(Buf, S.size());
  Buf.append(S.data(), S.size());
}

/// Bounds-checked forward cursor over an encoded buffer. Every read
/// reports failure instead of running past the end, so a truncated or
/// corrupted snapshot degrades into a clean load error, never UB.
class ByteReader {
public:
  explicit ByteReader(std::string_view Data) : Data(Data) {}

  bool atEnd() const { return Pos >= Data.size(); }
  size_t pos() const { return Pos; }
  size_t remaining() const { return Data.size() - Pos; }
  bool ok() const { return !Failed; }

  /// Reads one varint into \p Out; on failure returns false and poisons
  /// the reader (all subsequent reads fail too).
  bool readVarint(uint64_t &Out) {
    uint64_t Value = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Pos >= Data.size())
        return fail();
      uint8_t Byte = static_cast<uint8_t>(Data[Pos++]);
      Value |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if (!(Byte & 0x80)) {
        Out = Value;
        return true;
      }
    }
    return fail(); // > 10 bytes: malformed
  }

  /// Reads a varint that must fit 32 bits.
  bool readU32(uint32_t &Out) {
    uint64_t V;
    if (!readVarint(V) || V > 0xFFFFFFFFull)
      return fail();
    Out = static_cast<uint32_t>(V);
    return true;
  }

  /// Reads a length-prefixed string.
  bool readString(std::string &Out) {
    uint64_t Len;
    if (!readVarint(Len) || Len > Data.size() - Pos)
      return fail();
    Out.assign(Data.data() + Pos, Len);
    Pos += Len;
    return true;
  }

  /// Returns a view of the next \p Len raw bytes and skips them.
  bool readBytes(size_t Len, std::string_view &Out) {
    if (Len > Data.size() - Pos)
      return fail();
    Out = Data.substr(Pos, Len);
    Pos += Len;
    return true;
  }

private:
  bool fail() {
    Failed = true;
    Pos = Data.size();
    return false;
  }

  std::string_view Data;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace mahjong

#endif // MAHJONG_SUPPORT_VARINT_H
