//===-- support/Timer.cpp --------------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

// Timer is header-only today; this TU anchors the library.
