//===-- support/Histogram.h - Log-bucketed latency histogram --*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An HDR-style log-linear histogram over uint64 values (latencies in
/// nanoseconds, set sizes, bytes). Each power-of-two octave is split into
/// 16 linear subbuckets, so any recorded value lands in a bucket whose
/// width is at most 1/16 of its magnitude — percentile answers are within
/// ~6.25% of the exact order statistic, at a fixed 976-bucket footprint
/// regardless of how many samples arrive or how they are distributed.
/// This replaces sort-the-whole-vector percentiles: recording is O(1),
/// lock-free (relaxed atomic adds), and safe from any number of threads.
///
/// Bucket math (SubBucketBits = 4):
///   values 0..15 map to buckets 0..15 exactly (width 1);
///   a value with highest set bit e >= 4 maps to
///     bucket ((e - 4) << 4) + (v >> (e - 4)),
///   i.e. the top 5 bits of the value select the bucket. The inverse
///   lower bound of bucket i >= 16 is (16 + (i & 15)) << ((i >> 4) - 1).
///   The largest 64-bit value lands in bucket 975.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_HISTOGRAM_H
#define MAHJONG_SUPPORT_HISTOGRAM_H

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace mahjong {

/// Thread-safe log-bucketed histogram of uint64 samples.
class LogHistogram {
public:
  static constexpr unsigned SubBucketBits = 4;
  static constexpr unsigned SubBuckets = 1u << SubBucketBits; // 16
  /// Bucket count covering the full 64-bit range: 60 octaves of 16
  /// subbuckets beyond the 16 exact low values.
  static constexpr unsigned NumBuckets =
      ((64 - SubBucketBits) << SubBucketBits) + SubBuckets; // 976

  LogHistogram() : Counts(NumBuckets) {}

  LogHistogram(const LogHistogram &) = delete;
  LogHistogram &operator=(const LogHistogram &) = delete;

  /// Index of the bucket \p V falls into.
  static constexpr unsigned bucketOf(uint64_t V) {
    if (V < SubBuckets)
      return static_cast<unsigned>(V);
    unsigned E = 63u - static_cast<unsigned>(std::countl_zero(V));
    return ((E - SubBucketBits) << SubBucketBits) +
           static_cast<unsigned>(V >> (E - SubBucketBits));
  }

  /// Smallest value mapping to bucket \p I.
  static constexpr uint64_t bucketLow(unsigned I) {
    if (I < 2 * SubBuckets) // buckets 0..31 hold exact values 0..31
      return I;
    return static_cast<uint64_t>(SubBuckets + (I & (SubBuckets - 1)))
           << ((I >> SubBucketBits) - 1);
  }

  /// Largest value mapping to bucket \p I (inclusive).
  static constexpr uint64_t bucketHigh(unsigned I) {
    if (I < 2 * SubBuckets)
      return I;
    return bucketLow(I) + (uint64_t(1) << ((I >> SubBucketBits) - 1)) - 1;
  }

  /// Records one sample. Lock-free; callable from any thread.
  void record(uint64_t V) {
    Counts[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    Total.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    uint64_t Prev = Max.load(std::memory_order_relaxed);
    while (Prev < V &&
           !Max.compare_exchange_weak(Prev, V, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return Total.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t countAt(unsigned I) const {
    return Counts[I].load(std::memory_order_relaxed);
  }
  double mean() const {
    uint64_t N = count();
    return N ? static_cast<double>(sum()) / static_cast<double>(N) : 0;
  }

  /// The bucket-midpoint estimate of the \p Q quantile (Q in [0, 1]),
  /// matching the sorted-vector convention sorted[min(N-1, floor(Q*N))]:
  /// the answer is in the same bucket as the exact order statistic, so it
  /// is off by at most one bucket width. Returns 0 on an empty histogram.
  /// Concurrent record() calls make the answer approximate, never unsafe.
  uint64_t percentile(double Q) const {
    uint64_t N = count();
    if (N == 0)
      return 0;
    uint64_t Rank = std::min<uint64_t>(
        N - 1, static_cast<uint64_t>(Q * static_cast<double>(N)));
    uint64_t Seen = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      Seen += countAt(I);
      if (Seen > Rank)
        return bucketLow(I) + (bucketHigh(I) - bucketLow(I)) / 2;
    }
    return max();
  }

  /// Folds \p Other's samples into this histogram.
  void mergeFrom(const LogHistogram &Other) {
    for (unsigned I = 0; I < NumBuckets; ++I)
      if (uint64_t C = Other.countAt(I))
        Counts[I].fetch_add(C, std::memory_order_relaxed);
    Total.fetch_add(Other.count(), std::memory_order_relaxed);
    Sum.fetch_add(Other.sum(), std::memory_order_relaxed);
    uint64_t V = Other.max();
    uint64_t Prev = Max.load(std::memory_order_relaxed);
    while (Prev < V &&
           !Max.compare_exchange_weak(Prev, V, std::memory_order_relaxed)) {
    }
  }

private:
  std::vector<std::atomic<uint64_t>> Counts;
  std::atomic<uint64_t> Total{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

} // namespace mahjong

#endif // MAHJONG_SUPPORT_HISTOGRAM_H
