//===-- support/DisjointSets.h - Union-find forest ------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A disjoint-set forest with union by rank and path compression, the
/// structure MAHJONG uses both in the heap modeler (Algorithm 1) and in the
/// Hopcroft-Karp automata equivalence checker (Algorithm 4). Amortized cost
/// per operation is effectively constant (inverse Ackermann).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_DISJOINTSETS_H
#define MAHJONG_SUPPORT_DISJOINTSETS_H

#include <cstdint>
#include <vector>

namespace mahjong {

/// Disjoint-set forest over the dense universe [0, size).
class DisjointSets {
public:
  DisjointSets() = default;
  explicit DisjointSets(uint32_t Size) { grow(Size); }

  /// Extends the universe to [0, Size); new elements are singletons.
  void grow(uint32_t Size);

  /// Pre-allocates capacity for \p Capacity elements without changing the
  /// universe, so interleaved one-at-a-time grow() calls don't reallocate
  /// the three backing arrays per element.
  void reserve(uint32_t Capacity);

  /// \returns true if \p X is currently the representative of its set.
  bool isRep(uint32_t X) const { return Parent[X] == X; }

  uint32_t size() const { return static_cast<uint32_t>(Parent.size()); }

  /// Returns the representative of the set containing \p X, compressing the
  /// path along the way. Defined inline: solvers call this on every edge
  /// touch, and the overwhelmingly common singleton/compressed case is a
  /// single load-compare.
  uint32_t find(uint32_t X) {
    uint32_t P = Parent[X];
    if (P == X)
      return X;
    if (Parent[P] == P)
      return P;
    return findSlow(X);
  }

  /// Representative lookup without path compression, safe to call
  /// concurrently with other readers (it never writes Parent). The
  /// wave-parallel solver resolves edge targets with this during its
  /// concurrent phase; the mutating find() would race its own compression
  /// stores against other workers' loads. Chains stay short because every
  /// serial-phase find() still compresses.
  uint32_t findReadOnly(uint32_t X) const {
    while (Parent[X] != X)
      X = Parent[X];
    return X;
  }

  /// Unites the sets containing \p X and \p Y by rank.
  ///
  /// \returns the representative of the merged set.
  uint32_t unite(uint32_t X, uint32_t Y);

  /// \returns true if \p X and \p Y are currently in the same set.
  bool connected(uint32_t X, uint32_t Y) { return find(X) == find(Y); }

  /// Number of elements in the set containing \p X.
  uint32_t setSize(uint32_t X) { return Size[find(X)]; }

  /// Number of disjoint sets in the current universe.
  uint32_t numSets() const { return NumSets; }

private:
  /// The ≥2-hop case of find(): root search + path compression.
  uint32_t findSlow(uint32_t X);

  std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
  std::vector<uint32_t> Size;
  uint32_t NumSets = 0;
};

} // namespace mahjong

#endif // MAHJONG_SUPPORT_DISJOINTSETS_H
