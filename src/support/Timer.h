//===-- support/Timer.h - Wall-clock timing ------------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small wall-clock timer for the evaluation harness.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SUPPORT_TIMER_H
#define MAHJONG_SUPPORT_TIMER_H

#include <chrono>

namespace mahjong {

/// Measures elapsed wall-clock time since construction or the last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since start.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since start.
  double millis() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace mahjong

#endif // MAHJONG_SUPPORT_TIMER_H
