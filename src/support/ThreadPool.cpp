//===-- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <utility>

using namespace mahjong;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  TaskAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Tasks.push_back(std::move(Task));
  }
  TaskAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Tasks.empty() && Active == 0; });
  if (FirstError) {
    std::exception_ptr Error = std::exchange(FirstError, nullptr);
    Lock.unlock();
    std::rethrow_exception(Error);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Tasks.empty(); });
      if (Tasks.empty())
        return; // shutting down
      Task = std::move(Tasks.front());
      Tasks.pop_front();
      ++Active;
    }
    std::exception_ptr Error;
    try {
      Task();
    } catch (...) {
      Error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Error && !FirstError)
        FirstError = std::move(Error);
      --Active;
      if (Tasks.empty() && Active == 0)
        AllDone.notify_all();
    }
  }
}
