//===-- net/SnapshotRegistry.h - RCU-style snapshot publishing *- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hot-swap core of the serving tier: a registry holding the one
/// *current* serving snapshot and publishing replacements with one
/// pointer swap inside a tiny critical section while readers keep
/// answering — RCU in shared_ptr clothing.
///
/// The epoch-pinning invariant:
///
///  - A reader calls pin() — a mutex-guarded shared_ptr copy — and holds
///    the returned handle for exactly one query. Everything the query needs
///    (the decoded SnapshotData, the per-epoch QueryEngine and its
///    cache, the precomputed digest) hangs off that handle, so the
///    answer is consistent with exactly one published snapshot even
///    while a swap lands mid-query.
///  - swapFromFile() does all expensive work off the publish path: read
///    the .mjsnap bytes, decode + validate them, digest the content and
///    build a fresh QueryEngine; only then does one pointer swap make
///    the new epoch current. Failures leave the current epoch untouched.
///  - The displaced snapshot is *retired, not freed*: pinned readers
///    keep it alive until the last handle drops, when shared_ptr
///    reclaims it. retiredAlive() counts retired epochs still breathing
///    — the hot-swap tests assert it returns to zero after drain.
///
/// Every epoch gets its *own* QueryEngine, and therefore its own query
/// cache: a cache entry can never outlive the snapshot it was computed
/// from, so a swap can never serve stale answers (the cache is scoped by
/// epoch, not invalidated across one).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_NET_SNAPSHOTREGISTRY_H
#define MAHJONG_NET_SNAPSHOTREGISTRY_H

#include "serve/QueryEngine.h"
#include "serve/Snapshot.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mahjong::net {

/// One published snapshot: the immutable data, its content digest, and
/// the epoch-scoped query engine (with the epoch's private cache).
class ServingSnapshot {
public:
  ServingSnapshot(uint32_t Epoch,
                  std::shared_ptr<const serve::SnapshotData> Data,
                  std::string Source, size_t CacheCapacity);

  uint32_t epoch() const { return Epoch; }
  uint64_t digest() const { return Digest; }
  const std::string &source() const { return Source; }
  const serve::QueryEngine &engine() const { return Engine; }
  const serve::SnapshotData &data() const { return Engine.data(); }

private:
  uint32_t Epoch;
  uint64_t Digest;
  std::string Source; ///< file path or "<memory>", for stats/logs
  serve::QueryEngine Engine;
};

/// Publishes snapshots; readers pin the current one per query.
class SnapshotRegistry {
public:
  /// Seeds epoch 1. \p Source labels where the snapshot came from.
  SnapshotRegistry(std::shared_ptr<const serve::SnapshotData> Initial,
                   std::string Source, size_t CacheCapacity = 1 << 14);

  SnapshotRegistry(const SnapshotRegistry &) = delete;
  SnapshotRegistry &operator=(const SnapshotRegistry &) = delete;

  /// One brief critical section — a mutex-guarded shared_ptr copy; the
  /// handle keeps that epoch alive until released. (Deliberately not
  /// std::atomic<shared_ptr>: libstdc++ implements that as a spinlock
  /// on the refcount word whose load() path unlocks relaxed, which
  /// ThreadSanitizer reports as a formal data race. A plain mutex has
  /// the same reader-serialization shape and is verifiable.)
  std::shared_ptr<const ServingSnapshot> pin() const {
    std::lock_guard<std::mutex> Lock(CurrentMutex);
    return Current;
  }

  /// Loads, decodes and validates \p Path (expensive — call off the
  /// serving thread), then publishes it with one pointer swap.
  /// \returns false with a diagnostic in \p Err; the current epoch is
  /// untouched on failure.
  bool swapFromFile(const std::string &Path, std::string &Err);

  /// Publishes an already-decoded snapshot. \returns the new epoch.
  uint32_t publish(std::shared_ptr<const serve::SnapshotData> Data,
                   std::string Source);

  /// Retired epochs still alive because a reader pins them. Prunes the
  /// dead before counting.
  size_t retiredAlive() const;

  /// Successful publishes after the seed (i.e. completed swaps).
  uint64_t swapCount() const {
    return Swaps.load(std::memory_order_relaxed);
  }

private:
  size_t CacheCapacity;
  /// The current epoch, guarded by CurrentMutex. Readers hold the lock
  /// only for a shared_ptr copy; the publisher only for one swap.
  mutable std::mutex CurrentMutex;
  std::shared_ptr<const ServingSnapshot> Current;

  /// Serializes publishers (swaps are rare; readers never touch this).
  mutable std::mutex PublishMutex;
  uint32_t NextEpoch = 2; ///< guarded by PublishMutex
  /// Every displaced epoch, weakly: liveness here means a reader still
  /// pins it. Pruned on retiredAlive().
  mutable std::vector<std::weak_ptr<const ServingSnapshot>> Retired;

  std::atomic<uint64_t> Swaps{0};
};

} // namespace mahjong::net

#endif // MAHJONG_NET_SNAPSHOTREGISTRY_H
