//===-- net/SocketTraffic.cpp - Socket-mode traffic driver -------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/SocketTraffic.h"

#include "net/Client.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>

using namespace mahjong;
using namespace mahjong::net;

std::string SocketTrafficReport::toJson() const {
  std::ostringstream OS;
  OS << "{\"queries\": " << Queries << ", \"failed\": " << Failed
     << ", \"transport_errors\": " << TransportErrors
     << ", \"connections\": " << Connections
     << ", \"reconnects\": " << Reconnects << ", \"seconds\": " << Seconds
     << ", \"qps\": " << QPS << ", \"p50_us\": " << P50Micros
     << ", \"p95_us\": " << P95Micros << ", \"p99_us\": " << P99Micros
     << ", \"epoch_min\": " << EpochMin << ", \"epoch_max\": " << EpochMax
     << ", \"digests_seen\": " << DigestsSeen.size() << ", \"digests\": [";
  for (size_t I = 0; I < DigestsSeen.size(); ++I) {
    if (I)
      OS << ", ";
    char Hex[32];
    std::snprintf(Hex, sizeof(Hex), "\"%016llx\"",
                  static_cast<unsigned long long>(DigestsSeen[I]));
    OS << Hex;
  }
  OS << "], \"kinds\": {";
  bool First = true;
  for (unsigned K = 0; K < serve::NumDataQueryKinds; ++K) {
    const serve::TrafficReport::KindLatency &KL = Kinds[K];
    if (KL.Count == 0)
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << "\"" << serve::queryKindName(static_cast<serve::QueryKind>(K))
       << "\": {\"count\": " << KL.Count << ", \"p50_us\": " << KL.P50Micros
       << ", \"p95_us\": " << KL.P95Micros
       << ", \"p99_us\": " << KL.P99Micros << "}";
  }
  OS << "}}";
  return OS.str();
}

SocketTrafficReport mahjong::net::runSocketTraffic(
    const serve::SnapshotData &KeyData, const serve::QueryWorkload &W,
    const SocketTrafficOptions &Opts, std::ostream *Progress) {
  using Clock = std::chrono::steady_clock;

  obs::MetricsRegistry Metrics;
  LogHistogram OverallNs;
  LogHistogram PerKindNs[serve::NumDataQueryKinds];
  std::atomic<uint64_t> Completed{0}, Failed{0}, TransportErrors{0};
  std::atomic<uint64_t> Connections{0}, Reconnects{0};
  std::atomic<uint32_t> EpochMin{~0u}, EpochMax{0};
  std::mutex DigestMu;
  std::set<uint64_t> Digests;

  Clock::time_point Start = Clock::now();
  Clock::time_point Deadline =
      W.DurationSeconds > 0
          ? Start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(W.DurationSeconds))
          : Clock::time_point::max();

  std::vector<std::thread> Clients;
  Clients.reserve(W.Clients);
  for (unsigned C = 0; C < W.Clients; ++C) {
    Clients.emplace_back([&, C] {
      // Phased ramp: client C joins C * ramp_seconds into the run, so
      // load builds in steps instead of a thundering herd.
      if (W.RampSeconds > 0 && C > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(C * W.RampSeconds));

      // Per-connection latency histogram, named by client index. The
      // registry hands back a stable reference; record() is atomic.
      LogHistogram &ConnNs =
          Metrics.histogram("client." + std::to_string(C) + ".request_ns");

      serve::QueryGenerator Gen(KeyData, W, C);
      Client Conn;
      std::string Err;
      if (!Conn.connect(Opts.Host, Opts.Port, Err)) {
        TransportErrors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Connections.fetch_add(1, std::memory_order_relaxed);

      std::set<uint64_t> LocalDigests;
      uint32_t LocalMin = ~0u, LocalMax = 0;
      for (uint64_t I = 0;; ++I) {
        if (W.DurationSeconds > 0) {
          if (Clock::now() >= Deadline)
            break;
        } else if (I >= W.QueriesPerClient) {
          break;
        }
        // Connection churn: tear the socket down and dial again every
        // churn_every queries, so accept/close paths stay hot too.
        if (W.ChurnEvery > 0 && I > 0 && I % W.ChurnEvery == 0) {
          Conn.close();
          if (!Conn.connect(Opts.Host, Opts.Port, Err)) {
            TransportErrors.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          Connections.fetch_add(1, std::memory_order_relaxed);
          Reconnects.fetch_add(1, std::memory_order_relaxed);
        }
        serve::QueryKind Kind = serve::QueryKind::PointsTo;
        std::string Text = Gen.next(&Kind);
        Response R;
        Clock::time_point T0 = Clock::now();
        if (!Conn.query(Text, R, Err)) {
          TransportErrors.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        Clock::time_point T1 = Clock::now();
        uint64_t Ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
                .count());
        OverallNs.record(Ns);
        PerKindNs[static_cast<unsigned>(Kind)].record(Ns);
        ConnNs.record(Ns);
        Completed.fetch_add(1, std::memory_order_relaxed);
        Failed.fetch_add(!R.Ok, std::memory_order_relaxed);
        LocalDigests.insert(R.Digest);
        LocalMin = std::min(LocalMin, R.Epoch);
        LocalMax = std::max(LocalMax, R.Epoch);
      }
      if (!LocalDigests.empty()) {
        std::lock_guard<std::mutex> Lock(DigestMu);
        Digests.insert(LocalDigests.begin(), LocalDigests.end());
      }
      uint32_t Seen;
      Seen = EpochMin.load(std::memory_order_relaxed);
      while (LocalMin < Seen &&
             !EpochMin.compare_exchange_weak(Seen, LocalMin,
                                             std::memory_order_relaxed))
        ;
      Seen = EpochMax.load(std::memory_order_relaxed);
      while (LocalMax > Seen &&
             !EpochMax.compare_exchange_weak(Seen, LocalMax,
                                             std::memory_order_relaxed))
        ;
    });
  }

  std::mutex HeartbeatMu;
  std::condition_variable HeartbeatCv;
  bool Done = false;
  std::thread Heartbeat;
  if (Progress && W.HeartbeatSeconds > 0) {
    Heartbeat = std::thread([&] {
      auto Period = std::chrono::duration<double>(W.HeartbeatSeconds);
      std::unique_lock<std::mutex> Lock(HeartbeatMu);
      while (!HeartbeatCv.wait_for(Lock, Period, [&] { return Done; })) {
        double T =
            std::chrono::duration<double>(Clock::now() - Start).count();
        uint64_t N = Completed.load(std::memory_order_relaxed);
        std::ostringstream Line;
        Line << "[serve-bench] t=" << T << "s queries=" << N
             << " qps=" << (T > 0 ? N / T : 0) << "\n";
        *Progress << Line.str() << std::flush;
      }
    });
  }

  for (std::thread &T : Clients)
    T.join();
  if (Heartbeat.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(HeartbeatMu);
      Done = true;
    }
    HeartbeatCv.notify_all();
    Heartbeat.join();
  }
  double Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();

  Metrics.counter("socket.queries_total").set(Completed.load());
  Metrics.counter("socket.failed_total").set(Failed.load());
  Metrics.counter("socket.transport_errors_total")
      .set(TransportErrors.load());
  Metrics.counter("socket.connections_total").set(Connections.load());
  Metrics.counter("socket.reconnects_total").set(Reconnects.load());

  SocketTrafficReport Rep;
  Rep.Queries = Completed.load(std::memory_order_relaxed);
  Rep.Failed = Failed.load(std::memory_order_relaxed);
  Rep.TransportErrors = TransportErrors.load(std::memory_order_relaxed);
  Rep.Connections = Connections.load(std::memory_order_relaxed);
  Rep.Reconnects = Reconnects.load(std::memory_order_relaxed);
  Rep.Seconds = Seconds;
  Rep.QPS = Seconds > 0 ? Rep.Queries / Seconds : 0;
  Rep.P50Micros = OverallNs.percentile(0.50) / 1000.0;
  Rep.P95Micros = OverallNs.percentile(0.95) / 1000.0;
  Rep.P99Micros = OverallNs.percentile(0.99) / 1000.0;
  for (unsigned K = 0; K < serve::NumDataQueryKinds; ++K) {
    serve::TrafficReport::KindLatency &KL = Rep.Kinds[K];
    KL.Count = PerKindNs[K].count();
    if (KL.Count == 0)
      continue;
    KL.P50Micros = PerKindNs[K].percentile(0.50) / 1000.0;
    KL.P95Micros = PerKindNs[K].percentile(0.95) / 1000.0;
    KL.P99Micros = PerKindNs[K].percentile(0.99) / 1000.0;
  }
  Rep.DigestsSeen.assign(Digests.begin(), Digests.end());
  uint32_t Min = EpochMin.load(std::memory_order_relaxed);
  Rep.EpochMin = Min == ~0u ? 0 : Min;
  Rep.EpochMax = EpochMax.load(std::memory_order_relaxed);
  Rep.MetricsJson = Metrics.toJson();
  return Rep;
}
