//===-- net/SocketTraffic.h - Socket-mode traffic driver ------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// serve-bench's `--connect` back end: replays a serve::QueryWorkload
/// against a live SnapshotServer over real sockets instead of in-process
/// engine calls. Each client thread owns one net::Client connection and
/// runs a closed loop (generate, round-trip, record). The workload's
/// churn_every / ramp_seconds knobs exercise connection churn and phased
/// ramp-up; per-client latency histograms flow through an
/// obs::MetricsRegistry whose JSON rides along in the report.
///
/// Query *keys* are generated from a locally loaded snapshot (the same
/// .mjsnap the server started from), so the generated stream is
/// identical to in-process mode — only the transport differs.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_NET_SOCKETTRAFFIC_H
#define MAHJONG_NET_SOCKETTRAFFIC_H

#include "serve/Traffic.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mahjong::net {

struct SocketTrafficOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
};

/// What one socket-mode replay measured, on top of the usual latency
/// aggregates: transport-level counters and the set of snapshot digests
/// observed in responses (more than one means a hot swap landed
/// mid-run — exactly what the swap-under-load tests assert on).
struct SocketTrafficReport {
  uint64_t Queries = 0;
  uint64_t Failed = 0;          ///< server answered Ok == false
  uint64_t TransportErrors = 0; ///< connect/send/recv failures
  uint64_t Connections = 0;     ///< successful connects (incl. churn)
  uint64_t Reconnects = 0;      ///< churn-driven reconnects only
  double Seconds = 0;
  double QPS = 0;
  double P50Micros = 0;
  double P95Micros = 0;
  double P99Micros = 0;
  serve::TrafficReport::KindLatency Kinds[serve::NumDataQueryKinds];
  std::vector<uint64_t> DigestsSeen; ///< distinct, sorted
  uint32_t EpochMin = 0, EpochMax = 0;
  /// obs::MetricsRegistry::toJson() of the per-client histograms and
  /// transport counters (for --metrics-out).
  std::string MetricsJson;

  /// One JSON object, stable key order, for scripts and CI assertions.
  std::string toJson() const;
};

/// Replays \p W against the server at \p Opts. \p KeyData supplies the
/// key pools for query generation. When \p Progress is non-null and
/// W.HeartbeatSeconds > 0, heartbeat lines are printed while running.
SocketTrafficReport runSocketTraffic(const serve::SnapshotData &KeyData,
                                     const serve::QueryWorkload &W,
                                     const SocketTrafficOptions &Opts,
                                     std::ostream *Progress = nullptr);

} // namespace mahjong::net

#endif // MAHJONG_NET_SOCKETTRAFFIC_H
