//===-- net/Client.cpp - Blocking protocol client ----------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace mahjong;
using namespace mahjong::net;

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  RdBuf.clear();
}

bool Client::connect(const std::string &Host, uint16_t Port,
                     std::string &Err) {
  close();
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "cannot parse address '" + Host + "'";
    return false;
  }
  Fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "connect " + Host + ":" + std::to_string(Port) + ": " +
          std::strerror(errno);
    close();
    return false;
  }
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return true;
}

bool Client::query(std::string_view Text, Response &R, std::string &Err) {
  return roundTrip(MsgType::Query, Text, R, Err);
}

bool Client::swap(std::string_view Path, Response &R, std::string &Err) {
  return roundTrip(MsgType::Swap, Path, R, Err);
}

bool Client::ping(Response &R, std::string &Err) {
  return roundTrip(MsgType::Ping, {}, R, Err);
}

bool Client::roundTrip(MsgType Type, std::string_view Payload, Response &R,
                       std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  std::string Out;
  appendFrame(Out, Type, Payload);
  size_t Sent = 0;
  while (Sent < Out.size()) {
    ssize_t N = send(Fd, Out.data() + Sent, Out.size() - Sent, MSG_NOSIGNAL);
    if (N > 0) {
      Sent += static_cast<size_t>(N);
      continue;
    }
    if (errno == EINTR)
      continue;
    Err = std::string("send: ") + std::strerror(errno);
    close();
    return false;
  }
  Frame F;
  if (!readFrame(F, Err))
    return false;
  if (F.Type != MsgType::RespOk && F.Type != MsgType::RespError) {
    Err = "unexpected frame type from server";
    close();
    return false;
  }
  if (!decodeResponsePayload(F.Payload, F.Type == MsgType::RespOk, R)) {
    Err = "truncated response payload from server";
    close();
    return false;
  }
  return true;
}

bool Client::readFrame(Frame &F, std::string &Err) {
  char Buf[64 * 1024];
  while (true) {
    size_t Consumed = 0;
    DecodeStatus S = decodeFrame(RdBuf, Consumed, F, Err);
    if (S == DecodeStatus::Ok) {
      RdBuf.erase(0, Consumed);
      return true;
    }
    if (S == DecodeStatus::Corrupt) {
      close();
      return false;
    }
    ssize_t N = recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      RdBuf.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Err = N == 0 ? "server closed the connection"
                 : std::string("recv: ") + std::strerror(errno);
    close();
    return false;
  }
}
