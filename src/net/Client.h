//===-- net/Client.h - Blocking protocol client ---------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the binary net::Protocol: connect, send a
/// request frame, read exactly one response frame. One instance is one
/// connection and is not thread-safe — the traffic driver gives each
/// client thread its own instance, which also matches how per-connection
/// backpressure is meant to be exercised.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_NET_CLIENT_H
#define MAHJONG_NET_CLIENT_H

#include "net/Protocol.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace mahjong::net {

class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects (blocking) with TCP_NODELAY. \returns false with a
  /// diagnostic in \p Err.
  bool connect(const std::string &Host, uint16_t Port, std::string &Err);
  void close();
  bool connected() const { return Fd >= 0; }

  /// One query round trip. \returns false with \p Err set on transport
  /// or framing failure; a query the *server* rejected returns true with
  /// R.Ok == false and the diagnostic in R.Text.
  bool query(std::string_view Text, Response &R, std::string &Err);

  /// Asks the server to hot-swap to the .mjsnap at \p Path; returns once
  /// the swap resolved (R carries the post-swap epoch/digest on success).
  bool swap(std::string_view Path, Response &R, std::string &Err);

  /// Liveness probe; R carries the current epoch/digest.
  bool ping(Response &R, std::string &Err);

private:
  bool roundTrip(MsgType Type, std::string_view Payload, Response &R,
                 std::string &Err);
  bool readFrame(Frame &F, std::string &Err);

  int Fd = -1;
  std::string RdBuf;
};

} // namespace mahjong::net

#endif // MAHJONG_NET_CLIENT_H
