//===-- net/SnapshotRegistry.cpp - RCU-style snapshot publishing -------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/SnapshotRegistry.h"

#include "obs/Trace.h"

#include <utility>

using namespace mahjong;
using namespace mahjong::net;

ServingSnapshot::ServingSnapshot(
    uint32_t Epoch, std::shared_ptr<const serve::SnapshotData> Data,
    std::string Source, size_t CacheCapacity)
    : Epoch(Epoch), Digest(serve::snapshotDigest(*Data)),
      Source(std::move(Source)), Engine(std::move(Data), CacheCapacity) {}

SnapshotRegistry::SnapshotRegistry(
    std::shared_ptr<const serve::SnapshotData> Initial, std::string Source,
    size_t CacheCapacity)
    : CacheCapacity(CacheCapacity),
      Current(std::make_shared<const ServingSnapshot>(
          /*Epoch=*/1, std::move(Initial), std::move(Source),
          CacheCapacity)) {}

bool SnapshotRegistry::swapFromFile(const std::string &Path,
                                    std::string &Err) {
  obs::ScopedSpan Span("snapshot-swap");
  std::shared_ptr<const serve::SnapshotData> Data =
      serve::loadSnapshot(Path, Err);
  if (!Data)
    return false;
  publish(std::move(Data), Path);
  return true;
}

uint32_t SnapshotRegistry::publish(
    std::shared_ptr<const serve::SnapshotData> Data, std::string Source) {
  // Engine construction (key maps, call-graph indexes) happens outside
  // the exchange too: the lock below serializes concurrent publishers,
  // while readers only ever see fully built epochs.
  std::lock_guard<std::mutex> Lock(PublishMutex);
  uint32_t Epoch = NextEpoch++;
  auto Next = std::make_shared<const ServingSnapshot>(
      Epoch, std::move(Data), std::move(Source), CacheCapacity);
  std::shared_ptr<const ServingSnapshot> Old;
  {
    std::lock_guard<std::mutex> Swap(CurrentMutex);
    Old = std::exchange(Current, std::move(Next));
  }
  Retired.push_back(Old);
  Swaps.fetch_add(1, std::memory_order_relaxed);
  return Epoch;
}

size_t SnapshotRegistry::retiredAlive() const {
  std::lock_guard<std::mutex> Lock(PublishMutex);
  size_t Alive = 0;
  for (size_t I = 0; I < Retired.size();) {
    if (Retired[I].expired()) {
      Retired[I] = std::move(Retired.back());
      Retired.pop_back();
    } else {
      ++Alive;
      ++I;
    }
  }
  return Alive;
}
