//===-- net/Protocol.cpp - Wire protocol for the serving tier ----------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Protocol.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

using namespace mahjong;
using namespace mahjong::net;

//===----------------------------------------------------------------------===//
// Binary framing
//===----------------------------------------------------------------------===//

namespace {

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

uint32_t getU32(const unsigned char *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

uint64_t getU64(const unsigned char *P) {
  return static_cast<uint64_t>(getU32(P)) |
         (static_cast<uint64_t>(getU32(P + 4)) << 32);
}

} // namespace

bool mahjong::net::isRequestType(uint8_t T) {
  return T == static_cast<uint8_t>(MsgType::Query) ||
         T == static_cast<uint8_t>(MsgType::Swap) ||
         T == static_cast<uint8_t>(MsgType::Ping);
}

void mahjong::net::appendFrame(std::string &Out, MsgType Type,
                               std::string_view Payload) {
  assert(Payload.size() <= MaxFramePayload && "oversized frame payload");
  Out.push_back(static_cast<char>(FrameMagic));
  Out.push_back(static_cast<char>(Type));
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  Out.append(Payload);
}

DecodeStatus mahjong::net::decodeFrame(std::string_view Buf, size_t &Consumed,
                                       Frame &F, std::string &Err) {
  Consumed = 0;
  if (Buf.empty())
    return DecodeStatus::NeedMore;
  const auto *P = reinterpret_cast<const unsigned char *>(Buf.data());
  if (P[0] != FrameMagic) {
    Err = "bad frame magic";
    return DecodeStatus::Corrupt;
  }
  if (Buf.size() < FrameHeaderSize)
    return DecodeStatus::NeedMore;
  uint8_t Type = P[1];
  // Both directions validate the type byte: a server only accepts
  // request types, but rejecting response types here too keeps a
  // confused peer from being mistaken for a slow one.
  if (!isRequestType(Type) &&
      Type != static_cast<uint8_t>(MsgType::RespOk) &&
      Type != static_cast<uint8_t>(MsgType::RespError)) {
    Err = "unknown frame type " + std::to_string(Type);
    return DecodeStatus::Corrupt;
  }
  uint32_t Len = getU32(P + 2);
  // The bound gates *before* any allocation: a 6-byte frame claiming a
  // 4 GiB payload is rejected while only the fixed header is buffered.
  if (Len > MaxFramePayload) {
    Err = "frame payload of " + std::to_string(Len) + " bytes exceeds the " +
          std::to_string(MaxFramePayload) + " byte bound";
    return DecodeStatus::Corrupt;
  }
  if (Buf.size() < FrameHeaderSize + Len)
    return DecodeStatus::NeedMore;
  F.Type = static_cast<MsgType>(Type);
  F.Payload.assign(Buf.substr(FrameHeaderSize, Len));
  Consumed = FrameHeaderSize + Len;
  return DecodeStatus::Ok;
}

std::string mahjong::net::encodeResponsePayload(const Response &R) {
  std::string Out;
  Out.reserve(12 + R.Text.size());
  putU64(Out, R.Digest);
  putU32(Out, R.Epoch);
  Out.append(R.Text);
  return Out;
}

bool mahjong::net::decodeResponsePayload(std::string_view Payload, bool Ok,
                                         Response &R) {
  if (Payload.size() < 12)
    return false;
  const auto *P = reinterpret_cast<const unsigned char *>(Payload.data());
  R.Ok = Ok;
  R.Digest = getU64(P);
  R.Epoch = getU32(P + 8);
  R.Text.assign(Payload.substr(12));
  return true;
}

//===----------------------------------------------------------------------===//
// Line mode (newline-JSON fallback)
//===----------------------------------------------------------------------===//

std::string mahjong::net::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

namespace {

std::string_view trimView(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

void skipWs(std::string_view S, size_t &I) {
  while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
    ++I;
}

/// Appends code point \p CP as UTF-8.
void appendUtf8(std::string &Out, uint32_t CP) {
  if (CP < 0x80) {
    Out.push_back(static_cast<char>(CP));
  } else if (CP < 0x800) {
    Out.push_back(static_cast<char>(0xC0 | (CP >> 6)));
    Out.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
  } else {
    Out.push_back(static_cast<char>(0xE0 | (CP >> 12)));
    Out.push_back(static_cast<char>(0x80 | ((CP >> 6) & 0x3F)));
    Out.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
  }
}

bool parseJsonString(std::string_view S, size_t &I, std::string &Out,
                     std::string &Err) {
  if (I >= S.size() || S[I] != '"') {
    Err = "expected '\"'";
    return false;
  }
  ++I;
  Out.clear();
  while (I < S.size()) {
    char C = S[I++];
    if (C == '"')
      return true;
    if (C != '\\') {
      Out.push_back(C);
      continue;
    }
    if (I >= S.size())
      break;
    char E = S[I++];
    switch (E) {
    case '"':
    case '\\':
    case '/':
      Out.push_back(E);
      break;
    case 'b':
      Out.push_back('\b');
      break;
    case 'f':
      Out.push_back('\f');
      break;
    case 'n':
      Out.push_back('\n');
      break;
    case 'r':
      Out.push_back('\r');
      break;
    case 't':
      Out.push_back('\t');
      break;
    case 'u': {
      if (I + 4 > S.size()) {
        Err = "truncated \\u escape";
        return false;
      }
      uint32_t CP = 0;
      for (int K = 0; K < 4; ++K) {
        char H = S[I++];
        CP <<= 4;
        if (H >= '0' && H <= '9')
          CP |= static_cast<uint32_t>(H - '0');
        else if (H >= 'a' && H <= 'f')
          CP |= static_cast<uint32_t>(H - 'a' + 10);
        else if (H >= 'A' && H <= 'F')
          CP |= static_cast<uint32_t>(H - 'A' + 10);
        else {
          Err = "malformed \\u escape";
          return false;
        }
      }
      if (CP >= 0xD800 && CP <= 0xDFFF) {
        Err = "surrogate \\u escapes are not supported";
        return false;
      }
      appendUtf8(Out, CP);
      break;
    }
    default:
      Err = std::string("unknown escape '\\") + E + "'";
      return false;
    }
  }
  Err = "unterminated string";
  return false;
}

/// One scanned member value of a flat JSON object.
struct JsonValue {
  enum Kind { String, Number, Bool, Null } K = Null;
  std::string Text; ///< decoded string / number spelling / "true"/"false"
};

/// Parses a flat JSON object (string/number/bool/null members only; no
/// nesting — this is a debugging protocol, not a document store).
bool parseFlatJsonObject(std::string_view S,
                         std::vector<std::pair<std::string, JsonValue>> &Out,
                         std::string &Err) {
  size_t I = 0;
  skipWs(S, I);
  if (I >= S.size() || S[I] != '{') {
    Err = "expected '{'";
    return false;
  }
  ++I;
  skipWs(S, I);
  if (I < S.size() && S[I] == '}') {
    ++I;
  } else {
    while (true) {
      skipWs(S, I);
      std::string Key;
      if (!parseJsonString(S, I, Key, Err))
        return false;
      skipWs(S, I);
      if (I >= S.size() || S[I] != ':') {
        Err = "expected ':' after key '" + Key + "'";
        return false;
      }
      ++I;
      skipWs(S, I);
      JsonValue V;
      if (I >= S.size()) {
        Err = "missing value for key '" + Key + "'";
        return false;
      }
      if (S[I] == '"') {
        V.K = JsonValue::String;
        if (!parseJsonString(S, I, V.Text, Err))
          return false;
      } else if (S.compare(I, 4, "true") == 0) {
        V.K = JsonValue::Bool;
        V.Text = "true";
        I += 4;
      } else if (S.compare(I, 5, "false") == 0) {
        V.K = JsonValue::Bool;
        V.Text = "false";
        I += 5;
      } else if (S.compare(I, 4, "null") == 0) {
        V.K = JsonValue::Null;
        I += 4;
      } else if (S[I] == '-' ||
                 std::isdigit(static_cast<unsigned char>(S[I]))) {
        V.K = JsonValue::Number;
        size_t Start = I;
        if (S[I] == '-')
          ++I;
        while (I < S.size() &&
               (std::isdigit(static_cast<unsigned char>(S[I])) ||
                S[I] == '.' || S[I] == 'e' || S[I] == 'E' || S[I] == '+' ||
                S[I] == '-'))
          ++I;
        V.Text.assign(S.substr(Start, I - Start));
      } else {
        Err = "unsupported value for key '" + Key +
              "' (strings, numbers, booleans and null only)";
        return false;
      }
      Out.emplace_back(std::move(Key), std::move(V));
      skipWs(S, I);
      if (I < S.size() && S[I] == ',') {
        ++I;
        continue;
      }
      if (I < S.size() && S[I] == '}') {
        ++I;
        break;
      }
      Err = "expected ',' or '}'";
      return false;
    }
  }
  skipWs(S, I);
  if (I != S.size()) {
    Err = "trailing bytes after the JSON object";
    return false;
  }
  return true;
}

} // namespace

bool mahjong::net::parseLineRequest(std::string_view Line,
                                    std::string &QueryText,
                                    std::string &Err) {
  std::string_view L = trimView(Line);
  if (L.empty()) {
    Err = "empty request line";
    return false;
  }
  if (L.front() != '{') {
    QueryText.assign(L);
    return true;
  }
  std::vector<std::pair<std::string, JsonValue>> Members;
  if (!parseFlatJsonObject(L, Members, Err)) {
    Err = "malformed JSON request: " + Err;
    return false;
  }
  for (const auto &[Key, V] : Members) {
    if (Key != "q" && Key != "query")
      continue;
    if (V.K != JsonValue::String) {
      Err = "JSON request member '" + Key + "' must be a string";
      return false;
    }
    QueryText = V.Text;
    return true;
  }
  Err = "JSON request carries no \"q\" member";
  return false;
}

std::string mahjong::net::renderLineResponse(const Response &R) {
  char Digest[24];
  std::snprintf(Digest, sizeof(Digest), "%016llx",
                static_cast<unsigned long long>(R.Digest));
  std::string Out = R.Ok ? "{\"ok\": true" : "{\"ok\": false";
  Out += ", \"epoch\": " + std::to_string(R.Epoch);
  Out += ", \"digest\": \"";
  Out += Digest;
  Out += R.Ok ? "\", \"result\": \"" : "\", \"error\": \"";
  Out += jsonEscape(R.Text);
  Out += "\"}";
  return Out;
}

bool mahjong::net::parseLineResponse(std::string_view Line, Response &R,
                                     std::string &Err) {
  std::vector<std::pair<std::string, JsonValue>> Members;
  if (!parseFlatJsonObject(trimView(Line), Members, Err))
    return false;
  bool HaveOk = false, HaveText = false;
  R = Response();
  for (const auto &[Key, V] : Members) {
    if (Key == "ok" && V.K == JsonValue::Bool) {
      R.Ok = V.Text == "true";
      HaveOk = true;
    } else if (Key == "epoch" && V.K == JsonValue::Number) {
      R.Epoch = static_cast<uint32_t>(std::strtoul(V.Text.c_str(), nullptr, 10));
    } else if (Key == "digest" && V.K == JsonValue::String) {
      R.Digest = std::strtoull(V.Text.c_str(), nullptr, 16);
    } else if ((Key == "result" || Key == "error") &&
               V.K == JsonValue::String) {
      R.Text = V.Text;
      HaveText = true;
    }
  }
  if (!HaveOk || !HaveText) {
    Err = "response line lacks \"ok\" or \"result\"/\"error\"";
    return false;
  }
  return true;
}

bool mahjong::net::parseHostPort(std::string_view Spec, std::string &Host,
                                 uint16_t &Port, std::string &Err) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string_view::npos) {
    Err = "expected host:port, got '" + std::string(Spec) + "'";
    return false;
  }
  std::string_view HostPart = Spec.substr(0, Colon);
  std::string_view PortPart = Spec.substr(Colon + 1);
  if (PortPart.empty()) {
    Err = "missing port in '" + std::string(Spec) + "'";
    return false;
  }
  uint64_t P = 0;
  for (char C : PortPart) {
    if (!std::isdigit(static_cast<unsigned char>(C))) {
      Err = "malformed port '" + std::string(PortPart) + "'";
      return false;
    }
    P = P * 10 + static_cast<uint64_t>(C - '0');
    if (P > 65535) {
      Err = "port '" + std::string(PortPart) + "' out of range";
      return false;
    }
  }
  Host = HostPart.empty() ? std::string("127.0.0.1") : std::string(HostPart);
  Port = static_cast<uint16_t>(P);
  return true;
}
