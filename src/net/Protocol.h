//===-- net/Protocol.h - Wire protocol for the serving tier ---*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol spoken between net::SnapshotServer and net::Client:
/// a small length-prefixed binary framing plus a newline-JSON fallback a
/// human can drive with `nc`. Both sides share this one header so the
/// encoder and decoder can never drift apart.
///
/// Binary framing (all integers little-endian):
///
///   magic    u8   0xAB — also the mode sentinel: a connection whose
///                 first byte is not 0xAB is served in line mode
///   type     u8   MsgType
///   length   u32  payload byte count, bounded by MaxFramePayload
///                 *before* any allocation (a hostile length cannot
///                 trigger bad_alloc, mirroring the .mjsnap readCount
///                 hardening)
///   payload  length bytes
///
/// Request payloads are UTF-8 text: the query grammar for MsgType::Query
/// (docs/serving.md), a filesystem path for MsgType::Swap, empty for
/// MsgType::Ping. Response payloads carry the answering snapshot first:
///
///   digest   u64  snapshot content digest (serve::snapshotDigest)
///   epoch    u32  registry epoch that answered
///   text     rest — rendered answer, or the error message
///
/// so a client can always tell *which* published snapshot answered — the
/// invariant the hot-swap tests assert query by query.
///
/// Line mode: one request per '\n'-terminated line, either raw query
/// text or a JSON object {"q": "..."} ({"query": ...} also accepted);
/// every answer is one JSON line {"ok": ..., "epoch": ..., "digest":
/// "...", "result"|"error": "..."}. Malformed JSON gets an error line;
/// only framing-level violations (an overlong line) end the connection.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_NET_PROTOCOL_H
#define MAHJONG_NET_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mahjong::net {

/// First byte of every binary frame; doubles as the connection-mode
/// sentinel (no JSON document and no query verb starts with 0xAB).
inline constexpr uint8_t FrameMagic = 0xAB;

/// Frame header bytes: magic, type, u32 payload length.
inline constexpr size_t FrameHeaderSize = 6;

/// Hard payload bound, checked before any buffer is grown.
inline constexpr uint32_t MaxFramePayload = 1u << 20;

/// Line-mode requests obey the same bound (including the newline).
inline constexpr size_t MaxLineLength = MaxFramePayload;

enum class MsgType : uint8_t {
  Query = 0x01, ///< payload: query text (docs/serving.md grammar)
  Swap = 0x02,  ///< payload: .mjsnap path to decode, validate and publish
  Ping = 0x03,  ///< payload: empty; answered with an empty Ok
  RespOk = 0x81,
  RespError = 0x82,
};

/// True for the request types a client may send.
bool isRequestType(uint8_t T);

/// One decoded frame.
struct Frame {
  MsgType Type = MsgType::Query;
  std::string Payload;
};

/// What decodeFrame saw at the front of a buffer.
enum class DecodeStatus {
  NeedMore, ///< incomplete header or payload; read more bytes
  Ok,       ///< one frame decoded, \p Consumed bytes eaten
  Corrupt,  ///< bad magic, unknown type, or oversized length
};

/// Appends one encoded frame to \p Out. \p Payload must respect
/// MaxFramePayload (asserted).
void appendFrame(std::string &Out, MsgType Type, std::string_view Payload);

/// Decodes the frame at the front of \p Buf. On Ok, \p Consumed is the
/// total frame size and \p F the decoded frame; on Corrupt, \p Err names
/// the violation and the connection should be failed.
DecodeStatus decodeFrame(std::string_view Buf, size_t &Consumed, Frame &F,
                         std::string &Err);

/// One response as both sides see it: which snapshot answered, and the
/// rendered answer or error text.
struct Response {
  bool Ok = false;
  uint64_t Digest = 0;
  uint32_t Epoch = 0;
  std::string Text;
};

/// Encodes the response payload (digest, epoch, text) for a RespOk /
/// RespError frame.
std::string encodeResponsePayload(const Response &R);

/// Decodes a RespOk / RespError payload. \p Ok comes from the frame
/// type. \returns false on a truncated payload.
bool decodeResponsePayload(std::string_view Payload, bool Ok, Response &R);

/// Escapes \p S for inclusion inside a JSON string literal.
std::string jsonEscape(std::string_view S);

/// Parses one line-mode request: raw query text, or a JSON object whose
/// "q" (or "query") member is the query text. \returns false with a
/// diagnostic in \p Err on malformed JSON or a missing member.
bool parseLineRequest(std::string_view Line, std::string &QueryText,
                      std::string &Err);

/// Renders \p R as one line-mode JSON response (no trailing newline).
std::string renderLineResponse(const Response &R);

/// Parses a line-mode JSON response (the client-side inverse of
/// renderLineResponse). \returns false on malformed input.
bool parseLineResponse(std::string_view Line, Response &R, std::string &Err);

/// Splits "host:port". \returns false with a diagnostic when the port is
/// missing, not a number, or out of range; an empty host means
/// "127.0.0.1".
bool parseHostPort(std::string_view Spec, std::string &Host, uint16_t &Port,
                   std::string &Err);

} // namespace mahjong::net

#endif // MAHJONG_NET_PROTOCOL_H
