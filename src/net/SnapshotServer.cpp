//===-- net/SnapshotServer.cpp - Socket serving tier -------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/SnapshotServer.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

using namespace mahjong;
using namespace mahjong::net;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string_view trimText(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

void setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

} // namespace

SnapshotServer::SnapshotServer(SnapshotRegistry &Registry,
                               ServerConfig Config)
    : Registry(Registry), Config(std::move(Config)) {}

SnapshotServer::~SnapshotServer() { stop(); }

bool SnapshotServer::start(std::string &Err) {
  if (LoopThread.joinable()) {
    Err = "server already running";
    return false;
  }
  Stopping.store(false, std::memory_order_relaxed);

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (inet_pton(AF_INET, Config.Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "cannot parse listen address '" + Config.Host + "'";
    return false;
  }
  ListenFd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  auto Fail = [&](const char *What) {
    Err = std::string(What) + ": " + std::strerror(errno);
    close(ListenFd);
    ListenFd = -1;
    return false;
  };
  if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return Fail("bind");
  if (listen(ListenFd, SOMAXCONN) != 0)
    return Fail("listen");
  sockaddr_in Bound{};
  socklen_t BoundLen = sizeof(Bound);
  if (getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound),
                  &BoundLen) != 0)
    return Fail("getsockname");
  BoundPort = ntohs(Bound.sin_port);
  setNonBlocking(ListenFd);

  int Pipe[2];
  if (pipe2(Pipe, O_NONBLOCK | O_CLOEXEC) != 0)
    return Fail("pipe2");
  WakeRd = Pipe[0];
  WakeWr = Pipe[1];

  if (!Config.SwapFifo.empty()) {
    // O_RDWR keeps the FIFO open-able with no writer attached and spares
    // the loop from the read-side EOF churn between writers.
    FifoFd = open(Config.SwapFifo.c_str(), O_RDWR | O_NONBLOCK | O_CLOEXEC);
    if (FifoFd < 0) {
      Err = "cannot open swap fifo '" + Config.SwapFifo +
            "': " + std::strerror(errno);
      close(ListenFd);
      close(WakeRd);
      close(WakeWr);
      ListenFd = WakeRd = WakeWr = -1;
      return false;
    }
  }

  // Pre-register every series so the exposition shows them at zero from
  // the first scrape (Prometheus best practice: existence > absence).
  for (const char *Name :
       {"net.accepted_total", "net.closed_total", "net.frames_total",
        "net.lines_total", "net.queries_total", "net.query_errors_total",
        "net.protocol_errors_total", "net.slow_reader_disconnects_total",
        "net.swaps_total", "net.swap_failures_total",
        "net.bytes_read_total", "net.bytes_written_total"})
    Metrics.counter(Name);
  Metrics.gauge("net.active_conns");
  Metrics.gauge("net.retired_snapshots");
  Metrics.gauge("net.current_epoch")
      .set(static_cast<double>(Registry.pin()->epoch()));
  Metrics.histogram("net.request_ns");

  if (Config.Workers > 0)
    Pool = std::make_unique<ThreadPool>(Config.Workers);
  SwapStop = false;
  SwapThread = std::thread([this] { swapLoop(); });
  LoopThread = std::thread([this] { loop(); });
  return true;
}

void SnapshotServer::stop() {
  if (!LoopThread.joinable())
    return;
  Stopping.store(true, std::memory_order_release);
  wake();
  LoopThread.join();
  // The loop is gone; finish any in-pool work, then retire the admin
  // thread (it completes a mid-flight swap before exiting).
  Pool.reset();
  {
    std::lock_guard<std::mutex> Lock(SwapMu);
    SwapStop = true;
  }
  SwapCv.notify_all();
  SwapThread.join();
  for (int *Fd : {&ListenFd, &WakeRd, &WakeWr, &FifoFd}) {
    if (*Fd >= 0)
      close(*Fd);
    *Fd = -1;
  }
  Conns.clear();
  Metrics.gauge("net.active_conns").set(0);
}

void SnapshotServer::wake() {
  char B = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] ssize_t N = write(WakeWr, &B, 1);
}

//===----------------------------------------------------------------------===//
// Event loop
//===----------------------------------------------------------------------===//

void SnapshotServer::loop() {
  using Clock = std::chrono::steady_clock;
  Clock::time_point DrainDeadline = Clock::time_point::max();
  bool ListenClosed = false;

  std::vector<pollfd> Fds;
  std::vector<std::shared_ptr<Conn>> Polled;

  while (true) {
    bool Stop = Stopping.load(std::memory_order_acquire);
    if (Stop && !ListenClosed) {
      // Stop accepting first; the deadline bounds the rest of the drain.
      close(ListenFd);
      ListenFd = -1;
      ListenClosed = true;
      DrainDeadline = Clock::now() + std::chrono::duration_cast<
                                         Clock::duration>(
                                         std::chrono::duration<double>(
                                             Config.DrainSeconds));
    }

    // Maintenance pass: close the dead, resume paused parsing, pump
    // queues, and decide each connection's poll interest.
    Fds.clear();
    Polled.clear();
    size_t ListenSlot = SIZE_MAX, WakeSlot, FifoSlot = SIZE_MAX;
    if (ListenFd >= 0 && Conns.size() < Config.MaxConns &&
        Clock::now() >= AcceptBackoffUntil) {
      ListenSlot = Fds.size();
      Fds.push_back({ListenFd, POLLIN, 0});
    }
    WakeSlot = Fds.size();
    Fds.push_back({WakeRd, POLLIN, 0});
    if (FifoFd >= 0 && !Stop) {
      FifoSlot = Fds.size();
      Fds.push_back({FifoFd, POLLIN, 0});
    }

    const size_t FirstConnSlot = Fds.size();
    bool AllIdle = true;
    std::vector<uint64_t> ToClose;
    for (auto &[Id, C] : Conns) {
      bool Dead, Draining, Busy, QueueRoom, HasOut;
      {
        std::lock_guard<std::mutex> Lock(C->Mu);
        Dead = C->Dead;
        Draining = C->Draining;
        Busy = C->Running || C->AwaitingSwap || !C->Queue.empty();
        QueueRoom = C->Queue.size() < Config.MaxInflight;
        HasOut = !C->Outbox.empty();
      }
      // A draining connection is done only when nothing parsed, queued,
      // buffered, *or still parked in RdBuf* remains — a half-closed
      // peer's pipelined backlog beyond MaxInflight lives in RdBuf.
      if (Dead || (Draining && !Busy && !HasOut && C->RdBuf.empty())) {
        ToClose.push_back(Id);
        continue;
      }
      // Bytes may be parked in RdBuf from a pass when the queue was
      // full; parse them now that there is room again. Draining only
      // stops socket *reads*, never the parsing of what already arrived.
      if (QueueRoom && !C->RdBuf.empty()) {
        size_t Before = C->RdBuf.size();
        parseBuffered(C);
        // The peer's write side is closed, so a residue that did not
        // shrink is a truncated frame or unterminated line that can
        // never complete; drop it so the drain can finish.
        if (Draining && C->RdBuf.size() == Before)
          C->RdBuf.clear();
        std::lock_guard<std::mutex> Lock(C->Mu);
        QueueRoom = C->Queue.size() < Config.MaxInflight;
        Busy = C->Running || C->AwaitingSwap || !C->Queue.empty();
      }
      pump(C);
      {
        std::lock_guard<std::mutex> Lock(C->Mu);
        Busy = C->Running || C->AwaitingSwap || !C->Queue.empty();
        HasOut = !C->Outbox.empty();
      }
      if (Busy || HasOut)
        AllIdle = false;
      short Events = 0;
      if (!Draining && !Stop && QueueRoom)
        Events |= POLLIN;
      if (HasOut)
        Events |= POLLOUT;
      // Poll even with no interest bits: POLLERR/POLLHUP still arrive.
      Polled.push_back(C);
      Fds.push_back({C->Fd, Events, 0});
    }
    for (uint64_t Id : ToClose)
      closeConn(Id);

    if (Stop) {
      bool SwapsPending;
      {
        std::lock_guard<std::mutex> Lock(SwapMu);
        SwapsPending = !SwapTasks.empty();
      }
      if ((AllIdle && !SwapsPending && ToClose.empty()) ||
          Clock::now() >= DrainDeadline) {
        for (auto &[Id, C] : Conns)
          close(C->Fd);
        Conns.clear();
        Metrics.gauge("net.active_conns").set(0);
        return;
      }
    }

    int Timeout = Stop ? 20 : 500;
    int N = poll(Fds.data(), Fds.size(), Timeout);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return; // unrecoverable poll failure; stop serving
    }

    if (Fds[WakeSlot].revents & POLLIN) {
      char Buf[256];
      while (read(WakeRd, Buf, sizeof(Buf)) > 0)
        ;
    }
    if (ListenSlot != SIZE_MAX && (Fds[ListenSlot].revents & POLLIN))
      acceptReady();
    if (FifoSlot != SIZE_MAX && (Fds[FifoSlot].revents & POLLIN))
      fifoReadable();

    for (size_t I = 0; I < Polled.size(); ++I) {
      const pollfd &P = Fds[FirstConnSlot + I];
      const std::shared_ptr<Conn> &C = Polled[I];
      if (P.revents & (POLLERR | POLLNVAL)) {
        std::lock_guard<std::mutex> Lock(C->Mu);
        C->Dead = true;
        continue;
      }
      if (P.revents & POLLIN)
        readable(C);
      else if (P.revents & POLLHUP) {
        // HUP with nothing left to read: peer is gone for good.
        std::lock_guard<std::mutex> Lock(C->Mu);
        C->Dead = true;
        continue;
      }
      // Opportunistic flush in the same pass keeps the common
      // request/response round trip inside one poll iteration.
      bool HasOut;
      {
        std::lock_guard<std::mutex> Lock(C->Mu);
        HasOut = !C->Outbox.empty() && !C->Dead;
      }
      if ((P.revents & POLLOUT) || HasOut)
        writable(C);
    }
  }
}

void SnapshotServer::acceptReady() {
  while (Conns.size() < Config.MaxConns) {
    int Fd = accept4(ListenFd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM)
        // Resource exhaustion does not consume the pending connection,
        // so the listen fd stays readable and re-polling it would spin.
        // Park the listener briefly; the loop re-arms it after this.
        AcceptBackoffUntil = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(100);
      return; // otherwise EAGAIN or a transient error; poll again
    }
    int One = 1;
    setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    C->Id = NextConnId++;
    Conns.emplace(C->Id, std::move(C));
    Metrics.counter("net.accepted_total").inc();
    Metrics.gauge("net.active_conns").set(Conns.size());
  }
}

void SnapshotServer::closeConn(uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  close(It->second->Fd);
  Conns.erase(It);
  Metrics.counter("net.closed_total").inc();
  Metrics.gauge("net.active_conns").set(Conns.size());
}

void SnapshotServer::readable(const std::shared_ptr<Conn> &C) {
  {
    std::lock_guard<std::mutex> Lock(C->Mu);
    if (C->Draining || C->Dead)
      return;
  }
  char Buf[64 * 1024];
  bool PeerClosed = false;
  while (C->RdBuf.size() < MaxFramePayload + FrameHeaderSize) {
    ssize_t N = recv(C->Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C->RdBuf.append(Buf, static_cast<size_t>(N));
      Metrics.counter("net.bytes_read_total").inc(static_cast<uint64_t>(N));
      continue;
    }
    if (N == 0) {
      PeerClosed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      break;
    std::lock_guard<std::mutex> Lock(C->Mu);
    C->Dead = true;
    return;
  }
  parseBuffered(C);
  if (PeerClosed) {
    // Half-close handshake: the peer is done sending, but everything it
    // pipelined still gets answered before we close our side.
    std::lock_guard<std::mutex> Lock(C->Mu);
    C->Draining = true;
  }
  pump(C);
}

void SnapshotServer::parseBuffered(const std::shared_ptr<Conn> &C) {
  if (C->RdBuf.empty())
    return;
  if (C->Mode == Conn::IoMode::Unknown)
    C->Mode = static_cast<unsigned char>(C->RdBuf[0]) == FrameMagic
                  ? Conn::IoMode::Binary
                  : Conn::IoMode::Line;

  uint64_t Start = nowNs();
  size_t Pos = 0;
  auto QueueFull = [&] {
    std::lock_guard<std::mutex> Lock(C->Mu);
    return C->Queue.size() >= Config.MaxInflight;
  };
  auto Enqueue = [&](MsgType T, std::string Text, bool ParseError = false) {
    std::lock_guard<std::mutex> Lock(C->Mu);
    C->Queue.push_back(PendingReq{T, std::move(Text), Start, ParseError});
  };

  if (C->Mode == Conn::IoMode::Binary) {
    while (!QueueFull()) {
      Frame F;
      size_t Consumed = 0;
      std::string Err;
      DecodeStatus S = decodeFrame(
          std::string_view(C->RdBuf).substr(Pos), Consumed, F, Err);
      if (S == DecodeStatus::NeedMore)
        break;
      if (S == DecodeStatus::Corrupt) {
        C->RdBuf.clear();
        failProtocol(C, Err);
        return;
      }
      Pos += Consumed;
      Metrics.counter("net.frames_total").inc();
      if (!isRequestType(static_cast<uint8_t>(F.Type))) {
        C->RdBuf.clear();
        failProtocol(C, "response frame type from a client");
        return;
      }
      Enqueue(F.Type, std::move(F.Payload));
    }
  } else {
    while (!QueueFull()) {
      size_t Nl = C->RdBuf.find('\n', Pos);
      if (Nl == std::string::npos) {
        if (C->RdBuf.size() - Pos > MaxLineLength) {
          C->RdBuf.clear();
          failProtocol(C, "request line exceeds the length bound");
          return;
        }
        break;
      }
      std::string_view Line(C->RdBuf.data() + Pos, Nl - Pos);
      Pos = Nl + 1;
      Metrics.counter("net.lines_total").inc();
      if (trimText(Line).empty())
        continue;
      std::string Text, Err;
      if (!parseLineRequest(Line, Text, Err)) {
        // Garbage JSON gets an error *line*, not a disconnect — this is
        // the debugging surface, and a typo should not cost the session.
        // The error queues like any request so it answers in order.
        Metrics.counter("net.protocol_errors_total").inc();
        Enqueue(MsgType::Query, std::move(Err), /*ParseError=*/true);
        continue;
      }
      std::string_view T = trimText(Text);
      if (T.rfind("swap ", 0) == 0)
        Enqueue(MsgType::Swap, std::string(trimText(T.substr(5))));
      else
        Enqueue(MsgType::Query, std::move(Text));
    }
  }
  C->RdBuf.erase(0, Pos);
}

//===----------------------------------------------------------------------===//
// Request execution
//===----------------------------------------------------------------------===//

void SnapshotServer::pump(const std::shared_ptr<Conn> &C) {
  {
    std::lock_guard<std::mutex> Lock(C->Mu);
    if (C->Running || C->AwaitingSwap || C->Queue.empty() || C->Dead)
      return;
    if (C->Queue.front().Type == MsgType::Swap) {
      // Swaps always decode on the admin thread; the queue stays paused
      // so this connection's responses keep arriving in request order.
      PendingReq Req = std::move(C->Queue.front());
      C->Queue.pop_front();
      C->AwaitingSwap = true;
      std::lock_guard<std::mutex> SLock(SwapMu);
      SwapTasks.push_back(SwapTask{std::move(Req.Text), C});
      SwapCv.notify_one();
      return;
    }
    if (Pool)
      C->Running = true;
  }
  if (Pool) {
    std::shared_ptr<Conn> Keep = C;
    Pool->enqueue([this, Keep] { drainQueue(Keep); });
  } else {
    drainQueue(C);
  }
}

void SnapshotServer::drainQueue(const std::shared_ptr<Conn> &C) {
  while (true) {
    PendingReq Req;
    {
      std::lock_guard<std::mutex> Lock(C->Mu);
      if (C->Queue.empty() || C->Dead) {
        C->Running = false;
        break;
      }
      if (C->Queue.front().Type == MsgType::Swap) {
        // Hand the rest of the queue back to pump(): the swap must go
        // through the admin thread, and the queue pauses behind it.
        C->Running = false;
        break;
      }
      Req = std::move(C->Queue.front());
      C->Queue.pop_front();
    }
    Response R = execute(Req);
    Metrics.histogram("net.request_ns").record(nowNs() - Req.StartNs);
    respond(C, R);
  }
  if (Pool)
    wake(); // flush our responses; pump() reruns from the loop pass
}

Response SnapshotServer::execute(const PendingReq &Req) {
  if (Req.ParseError) {
    // Answered like any queued request, but the snapshot never saw it:
    // Ok stays false and there is no digest/epoch stamp.
    Response R;
    R.Text = Req.Text;
    return R;
  }
  std::shared_ptr<const ServingSnapshot> Snap = Registry.pin();
  Response R;
  R.Digest = Snap->digest();
  R.Epoch = Snap->epoch();
  if (Req.Type == MsgType::Ping) {
    R.Ok = true;
    return R;
  }
  Metrics.counter("net.queries_total").inc();
  std::string_view Text = trimText(Req.Text);
  if (Text == "stats") {
    // The server answers `stats` itself so the exposition covers both
    // the pinned engine's counters and the net.* tier.
    serve::QueryResult QR = Snap->engine().run(Text);
    R.Ok = QR.Ok;
    for (const std::string &Line : QR.Items) {
      R.Text += Line;
      R.Text += '\n';
    }
    R.Text += statsText();
    return R;
  }
  serve::QueryResult QR = Snap->engine().run(Text);
  R.Ok = QR.Ok;
  if (QR.Ok) {
    R.Text = QR.toString();
  } else {
    R.Text = QR.Error;
    Metrics.counter("net.query_errors_total").inc();
  }
  return R;
}

std::string SnapshotServer::statsText() const {
  Metrics.counter("net.swaps_total")
      .set(Registry.swapCount());
  Metrics.gauge("net.retired_snapshots").set(
      static_cast<double>(Registry.retiredAlive()));
  Metrics.gauge("net.current_epoch")
      .set(static_cast<double>(Registry.pin()->epoch()));
  return Metrics.toPrometheus();
}

void SnapshotServer::respond(const std::shared_ptr<Conn> &C,
                             const Response &R) {
  std::string Bytes;
  if (C->Mode == Conn::IoMode::Binary) {
    appendFrame(Bytes, R.Ok ? MsgType::RespOk : MsgType::RespError,
                encodeResponsePayload(R));
  } else {
    Bytes = renderLineResponse(R);
    Bytes += '\n';
  }
  bool Slow = false;
  {
    std::lock_guard<std::mutex> Lock(C->Mu);
    if (C->Dead)
      return;
    C->Outbox += Bytes;
    if (C->Outbox.size() > Config.MaxOutboxBytes) {
      // A reader this slow would grow server memory without bound; the
      // contract is a clean disconnect, not a swelling buffer.
      C->Dead = true;
      Slow = true;
    }
  }
  if (Slow)
    Metrics.counter("net.slow_reader_disconnects_total").inc();
}

void SnapshotServer::failProtocol(const std::shared_ptr<Conn> &C,
                                  const std::string &Why) {
  Metrics.counter("net.protocol_errors_total").inc();
  // The error rides the request queue behind anything already parsed,
  // so it answers in FIFO position rather than jumping ahead of
  // earlier, still-unanswered requests.
  std::lock_guard<std::mutex> Lock(C->Mu);
  C->Queue.push_back(PendingReq{MsgType::Query, Why, nowNs(), true});
  C->Draining = true; // answer everything parsed, then close
}

void SnapshotServer::writable(const std::shared_ptr<Conn> &C) {
  std::string Local;
  {
    std::lock_guard<std::mutex> Lock(C->Mu);
    if (C->Dead || C->Outbox.empty())
      return;
    Local = std::move(C->Outbox);
    C->Outbox.clear();
  }
  size_t Sent = 0;
  while (Sent < Local.size()) {
    ssize_t N = send(C->Fd, Local.data() + Sent, Local.size() - Sent,
                     MSG_NOSIGNAL);
    if (N > 0) {
      Sent += static_cast<size_t>(N);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      break;
    std::lock_guard<std::mutex> Lock(C->Mu);
    C->Dead = true;
    return;
  }
  Metrics.counter("net.bytes_written_total").inc(Sent);
  if (Sent < Local.size()) {
    std::lock_guard<std::mutex> Lock(C->Mu);
    // Workers may have appended while we were sending; keep order.
    C->Outbox.insert(0, Local, Sent, std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Admin: swap fifo and the swap thread
//===----------------------------------------------------------------------===//

void SnapshotServer::fifoReadable() {
  char Buf[4096];
  while (true) {
    ssize_t N = read(FifoFd, Buf, sizeof(Buf));
    if (N <= 0)
      break;
    FifoBuf.append(Buf, static_cast<size_t>(N));
  }
  size_t Pos = 0;
  while (true) {
    size_t Nl = FifoBuf.find('\n', Pos);
    if (Nl == std::string::npos)
      break;
    std::string Path(trimText(
        std::string_view(FifoBuf.data() + Pos, Nl - Pos)));
    Pos = Nl + 1;
    if (Path.empty())
      continue;
    std::lock_guard<std::mutex> Lock(SwapMu);
    SwapTasks.push_back(SwapTask{std::move(Path), nullptr});
    SwapCv.notify_one();
  }
  FifoBuf.erase(0, Pos);
}

void SnapshotServer::swapLoop() {
  while (true) {
    SwapTask Task;
    {
      std::unique_lock<std::mutex> Lock(SwapMu);
      SwapCv.wait(Lock, [this] { return SwapStop || !SwapTasks.empty(); });
      if (SwapTasks.empty())
        return; // SwapStop and nothing left to do
      Task = std::move(SwapTasks.front());
      SwapTasks.pop_front();
    }
    std::string Err;
    bool Ok = Registry.swapFromFile(Task.Path, Err);
    if (Ok)
      Metrics.counter("net.swaps_total").set(Registry.swapCount());
    else
      Metrics.counter("net.swap_failures_total").inc();
    if (Task.Replier) {
      std::shared_ptr<const ServingSnapshot> Now = Registry.pin();
      Response R;
      R.Ok = Ok;
      R.Digest = Now->digest();
      R.Epoch = Now->epoch();
      R.Text = Ok ? "swapped to epoch " + std::to_string(Now->epoch()) +
                        " from " + Task.Path
                  : Err;
      respond(Task.Replier, R);
      std::lock_guard<std::mutex> Lock(Task.Replier->Mu);
      Task.Replier->AwaitingSwap = false;
    }
    wake();
  }
}
