//===-- net/SnapshotServer.h - Socket serving tier ------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front end over a SnapshotRegistry: a poll()-based
/// asynchronous socket server speaking net::Protocol (binary frames with
/// the newline-JSON fallback), one event-loop thread multiplexing every
/// connection.
///
/// Per-connection state machine: bytes accumulate in a read buffer until
/// whole frames (or lines) appear; parsed requests queue per connection
/// and are answered strictly in order; responses accumulate in a write
/// buffer flushed as the socket drains. Backpressure at every stage:
///
///  - total connections are bounded (the listener is simply not polled
///    while at the cap — the kernel backlog absorbs the burst),
///  - parsed-but-unanswered requests per connection are bounded; a
///    connection at the bound stops being read until its queue drains,
///  - a slow reader whose write buffer exceeds the cap is disconnected
///    (the alternative is unbounded server memory).
///
/// Query execution is inline on the event loop by default — a cached
/// query is sub-microsecond, so a thread handoff would *add* latency; a
/// worker pool (Config.Workers > 0) serves deployments with expensive
/// uncached mixes. Snapshot swaps always decode on a dedicated admin
/// thread so the serving loop never stalls behind a multi-second decode;
/// a connection that pipelines requests behind its own `swap` simply has
/// its queue paused until the swap resolves, preserving per-connection
/// response order. Graceful shutdown stops accepting, drains queued
/// requests and write buffers up to a deadline, then linger-closes.
///
/// Every response is stamped with the digest/epoch of the one snapshot
/// pinned for that request (see SnapshotRegistry.h).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_NET_SNAPSHOTSERVER_H
#define MAHJONG_NET_SNAPSHOTSERVER_H

#include "net/Protocol.h"
#include "net/SnapshotRegistry.h"
#include "obs/Metrics.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mahjong::net {

struct ServerConfig {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0; ///< 0 = ephemeral; read the bound port via port()
  unsigned MaxConns = 256;
  /// Parsed-but-unanswered requests per connection before reads pause.
  unsigned MaxInflight = 64;
  /// Write-buffer bytes before a slow reader is disconnected.
  size_t MaxOutboxBytes = 4u << 20;
  /// 0 = execute queries inline on the event loop; > 0 = worker pool.
  unsigned Workers = 0;
  /// Optional FIFO path: each line written to it is a .mjsnap path to
  /// swap to (the out-of-band admin channel for `serve --swap-fifo`).
  std::string SwapFifo;
  /// Graceful-stop drain deadline.
  double DrainSeconds = 5.0;
};

/// A running server over one registry. start() spawns the event loop;
/// stop() (or destruction) drains and joins it.
class SnapshotServer {
public:
  SnapshotServer(SnapshotRegistry &Registry, ServerConfig Config);
  ~SnapshotServer();

  SnapshotServer(const SnapshotServer &) = delete;
  SnapshotServer &operator=(const SnapshotServer &) = delete;

  /// Binds, listens, and spawns the event-loop and admin threads.
  /// \returns false with a diagnostic in \p Err (nothing spawned).
  bool start(std::string &Err);

  /// Graceful shutdown: stop accepting, drain in-flight requests and
  /// write buffers (bounded by Config.DrainSeconds), close, join.
  /// Idempotent.
  void stop();

  bool running() const { return LoopThread.joinable(); }

  /// The bound port (resolves Config.Port == 0 after start()).
  uint16_t port() const { return BoundPort; }
  const std::string &host() const { return Config.Host; }

  SnapshotRegistry &registry() { return Registry; }

  /// Live counters (net.* names; Prometheus exposition sanitizes to
  /// net_*). The `stats` query verb answers engine metrics plus these.
  obs::MetricsRegistry &metrics() const { return Metrics; }

private:
  struct PendingReq {
    MsgType Type;
    std::string Text; ///< query text, swap path, or a parse diagnostic
    uint64_t StartNs; ///< steady-clock stamp at parse time
    /// Text is a protocol diagnostic, answered as an error *in queue
    /// order* — clients correlate responses by position, so even a
    /// malformed request's answer must not jump ahead of earlier ones.
    bool ParseError = false;
  };

  /// One connection's state. The event loop owns Fd / RdBuf / Mode;
  /// Queue / Outbox / flags are shared with workers under Mu.
  struct Conn {
    int Fd = -1;
    uint64_t Id = 0;
    enum class IoMode : uint8_t { Unknown, Binary, Line } Mode =
        IoMode::Unknown;
    std::string RdBuf;

    std::mutex Mu;
    std::deque<PendingReq> Queue;
    std::string Outbox;
    bool Running = false;      ///< a pool worker is draining Queue
    bool AwaitingSwap = false; ///< queue paused behind an admin swap
    bool Draining = false;     ///< no more reads; close once Outbox empty
    bool Dead = false;         ///< close at the next loop pass
  };

  struct SwapTask {
    std::string Path;
    std::shared_ptr<Conn> Replier; ///< null for fifo-driven swaps
  };

  void loop();
  void wake();
  void acceptReady();
  void readable(const std::shared_ptr<Conn> &C);
  void writable(const std::shared_ptr<Conn> &C);
  void parseBuffered(const std::shared_ptr<Conn> &C);
  /// Starts or continues executing C's queue per the execution mode.
  void pump(const std::shared_ptr<Conn> &C);
  /// Drains C's queue until empty or paused; runs on the loop thread
  /// (inline mode) or a pool worker.
  void drainQueue(const std::shared_ptr<Conn> &C);
  Response execute(const PendingReq &Req);
  void respond(const std::shared_ptr<Conn> &C, const Response &R);
  void failProtocol(const std::shared_ptr<Conn> &C, const std::string &Why);
  void closeConn(uint64_t Id);
  void fifoReadable();
  void swapLoop();
  std::string statsText() const;

  SnapshotRegistry &Registry;
  ServerConfig Config;
  uint16_t BoundPort = 0;

  int ListenFd = -1;
  int WakeRd = -1, WakeWr = -1;
  int FifoFd = -1;
  std::string FifoBuf;

  std::map<uint64_t, std::shared_ptr<Conn>> Conns; ///< loop thread only
  uint64_t NextConnId = 1;
  /// While in the future, the listener is not polled: after accept4
  /// fails with EMFILE/ENFILE the fd stays readable until the backlog
  /// drains, and polling it would spin the loop at 100% CPU.
  std::chrono::steady_clock::time_point AcceptBackoffUntil{};

  std::atomic<bool> Stopping{false};
  std::thread LoopThread;

  std::unique_ptr<ThreadPool> Pool; ///< only when Config.Workers > 0

  std::thread SwapThread;
  std::mutex SwapMu;
  std::condition_variable SwapCv;
  std::deque<SwapTask> SwapTasks;
  bool SwapStop = false;

  mutable obs::MetricsRegistry Metrics;
};

} // namespace mahjong::net

#endif // MAHJONG_NET_SNAPSHOTSERVER_H
