//===-- workload/BenchmarkPrograms.h - The 12 profiles --------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named workload profiles standing in for the paper's 12 benchmarks
/// (9 DaCapo programs plus findbugs, checkstyle and JPC; §6). Each profile
/// fixes the generator knobs to reproduce the benchmark's *role* in the
/// evaluation:
///
///  - small, 3obj-scalable programs (luindex, lusearch, antlr, fop);
///  - mid-size programs where plain 3obj exhausts the budget but
///    MAHJONG-based 3obj completes (pmd, chart, checkstyle, findbugs,
///    xalan);
///  - large/heterogeneous programs that defeat 3obj with or without
///    MAHJONG (eclipse, bloat, jpc).
///
/// Absolute sizes are scaled to single-machine benchmarking; shapes (who
/// is scalable, who wins, merge ratios) are what we reproduce.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_WORKLOAD_BENCHMARKPROGRAMS_H
#define MAHJONG_WORKLOAD_BENCHMARKPROGRAMS_H

#include "workload/SyntheticBuilder.h"

#include <string>
#include <vector>

namespace mahjong::workload {

/// All profile names, in the paper's canonical order.
const std::vector<std::string> &benchmarkNames();

/// The generator spec of profile \p Name (aborts on unknown names).
/// \p Scale multiplies the module count (1.0 = default size).
WorkloadSpec benchmarkSpec(const std::string &Name, double Scale = 1.0);

/// Convenience: builds the program of profile \p Name.
std::unique_ptr<ir::Program> buildBenchmarkProgram(const std::string &Name,
                                                   double Scale = 1.0);

} // namespace mahjong::workload

#endif // MAHJONG_WORKLOAD_BENCHMARKPROGRAMS_H
