//===-- workload/SyntheticBuilder.cpp - Synthetic programs ------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/SyntheticBuilder.h"

#include "ir/ProgramBuilder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::workload;

namespace {

/// SplitMix64: a tiny, deterministic PRNG — good enough for shaping
/// workloads and fully reproducible across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed * 2654435769u + 1) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9E3779B97F4A7C15ull);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound).
  uint32_t below(uint32_t Bound) {
    return Bound == 0 ? 0 : static_cast<uint32_t>(next() % Bound);
  }

  /// True with probability PerMille/1000.
  bool chance(unsigned PerMille) { return below(1000) < PerMille; }

private:
  uint64_t State;
};

std::string num(unsigned N) { return std::to_string(N); }

/// Emits the class library shared by all modules: element families with
/// variants, box kinds, engines/makers, registries, buf kinds, wrapper
/// kinds, and static utility chains.
void emitLibrary(ProgramBuilder &B, const WorkloadSpec &S) {
  // Element families: Elem{f} with variants Elem{f}v{v}, all overriding
  // op() — the dispatch target of the devirtualization client.
  for (unsigned F = 0; F < S.ElemFamilies; ++F) {
    std::string Fam = "Elem" + num(F);
    B.declClass(Fam);
    B.declField(Fam, "nxt" + num(F), Fam);
    B.method(Fam, "op").ret("this");
    for (unsigned V = 0; V < S.VariantsPerFamily; ++V) {
      std::string Var = Fam + "v" + num(V);
      B.declClass(Var, Fam);
      B.method(Var, "op").copy("r", "this").ret("r");
    }
  }

  // Box kinds: generic containers. The precision pattern stores via
  // direct per-site stores in module code; the cost pattern pumps
  // registry unions through put(). get() runs a chain of helper calls on
  // `this`, so every box *context* holds the container's contents in
  // several locals — the per-context volume that makes the unmerged heap
  // expensive under k-object-sensitivity.
  for (unsigned K = 0; K < S.BoxKinds; ++K) {
    std::string Box = "Box" + num(K);
    std::string Val = "val" + num(K);
    B.declClass(Box);
    B.declField(Box, Val, "Object");
    {
      MethodBuilder &Get = B.method(Box, "get");
      if (S.BoxHelperChain > 0)
        Get.vcall("a", "this", "h" + num(K) + "_0");
      Get.load("r", "this", Val).ret("r");
    }
    for (unsigned I = 0; I < S.BoxHelperChain; ++I) {
      MethodBuilder &H = B.method(Box, "h" + num(K) + "_" + num(I));
      H.load("x", "this", Val);
      if (I + 1 < S.BoxHelperChain)
        H.vcall("a", "this", "h" + num(K) + "_" + num(I + 1));
      H.ret("x");
    }
    B.method(Box, "put", {"v"}).store("this", Val, "v").ret("this");
    if (S.UseIterators) {
      // The iterator is allocated *inside* iter(), one level deeper than
      // the box: under 3obj its methods are distinguished per engine,
      // under 2obj the shorter heap contexts collapse them — this is the
      // 3obj-specific cost that the paper's Table 2 shows exploding.
      std::string It = "It" + num(K);
      std::string Cur = "cur" + num(K);
      B.declClass(It);
      B.declField(It, Cur, "Object");
      {
        MethodBuilder &Next = B.method(It, "next");
        if (S.IterHelperChain > 0)
          Next.vcall("a", "this", "n" + num(K) + "_0");
        Next.load("r", "this", Cur).ret("r");
      }
      for (unsigned I = 0; I < S.IterHelperChain; ++I) {
        MethodBuilder &N = B.method(It, "n" + num(K) + "_" + num(I));
        N.load("x", "this", Cur);
        if (I + 1 < S.IterHelperChain)
          N.vcall("a", "this", "n" + num(K) + "_" + num(I + 1));
        N.ret("x");
      }
      B.method(Box, "iter")
          .alloc("i", It)
          .load("t", "this", Val)
          .store("i", Cur, "t")
          .ret("i");
    }
  }

  // Buf kinds: the "StringBuilder" pattern — a homogeneous payload
  // written through a shared append method. The pre-analysis conflates
  // all contents of a kind, but they are all of one payload type, so
  // every site stays type-consistent and MAHJONG merges each kind into a
  // single abstract object.
  for (unsigned K = 0; K < S.BufKinds; ++K) {
    std::string Buf = "Buf" + num(K);
    std::string Pay = "Pay" + num(K);
    std::string Data = "data" + num(K);
    B.declClass(Pay);
    B.declClass(Buf);
    B.declField(Buf, Data, Pay);
    B.method(Buf, "append", {"v"}).store("this", Data, "v").ret("this");
    B.method(Buf, "read").load("r", "this", Data).ret("r");
  }

  // Engines: the k-obj cost pattern. Engine{f}.make() allocates a box, so
  // box heap contexts carry the engine object and every box/iterator
  // method context is distinguished per engine *site* under k-obj (but
  // only per engine *class* under k-type, keeping k-type cheap, and only
  // per call-chain under k-CFA). Engines carry a log field (written by
  // modules with homogeneous Buf objects) so their type-consistency is
  // decided by real automata, not trivially. One engine class per element
  // family; the box kind is derived from the family.
  for (unsigned F = 0; F < S.ElemFamilies; ++F) {
    std::string Engine = "Engine" + num(F);
    std::string BoxKind = "Box" + num(F % S.BoxKinds);
    B.declClass(Engine);
    B.declField(Engine, "log" + num(F), "Object");
    if (S.UseMakerIndirection) {
      std::string Maker = "Maker" + num(F);
      B.declClass(Maker);
      B.method(Maker, "build").alloc("b", BoxKind).ret("b");
      B.method(Engine, "make")
          .alloc("h", Maker)
          .vcall("r", "h", "build")
          .ret("r");
    } else {
      B.method(Engine, "make").alloc("b", BoxKind).ret("b");
    }
  }

  // Registries: one per family, reachable through a static field. They
  // accumulate every element of the family, so any variable fed from
  // take() carries family-wide points-to sets — the volume that MAHJONG's
  // element merging collapses.
  B.declClass("Glob");
  MethodBuilder &Init = B.method("Glob", "init", {}, /*IsStatic=*/true);
  for (unsigned F = 0; F < S.ElemFamilies; ++F) {
    std::string Reg = "Reg" + num(F);
    std::string Head = "head" + num(F);
    B.declClass(Reg);
    B.declField(Reg, Head, "Object");
    B.method(Reg, "add", {"v"}).store("this", Head, "v").ret("this");
    B.method(Reg, "take").load("r", "this", Head).ret("r");
    B.declStaticField("Glob", "reg" + num(F), Reg);
    Init.alloc("r" + num(F), Reg);
    Init.staticStore("Glob", "reg" + num(F), "r" + num(F));
  }

  // The event bus: one program-wide subscriber list behind subscribe()/
  // all(). Modules both feed it (staggered by hand-off chains) and read
  // it back to re-register, so subs + every module's tap local is one
  // giant copy SCC — see the "Bus" bullet in SyntheticBuilder.h.
  if (S.BusHandlersPerModule > 0) {
    B.declClass("Hand");
    B.declClass("Bus");
    B.declField("Bus", "subs", "Object");
    B.method("Bus", "subscribe", {"h"}).store("this", "subs", "h").ret(
        "this");
    B.method("Bus", "all").load("r", "this", "subs").ret("r");
    B.declStaticField("Glob", "bus", "Bus");
    Init.alloc("bus", "Bus");
    Init.staticStore("Glob", "bus", "bus");
  }

  // Pumps: per-family static helpers that fill a container from the
  // registry and drain it through get()/iterators. A static helper keeps
  // the family-wide registry union in ONE variable under the
  // context-insensitive pre-analysis (ci stays linear), while each
  // context-sensitive analysis pays per-receiver container contexts.
  for (unsigned F = 0; F < S.ElemFamilies; ++F) {
    std::string Pump = "Pump" + num(F);
    B.declClass(Pump);
    MethodBuilder &M = B.method(Pump, "pump", {"b"}, /*IsStatic=*/true);
    M.staticLoad("rg", "Glob", "reg" + num(F));
    M.vcall("t", "rg", "take");
    // Fluent put: capturing the returned receiver closes the classic
    // b -> this(put) -> b copy cycle, shared per box kind under ci —
    // exactly the StringBuilder-style SCC that cycle collapsing targets.
    if (S.FluentPerMille > 0)
      M.vcall("b", "b", "put", {"t"});
    else
      M.vcall("", "b", "put", {"t"});
    M.vcall("", "b", "get");
    if (S.UseIterators) {
      M.vcall("it", "b", "iter");
      M.vcall("", "it", "next");
    }
    // An empty pump raises: the error records the missing element.
    M.alloc("oops", "Err" + num(F));
    M.store("oops", "why" + num(F), "t");
    M.throwVar("oops");
  }

  // Wrapper kinds around each box kind: Wrap{k}_1 wraps the box,
  // Wrap{k}_{l} wraps Wrap{k}_{l-1}; get() chains through.
  for (unsigned K = 0; K < S.BoxKinds; ++K)
    for (unsigned L = 1; L <= S.WrapDepth; ++L) {
      std::string Wrap = "Wrap" + num(K) + "_" + num(L);
      std::string Inner = L == 1 ? "Box" + num(K)
                                 : "Wrap" + num(K) + "_" + num(L - 1);
      std::string Inn = "inn" + num(K) + "_" + num(L);
      B.declClass(Wrap);
      B.declField(Wrap, Inn, Inner);
      B.method(Wrap, "get")
          .load("t", "this", Inn)
          .vcall("r", "t", "get")
          .ret("r");
    }

  // Error classes: one per family, thrown by the registries on take()
  // and caught in module code. Exception objects are classic merge
  // candidates (same type, homogeneous payload) and exercise the
  // exceptional-flow edges of the solver.
  for (unsigned F = 0; F < S.ElemFamilies; ++F) {
    std::string ErrCls = "Err" + num(F);
    B.declClass(ErrCls);
    B.declField(ErrCls, "why" + num(F), "Elem" + num(F));
  }

  // Static utility chains: Util{u}::pass0 -> pass1 -> ... -> passN. They
  // thread a value through and return it — context fodder for k-CFA and
  // call-graph bulk for every analysis.
  for (unsigned U = 0; U < S.UtilChains; ++U) {
    std::string Util = "Util" + num(U);
    B.declClass(Util);
    for (unsigned I = 0; I < S.UtilChainLength; ++I) {
      MethodBuilder &M =
          B.method(Util, "pass" + num(I), {"x"}, /*IsStatic=*/true);
      if (I + 1 < S.UtilChainLength) {
        M.scall("r", Util, "pass" + num(I + 1), {"x"}).ret("r");
      } else {
        // Recursing back to pass0 closes the parameter chain into a
        // cycle without changing any points-to set (every pass already
        // carries the same argument union) — pure collapsing fodder,
        // like real recursive-descent helpers.
        if (S.RecursiveUtils && S.UtilChainLength > 1)
          M.scall("rr", Util, "pass0", {"x"});
        M.copy("r", "x").ret("r");
      }
    }
  }
}

/// Emits one module: a class Mod{m} with a static run() allocating and
/// exercising containers. main() calls every module after Glob::init().
void emitModule(ProgramBuilder &B, const WorkloadSpec &S, unsigned M,
                Rng &R) {
  std::string Mod = "Mod" + num(M);
  B.declClass(Mod);
  B.declStaticField(Mod, "cache", "Object");
  MethodBuilder &Run = B.method(Mod, "run", {}, /*IsStatic=*/true);
  unsigned Tmp = 0;
  auto Fresh = [&](const char *Stem) { return Stem + num(Tmp++); };

  // The module's dominant element family: sites of the same (kind,
  // family) pair — within and across modules — are type-consistent and
  // will be merged by MAHJONG.
  unsigned HomeFam = M % S.ElemFamilies;

  // First buf site: also used as the engines' log payload.
  std::string FirstBuf;
  for (unsigned J = 0; J < S.BufSitesPerModule && S.BufKinds > 0; ++J) {
    unsigned Kind = (M + J) % S.BufKinds;
    std::string Buf = "Buf" + num(Kind), Pay = "Pay" + num(Kind);
    std::string U = Fresh("u"), Q = Fresh("p"), Rd = Fresh("r"),
                C = Fresh("c");
    Run.alloc(U, Buf);
    Run.alloc(Q, Pay);
    // Fluent append (u = u.append(p)): the receiver variable joins the
    // kind-wide receiver/return cycle, as StringBuilder chains do.
    if (R.chance(S.FluentPerMille))
      Run.vcall(U, U, "append", {Q});
    else
      Run.vcall("", U, "append", {Q});
    Run.vcall(Rd, U, "read");
    Run.cast(C, Pay, Rd);
    if (J == 0)
      FirstBuf = U;
  }

  // Registry-fed element sites: the points-to volume for the cost
  // pattern. Elements form chains of varying length through nxt, which
  // diversifies their automata (chains of different depth are not
  // type-consistent), bounding how far MAHJONG can compress them.
  std::string Reg = Fresh("rg");
  Run.staticLoad(Reg, "Glob", "reg" + num(HomeFam));
  std::string PrevElem, FirstElem;
  for (unsigned J = 0; J < S.ElemSitesPerModule; ++J) {
    // Random variants: linked elements then carry random variant strings
    // along their chains, so most linked elements are type-INconsistent
    // with each other — the singleton mass of the paper's Figure 9.
    unsigned Var = R.below(S.VariantsPerFamily);
    std::string E = Fresh("e");
    Run.alloc(E, "Elem" + num(HomeFam) + "v" + num(Var));
    if (R.chance(S.FluentPerMille))
      Run.vcall(Reg, Reg, "add", {E}); // fluent: rg = rg.add(e)
    else
      Run.vcall("", Reg, "add", {E});
    if (!PrevElem.empty() && R.chance(S.ElemChainPerMille))
      Run.store(E, "nxt" + num(HomeFam), PrevElem);
    PrevElem = E;
    if (FirstElem.empty())
      FirstElem = E;
  }

  // Loop-variable aliasing: iteration over the registry contents keeps
  // the family-wide view rotating through a small ring of locals
  // (cur/prev/first shuffles). Flow-insensitively the ring is a copy
  // cycle carrying the family union — the dominant SCC shape of real
  // bytecode, and what online cycle collapsing folds to one node.
  if (S.AliasRingLength > 1) {
    std::string T = Fresh("t");
    Run.vcall(T, Reg, "take");
    std::string Prev = T;
    for (unsigned I = 1; I < S.AliasRingLength; ++I) {
      std::string Cur = Fresh("s");
      Run.copy(Cur, Prev);
      Prev = Cur;
    }
    Run.copy(T, Prev); // closes the ring
    std::string CT = Fresh("c");
    Run.cast(CT, "Elem" + num(HomeFam), Prev);
    Run.vcall("", CT, "op");
  }

  // Event-bus participation: register this module's handlers (each handed
  // through a chain of locals whose length varies by module, staggering
  // when the handler reaches the bus), then read the subscriber list and
  // re-register it — the observer/adapter idiom that makes the bus field
  // and every module's tap variable one program-wide copy cycle.
  if (S.BusHandlersPerModule > 0) {
    std::string Bus = Fresh("bu");
    Run.staticLoad(Bus, "Glob", "bus");
    for (unsigned J = 0; J < S.BusHandlersPerModule; ++J) {
      std::string H = Fresh("h");
      Run.alloc(H, "Hand");
      unsigned Delay =
          S.BusDelaySpread > 1 ? (M * 7 + J * 3) % S.BusDelaySpread : 0;
      std::string Cur = H;
      for (unsigned D = 0; D < Delay; ++D) {
        std::string Next = Fresh("d");
        Run.copy(Next, Cur);
        Cur = Next;
      }
      Run.vcall("", Bus, "subscribe", {Cur});
    }
    for (unsigned J = 0; J < S.BusTapsPerModule; ++J) {
      std::string Tap = Fresh("hs");
      Run.vcall(Tap, Bus, "all");
      Run.vcall("", Bus, "subscribe", {Tap});
    }
  }

  // Engine sites: each one materializes a full container context chain
  // under k-object-sensitivity; the pump fills the container with the
  // family-wide registry union, so those contexts hold heavy points-to
  // sets on the unmerged heap. Results are discarded so the volume stays
  // inside the containers' per-context locals (module locals would
  // charge every analysis equally).
  for (unsigned J = 0; J < S.EngineSitesPerModule; ++J) {
    std::string En = Fresh("en"), Bx = Fresh("b");
    Run.alloc(En, "Engine" + num(HomeFam));
    if (!FirstBuf.empty())
      Run.store(En, "log" + num(HomeFam), FirstBuf);
    if (R.chance(S.PollutedEnginePerMille) && S.BufKinds > 1) {
      // A log mixing two Buf kinds: a condition-2 violation that keeps
      // this engine site unmerged — such sites retain per-site contexts
      // even under MAHJONG (the never-scalable programs have many).
      std::string U2 = Fresh("u");
      Run.alloc(U2, "Buf" + num((M + J + 1) % S.BufKinds));
      Run.store(En, "log" + num(HomeFam), U2);
    }
    Run.vcall(Bx, En, "make");
    Run.scall("", "Pump" + num(HomeFam), "pump", {Bx});
    if (J == 0) { // one observed read per module for the clients
      std::string G = Fresh("g"), C = Fresh("c");
      Run.vcall(G, Bx, "get");
      Run.cast(C, "Elem" + num(HomeFam), G);
      Run.vcall("", C, "op");
    }
    if (S.UtilChains > 0 && !FirstElem.empty()) {
      std::string Ret = Fresh("uu");
      Run.scall(Ret, "Util" + num(J % S.UtilChains), "pass0", {FirstElem});
    }
  }

  // Direct-store box sites: the precision pattern. The pre-analysis sees
  // per-site contents exactly, so MAHJONG groups sites by stored element
  // type, while the allocation-type abstraction conflates everything.
  for (unsigned J = 0; J < S.BoxSitesPerModule; ++J) {
    unsigned Kind = (M + J) % S.BoxKinds;
    unsigned Fam = (J % 4 == 3) ? (HomeFam + 1) % S.ElemFamilies : HomeFam;
    unsigned Var = (M + J) % S.VariantsPerFamily;
    std::string Box = "Box" + num(Kind);
    std::string Val = "val" + num(Kind);

    std::string E = Fresh("e"), Bx = Fresh("b"), G = Fresh("g"),
                C = Fresh("c");
    Run.alloc(E, "Elem" + num(Fam) + "v" + num(Var));
    Run.alloc(Bx, Box);
    Run.store(Bx, Val, E); // direct store: per-site contents stay exact
    if (R.chance(S.MixedPerMille)) {
      // Condition-2 violator: a second element of another family in the
      // same site. Such a site must never be merged (Example 2.4).
      std::string E2 = Fresh("e");
      unsigned Fam2 =
          (Fam + 1 + R.below(S.ElemFamilies - 1)) % S.ElemFamilies;
      Run.alloc(E2, "Elem" + num(Fam2) + "v0");
      Run.store(Bx, Val, E2);
    }
    // Most sites read back through a direct load (exact under every
    // analysis); the first few use the shared virtual get(), whose
    // return value conflates all contents of the kind under ci — the
    // sites where context-sensitivity visibly pays off. Keeping the
    // virtual reads rare also keeps the ci pre-analysis fast.
    if (J < 2)
      Run.vcall(G, Bx, "get");
    else
      Run.load(G, Bx, Val);
    // The cast target: usually the true family (safe unless mixed);
    // occasionally a wrong variant — a genuinely unsafe cast that every
    // sound analysis must report.
    if (R.chance(S.BadCastPerMille))
      Run.cast(C,
               "Elem" + num(Fam) + "v" +
                   num((Var + 1) % S.VariantsPerFamily),
               G);
    else
      Run.cast(C, "Elem" + num(Fam), G);
    Run.vcall("", C, "op");
    if (J == 0) { // static-field cache traffic
      Run.staticStore(Mod, "cache", Bx);
      std::string L = Fresh("l"), CC = Fresh("c");
      Run.staticLoad(L, Mod, "cache");
      Run.cast(CC, Box, L);
      Run.vcall("", CC, "get");
    }
  }

  // Wrapper chains: allocate the full chain in the module (direct inner
  // stores), then read through the shared get() chain.
  for (unsigned J = 0; J < S.WrapSitesPerModule && S.WrapDepth > 0; ++J) {
    unsigned Kind = (M + J) % S.BoxKinds;
    unsigned Var = J % S.VariantsPerFamily;
    std::string E = Fresh("e"), Bx = Fresh("b");
    Run.alloc(E, "Elem" + num(HomeFam) + "v" + num(Var));
    Run.alloc(Bx, "Box" + num(Kind));
    Run.store(Bx, "val" + num(Kind), E);
    std::string Lower = Bx;
    for (unsigned L = 1; L <= S.WrapDepth; ++L) {
      std::string W = Fresh("w");
      Run.alloc(W, "Wrap" + num(Kind) + "_" + num(L));
      Run.store(W, "inn" + num(Kind) + "_" + num(L), Lower);
      Lower = W;
    }
    // One observed read per module: the result-carrying read conflates
    // kind-wide under ci, so keeping it rare keeps the pre-analysis
    // linear; the remaining chains are exercised result-free.
    if (J == 0) {
      std::string G = Fresh("g"), C = Fresh("c");
      Run.vcall(G, Lower, "get");
      Run.cast(C, "Elem" + num(HomeFam), G);
      Run.vcall("", C, "op");
    } else {
      Run.vcall("", Lower, "get");
    }
  }

  // Never-written sites: their fields stay null in the FPG, forming the
  // separate all-null equivalence classes of Table 1.
  for (unsigned J = 0; J < S.NullSitesPerModule; ++J) {
    std::string Z = Fresh("z");
    Run.alloc(Z, "Box" + num((M + J) % S.BoxKinds));
    Run.vcall("", Z, "get");
  }

  // The module observes pump failures of its family. (No dispatch on
  // the family-wide payload: that would charge every analysis a flat
  // receiver-fan-out cost and blur the tier ratios Table 2 needs.)
  std::string Caught = Fresh("ex"), Why = Fresh("w"), CW = Fresh("c");
  Run.catchType(Caught, "Err" + num(HomeFam));
  Run.load(Why, Caught, "why" + num(HomeFam));
  Run.cast(CW, "Elem" + num(HomeFam), Why);
}

} // namespace

std::unique_ptr<Program>
mahjong::workload::buildSyntheticProgram(const WorkloadSpec &S) {
  ProgramBuilder B;
  Rng R(S.Seed);
  emitLibrary(B, S);
  for (unsigned M = 0; M < S.Modules; ++M)
    emitModule(B, S, M, R);
  B.declClass("Main");
  MethodBuilder &Main = B.method("Main", "main", {}, /*IsStatic=*/true);
  Main.scall("", "Glob", "init");
  for (unsigned M = 0; M < S.Modules; ++M)
    Main.scall("", "Mod" + num(M), "run");
  std::string Err;
  auto P = B.finish(Err);
  if (!P) {
    std::fprintf(stderr, "workload generator bug (%s): %s\n",
                 S.Name.c_str(), Err.c_str());
    std::abort();
  }
  return P;
}
