//===-- workload/BenchmarkPrograms.cpp - The 12 profiles ---------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/BenchmarkPrograms.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace mahjong;
using namespace mahjong::workload;

namespace {

/// Compact profile record; translated into a WorkloadSpec below.
struct Profile {
  const char *Name;
  unsigned Modules;
  unsigned BoxSites;
  unsigned EngineSites;
  unsigned ElemSites;
  unsigned WrapSites;
  unsigned BufSites;
  unsigned WrapDepth;
  unsigned ElemFamilies;
  unsigned BoxKinds;
  unsigned BufKinds;
  unsigned MixedPerMille;
  unsigned PollutedPerMille;
  unsigned ElemChainPerMille;
  unsigned UtilChains;
  unsigned FluentPerMille;
  unsigned AliasRing;
  unsigned BusHandlers;
  unsigned BusTaps;
  unsigned BusSpread;
};

// Sizes follow the relative ordering of the paper's programs: luindex is
// the smallest heap (6190 sites), eclipse the largest (19529); absolute
// counts are scaled to single-machine benchmarking. Engine and element
// site counts drive the k-object-sensitive baseline cost (contexts x
// points-to volume); PollutedPerMille keeps a slice of engine sites
// unmergeable, which is what makes the three never-scalable programs
// expensive even for MAHJONG-based 3obj.
const Profile Profiles[] = {
    // name       Mod Box Eng Elm Wrp Buf  D Fam BK UK  mix poll chain util flu ring bh bt spr
    {"antlr",     180,  8, 10, 24,  3,  5, 2,  4, 3, 2,  40,  10, 870, 2, 400,  5, 1, 1,  8},
    {"fop",       220,  8, 12, 26,  4,  5, 2,  5, 3, 2,  50,  10, 870, 2, 400,  5, 1, 1,  8},
    {"luindex",   120,  7,  8, 20,  3,  5, 2,  4, 3, 2,  40,  10, 870, 2, 350,  4, 1, 1,  8},
    {"lusearch",  140,  7,  9, 20,  3,  5, 2,  4, 3, 2,  40,  10, 870, 2, 350,  4, 1, 1,  8},
    {"chart",     760, 10, 26, 55,  5,  6, 3,  6, 4, 3,  60,  25, 870, 3, 500,  6, 1, 2, 16},
    {"checkstyle",700, 10, 26, 55,  5,  6, 3,  6, 4, 3,  60,  25, 870, 3, 500,  6, 1, 2, 16},
    {"findbugs",  820, 10, 28, 60,  5,  6, 3,  6, 4, 3,  70,  25, 870, 3, 550,  6, 1, 2, 16},
    {"pmd",       780, 10, 28, 60,  6,  6, 3,  6, 4, 3,  60,  25, 870, 3, 500,  6, 1, 2, 16},
    {"xalan",     720, 11, 26, 55,  5,  6, 3,  6, 4, 3,  60,  25, 870, 3, 500,  6, 1, 2, 16},
    {"bloat",     900, 12, 36, 80,  7,  7, 3,  7, 5, 3, 180, 750, 900, 3, 650,  8, 2, 3, 32},
    {"eclipse",  1000, 12, 40, 85,  8,  7, 3,  8, 5, 3, 200, 800, 900, 4, 700, 24, 4, 14, 96},
    {"jpc",       950, 12, 38, 80,  7,  7, 3,  7, 5, 3, 190, 770, 900, 3, 650,  8, 2, 3, 32},
};
} // namespace

const std::vector<std::string> &mahjong::workload::benchmarkNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> V;
    for (const Profile &P : Profiles)
      V.push_back(P.Name);
    return V;
  }();
  return Names;
}

WorkloadSpec mahjong::workload::benchmarkSpec(const std::string &Name,
                                              double Scale) {
  for (const Profile &P : Profiles) {
    if (Name != P.Name)
      continue;
    WorkloadSpec S;
    S.Name = P.Name;
    S.Seed = static_cast<uint32_t>(
        std::hash<std::string>()(Name) & 0x7FFFFFFF);
    S.Modules = std::max(
        1u, static_cast<unsigned>(std::lround(P.Modules * Scale)));
    S.BoxSitesPerModule = P.BoxSites;
    S.EngineSitesPerModule = P.EngineSites;
    S.ElemSitesPerModule = P.ElemSites;
    S.WrapSitesPerModule = P.WrapSites;
    S.BufSitesPerModule = P.BufSites;
    S.WrapDepth = P.WrapDepth;
    S.ElemFamilies = P.ElemFamilies;
    S.BoxKinds = P.BoxKinds;
    S.BufKinds = P.BufKinds;
    S.MixedPerMille = P.MixedPerMille;
    S.PollutedEnginePerMille = P.PollutedPerMille;
    S.ElemChainPerMille = P.ElemChainPerMille;
    S.UtilChains = P.UtilChains;
    S.FluentPerMille = P.FluentPerMille;
    S.RecursiveUtils = true;
    S.AliasRingLength = P.AliasRing;
    S.BusHandlersPerModule = P.BusHandlers;
    S.BusTapsPerModule = P.BusTaps;
    S.BusDelaySpread = P.BusSpread;
    S.VariantsPerFamily = 3;
    S.BoxHelperChain = 1;
    S.IterHelperChain = 10;
    S.BadCastPerMille = 50;
    S.NullSitesPerModule = 1;
    S.UtilChainLength = 4;
    S.UseIterators = true;
    S.UseMakerIndirection = false;
    return S;
  }
  std::fprintf(stderr, "unknown benchmark profile '%s'\n", Name.c_str());
  std::abort();
}

std::unique_ptr<ir::Program>
mahjong::workload::buildBenchmarkProgram(const std::string &Name,
                                         double Scale) {
  return buildSyntheticProgram(benchmarkSpec(Name, Scale));
}
