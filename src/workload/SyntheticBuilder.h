//===-- workload/SyntheticBuilder.h - Synthetic programs ------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of Java-like programs with the heap shapes that
/// drive the paper's evaluation. These stand in for the DaCapo/JPC/
/// findbugs/checkstyle bytecode (see DESIGN.md §4): what matters for both
/// the cost of context-sensitive analysis and the benefit of MAHJONG is
/// the *shape* of the heap, which the generator reproduces with five
/// patterns:
///
///  - "Box" precision pattern: generic containers written by direct
///    per-site stores (the Object[] pattern) — sites group by the element
///    family they store; the allocation-type abstraction conflates the
///    families and loses client precision, MAHJONG does not.
///  - "Engine" cost pattern: per-(kind,family) factory objects whose
///    make() allocates containers through a second factory level, so
///    k-object-sensitive analyses materialize one container context per
///    engine site. Engines are type-consistent across modules, so MAHJONG
///    merges them and the context space collapses.
///  - "Registry" volume pattern: per-family registries accumulating every
///    element; registry contents are pumped through container put/get and
///    static utility chains, so baseline points-to sets scale with the
///    number of element *sites* while MAHJONG-merged sets scale with the
///    handful of element equivalence classes.
///  - "Buf" pattern: homogeneous containers written through shared helper
///    methods (the StringBuilder/char[] pattern) — every site of a kind is
///    type-consistent and collapses to a single abstract object.
///  - Wrapper chains, never-written (null) fields, condition-2 violators
///    (mixed stores and polluted engine logs), static-field caches,
///    polymorphic call sites and genuinely unsafe casts, so all three
///    type-dependent clients have real work on both sides.
///  - Fluent chaining and recursion: a slice of container calls capture
///    the returned receiver back into the receiver variable (the
///    StringBuilder `sb = sb.append(x)` idiom) and the static utility
///    chains recurse, so the constraint graph carries the copy-edge
///    cycles that pervade real Java bytecode — the structures the wave
///    solver's online cycle collapsing exists for.
///  - "Bus" observer pattern: a program-wide event bus (the Eclipse
///    plugin-registry / GUI listener idiom). Every module registers
///    handlers and also reads the full subscriber list back to wrap and
///    re-register it, so the bus's subscriber field and every module's
///    listener local form ONE program-wide copy SCC that keeps receiving
///    deltas as registration staggers across module initialization — the
///    dominant giant-SCC shape of real constraint graphs (Hardekopf &
///    Lin), and the structure where FIFO propagation re-floods the whole
///    component per delta while cycle collapsing pays for it once.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_WORKLOAD_SYNTHETICBUILDER_H
#define MAHJONG_WORKLOAD_SYNTHETICBUILDER_H

#include "ir/Program.h"

#include <memory>
#include <string>

namespace mahjong::workload {

/// Size and shape knobs of one synthetic program. Defaults give a small
/// program suitable for tests; the benchmark profiles scale them up.
struct WorkloadSpec {
  std::string Name = "synthetic";
  uint32_t Seed = 1;

  unsigned ElemFamilies = 4;      ///< element class families
  unsigned VariantsPerFamily = 3; ///< subclasses per family (dispatch)
  unsigned BoxKinds = 3;          ///< generic container kinds
  unsigned BufKinds = 2;          ///< shared-helper homogeneous kinds
  unsigned Modules = 6;           ///< static module methods called by main
  unsigned BoxSitesPerModule = 6; ///< direct-store box sites per module
  unsigned EngineSitesPerModule = 4; ///< factory sites per module
  unsigned ElemSitesPerModule = 6;///< registry-fed element sites
  unsigned BufSitesPerModule = 4; ///< buf allocation sites per module
  unsigned WrapDepth = 2;         ///< wrapper nesting depth (0 = none)
  unsigned WrapSitesPerModule = 2;
  unsigned MixedPerMille = 60;    ///< box sites violating condition 2
  unsigned PollutedEnginePerMille = 0; ///< engines with mixed-kind logs
  unsigned BadCastPerMille = 50;  ///< fraction of genuinely unsafe casts
  unsigned NullSitesPerModule = 1;///< never-written container sites
  unsigned UtilChains = 2;        ///< static utility call chains
  unsigned UtilChainLength = 4;
  unsigned BoxHelperChain = 2;    ///< helper-call depth inside Box.get
  unsigned IterHelperChain = 5;   ///< helper-call depth inside It.next
  unsigned ElemChainPerMille = 200; ///< chance an element links to its
                                    ///< predecessor (chain diversity)
  unsigned FluentPerMille = 350;  ///< chance a container call chains through
                                  ///< its returned receiver (u = u.append(q)),
                                  ///< the StringBuilder idiom — closes
                                  ///< receiver/return copy cycles
  bool RecursiveUtils = true;     ///< util chains recurse back to pass0,
                                  ///< closing the parameter chain into a cycle
  unsigned AliasRingLength = 6;   ///< per-module ring of locals rotating the
                                  ///< registry view (loop-variable shuffling:
                                  ///< cur/prev/first aliases) — a pure copy
                                  ///< cycle carrying family-wide sets; 0/1
                                  ///< disables
  unsigned BusHandlersPerModule = 1; ///< listener objects each module
                                  ///< registers on the program-wide event
                                  ///< bus; 0 disables the bus entirely
  unsigned BusTapsPerModule = 1;  ///< per-module reads of the full
                                  ///< subscriber list that re-register it
                                  ///< (adapter wrapping) — each tap joins
                                  ///< the program-wide bus SCC
  unsigned BusDelaySpread = 16;   ///< handlers reach the bus through local
                                  ///< hand-off chains of length module%spread,
                                  ///< staggering registration the way
                                  ///< init-order does in real programs
  bool UseIterators = true;       ///< boxes hand out iterator objects
  bool UseMakerIndirection = false;///< depth-2 factories (ablation)
};

/// Builds the program described by \p Spec. Generation is deterministic
/// in the spec (including Seed).
///
/// \returns the program; generation cannot fail for well-formed specs, so
/// a failure aborts with a diagnostic (it would be a generator bug).
std::unique_ptr<ir::Program> buildSyntheticProgram(const WorkloadSpec &Spec);

} // namespace mahjong::workload

#endif // MAHJONG_WORKLOAD_SYNTHETICBUILDER_H
