//===-- workload/SyntheticBuilder.h - Synthetic programs ------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of Java-like programs with the heap shapes that
/// drive the paper's evaluation. These stand in for the DaCapo/JPC/
/// findbugs/checkstyle bytecode (see DESIGN.md §4): what matters for both
/// the cost of context-sensitive analysis and the benefit of MAHJONG is
/// the *shape* of the heap, which the generator reproduces with five
/// patterns:
///
///  - "Box" precision pattern: generic containers written by direct
///    per-site stores (the Object[] pattern) — sites group by the element
///    family they store; the allocation-type abstraction conflates the
///    families and loses client precision, MAHJONG does not.
///  - "Engine" cost pattern: per-(kind,family) factory objects whose
///    make() allocates containers through a second factory level, so
///    k-object-sensitive analyses materialize one container context per
///    engine site. Engines are type-consistent across modules, so MAHJONG
///    merges them and the context space collapses.
///  - "Registry" volume pattern: per-family registries accumulating every
///    element; registry contents are pumped through container put/get and
///    static utility chains, so baseline points-to sets scale with the
///    number of element *sites* while MAHJONG-merged sets scale with the
///    handful of element equivalence classes.
///  - "Buf" pattern: homogeneous containers written through shared helper
///    methods (the StringBuilder/char[] pattern) — every site of a kind is
///    type-consistent and collapses to a single abstract object.
///  - Wrapper chains, never-written (null) fields, condition-2 violators
///    (mixed stores and polluted engine logs), static-field caches,
///    polymorphic call sites and genuinely unsafe casts, so all three
///    type-dependent clients have real work on both sides.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_WORKLOAD_SYNTHETICBUILDER_H
#define MAHJONG_WORKLOAD_SYNTHETICBUILDER_H

#include "ir/Program.h"

#include <memory>
#include <string>

namespace mahjong::workload {

/// Size and shape knobs of one synthetic program. Defaults give a small
/// program suitable for tests; the benchmark profiles scale them up.
struct WorkloadSpec {
  std::string Name = "synthetic";
  uint32_t Seed = 1;

  unsigned ElemFamilies = 4;      ///< element class families
  unsigned VariantsPerFamily = 3; ///< subclasses per family (dispatch)
  unsigned BoxKinds = 3;          ///< generic container kinds
  unsigned BufKinds = 2;          ///< shared-helper homogeneous kinds
  unsigned Modules = 6;           ///< static module methods called by main
  unsigned BoxSitesPerModule = 6; ///< direct-store box sites per module
  unsigned EngineSitesPerModule = 4; ///< factory sites per module
  unsigned ElemSitesPerModule = 6;///< registry-fed element sites
  unsigned BufSitesPerModule = 4; ///< buf allocation sites per module
  unsigned WrapDepth = 2;         ///< wrapper nesting depth (0 = none)
  unsigned WrapSitesPerModule = 2;
  unsigned MixedPerMille = 60;    ///< box sites violating condition 2
  unsigned PollutedEnginePerMille = 0; ///< engines with mixed-kind logs
  unsigned BadCastPerMille = 50;  ///< fraction of genuinely unsafe casts
  unsigned NullSitesPerModule = 1;///< never-written container sites
  unsigned UtilChains = 2;        ///< static utility call chains
  unsigned UtilChainLength = 4;
  unsigned BoxHelperChain = 2;    ///< helper-call depth inside Box.get
  unsigned IterHelperChain = 5;   ///< helper-call depth inside It.next
  unsigned ElemChainPerMille = 200; ///< chance an element links to its
                                    ///< predecessor (chain diversity)
  bool UseIterators = true;       ///< boxes hand out iterator objects
  bool UseMakerIndirection = false;///< depth-2 factories (ablation)
};

/// Builds the program described by \p Spec. Generation is deterministic
/// in the spec (including Seed).
///
/// \returns the program; generation cannot fail for well-formed specs, so
/// a failure aborts with a diagnostic (it would be a generator bug).
std::unique_ptr<ir::Program> buildSyntheticProgram(const WorkloadSpec &Spec);

} // namespace mahjong::workload

#endif // MAHJONG_WORKLOAD_SYNTHETICBUILDER_H
