//===-- ir/ProgramBuilder.cpp - Name-based IR construction -----------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ProgramBuilder.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace mahjong;
using namespace mahjong::ir;

//===----------------------------------------------------------------------===//
// MethodBuilder
//===----------------------------------------------------------------------===//

MethodBuilder &MethodBuilder::alloc(std::string To, std::string Type) {
  RawStmt S;
  S.Kind = StmtKind::Alloc;
  S.A = std::move(To);
  S.B = std::move(Type);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::copy(std::string To, std::string From) {
  RawStmt S;
  S.Kind = StmtKind::Copy;
  S.A = std::move(To);
  S.B = std::move(From);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::assignNull(std::string To) {
  RawStmt S;
  S.Kind = StmtKind::AssignNull;
  S.A = std::move(To);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::load(std::string To, std::string Base,
                                   std::string Field) {
  RawStmt S;
  S.Kind = StmtKind::Load;
  S.A = std::move(To);
  S.B = std::move(Base);
  S.C = std::move(Field);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::store(std::string Base, std::string Field,
                                    std::string From) {
  RawStmt S;
  S.Kind = StmtKind::Store;
  S.A = std::move(Base);
  S.B = std::move(Field);
  S.C = std::move(From);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::staticLoad(std::string To, std::string Class,
                                         std::string Field) {
  RawStmt S;
  S.Kind = StmtKind::StaticLoad;
  S.A = std::move(To);
  S.B = std::move(Class);
  S.C = std::move(Field);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::staticStore(std::string Class, std::string Field,
                                          std::string From) {
  RawStmt S;
  S.Kind = StmtKind::StaticStore;
  S.A = std::move(Class);
  S.B = std::move(Field);
  S.C = std::move(From);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::cast(std::string To, std::string Type,
                                   std::string From) {
  RawStmt S;
  S.Kind = StmtKind::Cast;
  S.A = std::move(To);
  S.B = std::move(Type);
  S.C = std::move(From);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::vcall(std::string To, std::string Base,
                                    std::string Name,
                                    std::vector<std::string> Args) {
  RawStmt S;
  S.Kind = StmtKind::Invoke;
  S.Call = CallKind::Virtual;
  S.A = std::move(To);
  S.B = std::move(Base);
  S.C = std::move(Name);
  S.Args = std::move(Args);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::scall(std::string To, std::string Class,
                                    std::string Name,
                                    std::vector<std::string> Args) {
  RawStmt S;
  S.Kind = StmtKind::Invoke;
  S.Call = CallKind::Static;
  S.A = std::move(To);
  S.B = std::move(Class);
  S.C = std::move(Name);
  S.Args = std::move(Args);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::specialcall(std::string To, std::string Base,
                                          std::string Class, std::string Name,
                                          std::vector<std::string> Args) {
  RawStmt S;
  S.Kind = StmtKind::Invoke;
  S.Call = CallKind::Special;
  S.A = std::move(To);
  S.B = std::move(Base);
  S.C = std::move(Name);
  S.D = std::move(Class);
  S.Args = std::move(Args);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::ret(std::string From) {
  RawStmt S;
  S.Kind = StmtKind::Return;
  S.A = std::move(From);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::throwVar(std::string From) {
  RawStmt S;
  S.Kind = StmtKind::Throw;
  S.A = std::move(From);
  Body.push_back(std::move(S));
  return *this;
}

MethodBuilder &MethodBuilder::catchType(std::string To, std::string Type) {
  RawStmt S;
  S.Kind = StmtKind::Catch;
  S.A = std::move(To);
  S.B = std::move(Type);
  Body.push_back(std::move(S));
  return *this;
}

//===----------------------------------------------------------------------===//
// ProgramBuilder
//===----------------------------------------------------------------------===//

ProgramBuilder::ProgramBuilder() = default;

ProgramBuilder &ProgramBuilder::declClass(std::string Name,
                                          std::string Super) {
  RawClasses.emplace_back(std::move(Name), std::move(Super));
  return *this;
}

ProgramBuilder &ProgramBuilder::declField(std::string Class, std::string Name,
                                          std::string Type) {
  RawFields.push_back(
      {std::move(Class), std::move(Name), std::move(Type), false});
  return *this;
}

ProgramBuilder &ProgramBuilder::declStaticField(std::string Class,
                                                std::string Name,
                                                std::string Type) {
  RawFields.push_back(
      {std::move(Class), std::move(Name), std::move(Type), true});
  return *this;
}

MethodBuilder &ProgramBuilder::method(std::string Class, std::string Name,
                                      std::vector<std::string> Params,
                                      bool IsStatic) {
  auto MB = std::make_unique<MethodBuilder>();
  MB->Class = std::move(Class);
  MB->Name = std::move(Name);
  MB->Params = std::move(Params);
  MB->IsStatic = IsStatic;
  RawMethods.push_back(std::move(MB));
  return *RawMethods.back();
}

ProgramBuilder &ProgramBuilder::abstractMethod(std::string Class,
                                               std::string Name,
                                               std::vector<std::string> Params) {
  auto MB = std::make_unique<MethodBuilder>();
  MB->Class = std::move(Class);
  MB->Name = std::move(Name);
  MB->Params = std::move(Params);
  MB->IsAbstract = true;
  RawMethods.push_back(std::move(MB));
  return *this;
}

ProgramBuilder &ProgramBuilder::setEntry(std::string Class, std::string Name) {
  EntryClass = std::move(Class);
  EntryName = std::move(Name);
  return *this;
}

/// Registers (or finds) the type named \p Name. Array types "E[]" are
/// created on demand, sharing one global "[]" element field.
TypeId ProgramBuilder::ensureType(Program &P, const std::string &Name,
                                  std::string &Err) {
  if (TypeId Existing = P.typeByName(Name); Existing.isValid())
    return Existing;
  if (Name.size() > 2 && Name.ends_with("[]")) {
    TypeId Elem = ensureType(P, Name.substr(0, Name.size() - 2), Err);
    if (!Elem.isValid())
      return TypeId::invalid();
    TypeId Arr = TypeId(static_cast<uint32_t>(P.Types.size()));
    TypeInfo TI;
    TI.Name = Name;
    TI.Kind = TypeKind::Array;
    TI.Super = P.ObjectTy;
    TI.Elem = Elem;
    // All array types share the single global element field "[]" so that
    // array accesses resolve without static typing of the base.
    FieldId ElemField;
    for (uint32_t I = 0; I < P.numFields(); ++I)
      if (P.Fields[I].Name == "[]") {
        ElemField = FieldId(I);
        break;
      }
    if (!ElemField.isValid()) {
      ElemField = FieldId(static_cast<uint32_t>(P.Fields.size()));
      P.Fields.push_back({"[]", Arr, P.ObjectTy, false});
    }
    TI.Fields.push_back(ElemField);
    P.Types.push_back(std::move(TI));
    P.TypeByName.emplace(Name, Arr);
    return Arr;
  }
  Err = "unknown type '" + Name + "'";
  return TypeId::invalid();
}

/// Resolves a field reference appearing in a body: "Class::name" qualified,
/// or a bare name that must be unique among instance fields, or "[]".
FieldId ProgramBuilder::resolveFieldRef(Program &P, TypeId /*ArrayHint*/,
                                        const std::string &Ref,
                                        std::string &Err) {
  if (auto Pos = Ref.find("::"); Pos != std::string::npos) {
    std::string Cls = Ref.substr(0, Pos), Name = Ref.substr(Pos + 2);
    TypeId T = P.typeByName(Cls);
    if (!T.isValid()) {
      Err = "unknown class '" + Cls + "' in field reference '" + Ref + "'";
      return FieldId::invalid();
    }
    FieldId F = P.findField(T, Name);
    if (!F.isValid())
      Err = "class '" + Cls + "' has no instance field '" + Name + "'";
    return F;
  }
  FieldId Found;
  bool Ambiguous = false;
  for (uint32_t I = 0; I < P.numFields(); ++I) {
    const FieldInfo &FI = P.Fields[I];
    if (FI.IsStatic || FI.Name != Ref)
      continue;
    if (Found.isValid())
      Ambiguous = true;
    Found = FieldId(I);
  }
  if (!Found.isValid())
    Err = "unknown instance field '" + Ref + "'";
  else if (Ambiguous)
    Err = "ambiguous instance field '" + Ref + "'; qualify as Class::" + Ref;
  return Ambiguous ? FieldId::invalid() : Found;
}

std::unique_ptr<Program> ProgramBuilder::finish(std::string &Err) {
  Err.clear();
  std::unique_ptr<Program> Owner(new Program());
  Program &P = *Owner;

  // --- Reserved types: Object (id 0) and null (id 1). ---
  P.Types.push_back({"Object", TypeKind::Class, TypeId::invalid(),
                     TypeId::invalid(), {}, {}});
  P.ObjectTy = TypeId(0);
  P.TypeByName.emplace("Object", P.ObjectTy);
  P.Types.push_back({"null", TypeKind::Null, TypeId::invalid(),
                     TypeId::invalid(), {}, {}});
  P.NullTy = TypeId(1);
  P.TypeByName.emplace("null", P.NullTy);

  // --- Reserved object: o_null (id 0). ---
  P.Objs.push_back({P.NullTy, MethodId::invalid(), "null"});

  // --- Classes. ---
  for (auto &[Name, Super] : RawClasses) {
    if (P.typeByName(Name).isValid()) {
      Err = "duplicate class '" + Name + "'";
      return nullptr;
    }
    TypeId Id = TypeId(static_cast<uint32_t>(P.Types.size()));
    P.Types.push_back(
        {Name, TypeKind::Class, TypeId::invalid(), TypeId::invalid(), {}, {}});
    P.TypeByName.emplace(Name, Id);
  }
  // Resolve superclasses (second pass so forward references work).
  for (auto &[Name, Super] : RawClasses) {
    TypeId Id = P.typeByName(Name);
    TypeId SuperId = P.typeByName(Super);
    if (!SuperId.isValid()) {
      Err = "class '" + Name + "' extends unknown class '" + Super + "'";
      return nullptr;
    }
    P.Types[Id.idx()].Super = SuperId;
  }
  // Reject inheritance cycles.
  for (uint32_t I = 0; I < P.numTypes(); ++I) {
    TypeId Slow = TypeId(I), Fast = TypeId(I);
    for (;;) {
      Fast = P.type(Fast).Super;
      if (!Fast.isValid())
        break;
      Fast = P.type(Fast).Super;
      if (!Fast.isValid())
        break;
      Slow = P.type(Slow).Super;
      if (Slow == Fast) {
        Err = "inheritance cycle involving class '" + P.type(Slow).Name + "'";
        return nullptr;
      }
    }
  }

  // --- Fields. ---
  for (const RawField &RF : RawFields) {
    TypeId Cls = P.typeByName(RF.Class);
    if (!Cls.isValid() || P.type(Cls).Kind != TypeKind::Class) {
      Err = "field '" + RF.Name + "' declared in unknown class '" + RF.Class +
            "'";
      return nullptr;
    }
    TypeId FT = ensureType(P, RF.Type, Err);
    if (!FT.isValid())
      return nullptr;
    for (FieldId Existing : P.type(Cls).Fields)
      if (P.field(Existing).Name == RF.Name) {
        Err = "duplicate field '" + RF.Name + "' in class '" + RF.Class + "'";
        return nullptr;
      }
    FieldId Id = FieldId(static_cast<uint32_t>(P.Fields.size()));
    P.Fields.push_back({RF.Name, Cls, FT, RF.IsStatic});
    P.Types[Cls.idx()].Fields.push_back(Id);
  }

  // --- Method shells (so call resolution sees every signature). ---
  for (auto &MBPtr : RawMethods) {
    MethodBuilder &MB = *MBPtr;
    TypeId Cls = P.typeByName(MB.Class);
    if (!Cls.isValid() || P.type(Cls).Kind != TypeKind::Class) {
      Err = "method '" + MB.Name + "' declared in unknown class '" + MB.Class +
            "'";
      return nullptr;
    }
    std::string Arity = std::to_string(MB.Params.size());
    MethodInfo MI;
    MI.Name = MB.Name;
    MI.Signature = MB.Class + "." + MB.Name + "/" + Arity;
    MI.DispatchSig = MB.Name + "/" + Arity;
    MI.Declaring = Cls;
    MI.IsStatic = MB.IsStatic;
    MI.IsAbstract = MB.IsAbstract;
    if (P.MethodBySig.count(MI.Signature)) {
      Err = "duplicate method '" + MI.Signature + "'";
      return nullptr;
    }
    MethodId Id = MethodId(static_cast<uint32_t>(P.Methods.size()));
    P.MethodBySig.emplace(MI.Signature, Id);
    P.Types[Cls.idx()].Methods.push_back(Id);
    P.Methods.push_back(std::move(MI));
  }

  // --- Method bodies. ---
  for (uint32_t MIdx = 0; MIdx < RawMethods.size(); ++MIdx) {
    MethodBuilder &MB = *RawMethods[MIdx];
    MethodId MId = MethodId(MIdx);
    MethodInfo &MI = P.Methods[MIdx];

    std::unordered_map<std::string, VarId> Locals;
    auto VarOf = [&](const std::string &Name) {
      auto [It, Inserted] = Locals.try_emplace(
          Name, VarId(static_cast<uint32_t>(P.Vars.size())));
      if (Inserted)
        P.Vars.push_back({Name, MId});
      return It->second;
    };

    if (!MI.IsStatic)
      MI.This = VarOf("this");
    for (const std::string &Param : MB.Params)
      MI.Params.push_back(VarOf(Param));
    MI.Ret = VarOf("$ret");
    MI.Exc = VarOf("$exc");
    if (MB.IsAbstract)
      continue;

    // Resolves a direct callee "Class.name/arity", walking up superclasses.
    auto ResolveDirect = [&](const std::string &Cls, const std::string &Name,
                             size_t Arity) -> MethodId {
      TypeId T = P.typeByName(Cls);
      std::string Tail = "." + Name + "/" + std::to_string(Arity);
      while (T.isValid()) {
        MethodId M = P.methodBySignature(P.type(T).Name + Tail);
        if (M.isValid())
          return M;
        T = P.type(T).Super;
      }
      return MethodId::invalid();
    };

    for (const MethodBuilder::RawStmt &RS : MB.Body) {
      Stmt S;
      S.Kind = RS.Kind;
      switch (RS.Kind) {
      case StmtKind::Alloc: {
        S.To = VarOf(RS.A);
        TypeId T = ensureType(P, RS.B, Err);
        if (!T.isValid())
          return nullptr;
        if (P.type(T).Kind == TypeKind::Null) {
          Err = "cannot allocate the null type";
          return nullptr;
        }
        S.Obj = ObjId(static_cast<uint32_t>(P.Objs.size()));
        P.Objs.push_back({T, MId, RS.A});
        break;
      }
      case StmtKind::Copy:
        S.To = VarOf(RS.A);
        S.From = VarOf(RS.B);
        break;
      case StmtKind::AssignNull:
        S.To = VarOf(RS.A);
        break;
      case StmtKind::Load: {
        S.To = VarOf(RS.A);
        S.Base = VarOf(RS.B);
        S.Field = resolveFieldRef(P, TypeId::invalid(), RS.C, Err);
        if (!S.Field.isValid())
          return nullptr;
        break;
      }
      case StmtKind::Store: {
        S.Base = VarOf(RS.A);
        S.Field = resolveFieldRef(P, TypeId::invalid(), RS.B, Err);
        if (!S.Field.isValid())
          return nullptr;
        S.From = VarOf(RS.C);
        break;
      }
      case StmtKind::StaticLoad:
      case StmtKind::StaticStore: {
        const std::string &Cls =
            RS.Kind == StmtKind::StaticLoad ? RS.B : RS.A;
        const std::string &FieldName =
            RS.Kind == StmtKind::StaticLoad ? RS.C : RS.B;
        TypeId T = P.typeByName(Cls);
        if (!T.isValid()) {
          Err = "unknown class '" + Cls + "' in static field access";
          return nullptr;
        }
        FieldId F;
        for (TypeId Walk = T; Walk.isValid(); Walk = P.type(Walk).Super) {
          for (FieldId Cand : P.type(Walk).Fields)
            if (P.field(Cand).IsStatic && P.field(Cand).Name == FieldName) {
              F = Cand;
              break;
            }
          if (F.isValid())
            break;
        }
        if (!F.isValid()) {
          Err = "class '" + Cls + "' has no static field '" + FieldName + "'";
          return nullptr;
        }
        S.Field = F;
        if (RS.Kind == StmtKind::StaticLoad)
          S.To = VarOf(RS.A);
        else
          S.From = VarOf(RS.C);
        break;
      }
      case StmtKind::Cast: {
        S.To = VarOf(RS.A);
        TypeId T = ensureType(P, RS.B, Err);
        if (!T.isValid())
          return nullptr;
        S.From = VarOf(RS.C);
        S.CastIdx = P.numCastSites();
        P.CastSites.push_back({S.To, S.From, T, MId});
        break;
      }
      case StmtKind::Invoke: {
        CallSiteInfo CS;
        CS.Kind = RS.Call;
        CS.Enclosing = MId;
        if (!RS.A.empty())
          CS.Result = VarOf(RS.A);
        for (const std::string &Arg : RS.Args)
          CS.Args.push_back(VarOf(Arg));
        if (RS.Call == CallKind::Virtual) {
          CS.Base = VarOf(RS.B);
          CS.Sig = RS.C + "/" + std::to_string(RS.Args.size());
        } else if (RS.Call == CallKind::Static) {
          CS.Direct = ResolveDirect(RS.B, RS.C, RS.Args.size());
          if (!CS.Direct.isValid()) {
            Err = "unresolved static call " + RS.B + "::" + RS.C + "/" +
                  std::to_string(RS.Args.size());
            return nullptr;
          }
          if (!P.method(CS.Direct).IsStatic) {
            Err = "static call targets instance method " +
                  P.method(CS.Direct).Signature;
            return nullptr;
          }
        } else { // Special
          CS.Base = VarOf(RS.B);
          CS.Direct = ResolveDirect(RS.D, RS.C, RS.Args.size());
          if (!CS.Direct.isValid()) {
            Err = "unresolved special call " + RS.D + "." + RS.C + "/" +
                  std::to_string(RS.Args.size());
            return nullptr;
          }
        }
        S.Site = CallSiteId(static_cast<uint32_t>(P.CallSites.size()));
        P.CallSites.push_back(std::move(CS));
        break;
      }
      case StmtKind::Return:
        S.From = VarOf(RS.A);
        break;
      case StmtKind::Throw:
        S.From = VarOf(RS.A);
        break;
      case StmtKind::Catch: {
        S.To = VarOf(RS.A);
        S.Type = ensureType(P, RS.B, Err);
        if (!S.Type.isValid())
          return nullptr;
        break;
      }
      }
      MI.Body.push_back(S);
    }
  }

  // --- Entry point. ---
  if (EntryClass.empty()) {
    // Default: the unique static parameterless "main".
    for (uint32_t I = 0; I < P.numMethods(); ++I)
      if (P.Methods[I].IsStatic && P.Methods[I].Name == "main" &&
          P.Methods[I].Params.empty()) {
        P.Entry = MethodId(I);
        break;
      }
  } else {
    P.Entry = P.methodBySignature(EntryClass + "." + EntryName + "/0");
  }
  if (!P.Entry.isValid()) {
    Err = "no entry method (need a static, parameterless 'main')";
    return nullptr;
  }
  if (!P.method(P.Entry).IsStatic) {
    Err = "entry method must be static";
    return nullptr;
  }
  return Owner;
}
