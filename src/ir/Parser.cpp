//===-- ir/Parser.cpp - Parser for the .mj language ------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Lexer.h"
#include "ir/ProgramBuilder.h"

using namespace mahjong;
using namespace mahjong::ir;

namespace {

/// Recursive-descent parser translating tokens into ProgramBuilder calls.
class Parser {
public:
  Parser(std::string_view Source, std::string &Err)
      : Toks(tokenize(Source)), Err(Err) {}

  std::unique_ptr<Program> run() {
    while (!at(TokKind::Eof)) {
      if (!parseClass())
        return nullptr;
    }
    std::string BuildErr;
    auto P = Builder.finish(BuildErr);
    if (!P)
      Err = BuildErr;
    return P;
  }

private:
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(unsigned Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind Kind) const { return cur().Kind == Kind; }
  void advance() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }

  bool error(const std::string &Msg) {
    Err = std::to_string(cur().Line) + ":" + std::to_string(cur().Col) +
          ": " + Msg;
    return false;
  }

  bool expect(TokKind Kind, const char *What) {
    if (!at(Kind))
      return error(std::string("expected ") + std::string(tokKindName(Kind)) +
                   " " + What + ", found " +
                   std::string(tokKindName(cur().Kind)));
    advance();
    return true;
  }

  /// IDENT captured into \p Out.
  bool ident(std::string &Out, const char *What) {
    if (!at(TokKind::Ident))
      return error(std::string("expected identifier ") + What + ", found " +
                   std::string(tokKindName(cur().Kind)));
    Out = cur().Text;
    advance();
    return true;
  }

  /// type := IDENT ("[" "]")*
  bool typeName(std::string &Out) {
    if (!ident(Out, "(type name)"))
      return false;
    while (at(TokKind::LBracket) && peek().Kind == TokKind::RBracket) {
      advance();
      advance();
      Out += "[]";
    }
    return true;
  }

  bool parseClass() {
    if (!expect(TokKind::KwClass, "to start a class declaration"))
      return false;
    std::string Name;
    if (!ident(Name, "(class name)"))
      return false;
    std::string Super = "Object";
    if (at(TokKind::KwExtends)) {
      advance();
      if (!ident(Super, "(superclass name)"))
        return false;
    }
    Builder.declClass(Name, Super);
    if (!expect(TokKind::LBrace, "to open the class body"))
      return false;
    while (!at(TokKind::RBrace)) {
      if (at(TokKind::Eof))
        return error("unterminated class body of '" + Name + "'");
      if (!parseMember(Name))
        return false;
    }
    advance(); // '}'
    return true;
  }

  bool parseMember(const std::string &Class) {
    bool IsStatic = false, IsAbstract = false;
    if (at(TokKind::KwStatic)) {
      IsStatic = true;
      advance();
    }
    if (at(TokKind::KwAbstract)) {
      IsAbstract = true;
      advance();
    }
    if (at(TokKind::KwField)) {
      if (IsAbstract)
        return error("fields cannot be abstract");
      advance();
      std::string Name, Type;
      if (!ident(Name, "(field name)") ||
          !expect(TokKind::Colon, "after the field name") ||
          !typeName(Type) || !expect(TokKind::Semi, "after the field type"))
        return false;
      if (IsStatic)
        Builder.declStaticField(Class, Name, Type);
      else
        Builder.declField(Class, Name, Type);
      return true;
    }
    if (!at(TokKind::KwMethod))
      return error("expected 'field' or 'method' in class body");
    advance();
    std::string Name;
    if (!ident(Name, "(method name)") ||
        !expect(TokKind::LParen, "after the method name"))
      return false;
    std::vector<std::string> Params;
    if (!at(TokKind::RParen)) {
      for (;;) {
        std::string Param;
        if (!ident(Param, "(parameter name)"))
          return false;
        if (at(TokKind::Colon)) { // optional, ignored type annotation
          advance();
          std::string Ignored;
          if (!typeName(Ignored))
            return false;
        }
        Params.push_back(std::move(Param));
        if (!at(TokKind::Comma))
          break;
        advance();
      }
    }
    if (!expect(TokKind::RParen, "after the parameter list"))
      return false;
    if (at(TokKind::Colon)) { // optional, ignored return type annotation
      advance();
      std::string Ignored;
      if (!typeName(Ignored))
        return false;
    }
    if (IsAbstract) {
      if (IsStatic)
        return error("a method cannot be both static and abstract");
      if (!expect(TokKind::Semi, "after an abstract method declaration"))
        return false;
      Builder.abstractMethod(Class, Name, std::move(Params));
      return true;
    }
    if (!expect(TokKind::LBrace, "to open the method body"))
      return false;
    MethodBuilder &MB = Builder.method(Class, Name, Params, IsStatic);
    while (!at(TokKind::RBrace)) {
      if (at(TokKind::Eof))
        return error("unterminated method body of '" + Name + "'");
      if (!parseStmt(MB))
        return false;
    }
    advance(); // '}'
    return true;
  }

  /// args := IDENT ("," IDENT)* — the '(' has been consumed; consumes ')'.
  bool argList(std::vector<std::string> &Args) {
    if (!at(TokKind::RParen)) {
      for (;;) {
        std::string Arg;
        if (!ident(Arg, "(argument)"))
          return false;
        Args.push_back(std::move(Arg));
        if (!at(TokKind::Comma))
          break;
        advance();
      }
    }
    return expect(TokKind::RParen, "to close the argument list");
  }

  /// special IDENT "." IDENT "::" IDENT "(" args ")" — 'special' consumed.
  bool specialCallTail(MethodBuilder &MB, std::string To) {
    std::string Base, Class, Name;
    if (!ident(Base, "(receiver)") ||
        !expect(TokKind::Dot, "after the receiver") ||
        !ident(Class, "(class of special call)") ||
        !expect(TokKind::ColonColon, "in special call") ||
        !ident(Name, "(method of special call)") ||
        !expect(TokKind::LParen, "to open the argument list"))
      return false;
    std::vector<std::string> Args;
    if (!argList(Args))
      return false;
    MB.specialcall(std::move(To), Base, Class, Name, std::move(Args));
    return true;
  }

  /// Parses the right-hand side of "To = ..." and emits the statement.
  bool parseRvalue(MethodBuilder &MB, std::string To) {
    if (at(TokKind::KwCatch)) { // To = catch Type
      advance();
      std::string Type;
      if (!typeName(Type))
        return false;
      MB.catchType(std::move(To), Type);
      return true;
    }
    if (at(TokKind::KwNew)) {
      advance();
      std::string Type;
      if (!typeName(Type))
        return false;
      MB.alloc(std::move(To), Type);
      return true;
    }
    if (at(TokKind::KwNull)) {
      advance();
      MB.assignNull(std::move(To));
      return true;
    }
    if (at(TokKind::KwSpecial)) {
      advance();
      return specialCallTail(MB, std::move(To));
    }
    if (at(TokKind::LParen)) { // cast
      advance();
      std::string Type, From;
      if (!typeName(Type) || !expect(TokKind::RParen, "to close the cast") ||
          !ident(From, "(cast operand)"))
        return false;
      MB.cast(std::move(To), Type, From);
      return true;
    }
    std::string First;
    if (!ident(First, "(rvalue)"))
      return false;
    if (at(TokKind::Dot)) {
      advance();
      std::string Second;
      if (!ident(Second, "(member)"))
        return false;
      if (at(TokKind::LParen)) { // virtual call
        advance();
        std::vector<std::string> Args;
        if (!argList(Args))
          return false;
        MB.vcall(std::move(To), First, Second, std::move(Args));
        return true;
      }
      if (at(TokKind::ColonColon)) { // qualified field: base.Class::f
        advance();
        std::string FieldName;
        if (!ident(FieldName, "(field)"))
          return false;
        MB.load(std::move(To), First, Second + "::" + FieldName);
        return true;
      }
      MB.load(std::move(To), First, Second);
      return true;
    }
    if (at(TokKind::LBracket)) { // array load: x = y[]
      advance();
      if (!expect(TokKind::RBracket, "in array access"))
        return false;
      MB.load(std::move(To), First, "[]");
      return true;
    }
    if (at(TokKind::ColonColon)) { // static load or static call
      advance();
      std::string Second;
      if (!ident(Second, "(static member)"))
        return false;
      if (at(TokKind::LParen)) {
        advance();
        std::vector<std::string> Args;
        if (!argList(Args))
          return false;
        MB.scall(std::move(To), First, Second, std::move(Args));
        return true;
      }
      MB.staticLoad(std::move(To), First, Second);
      return true;
    }
    MB.copy(std::move(To), First); // plain copy
    return true;
  }

  bool parseStmt(MethodBuilder &MB) {
    if (at(TokKind::KwReturn)) {
      advance();
      std::string From;
      if (!ident(From, "(return value)"))
        return false;
      MB.ret(From);
      return expect(TokKind::Semi, "after the return statement");
    }
    if (at(TokKind::KwThrow)) {
      advance();
      std::string From;
      if (!ident(From, "(thrown value)"))
        return false;
      MB.throwVar(From);
      return expect(TokKind::Semi, "after the throw statement");
    }
    if (at(TokKind::KwSpecial)) { // result-less special call
      advance();
      if (!specialCallTail(MB, ""))
        return false;
      return expect(TokKind::Semi, "after the call");
    }
    std::string First;
    if (!ident(First, "(statement)"))
      return false;
    if (at(TokKind::Eq)) {
      advance();
      if (!parseRvalue(MB, First))
        return false;
      return expect(TokKind::Semi, "after the statement");
    }
    if (at(TokKind::Dot)) {
      advance();
      std::string Second;
      if (!ident(Second, "(member)"))
        return false;
      if (at(TokKind::LParen)) { // virtual call, result dropped
        advance();
        std::vector<std::string> Args;
        if (!argList(Args))
          return false;
        MB.vcall("", First, Second, std::move(Args));
        return expect(TokKind::Semi, "after the call");
      }
      std::string FieldRef = Second;
      if (at(TokKind::ColonColon)) { // qualified store: base.Class::f = x
        advance();
        std::string FieldName;
        if (!ident(FieldName, "(field)"))
          return false;
        FieldRef = Second + "::" + FieldName;
      }
      std::string From;
      if (!expect(TokKind::Eq, "in field store") ||
          !ident(From, "(stored value)"))
        return false;
      MB.store(First, FieldRef, From);
      return expect(TokKind::Semi, "after the store");
    }
    if (at(TokKind::LBracket)) { // array store: x[] = y
      advance();
      std::string From;
      if (!expect(TokKind::RBracket, "in array access") ||
          !expect(TokKind::Eq, "in array store") ||
          !ident(From, "(stored value)"))
        return false;
      MB.store(First, "[]", From);
      return expect(TokKind::Semi, "after the store");
    }
    if (at(TokKind::ColonColon)) { // static store or call
      advance();
      std::string Second;
      if (!ident(Second, "(static member)"))
        return false;
      if (at(TokKind::LParen)) {
        advance();
        std::vector<std::string> Args;
        if (!argList(Args))
          return false;
        MB.scall("", First, Second, std::move(Args));
        return expect(TokKind::Semi, "after the call");
      }
      std::string From;
      if (!expect(TokKind::Eq, "in static store") ||
          !ident(From, "(stored value)"))
        return false;
      MB.staticStore(First, Second, From);
      return expect(TokKind::Semi, "after the store");
    }
    return error("malformed statement starting with '" + First + "'");
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  std::string &Err;
  ProgramBuilder Builder;
};

} // namespace

std::unique_ptr<Program> mahjong::ir::parseProgram(std::string_view Source,
                                                   std::string &Err) {
  return Parser(Source, Err).run();
}
