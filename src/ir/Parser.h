//===-- ir/Parser.h - Parser for the .mj language -------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the .mj textual IR. The grammar:
///
/// \code
///   program    := classDecl*
///   classDecl  := "class" IDENT ("extends" IDENT)? "{" member* "}"
///   member     := ("static")? "field" IDENT ":" type ";"
///               | ("static")? "method" IDENT "(" params? ")" (":" type)? body
///               | "abstract" "method" IDENT "(" params? ")" (":" type)? ";"
///   params     := IDENT (":" type)? ("," IDENT (":" type)?)*
///   body       := "{" stmt* "}"
///   type       := IDENT ("[" "]")*
///   stmt       := "return" IDENT ";"
///               | "special" IDENT "." IDENT "::" IDENT "(" args? ")" ";"
///               | IDENT stmtTail ";"
///   stmtTail   := "=" rvalue                    // var assignment
///               | "." fieldRef "=" IDENT        // instance store
///               | "." IDENT "(" args? ")"       // virtual call, no result
///               | "[" "]" "=" IDENT             // array store
///               | "::" IDENT "=" IDENT          // static store
///               | "::" IDENT "(" args? ")"      // static call, no result
///   rvalue     := "new" type | "null" | "(" type ")" IDENT
///               | "special" IDENT "." IDENT "::" IDENT "(" args? ")"
///               | IDENT | IDENT "." fieldRef | IDENT "." IDENT "(" args? ")"
///               | IDENT "[" "]"
///               | IDENT "::" IDENT | IDENT "::" IDENT "(" args? ")"
///   fieldRef   := IDENT ("::" IDENT)?           // f, or Class::f qualified
/// \endcode
///
/// Type annotations on params/returns are accepted and ignored (the IR is
/// untyped at variables). The entry point is the unique static,
/// parameterless method named "main".
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_IR_PARSER_H
#define MAHJONG_IR_PARSER_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <string_view>

namespace mahjong::ir {

/// Parses \p Source into a Program.
///
/// \returns the program, or null with a "line:col: message" diagnostic
/// stored in \p Err.
std::unique_ptr<Program> parseProgram(std::string_view Source,
                                      std::string &Err);

} // namespace mahjong::ir

#endif // MAHJONG_IR_PARSER_H
