//===-- ir/ClassHierarchy.h - Subtyping and dispatch ----------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precomputed class-hierarchy queries: subtype tests (including array
/// covariance and the null type) and virtual-method dispatch tables, the
/// two services every points-to analysis and every type-dependent client
/// needs from the frontend.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_IR_CLASSHIERARCHY_H
#define MAHJONG_IR_CLASSHIERARCHY_H

#include "ir/Program.h"

#include <string_view>
#include <unordered_map>
#include <vector>

namespace mahjong::ir {

/// Immutable hierarchy queries over one Program.
class ClassHierarchy {
public:
  explicit ClassHierarchy(const Program &P);

  /// \returns true if \p Sub is the same type as or a subtype of \p Super.
  /// The null type is a subtype of every reference type; arrays are
  /// covariant and subtypes of Object.
  bool isSubtype(TypeId Sub, TypeId Super) const;

  /// Resolves virtual dispatch of \p DispatchSig ("name/arity") on a
  /// receiver of dynamic type \p Recv.
  ///
  /// \returns the concrete target, or an invalid id if no (concrete)
  /// implementation exists.
  MethodId resolveVirtual(TypeId Recv, std::string_view DispatchSig) const;

  /// All class types (not arrays) that are subtypes of \p T, including
  /// \p T itself.
  const std::vector<TypeId> &subclassesOf(TypeId T) const {
    return Subclasses[T.idx()];
  }

  /// Depth of \p T in the class tree (Object is 0; arrays are 1).
  unsigned depth(TypeId T) const { return Depth[T.idx()]; }

private:
  const Program &P;
  std::vector<unsigned> Depth;
  /// Per type, the dispatch table "name/arity" -> concrete method.
  std::vector<std::unordered_map<std::string, MethodId>> Dispatch;
  std::vector<std::vector<TypeId>> Subclasses;
};

} // namespace mahjong::ir

#endif // MAHJONG_IR_CLASSHIERARCHY_H
