//===-- ir/PrettyPrinter.h - Dump a Program as .mj text -------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a Program back to the .mj textual language, producing input
/// that the parser accepts again (round-trip property exercised in tests).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_IR_PRETTYPRINTER_H
#define MAHJONG_IR_PRETTYPRINTER_H

#include "ir/Program.h"

#include <string>

namespace mahjong::ir {

/// Renders the whole program as .mj source text.
std::string printProgram(const Program &P);

/// Renders a single statement of \p M as one line of .mj (no indentation).
std::string printStmt(const Program &P, const Stmt &S);

} // namespace mahjong::ir

#endif // MAHJONG_IR_PRETTYPRINTER_H
