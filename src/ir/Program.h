//===-- ir/Program.h - Whole-program IR arena -----------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Program owns every IR entity (types, fields, methods, variables,
/// allocation sites, call sites, cast sites) in dense arenas and provides
/// name-based lookup. A Program is immutable once built by ProgramBuilder
/// or the parser; all analyses take a const reference.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_IR_PROGRAM_H
#define MAHJONG_IR_PROGRAM_H

#include "ir/Entities.h"

#include <cassert>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mahjong::ir {

class ProgramBuilder;

/// Immutable whole-program IR.
///
/// Reserved entities: object #0 is the dummy null object o_null of the
/// null type (used for explicit null assignments and for never-written
/// fields in the field points-to graph, per paper section 4.1).
class Program {
public:
  // --- Types ---
  const TypeInfo &type(TypeId Id) const { return Types[Id.idx()]; }
  uint32_t numTypes() const { return static_cast<uint32_t>(Types.size()); }
  TypeId typeByName(std::string_view Name) const;
  TypeId objectType() const { return ObjectTy; }
  TypeId nullType() const { return NullTy; }

  // --- Fields ---
  const FieldInfo &field(FieldId Id) const { return Fields[Id.idx()]; }
  uint32_t numFields() const { return static_cast<uint32_t>(Fields.size()); }
  /// Looks up an instance field by name in \p Class or its superclasses.
  FieldId findField(TypeId Class, std::string_view Name) const;
  /// All instance fields of \p Class including inherited ones.
  std::vector<FieldId> allInstanceFields(TypeId Class) const;

  // --- Methods ---
  const MethodInfo &method(MethodId Id) const { return Methods[Id.idx()]; }
  uint32_t numMethods() const { return static_cast<uint32_t>(Methods.size()); }
  MethodId methodBySignature(std::string_view Sig) const;
  MethodId entryMethod() const { return Entry; }

  // --- Variables ---
  const VarInfo &var(VarId Id) const { return Vars[Id.idx()]; }
  uint32_t numVars() const { return static_cast<uint32_t>(Vars.size()); }

  // --- Objects (allocation sites) ---
  const ObjInfo &obj(ObjId Id) const { return Objs[Id.idx()]; }
  uint32_t numObjs() const { return static_cast<uint32_t>(Objs.size()); }
  static constexpr ObjId nullObj() { return ObjId(0); }
  bool isNullObj(ObjId Id) const { return Id == nullObj(); }

  // --- Call / cast sites ---
  const CallSiteInfo &callSite(CallSiteId Id) const {
    return CallSites[Id.idx()];
  }
  uint32_t numCallSites() const {
    return static_cast<uint32_t>(CallSites.size());
  }
  const CastSiteInfo &castSite(uint32_t Idx) const { return CastSites[Idx]; }
  uint32_t numCastSites() const {
    return static_cast<uint32_t>(CastSites.size());
  }

  /// Human-readable description of an object, e.g. "o17<A>@Main.main/2".
  std::string describeObj(ObjId Id) const;

private:
  friend class ProgramBuilder;
  Program() = default;

  std::vector<TypeInfo> Types;
  std::vector<FieldInfo> Fields;
  std::vector<MethodInfo> Methods;
  std::vector<VarInfo> Vars;
  std::vector<ObjInfo> Objs;
  std::vector<CallSiteInfo> CallSites;
  std::vector<CastSiteInfo> CastSites;

  std::unordered_map<std::string, TypeId> TypeByName;
  std::unordered_map<std::string, MethodId> MethodBySig;

  TypeId ObjectTy;
  TypeId NullTy;
  MethodId Entry;
};

} // namespace mahjong::ir

#endif // MAHJONG_IR_PROGRAM_H
