//===-- ir/Lexer.cpp - Tokenizer for the .mj language ----------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace mahjong;
using namespace mahjong::ir;

static const std::unordered_map<std::string_view, TokKind> Keywords = {
    {"class", TokKind::KwClass},     {"extends", TokKind::KwExtends},
    {"field", TokKind::KwField},     {"method", TokKind::KwMethod},
    {"static", TokKind::KwStatic},   {"abstract", TokKind::KwAbstract},
    {"new", TokKind::KwNew},         {"null", TokKind::KwNull},
    {"return", TokKind::KwReturn},   {"special", TokKind::KwSpecial},
    {"throw", TokKind::KwThrow},     {"catch", TokKind::KwCatch},
};

std::vector<Token> mahjong::ir::tokenize(std::string_view Src) {
  std::vector<Token> Toks;
  size_t I = 0, N = Src.size();
  unsigned Line = 1, Col = 1;

  auto Advance = [&](size_t Count) {
    for (size_t K = 0; K < Count && I < N; ++K, ++I) {
      if (Src[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
  };
  auto Push = [&](TokKind Kind, std::string Text, unsigned L, unsigned C) {
    Toks.push_back({Kind, std::move(Text), L, C});
  };

  while (I < N) {
    char Ch = Src[I];
    if (std::isspace(static_cast<unsigned char>(Ch))) {
      Advance(1);
      continue;
    }
    // Comments.
    if (Ch == '/' && I + 1 < N && Src[I + 1] == '/') {
      while (I < N && Src[I] != '\n')
        Advance(1);
      continue;
    }
    if (Ch == '/' && I + 1 < N && Src[I + 1] == '*') {
      Advance(2);
      while (I + 1 < N && !(Src[I] == '*' && Src[I + 1] == '/'))
        Advance(1);
      Advance(2); // past "*/" (or to end on unterminated comment)
      continue;
    }
    unsigned L = Line, C = Col;
    if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_' ||
        Ch == '$') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Src[I])) ||
                       Src[I] == '_' || Src[I] == '$'))
        Advance(1);
      std::string_view Word = Src.substr(Start, I - Start);
      auto It = Keywords.find(Word);
      Push(It == Keywords.end() ? TokKind::Ident : It->second,
           std::string(Word), L, C);
      continue;
    }
    switch (Ch) {
    case '{':
      Push(TokKind::LBrace, "{", L, C);
      Advance(1);
      continue;
    case '}':
      Push(TokKind::RBrace, "}", L, C);
      Advance(1);
      continue;
    case '(':
      Push(TokKind::LParen, "(", L, C);
      Advance(1);
      continue;
    case ')':
      Push(TokKind::RParen, ")", L, C);
      Advance(1);
      continue;
    case '[':
      Push(TokKind::LBracket, "[", L, C);
      Advance(1);
      continue;
    case ']':
      Push(TokKind::RBracket, "]", L, C);
      Advance(1);
      continue;
    case ';':
      Push(TokKind::Semi, ";", L, C);
      Advance(1);
      continue;
    case ',':
      Push(TokKind::Comma, ",", L, C);
      Advance(1);
      continue;
    case '.':
      Push(TokKind::Dot, ".", L, C);
      Advance(1);
      continue;
    case '=':
      Push(TokKind::Eq, "=", L, C);
      Advance(1);
      continue;
    case ':':
      if (I + 1 < N && Src[I + 1] == ':') {
        Push(TokKind::ColonColon, "::", L, C);
        Advance(2);
      } else {
        Push(TokKind::Colon, ":", L, C);
        Advance(1);
      }
      continue;
    default:
      Push(TokKind::Error, std::string(1, Ch), L, C);
      Advance(1);
      continue;
    }
  }
  Toks.push_back({TokKind::Eof, "", Line, Col});
  return Toks;
}

std::string_view mahjong::ir::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Ident:
    return "identifier";
  case TokKind::KwClass:
    return "'class'";
  case TokKind::KwExtends:
    return "'extends'";
  case TokKind::KwField:
    return "'field'";
  case TokKind::KwMethod:
    return "'method'";
  case TokKind::KwStatic:
    return "'static'";
  case TokKind::KwAbstract:
    return "'abstract'";
  case TokKind::KwNew:
    return "'new'";
  case TokKind::KwNull:
    return "'null'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwSpecial:
    return "'special'";
  case TokKind::KwThrow:
    return "'throw'";
  case TokKind::KwCatch:
    return "'catch'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Colon:
    return "':'";
  case TokKind::ColonColon:
    return "'::'";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Eq:
    return "'='";
  case TokKind::Eof:
    return "end of file";
  case TokKind::Error:
    return "invalid character";
  }
  return "?";
}
