//===-- ir/Lexer.h - Tokenizer for the .mj language -----------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual IR language (.mj files). The language covers
/// exactly the pointer-relevant Java subset of ir/Entities.h; see
/// ir/Parser.h for the grammar.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_IR_LEXER_H
#define MAHJONG_IR_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mahjong::ir {

/// Token kinds of the .mj language.
enum class TokKind : uint8_t {
  Ident,
  KwClass,
  KwExtends,
  KwField,
  KwMethod,
  KwStatic,
  KwAbstract,
  KwNew,
  KwNull,
  KwReturn,
  KwSpecial,
  KwThrow,
  KwCatch,
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  ColonColon,
  Dot,
  Eq,
  Eof,
  Error,
};

/// One token with its source location (1-based line/column).
struct Token {
  TokKind Kind;
  std::string Text;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Tokenizes \p Source. Unknown characters become a single Error token;
/// the stream always ends with Eof. Supports '//' line comments and
/// '/* */' block comments.
std::vector<Token> tokenize(std::string_view Source);

/// Human-readable spelling of a token kind for diagnostics.
std::string_view tokKindName(TokKind Kind);

} // namespace mahjong::ir

#endif // MAHJONG_IR_LEXER_H
