//===-- ir/ProgramBuilder.h - Name-based IR construction ------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-phase, name-based builder for Program. Clients (the parser, unit
/// tests, the synthetic workload generators) declare classes, fields and
/// methods by name and record statement bodies symbolically; finish()
/// resolves every name, validates the program, and produces the immutable
/// Program arena (or reports the first error).
///
/// Conveniences:
///  - "Object" is implicit and is the default superclass.
///  - Array types are written "T[]" and spring into existence on first use,
///    carrying a single element field named "[]" of the element type.
///  - Local variables are declared implicitly on first use.
///  - Instance fields are referenced either unqualified ("f", resolved if
///    the name is unique program-wide) or qualified ("A::f").
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_IR_PROGRAMBUILDER_H
#define MAHJONG_IR_PROGRAMBUILDER_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace mahjong::ir {

class ProgramBuilder;

/// Records the body of one method symbolically. Obtained from
/// ProgramBuilder::method(); all statement methods return *this so bodies
/// can be written fluently.
class MethodBuilder {
public:
  /// V = new T   (T may be an array type "E[]")
  MethodBuilder &alloc(std::string To, std::string Type);
  /// To = From
  MethodBuilder &copy(std::string To, std::string From);
  /// To = null
  MethodBuilder &assignNull(std::string To);
  /// To = Base.Field
  MethodBuilder &load(std::string To, std::string Base, std::string Field);
  /// Base.Field = From
  MethodBuilder &store(std::string Base, std::string Field, std::string From);
  /// To = Class::Field  (static field)
  MethodBuilder &staticLoad(std::string To, std::string Class,
                            std::string Field);
  /// Class::Field = From  (static field)
  MethodBuilder &staticStore(std::string Class, std::string Field,
                             std::string From);
  /// To = (Type) From
  MethodBuilder &cast(std::string To, std::string Type, std::string From);
  /// [To =] Base.Name(Args)  — virtual dispatch. Pass "" to drop the result.
  MethodBuilder &vcall(std::string To, std::string Base, std::string Name,
                       std::vector<std::string> Args = {});
  /// [To =] Class::Name(Args) — static call. Pass "" to drop the result.
  MethodBuilder &scall(std::string To, std::string Class, std::string Name,
                       std::vector<std::string> Args = {});
  /// [To =] special Base.Class::Name(Args) — direct instance call.
  MethodBuilder &specialcall(std::string To, std::string Base,
                             std::string Class, std::string Name,
                             std::vector<std::string> Args = {});
  /// return From
  MethodBuilder &ret(std::string From);
  /// throw From
  MethodBuilder &throwVar(std::string From);
  /// To = catch Type — binds exceptions of (subtypes of) Type observable
  /// in this method
  MethodBuilder &catchType(std::string To, std::string Type);

private:
  friend class ProgramBuilder;

  struct RawStmt {
    StmtKind Kind;
    CallKind Call = CallKind::Virtual;
    std::string A, B, C, D;
    std::vector<std::string> Args;
  };

  std::string Class;
  std::string Name;
  std::vector<std::string> Params;
  bool IsStatic = false;
  bool IsAbstract = false;
  std::vector<RawStmt> Body;
};

/// Builds a Program from symbolic declarations. See the file comment.
class ProgramBuilder {
public:
  ProgramBuilder();

  /// Declares class \p Name extending \p Super (default "Object").
  ProgramBuilder &declClass(std::string Name, std::string Super = "Object");

  /// Declares an instance field \p Name of type \p Type in \p Class.
  ProgramBuilder &declField(std::string Class, std::string Name,
                            std::string Type);

  /// Declares a static field \p Name of type \p Type in \p Class.
  ProgramBuilder &declStaticField(std::string Class, std::string Name,
                                  std::string Type);

  /// Starts a method body; the returned builder stays valid until finish().
  /// \p Params are parameter names (excluding this).
  MethodBuilder &method(std::string Class, std::string Name,
                        std::vector<std::string> Params = {},
                        bool IsStatic = false);

  /// Declares an abstract (bodyless) virtual method. \p Params are the
  /// parameter names (kept so printing round-trips).
  ProgramBuilder &abstractMethod(std::string Class, std::string Name,
                                 std::vector<std::string> Params = {});

  /// Selects the entry point (a static, parameterless method).
  ProgramBuilder &setEntry(std::string Class, std::string Name);

  /// Resolves all names and produces the Program. On failure returns null
  /// and stores a diagnostic in \p Err.
  std::unique_ptr<Program> finish(std::string &Err);

private:
  struct RawField {
    std::string Class, Name, Type;
    bool IsStatic;
  };

  TypeId ensureType(Program &P, const std::string &Name, std::string &Err);
  FieldId resolveFieldRef(Program &P, TypeId ArrayHint,
                          const std::string &Ref, std::string &Err);

  std::vector<std::pair<std::string, std::string>> RawClasses;
  std::vector<RawField> RawFields;
  std::vector<std::unique_ptr<MethodBuilder>> RawMethods;
  std::string EntryClass, EntryName;
};

} // namespace mahjong::ir

#endif // MAHJONG_IR_PROGRAMBUILDER_H
