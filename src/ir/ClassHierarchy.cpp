//===-- ir/ClassHierarchy.cpp - Subtyping and dispatch ---------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ClassHierarchy.h"

#include <algorithm>
#include <cassert>

using namespace mahjong;
using namespace mahjong::ir;

ClassHierarchy::ClassHierarchy(const Program &P) : P(P) {
  uint32_t N = P.numTypes();
  Depth.assign(N, 0);
  Dispatch.resize(N);
  Subclasses.resize(N);

  // Process types in an order where superclasses come first. The builder
  // guarantees acyclicity, so iterating by depth works; compute depths by
  // chasing the super chain (shallow in practice).
  std::vector<TypeId> Order;
  Order.reserve(N);
  for (uint32_t I = 0; I < N; ++I) {
    TypeId T = TypeId(I);
    unsigned D = 0;
    for (TypeId Walk = P.type(T).Super; Walk.isValid();
         Walk = P.type(Walk).Super)
      ++D;
    Depth[I] = D;
    Order.push_back(T);
  }
  std::stable_sort(Order.begin(), Order.end(), [&](TypeId A, TypeId B) {
    return Depth[A.idx()] < Depth[B.idx()];
  });

  for (TypeId T : Order) {
    const TypeInfo &TI = P.type(T);
    // Inherit the superclass's dispatch table, then apply overrides.
    if (TI.Super.isValid())
      Dispatch[T.idx()] = Dispatch[TI.Super.idx()];
    for (MethodId M : TI.Methods) {
      const MethodInfo &MI = P.method(M);
      if (!MI.IsStatic)
        Dispatch[T.idx()][MI.DispatchSig] = M;
    }
    // Record T in the subclass lists of all its ancestors.
    if (TI.Kind == TypeKind::Class)
      for (TypeId Walk = T; Walk.isValid(); Walk = P.type(Walk).Super)
        Subclasses[Walk.idx()].push_back(T);
  }
}

bool ClassHierarchy::isSubtype(TypeId Sub, TypeId Super) const {
  if (Sub == Super)
    return true;
  const TypeInfo &SubTI = P.type(Sub);
  if (SubTI.Kind == TypeKind::Null)
    return true; // null is a subtype of everything
  if (Super == P.objectType())
    return true;
  const TypeInfo &SuperTI = P.type(Super);
  if (SubTI.Kind == TypeKind::Array) {
    // Covariant arrays: E1[] <= E2[] iff E1 <= E2.
    if (SuperTI.Kind != TypeKind::Array)
      return false;
    return isSubtype(SubTI.Elem, SuperTI.Elem);
  }
  if (SuperTI.Kind != TypeKind::Class)
    return false;
  for (TypeId Walk = SubTI.Super; Walk.isValid(); Walk = P.type(Walk).Super)
    if (Walk == Super)
      return true;
  return false;
}

MethodId ClassHierarchy::resolveVirtual(TypeId Recv,
                                        std::string_view DispatchSig) const {
  // Arrays dispatch through Object's table.
  if (P.type(Recv).Kind == TypeKind::Array)
    Recv = P.objectType();
  assert(P.type(Recv).Kind != TypeKind::Null &&
         "virtual dispatch on the null type");
  const auto &Table = Dispatch[Recv.idx()];
  auto It = Table.find(std::string(DispatchSig));
  if (It == Table.end())
    return MethodId::invalid();
  return P.method(It->second).IsAbstract ? MethodId::invalid() : It->second;
}
