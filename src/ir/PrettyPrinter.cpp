//===-- ir/PrettyPrinter.cpp - Dump a Program as .mj text ------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/PrettyPrinter.h"

#include <sstream>

using namespace mahjong;
using namespace mahjong::ir;

static std::string varName(const Program &P, VarId V) {
  return P.var(V).Name;
}

/// Renders a field operand: the global array-element field prints as "[]"
/// (handled by the caller), everything else as "Class::name" so the result
/// reparses unambiguously.
static std::string fieldRef(const Program &P, FieldId F) {
  const FieldInfo &FI = P.field(F);
  return P.type(FI.Declaring).Name + "::" + FI.Name;
}

std::string mahjong::ir::printStmt(const Program &P, const Stmt &S) {
  std::ostringstream OS;
  switch (S.Kind) {
  case StmtKind::Alloc:
    OS << varName(P, S.To) << " = new " << P.type(P.obj(S.Obj).Type).Name
       << ";";
    break;
  case StmtKind::Copy:
    OS << varName(P, S.To) << " = " << varName(P, S.From) << ";";
    break;
  case StmtKind::AssignNull:
    OS << varName(P, S.To) << " = null;";
    break;
  case StmtKind::Load:
    if (P.field(S.Field).Name == "[]")
      OS << varName(P, S.To) << " = " << varName(P, S.Base) << "[];";
    else
      OS << varName(P, S.To) << " = " << varName(P, S.Base) << "."
         << fieldRef(P, S.Field) << ";";
    break;
  case StmtKind::Store:
    if (P.field(S.Field).Name == "[]")
      OS << varName(P, S.Base) << "[] = " << varName(P, S.From) << ";";
    else
      OS << varName(P, S.Base) << "." << fieldRef(P, S.Field) << " = "
         << varName(P, S.From) << ";";
    break;
  case StmtKind::StaticLoad:
    OS << varName(P, S.To) << " = " << P.type(P.field(S.Field).Declaring).Name
       << "::" << P.field(S.Field).Name << ";";
    break;
  case StmtKind::StaticStore:
    OS << P.type(P.field(S.Field).Declaring).Name
       << "::" << P.field(S.Field).Name << " = " << varName(P, S.From) << ";";
    break;
  case StmtKind::Cast: {
    const CastSiteInfo &CS = P.castSite(S.CastIdx);
    OS << varName(P, CS.To) << " = (" << P.type(CS.Target).Name << ") "
       << varName(P, CS.From) << ";";
    break;
  }
  case StmtKind::Invoke: {
    const CallSiteInfo &CS = P.callSite(S.Site);
    if (CS.Result.isValid())
      OS << varName(P, CS.Result) << " = ";
    if (CS.Kind == CallKind::Virtual) {
      std::string Name = CS.Sig.substr(0, CS.Sig.find('/'));
      OS << varName(P, CS.Base) << "." << Name;
    } else if (CS.Kind == CallKind::Static) {
      const MethodInfo &Callee = P.method(CS.Direct);
      OS << P.type(Callee.Declaring).Name << "::" << Callee.Name;
    } else {
      const MethodInfo &Callee = P.method(CS.Direct);
      OS << "special " << varName(P, CS.Base) << "."
         << P.type(Callee.Declaring).Name << "::" << Callee.Name;
    }
    OS << "(";
    for (size_t I = 0; I < CS.Args.size(); ++I) {
      if (I)
        OS << ", ";
      OS << varName(P, CS.Args[I]);
    }
    OS << ");";
    break;
  }
  case StmtKind::Return:
    OS << "return " << varName(P, S.From) << ";";
    break;
  case StmtKind::Throw:
    OS << "throw " << varName(P, S.From) << ";";
    break;
  case StmtKind::Catch:
    OS << varName(P, S.To) << " = catch " << P.type(S.Type).Name << ";";
    break;
  }
  return OS.str();
}

std::string mahjong::ir::printProgram(const Program &P) {
  std::ostringstream OS;
  for (uint32_t TIdx = 0; TIdx < P.numTypes(); ++TIdx) {
    TypeId T = TypeId(TIdx);
    const TypeInfo &TI = P.type(T);
    if (TI.Kind != TypeKind::Class || T == P.objectType())
      continue;
    OS << "class " << TI.Name;
    if (TI.Super != P.objectType())
      OS << " extends " << P.type(TI.Super).Name;
    OS << " {\n";
    for (FieldId F : TI.Fields) {
      const FieldInfo &FI = P.field(F);
      OS << "  " << (FI.IsStatic ? "static field " : "field ") << FI.Name
         << ": " << P.type(FI.DeclaredType).Name << ";\n";
    }
    for (MethodId M : TI.Methods) {
      const MethodInfo &MI = P.method(M);
      OS << "  ";
      if (MI.IsStatic)
        OS << "static ";
      if (MI.IsAbstract)
        OS << "abstract ";
      OS << "method " << MI.Name << "(";
      for (size_t I = 0; I < MI.Params.size(); ++I) {
        if (I)
          OS << ", ";
        OS << P.var(MI.Params[I]).Name;
      }
      OS << ")";
      if (MI.IsAbstract) {
        OS << ";\n";
        continue;
      }
      OS << " {\n";
      for (const Stmt &S : MI.Body)
        OS << "    " << printStmt(P, S) << "\n";
      OS << "  }\n";
    }
    OS << "}\n";
  }
  return OS.str();
}
