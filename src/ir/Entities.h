//===-- ir/Entities.h - IR entity records ---------------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain records for the entities of the Java-like IR: types, fields,
/// methods, variables, allocation sites, call sites and cast sites. All are
/// stored densely in the Program arena and referred to by strong ids
/// (see support/Ids.h).
///
/// The IR keeps exactly the statements a flow-insensitive points-to
/// analysis consumes (the Doop/Tai-e fact schema): allocations, copies,
/// instance/static field loads and stores, casts, invocations and returns.
/// Arrays are reference types with a distinguished element field, so array
/// reads/writes are ordinary loads/stores of that field.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_IR_ENTITIES_H
#define MAHJONG_IR_ENTITIES_H

#include "support/Ids.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mahjong::ir {

/// Kinds of reference types.
enum class TypeKind : uint8_t {
  Class, ///< an ordinary class
  Array, ///< an array type; Elem is the element type
  Null,  ///< the type of the null constant (subtype of everything)
};

/// A reference type. Single inheritance; the root class is "Object".
struct TypeInfo {
  std::string Name;
  TypeKind Kind = TypeKind::Class;
  TypeId Super;             ///< invalid for Object and the null type
  TypeId Elem;              ///< element type; arrays only
  std::vector<FieldId> Fields; ///< instance fields *declared* by this type
  std::vector<MethodId> Methods; ///< methods declared by this type
};

/// An instance or static field.
struct FieldInfo {
  std::string Name;
  TypeId Declaring;    ///< class that declares the field
  TypeId DeclaredType; ///< declared (reference) type of the field
  bool IsStatic = false;
};

/// How a call site dispatches.
enum class CallKind : uint8_t {
  Virtual, ///< dynamic dispatch on the receiver object's type
  Static,  ///< direct call to a static method
  Special, ///< direct call to an instance method (constructors, super)
};

/// One invocation site.
struct CallSiteInfo {
  CallKind Kind = CallKind::Virtual;
  /// Dispatch key "name/arity" for virtual calls; unused otherwise.
  std::string Sig;
  /// Direct callee for static/special calls; invalid for virtual calls.
  MethodId Direct;
  VarId Base;   ///< receiver; invalid for static calls
  std::vector<VarId> Args;
  VarId Result; ///< invalid when the result is discarded
  MethodId Enclosing;
};

/// One cast site ("To = (Target) From"), tracked for the may-fail-cast
/// client.
struct CastSiteInfo {
  VarId To;
  VarId From;
  TypeId Target;
  MethodId Enclosing;
};

/// One allocation site; doubles as the abstract object of the
/// allocation-site abstraction.
struct ObjInfo {
  TypeId Type;
  MethodId Method; ///< method containing the allocation; invalid for o_null
  std::string Label;
};

/// A local variable (or parameter / this / return slot) of a method.
struct VarInfo {
  std::string Name;
  MethodId Method;
};

/// IR statement opcodes.
enum class StmtKind : uint8_t {
  Alloc,       ///< To = new T        (Obj names the allocation site)
  Copy,        ///< To = From
  AssignNull,  ///< To = null
  Load,        ///< To = Base.Field
  Store,       ///< Base.Field = From
  StaticLoad,  ///< To = C::Field
  StaticStore, ///< C::Field = From
  Cast,        ///< To = (T) From     (Cast indexes the cast-site table)
  Invoke,      ///< call               (Site indexes the call-site table)
  Return,      ///< return From        (flows into the method's return var)
  Throw,       ///< throw From         (flows into the method's $exc var)
  Catch,       ///< To = catch T       (catches exceptions of type T)
};

/// A single IR statement. Operand fields are meaningful per StmtKind as
/// documented on the opcodes; unused operands stay invalid.
struct Stmt {
  StmtKind Kind;
  VarId To;
  VarId From;
  VarId Base;
  FieldId Field;
  ObjId Obj;
  CallSiteId Site;
  TypeId Type;          ///< Catch: the caught exception type
  uint32_t CastIdx = 0; ///< Cast: index into the cast-site table
};

/// A method with its pointer-relevant body.
struct MethodInfo {
  std::string Name;      ///< simple name
  std::string Signature; ///< "Class.name/arity", globally unique
  std::string DispatchSig; ///< "name/arity", the virtual-dispatch key
  TypeId Declaring;
  bool IsStatic = false;
  bool IsAbstract = false;
  VarId This; ///< invalid for static methods
  std::vector<VarId> Params;
  VarId Ret;  ///< return slot; invalid for void methods
  /// Exception slot: objects the method may propagate to its callers.
  /// Thrown objects and (over-approximately) callees' exceptions flow in;
  /// Catch statements read from it. Flow-insensitive, so a catch in a
  /// method observes every exception raised anywhere in it, and caught
  /// exceptions conservatively still propagate to callers — sound, like
  /// Doop's default exception analysis but coarser (see DESIGN.md).
  VarId Exc;
  std::vector<Stmt> Body;
};

} // namespace mahjong::ir

#endif // MAHJONG_IR_ENTITIES_H
