//===-- ir/Program.cpp - Whole-program IR arena ----------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

using namespace mahjong;
using namespace mahjong::ir;

TypeId Program::typeByName(std::string_view Name) const {
  auto It = TypeByName.find(std::string(Name));
  return It == TypeByName.end() ? TypeId::invalid() : It->second;
}

FieldId Program::findField(TypeId Class, std::string_view Name) const {
  for (TypeId T = Class; T.isValid(); T = type(T).Super) {
    for (FieldId F : type(T).Fields)
      if (!field(F).IsStatic && field(F).Name == Name)
        return F;
  }
  return FieldId::invalid();
}

std::vector<FieldId> Program::allInstanceFields(TypeId Class) const {
  std::vector<FieldId> Result;
  for (TypeId T = Class; T.isValid(); T = type(T).Super)
    for (FieldId F : type(T).Fields)
      if (!field(F).IsStatic)
        Result.push_back(F);
  return Result;
}

MethodId Program::methodBySignature(std::string_view Sig) const {
  auto It = MethodBySig.find(std::string(Sig));
  return It == MethodBySig.end() ? MethodId::invalid() : It->second;
}

std::string Program::describeObj(ObjId Id) const {
  const ObjInfo &O = obj(Id);
  std::string S = "o" + std::to_string(Id.idx()) + "<" + type(O.Type).Name +
                  ">";
  if (O.Method.isValid())
    S += "@" + method(O.Method).Signature;
  return S;
}
