//===-- clients/Clients.h - Type-dependent clients ------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three type-dependent clients the paper evaluates (§6):
///
///  - call graph construction — #call graph edges (CI-projected),
///  - devirtualization — #poly call sites (virtual sites that cannot be
///    disambiguated into mono-calls),
///  - may-fail casting — #casts whose operand may hold an object that is
///    not a subtype of the target type.
///
/// All three depend only on the *types* of pointed-to objects, which is
/// exactly why MAHJONG's type-consistent merging preserves their
/// precision (paper §2).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CLIENTS_CLIENTS_H
#define MAHJONG_CLIENTS_CLIENTS_H

#include "pta/PointerAnalysis.h"

#include <string>
#include <vector>

namespace mahjong::clients {

/// The client metrics of one analysis run (smaller is more precise,
/// except reachable methods where smaller is also more precise).
struct ClientResults {
  uint64_t CallGraphEdges = 0;   ///< distinct (site, callee) pairs
  uint64_t ReachableMethods = 0; ///< CI-reachable methods
  uint64_t PolyCallSites = 0;    ///< virtual sites with >= 2 targets
  uint64_t MonoCallSites = 0;    ///< devirtualizable virtual sites
  uint64_t MayFailCasts = 0;     ///< cast sites that may fail
  uint64_t TotalCasts = 0;       ///< cast sites in reachable code
};

/// Evaluates all three clients over \p R.
ClientResults evaluateClients(const pta::PTAResult &R);

/// True if the cast site \p CastIdx may fail under \p R: some context of
/// its method flows an object into the operand whose type is not a
/// subtype of the target (null never fails).
bool castMayFail(const pta::PTAResult &R, uint32_t CastIdx);

/// Targets of a virtual call site, CI-projected; empty if unreachable.
std::vector<MethodId> virtualTargets(const pta::PTAResult &R,
                                     CallSiteId Site);

/// Renders the metrics as "edges=... poly=... mayfail=..." for logs.
std::string toString(const ClientResults &CR);

/// May-alias query: can \p A and \p B point to the same abstract object
/// (CI-projected, null excluded)?
///
/// Deliberately NOT a type-dependent client: the paper (§1, §2) designs
/// MAHJONG to preserve precision for type-dependent clients only, and
/// predicts that merging type-consistent objects makes more variable
/// pairs alias. Tests and the ablation bench use this to demonstrate
/// that documented trade-off.
bool mayAlias(const pta::PTAResult &R, VarId A, VarId B);

/// Number of distinct local-variable pairs of \p M that may alias — an
/// aggregate alias-precision metric (smaller is more precise).
uint64_t countAliasedLocalPairs(const pta::PTAResult &R, MethodId M);

} // namespace mahjong::clients

#endif // MAHJONG_CLIENTS_CLIENTS_H
