//===-- clients/Clients.cpp - Type-dependent clients ------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/Clients.h"

#include <sstream>

using namespace mahjong;
using namespace mahjong::clients;
using namespace mahjong::ir;
using namespace mahjong::pta;

bool mahjong::clients::castMayFail(const PTAResult &R, uint32_t CastIdx) {
  const CastSiteInfo &CS = R.P.castSite(CastIdx);
  MethodId M = CS.Enclosing;
  for (ContextId C : R.MethodCtxs[M.idx()]) {
    const PointsToSet *Set = R.varPts(C, CS.From);
    if (!Set)
      continue;
    for (uint32_t Raw : *Set) {
      TypeId T = R.typeOfCSObj(Raw);
      if (R.P.type(T).Kind == TypeKind::Null)
        continue; // casting null always succeeds
      if (!R.CH.isSubtype(T, CS.Target))
        return true;
    }
  }
  return false;
}

std::vector<MethodId> mahjong::clients::virtualTargets(const PTAResult &R,
                                                       CallSiteId Site) {
  return R.CG.calleesOf(Site);
}

ClientResults mahjong::clients::evaluateClients(const PTAResult &R) {
  ClientResults CR;
  CR.CallGraphEdges = R.CG.numCIEdges();
  for (bool Reach : R.ReachableMethod)
    CR.ReachableMethods += Reach;

  // Devirtualization: classify every reachable virtual call site.
  for (uint32_t I = 0; I < R.P.numCallSites(); ++I) {
    CallSiteId Site = CallSiteId(I);
    const CallSiteInfo &CS = R.P.callSite(Site);
    if (CS.Kind != CallKind::Virtual)
      continue;
    size_t Targets = R.CG.calleesOf(Site).size();
    if (Targets >= 2)
      ++CR.PolyCallSites;
    else if (Targets == 1)
      ++CR.MonoCallSites;
  }

  // May-fail casting over casts in reachable code.
  for (uint32_t I = 0; I < R.P.numCastSites(); ++I) {
    MethodId M = R.P.castSite(I).Enclosing;
    if (!R.ReachableMethod[M.idx()])
      continue;
    ++CR.TotalCasts;
    if (castMayFail(R, I))
      ++CR.MayFailCasts;
  }
  return CR;
}

bool mahjong::clients::mayAlias(const PTAResult &R, VarId A, VarId B) {
  PointsToSet PA = R.ciVarPts(A);
  PointsToSet PB = R.ciVarPts(B);
  for (uint32_t Raw : PA) {
    if (R.P.isNullObj(ObjId(Raw)))
      continue; // both being null is not considered aliasing
    if (PB.contains(Raw))
      return true;
  }
  return false;
}

uint64_t mahjong::clients::countAliasedLocalPairs(const PTAResult &R,
                                                  MethodId M) {
  std::vector<VarId> Locals;
  for (uint32_t I = 0; I < R.P.numVars(); ++I)
    if (R.P.var(VarId(I)).Method == M)
      Locals.push_back(VarId(I));
  uint64_t Pairs = 0;
  for (size_t I = 0; I < Locals.size(); ++I)
    for (size_t J = I + 1; J < Locals.size(); ++J)
      Pairs += mayAlias(R, Locals[I], Locals[J]);
  return Pairs;
}

std::string mahjong::clients::toString(const ClientResults &CR) {
  std::ostringstream OS;
  OS << "edges=" << CR.CallGraphEdges << " reach=" << CR.ReachableMethods
     << " poly=" << CR.PolyCallSites << " mono=" << CR.MonoCallSites
     << " mayfail=" << CR.MayFailCasts << "/" << CR.TotalCasts;
  return OS.str();
}
