//===-- serve/Server.h - Batching request broker --------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving loop: a ThreadPool-backed broker that accepts textual
/// queries from any number of client threads, coalesces them into batches
/// and dispatches the batches onto pool workers, each answering through
/// the shared QueryEngine. Batching amortizes queue synchronization: under
/// load one lock acquisition drains up to MaxBatch requests, so the hot
/// path per query is the engine's lock-free cache probe, not the queue.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SERVE_SERVER_H
#define MAHJONG_SERVE_SERVER_H

#include "serve/QueryEngine.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <deque>
#include <future>
#include <mutex>
#include <string>

namespace mahjong::serve {

/// Broker statistics for one serving session.
struct ServerStats {
  uint64_t Requests = 0;
  uint64_t Batches = 0;
  uint64_t MaxBatchObserved = 0;
};

/// Accepts queries from concurrent producers, answers them on a worker
/// pool. submit() never blocks on query evaluation; callers wait on the
/// returned future.
class QueryServer {
public:
  /// \p Workers = 0 means hardware concurrency. \p MaxBatch bounds how
  /// many requests one worker drains per queue lock.
  explicit QueryServer(const QueryEngine &Engine, unsigned Workers = 0,
                       unsigned MaxBatch = 16);
  ~QueryServer();

  QueryServer(const QueryServer &) = delete;
  QueryServer &operator=(const QueryServer &) = delete;

  /// Enqueues one query; the future resolves when a worker answers it.
  std::future<QueryResult> submit(std::string QueryText);

  /// Blocks until every submitted request has been answered.
  void drain();

  ServerStats stats() const;

  unsigned numWorkers() const { return Pool.numThreads(); }

private:
  struct Request {
    std::string Text;
    std::promise<QueryResult> Done;
  };

  void pump();

  const QueryEngine &Engine;
  unsigned MaxBatch;

  std::mutex Mutex;
  std::deque<Request> Pending;  ///< guarded by Mutex
  unsigned ActiveDrainers = 0;  ///< guarded by Mutex

  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Batches{0};
  std::atomic<uint64_t> MaxObserved{0};

  /// Declared last: workers reference the queue state above, so the pool
  /// must be torn down (joining them) before anything else dies.
  ThreadPool Pool;
};

} // namespace mahjong::serve

#endif // MAHJONG_SERVE_SERVER_H
