//===-- serve/QueryEngine.cpp - Concurrent points-to queries -----------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/QueryEngine.h"

#include "ir/Entities.h"
#include "obs/Metrics.h"
#include "support/Hashing.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <chrono>
#include <sstream>

using namespace mahjong;
using namespace mahjong::serve;

//===----------------------------------------------------------------------===//
// Query parsing
//===----------------------------------------------------------------------===//

bool mahjong::serve::parseQuery(std::string_view Text, Query &Q,
                                std::string &Err) {
  std::vector<std::string> Tokens;
  std::istringstream In{std::string(Text)};
  for (std::string Tok; In >> Tok;)
    Tokens.push_back(Tok);
  if (Tokens.empty()) {
    Err = "empty query";
    return false;
  }
  struct Form {
    const char *Verb;
    QueryKind Kind;
    unsigned Args;
  };
  static const Form Forms[] = {
      {"points-to", QueryKind::PointsTo, 1},
      {"alias", QueryKind::Alias, 2},
      {"devirt", QueryKind::Devirt, 1},
      {"cast-may-fail", QueryKind::CastMayFail, 1},
      {"callers", QueryKind::Callers, 1},
      {"callees", QueryKind::Callees, 1},
      {"stats", QueryKind::Stats, 0},
  };
  for (const Form &F : Forms) {
    if (Tokens[0] != F.Verb)
      continue;
    if (Tokens.size() != F.Args + 1) {
      Err = std::string("'") + F.Verb + "' expects " +
            std::to_string(F.Args) + " argument(s), got " +
            std::to_string(Tokens.size() - 1);
      return false;
    }
    Q.Kind = F.Kind;
    Q.A = F.Args >= 1 ? Tokens[1] : std::string();
    Q.B = F.Args == 2 ? Tokens[2] : std::string();
    return true;
  }
  Err = "unknown query verb '" + Tokens[0] +
        "' (expected points-to, alias, devirt, cast-may-fail, callers, "
        "callees or stats)";
  return false;
}

const char *mahjong::serve::queryKindName(QueryKind K) {
  switch (K) {
  case QueryKind::PointsTo:
    return "points-to";
  case QueryKind::Alias:
    return "alias";
  case QueryKind::Devirt:
    return "devirt";
  case QueryKind::CastMayFail:
    return "cast-may-fail";
  case QueryKind::Callers:
    return "callers";
  case QueryKind::Callees:
    return "callees";
  case QueryKind::Stats:
    return "stats";
  }
  return "unknown";
}

std::string QueryResult::toString() const {
  if (!Ok)
    return "error: " + Error;
  if (HasVerdict)
    return Verdict ? "true" : "false";
  std::string S = "[";
  for (size_t I = 0; I < Items.size(); ++I) {
    if (I)
      S += ", ";
    S += Items[I];
  }
  return S + "]";
}

//===----------------------------------------------------------------------===//
// QueryCache
//===----------------------------------------------------------------------===//

struct QueryCache::Entry {
  uint64_t Hash;
  std::string Key;
  QueryResult Result;
  mutable std::atomic<uint64_t> LastUsed;
};

QueryCache::QueryCache(size_t Capacity) {
  size_t N = std::bit_ceil(std::max<size_t>(Capacity, 2 * ProbeWindow));
  Buckets = std::vector<std::atomic<Entry *>>(N);
  Mask = N - 1;
  // Retired entries are the cache's total allocation footprint (live
  // entries included); the cap bounds memory no matter how diverse the
  // query stream is. 8x the bucket count leaves ample eviction turnover.
  RetiredCap = 8 * N;
}

QueryCache::~QueryCache() = default;

const QueryResult *QueryCache::lookup(std::string_view Key) const {
  uint64_t H = fnv1a64(Key);
  for (unsigned I = 0; I < ProbeWindow; ++I) {
    const Entry *E = Buckets[(H + I) & Mask].load(std::memory_order_acquire);
    if (E && E->Hash == H && E->Key == Key) {
      E->LastUsed.store(Clock.fetch_add(1, std::memory_order_relaxed),
                        std::memory_order_relaxed);
      Hits.fetch_add(1, std::memory_order_relaxed);
      return &E->Result;
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void QueryCache::insert(std::string_view Key, QueryResult R) {
  uint64_t H = fnv1a64(Key);
  std::lock_guard<std::mutex> Lock(WriteMutex);
  // Re-probe under the lock: a racing inserter may have published the
  // same key; refreshing its clock is all that is left to do.
  size_t FreeSlot = SIZE_MAX, VictimSlot = SIZE_MAX;
  uint64_t VictimUsed = UINT64_MAX;
  for (unsigned I = 0; I < ProbeWindow; ++I) {
    size_t Slot = (H + I) & Mask;
    Entry *E = Buckets[Slot].load(std::memory_order_relaxed);
    if (!E) {
      if (FreeSlot == SIZE_MAX)
        FreeSlot = Slot;
      continue;
    }
    if (E->Hash == H && E->Key == Key) {
      E->LastUsed.store(Clock.fetch_add(1, std::memory_order_relaxed),
                        std::memory_order_relaxed);
      return;
    }
    uint64_t Used = E->LastUsed.load(std::memory_order_relaxed);
    if (Used < VictimUsed) {
      VictimUsed = Used;
      VictimSlot = Slot;
    }
  }
  // Retire budget exhausted: keep serving the published entries but stop
  // allocating new ones — misses fall back to uncached evaluation.
  if (Retired.size() >= RetiredCap)
    return;
  RetiredCount.fetch_add(1, std::memory_order_relaxed);
  auto E = std::make_unique<Entry>();
  E->Hash = H;
  E->Key = std::string(Key);
  E->Result = std::move(R);
  E->LastUsed.store(Clock.fetch_add(1, std::memory_order_relaxed),
                    std::memory_order_relaxed);
  size_t Slot = FreeSlot != SIZE_MAX ? FreeSlot : VictimSlot;
  if (FreeSlot == SIZE_MAX)
    Evictions.fetch_add(1, std::memory_order_relaxed);
  // The displaced entry is retired, not freed: a concurrent reader that
  // already holds its pointer keeps a valid object until the cache dies.
  Buckets[Slot].store(E.get(), std::memory_order_release);
  Retired.push_back(std::move(E));
  Insertions.fetch_add(1, std::memory_order_relaxed);
}

QueryCache::Stats QueryCache::stats() const {
  Stats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Insertions = Insertions.load(std::memory_order_relaxed);
  S.Evictions = Evictions.load(std::memory_order_relaxed);
  S.Retired = RetiredCount.load(std::memory_order_relaxed);
  return S;
}

//===----------------------------------------------------------------------===//
// QueryEngine
//===----------------------------------------------------------------------===//

QueryEngine::QueryEngine(std::shared_ptr<const SnapshotData> Data,
                         size_t CacheCapacity)
    : Data(std::move(Data)), Cache(CacheCapacity) {
  const SnapshotData &D = *this->Data;
  VarByKey.reserve(D.Vars.size());
  for (uint32_t V = 0; V < D.Vars.size(); ++V)
    VarByKey.emplace(D.varKey(V), V);
  MethodBySig.reserve(D.Methods.size());
  for (uint32_t M = 0; M < D.Methods.size(); ++M)
    MethodBySig.emplace(D.Methods[M].Signature, M);
  for (const SnapshotData::Site &S : D.Sites) {
    if (S.Callees.empty())
      continue;
    auto &Callees = CalleesByMethod[S.Enclosing];
    Callees.insert(Callees.end(), S.Callees.begin(), S.Callees.end());
    for (uint32_t Callee : S.Callees)
      CallersByMethod[Callee].push_back(S.Enclosing);
  }
  for (auto *Index : {&CalleesByMethod, &CallersByMethod})
    for (auto &[M, Ms] : *Index) {
      std::sort(Ms.begin(), Ms.end());
      Ms.erase(std::unique(Ms.begin(), Ms.end()), Ms.end());
    }
}

QueryResult QueryEngine::run(std::string_view QueryText) const {
  Query Q;
  std::string Err;
  if (!parseQuery(QueryText, Q, Err)) {
    QueryResult R;
    R.Error = Err;
    return R;
  }
  // Introspection reads live counters: caching it would freeze them, and
  // its latency would pollute the data-query histograms.
  if (Q.Kind == QueryKind::Stats)
    return statsResult();
  auto T0 = std::chrono::steady_clock::now();
  // Canonical cache key: whitespace variants of the same query share one
  // entry; \x1f cannot occur inside entity keys.
  std::string Key;
  Key.push_back(static_cast<char>('0' + static_cast<uint8_t>(Q.Kind)));
  Key.push_back('\x1f');
  Key += Q.A;
  Key.push_back('\x1f');
  Key += Q.B;
  const QueryResult *Hit = Cache.lookup(Key);
  QueryResult R;
  if (Hit) {
    R = *Hit;
  } else {
    R = evaluate(Q);
    // Only successful answers are worth a slot: unknown-entity errors
    // have an unbounded key space an adversarial stream could fill the
    // cache (and its retire store) with.
    if (R.Ok)
      Cache.insert(Key, R);
  }
  KindLatencyNs[static_cast<unsigned>(Q.Kind)].record(
      static_cast<uint64_t>(std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - T0)
                                .count()));
  return R;
}

QueryResult QueryEngine::evaluate(const Query &Q) const {
  switch (Q.Kind) {
  case QueryKind::PointsTo:
    return pointsTo(Q.A);
  case QueryKind::Alias:
    return alias(Q.A, Q.B);
  case QueryKind::Devirt:
    return devirt(Q.A);
  case QueryKind::CastMayFail:
    return castMayFail(Q.A);
  case QueryKind::Callers:
    return callersOf(Q.A);
  case QueryKind::Callees:
    return calleesOf(Q.A);
  case QueryKind::Stats:
    return statsResult();
  }
  QueryResult R;
  R.Error = "unreachable query kind";
  return R;
}

QueryResult QueryEngine::statsResult() const {
  // Build a throwaway registry so the answer reuses the one exposition
  // format (Prometheus text lines, one per Items entry) everything else
  // in the pipeline speaks.
  obs::MetricsRegistry Reg;
  QueryCache::Stats CS = Cache.stats();
  Reg.counter("serve.cache_hits").set(CS.Hits);
  Reg.counter("serve.cache_misses").set(CS.Misses);
  Reg.counter("serve.cache_insertions").set(CS.Insertions);
  Reg.counter("serve.cache_evictions").set(CS.Evictions);
  Reg.counter("serve.cache_retired").set(CS.Retired);
  for (unsigned K = 0; K < NumDataQueryKinds; ++K) {
    const LogHistogram &H = KindLatencyNs[K];
    if (H.count() == 0)
      continue;
    Reg.histogram(std::string("serve.latency_ns.") +
                  queryKindName(static_cast<QueryKind>(K)))
        .mergeFrom(H);
  }
  QueryResult R;
  R.Ok = true;
  std::istringstream Lines(Reg.toPrometheus());
  for (std::string Line; std::getline(Lines, Line);)
    if (!Line.empty())
      R.Items.push_back(Line);
  return R;
}

bool QueryEngine::lookupVar(const std::string &VarKey, uint32_t &V,
                            std::string &Err) const {
  auto It = VarByKey.find(VarKey);
  if (It == VarByKey.end()) {
    Err = "unknown variable '" + VarKey + "' (expected MethodSig::name)";
    return false;
  }
  V = It->second;
  return true;
}

/// Parses a decimal site/cast index bounded by \p Limit.
static bool parseIndex(const std::string &Text, size_t Limit, uint32_t &Out,
                       const char *What, std::string &Err) {
  uint64_t V = 0;
  if (Text.empty()) {
    Err = std::string("empty ") + What + " index";
    return false;
  }
  for (char C : Text) {
    if (!std::isdigit(static_cast<unsigned char>(C))) {
      Err = std::string("malformed ") + What + " index '" + Text + "'";
      return false;
    }
    V = V * 10 + (C - '0');
    if (V > 0xFFFFFFFFull)
      break;
  }
  if (V >= Limit) {
    Err = std::string(What) + " index " + Text + " out of range (0.." +
          std::to_string(Limit ? Limit - 1 : 0) + ")";
    return false;
  }
  Out = static_cast<uint32_t>(V);
  return true;
}

QueryResult QueryEngine::pointsTo(const std::string &VarKey) const {
  QueryResult R;
  uint32_t V;
  if (!lookupVar(VarKey, V, R.Error))
    return R;
  R.Ok = true;
  for (uint32_t O : Data->ptsOfVar(V))
    R.Items.push_back(Data->describeObj(O));
  return R;
}

QueryResult QueryEngine::alias(const std::string &KeyA,
                               const std::string &KeyB) const {
  QueryResult R;
  uint32_t VA, VB;
  if (!lookupVar(KeyA, VA, R.Error) || !lookupVar(KeyB, VB, R.Error))
    return R;
  const std::vector<uint32_t> &A = Data->ptsOfVar(VA);
  const std::vector<uint32_t> &B = Data->ptsOfVar(VB);
  R.Ok = true;
  R.HasVerdict = true;
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] < B[J])
      ++I;
    else if (B[J] < A[I])
      ++J;
    else {
      // Object 0 is the reserved o_null: both being null is not aliasing.
      if (A[I] != 0) {
        R.Verdict = true;
        break;
      }
      ++I;
      ++J;
    }
  }
  return R;
}

QueryResult QueryEngine::devirt(const std::string &SiteIdx) const {
  QueryResult R;
  uint32_t S;
  if (!parseIndex(SiteIdx, Data->Sites.size(), S, "call-site", R.Error))
    return R;
  R.Ok = true;
  for (uint32_t Callee : Data->Sites[S].Callees)
    R.Items.push_back(Data->Methods[Callee].Signature);
  std::sort(R.Items.begin(), R.Items.end());
  return R;
}

QueryResult QueryEngine::castMayFail(const std::string &CastIdx) const {
  QueryResult R;
  uint32_t C;
  if (!parseIndex(CastIdx, Data->Casts.size(), C, "cast-site", R.Error))
    return R;
  const SnapshotData::Cast &Cast = Data->Casts[C];
  R.Ok = true;
  R.HasVerdict = true;
  for (uint32_t O : Data->ptsOfVar(Cast.From)) {
    uint32_t T = Data->Objs[O].Type;
    if (Data->Types[T].Kind == static_cast<uint8_t>(ir::TypeKind::Null))
      continue; // casting null always succeeds
    if (!Data->isSubtype(T, Cast.Target)) {
      R.Verdict = true;
      break;
    }
  }
  return R;
}

QueryResult QueryEngine::callersOf(const std::string &Sig) const {
  QueryResult R;
  auto It = MethodBySig.find(Sig);
  if (It == MethodBySig.end()) {
    R.Error = "unknown method '" + Sig + "'";
    return R;
  }
  R.Ok = true;
  if (auto Found = CallersByMethod.find(It->second);
      Found != CallersByMethod.end())
    for (uint32_t M : Found->second)
      R.Items.push_back(Data->Methods[M].Signature);
  std::sort(R.Items.begin(), R.Items.end());
  return R;
}

QueryResult QueryEngine::calleesOf(const std::string &Sig) const {
  QueryResult R;
  auto It = MethodBySig.find(Sig);
  if (It == MethodBySig.end()) {
    R.Error = "unknown method '" + Sig + "'";
    return R;
  }
  R.Ok = true;
  if (auto Found = CalleesByMethod.find(It->second);
      Found != CalleesByMethod.end())
    for (uint32_t M : Found->second)
      R.Items.push_back(Data->Methods[M].Signature);
  std::sort(R.Items.begin(), R.Items.end());
  return R;
}
