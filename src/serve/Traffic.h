//===-- serve/Traffic.h - Workload spec and traffic driver ----*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A genny-style declarative traffic model for the query engine: a
/// QueryWorkload fixes the client count, per-client volume (or duration),
/// query-mix ratios and key distribution, and the driver replays it with
/// real client threads against a QueryServer, measuring per-request
/// latency end to end (submit to future resolution) and reporting QPS
/// with p50/p95/p99.
///
/// Spec files are "key = value" lines ('#' comments). Example:
///
///   clients = 8
///   queries_per_client = 5000
///   seed = 42
///   zipf_s = 1.1          # 0 = uniform keys
///   weight_points_to = 4
///   weight_alias = 2
///   weight_devirt = 1
///   weight_cast_may_fail = 1
///   weight_callers = 1
///   weight_callees = 1
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SERVE_TRAFFIC_H
#define MAHJONG_SERVE_TRAFFIC_H

#include "serve/QueryEngine.h"
#include "serve/Server.h"

#include <iosfwd>
#include <string>
#include <string_view>

namespace mahjong::serve {

/// Declarative description of one traffic run.
struct QueryWorkload {
  unsigned Clients = 4;
  uint64_t QueriesPerClient = 1000;
  /// When > 0, clients run for this long instead of a fixed count.
  double DurationSeconds = 0;
  uint64_t Seed = 1;
  /// Zipf skew of key ranks (s parameter); 0 selects uniform keys.
  double ZipfS = 0;
  unsigned Workers = 0;  ///< broker workers; 0 = hardware concurrency
  unsigned MaxBatch = 16;
  /// When > 0 the driver emits a progress heartbeat line at this period
  /// (spec key: heartbeat_seconds). 0 disables it.
  double HeartbeatSeconds = 0;
  /// Socket mode only: reconnect each client every this many queries
  /// (connection churn). 0 = one connection per client for the run.
  uint64_t ChurnEvery = 0;
  /// Socket mode only: phased ramp — client C starts C * ramp_seconds
  /// into the run. 0 = all clients start together.
  double RampSeconds = 0;
  /// Relative frequencies of the query kinds.
  unsigned WeightPointsTo = 4;
  unsigned WeightAlias = 2;
  unsigned WeightDevirt = 1;
  unsigned WeightCastMayFail = 1;
  unsigned WeightCallers = 1;
  unsigned WeightCallees = 1;
};

/// Parses a spec file body. Unknown keys and malformed lines are errors.
bool parseWorkloadSpec(std::string_view Text, QueryWorkload &W,
                       std::string &Err);

/// What one traffic replay measured. Percentiles come from the shared
/// log-bucketed LogHistogram (bucket midpoints), not a sorted sample
/// vector, so memory stays O(1) in the query count.
struct TrafficReport {
  uint64_t Queries = 0;
  uint64_t Failed = 0; ///< answers with Ok == false
  double Seconds = 0;
  double QPS = 0;
  double P50Micros = 0;
  double P95Micros = 0;
  double P99Micros = 0;
  /// Latency broken down by query kind (indexed by QueryKind).
  struct KindLatency {
    uint64_t Count = 0;
    double P50Micros = 0;
    double P95Micros = 0;
    double P99Micros = 0;
  };
  KindLatency Kinds[NumDataQueryKinds];
  QueryCache::Stats Cache;
  ServerStats Server;

  /// One JSON object, stable key order, for scripts and CI assertions.
  std::string toJson() const;
};

/// Deterministic query-text generator over a snapshot: kind by mix
/// weights, keys by the configured rank distribution. Each client owns
/// one generator seeded by (workload seed, client index).
class QueryGenerator {
public:
  QueryGenerator(const SnapshotData &D, const QueryWorkload &W,
                 unsigned Client);

  /// Produces the next query text. Never fails: kinds without any valid
  /// key in the snapshot fall back to points-to. When \p KindOut is
  /// non-null it receives the kind actually emitted (after fallback).
  std::string next(QueryKind *KindOut = nullptr);

private:
  uint64_t nextRand();
  /// Rank in [0, N) — uniform or Zipf depending on the workload.
  size_t pickRank(size_t N);

  const SnapshotData &D;
  const QueryWorkload &W;
  uint64_t RngState;
  unsigned TotalWeight;
  std::vector<double> ZipfCdf; ///< lazily sized per key-pool maximum
};

/// Replays \p W against \p Engine through a QueryServer. Spawns
/// W.Clients threads, each a closed loop (generate, submit, wait).
/// When \p Progress is non-null and W.HeartbeatSeconds > 0, a heartbeat
/// thread prints "[serve-bench] t=... queries=... qps=..." lines to it
/// at that period while the clients run.
TrafficReport runTraffic(const QueryEngine &Engine, const QueryWorkload &W,
                         std::ostream *Progress = nullptr);

} // namespace mahjong::serve

#endif // MAHJONG_SERVE_TRAFFIC_H
