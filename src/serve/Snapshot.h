//===-- serve/Snapshot.h - Persistent analysis snapshots ------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The .mjsnap persistent snapshot format: everything a points-to query
/// needs from one analysis run, serialized once and served forever after
/// without re-running the solver.
///
/// A snapshot captures the *query-facing projection* of a PTAResult — the
/// interned program entities (types with their subtype closure, fields,
/// methods, variables, allocation-site objects), the context-insensitive
/// points-to set of every variable, the CI call graph, and the cast-site
/// table. Points-to sets are stored deduplicated (each distinct set once,
/// variables reference it by index) and delta-encoded (sorted object ids,
/// LEB128 gaps). Since format v2 the dedup table is additionally
/// *front-coded*: the table is kept lexicographically sorted (buildSnapshot
/// pins that order), and each set stores only the length of the prefix it
/// shares with its predecessor plus the delta-coded suffix — dedup removes
/// identical sets, front-coding the near-identical ones that remain (a
/// variable's set is typically a superset of its neighbors'). All encodings
/// compound with the MAHJONG heap: merged objects collapse many sets onto
/// few class representatives, so the dedup table stays small — the same
/// repetitive-structure observation the MDE line of work exploits
/// (PAPERS.md). v1 files (plain per-set delta lists, unsorted table) still
/// load.
///
/// File layout (all integers LEB128 unless noted):
///
///   magic   "MJSNAP" (6 bytes)
///   version u32 LE — gated on load against [MinSupported, Current]
///   checksum u64 LE — FNV-1a of the payload bytes
///   payloadSize u64 LE
///   payload: sequence of sections (u8 id, varint byteLen, bytes);
///            unknown section ids are skipped, so adding sections is a
///            forward-compatible change that needs no version bump.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SERVE_SNAPSHOT_H
#define MAHJONG_SERVE_SNAPSHOT_H

#include "pta/PointerAnalysis.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mahjong::serve {

/// Format version written by this build (v2: front-coded dedup table).
inline constexpr uint32_t SnapshotVersion = 2;
/// Oldest version this build still loads.
inline constexpr uint32_t SnapshotMinSupported = 1;

/// The decoded in-memory model of one snapshot. Immutable after load /
/// build; the query engine reads it from many threads without locks.
struct SnapshotData {
  static constexpr uint32_t NoMethod = 0xFFFFFFFFu;

  struct Type {
    std::string Name;
    uint8_t Kind = 0; ///< ir::TypeKind as a stable byte
    /// Sorted ids of every type this one is a subtype of (including
    /// itself) — the baked subtype closure, so cast queries never need
    /// the class hierarchy at serving time.
    std::vector<uint32_t> Ancestors;
  };
  struct Field {
    std::string Name;
    uint32_t Declaring = 0;
  };
  struct Method {
    std::string Signature;
    bool Reachable = false;
  };
  struct Var {
    std::string Name;
    uint32_t Method = 0;
    uint32_t PtsSet = 0; ///< index into PtsSets
  };
  struct Obj {
    uint32_t Type = 0;
    uint32_t Method = NoMethod; ///< allocating method; NoMethod for o_null
  };
  struct Site {
    uint8_t Kind = 0; ///< ir::CallKind as a stable byte
    uint32_t Enclosing = 0;
    std::vector<uint32_t> Callees; ///< sorted method ids (CI projection)
  };
  struct Cast {
    uint32_t From = 0; ///< operand variable
    uint32_t Target = 0;
    uint32_t Enclosing = 0;
  };

  uint32_t FormatVersion = SnapshotVersion;
  std::string AnalysisName;
  std::string HeapName;

  std::vector<Type> Types;
  std::vector<Field> Fields;
  std::vector<Method> Methods;
  std::vector<Var> Vars;
  std::vector<Obj> Objs;
  std::vector<Site> Sites;
  std::vector<Cast> Casts;
  /// Deduplicated CI points-to sets as sorted object-id vectors; index 0
  /// is always the empty set. buildSnapshot orders the table
  /// lexicographically (the empty set is the lexicographic minimum, so
  /// the index-0 invariant falls out), which is what makes the v2
  /// front-coded encoding effective; decoded v1 files may carry the
  /// table in any order.
  std::vector<std::vector<uint32_t>> PtsSets;

  /// Subtype test over the baked closure.
  bool isSubtype(uint32_t Sub, uint32_t Super) const;

  /// Same rendering as Program::describeObj ("oN<Type>@Method").
  std::string describeObj(uint32_t O) const;

  /// The stable query key of a variable: "MethodSignature::name".
  std::string varKey(uint32_t V) const {
    return Methods[Vars[V].Method].Signature + "::" + Vars[V].Name;
  }

  const std::vector<uint32_t> &ptsOfVar(uint32_t V) const {
    return PtsSets[Vars[V].PtsSet];
  }
};

/// Projects \p R into the snapshot model (no I/O).
SnapshotData buildSnapshot(const pta::PTAResult &R);

/// Content digest of a decoded snapshot: FNV-1a over its canonical
/// (current-version) encoding, so two snapshots answer queries
/// identically iff their digests match regardless of which wire version
/// they were loaded from. The serving tier stamps every response with
/// this value so clients can tell which published snapshot answered.
uint64_t snapshotDigest(const SnapshotData &D);

/// Serializes \p D into .mjsnap bytes (header + checksummed payload).
/// \p Version selects the wire format ([SnapshotMinSupported,
/// SnapshotVersion]); writing an older version exists for compatibility
/// tests and for feeding consumers that have not upgraded yet.
std::string encodeSnapshot(const SnapshotData &D,
                           uint32_t Version = SnapshotVersion);

/// Decodes and validates .mjsnap bytes. \returns null with a diagnostic
/// in \p Err on bad magic, unsupported version, checksum mismatch,
/// truncation, or cross-reference violations.
std::unique_ptr<SnapshotData> decodeSnapshot(std::string_view Bytes,
                                             std::string &Err);

/// build + encode + write. \returns false with a diagnostic in \p Err.
bool saveSnapshot(const pta::PTAResult &R, const std::string &Path,
                  std::string &Err);

/// read + decode. \returns null with a diagnostic in \p Err.
std::unique_ptr<SnapshotData> loadSnapshot(const std::string &Path,
                                           std::string &Err);

} // namespace mahjong::serve

#endif // MAHJONG_SERVE_SNAPSHOT_H
