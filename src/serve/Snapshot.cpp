//===-- serve/Snapshot.cpp - Persistent analysis snapshots -------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Snapshot.h"

#include "obs/Trace.h"
#include "support/Hashing.h"
#include "support/Interner.h"
#include "support/Varint.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

using namespace mahjong;
using namespace mahjong::serve;

namespace {

constexpr char Magic[6] = {'M', 'J', 'S', 'N', 'A', 'P'};

// Section ids. New sections may be added at any id without a version
// bump; readers skip ids they do not know.
enum SectionId : uint8_t {
  SecMeta = 1,
  SecTypes = 2,
  SecFields = 3,
  SecMethods = 4,
  SecVars = 5,
  SecObjs = 6,
  SecPtsSets = 7,
  SecCallGraph = 8,
  SecCasts = 9,
};

void putFixed32(std::string &Buf, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putFixed64(std::string &Buf, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

bool getFixed32(std::string_view Data, size_t &Pos, uint32_t &V) {
  if (Data.size() - Pos < 4)
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos++])) << (8 * I);
  return true;
}

bool getFixed64(std::string_view Data, size_t &Pos, uint64_t &V) {
  if (Data.size() - Pos < 8)
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(static_cast<uint8_t>(Data[Pos++])) << (8 * I);
  return true;
}

/// Appends a sorted id list as (count, first, gaps).
void putDeltaList(std::string &Buf, const std::vector<uint32_t> &Ids) {
  putVarint(Buf, Ids.size());
  uint32_t Prev = 0;
  for (size_t I = 0; I < Ids.size(); ++I) {
    putVarint(Buf, I == 0 ? Ids[0] : Ids[I] - Prev);
    Prev = Ids[I];
  }
}

bool readDeltaList(ByteReader &R, std::vector<uint32_t> &Out,
                   uint32_t Bound) {
  uint64_t N;
  if (!R.readVarint(N) || N > Bound || N > R.remaining())
    return false;
  Out.clear();
  Out.reserve(N);
  uint64_t Prev = 0;
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t D;
    if (!R.readVarint(D))
      return false;
    uint64_t V = I == 0 ? D : Prev + D;
    if (V >= Bound || (I > 0 && D == 0))
      return false; // out of range or not strictly ascending
    Out.push_back(static_cast<uint32_t>(V));
    Prev = V;
  }
  return true;
}

/// v2 dedup-table encoding: each set is front-coded against its
/// predecessor as (sharedPrefixLen, suffixLen, suffix gaps). The suffix
/// gaps continue the delta chain from the last shared element, so a set
/// that extends its neighbor by one object costs three varints total.
/// Presumes (but does not require) the lexicographically sorted table
/// buildSnapshot produces — correctness never depends on the order, only
/// the compression ratio does.
void putFrontCodedSets(std::string &Body,
                       const std::vector<std::vector<uint32_t>> &Sets) {
  putVarint(Body, Sets.size());
  const std::vector<uint32_t> *Prev = nullptr;
  for (const std::vector<uint32_t> &S : Sets) {
    size_t Shared = 0;
    if (Prev) {
      size_t Limit = std::min(Prev->size(), S.size());
      while (Shared < Limit && (*Prev)[Shared] == S[Shared])
        ++Shared;
    }
    putVarint(Body, Shared);
    putVarint(Body, S.size() - Shared);
    uint32_t PrevVal = Shared ? S[Shared - 1] : 0;
    for (size_t I = Shared; I < S.size(); ++I) {
      putVarint(Body, S[I] - PrevVal);
      PrevVal = S[I];
    }
    Prev = &S;
  }
}

void putSection(std::string &Payload, SectionId Id, const std::string &Body) {
  Payload.push_back(static_cast<char>(Id));
  putVarint(Payload, Body.size());
  Payload += Body;
}

} // namespace

bool SnapshotData::isSubtype(uint32_t Sub, uint32_t Super) const {
  const std::vector<uint32_t> &A = Types[Sub].Ancestors;
  return std::binary_search(A.begin(), A.end(), Super);
}

std::string SnapshotData::describeObj(uint32_t O) const {
  const Obj &Ob = Objs[O];
  std::string S = "o" + std::to_string(O) + "<" + Types[Ob.Type].Name + ">";
  if (Ob.Method != NoMethod)
    S += "@" + Methods[Ob.Method].Signature;
  return S;
}

SnapshotData mahjong::serve::buildSnapshot(const pta::PTAResult &R) {
  const ir::Program &P = R.P;
  SnapshotData D;
  D.AnalysisName = R.AnalysisName;
  D.HeapName = R.HeapName;

  D.Types.resize(P.numTypes());
  for (uint32_t T = 0; T < P.numTypes(); ++T) {
    SnapshotData::Type &Ty = D.Types[T];
    Ty.Name = P.type(TypeId(T)).Name;
    Ty.Kind = static_cast<uint8_t>(P.type(TypeId(T)).Kind);
    for (uint32_t U = 0; U < P.numTypes(); ++U)
      if (R.CH.isSubtype(TypeId(T), TypeId(U)))
        Ty.Ancestors.push_back(U);
  }

  D.Fields.resize(P.numFields());
  for (uint32_t F = 0; F < P.numFields(); ++F) {
    D.Fields[F].Name = P.field(FieldId(F)).Name;
    D.Fields[F].Declaring = P.field(FieldId(F)).Declaring.idx();
  }

  D.Methods.resize(P.numMethods());
  for (uint32_t M = 0; M < P.numMethods(); ++M) {
    D.Methods[M].Signature = P.method(MethodId(M)).Signature;
    D.Methods[M].Reachable = R.ReachableMethod[M];
  }

  D.Objs.resize(P.numObjs());
  for (uint32_t O = 0; O < P.numObjs(); ++O) {
    D.Objs[O].Type = P.obj(ObjId(O)).Type.idx();
    MethodId M = P.obj(ObjId(O)).Method;
    D.Objs[O].Method = M.isValid() ? M.idx() : SnapshotData::NoMethod;
  }

  // Dedup the CI points-to sets: each distinct set is stored once and
  // referenced by index. Index 0 is pinned to the empty set.
  struct PtsSetTag {};
  Interner<Id<PtsSetTag>, std::vector<uint32_t>, VectorHash> Sets;
  Sets.intern({});
  D.Vars.resize(P.numVars());
  for (uint32_t V = 0; V < P.numVars(); ++V) {
    D.Vars[V].Name = P.var(VarId(V)).Name;
    D.Vars[V].Method = P.var(VarId(V)).Method.idx();
    D.Vars[V].PtsSet = Sets.intern(R.ciVarPts(VarId(V)).toVector()).idx();
  }
  // Re-order the table lexicographically: adjacent sets then share the
  // longest possible prefixes, which is what the v2 front-coded encoding
  // compresses. The empty set is the lexicographic minimum, so it lands
  // on index 0 by construction (the format's pinned invariant).
  std::vector<uint32_t> Perm(Sets.size());
  for (uint32_t I = 0; I < Sets.size(); ++I)
    Perm[I] = I;
  std::sort(Perm.begin(), Perm.end(), [&Sets](uint32_t A, uint32_t B) {
    return Sets.get(Id<PtsSetTag>(A)) < Sets.get(Id<PtsSetTag>(B));
  });
  std::vector<uint32_t> NewIndex(Sets.size());
  D.PtsSets.resize(Sets.size());
  for (uint32_t New = 0; New < Sets.size(); ++New) {
    NewIndex[Perm[New]] = New;
    D.PtsSets[New] = Sets.get(Id<PtsSetTag>(Perm[New]));
  }
  for (SnapshotData::Var &V : D.Vars)
    V.PtsSet = NewIndex[V.PtsSet];

  D.Sites.resize(P.numCallSites());
  for (uint32_t S = 0; S < P.numCallSites(); ++S) {
    SnapshotData::Site &Site = D.Sites[S];
    Site.Kind = static_cast<uint8_t>(P.callSite(CallSiteId(S)).Kind);
    Site.Enclosing = P.callSite(CallSiteId(S)).Enclosing.idx();
    for (MethodId Callee : R.CG.calleesOf(CallSiteId(S)))
      Site.Callees.push_back(Callee.idx());
    std::sort(Site.Callees.begin(), Site.Callees.end());
  }

  D.Casts.resize(P.numCastSites());
  for (uint32_t C = 0; C < P.numCastSites(); ++C) {
    D.Casts[C].From = P.castSite(C).From.idx();
    D.Casts[C].Target = P.castSite(C).Target.idx();
    D.Casts[C].Enclosing = P.castSite(C).Enclosing.idx();
  }
  return D;
}

std::string mahjong::serve::encodeSnapshot(const SnapshotData &D,
                                           uint32_t Version) {
  assert(Version >= SnapshotMinSupported && Version <= SnapshotVersion &&
         "cannot encode an unknown snapshot version");
  std::string Payload, Body;

  Body.clear();
  putString(Body, D.AnalysisName);
  putString(Body, D.HeapName);
  putSection(Payload, SecMeta, Body);

  Body.clear();
  putVarint(Body, D.Types.size());
  for (const SnapshotData::Type &T : D.Types) {
    putString(Body, T.Name);
    Body.push_back(static_cast<char>(T.Kind));
    putDeltaList(Body, T.Ancestors);
  }
  putSection(Payload, SecTypes, Body);

  Body.clear();
  putVarint(Body, D.Fields.size());
  for (const SnapshotData::Field &F : D.Fields) {
    putString(Body, F.Name);
    putVarint(Body, F.Declaring);
  }
  putSection(Payload, SecFields, Body);

  Body.clear();
  putVarint(Body, D.Methods.size());
  for (const SnapshotData::Method &M : D.Methods) {
    putString(Body, M.Signature);
    Body.push_back(M.Reachable ? 1 : 0);
  }
  putSection(Payload, SecMethods, Body);

  Body.clear();
  putVarint(Body, D.Vars.size());
  for (const SnapshotData::Var &V : D.Vars) {
    putString(Body, V.Name);
    putVarint(Body, V.Method);
    putVarint(Body, V.PtsSet);
  }
  putSection(Payload, SecVars, Body);

  Body.clear();
  putVarint(Body, D.Objs.size());
  for (const SnapshotData::Obj &O : D.Objs) {
    putVarint(Body, O.Type);
    // NoMethod is stored as 0, valid method M as M+1, keeping the common
    // case a short varint.
    putVarint(Body, O.Method == SnapshotData::NoMethod ? 0 : O.Method + 1);
  }
  putSection(Payload, SecObjs, Body);

  Body.clear();
  if (Version >= 2) {
    putFrontCodedSets(Body, D.PtsSets);
  } else {
    putVarint(Body, D.PtsSets.size());
    for (const std::vector<uint32_t> &S : D.PtsSets)
      putDeltaList(Body, S);
  }
  putSection(Payload, SecPtsSets, Body);

  Body.clear();
  putVarint(Body, D.Sites.size());
  for (const SnapshotData::Site &S : D.Sites) {
    Body.push_back(static_cast<char>(S.Kind));
    putVarint(Body, S.Enclosing);
    putDeltaList(Body, S.Callees);
  }
  putSection(Payload, SecCallGraph, Body);

  Body.clear();
  putVarint(Body, D.Casts.size());
  for (const SnapshotData::Cast &C : D.Casts) {
    putVarint(Body, C.From);
    putVarint(Body, C.Target);
    putVarint(Body, C.Enclosing);
  }
  putSection(Payload, SecCasts, Body);

  std::string Out;
  Out.append(Magic, sizeof(Magic));
  putFixed32(Out, Version);
  putFixed64(Out, fnv1a64(Payload));
  putFixed64(Out, Payload.size());
  Out += Payload;
  return Out;
}

uint64_t mahjong::serve::snapshotDigest(const SnapshotData &D) {
  // Digesting the canonical current-version encoding makes the digest a
  // function of the decoded content alone: a v1 file and its v2
  // re-encoding digest identically, while any answer-visible difference
  // (a set, an edge, a name) changes it.
  return fnv1a64(encodeSnapshot(D, SnapshotVersion));
}

namespace {

/// Reads a table's entry count, rejecting counts that cannot possibly fit
/// in the section's remaining bytes (every entry encodes to >= 1 byte).
/// This bounds the table resize *before* any allocation, so a tiny file
/// claiming 2^40 entries fails cleanly instead of raising bad_alloc.
bool readCount(ByteReader &R, uint64_t &N) {
  return R.readVarint(N) && N <= R.remaining();
}

/// Per-section decoders. Each returns false on malformed bytes; range
/// checks that need other sections run after all sections are read.
bool decodeTypes(ByteReader &R, SnapshotData &D) {
  uint64_t N;
  if (!readCount(R, N))
    return false;
  D.Types.resize(N);
  for (SnapshotData::Type &T : D.Types) {
    std::string_view Kind;
    if (!R.readString(T.Name) || !R.readBytes(1, Kind))
      return false;
    T.Kind = static_cast<uint8_t>(Kind[0]);
    if (!readDeltaList(R, T.Ancestors, static_cast<uint32_t>(N)))
      return false;
  }
  return true;
}

bool decodeFields(ByteReader &R, SnapshotData &D) {
  uint64_t N;
  if (!readCount(R, N))
    return false;
  D.Fields.resize(N);
  for (SnapshotData::Field &F : D.Fields)
    if (!R.readString(F.Name) || !R.readU32(F.Declaring))
      return false;
  return true;
}

bool decodeMethods(ByteReader &R, SnapshotData &D) {
  uint64_t N;
  if (!readCount(R, N))
    return false;
  D.Methods.resize(N);
  for (SnapshotData::Method &M : D.Methods) {
    std::string_view Reach;
    if (!R.readString(M.Signature) || !R.readBytes(1, Reach))
      return false;
    M.Reachable = Reach[0] != 0;
  }
  return true;
}

bool decodeVars(ByteReader &R, SnapshotData &D) {
  uint64_t N;
  if (!readCount(R, N))
    return false;
  D.Vars.resize(N);
  for (SnapshotData::Var &V : D.Vars)
    if (!R.readString(V.Name) || !R.readU32(V.Method) ||
        !R.readU32(V.PtsSet))
      return false;
  return true;
}

bool decodeObjs(ByteReader &R, SnapshotData &D) {
  uint64_t N;
  if (!readCount(R, N))
    return false;
  D.Objs.resize(N);
  for (SnapshotData::Obj &O : D.Objs) {
    uint32_t M;
    if (!R.readU32(O.Type) || !R.readU32(M))
      return false;
    O.Method = M == 0 ? SnapshotData::NoMethod : M - 1;
  }
  return true;
}

bool decodePtsSets(ByteReader &R, SnapshotData &D, uint32_t NumObjs) {
  uint64_t N;
  if (!readCount(R, N))
    return false;
  D.PtsSets.resize(N);
  for (std::vector<uint32_t> &S : D.PtsSets)
    if (!readDeltaList(R, S, NumObjs))
      return false;
  return true;
}

/// v2 counterpart of decodePtsSets: reconstructs each front-coded set
/// from its predecessor's prefix plus the delta-coded suffix, enforcing
/// the same invariants readDeltaList does (strictly ascending, in range)
/// plus the front-coding ones (shared prefix no longer than the
/// predecessor; only the very first element of an unshared set may be 0).
bool decodePtsSetsV2(ByteReader &R, SnapshotData &D, uint32_t NumObjs) {
  uint64_t N;
  if (!readCount(R, N))
    return false;
  D.PtsSets.resize(N);
  const std::vector<uint32_t> *Prev = nullptr;
  for (std::vector<uint32_t> &S : D.PtsSets) {
    uint64_t Shared, SuffixN;
    if (!R.readVarint(Shared) || !R.readVarint(SuffixN))
      return false;
    if (Shared > (Prev ? Prev->size() : 0))
      return false; // prefix reaches past the predecessor
    if (SuffixN > R.remaining())
      return false; // every suffix element encodes to >= 1 byte
    S.reserve(Shared + SuffixN);
    if (Shared)
      S.assign(Prev->begin(), Prev->begin() + Shared);
    uint64_t PrevVal = Shared ? S.back() : 0;
    for (uint64_t I = 0; I < SuffixN; ++I) {
      uint64_t Gap;
      if (!R.readVarint(Gap))
        return false;
      if (Gap == 0 && !(I == 0 && Shared == 0))
        return false; // not strictly ascending
      uint64_t V = PrevVal + Gap;
      if (V >= NumObjs)
        return false;
      S.push_back(static_cast<uint32_t>(V));
      PrevVal = V;
    }
    Prev = &S;
  }
  return true;
}

bool decodeSites(ByteReader &R, SnapshotData &D, uint32_t NumMethods) {
  uint64_t N;
  if (!readCount(R, N))
    return false;
  D.Sites.resize(N);
  for (SnapshotData::Site &S : D.Sites) {
    std::string_view Kind;
    if (!R.readBytes(1, Kind) || !R.readU32(S.Enclosing) ||
        !readDeltaList(R, S.Callees, NumMethods))
      return false;
    S.Kind = static_cast<uint8_t>(Kind[0]);
  }
  return true;
}

bool decodeCasts(ByteReader &R, SnapshotData &D) {
  uint64_t N;
  if (!readCount(R, N))
    return false;
  D.Casts.resize(N);
  for (SnapshotData::Cast &C : D.Casts)
    if (!R.readU32(C.From) || !R.readU32(C.Target) ||
        !R.readU32(C.Enclosing))
      return false;
  return true;
}

/// Cross-section reference validation, run once everything is decoded.
/// Deliberately re-checks the id lists that decoding already bounded:
/// decode-time bounds only see the tables decoded *before* the list, so
/// this pass is the actual guarantee that no reference dangles.
const char *validateRefs(const SnapshotData &D) {
  for (const SnapshotData::Type &T : D.Types)
    for (uint32_t A : T.Ancestors)
      if (A >= D.Types.size())
        return "type ancestor out of range";
  for (const SnapshotData::Field &F : D.Fields)
    if (F.Declaring >= D.Types.size())
      return "field declaring-type out of range";
  for (const SnapshotData::Var &V : D.Vars)
    if (V.Method >= D.Methods.size() || V.PtsSet >= D.PtsSets.size())
      return "variable reference out of range";
  for (const SnapshotData::Obj &O : D.Objs)
    if (O.Type >= D.Types.size() ||
        (O.Method != SnapshotData::NoMethod && O.Method >= D.Methods.size()))
      return "object reference out of range";
  for (const std::vector<uint32_t> &S : D.PtsSets)
    for (uint32_t O : S)
      if (O >= D.Objs.size())
        return "points-to set object out of range";
  for (const SnapshotData::Site &S : D.Sites) {
    if (S.Enclosing >= D.Methods.size())
      return "call-site enclosing method out of range";
    for (uint32_t Callee : S.Callees)
      if (Callee >= D.Methods.size())
        return "call-site callee out of range";
  }
  for (const SnapshotData::Cast &C : D.Casts)
    if (C.From >= D.Vars.size() || C.Target >= D.Types.size() ||
        C.Enclosing >= D.Methods.size())
      return "cast-site reference out of range";
  if (D.PtsSets.empty() || !D.PtsSets[0].empty())
    return "points-to set 0 must be the empty set";
  return nullptr;
}

} // namespace

std::unique_ptr<SnapshotData>
mahjong::serve::decodeSnapshot(std::string_view Bytes, std::string &Err) {
  auto Fail = [&Err](const std::string &Msg) {
    Err = "invalid snapshot: " + Msg;
    return nullptr;
  };
  if (Bytes.size() < sizeof(Magic) ||
      Bytes.compare(0, sizeof(Magic), Magic, sizeof(Magic)) != 0)
    return Fail("bad magic (not a .mjsnap file)");
  size_t Pos = sizeof(Magic);
  uint32_t Version;
  uint64_t Checksum, PayloadSize;
  if (!getFixed32(Bytes, Pos, Version) || !getFixed64(Bytes, Pos, Checksum) ||
      !getFixed64(Bytes, Pos, PayloadSize))
    return Fail("truncated header");
  if (Version < SnapshotMinSupported || Version > SnapshotVersion)
    return Fail("format version " + std::to_string(Version) +
                " unsupported (this build reads " +
                std::to_string(SnapshotMinSupported) + ".." +
                std::to_string(SnapshotVersion) + ")");
  if (PayloadSize != Bytes.size() - Pos)
    return Fail("payload size mismatch (truncated or trailing bytes)");
  std::string_view Payload = Bytes.substr(Pos);
  if (fnv1a64(Payload) != Checksum)
    return Fail("payload checksum mismatch (corrupted file)");

  auto D = std::make_unique<SnapshotData>();
  D->FormatVersion = Version;
  bool Seen[10] = {};
  ByteReader Sections(Payload);
  while (!Sections.atEnd()) {
    std::string_view SecId, Body;
    uint64_t Len;
    if (!Sections.readBytes(1, SecId) || !Sections.readVarint(Len) ||
        !Sections.readBytes(Len, Body))
      return Fail("truncated section table");
    uint8_t Id = static_cast<uint8_t>(SecId[0]);
    // A repeated section would silently overwrite a table other sections
    // were already bound-checked against; reject it outright.
    if (Id < sizeof(Seen) && Seen[Id])
      return Fail("duplicate section " + std::to_string(Id));
    ByteReader R(Body);
    bool Ok = true;
    switch (Id) {
    case SecMeta:
      Ok = R.readString(D->AnalysisName) && R.readString(D->HeapName);
      break;
    case SecTypes:
      Ok = decodeTypes(R, *D);
      break;
    case SecFields:
      Ok = decodeFields(R, *D);
      break;
    case SecMethods:
      Ok = decodeMethods(R, *D);
      break;
    case SecVars:
      Ok = decodeVars(R, *D);
      break;
    case SecObjs:
      Ok = decodeObjs(R, *D);
      break;
    case SecPtsSets:
      Ok = Version >= 2
               ? decodePtsSetsV2(R, *D, static_cast<uint32_t>(D->Objs.size()))
               : decodePtsSets(R, *D, static_cast<uint32_t>(D->Objs.size()));
      break;
    case SecCallGraph:
      Ok = decodeSites(R, *D, static_cast<uint32_t>(D->Methods.size()));
      break;
    case SecCasts:
      Ok = decodeCasts(R, *D);
      break;
    default:
      continue; // unknown section: forward-compatible skip
    }
    if (!Ok)
      return Fail("malformed section " + std::to_string(Id));
    if (Id < sizeof(Seen))
      Seen[Id] = true;
  }
  for (uint8_t Id : {SecMeta, SecTypes, SecFields, SecMethods, SecVars,
                     SecObjs, SecPtsSets, SecCallGraph, SecCasts})
    if (!Seen[Id])
      return Fail("missing section " + std::to_string(Id));
  // Sections reference each other by index; Objs/PtsSets/CallGraph are
  // bound-checked during decoding against whatever was decoded *first*,
  // so re-validate everything now that all tables exist.
  if (const char *Msg = validateRefs(*D))
    return Fail(Msg);
  return D;
}

bool mahjong::serve::saveSnapshot(const pta::PTAResult &R,
                                  const std::string &Path,
                                  std::string &Err) {
  obs::ScopedSpan Span("snapshot-encode");
  std::string Bytes = encodeSnapshot(buildSnapshot(R));
  Span.arg("bytes", Bytes.size());
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out || !Out.write(Bytes.data(), Bytes.size())) {
    Err = "cannot write '" + Path + "'";
    return false;
  }
  return true;
}

std::unique_ptr<SnapshotData>
mahjong::serve::loadSnapshot(const std::string &Path, std::string &Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Err = "cannot open '" + Path + "'";
    return nullptr;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  obs::ScopedSpan Span("snapshot-decode");
  return decodeSnapshot(Buf.str(), Err);
}
