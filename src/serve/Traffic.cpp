//===-- serve/Traffic.cpp - Workload spec and traffic driver -----------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Traffic.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <thread>

using namespace mahjong;
using namespace mahjong::serve;

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

namespace {

std::string_view trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

bool parseUnsigned(std::string_view V, uint64_t &Out) {
  if (V.empty())
    return false;
  uint64_t R = 0;
  for (char C : V) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    R = R * 10 + (C - '0');
  }
  Out = R;
  return true;
}

bool parseDouble(std::string_view V, double &Out) {
  std::string S(V);
  char *End = nullptr;
  Out = std::strtod(S.c_str(), &End);
  return End && *End == '\0' && End != S.c_str() && Out >= 0;
}

} // namespace

bool mahjong::serve::parseWorkloadSpec(std::string_view Text,
                                       QueryWorkload &W, std::string &Err) {
  std::istringstream In{std::string(Text)};
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string_view L = trim(Line);
    if (auto Hash = L.find('#'); Hash != std::string_view::npos)
      L = trim(L.substr(0, Hash));
    if (L.empty())
      continue;
    auto Eq = L.find('=');
    if (Eq == std::string_view::npos) {
      Err = "spec line " + std::to_string(LineNo) + ": expected key = value";
      return false;
    }
    std::string Key(trim(L.substr(0, Eq)));
    std::string_view Value = trim(L.substr(Eq + 1));

    auto Fail = [&](const char *Why) {
      Err = "spec line " + std::to_string(LineNo) + ": " + Why + " for '" +
            Key + "'";
      return false;
    };
    uint64_t U;
    double F;
    if (Key == "clients") {
      if (!parseUnsigned(Value, U) || U == 0)
        return Fail("need a positive integer");
      W.Clients = static_cast<unsigned>(U);
    } else if (Key == "queries_per_client") {
      if (!parseUnsigned(Value, U) || U == 0)
        return Fail("need a positive integer");
      W.QueriesPerClient = U;
    } else if (Key == "duration_seconds") {
      if (!parseDouble(Value, F))
        return Fail("need a non-negative number");
      W.DurationSeconds = F;
    } else if (Key == "seed") {
      if (!parseUnsigned(Value, U))
        return Fail("need an integer");
      W.Seed = U;
    } else if (Key == "zipf_s") {
      if (!parseDouble(Value, F))
        return Fail("need a non-negative number");
      W.ZipfS = F;
    } else if (Key == "workers") {
      if (!parseUnsigned(Value, U))
        return Fail("need an integer");
      W.Workers = static_cast<unsigned>(U);
    } else if (Key == "max_batch") {
      if (!parseUnsigned(Value, U) || U == 0)
        return Fail("need a positive integer");
      W.MaxBatch = static_cast<unsigned>(U);
    } else if (Key.rfind("weight_", 0) == 0) {
      if (!parseUnsigned(Value, U))
        return Fail("need an integer");
      unsigned V = static_cast<unsigned>(U);
      if (Key == "weight_points_to")
        W.WeightPointsTo = V;
      else if (Key == "weight_alias")
        W.WeightAlias = V;
      else if (Key == "weight_devirt")
        W.WeightDevirt = V;
      else if (Key == "weight_cast_may_fail")
        W.WeightCastMayFail = V;
      else if (Key == "weight_callers")
        W.WeightCallers = V;
      else if (Key == "weight_callees")
        W.WeightCallees = V;
      else {
        Err = "spec line " + std::to_string(LineNo) + ": unknown key '" +
              Key + "'";
        return false;
      }
    } else {
      Err = "spec line " + std::to_string(LineNo) + ": unknown key '" + Key +
            "'";
      return false;
    }
  }
  if (W.WeightPointsTo + W.WeightAlias + W.WeightDevirt +
          W.WeightCastMayFail + W.WeightCallers + W.WeightCallees ==
      0) {
    Err = "all query-mix weights are zero";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Query generation
//===----------------------------------------------------------------------===//

QueryGenerator::QueryGenerator(const SnapshotData &D, const QueryWorkload &W,
                               unsigned Client)
    : D(D), W(W), RngState(splitmix64(W.Seed) ^ splitmix64(Client + 1)) {
  TotalWeight = W.WeightPointsTo + W.WeightAlias + W.WeightDevirt +
                W.WeightCastMayFail + W.WeightCallers + W.WeightCallees;
  if (W.ZipfS > 0) {
    // Unnormalized cumulative Zipf weights up to the largest key pool;
    // sampling over a smaller pool of size N uses the prefix [0, N).
    size_t MaxPool = std::max({D.Vars.size(), D.Sites.size(),
                               D.Casts.size(), D.Methods.size()});
    ZipfCdf.reserve(MaxPool);
    double Sum = 0;
    for (size_t I = 0; I < MaxPool; ++I) {
      Sum += 1.0 / std::pow(static_cast<double>(I + 1), W.ZipfS);
      ZipfCdf.push_back(Sum);
    }
  }
}

uint64_t QueryGenerator::nextRand() {
  RngState = splitmix64(RngState);
  return RngState;
}

size_t QueryGenerator::pickRank(size_t N) {
  if (N == 0)
    return 0;
  uint64_t R = nextRand();
  if (ZipfCdf.empty())
    return R % N;
  double U = (R >> 11) * (1.0 / 9007199254740992.0) * ZipfCdf[N - 1];
  auto It = std::upper_bound(ZipfCdf.begin(), ZipfCdf.begin() + N, U);
  return std::min<size_t>(It - ZipfCdf.begin(), N - 1);
}

std::string QueryGenerator::next() {
  unsigned Pick = static_cast<unsigned>(nextRand() % TotalWeight);
  // On a snapshot with no variables at all (an empty program) there is
  // no valid key of any kind; emit a fixed parse-valid query that the
  // engine answers as unknown-variable rather than indexing Vars[0].
  auto VarKey = [this]() -> std::string {
    if (D.Vars.empty())
      return "<no-method>::<no-var>";
    return D.varKey(pickRank(D.Vars.size()));
  };
  // Fall through the mix in declaration order; kinds whose key pool is
  // empty degrade to points-to so the stream never stalls.
  if (Pick < W.WeightPointsTo)
    return "points-to " + VarKey();
  Pick -= W.WeightPointsTo;
  if (Pick < W.WeightAlias)
    return "alias " + VarKey() + " " + VarKey();
  Pick -= W.WeightAlias;
  if (Pick < W.WeightDevirt) {
    if (D.Sites.empty())
      return "points-to " + VarKey();
    return "devirt " + std::to_string(pickRank(D.Sites.size()));
  }
  Pick -= W.WeightDevirt;
  if (Pick < W.WeightCastMayFail) {
    if (D.Casts.empty())
      return "points-to " + VarKey();
    return "cast-may-fail " + std::to_string(pickRank(D.Casts.size()));
  }
  Pick -= W.WeightCastMayFail;
  if (D.Methods.empty())
    return "points-to " + VarKey();
  const std::string &Sig =
      D.Methods[pickRank(D.Methods.size())].Signature;
  if (Pick < W.WeightCallers)
    return "callers " + Sig;
  return "callees " + Sig;
}

//===----------------------------------------------------------------------===//
// Traffic replay
//===----------------------------------------------------------------------===//

std::string TrafficReport::toJson() const {
  std::ostringstream OS;
  OS << "{\"queries\": " << Queries << ", \"failed\": " << Failed
     << ", \"seconds\": " << Seconds << ", \"qps\": " << QPS
     << ", \"p50_us\": " << P50Micros << ", \"p95_us\": " << P95Micros
     << ", \"p99_us\": " << P99Micros << ", \"cache_hits\": " << Cache.Hits
     << ", \"cache_misses\": " << Cache.Misses
     << ", \"cache_evictions\": " << Cache.Evictions
     << ", \"batches\": " << Server.Batches
     << ", \"max_batch\": " << Server.MaxBatchObserved << "}";
  return OS.str();
}

TrafficReport mahjong::serve::runTraffic(const QueryEngine &Engine,
                                         const QueryWorkload &W) {
  using Clock = std::chrono::steady_clock;
  QueryServer Server(Engine, W.Workers, W.MaxBatch);

  struct ClientLog {
    std::vector<uint64_t> LatenciesNs;
    uint64_t Failed = 0;
  };
  std::vector<ClientLog> Logs(W.Clients);
  std::vector<std::thread> Clients;
  Clients.reserve(W.Clients);

  Clock::time_point Start = Clock::now();
  Clock::time_point Deadline =
      W.DurationSeconds > 0
          ? Start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(W.DurationSeconds))
          : Clock::time_point::max();

  for (unsigned C = 0; C < W.Clients; ++C) {
    Clients.emplace_back([&, C] {
      QueryGenerator Gen(Engine.data(), W, C);
      ClientLog &Log = Logs[C];
      if (W.DurationSeconds <= 0)
        Log.LatenciesNs.reserve(W.QueriesPerClient);
      for (uint64_t I = 0;; ++I) {
        if (W.DurationSeconds > 0) {
          if (Clock::now() >= Deadline)
            break;
        } else if (I >= W.QueriesPerClient) {
          break;
        }
        Clock::time_point T0 = Clock::now();
        QueryResult R = Server.submit(Gen.next()).get();
        Clock::time_point T1 = Clock::now();
        Log.LatenciesNs.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
                .count());
        Log.Failed += !R.Ok;
      }
    });
  }
  for (std::thread &T : Clients)
    T.join();
  double Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();

  std::vector<uint64_t> All;
  TrafficReport Rep;
  for (const ClientLog &Log : Logs) {
    All.insert(All.end(), Log.LatenciesNs.begin(), Log.LatenciesNs.end());
    Rep.Failed += Log.Failed;
  }
  std::sort(All.begin(), All.end());
  Rep.Queries = All.size();
  Rep.Seconds = Seconds;
  Rep.QPS = Seconds > 0 ? Rep.Queries / Seconds : 0;
  auto Pct = [&All](double Q) -> double {
    if (All.empty())
      return 0;
    size_t Idx = std::min(All.size() - 1,
                          static_cast<size_t>(Q * All.size()));
    return All[Idx] / 1000.0;
  };
  Rep.P50Micros = Pct(0.50);
  Rep.P95Micros = Pct(0.95);
  Rep.P99Micros = Pct(0.99);
  Rep.Cache = Engine.cacheStats();
  Rep.Server = Server.stats();
  return Rep;
}
