//===-- serve/Traffic.cpp - Workload spec and traffic driver -----------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Traffic.h"

#include "support/Hashing.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

using namespace mahjong;
using namespace mahjong::serve;

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

namespace {

std::string_view trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

bool parseUnsigned(std::string_view V, uint64_t &Out) {
  if (V.empty())
    return false;
  uint64_t R = 0;
  for (char C : V) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    R = R * 10 + (C - '0');
  }
  Out = R;
  return true;
}

bool parseDouble(std::string_view V, double &Out) {
  std::string S(V);
  char *End = nullptr;
  Out = std::strtod(S.c_str(), &End);
  return End && *End == '\0' && End != S.c_str() && Out >= 0;
}

} // namespace

bool mahjong::serve::parseWorkloadSpec(std::string_view Text,
                                       QueryWorkload &W, std::string &Err) {
  std::istringstream In{std::string(Text)};
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string_view L = trim(Line);
    if (auto Hash = L.find('#'); Hash != std::string_view::npos)
      L = trim(L.substr(0, Hash));
    if (L.empty())
      continue;
    auto Eq = L.find('=');
    if (Eq == std::string_view::npos) {
      Err = "spec line " + std::to_string(LineNo) + ": expected key = value";
      return false;
    }
    std::string Key(trim(L.substr(0, Eq)));
    std::string_view Value = trim(L.substr(Eq + 1));

    auto Fail = [&](const char *Why) {
      Err = "spec line " + std::to_string(LineNo) + ": " + Why + " for '" +
            Key + "'";
      return false;
    };
    uint64_t U;
    double F;
    if (Key == "clients") {
      if (!parseUnsigned(Value, U) || U == 0)
        return Fail("need a positive integer");
      W.Clients = static_cast<unsigned>(U);
    } else if (Key == "queries_per_client") {
      if (!parseUnsigned(Value, U) || U == 0)
        return Fail("need a positive integer");
      W.QueriesPerClient = U;
    } else if (Key == "duration_seconds") {
      if (!parseDouble(Value, F))
        return Fail("need a non-negative number");
      W.DurationSeconds = F;
    } else if (Key == "seed") {
      if (!parseUnsigned(Value, U))
        return Fail("need an integer");
      W.Seed = U;
    } else if (Key == "zipf_s") {
      if (!parseDouble(Value, F))
        return Fail("need a non-negative number");
      W.ZipfS = F;
    } else if (Key == "workers") {
      if (!parseUnsigned(Value, U))
        return Fail("need an integer");
      W.Workers = static_cast<unsigned>(U);
    } else if (Key == "max_batch") {
      if (!parseUnsigned(Value, U) || U == 0)
        return Fail("need a positive integer");
      W.MaxBatch = static_cast<unsigned>(U);
    } else if (Key == "heartbeat_seconds") {
      if (!parseDouble(Value, F))
        return Fail("need a non-negative number");
      W.HeartbeatSeconds = F;
    } else if (Key == "churn_every") {
      if (!parseUnsigned(Value, U))
        return Fail("need an integer");
      W.ChurnEvery = U;
    } else if (Key == "ramp_seconds") {
      if (!parseDouble(Value, F))
        return Fail("need a non-negative number");
      W.RampSeconds = F;
    } else if (Key.rfind("weight_", 0) == 0) {
      if (!parseUnsigned(Value, U))
        return Fail("need an integer");
      unsigned V = static_cast<unsigned>(U);
      if (Key == "weight_points_to")
        W.WeightPointsTo = V;
      else if (Key == "weight_alias")
        W.WeightAlias = V;
      else if (Key == "weight_devirt")
        W.WeightDevirt = V;
      else if (Key == "weight_cast_may_fail")
        W.WeightCastMayFail = V;
      else if (Key == "weight_callers")
        W.WeightCallers = V;
      else if (Key == "weight_callees")
        W.WeightCallees = V;
      else {
        Err = "spec line " + std::to_string(LineNo) + ": unknown key '" +
              Key + "'";
        return false;
      }
    } else {
      Err = "spec line " + std::to_string(LineNo) + ": unknown key '" + Key +
            "'";
      return false;
    }
  }
  if (W.WeightPointsTo + W.WeightAlias + W.WeightDevirt +
          W.WeightCastMayFail + W.WeightCallers + W.WeightCallees ==
      0) {
    Err = "all query-mix weights are zero";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Query generation
//===----------------------------------------------------------------------===//

QueryGenerator::QueryGenerator(const SnapshotData &D, const QueryWorkload &W,
                               unsigned Client)
    : D(D), W(W), RngState(splitmix64(W.Seed) ^ splitmix64(Client + 1)) {
  TotalWeight = W.WeightPointsTo + W.WeightAlias + W.WeightDevirt +
                W.WeightCastMayFail + W.WeightCallers + W.WeightCallees;
  if (W.ZipfS > 0) {
    // Unnormalized cumulative Zipf weights up to the largest key pool;
    // sampling over a smaller pool of size N uses the prefix [0, N).
    size_t MaxPool = std::max({D.Vars.size(), D.Sites.size(),
                               D.Casts.size(), D.Methods.size()});
    ZipfCdf.reserve(MaxPool);
    double Sum = 0;
    for (size_t I = 0; I < MaxPool; ++I) {
      Sum += 1.0 / std::pow(static_cast<double>(I + 1), W.ZipfS);
      ZipfCdf.push_back(Sum);
    }
  }
}

uint64_t QueryGenerator::nextRand() {
  RngState = splitmix64(RngState);
  return RngState;
}

size_t QueryGenerator::pickRank(size_t N) {
  if (N == 0)
    return 0;
  uint64_t R = nextRand();
  if (ZipfCdf.empty())
    return R % N;
  double U = (R >> 11) * (1.0 / 9007199254740992.0) * ZipfCdf[N - 1];
  auto It = std::upper_bound(ZipfCdf.begin(), ZipfCdf.begin() + N, U);
  return std::min<size_t>(It - ZipfCdf.begin(), N - 1);
}

std::string QueryGenerator::next(QueryKind *KindOut) {
  unsigned Pick = static_cast<unsigned>(nextRand() % TotalWeight);
  auto Emit = [KindOut](QueryKind K, std::string Text) {
    if (KindOut)
      *KindOut = K;
    return Text;
  };
  // On a snapshot with no variables at all (an empty program) there is
  // no valid key of any kind; emit a fixed parse-valid query that the
  // engine answers as unknown-variable rather than indexing Vars[0].
  auto VarKey = [this]() -> std::string {
    if (D.Vars.empty())
      return "<no-method>::<no-var>";
    return D.varKey(pickRank(D.Vars.size()));
  };
  // Fall through the mix in declaration order; kinds whose key pool is
  // empty degrade to points-to so the stream never stalls.
  if (Pick < W.WeightPointsTo)
    return Emit(QueryKind::PointsTo, "points-to " + VarKey());
  Pick -= W.WeightPointsTo;
  if (Pick < W.WeightAlias)
    return Emit(QueryKind::Alias, "alias " + VarKey() + " " + VarKey());
  Pick -= W.WeightAlias;
  if (Pick < W.WeightDevirt) {
    if (D.Sites.empty())
      return Emit(QueryKind::PointsTo, "points-to " + VarKey());
    return Emit(QueryKind::Devirt,
                "devirt " + std::to_string(pickRank(D.Sites.size())));
  }
  Pick -= W.WeightDevirt;
  if (Pick < W.WeightCastMayFail) {
    if (D.Casts.empty())
      return Emit(QueryKind::PointsTo, "points-to " + VarKey());
    return Emit(QueryKind::CastMayFail,
                "cast-may-fail " +
                    std::to_string(pickRank(D.Casts.size())));
  }
  Pick -= W.WeightCastMayFail;
  if (D.Methods.empty())
    return Emit(QueryKind::PointsTo, "points-to " + VarKey());
  const std::string &Sig =
      D.Methods[pickRank(D.Methods.size())].Signature;
  if (Pick < W.WeightCallers)
    return Emit(QueryKind::Callers, "callers " + Sig);
  return Emit(QueryKind::Callees, "callees " + Sig);
}

//===----------------------------------------------------------------------===//
// Traffic replay
//===----------------------------------------------------------------------===//

std::string TrafficReport::toJson() const {
  std::ostringstream OS;
  OS << "{\"queries\": " << Queries << ", \"failed\": " << Failed
     << ", \"seconds\": " << Seconds << ", \"qps\": " << QPS
     << ", \"p50_us\": " << P50Micros << ", \"p95_us\": " << P95Micros
     << ", \"p99_us\": " << P99Micros << ", \"cache_hits\": " << Cache.Hits
     << ", \"cache_misses\": " << Cache.Misses
     << ", \"cache_evictions\": " << Cache.Evictions
     << ", \"cache_retired\": " << Cache.Retired
     << ", \"batches\": " << Server.Batches
     << ", \"max_batch\": " << Server.MaxBatchObserved << ", \"kinds\": {";
  bool First = true;
  for (unsigned K = 0; K < NumDataQueryKinds; ++K) {
    const KindLatency &KL = Kinds[K];
    if (KL.Count == 0)
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << "\"" << queryKindName(static_cast<QueryKind>(K))
       << "\": {\"count\": " << KL.Count << ", \"p50_us\": " << KL.P50Micros
       << ", \"p95_us\": " << KL.P95Micros
       << ", \"p99_us\": " << KL.P99Micros << "}";
  }
  OS << "}}";
  return OS.str();
}

TrafficReport mahjong::serve::runTraffic(const QueryEngine &Engine,
                                         const QueryWorkload &W,
                                         std::ostream *Progress) {
  using Clock = std::chrono::steady_clock;
  QueryServer Server(Engine, W.Workers, W.MaxBatch);

  // Latency is recorded straight into shared histograms — thread-safe
  // (relaxed atomic counts) and O(1) memory regardless of query volume,
  // and the same reservoir the heartbeat thread reads live.
  LogHistogram OverallNs;
  LogHistogram PerKindNs[NumDataQueryKinds];
  std::atomic<uint64_t> Completed{0}, Failed{0};

  std::vector<std::thread> Clients;
  Clients.reserve(W.Clients);

  Clock::time_point Start = Clock::now();
  Clock::time_point Deadline =
      W.DurationSeconds > 0
          ? Start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(W.DurationSeconds))
          : Clock::time_point::max();

  for (unsigned C = 0; C < W.Clients; ++C) {
    Clients.emplace_back([&, C] {
      QueryGenerator Gen(Engine.data(), W, C);
      for (uint64_t I = 0;; ++I) {
        if (W.DurationSeconds > 0) {
          if (Clock::now() >= Deadline)
            break;
        } else if (I >= W.QueriesPerClient) {
          break;
        }
        QueryKind Kind = QueryKind::PointsTo;
        std::string Text = Gen.next(&Kind);
        Clock::time_point T0 = Clock::now();
        QueryResult R = Server.submit(std::move(Text)).get();
        Clock::time_point T1 = Clock::now();
        uint64_t Ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
                .count());
        OverallNs.record(Ns);
        PerKindNs[static_cast<unsigned>(Kind)].record(Ns);
        Completed.fetch_add(1, std::memory_order_relaxed);
        Failed.fetch_add(!R.Ok, std::memory_order_relaxed);
      }
    });
  }

  // The heartbeat thread reads the shared counters the clients are still
  // writing — by design: progress lines must reflect the live run.
  std::mutex HeartbeatMu;
  std::condition_variable HeartbeatCv;
  bool Done = false;
  std::thread Heartbeat;
  if (Progress && W.HeartbeatSeconds > 0) {
    Heartbeat = std::thread([&] {
      auto Period = std::chrono::duration<double>(W.HeartbeatSeconds);
      std::unique_lock<std::mutex> Lock(HeartbeatMu);
      while (!HeartbeatCv.wait_for(Lock, Period, [&] { return Done; })) {
        double T =
            std::chrono::duration<double>(Clock::now() - Start).count();
        uint64_t N = Completed.load(std::memory_order_relaxed);
        std::ostringstream Line;
        Line << "[serve-bench] t=" << T << "s queries=" << N
             << " qps=" << (T > 0 ? N / T : 0) << "\n";
        *Progress << Line.str() << std::flush;
      }
    });
  }

  for (std::thread &T : Clients)
    T.join();
  if (Heartbeat.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(HeartbeatMu);
      Done = true;
    }
    HeartbeatCv.notify_all();
    Heartbeat.join();
  }
  double Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();

  TrafficReport Rep;
  Rep.Queries = Completed.load(std::memory_order_relaxed);
  Rep.Failed = Failed.load(std::memory_order_relaxed);
  Rep.Seconds = Seconds;
  Rep.QPS = Seconds > 0 ? Rep.Queries / Seconds : 0;
  Rep.P50Micros = OverallNs.percentile(0.50) / 1000.0;
  Rep.P95Micros = OverallNs.percentile(0.95) / 1000.0;
  Rep.P99Micros = OverallNs.percentile(0.99) / 1000.0;
  for (unsigned K = 0; K < NumDataQueryKinds; ++K) {
    TrafficReport::KindLatency &KL = Rep.Kinds[K];
    KL.Count = PerKindNs[K].count();
    if (KL.Count == 0)
      continue;
    KL.P50Micros = PerKindNs[K].percentile(0.50) / 1000.0;
    KL.P95Micros = PerKindNs[K].percentile(0.95) / 1000.0;
    KL.P99Micros = PerKindNs[K].percentile(0.99) / 1000.0;
  }
  Rep.Cache = Engine.cacheStats();
  Rep.Server = Server.stats();
  return Rep;
}
