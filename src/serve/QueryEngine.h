//===-- serve/QueryEngine.h - Concurrent points-to queries ----*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A serving session over one loaded snapshot: parse typed queries,
/// answer them from the immutable SnapshotData, and cache answers in a
/// bounded, LRU-evicting table whose *read path takes no locks* — safe
/// for any number of concurrent callers.
///
/// Query grammar (one query per line; see docs/serving.md):
///
///   query  := "points-to" var          — objects a variable may point to
///           | "alias" var var          — may the two variables alias?
///           | "devirt" NUM             — callee methods of call site NUM
///           | "cast-may-fail" NUM      — may cast site NUM fail?
///           | "callers" method         — methods with a call edge into m
///           | "callees" method         — methods m may call
///           | "stats"                  — live engine metrics (Prometheus
///                                        text lines; never cached)
///   var    := method "::" NAME        e.g. Main.main/0::x
///   method := signature               e.g. A.m/1
///
/// Concurrency contract: the snapshot is immutable after construction;
/// cache hits are acquire-loads of published entries plus one relaxed
/// LRU-clock store; only inserts (misses) take the internal write mutex.
/// Evicted entries are unlinked but retired rather than freed, so a
/// reader holding a stale pointer can never observe a dangling entry;
/// retired memory is reclaimed when the engine is destroyed. The retire
/// store is capped (a small multiple of the capacity): once spent, new
/// results are served uncached instead of allocated, and error results
/// (unknown entities — an unbounded key space) are never cached, so a
/// long-running engine's memory stays bounded under any query stream.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_SERVE_QUERYENGINE_H
#define MAHJONG_SERVE_QUERYENGINE_H

#include "serve/Snapshot.h"

#include "support/Histogram.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mahjong::serve {

enum class QueryKind : uint8_t {
  PointsTo,
  Alias,
  Devirt,
  CastMayFail,
  Callers,
  Callees,
  Stats, ///< introspection verb; not a data query, never cached
};

/// The data-query kinds (everything before Stats) — the dimension of the
/// per-kind latency histograms in QueryEngine and the traffic driver.
inline constexpr unsigned NumDataQueryKinds = 6;

/// The query verb naming \p K ("points-to", "alias", ...).
const char *queryKindName(QueryKind K);

/// One parsed query. A and B are entity keys per the grammar above.
struct Query {
  QueryKind Kind = QueryKind::PointsTo;
  std::string A;
  std::string B; ///< second variable; alias only
};

/// Parses one textual query. \returns false with a diagnostic in \p Err.
bool parseQuery(std::string_view Text, Query &Q, std::string &Err);

/// The answer to one query.
struct QueryResult {
  bool Ok = false;
  std::string Error;              ///< set when !Ok
  std::vector<std::string> Items; ///< points-to / devirt / callers / callees
  bool HasVerdict = false;        ///< alias / cast-may-fail carry a boolean
  bool Verdict = false;

  /// One-line rendering ("true", "false", or comma-joined items).
  std::string toString() const;
};

/// Bounded concurrent query cache: open-addressed buckets of atomically
/// published entries, approximate-LRU eviction via a global clock.
class QueryCache {
public:
  /// \p Capacity is rounded up to a power of two bucket count.
  explicit QueryCache(size_t Capacity);
  ~QueryCache();

  QueryCache(const QueryCache &) = delete;
  QueryCache &operator=(const QueryCache &) = delete;

  /// Lock-free lookup; null on miss. The returned pointer stays valid for
  /// the cache's lifetime (entries are retired, never freed early).
  const QueryResult *lookup(std::string_view Key) const;

  /// Publishes \p Key -> \p R, evicting the least-recently-used entry of
  /// the probe window when it is full. Idempotent under races.
  void insert(std::string_view Key, QueryResult R);

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
    uint64_t Retired = 0; ///< entries in the retire store (live included)
  };
  Stats stats() const;

private:
  struct Entry;
  static constexpr unsigned ProbeWindow = 8;

  std::vector<std::atomic<Entry *>> Buckets;
  uint64_t Mask;

  std::mutex WriteMutex;
  /// Owns every entry ever made (live ones included). Bounded by
  /// RetiredCap: once spent, inserts become no-ops and misses are served
  /// uncached, so cache memory cannot grow without bound.
  std::vector<std::unique_ptr<Entry>> Retired;
  size_t RetiredCap;
  /// Retired.size() mirrored for lock-free stats() reads.
  std::atomic<uint64_t> RetiredCount{0};

  mutable std::atomic<uint64_t> Clock{0};
  mutable std::atomic<uint64_t> Hits{0}, Misses{0};
  std::atomic<uint64_t> Insertions{0}, Evictions{0};
};

/// A query session over one snapshot. Immutable after construction except
/// for the internal cache; run() is safe to call from many threads.
class QueryEngine {
public:
  explicit QueryEngine(std::shared_ptr<const SnapshotData> Data,
                       size_t CacheCapacity = 1 << 14);

  const SnapshotData &data() const { return *Data; }

  /// Parse + cached evaluate. Parse failures and unknown-entity errors
  /// are reported in the result but never cached; only successful
  /// answers are answered through (and inserted into) the cache.
  QueryResult run(std::string_view QueryText) const;

  /// Evaluates \p Q with no cache involvement.
  QueryResult evaluate(const Query &Q) const;

  QueryCache::Stats cacheStats() const { return Cache.stats(); }

  /// End-to-end run() latency (cache hits included) of one data-query
  /// kind, in nanoseconds. `stats` runs are not recorded.
  const LogHistogram &latencyHistogram(QueryKind K) const {
    return KindLatencyNs[static_cast<unsigned>(K)];
  }

private:
  QueryResult pointsTo(const std::string &VarKey) const;
  QueryResult statsResult() const;
  QueryResult alias(const std::string &KeyA, const std::string &KeyB) const;
  QueryResult devirt(const std::string &SiteIdx) const;
  QueryResult castMayFail(const std::string &CastIdx) const;
  QueryResult callersOf(const std::string &Sig) const;
  QueryResult calleesOf(const std::string &Sig) const;

  bool lookupVar(const std::string &VarKey, uint32_t &V,
                 std::string &Err) const;

  std::shared_ptr<const SnapshotData> Data;
  std::unordered_map<std::string, uint32_t> VarByKey;
  std::unordered_map<std::string, uint32_t> MethodBySig;
  /// Per method: sorted unique callee methods over its call sites, and
  /// sorted unique caller methods — precomputed so the call-graph queries
  /// are O(answer) at serving time.
  std::unordered_map<uint32_t, std::vector<uint32_t>> CalleesByMethod;
  std::unordered_map<uint32_t, std::vector<uint32_t>> CallersByMethod;
  mutable QueryCache Cache;
  mutable LogHistogram KindLatencyNs[NumDataQueryKinds];
};

} // namespace mahjong::serve

#endif // MAHJONG_SERVE_QUERYENGINE_H
