//===-- serve/Server.cpp - Batching request broker ---------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <vector>

using namespace mahjong;
using namespace mahjong::serve;

QueryServer::QueryServer(const QueryEngine &Engine, unsigned Workers,
                         unsigned MaxBatch)
    : Engine(Engine), MaxBatch(MaxBatch == 0 ? 1 : MaxBatch),
      Pool(Workers) {}

QueryServer::~QueryServer() { drain(); }

std::future<QueryResult> QueryServer::submit(std::string QueryText) {
  Request Req;
  Req.Text = std::move(QueryText);
  std::future<QueryResult> Fut = Req.Done.get_future();
  bool SpawnDrainer = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Pending.push_back(std::move(Req));
    // One drainer per pool worker at most: more would only contend on
    // the queue; fewer leaves workers idle under load.
    if (ActiveDrainers < Pool.numThreads()) {
      ++ActiveDrainers;
      SpawnDrainer = true;
    }
  }
  Requests.fetch_add(1, std::memory_order_relaxed);
  if (SpawnDrainer)
    Pool.enqueue([this] { pump(); });
  return Fut;
}

void QueryServer::pump() {
  std::vector<Request> Batch;
  for (;;) {
    Batch.clear();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      while (!Pending.empty() && Batch.size() < MaxBatch) {
        Batch.push_back(std::move(Pending.front()));
        Pending.pop_front();
      }
      if (Batch.empty()) {
        --ActiveDrainers;
        return;
      }
    }
    Batches.fetch_add(1, std::memory_order_relaxed);
    uint64_t Size = Batch.size();
    uint64_t Prev = MaxObserved.load(std::memory_order_relaxed);
    while (Size > Prev &&
           !MaxObserved.compare_exchange_weak(Prev, Size,
                                              std::memory_order_relaxed)) {
    }
    for (Request &Req : Batch)
      Req.Done.set_value(Engine.run(Req.Text));
  }
}

void QueryServer::drain() { Pool.wait(); }

ServerStats QueryServer::stats() const {
  ServerStats S;
  S.Requests = Requests.load(std::memory_order_relaxed);
  S.Batches = Batches.load(std::memory_order_relaxed);
  S.MaxBatchObserved = MaxObserved.load(std::memory_order_relaxed);
  return S;
}
