//===-- obs/Trace.cpp - Phase tracing with per-thread lanes ------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <algorithm>
#include <fstream>
#include <iomanip>

using namespace mahjong;
using namespace mahjong::obs;

namespace {

std::atomic<TraceSink *> GlobalSink{nullptr};
std::atomic<uint64_t> NextGeneration{1};

/// Per-thread lane cache. (Owner, Gen) must both match the current sink
/// before Lane is dereferenced, so a stale pointer into a destroyed sink
/// — even one whose address was reused — is never followed.
struct LaneCache {
  TraceSink *Owner = nullptr;
  uint64_t Gen = 0;
  TraceSink::Lane *Lane = nullptr;
};
thread_local LaneCache TLLane;

uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void writeEscaped(std::ostream &OS, const char *S) {
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (static_cast<unsigned char>(C) < 0x20)
      OS << ' ';
    else
      OS << C;
  }
}

} // namespace

TraceSink::TraceSink()
    : Gen(NextGeneration.fetch_add(1, std::memory_order_relaxed)),
      EpochNs(steadyNowNs()) {}

uint64_t TraceSink::nowNs() const { return steadyNowNs() - EpochNs; }

TraceSink::Lane &TraceSink::laneForCurrentThread() {
  if (TLLane.Owner == this && TLLane.Gen == Gen)
    return *TLLane.Lane;
  std::lock_guard<std::mutex> Lock(Mu);
  Lanes.emplace_back();
  Lane &L = Lanes.back();
  L.Tid = static_cast<uint32_t>(Lanes.size() - 1);
  TLLane = {this, Gen, &L};
  return L;
}

size_t TraceSink::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const Lane &L : Lanes)
    N += L.Events.size();
  return N;
}

size_t TraceSink::laneCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Lanes.size();
}

void TraceSink::write(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  OS << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool First = true;
  auto Sep = [&] {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n  ";
  };
  // Lane 0 is whichever thread recorded its first span first — in the
  // CLI that is the main thread; pool workers take the later lanes.
  for (const Lane &L : Lanes) {
    Sep();
    OS << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << L.Tid << ", \"args\": {\"name\": \"lane-" << L.Tid << "\"}}";
  }
  OS << std::fixed << std::setprecision(3);
  for (const Lane &L : Lanes) {
    // Events are pushed at span *destruction*; re-sort by start time so
    // viewers and trace-validate see each lane in chronological order.
    std::vector<const Event *> Sorted;
    Sorted.reserve(L.Events.size());
    for (const Event &E : L.Events)
      Sorted.push_back(&E);
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const Event *A, const Event *B) {
                       if (A->StartNs != B->StartNs)
                         return A->StartNs < B->StartNs;
                       // Equal starts: the longer span is the outer one.
                       return A->DurNs > B->DurNs;
                     });
    for (const Event *E : Sorted) {
      Sep();
      OS << "{\"name\": \"";
      writeEscaped(OS, E->Name);
      OS << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << L.Tid
         << ", \"ts\": " << E->StartNs / 1000.0
         << ", \"dur\": " << E->DurNs / 1000.0;
      if (!E->Args.empty())
        OS << ", \"args\": {" << E->Args << "}";
      OS << "}";
    }
  }
  OS << "\n]}\n";
}

bool TraceSink::writeFile(const std::string &Path, std::string &Err) const {
  std::ofstream OS(Path);
  if (!OS) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  write(OS);
  OS.flush();
  if (!OS) {
    Err = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

void mahjong::obs::installTraceSink(TraceSink *S) {
  GlobalSink.store(S, std::memory_order_release);
}

TraceSink *mahjong::obs::currentTraceSink() {
  return GlobalSink.load(std::memory_order_relaxed);
}
