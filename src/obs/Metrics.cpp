//===-- obs/Metrics.cpp - Named counters, gauges, histograms -----------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cctype>
#include <cstdio>
#include <sstream>

using namespace mahjong;
using namespace mahjong::obs;

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

LogHistogram &MetricsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms
             .emplace(std::string(Name), std::make_unique<LogHistogram>())
             .first;
  return *It->second;
}

namespace {

/// Shortest-round-trip-ish double rendering: %.6g is stable across
/// platforms for the magnitudes we emit and never prints locale commas.
std::string fmtDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

std::string promName(const std::string &Name) {
  std::string S = "mahjong_";
  for (char C : Name)
    S += (std::isalnum(static_cast<unsigned char>(C)) || C == '_') ? C : '_';
  return S;
}

} // namespace

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    OS << (First ? "\n" : ",\n") << "    \"" << Name << "\": " << C->value();
    First = false;
  }
  OS << (First ? "},\n" : "\n  },\n");
  OS << "  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    OS << (First ? "\n" : ",\n")
       << "    \"" << Name << "\": " << fmtDouble(G->value());
    First = false;
  }
  OS << (First ? "},\n" : "\n  },\n");
  OS << "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    OS << (First ? "\n" : ",\n") << "    \"" << Name << "\": {\n";
    OS << "      \"count\": " << H->count() << ",\n";
    OS << "      \"sum\": " << H->sum() << ",\n";
    OS << "      \"max\": " << H->max() << ",\n";
    OS << "      \"mean\": " << fmtDouble(H->mean()) << ",\n";
    OS << "      \"p50\": " << H->percentile(0.50) << ",\n";
    OS << "      \"p95\": " << H->percentile(0.95) << ",\n";
    OS << "      \"p99\": " << H->percentile(0.99) << ",\n";
    OS << "      \"buckets\": [";
    bool FirstB = true;
    for (unsigned I = 0; I < LogHistogram::NumBuckets; ++I)
      if (uint64_t N = H->countAt(I)) {
        OS << (FirstB ? "" : ", ") << "[" << LogHistogram::bucketLow(I)
           << ", " << N << "]";
        FirstB = false;
      }
    OS << "]\n    }";
    First = false;
  }
  OS << (First ? "}\n" : "\n  }\n") << "}\n";
  return OS.str();
}

std::string MetricsRegistry::toPrometheus() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  for (const auto &[Name, C] : Counters) {
    std::string N = promName(Name);
    OS << "# TYPE " << N << " counter\n" << N << " " << C->value() << "\n";
  }
  for (const auto &[Name, G] : Gauges) {
    std::string N = promName(Name);
    OS << "# TYPE " << N << " gauge\n"
       << N << " " << fmtDouble(G->value()) << "\n";
  }
  for (const auto &[Name, H] : Histograms) {
    std::string N = promName(Name);
    OS << "# TYPE " << N << " histogram\n";
    uint64_t Cum = 0;
    for (unsigned I = 0; I < LogHistogram::NumBuckets; ++I)
      if (uint64_t C = H->countAt(I)) {
        Cum += C;
        OS << N << "_bucket{le=\"" << LogHistogram::bucketHigh(I) << "\"} "
           << Cum << "\n";
      }
    OS << N << "_bucket{le=\"+Inf\"} " << H->count() << "\n";
    OS << N << "_sum " << H->sum() << "\n";
    OS << N << "_count " << H->count() << "\n";
  }
  return OS.str();
}
