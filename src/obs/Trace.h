//===-- obs/Trace.h - Phase tracing with per-thread lanes -----*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A span tracer for the analysis pipeline. Scoped spans record complete
/// ("X") events — name, start, duration, optional integer args — into
/// per-thread lanes of a process-global TraceSink, which serializes to
/// Chrome trace_event JSON (open in chrome://tracing or
/// https://ui.perfetto.dev). See docs/observability.md.
///
/// Cost model: with no sink installed a ScopedSpan is one relaxed atomic
/// load in the constructor and one pointer test in the destructor —
/// instrumentation stays in hot paths permanently (enforced by
/// bench/bench_obs_overhead.cpp). With a sink installed, a span costs two
/// steady_clock reads plus one vector push into a buffer only its own
/// thread touches, so the ParallelSolver / HeapModeler fan-outs trace
/// TSan-clean with one lane per worker.
///
/// Concurrency contract: install a sink before launching traced work and
/// uninstall it after the work quiesces (thread pools joined or idle);
/// write() must not run concurrently with span recording. Lanes register
/// lazily under a mutex on each thread's first span per sink generation;
/// a generation counter makes cached lane pointers safe against a sink
/// being destroyed and another allocated at the same address.
///
/// Span names must be string literals (or otherwise outlive the sink).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_OBS_TRACE_H
#define MAHJONG_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace mahjong::obs {

/// Collects spans from all threads; serializes Chrome trace JSON.
class TraceSink {
public:
  /// One completed span. Times are nanoseconds since the sink's epoch.
  struct Event {
    const char *Name;
    uint64_t StartNs;
    uint64_t DurNs;
    std::string Args; ///< preformatted JSON members ("\"k\":1"), may be empty
  };

  /// One thread's event buffer. Only the owning thread appends.
  struct Lane {
    std::vector<Event> Events;
    uint32_t Tid = 0;
  };

  TraceSink();
  TraceSink(const TraceSink &) = delete;
  TraceSink &operator=(const TraceSink &) = delete;

  /// Nanoseconds since this sink was created.
  uint64_t nowNs() const;

  /// The calling thread's lane, registering it on first use. The
  /// returned reference is stable for the sink's lifetime.
  Lane &laneForCurrentThread();

  /// Serializes everything recorded so far as Chrome trace_event JSON.
  /// Call only after traced work has quiesced.
  void write(std::ostream &OS) const;

  /// write() to \p Path. \returns false with a diagnostic in \p Err.
  bool writeFile(const std::string &Path, std::string &Err) const;

  /// Total spans recorded across all lanes (quiesced threads only).
  size_t eventCount() const;
  size_t laneCount() const;

  uint64_t generation() const { return Gen; }

private:
  const uint64_t Gen; ///< process-unique, guards thread-local lane caches
  const uint64_t EpochNs;
  mutable std::mutex Mu;
  std::deque<Lane> Lanes; ///< deque: lane addresses are stable
};

/// Installs \p S as the process-global sink (null uninstalls). Must not
/// race with span construction; see the concurrency contract above.
void installTraceSink(TraceSink *S);

/// The installed sink, or null. One relaxed load.
TraceSink *currentTraceSink();

inline bool tracingEnabled() { return currentTraceSink() != nullptr; }

/// Records one span over its lexical scope into the current sink. A
/// no-op (one relaxed load, one branch) when no sink is installed.
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name)
      : Name(Name), Sink(currentTraceSink()) {
    if (Sink)
      StartNs = Sink->nowNs();
  }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// Attaches an integer argument shown in the trace viewer.
  void arg(const char *Key, uint64_t Value) {
    if (!Sink)
      return;
    if (!Args.empty())
      Args += ',';
    Args += '"';
    Args += Key;
    Args += "\":";
    Args += std::to_string(Value);
  }

  ~ScopedSpan() {
    if (!Sink)
      return;
    TraceSink::Lane &L = Sink->laneForCurrentThread();
    L.Events.push_back(
        {Name, StartNs, Sink->nowNs() - StartNs, std::move(Args)});
  }

private:
  const char *Name;
  TraceSink *Sink;
  uint64_t StartNs = 0;
  std::string Args;
};

// Statement-position convenience: MAHJONG_SPAN("phase-name");
#define MAHJONG_OBS_CONCAT2(A, B) A##B
#define MAHJONG_OBS_CONCAT(A, B) MAHJONG_OBS_CONCAT2(A, B)
#define MAHJONG_SPAN(NAME)                                                    \
  ::mahjong::obs::ScopedSpan MAHJONG_OBS_CONCAT(ObsSpan_, __LINE__) { NAME }

} // namespace mahjong::obs

#endif // MAHJONG_OBS_TRACE_H
