//===-- obs/Metrics.h - Named counters, gauges, histograms ----*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A metrics registry: named monotonic counters, gauges, and
/// log-bucketed histograms (support/Histogram.h), exported as stable
/// sorted-key JSON and as Prometheus text exposition. The registry is the
/// common surface behind `analyze --metrics-out/--stats-json` and the
/// serve-side `stats` query verb; pta::exportStats (PointerAnalysis.h)
/// publishes every PTAStats field through it.
///
/// Thread safety: name lookup takes a mutex; the returned references are
/// stable for the registry's lifetime and their mutators are atomic, so
/// the pattern "resolve once, update from many threads" is safe.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_OBS_METRICS_H
#define MAHJONG_OBS_METRICS_H

#include "support/Histogram.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace mahjong::obs {

/// A monotonic (by convention) unsigned counter.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  void set(uint64_t N) { V.store(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A point-in-time floating-point value (phase seconds, occupancy, ...).
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0};
};

/// Owns metrics by name. Export iterates std::map, so both formats list
/// names in sorted order — byte-stable for golden tests and diffs.
class MetricsRegistry {
public:
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  LogHistogram &histogram(std::string_view Name);

  /// One JSON object, pretty-printed one entry per line:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with each
  /// section's keys sorted. Histograms carry count/sum/max/mean,
  /// p50/p95/p99 midpoint estimates, and non-empty [lower_bound, count]
  /// bucket pairs.
  std::string toJson() const;

  /// Prometheus text exposition (# TYPE lines, cumulative `le` buckets,
  /// _sum and _count series). Metric names are sanitized ('.' -> '_').
  std::string toPrometheus() const;

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>> Histograms;
};

} // namespace mahjong::obs

#endif // MAHJONG_OBS_METRICS_H
