//===-- pta/CSManager.cpp ---------------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/CSManager.h"

// CSManager is header-only today; this TU anchors the library.
