//===-- pta/FactsExport.h - Doop-style fact dumps -------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports an analysis solution as tab-separated relations, the format
/// the Doop ecosystem (and downstream tooling like Tai-e's comparisons)
/// consumes: VarPointsTo, InstanceFieldPointsTo, StaticFieldPointsTo,
/// CallGraphEdge, and Reachable. All rows are emitted in a deterministic
/// order so diffs between runs are meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_FACTSEXPORT_H
#define MAHJONG_PTA_FACTSEXPORT_H

#include "pta/PointerAnalysis.h"

#include <ostream>

namespace mahjong::pta {

/// VarPointsTo(method, var, heapObject) — context-insensitively
/// projected, one row per (var, base object) pair.
void writeVarPointsTo(const PTAResult &R, std::ostream &OS);

/// InstanceFieldPointsTo(baseObject, field, heapObject), CI-projected.
void writeInstanceFieldPointsTo(const PTAResult &R, std::ostream &OS);

/// StaticFieldPointsTo(class, field, heapObject).
void writeStaticFieldPointsTo(const PTAResult &R, std::ostream &OS);

/// CallGraphEdge(callerMethod, siteIndex, calleeMethod), CI-projected.
void writeCallGraphEdge(const PTAResult &R, std::ostream &OS);

/// Reachable(method) — CI-reachable methods.
void writeReachable(const PTAResult &R, std::ostream &OS);

/// Writes all five relations into directory \p Dir as <name>.facts.
/// \returns true on success (false: some file could not be created).
bool writeAllFacts(const PTAResult &R, const std::string &Dir);

} // namespace mahjong::pta

#endif // MAHJONG_PTA_FACTSEXPORT_H
