//===-- pta/ShardPlan.h - Weight-aware wave partitioning ------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wave-parallel engine's scheduling arithmetic, kept as free
/// functions so the partitioning and the imbalance semantics are unit-
/// testable without running a solver (tests/pta/ShardPlanTest.cpp).
///
/// A sorted wave is cut into contiguous *sub-chunks* of near-equal
/// estimated sweep cost, not near-equal node count: per-node cost is
/// estimated from out-degree (emission records to write) plus the pending
/// delta's element count (set work to diff and union). Both are O(1)
/// reads, so planning a wave is one linear pass plus a prefix sum.
///
/// Because the sub-chunks are contiguous ranges of the *sorted* wave,
/// any cut — equal-count, equal-weight, or otherwise — yields the same
/// merge fold order (buffer order reconstructs wave order), so weights
/// affect only load balance, never the result. That is the invariant the
/// digest-equivalence suite pins across thread counts.
///
/// Imbalance is reported per wave over the *planned* per-worker work
/// (measured sweep cost — pops + delta elements diffed + records
/// emitted — of each worker's initial sub-chunk range, before stealing
/// moves anything): (max - mean) / mean in percent. Waves are aggregated into a work-weighted mean — so a
/// thousand two-node waves cannot drown out one big skewed wave, and
/// vice versa — plus a max over waves carrying at least MinWaveWorkForMax
/// units, so trivial waves (where imbalance is meaningless) never set the
/// high-water mark.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_SHARDPLAN_H
#define MAHJONG_PTA_SHARDPLAN_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mahjong::pta {

/// Estimated cost of sweeping one node: one pop, plus one emission record
/// per outgoing edge, plus one unit per pending element (diff + union are
/// linear in the delta). The constant keeps empty stale entries from
/// collapsing a chunk to zero weight.
inline uint64_t sweepWeight(size_t OutDegree, size_t PendingSize) {
  return 1 + static_cast<uint64_t>(OutDegree) +
         static_cast<uint64_t>(PendingSize);
}

/// Cuts [0, Weights.size()) into \p NumChunks contiguous ranges of near-
/// equal cumulative weight. Fills \p Bounds with NumChunks + 1 monotone
/// boundaries (Bounds[0] == 0, Bounds[NumChunks] == N); chunk c spans
/// [Bounds[c], Bounds[c+1]) and may be empty when a single item outweighs
/// an ideal chunk. \p Prefix is caller-owned scratch (reused across waves
/// to keep steady-state allocations flat).
inline void weightedChunkBounds(const std::vector<uint64_t> &Weights,
                                size_t NumChunks,
                                std::vector<size_t> &Bounds,
                                std::vector<uint64_t> &Prefix) {
  size_t N = Weights.size();
  NumChunks = std::max<size_t>(NumChunks, 1);
  Prefix.resize(N + 1);
  Prefix[0] = 0;
  for (size_t I = 0; I < N; ++I)
    Prefix[I + 1] = Prefix[I] + Weights[I];
  uint64_t Total = Prefix[N];
  Bounds.resize(NumChunks + 1);
  Bounds[0] = 0;
  Bounds[NumChunks] = N;
  for (size_t C = 1; C < NumChunks; ++C) {
    // Greedy re-targeting: each cut aims for an equal share of the weight
    // *remaining* after the previous cut, so one over-heavy item inflates
    // only its own chunk instead of starving every chunk after it.
    uint64_t Done = Prefix[Bounds[C - 1]];
    uint64_t Remaining = Total - Done;
    uint64_t ChunksLeft = NumChunks - (C - 1);
    uint64_t Target = Done + (Remaining + ChunksLeft / 2) / ChunksLeft;
    size_t I = static_cast<size_t>(
        std::lower_bound(Prefix.begin(), Prefix.end(), Target) -
        Prefix.begin());
    Bounds[C] = std::clamp(I, Bounds[C - 1], N);
  }
}

/// Convenience overload for tests.
inline std::vector<size_t>
weightedChunkBounds(const std::vector<uint64_t> &Weights, size_t NumChunks) {
  std::vector<size_t> Bounds;
  std::vector<uint64_t> Prefix;
  weightedChunkBounds(Weights, NumChunks, Bounds, Prefix);
  return Bounds;
}

/// (max - mean) / mean over \p Work, in percent; 0 for fewer than two
/// workers or no work at all (imbalance is undefined there, and reporting
/// 0 keeps single-threaded runs honest).
inline double imbalancePct(const std::vector<uint64_t> &Work) {
  if (Work.size() < 2)
    return 0;
  uint64_t Total = 0, Max = 0;
  for (uint64_t W : Work) {
    Total += W;
    Max = std::max(Max, W);
  }
  if (Total == 0)
    return 0;
  double Mean = static_cast<double>(Total) / static_cast<double>(Work.size());
  return (static_cast<double>(Max) - Mean) / Mean * 100.0;
}

/// Aggregates per-wave imbalance into the run-level pair the stats
/// export: a work-weighted mean and a max over non-trivial waves.
struct ImbalanceAccumulator {
  /// A wave must carry at least this much total work (pops + records) to
  /// be eligible for the max — a two-node wave on eight workers is 700%
  /// "imbalanced" by arithmetic but meaningless as a scheduling signal.
  static constexpr uint64_t MinWaveWorkForMax = 256;

  double MaxPct = 0;
  double WeightedSum = 0;
  uint64_t TotalWork = 0;

  void addWave(const std::vector<uint64_t> &PerWorkerWork) {
    uint64_t WaveWork = 0;
    for (uint64_t W : PerWorkerWork)
      WaveWork += W;
    if (WaveWork == 0)
      return;
    double Pct = imbalancePct(PerWorkerWork);
    WeightedSum += Pct * static_cast<double>(WaveWork);
    TotalWork += WaveWork;
    if (WaveWork >= MinWaveWorkForMax)
      MaxPct = std::max(MaxPct, Pct);
  }

  double meanPct() const {
    return TotalWork ? WeightedSum / static_cast<double>(TotalWork) : 0;
  }
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_SHARDPLAN_H
