//===-- pta/FactsExport.cpp - Doop-style fact dumps ---------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/FactsExport.h"

#include <fstream>
#include <map>
#include <set>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

void mahjong::pta::writeVarPointsTo(const PTAResult &R, std::ostream &OS) {
  const Program &P = R.P;
  // Deterministic: iterate variables densely, project contexts.
  for (uint32_t VI = 0; VI < P.numVars(); ++VI) {
    VarId V = VarId(VI);
    PointsToSet Pts = R.ciVarPts(V);
    for (uint32_t Raw : Pts)
      OS << P.method(P.var(V).Method).Signature << '\t' << P.var(V).Name
         << '\t' << P.describeObj(ObjId(Raw)) << '\n';
  }
}

void mahjong::pta::writeInstanceFieldPointsTo(const PTAResult &R,
                                              std::ostream &OS) {
  const Program &P = R.P;
  // Project cs-object fields onto base objects, deterministically.
  std::map<std::pair<uint32_t, uint32_t>, std::set<uint32_t>> Rows;
  R.forEachFieldPts([&](CSObjId O, FieldId F, const PointsToSet &Pts) {
    ObjId Base = R.CSM.objOf(O).second;
    auto &Targets = Rows[{Base.idx(), F.idx()}];
    for (uint32_t Raw : Pts)
      Targets.insert(R.baseObjOf(Raw).idx());
  });
  for (const auto &[Key, Targets] : Rows)
    for (uint32_t T : Targets)
      OS << P.describeObj(ObjId(Key.first)) << '\t'
         << P.field(FieldId(Key.second)).Name << '\t'
         << P.describeObj(ObjId(T)) << '\n';
}

void mahjong::pta::writeStaticFieldPointsTo(const PTAResult &R,
                                            std::ostream &OS) {
  const Program &P = R.P;
  // Node ids reflect solver discovery order, which varies with worklist
  // scheduling; bucket rows by field so the dump is byte-stable.
  std::map<uint32_t, std::set<uint32_t>> Rows;
  for (uint32_t I = 0; I < R.Nodes.size(); ++I) {
    uint64_t Key = R.Nodes.get(PtrNodeId(I));
    if (PTAResult::kindOf(Key) != PTAResult::KindStatic ||
        R.Pts[I].empty())
      continue;
    auto &Targets = Rows[PTAResult::staticFieldOf(Key).idx()];
    for (uint32_t Raw : R.Pts[I])
      Targets.insert(R.baseObjOf(Raw).idx());
  }
  for (const auto &[FI, Targets] : Rows)
    for (uint32_t T : Targets)
      OS << P.type(P.field(FieldId(FI)).Declaring).Name << '\t'
         << P.field(FieldId(FI)).Name << '\t' << P.describeObj(ObjId(T))
         << '\n';
}

void mahjong::pta::writeCallGraphEdge(const PTAResult &R,
                                      std::ostream &OS) {
  const Program &P = R.P;
  for (CallSiteId Site : R.CG.callSitesWithEdges()) {
    std::set<std::string> Callees;
    for (MethodId Callee : R.CG.calleesOf(Site))
      Callees.insert(P.method(Callee).Signature);
    for (const std::string &Callee : Callees)
      OS << P.method(P.callSite(Site).Enclosing).Signature << '\t'
         << Site.idx() << '\t' << Callee << '\n';
  }
}

void mahjong::pta::writeReachable(const PTAResult &R, std::ostream &OS) {
  for (uint32_t I = 0; I < R.P.numMethods(); ++I)
    if (R.ReachableMethod[I])
      OS << R.P.method(MethodId(I)).Signature << '\n';
}

bool mahjong::pta::writeAllFacts(const PTAResult &R,
                                 const std::string &Dir) {
  struct Relation {
    const char *Name;
    void (*Write)(const PTAResult &, std::ostream &);
  } Relations[] = {
      {"VarPointsTo", writeVarPointsTo},
      {"InstanceFieldPointsTo", writeInstanceFieldPointsTo},
      {"StaticFieldPointsTo", writeStaticFieldPointsTo},
      {"CallGraphEdge", writeCallGraphEdge},
      {"Reachable", writeReachable},
  };
  for (const Relation &Rel : Relations) {
    std::ofstream Out(Dir + "/" + Rel.Name + ".facts");
    if (!Out)
      return false;
    Rel.Write(R, Out);
  }
  return true;
}
