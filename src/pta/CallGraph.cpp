//===-- pta/CallGraph.cpp - On-the-fly call graph ---------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/CallGraph.h"

#include <algorithm>

using namespace mahjong;
using namespace mahjong::pta;

bool CallGraph::addEdge(ContextId CallerCtx, CallSiteId Site,
                        ContextId CalleeCtx, MethodId Callee) {
  uint64_t CSSiteKey =
      (static_cast<uint64_t>(CallerCtx.idx()) << 32) | Site.idx();
  uint64_t CSCalleeKey =
      (static_cast<uint64_t>(CalleeCtx.idx()) << 32) | Callee.idx();
  uint32_t SiteId = CSSites.intern(CSSiteKey).idx();
  uint32_t CalleeId = CSCallees.intern(CSCalleeKey).idx();
  bool New =
      CSEdges.insert((static_cast<uint64_t>(SiteId) << 32) | CalleeId).second;
  if (!New)
    return false;
  uint64_t CIKey = (static_cast<uint64_t>(Site.idx()) << 32) | Callee.idx();
  if (CIEdges.insert(CIKey).second)
    SiteTargets[Site.idx()].push_back(Callee);
  return true;
}

const std::vector<MethodId> &CallGraph::calleesOf(CallSiteId Site) const {
  static const std::vector<MethodId> None;
  auto It = SiteTargets.find(Site.idx());
  return It == SiteTargets.end() ? None : It->second;
}

std::vector<CallSiteId> CallGraph::callSitesWithEdges() const {
  std::vector<CallSiteId> Sites;
  Sites.reserve(SiteTargets.size());
  for (const auto &[Site, Targets] : SiteTargets)
    Sites.push_back(CallSiteId(Site));
  std::sort(Sites.begin(), Sites.end());
  return Sites;
}
