//===-- pta/SolverCore.cpp - Shared solver statement machinery --------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/SolverCore.h"

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

SolverCore::SolverCore(const Program &P, const ClassHierarchy &CH,
                       const HeapAbstraction &Heap, ContextSelector &Selector,
                       PTAResult &R, double TimeBudgetSeconds)
    : P(P), CH(CH), Heap(Heap), Selector(Selector), R(R),
      TimeBudget(TimeBudgetSeconds), Usage(P.numVars()) {
  // Build the structural per-variable usage index once: which loads,
  // stores and calls dereference each variable as their base.
  for (uint32_t MIdx = 0; MIdx < P.numMethods(); ++MIdx) {
    for (const Stmt &S : P.method(MethodId(MIdx)).Body) {
      switch (S.Kind) {
      case StmtKind::Load:
        Usage[S.Base.idx()].Loads.push_back(&S);
        break;
      case StmtKind::Store:
        Usage[S.Base.idx()].Stores.push_back(&S);
        break;
      case StmtKind::Invoke: {
        const CallSiteInfo &CS = P.callSite(S.Site);
        if (CS.Kind != CallKind::Static)
          Usage[CS.Base.idx()].Calls.push_back(S.Site);
        break;
      }
      default:
        break;
      }
    }
  }
  // The context-insensitive null object exists in every run. Its type is
  // registered at the start of run() — registerCSObj is virtual and must
  // not be dispatched from the constructor.
  CSNullObjRaw = R.CSM.csObj(R.Ctxs.empty(), Program::nullObj()).idx();
}

void SolverCore::registerCSObj(uint32_t CSObjRaw, TypeId T) {
  if (CSObjRaw >= CSObjType.size()) {
    if (CSObjRaw >= CSObjType.capacity())
      CSObjType.reserve(
          std::max<size_t>(CSObjRaw + 1, CSObjType.capacity() * 2));
    CSObjType.resize(CSObjRaw + 1, TypeId());
  }
  CSObjType[CSObjRaw] = T;
}

PtrNodeId SolverCore::node(uint64_t Key) {
  PtrNodeId N = R.Nodes.intern(Key);
  ensureNodeStorage(N.idx());
  return N;
}

PtrNodeId SolverCore::varNode(ContextId C, VarId V) {
  return node(PTAResult::varKey(R.CSM.csVar(C, V)));
}

PtrNodeId SolverCore::fieldNode(CSObjId O, FieldId F) {
  return node(PTAResult::fieldKey(O, F));
}

PtrNodeId SolverCore::staticNode(FieldId F) {
  return node(PTAResult::staticKey(F));
}

MethodId SolverCore::dispatch(TypeId RecvType, CallSiteId Site) {
  uint64_t Key = (static_cast<uint64_t>(RecvType.idx()) << 32) | Site.idx();
  auto It = DispatchCache.find(Key);
  if (It != DispatchCache.end())
    return It->second;
  const CallSiteInfo &CS = P.callSite(Site);
  MethodId Callee = CS.Kind == CallKind::Virtual
                        ? CH.resolveVirtual(RecvType, CS.Sig)
                        : CS.Direct;
  DispatchCache.emplace(Key, Callee);
  return Callee;
}

void SolverCore::processCallsOnDelta(ContextId C, CallSiteId Site,
                                     const PointsToSet &Delta) {
  // Phase 1: dispatch each new receiver and bucket it by its (callee,
  // callee-context) pair. Context-insensitive and type-sensitive runs
  // funnel thousands of receivers into a handful of groups; fully
  // object-sensitive runs degenerate to one group per receiver, which
  // costs no more than per-receiver processing did.
  BindGroups.clear();
  BindIndex.clear();
  uint32_t LastGroup = UINT32_MAX;
  uint64_t LastKey = ~0ull;
  for (uint32_t Raw : Delta) {
    if (Raw == CSNullObjRaw)
      continue; // calls on null never dispatch
    auto [HCtx, RecvObj] = R.CSM.objOf(CSObjId(Raw));
    MethodId Callee = dispatch(P.obj(RecvObj).Type, Site);
    if (!Callee.isValid())
      continue;
    ContextId CalleeCtx = Selector.selectCallee(C, Site, HCtx, RecvObj);
    uint64_t Key =
        (static_cast<uint64_t>(Callee.idx()) << 32) | CalleeCtx.idx();
    if (Key != LastKey) {
      LastKey = Key;
      auto [It, Inserted] =
          BindIndex.try_emplace(Key, static_cast<uint32_t>(BindGroups.size()));
      if (Inserted)
        BindGroups.push_back({Callee, CalleeCtx, {}});
      LastGroup = It->second;
    }
    BindGroups[LastGroup].Recvs.insert(Raw);
  }
  // Phase 2: one this-binding, call-graph edge and arg/ret wiring per
  // group. Every receiver of the group must flow into 'this' even when
  // the call-graph edge already existed.
  const CallSiteInfo &CS = P.callSite(Site);
  for (BindGroup &G : BindGroups) {
    const MethodInfo &CalleeInfo = P.method(G.Callee);
    seedDelta(varNode(G.Ctx, CalleeInfo.This), std::move(G.Recvs));
    if (!R.CG.addEdge(C, Site, G.Ctx, G.Callee))
      continue;
    addReachable(G.Ctx, G.Callee);
    for (size_t I = 0; I < CS.Args.size() && I < CalleeInfo.Params.size();
         ++I)
      addEdge(varNode(C, CS.Args[I]), varNode(G.Ctx, CalleeInfo.Params[I]));
    if (CS.Result.isValid())
      addEdge(varNode(G.Ctx, CalleeInfo.Ret), varNode(C, CS.Result));
    // Exceptions escaping the callee may propagate to the caller
    // (conservatively also when caught; see MethodInfo::Exc).
    addEdge(varNode(G.Ctx, CalleeInfo.Exc),
            varNode(C, P.method(CS.Enclosing).Exc));
  }
}

void SolverCore::onVarGrowth(ContextId C, VarId V, const PointsToSet &Delta) {
  const VarUsage &U = Usage[V.idx()];
  for (const Stmt *S : U.Loads) {
    PtrNodeId To = varNode(C, S->To);
    for (uint32_t Raw : Delta) {
      if (Raw == CSNullObjRaw)
        continue; // no fields on null
      addEdge(fieldNode(CSObjId(Raw), S->Field), To);
    }
  }
  for (const Stmt *S : U.Stores) {
    PtrNodeId From = varNode(C, S->From);
    for (uint32_t Raw : Delta) {
      if (Raw == CSNullObjRaw)
        continue;
      addEdge(From, fieldNode(CSObjId(Raw), S->Field));
    }
  }
  for (CallSiteId Site : U.Calls)
    processCallsOnDelta(C, Site, Delta);
}

void SolverCore::processStaticCall(ContextId C, CallSiteId Site) {
  const CallSiteInfo &CS = P.callSite(Site);
  MethodId Callee = CS.Direct;
  const MethodInfo &CalleeInfo = P.method(Callee);
  ContextId CalleeCtx = Selector.selectStaticCallee(C, Site);
  if (!R.CG.addEdge(C, Site, CalleeCtx, Callee))
    return;
  addReachable(CalleeCtx, Callee);
  for (size_t I = 0; I < CS.Args.size() && I < CalleeInfo.Params.size(); ++I)
    addEdge(varNode(C, CS.Args[I]), varNode(CalleeCtx, CalleeInfo.Params[I]));
  if (CS.Result.isValid())
    addEdge(varNode(CalleeCtx, CalleeInfo.Ret), varNode(C, CS.Result));
  addEdge(varNode(CalleeCtx, CalleeInfo.Exc),
          varNode(C, P.method(CS.Enclosing).Exc));
}

void SolverCore::addReachable(ContextId C, MethodId M) {
  if (!ReachableCS.insert(R.CSM.csMethod(C, M).idx()).second)
    return;
  R.MethodCtxs[M.idx()].push_back(C);
  R.ReachableMethod[M.idx()] = true;
  const MethodInfo &MI = P.method(M);
  for (const Stmt &S : MI.Body) {
    switch (S.Kind) {
    case StmtKind::Alloc: {
      ObjId Rep = Heap.repr(S.Obj);
      ContextId HCtx = Heap.isMerged(Rep) ? R.Ctxs.empty()
                                          : Selector.selectHeap(C, Rep);
      CSObjId O = R.CSM.csObj(HCtx, Rep);
      registerCSObj(O.idx(), P.obj(Rep).Type);
      PointsToSet Single;
      Single.insert(O.idx());
      seedDelta(varNode(C, S.To), std::move(Single));
      break;
    }
    case StmtKind::Copy:
      addEdge(varNode(C, S.From), varNode(C, S.To));
      break;
    case StmtKind::AssignNull: {
      PointsToSet Single;
      Single.insert(CSNullObjRaw);
      seedDelta(varNode(C, S.To), std::move(Single));
      break;
    }
    case StmtKind::StaticLoad:
      addEdge(staticNode(S.Field), varNode(C, S.To));
      break;
    case StmtKind::StaticStore:
      addEdge(varNode(C, S.From), staticNode(S.Field));
      break;
    case StmtKind::Cast: {
      const CastSiteInfo &CS = P.castSite(S.CastIdx);
      addEdge(varNode(C, CS.From), varNode(C, CS.To), CS.Target);
      break;
    }
    case StmtKind::Return:
      addEdge(varNode(C, S.From), varNode(C, MI.Ret));
      break;
    case StmtKind::Throw:
      addEdge(varNode(C, S.From), varNode(C, MI.Exc));
      break;
    case StmtKind::Catch:
      // Flow-insensitive: a catch observes every exception the method's
      // $exc slot may hold, filtered by the caught type.
      addEdge(varNode(C, MI.Exc), varNode(C, S.To), S.Type);
      break;
    case StmtKind::Invoke:
      if (P.callSite(S.Site).Kind == CallKind::Static)
        processStaticCall(C, S.Site);
      // Virtual/special calls are driven by receiver growth (onVarGrowth).
      break;
    case StmtKind::Load:
    case StmtKind::Store:
      break; // driven by base-variable growth
    }
  }
}

void SolverCore::finalizeStats() {
  R.Stats.NumContexts = R.Ctxs.size();
  R.Stats.NumCSVars = R.CSM.numCSVars();
  R.Stats.NumCSObjs = R.CSM.numCSObjs();
  R.Stats.NumCSMethods = R.CSM.numCSMethods();
  for (bool Reach : R.ReachableMethod)
    R.Stats.NumReachableMethods += Reach;
  // SetBytes is computed here, over the flattened solution, from live
  // chunk counts only — a pure function of the computed sets, so engines
  // that agree bit for bit report the same number. The engine-owned
  // capacity measurement (taken before the wave engines flatten
  // representatives) lives in WorkingSetBytes instead.
  for (uint32_t I = 0; I < R.Nodes.size(); ++I) {
    R.Stats.SetBytes += R.Pts[I].liveBytes();
    if (PTAResult::kindOf(R.Nodes.get(PtrNodeId(I))) == PTAResult::KindVar)
      R.Stats.VarPtsEntries += R.Pts[I].size();
  }
}
