//===-- pta/HeapAbstraction.cpp - Heap abstraction policies ----------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/HeapAbstraction.h"

#include <unordered_map>
#include <unordered_set>

using namespace mahjong;
using namespace mahjong::pta;

uint32_t HeapAbstraction::countAbstractObjects(uint32_t NumObjs) const {
  std::unordered_set<uint32_t> Reprs;
  for (uint32_t I = 0; I < NumObjs; ++I)
    Reprs.insert(repr(ObjId(I)).idx());
  return static_cast<uint32_t>(Reprs.size());
}

AllocTypeAbstraction::AllocTypeAbstraction(const ir::Program &P) {
  uint32_t N = P.numObjs();
  Repr.resize(N);
  Merged.assign(N, false);
  std::unordered_map<uint32_t, ObjId> FirstOfType;
  // Pass 1: pick the first site of each type as the representative.
  for (uint32_t I = 0; I < N; ++I) {
    ObjId O = ObjId(I);
    if (P.isNullObj(O)) {
      Repr[I] = O;
      continue;
    }
    auto [It, Inserted] =
        FirstOfType.try_emplace(P.obj(O).Type.idx(), O);
    Repr[I] = It->second;
    if (!Inserted)
      Merged[I] = true;
  }
  // Pass 2: the representative itself counts as merged when its class has
  // more than one member.
  for (uint32_t I = 0; I < N; ++I)
    if (Merged[I])
      Merged[Repr[I].idx()] = true;
}

MergedHeapAbstraction::MergedHeapAbstraction(std::vector<ObjId> MOM,
                                             std::string Name)
    : Repr(std::move(MOM)), Name(std::move(Name)) {
  Merged.assign(Repr.size(), false);
  std::unordered_map<uint32_t, uint32_t> ClassSize;
  for (ObjId R : Repr)
    ++ClassSize[R.idx()];
  for (size_t I = 0; I < Repr.size(); ++I)
    Merged[I] = ClassSize[Repr[I].idx()] > 1;
}
