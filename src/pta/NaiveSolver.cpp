//===-- pta/NaiveSolver.cpp - Reference FIFO worklist solver ----------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/NaiveSolver.h"

#include "support/Timer.h"

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

void NaiveSolver::ensureNodeStorage(uint32_t Idx) {
  if (Idx < Out.size())
    return;
  // Geometric growth: reserve doubled capacity once, then resize all four
  // parallel arrays to the exact node count (PTAResult invariants expect
  // Pts.size() == Nodes.size()).
  size_t NewSize = Idx + 1;
  if (NewSize > Out.capacity()) {
    size_t NewCap = std::max(NewSize, Out.capacity() * 2);
    Out.reserve(NewCap);
    R.Pts.reserve(NewCap);
    Pending.reserve(NewCap);
    Queued.reserve(NewCap);
  }
  Out.resize(NewSize);
  R.Pts.resize(NewSize);
  Pending.resize(NewSize);
  Queued.resize(NewSize, false);
}

void NaiveSolver::addEdge(PtrNodeId Src, PtrNodeId Dst, TypeId Filter) {
  if (Src == Dst && !Filter.isValid())
    return;
  uint64_t Key = (static_cast<uint64_t>(Src.idx()) << 32) | Dst.idx();
  if (!Filter.isValid()) {
    if (!EdgeDedup.insert(Key).second)
      return;
  } else {
    // Filtered edges (casts) are rare per node; scan for an exact
    // duplicate since distinct filters on the same (src, dst) are legal.
    for (const Edge &E : Out[Src.idx()])
      if (E.Target == Dst && E.Filter == Filter)
        return;
  }
  Out[Src.idx()].push_back({Dst, Filter});
  const PointsToSet &SrcPts = R.Pts[Src.idx()];
  if (SrcPts.empty())
    return;
  if (!Filter.isValid())
    enqueue(Dst, SrcPts); // zero-copy: unionWith merge-joins in place
  else
    enqueue(Dst, filtered(SrcPts, Filter));
}

PointsToSet NaiveSolver::filtered(const PointsToSet &Set,
                                  TypeId Filter) const {
  PointsToSet Result;
  for (uint32_t Raw : Set) {
    TypeId T = CSObjType[Raw];
    if (CH.isSubtype(T, Filter))
      Result.insert(Raw);
  }
  return Result;
}

void NaiveSolver::enqueue(PtrNodeId N, const PointsToSet &Delta) {
  if (Delta.empty())
    return;
  Pending[N.idx()].unionWith(Delta);
  if (!Queued[N.idx()]) {
    Queued[N.idx()] = true;
    Worklist.push_back(N);
  }
}

void NaiveSolver::seedDelta(PtrNodeId N, PointsToSet &&Delta) {
  enqueue(N, Delta);
}

void NaiveSolver::propagate(PtrNodeId N, const PointsToSet &Delta) {
  PointsToSet Diff = R.Pts[N.idx()].differenceFrom(Delta);
  if (Diff.empty())
    return;
  R.Pts[N.idx()].unionWith(Diff);
  uint64_t Key = R.Nodes.get(N);
  // Iterate by index: edge processing never appends to Out[N] (new edges
  // only appear in onVarGrowth below, which runs after this loop and
  // seeds them with the already-updated points-to set).
  size_t NumEdges = Out[N.idx()].size();
  for (size_t I = 0; I < NumEdges; ++I) {
    const Edge E = Out[N.idx()][I];
    if (!E.Filter.isValid())
      enqueue(E.Target, Diff);
    else
      enqueue(E.Target, filtered(Diff, E.Filter));
  }
  if (PTAResult::kindOf(Key) == PTAResult::KindVar) {
    auto [C, V] = R.CSM.varOf(PTAResult::csVarOf(Key));
    onVarGrowth(C, V, Diff);
  }
}

bool NaiveSolver::run() {
  Timer Clock;
  // Ensure the null cs-object's type is recorded before any filtering.
  registerCSObj(CSNullObjRaw, P.nullType());

  addReachable(R.Ctxs.empty(), P.entryMethod());

  uint64_t Pops = 0;
  while (!Worklist.empty()) {
    if ((++Pops & 0x1FFF) == 0 && TimeBudget > 0 &&
        Clock.seconds() > TimeBudget) {
      R.Stats.TimedOut = true;
      break;
    }
    PtrNodeId N = Worklist.front();
    Worklist.pop_front();
    Queued[N.idx()] = false;
    PointsToSet Delta = std::move(Pending[N.idx()]);
    Pending[N.idx()].clear();
    propagate(N, Delta);
  }

  for (uint32_t I = 0; I < R.Nodes.size(); ++I)
    R.Stats.WorkingSetBytes +=
        R.Pts[I].memoryBytes() + Pending[I].memoryBytes();

  R.Stats.Seconds = Clock.seconds();
  R.Stats.WorklistPops = Pops;
  finalizeStats();
  return !R.Stats.TimedOut;
}
