//===-- pta/NaiveSolver.h - Reference FIFO worklist solver ----*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textbook FIFO worklist solver, retained as the differential
/// reference for the wave-propagation engine (Solver.h) and as the perf
/// baseline of bench_preanalysis. It shares all statement semantics with
/// the wave engine through SolverCore; only the propagation core — plain
/// coalescing FIFO scheduling, per-element subtype checks on cast edges,
/// no cycle collapsing — is its own.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_NAIVESOLVER_H
#define MAHJONG_PTA_NAIVESOLVER_H

#include "pta/SolverCore.h"

#include <deque>

namespace mahjong::pta {

/// The reference fixpoint engine (SolverEngine::Naive).
class NaiveSolver final : public SolverCore {
public:
  using SolverCore::SolverCore;

  bool run() override;

private:
  struct Edge {
    PtrNodeId Target;
    TypeId Filter; ///< cast target; invalid = unfiltered
  };

  void ensureNodeStorage(uint32_t Idx) override;
  void addEdge(PtrNodeId Src, PtrNodeId Dst, TypeId Filter) override;
  void seedDelta(PtrNodeId N, PointsToSet &&Delta) override;

  /// Merges \p Delta into \p N's pending set and queues \p N.
  void enqueue(PtrNodeId N, const PointsToSet &Delta);

  /// Merges \p Delta into \p N and forwards the growth along edges; var
  /// nodes additionally trigger load/store/call processing.
  void propagate(PtrNodeId N, const PointsToSet &Delta);

  /// The elements of \p Set whose type is a subtype of \p Filter (which
  /// must be valid; unfiltered edges never materialize a filtered copy).
  PointsToSet filtered(const PointsToSet &Set, TypeId Filter) const;

  std::vector<std::vector<Edge>> Out;     ///< indexed by PtrNodeId
  std::unordered_set<uint64_t> EdgeDedup; ///< packed (src, dst), unfiltered
  // Coalescing worklist: one pending delta per node, so bursts of tiny
  // deltas through hub nodes merge before they are propagated.
  std::vector<PointsToSet> Pending; ///< indexed by PtrNodeId
  std::vector<bool> Queued;         ///< indexed by PtrNodeId
  std::deque<PtrNodeId> Worklist;
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_NAIVESOLVER_H
