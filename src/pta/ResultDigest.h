//===-- pta/ResultDigest.h - Canonical PTAResult comparison ---*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Order-insensitive canonicalization of a PTAResult, used to assert that
/// two solver engines computed the same solution. Interned ids (contexts,
/// cs-objects, pointer nodes) depend on discovery order, which differs
/// between schedulers, so the canonical form spells every fact in terms
/// of program-level ids and context *contents*: per-variable points-to
/// sets under each context, per-field points-to sets, static fields, the
/// CI call graph, and CI reachability.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_RESULTDIGEST_H
#define MAHJONG_PTA_RESULTDIGEST_H

#include "pta/PointerAnalysis.h"

#include <string>
#include <vector>

namespace mahjong::pta {

/// Every fact of \p R as a sorted list of canonical text lines.
std::vector<std::string> canonicalResultLines(const PTAResult &R);

/// FNV-1a hash over the canonical lines — equal iff the solutions are
/// semantically identical (up to hash collision).
uint64_t canonicalResultDigest(const PTAResult &R);

/// Compares two solutions canonically. On mismatch returns false and, if
/// \p FirstDiff is non-null, describes the first differing fact.
bool equivalentResults(const PTAResult &A, const PTAResult &B,
                       std::string *FirstDiff = nullptr);

} // namespace mahjong::pta

#endif // MAHJONG_PTA_RESULTDIGEST_H
