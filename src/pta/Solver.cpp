//===-- pta/Solver.cpp - Worklist points-to solver --------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include "support/Timer.h"

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

Solver::Solver(const Program &P, const ClassHierarchy &CH,
               const HeapAbstraction &Heap, ContextSelector &Selector,
               PTAResult &R, double TimeBudgetSeconds)
    : P(P), CH(CH), Heap(Heap), Selector(Selector), R(R),
      TimeBudget(TimeBudgetSeconds), Usage(P.numVars()) {
  // Build the structural per-variable usage index once: which loads,
  // stores and calls dereference each variable as their base.
  for (uint32_t MIdx = 0; MIdx < P.numMethods(); ++MIdx) {
    for (const Stmt &S : P.method(MethodId(MIdx)).Body) {
      switch (S.Kind) {
      case StmtKind::Load:
        Usage[S.Base.idx()].Loads.push_back(&S);
        break;
      case StmtKind::Store:
        Usage[S.Base.idx()].Stores.push_back(&S);
        break;
      case StmtKind::Invoke: {
        const CallSiteInfo &CS = P.callSite(S.Site);
        if (CS.Kind != CallKind::Static)
          Usage[CS.Base.idx()].Calls.push_back(S.Site);
        break;
      }
      default:
        break;
      }
    }
  }
  // The context-insensitive null object exists in every run.
  CSNullObjRaw = R.CSM.csObj(R.Ctxs.empty(), Program::nullObj()).idx();
}

PtrNodeId Solver::node(uint64_t Key) {
  PtrNodeId N = R.Nodes.intern(Key);
  if (N.idx() >= Out.size()) {
    Out.resize(N.idx() + 1);
    R.Pts.resize(N.idx() + 1);
    Pending.resize(N.idx() + 1);
    Queued.resize(N.idx() + 1, false);
  }
  return N;
}

PtrNodeId Solver::varNode(ContextId C, VarId V) {
  return node(PTAResult::varKey(R.CSM.csVar(C, V)));
}

PtrNodeId Solver::fieldNode(CSObjId O, FieldId F) {
  return node(PTAResult::fieldKey(O, F));
}

PtrNodeId Solver::staticNode(FieldId F) {
  return node(PTAResult::staticKey(F));
}

void Solver::addEdge(PtrNodeId Src, PtrNodeId Dst, TypeId Filter) {
  if (Src == Dst && !Filter.isValid())
    return;
  uint64_t Key = (static_cast<uint64_t>(Src.idx()) << 32) | Dst.idx();
  if (!Filter.isValid()) {
    if (!EdgeDedup.insert(Key).second)
      return;
  } else {
    // Filtered edges (casts) are rare per node; scan for an exact
    // duplicate since distinct filters on the same (src, dst) are legal.
    for (const Edge &E : Out[Src.idx()])
      if (E.Target == Dst && E.Filter == Filter)
        return;
  }
  Out[Src.idx()].push_back({Dst, Filter});
  if (!R.Pts[Src.idx()].empty())
    addToWorklist(Dst, applyFilter(R.Pts[Src.idx()], Filter));
}

PointsToSet Solver::applyFilter(const PointsToSet &Set, TypeId Filter) const {
  if (!Filter.isValid())
    return Set;
  PointsToSet Result;
  for (uint32_t Raw : Set) {
    TypeId T = CSObjType[Raw];
    if (CH.isSubtype(T, Filter))
      Result.insert(Raw);
  }
  return Result;
}

void Solver::addToWorklist(PtrNodeId N, PointsToSet Delta) {
  if (Delta.empty())
    return;
  Pending[N.idx()].unionWith(Delta);
  if (!Queued[N.idx()]) {
    Queued[N.idx()] = true;
    Worklist.push_back(N);
  }
}

void Solver::propagate(PtrNodeId N, const PointsToSet &Delta) {
  PointsToSet Diff = R.Pts[N.idx()].differenceFrom(Delta);
  if (Diff.empty())
    return;
  R.Pts[N.idx()].unionWith(Diff);
  uint64_t Key = R.Nodes.get(N);
  // Iterate by index: edge processing never appends to Out[N] (new edges
  // only appear in onVarGrowth below, which runs after this loop and
  // seeds them with the already-updated points-to set).
  const std::vector<Edge> &Edges = Out[N.idx()];
  size_t NumEdges = Edges.size();
  for (size_t I = 0; I < NumEdges; ++I)
    addToWorklist(Edges[I].Target, applyFilter(Diff, Edges[I].Filter));
  if (PTAResult::kindOf(Key) == PTAResult::KindVar) {
    auto [C, V] = R.CSM.varOf(PTAResult::csVarOf(Key));
    onVarGrowth(C, V, Diff);
  }
}

MethodId Solver::dispatch(TypeId RecvType, CallSiteId Site) {
  uint64_t Key = (static_cast<uint64_t>(RecvType.idx()) << 32) | Site.idx();
  auto It = DispatchCache.find(Key);
  if (It != DispatchCache.end())
    return It->second;
  const CallSiteInfo &CS = P.callSite(Site);
  MethodId Callee = CS.Kind == CallKind::Virtual
                        ? CH.resolveVirtual(RecvType, CS.Sig)
                        : CS.Direct;
  DispatchCache.emplace(Key, Callee);
  return Callee;
}

void Solver::processCallOnRecv(ContextId C, CallSiteId Site,
                               uint32_t CSObjRaw) {
  if (CSObjRaw == CSNullObjRaw)
    return; // calls on null never dispatch
  const CallSiteInfo &CS = P.callSite(Site);
  auto [HCtx, RecvObj] = R.CSM.objOf(CSObjId(CSObjRaw));
  MethodId Callee = dispatch(P.obj(RecvObj).Type, Site);
  if (!Callee.isValid())
    return;
  const MethodInfo &CalleeInfo = P.method(Callee);
  ContextId CalleeCtx = Selector.selectCallee(C, Site, HCtx, RecvObj);
  // Bind the receiver unconditionally: several receiver objects can share
  // one (callee, context) pair, and each must flow into 'this'.
  PointsToSet Recv;
  Recv.insert(CSObjRaw);
  addToWorklist(varNode(CalleeCtx, CalleeInfo.This), std::move(Recv));
  if (!R.CG.addEdge(C, Site, CalleeCtx, Callee))
    return;
  addReachable(CalleeCtx, Callee);
  for (size_t I = 0; I < CS.Args.size() && I < CalleeInfo.Params.size(); ++I)
    addEdge(varNode(C, CS.Args[I]), varNode(CalleeCtx, CalleeInfo.Params[I]));
  if (CS.Result.isValid())
    addEdge(varNode(CalleeCtx, CalleeInfo.Ret), varNode(C, CS.Result));
  // Exceptions escaping the callee may propagate to the caller
  // (conservatively also when caught; see MethodInfo::Exc).
  addEdge(varNode(CalleeCtx, CalleeInfo.Exc),
          varNode(C, P.method(CS.Enclosing).Exc));
}

void Solver::onVarGrowth(ContextId C, VarId V, const PointsToSet &Delta) {
  const VarUsage &U = Usage[V.idx()];
  for (const Stmt *S : U.Loads)
    for (uint32_t Raw : Delta) {
      if (Raw == CSNullObjRaw)
        continue; // no fields on null
      addEdge(fieldNode(CSObjId(Raw), S->Field), varNode(C, S->To));
    }
  for (const Stmt *S : U.Stores)
    for (uint32_t Raw : Delta) {
      if (Raw == CSNullObjRaw)
        continue;
      addEdge(varNode(C, S->From), fieldNode(CSObjId(Raw), S->Field));
    }
  for (CallSiteId Site : U.Calls)
    for (uint32_t Raw : Delta)
      processCallOnRecv(C, Site, Raw);
}

void Solver::processStaticCall(ContextId C, CallSiteId Site) {
  const CallSiteInfo &CS = P.callSite(Site);
  MethodId Callee = CS.Direct;
  const MethodInfo &CalleeInfo = P.method(Callee);
  ContextId CalleeCtx = Selector.selectStaticCallee(C, Site);
  if (!R.CG.addEdge(C, Site, CalleeCtx, Callee))
    return;
  addReachable(CalleeCtx, Callee);
  for (size_t I = 0; I < CS.Args.size() && I < CalleeInfo.Params.size(); ++I)
    addEdge(varNode(C, CS.Args[I]), varNode(CalleeCtx, CalleeInfo.Params[I]));
  if (CS.Result.isValid())
    addEdge(varNode(CalleeCtx, CalleeInfo.Ret), varNode(C, CS.Result));
  addEdge(varNode(CalleeCtx, CalleeInfo.Exc),
          varNode(C, P.method(CS.Enclosing).Exc));
}

void Solver::addReachable(ContextId C, MethodId M) {
  if (!ReachableCS.insert(R.CSM.csMethod(C, M).idx()).second)
    return;
  R.MethodCtxs[M.idx()].push_back(C);
  R.ReachableMethod[M.idx()] = true;
  const MethodInfo &MI = P.method(M);
  for (const Stmt &S : MI.Body) {
    switch (S.Kind) {
    case StmtKind::Alloc: {
      ObjId Rep = Heap.repr(S.Obj);
      ContextId HCtx = Heap.isMerged(Rep) ? R.Ctxs.empty()
                                          : Selector.selectHeap(C, Rep);
      CSObjId O = R.CSM.csObj(HCtx, Rep);
      if (O.idx() >= CSObjType.size())
        CSObjType.resize(O.idx() + 1, TypeId());
      CSObjType[O.idx()] = P.obj(Rep).Type;
      PointsToSet Single;
      Single.insert(O.idx());
      addToWorklist(varNode(C, S.To), std::move(Single));
      break;
    }
    case StmtKind::Copy:
      addEdge(varNode(C, S.From), varNode(C, S.To));
      break;
    case StmtKind::AssignNull: {
      PointsToSet Single;
      Single.insert(CSNullObjRaw);
      addToWorklist(varNode(C, S.To), std::move(Single));
      break;
    }
    case StmtKind::StaticLoad:
      addEdge(staticNode(S.Field), varNode(C, S.To));
      break;
    case StmtKind::StaticStore:
      addEdge(varNode(C, S.From), staticNode(S.Field));
      break;
    case StmtKind::Cast: {
      const CastSiteInfo &CS = P.castSite(S.CastIdx);
      addEdge(varNode(C, CS.From), varNode(C, CS.To), CS.Target);
      break;
    }
    case StmtKind::Return:
      addEdge(varNode(C, S.From), varNode(C, MI.Ret));
      break;
    case StmtKind::Throw:
      addEdge(varNode(C, S.From), varNode(C, MI.Exc));
      break;
    case StmtKind::Catch:
      // Flow-insensitive: a catch observes every exception the method's
      // $exc slot may hold, filtered by the caught type.
      addEdge(varNode(C, MI.Exc), varNode(C, S.To), S.Type);
      break;
    case StmtKind::Invoke:
      if (P.callSite(S.Site).Kind == CallKind::Static)
        processStaticCall(C, S.Site);
      // Virtual/special calls are driven by receiver growth (onVarGrowth).
      break;
    case StmtKind::Load:
    case StmtKind::Store:
      break; // driven by base-variable growth
    }
  }
}

bool Solver::run() {
  Timer Clock;
  // Ensure the null cs-object's type is recorded before any filtering.
  if (CSNullObjRaw >= CSObjType.size())
    CSObjType.resize(CSNullObjRaw + 1, TypeId());
  CSObjType[CSNullObjRaw] = P.nullType();

  addReachable(R.Ctxs.empty(), P.entryMethod());

  uint64_t Pops = 0;
  while (!Worklist.empty()) {
    if ((++Pops & 0x1FFF) == 0 && TimeBudget > 0 &&
        Clock.seconds() > TimeBudget) {
      R.Stats.TimedOut = true;
      break;
    }
    PtrNodeId N = Worklist.front();
    Worklist.pop_front();
    Queued[N.idx()] = false;
    PointsToSet Delta = std::move(Pending[N.idx()]);
    Pending[N.idx()].clear();
    propagate(N, Delta);
  }

  R.Stats.Seconds = Clock.seconds();
  R.Stats.WorklistPops = Pops;
  R.Stats.NumContexts = R.Ctxs.size();
  R.Stats.NumCSVars = R.CSM.numCSVars();
  R.Stats.NumCSObjs = R.CSM.numCSObjs();
  R.Stats.NumCSMethods = R.CSM.numCSMethods();
  for (bool Reach : R.ReachableMethod)
    R.Stats.NumReachableMethods += Reach;
  for (uint32_t I = 0; I < R.Nodes.size(); ++I)
    if (PTAResult::kindOf(R.Nodes.get(PtrNodeId(I))) == PTAResult::KindVar)
      R.Stats.VarPtsEntries += R.Pts[I].size();
  return !R.Stats.TimedOut;
}
