//===-- pta/Solver.cpp - Wave-propagation points-to solver ------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/Solver.h"

#include "obs/Trace.h"
#include "support/Timer.h"

#include <algorithm>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

void Solver::ensureNodeStorage(uint32_t Idx) {
  if (Idx < Out.size())
    return;
  // Geometric growth: reserve doubled capacity once, then resize the
  // parallel arrays to the exact node count (PTAResult invariants expect
  // Pts.size() == Nodes.size()).
  size_t NewSize = Idx + 1;
  if (NewSize > Out.capacity()) {
    size_t NewCap = std::max(NewSize, Out.capacity() * 2);
    Out.reserve(NewCap);
    R.Pts.reserve(NewCap);
    Pending.reserve(NewCap);
    Queued.reserve(NewCap);
    Order.reserve(NewCap);
    SelfVar.reserve(NewCap);
    VarMembers.reserve(NewCap);
    Reps.reserve(static_cast<uint32_t>(NewCap));
  }
  size_t OldSize = Out.size();
  Out.resize(NewSize);
  R.Pts.resize(NewSize);
  Pending.resize(NewSize);
  Queued.resize(NewSize, 0);
  Order.resize(NewSize);
  SelfVar.resize(NewSize);
  VarMembers.resize(NewSize);
  Reps.grow(static_cast<uint32_t>(NewSize));
  for (size_t I = OldSize; I < NewSize; ++I) {
    Order[I] = NextFreshOrder++;
    // Field/static nodes carry no growth handlers, and neither do vars
    // without loads/stores/calls (onVarGrowth is a no-op for them, so
    // collapsed classes need not iterate them on every delta).
    uint64_t Key = R.Nodes.get(PtrNodeId(static_cast<uint32_t>(I)));
    if (PTAResult::kindOf(Key) == PTAResult::KindVar) {
      auto [C, V] = R.CSM.varOf(PTAResult::csVarOf(Key));
      const VarUsage &U = Usage[V.idx()];
      if (!U.Loads.empty() || !U.Stores.empty() || !U.Calls.empty())
        SelfVar[I] = {C, V};
    }
  }
}

void Solver::registerCSObj(uint32_t CSObjRaw, TypeId T) {
  SolverCore::registerCSObj(CSObjRaw, T);
  // Keep every already-materialized filter bitmap current: a cs-object
  // born after the bitmap was built must still pass future casts.
  for (auto &[FilterRaw, Objs] : FilterObjs)
    if (CH.isSubtype(T, TypeId(FilterRaw)))
      Objs.insert(CSObjRaw);
}

const PointsToSet &Solver::filterBitmap(TypeId Filter) {
  auto [It, Inserted] = FilterObjs.try_emplace(Filter.idx());
  if (Inserted) {
    // First cast through this type: sweep the cs-objects seen so far.
    // registerCSObj keeps the bitmap current from here on.
    for (uint32_t Raw = 0; Raw < CSObjType.size(); ++Raw)
      if (CSObjType[Raw].isValid() && CH.isSubtype(CSObjType[Raw], Filter))
        It->second.insert(Raw);
  }
  return It->second;
}

PointsToSet Solver::filtered(const PointsToSet &Set, TypeId Filter) {
  PointsToSet Result = Set;
  Result.intersectWith(filterBitmap(Filter));
  ++R.Stats.FilterBitmapHits;
  return Result;
}

void Solver::enqueue(uint32_t N, const PointsToSet &Delta) {
  if (Delta.empty())
    return;
  Pending[N].unionWith(Delta);
  // A node already marked dirty batches: either its turn in the current
  // wave is still ahead (it will see the enlarged Pending), or it already
  // sits in NextWave. Only a clean node needs a new wave entry.
  if (!Queued[N]) {
    Queued[N] = 1;
    NextWave.push_back(N);
  }
}

void Solver::seedDelta(PtrNodeId N, PointsToSet &&Delta) {
  enqueue(rep(N.idx()), Delta);
}

void Solver::addEdge(PtrNodeId Src, PtrNodeId Dst, TypeId Filter) {
  uint32_t S = rep(Src.idx()), D = rep(Dst.idx());
  // Same-class edges can never add anything: unfiltered self-loops are
  // identities, and a filtered self-loop only re-derives a subset of the
  // class's own set.
  if (S == D)
    return;
  if (!Filter.isValid()) {
    uint64_t Key = (static_cast<uint64_t>(S) << 32) | D;
    if (!EdgeDedup.insert(Key).second)
      return;
    ++UnfilteredEdges;
  } else {
    // Filtered edges (casts) are rare per node; scan for an exact
    // duplicate since distinct filters on the same (src, dst) are legal.
    for (const Edge &E : Out[S])
      if (rep(E.Target.idx()) == D && E.Filter == Filter)
        return;
  }
  Out[S].push_back({PtrNodeId(D), Filter});
  const PointsToSet &SrcPts = R.Pts[S];
  if (SrcPts.empty())
    return;
  if (!Filter.isValid())
    enqueue(D, SrcPts); // zero-copy: unionWith merge-joins in place
  else
    enqueue(D, filtered(SrcPts, Filter));
}

void Solver::propagate(uint32_t N, const PointsToSet &Delta) {
  PointsToSet Diff = R.Pts[N].differenceFrom(Delta);
  if (Diff.empty())
    return;
  R.Pts[N].unionWith(Diff);
  // Snapshot the edge count: onVarGrowth below may append to Out[N], and
  // those new edges are seeded from the already-updated set. Index per
  // iteration — node creation inside the loop cannot happen, but staying
  // index-based keeps the loop reallocation-proof.
  size_t NumEdges = Out[N].size();
  for (size_t I = 0; I < NumEdges; ++I) {
    const Edge E = Out[N][I];
    uint32_t T = rep(E.Target.idx());
    if (T == N)
      continue; // target collapsed into this class since the edge was added
    if (!E.Filter.isValid())
      enqueue(T, Diff);
    else
      enqueue(T, filtered(Diff, E.Filter));
  }
  // Growth handlers for every variable merged into this class (the
  // common singleton case reads the flat SelfVar entry). New nodes
  // created here are their own classes, so VarMembers[N] cannot grow.
  if (VarMembers[N].empty()) {
    VarRef Self = SelfVar[N];
    if (Self.V.isValid())
      onVarGrowth(Self.C, Self.V, Diff);
  } else {
    size_t NumVars = VarMembers[N].size();
    for (size_t I = 0; I < NumVars; ++I) {
      VarRef M = VarMembers[N][I];
      onVarGrowth(M.C, M.V, Diff);
    }
  }
}

bool Solver::shouldRecondition() const {
  if (!ConditionedOnce)
    return UnfilteredEdges > 0;
  uint64_t Growth = UnfilteredEdges - EdgesAtLastPass;
  if (Growth < 512)
    return false; // a quiescent graph has no new cycles to find
  // Re-pass once the copy graph grew a quarter since the last pass, or —
  // whatever the relative growth — once enough waves went by. The relative
  // bound keeps the O(V+E) Tarjan sweeps logarithmic in edge insertions;
  // the wave bound catches cycles that wire up through receiver-driven
  // call plumbing (listener registration, fluent returns) long after the
  // bulk of the graph exists: a program-wide SCC is only a few thousand
  // edges, but circulating it once per wave costs a full flood of the
  // component each time. The wave interval backs off (recondition())
  // whenever a wave-triggered pass finds nothing, so a long quiescent
  // endgame is not taxed with fruitless Tarjan sweeps.
  return Growth * 4 >= EdgesAtLastPass ||
         WavesSinceRecondition >= WaveTriggerInterval;
}

void Solver::collapseScc(const std::vector<uint32_t> &Members) {
  // Union of everything the members know or have pending. Collapsing
  // resets the class to "empty with everything pending": the single
  // re-propagation replays the union through the merged edge list and the
  // merged var-growth handlers, which is what keeps members that had not
  // yet seen each other's elements sound.
  PointsToSet All;
  for (uint32_t M : Members) {
    All.unionWith(R.Pts[M]);
    All.unionWith(Pending[M]);
    R.Pts[M].clear();
    Pending[M].clear();
    Queued[M] = 0;
  }
  uint32_t W = Members.front();
  for (size_t I = 1; I < Members.size(); ++I)
    W = Reps.unite(W, Members[I]);

  // Merge edge lists into the representative, rewriting targets to their
  // representatives, dropping edges that became internal to the class and
  // deduplicating what remains.
  std::vector<Edge> Merged;
  std::unordered_set<uint64_t> Local;
  for (uint32_t M : Members) {
    for (const Edge &E : Out[M]) {
      uint32_t T = rep(E.Target.idx());
      if (T == W)
        continue;
      uint64_t Key = (static_cast<uint64_t>(T) << 32) |
                     (E.Filter.isValid() ? E.Filter.idx() + 1u : 0u);
      if (!Local.insert(Key).second)
        continue;
      if (!E.Filter.isValid())
        EdgeDedup.insert((static_cast<uint64_t>(W) << 32) | T);
      Merged.push_back({PtrNodeId(T), E.Filter});
    }
    if (M != W) {
      Out[M].clear();
      Out[M].shrink_to_fit();
    }
  }
  Out[W] = std::move(Merged);

  // Concatenate var members so the class's growth keeps driving every
  // merged variable's loads/stores/calls. A member that was itself a
  // collapsed representative contributes its list (which includes its own
  // SelfVar); a singleton contributes its flat SelfVar entry.
  std::vector<VarRef> Vars;
  for (uint32_t M : Members) {
    if (!VarMembers[M].empty()) {
      Vars.insert(Vars.end(), VarMembers[M].begin(), VarMembers[M].end());
      VarMembers[M].clear();
    } else if (SelfVar[M].V.isValid()) {
      Vars.push_back(SelfVar[M]);
    }
  }
  VarMembers[W] = std::move(Vars);

  Pending[W] = std::move(All);
  Queued[W] = !Pending[W].empty();

  ++R.Stats.SCCsCollapsed;
  R.Stats.NodesCollapsed += Members.size() - 1;
}

void Solver::recondition() {
  obs::ScopedSpan Span("recondition");
  const uint32_t N = static_cast<uint32_t>(Out.size());

  // Iterative Tarjan over the representative graph restricted to
  // unfiltered copy edges. SCCs are emitted in reverse topological order
  // of the condensation.
  std::vector<int32_t> Index(N, -1);
  std::vector<int32_t> Low(N, 0);
  std::vector<uint8_t> OnStack(N, 0);
  std::vector<uint32_t> Stack;
  std::vector<std::vector<uint32_t>> Sccs;
  struct Frame {
    uint32_t Node;
    uint32_t EdgeIdx;
  };
  std::vector<Frame> Frames;
  int32_t Counter = 0;

  for (uint32_t Root = 0; Root < N; ++Root) {
    if (!Reps.isRep(Root) || Index[Root] >= 0)
      continue;
    Index[Root] = Low[Root] = Counter++;
    Stack.push_back(Root);
    OnStack[Root] = 1;
    Frames.push_back({Root, 0});
    while (!Frames.empty()) {
      uint32_t Cur = Frames.back().Node;
      if (Frames.back().EdgeIdx < Out[Cur].size()) {
        const Edge &E = Out[Cur][Frames.back().EdgeIdx++];
        if (E.Filter.isValid())
          continue;
        uint32_t T = rep(E.Target.idx());
        if (T == Cur)
          continue;
        if (Index[T] < 0) {
          Index[T] = Low[T] = Counter++;
          Stack.push_back(T);
          OnStack[T] = 1;
          Frames.push_back({T, 0}); // invalidates Frames.back(); loop re-reads
        } else if (OnStack[T]) {
          Low[Cur] = std::min(Low[Cur], Index[T]);
        }
        continue;
      }
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().Node] = std::min(Low[Frames.back().Node], Low[Cur]);
      if (Low[Cur] == Index[Cur]) {
        Sccs.emplace_back();
        while (true) {
          uint32_t M = Stack.back();
          Stack.pop_back();
          OnStack[M] = 0;
          Sccs.back().push_back(M);
          if (M == Cur)
            break;
        }
      }
    }
  }

  uint64_t CollapsedBefore = R.Stats.NodesCollapsed;
  for (const std::vector<uint32_t> &Scc : Sccs)
    if (Scc.size() > 1)
      collapseScc(Scc);
  // Adapt the wave-count trigger to what the pass actually found: a
  // fruitless pass doubles the interval, a productive one resets it.
  WaveTriggerInterval = R.Stats.NodesCollapsed == CollapsedBefore
                            ? std::min<uint32_t>(WaveTriggerInterval * 2, 64)
                            : 4;

  // Reverse the emission order into a forward topological priority:
  // sources get the smallest order so deltas sweep with the flow.
  const uint32_t NumSccs = static_cast<uint32_t>(Sccs.size());
  for (uint32_t I = 0; I < NumSccs; ++I)
    Order[rep(Sccs[I].front())] = NumSccs - I;
  NextFreshOrder = NumSccs + 1;

  // Rebuild the dirty set under the new representatives, dropping entries
  // that were collapsed away (run() sorts by the fresh Order).
  NextWave.clear();
  for (uint32_t I = 0; I < N; ++I)
    if (Queued[I] && Reps.isRep(I))
      NextWave.push_back(I);

  EdgesAtLastPass = UnfilteredEdges;
  WavesSinceRecondition = 0;
  ConditionedOnce = true;
}

void Solver::flattenResult() {
  for (uint32_t I = 0; I < R.Nodes.size(); ++I) {
    uint32_t Rep = rep(I);
    if (Rep != I)
      R.Pts[I] = R.Pts[Rep];
  }
}

void Solver::seedEntry() {
  // Ensure the null cs-object's type is recorded before any filtering.
  registerCSObj(CSNullObjRaw, P.nullType());
  addReachable(R.Ctxs.empty(), P.entryMethod());
}

void Solver::sortWave(std::vector<uint32_t> &Wave) const {
  std::sort(Wave.begin(), Wave.end(), [this](uint32_t A, uint32_t B) {
    return Order[A] != Order[B] ? Order[A] < Order[B] : A < B;
  });
}

void Solver::finishRun(const Timer &Clock, uint64_t Pops) {
  // Record the engine's true working set before flattening duplicates the
  // representative sets back onto class members.
  for (uint32_t I = 0; I < R.Nodes.size(); ++I)
    R.Stats.WorkingSetBytes +=
        R.Pts[I].memoryBytes() + Pending[I].memoryBytes();
  flattenResult();

  R.Stats.Seconds = Clock.seconds();
  R.Stats.WorklistPops = Pops;
  finalizeStats();
}

bool Solver::run() {
  Timer Clock;
  seedEntry();

  uint64_t Pops = 0;
  std::vector<uint32_t> Wave;
  while (!R.Stats.TimedOut) {
    // Conditioning runs at wave boundaries: the graph is quiescent and
    // the fresh topological order applies to the whole next sweep.
    if (shouldRecondition())
      recondition();
    if (NextWave.empty())
      break;
    ++WavesSinceRecondition;
    Wave.swap(NextWave);
    sortWave(Wave);
    obs::ScopedSpan WaveSpan("wave");
    WaveSpan.arg("nodes", Wave.size());
    Timer WaveClock;
    for (uint32_t N : Wave) {
      if (!Queued[N] || !Reps.isRep(N))
        continue; // stale: merged away, or re-listed by a conditioning pass
      Queued[N] = 0;
      if ((++Pops & 0x1FFF) == 0 && TimeBudget > 0 &&
          Clock.seconds() > TimeBudget) {
        R.Stats.TimedOut = true;
        break;
      }
      PointsToSet Delta = std::move(Pending[N]);
      Pending[N].clear();
      propagate(N, Delta);
    }
    R.WaveMicros.record(static_cast<uint64_t>(WaveClock.seconds() * 1e6));
    Wave.clear();
  }

  finishRun(Clock, Pops);
  return !R.Stats.TimedOut;
}
