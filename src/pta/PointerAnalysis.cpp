//===-- pta/PointerAnalysis.cpp - Analysis facade and results ---------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/PointerAnalysis.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pta/NaiveSolver.h"
#include "pta/ParallelSolver.h"
#include "pta/Solver.h"

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

const PointsToSet *PTAResult::varPts(ContextId C, VarId V) const {
  CSVarId CSV = CSM.lookupCSVar(C, V);
  if (!CSV.isValid())
    return nullptr;
  PtrNodeId N = Nodes.lookup(varKey(CSV));
  if (!N.isValid() || N.idx() >= Pts.size())
    return nullptr;
  return &Pts[N.idx()];
}

PointsToSet PTAResult::ciVarPts(VarId V) const {
  PointsToSet Result;
  MethodId M = P.var(V).Method;
  for (ContextId C : MethodCtxs[M.idx()]) {
    const PointsToSet *Set = varPts(C, V);
    if (!Set)
      continue;
    for (uint32_t Raw : *Set)
      Result.insert(baseObjOf(Raw).idx());
  }
  return Result;
}

const PointsToSet *PTAResult::fieldPts(CSObjId O, FieldId F) const {
  PtrNodeId N = Nodes.lookup(fieldKey(O, F));
  if (!N.isValid() || N.idx() >= Pts.size())
    return nullptr;
  return &Pts[N.idx()];
}

void PTAResult::forEachFieldPts(
    const std::function<void(CSObjId, FieldId, const PointsToSet &)> &Fn)
    const {
  for (uint32_t I = 0; I < Nodes.size(); ++I) {
    uint64_t Key = Nodes.get(PtrNodeId(I));
    if (kindOf(Key) != KindField || Pts[I].empty())
      continue;
    auto [O, F] = csObjFieldOf(Key);
    Fn(O, F, Pts[I]);
  }
}

std::unique_ptr<PTAResult>
mahjong::pta::runPointerAnalysis(const Program &P, const ClassHierarchy &CH,
                                 const AnalysisOptions &Opts) {
  auto R = std::make_unique<PTAResult>(P, CH);
  static const AllocSiteAbstraction DefaultHeap;
  const HeapAbstraction &Heap = Opts.Heap ? *Opts.Heap : DefaultHeap;
  auto Selector = makeContextSelector(Opts.Kind, Opts.K, R->Ctxs, P);
  R->AnalysisName = analysisName(Opts.Kind, Opts.K);
  R->HeapName = Heap.name();
  if (Opts.Engine == SolverEngine::Naive) {
    obs::ScopedSpan Span("solve/naive");
    NaiveSolver S(P, CH, Heap, *Selector, *R, Opts.TimeBudgetSeconds);
    S.run();
  } else if (Opts.Engine == SolverEngine::ParallelWave) {
    obs::ScopedSpan Span("solve/parallel");
    ParallelSolver S(P, CH, Heap, *Selector, *R, Opts.TimeBudgetSeconds,
                     Opts.SolverThreads);
    S.run();
  } else {
    obs::ScopedSpan Span("solve/wave");
    Solver S(P, CH, Heap, *Selector, *R, Opts.TimeBudgetSeconds);
    S.run();
  }
  return R;
}

void mahjong::pta::exportStats(const PTAStats &S, obs::MetricsRegistry &Reg,
                               const std::string &Prefix) {
  Reg.gauge(Prefix + "seconds").set(S.Seconds);
  Reg.counter(Prefix + "timed_out").set(S.TimedOut ? 1 : 0);
  Reg.counter(Prefix + "num_contexts").set(S.NumContexts);
  Reg.counter(Prefix + "num_cs_vars").set(S.NumCSVars);
  Reg.counter(Prefix + "num_cs_objs").set(S.NumCSObjs);
  Reg.counter(Prefix + "num_cs_methods").set(S.NumCSMethods);
  Reg.counter(Prefix + "num_reachable_methods").set(S.NumReachableMethods);
  Reg.counter(Prefix + "var_pts_entries").set(S.VarPtsEntries);
  Reg.counter(Prefix + "worklist_pops").set(S.WorklistPops);
  Reg.counter(Prefix + "sccs_collapsed").set(S.SCCsCollapsed);
  Reg.counter(Prefix + "nodes_collapsed").set(S.NodesCollapsed);
  Reg.counter(Prefix + "filter_bitmap_hits").set(S.FilterBitmapHits);
  Reg.counter(Prefix + "set_bytes").set(S.SetBytes);
  Reg.counter(Prefix + "working_set_bytes").set(S.WorkingSetBytes);
  Reg.counter(Prefix + "parallel_waves").set(S.ParallelWaves);
  Reg.counter(Prefix + "deltas_buffered").set(S.DeltasBuffered);
  Reg.counter(Prefix + "deltas_merged").set(S.DeltasMerged);
  Reg.gauge(Prefix + "shard_imbalance_pct").set(S.ShardImbalancePct);
}
