//===-- pta/PointerAnalysis.cpp - Analysis facade and results ---------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/PointerAnalysis.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pta/NaiveSolver.h"
#include "pta/ParallelSolver.h"
#include "pta/Solver.h"

#include <thread>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

const PointsToSet *PTAResult::varPts(ContextId C, VarId V) const {
  CSVarId CSV = CSM.lookupCSVar(C, V);
  if (!CSV.isValid())
    return nullptr;
  PtrNodeId N = Nodes.lookup(varKey(CSV));
  if (!N.isValid() || N.idx() >= Pts.size())
    return nullptr;
  return &Pts[N.idx()];
}

PointsToSet PTAResult::ciVarPts(VarId V) const {
  PointsToSet Result;
  MethodId M = P.var(V).Method;
  for (ContextId C : MethodCtxs[M.idx()]) {
    const PointsToSet *Set = varPts(C, V);
    if (!Set)
      continue;
    for (uint32_t Raw : *Set)
      Result.insert(baseObjOf(Raw).idx());
  }
  return Result;
}

const PointsToSet *PTAResult::fieldPts(CSObjId O, FieldId F) const {
  PtrNodeId N = Nodes.lookup(fieldKey(O, F));
  if (!N.isValid() || N.idx() >= Pts.size())
    return nullptr;
  return &Pts[N.idx()];
}

void PTAResult::forEachFieldPts(
    const std::function<void(CSObjId, FieldId, const PointsToSet &)> &Fn)
    const {
  for (uint32_t I = 0; I < Nodes.size(); ++I) {
    uint64_t Key = Nodes.get(PtrNodeId(I));
    if (kindOf(Key) != KindField || Pts[I].empty())
      continue;
    auto [O, F] = csObjFieldOf(Key);
    Fn(O, F, Pts[I]);
  }
}

const char *mahjong::pta::solverEngineName(SolverEngine Engine) {
  switch (Engine) {
  case SolverEngine::Wave:
    return "wave";
  case SolverEngine::Naive:
    return "naive";
  case SolverEngine::ParallelWave:
    return "parallel";
  case SolverEngine::Auto:
    break;
  }
  return "auto";
}

namespace {

// Calibrated against the checked-in full-scale engine races
// (BENCH_solver.json). Measured work = numVars + 4*numObjs per profile:
// antlr 80k, luindex 48k, lusearch 57k, fop 107k — all profiles where
// the FIFO worklist beats wave outright (fop by 1.7x); then a wide gap
// to checkstyle 574k, chart 623k and up, where wave is at worst within
// a few percent of naive and wins big where collapsing bites (eclipse
// 1.57M work, 1.68x; jpc 1.23M, 1.76x). The naive cutoff sits in the
// gap, above fop. The parallel cutoff marks systems big enough that a
// wave's sweep amortizes buffering — the eclipse class — and only
// matters on hardware with real concurrency.
constexpr uint64_t NaiveWorkCutoff = 250'000;
constexpr uint64_t ParallelWorkCutoff = 1'500'000;

} // namespace

SolverEngine mahjong::pta::chooseSolverEngine(uint64_t NumVars,
                                              uint64_t NumObjs,
                                              unsigned HardwareThreads) {
  // Work proxy: variables seed the constraint graph one node each;
  // allocation sites weigh more, since objects multiply both field nodes
  // and average set sizes.
  uint64_t Work = NumVars + 4 * NumObjs;
  if (Work < NaiveWorkCutoff)
    return SolverEngine::Naive;
  if (HardwareThreads >= 4 && Work >= ParallelWorkCutoff)
    return SolverEngine::ParallelWave;
  return SolverEngine::Wave;
}

SolverEngine mahjong::pta::chooseSolverEngine(const Program &P,
                                              unsigned SolverThreads) {
  unsigned HW = SolverThreads
                    ? SolverThreads
                    : std::max(1u, std::thread::hardware_concurrency());
  return chooseSolverEngine(P.numVars(), P.numObjs(), HW);
}

std::unique_ptr<PTAResult>
mahjong::pta::runPointerAnalysis(const Program &P, const ClassHierarchy &CH,
                                 const AnalysisOptions &Opts) {
  auto R = std::make_unique<PTAResult>(P, CH);
  static const AllocSiteAbstraction DefaultHeap;
  const HeapAbstraction &Heap = Opts.Heap ? *Opts.Heap : DefaultHeap;
  auto Selector = makeContextSelector(Opts.Kind, Opts.K, R->Ctxs, P);
  R->AnalysisName = analysisName(Opts.Kind, Opts.K);
  R->HeapName = Heap.name();
  SolverEngine Engine = Opts.Engine == SolverEngine::Auto
                            ? chooseSolverEngine(P, Opts.SolverThreads)
                            : Opts.Engine;
  R->EngineName = solverEngineName(Engine);
  if (Engine == SolverEngine::Naive) {
    obs::ScopedSpan Span("solve/naive");
    NaiveSolver S(P, CH, Heap, *Selector, *R, Opts.TimeBudgetSeconds);
    S.run();
  } else if (Engine == SolverEngine::ParallelWave) {
    obs::ScopedSpan Span("solve/parallel");
    ParallelSolver S(P, CH, Heap, *Selector, *R, Opts.TimeBudgetSeconds,
                     Opts.SolverThreads);
    S.run();
  } else {
    obs::ScopedSpan Span("solve/wave");
    Solver S(P, CH, Heap, *Selector, *R, Opts.TimeBudgetSeconds);
    S.run();
  }
  return R;
}

void mahjong::pta::exportStats(const PTAStats &S, obs::MetricsRegistry &Reg,
                               const std::string &Prefix) {
  Reg.gauge(Prefix + "seconds").set(S.Seconds);
  Reg.counter(Prefix + "timed_out").set(S.TimedOut ? 1 : 0);
  Reg.counter(Prefix + "num_contexts").set(S.NumContexts);
  Reg.counter(Prefix + "num_cs_vars").set(S.NumCSVars);
  Reg.counter(Prefix + "num_cs_objs").set(S.NumCSObjs);
  Reg.counter(Prefix + "num_cs_methods").set(S.NumCSMethods);
  Reg.counter(Prefix + "num_reachable_methods").set(S.NumReachableMethods);
  Reg.counter(Prefix + "var_pts_entries").set(S.VarPtsEntries);
  Reg.counter(Prefix + "worklist_pops").set(S.WorklistPops);
  Reg.counter(Prefix + "sccs_collapsed").set(S.SCCsCollapsed);
  Reg.counter(Prefix + "nodes_collapsed").set(S.NodesCollapsed);
  Reg.counter(Prefix + "filter_bitmap_hits").set(S.FilterBitmapHits);
  Reg.counter(Prefix + "set_bytes").set(S.SetBytes);
  Reg.counter(Prefix + "working_set_bytes").set(S.WorkingSetBytes);
  Reg.counter(Prefix + "parallel_waves").set(S.ParallelWaves);
  Reg.counter(Prefix + "deltas_buffered").set(S.DeltasBuffered);
  Reg.counter(Prefix + "deltas_merged").set(S.DeltasMerged);
  Reg.counter(Prefix + "deltas_dropped").set(S.DeltasDropped);
  Reg.counter(Prefix + "work_steals").set(S.WorkSteals);
  Reg.gauge(Prefix + "shard_imbalance_pct").set(S.ShardImbalancePct);
  Reg.gauge(Prefix + "shard_imbalance_max_pct").set(S.ShardImbalanceMaxPct);
}
