//===-- pta/PointerAnalysis.cpp - Analysis facade and results ---------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/PointerAnalysis.h"

#include "pta/NaiveSolver.h"
#include "pta/ParallelSolver.h"
#include "pta/Solver.h"

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

const PointsToSet *PTAResult::varPts(ContextId C, VarId V) const {
  CSVarId CSV = CSM.lookupCSVar(C, V);
  if (!CSV.isValid())
    return nullptr;
  PtrNodeId N = Nodes.lookup(varKey(CSV));
  if (!N.isValid() || N.idx() >= Pts.size())
    return nullptr;
  return &Pts[N.idx()];
}

PointsToSet PTAResult::ciVarPts(VarId V) const {
  PointsToSet Result;
  MethodId M = P.var(V).Method;
  for (ContextId C : MethodCtxs[M.idx()]) {
    const PointsToSet *Set = varPts(C, V);
    if (!Set)
      continue;
    for (uint32_t Raw : *Set)
      Result.insert(baseObjOf(Raw).idx());
  }
  return Result;
}

const PointsToSet *PTAResult::fieldPts(CSObjId O, FieldId F) const {
  PtrNodeId N = Nodes.lookup(fieldKey(O, F));
  if (!N.isValid() || N.idx() >= Pts.size())
    return nullptr;
  return &Pts[N.idx()];
}

void PTAResult::forEachFieldPts(
    const std::function<void(CSObjId, FieldId, const PointsToSet &)> &Fn)
    const {
  for (uint32_t I = 0; I < Nodes.size(); ++I) {
    uint64_t Key = Nodes.get(PtrNodeId(I));
    if (kindOf(Key) != KindField || Pts[I].empty())
      continue;
    auto [O, F] = csObjFieldOf(Key);
    Fn(O, F, Pts[I]);
  }
}

std::unique_ptr<PTAResult>
mahjong::pta::runPointerAnalysis(const Program &P, const ClassHierarchy &CH,
                                 const AnalysisOptions &Opts) {
  auto R = std::make_unique<PTAResult>(P, CH);
  static const AllocSiteAbstraction DefaultHeap;
  const HeapAbstraction &Heap = Opts.Heap ? *Opts.Heap : DefaultHeap;
  auto Selector = makeContextSelector(Opts.Kind, Opts.K, R->Ctxs, P);
  R->AnalysisName = analysisName(Opts.Kind, Opts.K);
  R->HeapName = Heap.name();
  if (Opts.Engine == SolverEngine::Naive) {
    NaiveSolver S(P, CH, Heap, *Selector, *R, Opts.TimeBudgetSeconds);
    S.run();
  } else if (Opts.Engine == SolverEngine::ParallelWave) {
    ParallelSolver S(P, CH, Heap, *Selector, *R, Opts.TimeBudgetSeconds,
                     Opts.SolverThreads);
    S.run();
  } else {
    Solver S(P, CH, Heap, *Selector, *R, Opts.TimeBudgetSeconds);
    S.run();
  }
  return R;
}
