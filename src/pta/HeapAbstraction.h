//===-- pta/HeapAbstraction.h - Heap abstraction policies -----*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A heap abstraction maps each allocation site to the abstract object
/// that models it. Three policies, matching the paper:
///
///  - AllocSiteAbstraction: one object per site (the mainstream default).
///  - AllocTypeAbstraction: one object per type (the naive baseline of
///    section 2.1, the paper's T-kA).
///  - MergedHeapAbstraction: an explicit merged-object map, produced by
///    the MAHJONG heap modeler (Definition 2.2) or any other oracle.
///
/// Objects whose equivalence class has more than one member are "merged"
/// and are modeled context-insensitively by the solver (section 3.6.1).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_HEAPABSTRACTION_H
#define MAHJONG_PTA_HEAPABSTRACTION_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace mahjong::pta {

/// Maps allocation sites to the abstract objects that model them.
class HeapAbstraction {
public:
  virtual ~HeapAbstraction() = default;

  /// The representative object modeling allocation site \p O.
  virtual ObjId repr(ObjId O) const = 0;

  /// True if \p O was merged with at least one other site (merged objects
  /// are modeled context-insensitively; paper section 3.6.1).
  virtual bool isMerged(ObjId O) const = 0;

  /// Short policy name for reports ("alloc-site", "alloc-type", ...).
  virtual std::string name() const = 0;

  /// Number of distinct abstract objects this abstraction produces for
  /// the first \p NumObjs allocation sites (the paper's Figure 8 metric).
  uint32_t countAbstractObjects(uint32_t NumObjs) const;
};

/// The identity abstraction: one abstract object per allocation site.
class AllocSiteAbstraction final : public HeapAbstraction {
public:
  ObjId repr(ObjId O) const override { return O; }
  bool isMerged(ObjId) const override { return false; }
  std::string name() const override { return "alloc-site"; }
};

/// One abstract object per class type; the representative is the first
/// allocation site of that type. o_null is never merged.
class AllocTypeAbstraction final : public HeapAbstraction {
public:
  explicit AllocTypeAbstraction(const ir::Program &P);

  ObjId repr(ObjId O) const override { return Repr[O.idx()]; }
  bool isMerged(ObjId O) const override { return Merged[O.idx()]; }
  std::string name() const override { return "alloc-type"; }

private:
  std::vector<ObjId> Repr;
  std::vector<bool> Merged;
};

/// A heap abstraction given by an explicit merged-object map (the output
/// of the MAHJONG heap modeler).
class MergedHeapAbstraction final : public HeapAbstraction {
public:
  /// \p MergedObjectMap maps each object to its representative; index I
  /// holds the representative of object I.
  MergedHeapAbstraction(std::vector<ObjId> MergedObjectMap, std::string Name);

  ObjId repr(ObjId O) const override { return Repr[O.idx()]; }
  bool isMerged(ObjId O) const override { return Merged[O.idx()]; }
  std::string name() const override { return Name; }

private:
  std::vector<ObjId> Repr;
  std::vector<bool> Merged;
  std::string Name;
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_HEAPABSTRACTION_H
