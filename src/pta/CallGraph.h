//===-- pta/CallGraph.h - On-the-fly call graph ---------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph the solver discovers on the fly. Edges are stored
/// context-sensitively ((caller context, call site) -> cs-method) and can
/// be projected context-insensitively for the type-dependent clients,
/// matching how Doop reports "#call graph edges".
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_CALLGRAPH_H
#define MAHJONG_PTA_CALLGRAPH_H

#include "ir/Program.h"
#include "pta/Context.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mahjong::pta {

/// Context-sensitive call graph with CI projections.
class CallGraph {
public:
  /// Records the edge (CallerCtx, Site) -> (CalleeCtx, Callee).
  /// \returns true if the context-sensitive edge is new.
  bool addEdge(ContextId CallerCtx, CallSiteId Site, ContextId CalleeCtx,
               MethodId Callee);

  /// Number of distinct context-sensitive edges.
  uint64_t numCSEdges() const { return CSEdges.size(); }

  /// Number of distinct (call site -> method) edges, the paper's
  /// "#call graph edges" metric.
  uint64_t numCIEdges() const { return CIEdges.size(); }

  /// Distinct context-insensitive callee methods of \p Site.
  const std::vector<MethodId> &calleesOf(CallSiteId Site) const;

  /// All call sites with at least one edge.
  std::vector<CallSiteId> callSitesWithEdges() const;

private:
  std::unordered_set<uint64_t> CSEdges; ///< hashed (csCallSite, csCallee)
  std::unordered_set<uint64_t> CIEdges; ///< packed (site, method)
  std::unordered_map<uint32_t, std::vector<MethodId>> SiteTargets;
  // CS call-site / cs-callee interning for the 64-bit cs edge key.
  Interner<Id<struct CSSiteTag>, uint64_t> CSSites;
  Interner<CSMethodId, uint64_t> CSCallees;
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_CALLGRAPH_H
