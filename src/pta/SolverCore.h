//===-- pta/SolverCore.h - Shared solver statement machinery --*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-independent half of the points-to solver: reachability,
/// statement expansion, virtual dispatch, and on-the-fly call processing.
/// Both propagation engines — the wave engine (Solver.h) and the retained
/// textbook reference (NaiveSolver.h) — derive from this core and supply
/// storage, edge management and scheduling through the virtual hooks, so
/// any semantic difference between the two engines can only come from the
/// propagation core itself, which is exactly what the differential tests
/// compare.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_SOLVERCORE_H
#define MAHJONG_PTA_SOLVERCORE_H

#include "pta/PointerAnalysis.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mahjong::pta {

/// One fixpoint computation. Construct an engine, call run(), read the
/// PTAResult.
class SolverCore {
public:
  SolverCore(const ir::Program &P, const ir::ClassHierarchy &CH,
             const HeapAbstraction &Heap, ContextSelector &Selector,
             PTAResult &R, double TimeBudgetSeconds);
  virtual ~SolverCore() = default;

  /// Runs to fixpoint. \returns false if the time budget was exhausted.
  virtual bool run() = 0;

protected:
  // --- Engine hooks ---

  /// Grows the engine's per-node arrays (and R.Pts) to cover index \p Idx.
  virtual void ensureNodeStorage(uint32_t Idx) = 0;

  /// Adds the PFG edge Src -> Dst (deduplicated) and seeds Dst with Src's
  /// current points-to set.
  virtual void addEdge(PtrNodeId Src, PtrNodeId Dst,
                       TypeId Filter = TypeId()) = 0;

  /// Injects \p Delta into node \p N: allocation seeds, null seeds and
  /// receiver binding.
  virtual void seedDelta(PtrNodeId N, PointsToSet &&Delta) = 0;

  /// Records a newly interned cs-object and its dynamic type. The wave
  /// engine extends this to keep the type-filter bitmaps current.
  virtual void registerCSObj(uint32_t CSObjRaw, TypeId T);

  // --- Shared services ---

  PtrNodeId node(uint64_t Key);
  PtrNodeId varNode(ContextId C, VarId V);
  PtrNodeId fieldNode(CSObjId O, FieldId F);
  PtrNodeId staticNode(FieldId F);

  void addReachable(ContextId C, MethodId M);
  void processStaticCall(ContextId C, CallSiteId Site);
  void onVarGrowth(ContextId C, VarId V, const PointsToSet &Delta);

  /// Dispatches every new receiver of \p Site in \p Delta, grouping the
  /// receivers by (callee, callee-context) so each group pays for the
  /// this-binding, call-graph edge and arg/ret wiring once instead of
  /// once per receiver object.
  void processCallsOnDelta(ContextId C, CallSiteId Site,
                           const PointsToSet &Delta);
  MethodId dispatch(TypeId RecvType, CallSiteId Site);

  /// Fills the engine-independent PTAStats counters (contexts, cs
  /// entities, reachability, var-pts volume, set bytes).
  void finalizeStats();

  const ir::Program &P;
  const ir::ClassHierarchy &CH;
  const HeapAbstraction &Heap;
  ContextSelector &Selector;
  PTAResult &R;
  double TimeBudget;

  /// Per-variable structural usage (loads/stores/calls with this base),
  /// built once up front.
  struct VarUsage {
    std::vector<const ir::Stmt *> Loads;
    std::vector<const ir::Stmt *> Stores;
    std::vector<CallSiteId> Calls;
  };
  std::vector<VarUsage> Usage;

  std::unordered_set<uint32_t> ReachableCS; ///< CSMethodId raw values
  std::unordered_map<uint64_t, MethodId> DispatchCache;

  /// Scratch state of processCallsOnDelta, kept as members so the maps'
  /// bucket arrays survive across calls (the function is not reentrant:
  /// nothing downstream of it re-enters call processing).
  struct BindGroup {
    MethodId Callee;
    ContextId Ctx;
    PointsToSet Recvs;
  };
  std::vector<BindGroup> BindGroups;
  std::unordered_map<uint64_t, uint32_t> BindIndex; ///< (callee,ctx) -> idx
  std::vector<TypeId> CSObjType; ///< type per CSObjId, grown lazily
  uint32_t CSNullObjRaw = 0;
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_SOLVERCORE_H
