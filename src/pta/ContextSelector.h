//===-- pta/ContextSelector.h - Context-sensitivity policies --*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context selectors implement the three mainstream context-sensitivity
/// flavours the paper evaluates: k-call-site-sensitivity (k-CFA),
/// k-object-sensitivity, and k-type-sensitivity, plus the
/// context-insensitive baseline. A selector decides (a) the calling
/// context of a callee and (b) the heap context of an allocation. By
/// convention (paper section 3.6.1), heap contexts keep k-1 elements.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_CONTEXTSELECTOR_H
#define MAHJONG_PTA_CONTEXTSELECTOR_H

#include "ir/Program.h"
#include "pta/Context.h"

#include <memory>
#include <string>

namespace mahjong::pta {

/// Which flavour of context-sensitivity to run.
enum class ContextKind : uint8_t {
  Insensitive,
  CallSite, ///< k-CFA
  Object,   ///< k-object-sensitivity
  Type,     ///< k-type-sensitivity
  Hybrid,   ///< selective hybrid: object contexts for virtual calls,
            ///< call-site contexts for static calls (Kastrinis &
            ///< Smaragdakis, PLDI'13 — Doop's "selective 2objH")
};

/// Strategy object choosing callee and heap contexts.
class ContextSelector {
public:
  virtual ~ContextSelector() = default;

  /// Context for the callee of a virtual/special call dispatching on the
  /// receiver (heap context \p RecvHCtx, object \p RecvObj).
  virtual ContextId selectCallee(ContextId CallerCtx, CallSiteId Site,
                                 ContextId RecvHCtx, ObjId RecvObj) = 0;

  /// Context for the callee of a static call.
  virtual ContextId selectStaticCallee(ContextId CallerCtx,
                                       CallSiteId Site) = 0;

  /// Heap context for an allocation executed under \p MethodCtx.
  virtual ContextId selectHeap(ContextId MethodCtx, ObjId Obj) = 0;

  virtual std::string name() const = 0;
};

/// Creates the selector for \p Kind with depth \p K, allocating contexts
/// in \p Ctxs. For k-type-sensitivity the program is consulted for the
/// class containing each allocation site.
std::unique_ptr<ContextSelector> makeContextSelector(ContextKind Kind,
                                                     unsigned K,
                                                     ContextTable &Ctxs,
                                                     const ir::Program &P);

/// Human-readable analysis name, e.g. "2obj", "3type", "2cs", "ci".
std::string analysisName(ContextKind Kind, unsigned K);

} // namespace mahjong::pta

#endif // MAHJONG_PTA_CONTEXTSELECTOR_H
