//===-- pta/PointerAnalysis.h - Analysis facade and results ---*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point for running a points-to analysis: pick a context
/// flavour (ci/k-cs/k-obj/k-type), a context depth and a heap abstraction,
/// and receive a PTAResult holding the full solution — points-to sets of
/// every context-sensitive variable and object field, the on-the-fly call
/// graph, reachability, and run statistics. The type-dependent clients
/// (src/clients) and the MAHJONG pre-analysis consumer (src/core) are both
/// built on PTAResult.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_POINTERANALYSIS_H
#define MAHJONG_PTA_POINTERANALYSIS_H

#include "ir/ClassHierarchy.h"
#include "ir/Program.h"
#include "pta/CSManager.h"
#include "pta/CallGraph.h"
#include "pta/Context.h"
#include "pta/ContextSelector.h"
#include "pta/HeapAbstraction.h"
#include "support/Histogram.h"
#include "support/PointsToSet.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mahjong::pta {

struct PtrNodeTag;
/// Dense id of a pointer node (cs-variable, cs-object field, or static
/// field) in the solver's pointer-flow graph.
using PtrNodeId = Id<PtrNodeTag>;

/// Counters describing one analysis run.
struct PTAStats {
  double Seconds = 0;
  bool TimedOut = false;
  uint64_t NumContexts = 0;
  uint64_t NumCSVars = 0;
  uint64_t NumCSObjs = 0;
  uint64_t NumCSMethods = 0;
  uint64_t NumReachableMethods = 0;
  uint64_t VarPtsEntries = 0; ///< total size of all cs-variable points-to sets
  uint64_t WorklistPops = 0;
  // Wave-propagation engine counters (zero under the naive engine).
  uint64_t SCCsCollapsed = 0;  ///< copy-edge SCCs merged online
  uint64_t NodesCollapsed = 0; ///< nodes absorbed into a representative
  uint64_t FilterBitmapHits = 0; ///< cast filters served by a type bitmap
  /// Live chunk bytes of the final flattened solution. A pure function
  /// of the computed sets, so it is identical across engines that agree
  /// bit for bit (see tests/pta/StatsConservationTest.cpp).
  uint64_t SetBytes = 0;
  /// Engine-owned working set at the end of the run: capacity bytes of
  /// every solution + pending set, measured before the wave engines
  /// flatten representatives back onto their classes. Not comparable
  /// across engines.
  uint64_t WorkingSetBytes = 0;
  // Wave-parallel engine counters (zero under the serial engines).
  uint64_t ParallelWaves = 0;  ///< waves executed by the sharded sweep
  uint64_t DeltasBuffered = 0; ///< delivery records emitted into buffers
  uint64_t DeltasMerged = 0;   ///< delivery records folded by the merge
  /// Delivery records buffered but never folded because the run timed
  /// out mid-wave. The conservation law the parallel engine guarantees is
  /// DeltasBuffered == DeltasMerged + DeltasDropped — with DeltasDropped
  /// nonzero only when TimedOut (see tests/pta/StatsConservationTest.cpp).
  uint64_t DeltasDropped = 0;
  /// Sweep sub-chunks executed by a worker other than their planned
  /// owner. Scheduling telemetry: like Seconds, not deterministic.
  uint64_t WorkSteals = 0;
  /// How uneven the *planned* per-worker sweep work was, before stealing
  /// rebalanced it: per wave, (max - mean) / mean over each worker's
  /// measured sweep cost (pops + delta elements diffed + records
  /// emitted), in percent; aggregated across waves as a work-weighted
  /// mean. A pure function of the wave structure, so it is deterministic
  /// across runs and machines.
  double ShardImbalancePct = 0;
  /// Max of the same per-wave metric over waves with non-trivial work
  /// (pta::ImbalanceAccumulator::MinWaveWorkForMax units or more).
  double ShardImbalanceMaxPct = 0;
};

/// The complete solution of one points-to analysis run.
///
/// Pointer nodes are interned 64-bit keys: the top two bits select the
/// node kind, the payload identifies the entity (see the static key
/// helpers). Points-to sets contain raw CSObjId values; use CSM to decode
/// them to (heap context, object).
class PTAResult {
public:
  PTAResult(const ir::Program &P, const ir::ClassHierarchy &CH)
      : P(P), CH(CH), MethodCtxs(P.numMethods()),
        ReachableMethod(P.numMethods(), false) {}

  const ir::Program &P;
  const ir::ClassHierarchy &CH;
  ContextTable Ctxs;
  CSManager CSM;
  CallGraph CG;
  Interner<PtrNodeId, uint64_t> Nodes;
  std::vector<PointsToSet> Pts; ///< indexed by PtrNodeId
  std::vector<std::vector<ContextId>> MethodCtxs; ///< per MethodId
  std::vector<bool> ReachableMethod;              ///< CI reachability
  PTAStats Stats;
  /// Wall-time of each propagation wave in microseconds (empty under the
  /// naive engine, which has no wave structure). Surfaced as the
  /// "pta.wave_us" latency histogram in the CLI metrics export.
  LogHistogram WaveMicros;
  std::string AnalysisName;
  std::string HeapName;
  /// The concrete engine that produced this result ("wave", "naive",
  /// "parallel") — under SolverEngine::Auto, the one the heuristic chose.
  std::string EngineName;

  // --- Pointer-node key encoding ---
  static constexpr uint64_t KindVar = 0;
  static constexpr uint64_t KindField = 1ull << 62;
  static constexpr uint64_t KindStatic = 2ull << 62;
  static constexpr unsigned FieldBits = 20;

  static uint64_t varKey(CSVarId V) { return KindVar | V.idx(); }
  static uint64_t fieldKey(CSObjId O, FieldId F) {
    assert(F.idx() < (1u << FieldBits) && "field id overflows node key");
    return KindField | (static_cast<uint64_t>(O.idx()) << FieldBits) |
           F.idx();
  }
  static uint64_t staticKey(FieldId F) { return KindStatic | F.idx(); }
  static uint64_t kindOf(uint64_t Key) { return Key & (3ull << 62); }
  static CSVarId csVarOf(uint64_t Key) {
    return CSVarId(static_cast<uint32_t>(Key));
  }
  static std::pair<CSObjId, FieldId> csObjFieldOf(uint64_t Key) {
    uint64_t Payload = Key & ~(3ull << 62);
    return {CSObjId(static_cast<uint32_t>(Payload >> FieldBits)),
            FieldId(static_cast<uint32_t>(Payload & ((1u << FieldBits) - 1)))};
  }
  static FieldId staticFieldOf(uint64_t Key) {
    return FieldId(static_cast<uint32_t>(Key));
  }

  // --- Solution queries ---

  /// Points-to set of variable \p V under context \p C, or null if the
  /// solver never created that pointer.
  const PointsToSet *varPts(ContextId C, VarId V) const;

  /// Context-insensitive projection of \p V's points-to set: the set of
  /// base ObjId values over all contexts of its method.
  PointsToSet ciVarPts(VarId V) const;

  /// Points-to set of \p O.\p F, or null.
  const PointsToSet *fieldPts(CSObjId O, FieldId F) const;

  /// Invokes \p Fn for every instance-field pointer with a nonempty set.
  void forEachFieldPts(
      const std::function<void(CSObjId, FieldId, const PointsToSet &)> &Fn)
      const;

  /// Decodes a raw points-to element to its allocation-site object.
  ObjId baseObjOf(uint32_t CSObjRaw) const {
    return CSM.objOf(CSObjId(CSObjRaw)).second;
  }

  /// Dynamic type of a raw points-to element.
  TypeId typeOfCSObj(uint32_t CSObjRaw) const {
    return P.obj(baseObjOf(CSObjRaw)).Type;
  }
};

/// Which propagation core solves the constraint system. All engines
/// compute the same fixpoint (see tests/pta/SolverEquivalenceTest.cpp and
/// tests/pta/ParallelSolverEquivalenceTest.cpp); Naive is retained as the
/// differential reference and perf baseline.
enum class SolverEngine {
  Wave,         ///< cycle-collapsing, topologically ordered wave propagation
  Naive,        ///< textbook FIFO worklist
  ParallelWave, ///< wave engine with sharded multi-threaded sweeps
  Auto,         ///< pick one of the above from cheap pre-solve heuristics
};

/// The CLI-facing name of a *concrete* engine ("wave", "naive",
/// "parallel"); Auto resolves before naming.
const char *solverEngineName(SolverEngine Engine);

/// Resolves SolverEngine::Auto to a concrete engine from cheap pre-solve
/// size proxies. The heuristic, calibrated against BENCH_solver.json /
/// BENCH_parallel_solver.json at full scale:
///
///  - Small constraint systems fit in cache and converge in a handful of
///    waves; the naive FIFO worklist wins there because conditioning
///    passes and wave sorting cost more than they save.
///  - Large systems are dominated by redundant propagation around copy
///    cycles; the wave engine's collapsing pays for itself many times
///    over (eclipse/jpc run ~1.7x faster than naive).
///  - The sharded parallel engine only amortizes its buffering overhead
///    when there are both workers to use (\p HardwareThreads >= 4) and
///    enough per-wave work to split.
///
/// A pure function of its arguments: same program + same thread budget =>
/// same engine, on any machine with the same core count.
SolverEngine chooseSolverEngine(uint64_t NumVars, uint64_t NumObjs,
                                unsigned HardwareThreads);

/// Convenience overload: size proxies from \p P, worker budget from
/// \p SolverThreads (0 = std::thread::hardware_concurrency()).
SolverEngine chooseSolverEngine(const ir::Program &P, unsigned SolverThreads);

/// Options selecting the analysis variant.
struct AnalysisOptions {
  ContextKind Kind = ContextKind::Insensitive;
  unsigned K = 0;
  /// The propagation engine; Auto resolves via chooseSolverEngine at run
  /// start (the CLI default). The library default stays Wave so embedders
  /// get the deterministic single-engine behavior they always had.
  SolverEngine Engine = SolverEngine::Wave;
  /// Heap abstraction; null means the allocation-site abstraction.
  const HeapAbstraction *Heap = nullptr;
  /// Wall-clock budget in seconds; 0 means unlimited. A run that exceeds
  /// the budget stops early with Stats.TimedOut set (the paper's
  /// "unscalable within 5 hours" rows).
  double TimeBudgetSeconds = 0;
  /// Worker threads for SolverEngine::ParallelWave (0 = hardware
  /// concurrency). The result is identical at every thread count — the
  /// sharded sweep's merge order is a function of the wave, not of the
  /// schedule — so this is purely a performance knob. Ignored by the
  /// serial engines.
  unsigned SolverThreads = 0;
};

/// Runs the points-to analysis described by \p Opts on \p P.
std::unique_ptr<PTAResult> runPointerAnalysis(const ir::Program &P,
                                              const ir::ClassHierarchy &CH,
                                              const AnalysisOptions &Opts);

} // namespace mahjong::pta

namespace mahjong::obs {
class MetricsRegistry;
} // namespace mahjong::obs

namespace mahjong::pta {

/// Publishes every PTAStats field into \p Reg under
/// "<Prefix><snake_case_field>" — integral fields as counters, Seconds
/// and the imbalance percentages as gauges. The registry is the machine-
/// readable face of the hand-printed CLI stats block; keep the two in
/// sync.
void exportStats(const PTAStats &S, obs::MetricsRegistry &Reg,
                 const std::string &Prefix = "pta.");

} // namespace mahjong::pta

#endif // MAHJONG_PTA_POINTERANALYSIS_H
