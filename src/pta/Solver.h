//===-- pta/Solver.h - Wave-propagation points-to solver ------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wave-propagation engine computing an Andersen-style, flow-
/// insensitive, (optionally) context-sensitive points-to solution with an
/// on-the-fly call graph. Three optimizations over the retained textbook
/// reference (NaiveSolver.h), all semantics-preserving:
///
///  - **Online cycle collapsing.** Copy-edge cycles are ubiquitous in
///    Andersen constraint graphs; every node of a cycle converges to the
///    same set, so propagating around it one delta at a time is wasted
///    work. The engine periodically runs Tarjan SCC over the unfiltered
///    copy edges of the collapsed graph and merges each multi-node SCC
///    into one representative (support::DisjointSets): one points-to set,
///    one pending delta, one outgoing edge list per class. Filtered
///    (cast) edges never participate — a filter must stay on the edge.
///
///  - **Topology-aware scheduling.** The worklist is processed in
///    *waves*: the dirty set is snapshotted, sorted by the (periodically
///    recomputed) topological order of the collapsed graph, and swept
///    once; nodes dirtied during the sweep form the next wave. Sorting
///    makes deltas flow with the graph inside a wave, and the wave
///    boundary preserves FIFO-style batching — a node is processed at
///    most once per wave no matter how many deltas reach it, where a
///    strict priority queue would reprocess a low-order node per delta.
///
///  - **Type-filter bitmaps.** Per filter type, a lazily built
///    PointsToSet of all cs-objects whose type passes the filter turns a
///    cast edge into one bitmap intersection instead of a per-element
///    subtype test.
///
/// The representative contract: every access to Pts/Pending/Out/Queued
/// must go through the class representative (rep()); member nodes retain
/// their interned PtrNodeId, and run() flattens the final solution back
/// onto every member so PTAResult is indistinguishable from the
/// reference engine's (see tests/pta/SolverEquivalenceTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_SOLVER_H
#define MAHJONG_PTA_SOLVER_H

#include "pta/SolverCore.h"
#include "support/DisjointSets.h"
#include "support/Timer.h"

#include <unordered_map>

namespace mahjong::pta {

/// The default fixpoint engine (SolverEngine::Wave). The wave-parallel
/// engine (ParallelSolver.h) derives from it, reusing the entire wave
/// infrastructure — storage layout, enqueueing, cycle collapsing,
/// conditioning, flattening — and replacing only the per-wave sweep.
class Solver : public SolverCore {
public:
  using SolverCore::SolverCore;

  bool run() override;

protected:
  struct Edge {
    PtrNodeId Target; ///< re-resolved through rep() at firing time
    TypeId Filter;    ///< cast target; invalid = unfiltered
  };

  void ensureNodeStorage(uint32_t Idx) override;
  void addEdge(PtrNodeId Src, PtrNodeId Dst, TypeId Filter) override;
  void seedDelta(PtrNodeId N, PointsToSet &&Delta) override;
  void registerCSObj(uint32_t CSObjRaw, TypeId T) override;

  /// Representative of \p Idx's collapsed class (path-compressing).
  uint32_t rep(uint32_t Idx) { return Reps.find(Idx); }

  /// Merges \p Delta into representative \p N's pending set and marks it
  /// dirty for the next wave (or later in the current one if still
  /// unprocessed there).
  void enqueue(uint32_t N, const PointsToSet &Delta);

  void propagate(uint32_t N, const PointsToSet &Delta);

  /// Bitmap of all cs-objects passing \p Filter, built on first use.
  const PointsToSet &filterBitmap(TypeId Filter);
  /// The already-built bitmap for \p Filter, or null if no cast through
  /// this type has been seen. Never inserts, so it is safe to call from
  /// concurrent readers as long as no writer runs (the parallel engine
  /// materializes every bitmap at edge-addition time, which is serial).
  const PointsToSet *filterBitmapIfBuilt(TypeId Filter) const {
    auto It = FilterObjs.find(Filter.idx());
    return It == FilterObjs.end() ? nullptr : &It->second;
  }
  PointsToSet filtered(const PointsToSet &Set, TypeId Filter);

  /// Shared run() prologue: registers the null cs-object's type and seeds
  /// the entry method under the empty context.
  void seedEntry();

  /// Shared run() epilogue: records the engine's working set, flattens
  /// representatives onto members and fills the timing/pop stats.
  void finishRun(const Timer &Clock, uint64_t Pops);

  /// Sorts a snapshotted wave by topological priority (ties by node id,
  /// making the sweep order a total, schedule-independent function of the
  /// dirty set).
  void sortWave(std::vector<uint32_t> &Wave) const;

  /// True when enough new copy edges accumulated to justify a pass.
  bool shouldRecondition() const;

  /// One wave-conditioning pass: Tarjan SCC over unfiltered copy edges of
  /// the representative graph, collapse of every multi-node SCC, fresh
  /// topological order, worklist rebuild.
  void recondition();
  void collapseScc(const std::vector<uint32_t> &Members);

  /// Copies every representative's final set onto its members, making
  /// R.Pts identical to what the reference engine produces.
  void flattenResult();

  // --- Per-node state (indexed by PtrNodeId; authoritative only at
  // representatives once classes merge) ---
  std::vector<std::vector<Edge>> Out;
  std::unordered_set<uint64_t> EdgeDedup; ///< packed (repSrc, repDst)
  std::vector<PointsToSet> Pending;
  std::vector<uint8_t> Queued;
  std::vector<uint32_t> Order; ///< topological priority (smaller = earlier)
  /// A var node's identity pre-decoded to (context, var): growth of the
  /// node's class must trigger load/store/call processing for every
  /// merged var, and decoding once at node birth keeps the hot growth
  /// loop free of NodeTable/CSManager lookups. An invalid V marks nodes
  /// with no growth handlers (field/static nodes, vars never used as a
  /// load/store/call base).
  struct VarRef {
    ContextId C;
    VarId V;
  };
  std::vector<VarRef> SelfVar;
  /// Concatenated member refs, populated only at collapsed-class
  /// representatives (including the rep's own SelfVar); empty everywhere
  /// else, so singleton nodes never pay a per-node vector allocation.
  std::vector<std::vector<VarRef>> VarMembers;
  DisjointSets Reps;

  /// Dirty nodes awaiting the next wave. run() swaps this out, sorts by
  /// Order, and sweeps; stale entries (collapsed or already-processed
  /// nodes) are dropped at visit time via Queued/rep checks.
  std::vector<uint32_t> NextWave;

  std::unordered_map<uint32_t, PointsToSet> FilterObjs; ///< by TypeId raw
  uint32_t NextFreshOrder = 0; ///< order for nodes born after the last pass
  uint64_t UnfilteredEdges = 0;
  uint64_t EdgesAtLastPass = 0;
  uint32_t WavesSinceRecondition = 0;
  uint32_t WaveTriggerInterval = 4; ///< adaptive: doubles on fruitless passes
  bool ConditionedOnce = false;
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_SOLVER_H
