//===-- pta/Solver.h - Worklist points-to solver --------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist solver computing an Andersen-style, flow-insensitive,
/// (optionally) context-sensitive points-to solution with an on-the-fly
/// call graph — the standard fixpoint Doop's Datalog rules encode,
/// implemented explicitly. One solver serves every analysis the paper
/// evaluates; the context selector and heap abstraction are the only
/// variation points.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_SOLVER_H
#define MAHJONG_PTA_SOLVER_H

#include "pta/PointerAnalysis.h"

#include <deque>
#include <unordered_set>

namespace mahjong::pta {

/// One fixpoint computation. Construct, call run(), read the PTAResult.
class Solver {
public:
  Solver(const ir::Program &P, const ir::ClassHierarchy &CH,
         const HeapAbstraction &Heap, ContextSelector &Selector,
         PTAResult &R, double TimeBudgetSeconds);

  /// Runs to fixpoint. \returns false if the time budget was exhausted.
  bool run();

private:
  // --- Pointer-flow graph ---
  struct Edge {
    PtrNodeId Target;
    TypeId Filter; ///< cast target; invalid = unfiltered
  };

  PtrNodeId node(uint64_t Key);
  PtrNodeId varNode(ContextId C, VarId V);
  PtrNodeId fieldNode(CSObjId O, FieldId F);
  PtrNodeId staticNode(FieldId F);

  /// Adds the PFG edge Src -> Dst (deduplicated) and seeds Dst with Src's
  /// current points-to set.
  void addEdge(PtrNodeId Src, PtrNodeId Dst, TypeId Filter = TypeId());

  void addToWorklist(PtrNodeId N, PointsToSet Delta);

  /// Merges \p Delta into \p N and forwards the growth along edges; var
  /// nodes additionally trigger load/store/call processing.
  void propagate(PtrNodeId N, const PointsToSet &Delta);

  PointsToSet applyFilter(const PointsToSet &Set, TypeId Filter) const;

  // --- Reachability and statement processing ---
  void addReachable(ContextId C, MethodId M);
  void processStaticCall(ContextId C, CallSiteId Site);
  void onVarGrowth(ContextId C, VarId V, const PointsToSet &Delta);
  void processCallOnRecv(ContextId C, CallSiteId Site, uint32_t CSObjRaw);

  MethodId dispatch(TypeId RecvType, CallSiteId Site);

  const ir::Program &P;
  const ir::ClassHierarchy &CH;
  const HeapAbstraction &Heap;
  ContextSelector &Selector;
  PTAResult &R;
  double TimeBudget;

  /// Per-variable structural usage (loads/stores/calls with this base),
  /// built once up front.
  struct VarUsage {
    std::vector<const ir::Stmt *> Loads;
    std::vector<const ir::Stmt *> Stores;
    std::vector<CallSiteId> Calls;
  };
  std::vector<VarUsage> Usage;

  std::vector<std::vector<Edge>> Out;     ///< indexed by PtrNodeId
  std::unordered_set<uint64_t> EdgeDedup; ///< packed (src, dst), unfiltered
  // Coalescing worklist: one pending delta per node, so bursts of tiny
  // deltas through hub nodes merge before they are propagated.
  std::vector<PointsToSet> Pending; ///< indexed by PtrNodeId
  std::vector<bool> Queued;         ///< indexed by PtrNodeId
  std::deque<PtrNodeId> Worklist;
  std::unordered_set<uint32_t> ReachableCS; ///< CSMethodId raw values
  std::unordered_map<uint64_t, MethodId> DispatchCache;
  std::vector<TypeId> CSObjType; ///< type per CSObjId, grown lazily
  uint32_t CSNullObjRaw = 0;
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_SOLVER_H
