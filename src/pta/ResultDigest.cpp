//===-- pta/ResultDigest.cpp - Canonical PTAResult comparison ---------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/ResultDigest.h"

#include <algorithm>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

namespace {

void appendCtx(std::string &S, const ContextTable &T, ContextId C) {
  S += '[';
  bool First = true;
  for (CtxElem E : T.elems(C)) {
    if (!First)
      S += ',';
    First = false;
    S += std::to_string(E);
  }
  S += ']';
}

/// A raw points-to element as "(heap-context)o<base-obj>" — both parts
/// are stable across discovery orders.
std::string objToken(const PTAResult &R, uint32_t Raw) {
  auto [HCtx, O] = R.CSM.objOf(CSObjId(Raw));
  std::string S;
  appendCtx(S, R.Ctxs, HCtx);
  S += 'o';
  S += std::to_string(O.idx());
  return S;
}

void appendSet(std::string &Line, const PTAResult &R, const PointsToSet &Set) {
  std::vector<std::string> Objs;
  Objs.reserve(Set.size());
  for (uint32_t Raw : Set)
    Objs.push_back(objToken(R, Raw));
  std::sort(Objs.begin(), Objs.end());
  Line += " {";
  for (const std::string &O : Objs) {
    Line += ' ';
    Line += O;
  }
  Line += " }";
}

} // namespace

std::vector<std::string>
mahjong::pta::canonicalResultLines(const PTAResult &R) {
  std::vector<std::string> Lines;

  for (uint32_t MI = 0; MI < R.P.numMethods(); ++MI)
    if (R.ReachableMethod[MI])
      Lines.push_back("reach " + R.P.method(MethodId(MI)).Signature);

  for (CallSiteId Site : R.CG.callSitesWithEdges())
    for (MethodId Callee : R.CG.calleesOf(Site))
      Lines.push_back("call s" + std::to_string(Site.idx()) + " -> " +
                      R.P.method(Callee).Signature);
  Lines.push_back("cs-edges " + std::to_string(R.CG.numCSEdges()));

  for (uint32_t VI = 0; VI < R.P.numVars(); ++VI) {
    VarId V(VI);
    MethodId M = R.P.var(V).Method;
    for (ContextId C : R.MethodCtxs[M.idx()]) {
      const PointsToSet *Pts = R.varPts(C, V);
      if (!Pts || Pts->empty())
        continue;
      std::string Line = "pts ";
      appendCtx(Line, R.Ctxs, C);
      Line += " v" + std::to_string(VI) + " ->";
      appendSet(Line, R, *Pts);
      Lines.push_back(std::move(Line));
    }
  }

  R.forEachFieldPts([&](CSObjId O, FieldId F, const PointsToSet &Pts) {
    std::string Line = "fpts " + objToken(R, O.idx()) + " f" +
                       std::to_string(F.idx()) + " ->";
    appendSet(Line, R, Pts);
    Lines.push_back(std::move(Line));
  });

  for (uint32_t I = 0; I < R.Nodes.size(); ++I) {
    uint64_t Key = R.Nodes.get(PtrNodeId(I));
    if (PTAResult::kindOf(Key) != PTAResult::KindStatic || R.Pts[I].empty())
      continue;
    std::string Line =
        "spts f" + std::to_string(PTAResult::staticFieldOf(Key).idx()) + " ->";
    appendSet(Line, R, R.Pts[I]);
    Lines.push_back(std::move(Line));
  }

  std::sort(Lines.begin(), Lines.end());
  return Lines;
}

uint64_t mahjong::pta::canonicalResultDigest(const PTAResult &R) {
  uint64_t H = 1469598103934665603ull;
  for (const std::string &Line : canonicalResultLines(R)) {
    for (char C : Line) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ull;
    }
    H ^= '\n';
    H *= 1099511628211ull;
  }
  return H;
}

bool mahjong::pta::equivalentResults(const PTAResult &A, const PTAResult &B,
                                     std::string *FirstDiff) {
  std::vector<std::string> LA = canonicalResultLines(A);
  std::vector<std::string> LB = canonicalResultLines(B);
  size_t N = std::min(LA.size(), LB.size());
  for (size_t I = 0; I < N; ++I) {
    if (LA[I] == LB[I])
      continue;
    if (FirstDiff)
      *FirstDiff = "A: " + LA[I] + "\nB: " + LB[I];
    return false;
  }
  if (LA.size() != LB.size()) {
    if (FirstDiff) {
      const auto &Longer = LA.size() > LB.size() ? LA : LB;
      *FirstDiff = std::string(LA.size() > LB.size() ? "only in A: "
                                                     : "only in B: ") +
                   Longer[N];
    }
    return false;
  }
  return true;
}
