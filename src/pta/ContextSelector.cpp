//===-- pta/ContextSelector.cpp - Context-sensitivity policies -------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/ContextSelector.h"

using namespace mahjong;
using namespace mahjong::pta;

namespace {

/// Context-insensitive: everything runs under the empty context.
class InsensitiveSelector final : public ContextSelector {
public:
  explicit InsensitiveSelector(ContextTable &Ctxs) : Ctxs(Ctxs) {}
  ContextId selectCallee(ContextId, CallSiteId, ContextId, ObjId) override {
    return Ctxs.empty();
  }
  ContextId selectStaticCallee(ContextId, CallSiteId) override {
    return Ctxs.empty();
  }
  ContextId selectHeap(ContextId, ObjId) override { return Ctxs.empty(); }
  std::string name() const override { return "ci"; }

private:
  ContextTable &Ctxs;
};

/// k-CFA: method contexts are the last k call sites; heap contexts keep
/// k-1 call sites.
class CallSiteSelector final : public ContextSelector {
public:
  CallSiteSelector(unsigned K, ContextTable &Ctxs) : K(K), Ctxs(Ctxs) {}
  ContextId selectCallee(ContextId CallerCtx, CallSiteId Site, ContextId,
                         ObjId) override {
    return Ctxs.push(CallerCtx, Site.idx(), K);
  }
  ContextId selectStaticCallee(ContextId CallerCtx,
                               CallSiteId Site) override {
    return Ctxs.push(CallerCtx, Site.idx(), K);
  }
  ContextId selectHeap(ContextId MethodCtx, ObjId) override {
    return Ctxs.truncate(MethodCtx, K - 1);
  }
  std::string name() const override { return std::to_string(K) + "cs"; }

private:
  unsigned K;
  ContextTable &Ctxs;
};

/// k-object-sensitivity: the callee of x.foo() runs under the receiver's
/// heap context extended with the receiver object; static calls inherit
/// the caller's context; heap contexts keep k-1 objects.
class ObjectSelector final : public ContextSelector {
public:
  ObjectSelector(unsigned K, ContextTable &Ctxs) : K(K), Ctxs(Ctxs) {}
  ContextId selectCallee(ContextId, CallSiteId, ContextId RecvHCtx,
                         ObjId RecvObj) override {
    return Ctxs.push(RecvHCtx, RecvObj.idx(), K);
  }
  ContextId selectStaticCallee(ContextId CallerCtx, CallSiteId) override {
    return CallerCtx;
  }
  ContextId selectHeap(ContextId MethodCtx, ObjId) override {
    return Ctxs.truncate(MethodCtx, K - 1);
  }
  std::string name() const override { return std::to_string(K) + "obj"; }

private:
  unsigned K;
  ContextTable &Ctxs;
};

/// k-type-sensitivity: like k-obj, but each receiver object is replaced by
/// the class type *containing its allocation site* (Smaragdakis et al.).
class TypeSelector final : public ContextSelector {
public:
  TypeSelector(unsigned K, ContextTable &Ctxs, const ir::Program &P)
      : K(K), Ctxs(Ctxs), P(P) {}
  ContextId selectCallee(ContextId, CallSiteId, ContextId RecvHCtx,
                         ObjId RecvObj) override {
    return Ctxs.push(RecvHCtx, containingType(RecvObj), K);
  }
  ContextId selectStaticCallee(ContextId CallerCtx, CallSiteId) override {
    return CallerCtx;
  }
  ContextId selectHeap(ContextId MethodCtx, ObjId) override {
    return Ctxs.truncate(MethodCtx, K - 1);
  }
  std::string name() const override { return std::to_string(K) + "type"; }

private:
  /// The class whose code contains the allocation site of \p O.
  CtxElem containingType(ObjId O) const {
    MethodId M = P.obj(O).Method;
    if (!M.isValid())
      return P.objectType().idx();
    return P.method(M).Declaring.idx();
  }

  unsigned K;
  ContextTable &Ctxs;
  const ir::Program &P;
};

/// Selective hybrid (Kastrinis & Smaragdakis): receiver-object contexts
/// at virtual/special calls, call-site push at static calls — recovers
/// precision for the static helpers plain k-obj analyzes under their
/// caller's context. Heap contexts keep k-1 elements as usual.
class HybridSelector final : public ContextSelector {
public:
  HybridSelector(unsigned K, ContextTable &Ctxs) : K(K), Ctxs(Ctxs) {}
  ContextId selectCallee(ContextId, CallSiteId, ContextId RecvHCtx,
                         ObjId RecvObj) override {
    return Ctxs.push(RecvHCtx, RecvObj.idx(), K);
  }
  ContextId selectStaticCallee(ContextId CallerCtx,
                               CallSiteId Site) override {
    return Ctxs.push(CallerCtx, Site.idx(), K);
  }
  ContextId selectHeap(ContextId MethodCtx, ObjId) override {
    return Ctxs.truncate(MethodCtx, K - 1);
  }
  std::string name() const override { return std::to_string(K) + "objH"; }

private:
  unsigned K;
  ContextTable &Ctxs;
};

} // namespace

std::unique_ptr<ContextSelector>
mahjong::pta::makeContextSelector(ContextKind Kind, unsigned K,
                                  ContextTable &Ctxs, const ir::Program &P) {
  switch (Kind) {
  case ContextKind::Insensitive:
    return std::make_unique<InsensitiveSelector>(Ctxs);
  case ContextKind::CallSite:
    assert(K >= 1 && "k-CFA needs k >= 1");
    return std::make_unique<CallSiteSelector>(K, Ctxs);
  case ContextKind::Object:
    assert(K >= 1 && "k-obj needs k >= 1");
    return std::make_unique<ObjectSelector>(K, Ctxs);
  case ContextKind::Type:
    assert(K >= 1 && "k-type needs k >= 1");
    return std::make_unique<TypeSelector>(K, Ctxs, P);
  case ContextKind::Hybrid:
    assert(K >= 1 && "hybrid needs k >= 1");
    return std::make_unique<HybridSelector>(K, Ctxs);
  }
  return nullptr;
}

std::string mahjong::pta::analysisName(ContextKind Kind, unsigned K) {
  switch (Kind) {
  case ContextKind::Insensitive:
    return "ci";
  case ContextKind::CallSite:
    return std::to_string(K) + "cs";
  case ContextKind::Object:
    return std::to_string(K) + "obj";
  case ContextKind::Type:
    return std::to_string(K) + "type";
  case ContextKind::Hybrid:
    return std::to_string(K) + "objH";
  }
  return "?";
}
