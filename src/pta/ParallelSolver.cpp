//===-- pta/ParallelSolver.cpp - Wave-parallel points-to solver -------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/ParallelSolver.h"

#include "obs/Trace.h"
#include "support/Parallel.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

ParallelSolver::ParallelSolver(const Program &P, const ClassHierarchy &CH,
                               const HeapAbstraction &Heap,
                               ContextSelector &Selector, PTAResult &R,
                               double TimeBudgetSeconds, unsigned Threads)
    : Solver(P, CH, Heap, Selector, R, TimeBudgetSeconds),
      Threads(Threads ? Threads
                      : std::max(1u, std::thread::hardware_concurrency())),
      NumShards(this->Threads) {
  if (this->Threads > 1)
    Pool = std::make_unique<ThreadPool>(this->Threads);
  Buffers.resize(NumShards);
  Segments.resize(NumShards);
  ChunkPops.resize(NumShards);
  ShardWork.assign(NumShards, 0);
  ShardMerged.resize(NumShards);
  ShardFilterHits.resize(NumShards);
}

void ParallelSolver::addEdge(PtrNodeId Src, PtrNodeId Dst, TypeId Filter) {
  // Build the bitmap now, while single-threaded: mergeShard may only go
  // through the const filterBitmapIfBuilt lookup. addEdge is invoked
  // exclusively from serial contexts (initial reachability, phase C
  // growth handlers, collapse merging), so this insertion cannot race.
  if (Filter.isValid())
    filterBitmap(Filter);
  Solver::addEdge(Src, Dst, Filter);
}

template <typename Fn>
void ParallelSolver::forEachChunk(size_t N, const Fn &Body) {
  if (Pool) {
    parallelChunks(*Pool, N, NumShards, Body);
    return;
  }
  for (size_t C = 0; C < NumShards; ++C) {
    size_t Begin = chunkBegin(N, NumShards, C);
    size_t End = chunkBegin(N, NumShards, C + 1);
    if (Begin != End)
      Body(C, Begin, End);
  }
}

uint64_t ParallelSolver::sweepChunk(const std::vector<uint32_t> &Wave,
                                    size_t Begin, size_t End, DeltaBuffer &Buf,
                                    const Timer &Clock) {
  uint64_t Pops = 0;
  // Runs on a pool worker: the span lands in that worker's trace lane.
  obs::ScopedSpan Span("sweep-chunk");
  Span.arg("nodes", End - Begin);
  for (size_t I = Begin; I < End; ++I) {
    uint32_t N = Wave[I];
    // Wave entries are unique (a node enters NextWave only on its
    // Queued 0->1 transition), so this worker owns N's row outright:
    // R.Pts[N], Pending[N] and Queued[N] are touched by no one else.
    if (!Queued[N] || !Reps.isRep(N))
      continue; // stale: merged away, or re-listed by a conditioning pass
    Queued[N] = 0;
    if ((++Pops & 0xFFF) == 0) {
      if (Stop.load(std::memory_order_relaxed))
        break;
      if (TimeBudget > 0 && Clock.seconds() > TimeBudget) {
        Stop.store(true, std::memory_order_relaxed);
        break;
      }
    }
    PointsToSet Delta = std::move(Pending[N]);
    Pending[N].clear();
    PointsToSet Diff = R.Pts[N].differenceFrom(Delta);
    if (Diff.empty())
      continue;
    R.Pts[N].unionWith(Diff);
    const std::vector<Edge> &Edges = Out[N];
    bool HasHandlers = !VarMembers[N].empty() || SelfVar[N].V.isValid();
    if (Edges.empty() && !HasHandlers)
      continue;
    uint32_t Slot = Buf.addDelta(N, std::move(Diff));
    for (const Edge &E : Edges) {
      // Read-only representative resolution: the compressing find()
      // would store into Parent while sibling workers load from it.
      uint32_t T = Reps.findReadOnly(E.Target.idx());
      if (T == N)
        continue; // target collapsed into this class since the edge was added
      Buf.emit(shardOf(T), T, Slot,
               E.Filter.isValid() ? E.Filter.idx() + 1 : 0);
    }
  }
  return Pops;
}

void ParallelSolver::mergeShard(uint32_t Shard) {
  obs::ScopedSpan Span("merge-shard");
  std::vector<uint32_t> &Seg = Segments[Shard];
  uint64_t Merged = 0, FilterHits = 0;
  // Fixed buffer order 0..S-1, emission order within a bucket: the fold
  // sequence for any target is a pure function of the wave, never of
  // thread scheduling.
  for (const DeltaBuffer &Buf : Buffers) {
    for (const DeltaBuffer::Record &Rec : Buf.records(Shard)) {
      assert(shardOf(Rec.Target) == Shard && "record in wrong bucket");
      const PointsToSet &D = Buf.delta(Rec.DeltaSlot);
      ++Merged;
      if (Rec.FilterPlus1 == 0) {
        Pending[Rec.Target].unionWith(D);
      } else {
        const PointsToSet *Bitmap =
            filterBitmapIfBuilt(TypeId(Rec.FilterPlus1 - 1));
        assert(Bitmap && "filter bitmap not materialized at addEdge time");
        PointsToSet Filtered = D;
        Filtered.intersectWith(*Bitmap);
        ++FilterHits;
        if (Filtered.empty())
          continue; // nothing passed the cast; the record still counts
        Pending[Rec.Target].unionWith(Filtered);
      }
      if (!Queued[Rec.Target]) {
        Queued[Rec.Target] = 1;
        Seg.push_back(Rec.Target);
      }
    }
  }
  ShardMerged[Shard] = Merged;
  ShardFilterHits[Shard] = FilterHits;
}

void ParallelSolver::runGrowthHandlers() {
  // Buffers hold contiguous chunks of the sorted wave, so walking them in
  // shard order replays deltas in exactly the order the serial sweep
  // would have reached the nodes. Everything below may intern nodes, add
  // edges and enqueue — all of it single-threaded.
  for (const DeltaBuffer &Buf : Buffers) {
    size_t NumDeltas = Buf.numDeltas();
    for (size_t I = 0; I < NumDeltas; ++I) {
      uint32_t N = Buf.deltaNode(I);
      const PointsToSet &Diff = Buf.deltaSet(I);
      if (VarMembers[N].empty()) {
        VarRef Self = SelfVar[N];
        if (Self.V.isValid())
          onVarGrowth(Self.C, Self.V, Diff);
      } else {
        size_t NumVars = VarMembers[N].size();
        for (size_t J = 0; J < NumVars; ++J) {
          VarRef M = VarMembers[N][J];
          onVarGrowth(M.C, M.V, Diff);
        }
      }
    }
  }
}

bool ParallelSolver::run() {
  Timer Clock;
  seedEntry();

  uint64_t Pops = 0;
  std::vector<uint32_t> Wave;
  while (!R.Stats.TimedOut) {
    if (shouldRecondition())
      recondition();
    if (NextWave.empty())
      break;
    ++WavesSinceRecondition;
    ++R.Stats.ParallelWaves;
    Wave.swap(NextWave);
    sortWave(Wave);
    obs::ScopedSpan WaveSpan("pwave");
    WaveSpan.arg("nodes", Wave.size());
    Timer WaveClock;

    // Phase A: sharded sweep. Workers write only rows of nodes they pop
    // and their private buffer; structural state is read-only.
    for (uint32_t C = 0; C < NumShards; ++C) {
      Buffers[C].reset(NumShards);
      ChunkPops[C] = 0;
    }
    {
      obs::ScopedSpan Phase("sweep");
      forEachChunk(Wave.size(), [&](size_t C, size_t Begin, size_t End) {
        ChunkPops[C] = sweepChunk(Wave, Begin, End, Buffers[C], Clock);
      });
    }
    for (uint32_t C = 0; C < NumShards; ++C) {
      Pops += ChunkPops[C];
      uint64_t Emitted = Buffers[C].numRecords();
      ShardWork[C] += Emitted;
      R.Stats.DeltasBuffered += Emitted;
    }
    if (Stop.load(std::memory_order_relaxed)) {
      R.Stats.TimedOut = true;
      break; // buffered deliveries are dropped; the result is partial
    }

    // Phase B: sharded merge. Worker t owns exactly the Pending/Queued
    // rows of targets in shard t.
    {
      obs::ScopedSpan Phase("merge");
      forEachChunk(NumShards, [&](size_t, size_t Begin, size_t End) {
        for (size_t T = Begin; T < End; ++T)
          mergeShard(static_cast<uint32_t>(T));
      });
    }
    for (uint32_t T = 0; T < NumShards; ++T) {
      R.Stats.DeltasMerged += ShardMerged[T];
      R.Stats.FilterBitmapHits += ShardFilterHits[T];
      NextWave.insert(NextWave.end(), Segments[T].begin(), Segments[T].end());
      Segments[T].clear();
    }
    assert(R.Stats.DeltasMerged == R.Stats.DeltasBuffered &&
           "merge phase lost or duplicated a buffered delivery");

    // Phase C: serialized growth handlers in wave order.
    {
      obs::ScopedSpan Phase("growth");
      runGrowthHandlers();
    }
    R.WaveMicros.record(static_cast<uint64_t>(WaveClock.seconds() * 1e6));
    Wave.clear();
  }

  // Imbalance over the whole run: how much the busiest sweep chunk
  // exceeded the mean, in percent of the mean.
  uint64_t Total = 0, Max = 0;
  for (uint64_t W : ShardWork) {
    Total += W;
    Max = std::max(Max, W);
  }
  if (Total > 0 && NumShards > 1) {
    double Mean = static_cast<double>(Total) / NumShards;
    R.Stats.ShardImbalancePct = (static_cast<double>(Max) - Mean) / Mean * 100.0;
  }

  finishRun(Clock, Pops);
  return !R.Stats.TimedOut;
}
