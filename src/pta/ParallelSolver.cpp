//===-- pta/ParallelSolver.cpp - Wave-parallel points-to solver -------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/ParallelSolver.h"

#include "obs/Trace.h"
#include "support/Parallel.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::pta;

ParallelSolver::ParallelSolver(const Program &P, const ClassHierarchy &CH,
                               const HeapAbstraction &Heap,
                               ContextSelector &Selector, PTAResult &R,
                               double TimeBudgetSeconds, unsigned Threads)
    : Solver(P, CH, Heap, Selector, R, TimeBudgetSeconds),
      Threads(Threads ? Threads
                      : std::max(1u, std::thread::hardware_concurrency())),
      NumShards(this->Threads) {
  if (this->Threads > 1)
    Pool = std::make_unique<ThreadPool>(this->Threads);
  Segments.resize(NumShards);
  ShardMerged.resize(NumShards);
  ShardFilterHits.resize(NumShards);
  WorkerWork.resize(this->Threads);
}

void ParallelSolver::addEdge(PtrNodeId Src, PtrNodeId Dst, TypeId Filter) {
  // Build the bitmap now, while single-threaded: mergeShard may only go
  // through the const filterBitmapIfBuilt lookup. addEdge is invoked
  // exclusively from serial contexts (initial reachability, phase C
  // growth handlers, collapse merging), so this insertion cannot race.
  if (Filter.isValid())
    filterBitmap(Filter);
  Solver::addEdge(Src, Dst, Filter);
}

void ParallelSolver::planWave(const std::vector<uint32_t> &Wave) {
  // Weigh every node of the sorted wave: out-degree (records to emit)
  // plus pending size (set work). Both are O(1) reads of state only this
  // serial context mutates.
  Weights.resize(Wave.size());
  for (size_t I = 0; I < Wave.size(); ++I) {
    uint32_t N = Wave[I];
    Weights[I] = sweepWeight(Out[N].size(), Pending[N].size());
  }
  uint32_t M = static_cast<uint32_t>(std::min<size_t>(
      Wave.size(), static_cast<size_t>(NumShards) * kChunksPerWorker));
  M = std::max(M, 1u);
  weightedChunkBounds(Weights, M, Bounds, Prefix);
  WaveChunks = M;

  // Storage only ever grows: a wave needing fewer sub-chunks than a past
  // one reuses the front of the same buffers (allocation-flat steady
  // state; pinned by tests/support/DeltaBufferTest.cpp).
  if (Buffers.size() < M)
    Buffers.resize(M);
  if (ChunkPops.size() < M) {
    ChunkPops.resize(M);
    ChunkWork.resize(M);
  }
  if (FlagCap < M) {
    Claimed = std::make_unique<std::atomic<uint8_t>[]>(M);
    Sealed = std::make_unique<std::atomic<uint8_t>[]>(M);
    FlagCap = M;
  }
  for (uint32_t C = 0; C < M; ++C) {
    Buffers[C].reset(NumShards);
    ChunkPops[C] = 0;
    ChunkWork[C] = 0;
    // Relaxed is enough: the pool's enqueue/wait pair orders these
    // serial stores before any worker load.
    Claimed[C].store(0, std::memory_order_relaxed);
    Sealed[C].store(0, std::memory_order_relaxed);
  }
  for (uint32_t T = 0; T < NumShards; ++T) {
    ShardMerged[T] = 0;
    ShardFilterHits[T] = 0;
  }
  NextMergeShard.store(0, std::memory_order_relaxed);
}

void ParallelSolver::sweepChunk(const std::vector<uint32_t> &Wave, uint32_t C,
                                const Timer &Clock) {
  if (Stop.load(std::memory_order_relaxed))
    return; // timed out while this chunk waited: nothing swept
  const size_t Begin = Bounds[C], End = Bounds[C + 1];
  DeltaBuffer &Buf = Buffers[C];
  uint64_t Pops = 0;
  // Measured sweep work, in the planner's own units (one per pop, one per
  // pending element diffed, one per record emitted) — recordWaveBalance
  // compares what each planned range actually cost.
  uint64_t Work = 0;
  // Runs on a pool worker: the span lands in that worker's trace lane.
  obs::ScopedSpan Span("sweep-chunk");
  Span.arg("nodes", End - Begin);
  for (size_t I = Begin; I < End; ++I) {
    uint32_t N = Wave[I];
    // Wave entries are unique (a node enters NextWave only on its
    // Queued 0->1 transition), so this worker owns N's row outright:
    // R.Pts[N], Pending[N] and Queued[N] are touched by no one else.
    if (!Queued[N] || !Reps.isRep(N))
      continue; // stale: merged away, or re-listed by a conditioning pass
    Queued[N] = 0;
    if ((++Pops & 0x3F) == 0) {
      if (Stop.load(std::memory_order_relaxed))
        break;
      if (TimeBudget > 0 && Clock.seconds() > TimeBudget) {
        Stop.store(true, std::memory_order_relaxed);
        break;
      }
    }
    PointsToSet Delta = std::move(Pending[N]);
    Pending[N].clear();
    Work += Delta.size();
    PointsToSet Diff = R.Pts[N].differenceFrom(Delta);
    if (Diff.empty())
      continue;
    R.Pts[N].unionWith(Diff);
    const std::vector<Edge> &Edges = Out[N];
    bool HasHandlers = !VarMembers[N].empty() || SelfVar[N].V.isValid();
    if (Edges.empty() && !HasHandlers)
      continue;
    uint32_t Slot = Buf.addDelta(N, std::move(Diff));
    for (const Edge &E : Edges) {
      // Read-only representative resolution: the compressing find()
      // would store into Parent while sibling workers load from it.
      uint32_t T = Reps.findReadOnly(E.Target.idx());
      if (T == N)
        continue; // target collapsed into this class since the edge was added
      Buf.emit(shardOf(T), T, Slot,
               E.Filter.isValid() ? E.Filter.idx() + 1 : 0);
      ++Work;
    }
  }
  ChunkPops[C] = Pops;
  ChunkWork[C] = Work + Pops;
}

void ParallelSolver::mergeShard(uint32_t Shard) {
  obs::ScopedSpan Span("merge-shard");
  std::vector<uint32_t> &Seg = Segments[Shard];
  uint64_t Merged = 0, FilterHits = 0;
  // Fixed buffer order 0..M-1, emission order within a bucket: the fold
  // sequence for any target is a pure function of the wave, never of
  // thread scheduling. Folds go into the PendingNext/QueuedNext side
  // arrays — a target can be a later, not-yet-swept node of the current
  // wave, whose Pending/Queued rows still belong to its sweeper.
  for (uint32_t B = 0; B < WaveChunks; ++B) {
    // Await the buffer's seal; a claimed-but-unsealed buffer is being
    // swept right now, so the wait is short. On timeout the remaining
    // buckets are dropped (counted into DeltasDropped by run()).
    while (Pool && !Sealed[B].load(std::memory_order_acquire) &&
           !Stop.load(std::memory_order_relaxed))
      std::this_thread::yield();
    if (Stop.load(std::memory_order_relaxed))
      break;
    const DeltaBuffer &Buf = Buffers[B];
    for (const DeltaBuffer::Record &Rec : Buf.records(Shard)) {
      assert(shardOf(Rec.Target) == Shard && "record in wrong bucket");
      const PointsToSet &D = Buf.delta(Rec.DeltaSlot);
      ++Merged;
      if (Rec.FilterPlus1 == 0) {
        PendingNext[Rec.Target].unionWith(D);
      } else {
        const PointsToSet *Bitmap =
            filterBitmapIfBuilt(TypeId(Rec.FilterPlus1 - 1));
        assert(Bitmap && "filter bitmap not materialized at addEdge time");
        PointsToSet Filtered = D;
        Filtered.intersectWith(*Bitmap);
        ++FilterHits;
        if (Filtered.empty())
          continue; // nothing passed the cast; the record still counts
        PendingNext[Rec.Target].unionWith(Filtered);
      }
      if (!QueuedNext[Rec.Target]) {
        QueuedNext[Rec.Target] = 1;
        Seg.push_back(Rec.Target);
      }
    }
  }
  ShardMerged[Shard] = Merged;
  ShardFilterHits[Shard] = FilterHits;
}

void ParallelSolver::waveWorker(const std::vector<uint32_t> &Wave,
                                unsigned Me, const Timer &Clock) {
  auto RunChunk = [&](uint32_t C) {
    sweepChunk(Wave, C, Clock);
    Sealed[C].store(1, std::memory_order_release);
  };
  const uint32_t M = WaveChunks;
  // Own range first, front to back.
  uint32_t Begin = static_cast<uint32_t>(chunkBegin(M, Threads, Me));
  uint32_t End = static_cast<uint32_t>(chunkBegin(M, Threads, Me + 1));
  for (uint32_t C = Begin; C < End; ++C)
    if (!Claimed[C].exchange(1, std::memory_order_acq_rel))
      RunChunk(C);
  // Then steal: victims in deterministic order Me+1, Me+2, ... (wrapping),
  // each victim's range scanned back to front — away from the victim's
  // own claim cursor. Which thread sweeps a chunk is invisible to the
  // merge (results are keyed by chunk index), so stealing cannot perturb
  // the digest.
  for (unsigned V = 1; V < Threads; ++V) {
    unsigned Victim = (Me + V) % Threads;
    uint32_t VB = static_cast<uint32_t>(chunkBegin(M, Threads, Victim));
    uint32_t VE = static_cast<uint32_t>(chunkBegin(M, Threads, Victim + 1));
    for (uint32_t C = VE; C > VB; --C)
      if (!Claimed[C - 1].exchange(1, std::memory_order_acq_rel)) {
        Steals.fetch_add(1, std::memory_order_relaxed);
        RunChunk(C - 1);
      }
  }
  // Every sweep sub-chunk is claimed (each claimer sweeps and seals it),
  // so move on to merging — no barrier between the phases.
  for (;;) {
    uint32_t T = NextMergeShard.fetch_add(1, std::memory_order_relaxed);
    if (T >= NumShards)
      break;
    mergeShard(T);
  }
}

void ParallelSolver::applyMerge() {
  // Serial: move the staged pendings onto the real rows and collect the
  // next wave, segment by segment in shard order — the same order a
  // full-barrier merge would have produced. Every target was staged by
  // exactly one shard, so each node is visited once.
  for (uint32_t T = 0; T < NumShards; ++T) {
    for (uint32_t N : Segments[T]) {
      QueuedNext[N] = 0;
      if (Pending[N].empty())
        Pending[N] = std::move(PendingNext[N]);
      else
        Pending[N].unionWith(PendingNext[N]);
      PendingNext[N].clear();
      if (!Queued[N]) {
        Queued[N] = 1;
        NextWave.push_back(N);
      }
    }
    Segments[T].clear();
  }
}

void ParallelSolver::runGrowthHandlers() {
  // Buffers hold contiguous chunks of the sorted wave, so walking them in
  // sub-chunk order replays deltas in exactly the order the serial sweep
  // would have reached the nodes. Everything below may intern nodes, add
  // edges and enqueue — all of it single-threaded.
  for (uint32_t B = 0; B < WaveChunks; ++B) {
    const DeltaBuffer &Buf = Buffers[B];
    size_t NumDeltas = Buf.numDeltas();
    for (size_t I = 0; I < NumDeltas; ++I) {
      uint32_t N = Buf.deltaNode(I);
      const PointsToSet &Diff = Buf.deltaSet(I);
      if (VarMembers[N].empty()) {
        VarRef Self = SelfVar[N];
        if (Self.V.isValid())
          onVarGrowth(Self.C, Self.V, Diff);
      } else {
        size_t NumVars = VarMembers[N].size();
        for (size_t J = 0; J < NumVars; ++J) {
          VarRef M = VarMembers[N][J];
          onVarGrowth(M.C, M.V, Diff);
        }
      }
    }
  }
}

void ParallelSolver::recordWaveBalance() {
  // Work each worker was *planned* to do: the measured sweep cost
  // (pops + delta elements diffed + records emitted) of its initial
  // sub-chunk range — the same units the planner's weight estimate
  // predicts, so the stat reads as the planner's prediction error.
  // Planned (pre-steal) assignment keeps the metric a pure function of
  // the wave — the same on every run and every machine — while still
  // reflecting measured work, not estimates. Stealing then hides part of
  // whatever imbalance is reported here.
  for (unsigned W = 0; W < Threads; ++W) {
    uint64_t Work = 0;
    size_t Begin = chunkBegin(WaveChunks, Threads, W);
    size_t End = chunkBegin(WaveChunks, Threads, W + 1);
    for (size_t C = Begin; C < End; ++C)
      Work += ChunkWork[C];
    WorkerWork[W] = Work;
  }
  Balance.addWave(WorkerWork);
}

bool ParallelSolver::run() {
  Timer Clock;
  seedEntry();

  uint64_t Pops = 0;
  std::vector<uint32_t> Wave;
  while (!R.Stats.TimedOut) {
    if (shouldRecondition())
      recondition();
    if (NextWave.empty())
      break;
    ++WavesSinceRecondition;
    ++R.Stats.ParallelWaves;
    Wave.swap(NextWave);
    sortWave(Wave);
    obs::ScopedSpan WaveSpan("pwave");
    WaveSpan.arg("nodes", Wave.size());
    Timer WaveClock;

    // Merge staging covers every node that exists at the wave start; the
    // parallel region never creates nodes (that happens in phase C).
    if (PendingNext.size() < Out.size()) {
      PendingNext.resize(Out.size());
      QueuedNext.resize(Out.size(), 0);
    }
    planWave(Wave);

    // Phases A+B, fused: workers sweep (own range, then steal), then
    // claim merge shards as the sweep drains — no global barrier.
    {
      obs::ScopedSpan Phase("sweep+merge");
      WaveSpan.arg("chunks", WaveChunks);
      if (Pool)
        parallelWorkers(*Pool, Threads,
                        [&](unsigned W) { waveWorker(Wave, W, Clock); });
      else {
        for (uint32_t C = 0; C < WaveChunks; ++C)
          sweepChunk(Wave, C, Clock);
        for (uint32_t T = 0; T < NumShards; ++T)
          mergeShard(T);
      }
    }

    uint64_t WaveBuffered = 0, WaveMerged = 0;
    for (uint32_t C = 0; C < WaveChunks; ++C) {
      Pops += ChunkPops[C];
      WaveBuffered += Buffers[C].numRecords();
    }
    for (uint32_t T = 0; T < NumShards; ++T) {
      WaveMerged += ShardMerged[T];
      R.Stats.FilterBitmapHits += ShardFilterHits[T];
    }
    R.Stats.DeltasBuffered += WaveBuffered;
    R.Stats.DeltasMerged += WaveMerged;
    recordWaveBalance();

    if (Stop.load(std::memory_order_relaxed)) {
      // Deliveries buffered but never folded are *dropped*, and counted:
      // the conservation law the stats export documents is
      // Buffered == Merged + Dropped, timeout or not.
      R.Stats.TimedOut = true;
      R.Stats.DeltasDropped += WaveBuffered - WaveMerged;
      break;
    }
    assert(WaveMerged == WaveBuffered &&
           "merge phase lost or duplicated a buffered delivery");

    // Phase B2: serial apply of the staged merge.
    {
      obs::ScopedSpan Phase("apply");
      applyMerge();
    }
    // Phase C: serialized growth handlers in wave order.
    {
      obs::ScopedSpan Phase("growth");
      runGrowthHandlers();
    }
    R.WaveMicros.record(static_cast<uint64_t>(WaveClock.seconds() * 1e6));
    Wave.clear();
  }

  R.Stats.WorkSteals = Steals.load(std::memory_order_relaxed);
  R.Stats.ShardImbalancePct = Balance.meanPct();
  R.Stats.ShardImbalanceMaxPct = Balance.MaxPct;

  finishRun(Clock, Pops);
  return !R.Stats.TimedOut;
}
