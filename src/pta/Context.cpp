//===-- pta/Context.cpp - Interned calling contexts ------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/Context.h"

using namespace mahjong;
using namespace mahjong::pta;

ContextTable::ContextTable() {
  ContextId Empty = Table.intern({});
  (void)Empty;
  assert(Empty.idx() == 0 && "empty context must be id 0");
}

ContextId ContextTable::push(ContextId Base, CtxElem Elem, unsigned Limit) {
  if (Limit == 0)
    return empty();
  std::vector<CtxElem> Elems = Table.get(Base);
  Elems.push_back(Elem);
  if (Elems.size() > Limit)
    Elems.erase(Elems.begin(), Elems.end() - Limit);
  return Table.intern(Elems);
}

ContextId ContextTable::truncate(ContextId C, unsigned Limit) {
  const std::vector<CtxElem> &Elems = Table.get(C);
  if (Elems.size() <= Limit)
    return C;
  std::vector<CtxElem> Cut(Elems.end() - Limit, Elems.end());
  return Table.intern(Cut);
}
