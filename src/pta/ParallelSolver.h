//===-- pta/ParallelSolver.h - Wave-parallel points-to solver -*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wave-parallel engine (SolverEngine::ParallelWave): the wave
/// engine's exact structure — topologically sorted waves, coalesced
/// pending deltas, online cycle collapsing — with each wave's sweep
/// executed by support::ThreadPool workers. A wave runs in three phases:
///
///  **A. Sharded sweep (parallel).** The sorted wave is cut into
///  contiguous chunks, one per shard. Each worker pops only nodes of its
///  own chunk: it moves the node's pending delta, computes the true
///  growth (differenceFrom), updates the node's own points-to set, and
///  buffers one emission record per outgoing edge into its private
///  DeltaBuffer, bucketed by the *target's* shard (target id mod shard
///  count). Nothing shared is written: points-to sets, Pending and Queued
///  slots touched here belong exclusively to the popped node, edge
///  targets are resolved through the non-compressing
///  DisjointSets::findReadOnly, and type filters are not evaluated yet.
///
///  **B. Sharded merge (parallel).** Worker t folds every buffer's bucket
///  t — scanning buffers in fixed shard order 0..S-1 — into the pending
///  sets of its targets, applying cast-filter bitmaps (materialized
///  serially at edge-addition time) and collecting newly dirtied nodes
///  into a per-shard next-wave segment. Only shard t's Pending/Queued
///  slots are written, so the phase is race-free by partition.
///
///  **C. Growth handlers (serial).** Deltas are replayed through
///  onVarGrowth in global wave order (buffers hold contiguous wave
///  chunks, so buffer order reconstructs it). Everything that mutates
///  shared structure — node interning, context creation, call-graph
///  edges, edge addition, filter-bitmap building — happens here or at
///  wave boundaries (cycle collapsing), never inside phases A/B.
///
/// Determinism: chunk boundaries depend only on (wave size, shard
/// count), the merge scans buffers in fixed order, PointsToSet storage
/// is canonical in its contents, and the wave sort breaks ties by node
/// id — so the engine is bit-for-bit reproducible at *every* thread
/// count, and its fixpoint equals the serial engines' (monotone
/// confluence; enforced by pta::ResultDigest in
/// tests/pta/ParallelSolverEquivalenceTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_PARALLELSOLVER_H
#define MAHJONG_PTA_PARALLELSOLVER_H

#include "pta/Solver.h"
#include "support/DeltaBuffer.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <memory>

namespace mahjong::pta {

/// The sharded wave engine. Derives from Solver for all wave
/// infrastructure; overrides only the per-wave sweep and the points where
/// laziness would leak mutation into the concurrent phases.
class ParallelSolver final : public Solver {
public:
  ParallelSolver(const ir::Program &P, const ir::ClassHierarchy &CH,
                 const HeapAbstraction &Heap, ContextSelector &Selector,
                 PTAResult &R, double TimeBudgetSeconds, unsigned Threads);

  bool run() override;

private:
  /// Eagerly materializes the filter bitmap (single-threaded context)
  /// before delegating: the concurrent merge phase must find every bitmap
  /// already built, since building one inserts into FilterObjs.
  void addEdge(PtrNodeId Src, PtrNodeId Dst, TypeId Filter) override;

  uint32_t shardOf(uint32_t Node) const { return Node % NumShards; }

  /// Phase A for one chunk: pops Wave[Begin, End), updates owned sets and
  /// buffers emissions into \p Buf. \returns the chunk's pop count.
  uint64_t sweepChunk(const std::vector<uint32_t> &Wave, size_t Begin,
                      size_t End, DeltaBuffer &Buf, const Timer &Clock);

  /// Phase B for one target shard: folds bucket \p Shard of every buffer
  /// (in buffer order) into Pending/Queued, filling the shard's next-wave
  /// segment and its merged/filter-hit counters.
  void mergeShard(uint32_t Shard);

  /// Phase C: replays buffered deltas through the growth handlers in
  /// global wave order.
  void runGrowthHandlers();

  /// Runs \p Body(Chunk, Begin, End) over [0, N) cut into NumShards
  /// chunks — on the pool when one exists, inline otherwise (identical
  /// boundaries either way).
  template <typename Fn> void forEachChunk(size_t N, const Fn &Body);

  unsigned Threads;   ///< resolved worker count (>= 1)
  uint32_t NumShards; ///< == Threads; fixed for the whole run
  std::unique_ptr<ThreadPool> Pool; ///< null when Threads == 1

  std::vector<DeltaBuffer> Buffers;            ///< one per sweep chunk
  std::vector<std::vector<uint32_t>> Segments; ///< per-shard next-wave parts
  std::vector<uint64_t> ChunkPops;             ///< phase-A scratch
  std::vector<uint64_t> ShardWork;   ///< run-long records per sweep chunk
  std::vector<uint64_t> ShardMerged; ///< phase-B scratch: folded records
  std::vector<uint64_t> ShardFilterHits; ///< phase-B scratch
  std::atomic<bool> Stop{false};     ///< budget exhausted mid-sweep
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_PARALLELSOLVER_H
