//===-- pta/ParallelSolver.h - Wave-parallel points-to solver -*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wave-parallel engine (SolverEngine::ParallelWave): the wave
/// engine's exact structure — topologically sorted waves, coalesced
/// pending deltas, online cycle collapsing — with each wave's sweep and
/// merge executed by support::ThreadPool workers. A wave runs as one
/// fused parallel region followed by two short serial passes:
///
///  **A. Weight-aware sharded sweep (parallel, work-stealing).** The
///  sorted wave is cut into M = min(|wave|, threads x kChunksPerWorker)
///  contiguous *sub-chunks* of near-equal estimated sweep cost
///  (pta/ShardPlan.h: out-degree + pending-set size per node), each with
///  its own private DeltaBuffer. Worker w initially owns a contiguous
///  range of sub-chunks; every sub-chunk is claimed via an atomic flag,
///  so once a worker drains its own range it *steals* from victims in
///  the deterministic order w+1, w+2, ... (scanning each victim's range
///  back to front, away from the victim's own cursor). Results live in
///  per-sub-chunk buffers keyed by sub-chunk index — which thread swept a
///  chunk is invisible to every later phase. A finished sub-chunk is
///  *sealed* (release store) for the merge to consume.
///
///  **B. Seal-gated sharded merge (parallel, same region).** A worker
///  that finds no sweep sub-chunk left to claim moves straight on to
///  claiming target shards — it does not wait for the whole sweep. Shard
///  t folds every buffer's bucket t in fixed buffer order 0..M-1,
///  awaiting each buffer's seal (acquire) at most briefly: a claimed-but-
///  unsealed buffer is actively being swept by some worker. Because a
///  merge target may be a later node of the *current* wave (still to be
///  swept), the merge never writes Pending/Queued directly: it folds into
///  the side arrays PendingNext/QueuedNext, touched only per target shard.
///
///  **B2. Apply (serial).** After the region joins, the staged pendings
///  are moved into Pending, Queued flags are set and the next wave is
///  collected segment by segment in shard order — byte-identical state to
///  what a full-barrier merge would have produced.
///
///  **C. Growth handlers (serial).** Deltas are replayed through
///  onVarGrowth in global wave order (buffers hold contiguous wave
///  chunks, so buffer order reconstructs it). Everything that mutates
///  shared structure — node interning, context creation, call-graph
///  edges, edge addition, filter-bitmap building — happens here or at
///  wave boundaries (cycle collapsing), never inside the parallel region.
///
/// Determinism: sub-chunk boundaries are a pure function of the wave
/// (weights come from per-node state, never from timing), the merge scans
/// buffers in fixed order, stealing only relocates *which thread* sweeps
/// a chunk, and the wave sort breaks ties by node id — so the engine is
/// bit-for-bit reproducible at *every* thread count, and its fixpoint
/// equals the serial engines' (monotone confluence; enforced by
/// pta::ResultDigest in tests/pta/ParallelSolverEquivalenceTest.cpp).
///
/// A timed-out run stops mid-wave: sweeps cut short, merges drop their
/// remaining buckets. The dropped deliveries are counted so the exported
/// accounting always balances: DeltasBuffered == DeltasMerged +
/// DeltasDropped (DeltasDropped nonzero only when Stats.TimedOut).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_PARALLELSOLVER_H
#define MAHJONG_PTA_PARALLELSOLVER_H

#include "pta/ShardPlan.h"
#include "pta/Solver.h"
#include "support/DeltaBuffer.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <memory>

namespace mahjong::pta {

/// The sharded wave engine. Derives from Solver for all wave
/// infrastructure; overrides only the per-wave sweep and the points where
/// laziness would leak mutation into the concurrent phases.
class ParallelSolver final : public Solver {
public:
  /// Sub-chunks per worker: enough slack for stealing to absorb a
  /// mis-estimated chunk, small enough that per-chunk overhead (buffer
  /// reset, claim, seal) stays negligible.
  static constexpr uint32_t kChunksPerWorker = 8;

  ParallelSolver(const ir::Program &P, const ir::ClassHierarchy &CH,
                 const HeapAbstraction &Heap, ContextSelector &Selector,
                 PTAResult &R, double TimeBudgetSeconds, unsigned Threads);

  bool run() override;

private:
  /// Eagerly materializes the filter bitmap (single-threaded context)
  /// before delegating: the concurrent merge phase must find every bitmap
  /// already built, since building one inserts into FilterObjs.
  void addEdge(PtrNodeId Src, PtrNodeId Dst, TypeId Filter) override;

  uint32_t shardOf(uint32_t Node) const { return Node % NumShards; }

  /// Serial per-wave setup: weighs the wave, cuts it into WaveChunks
  /// weighted sub-chunks (Bounds), resets buffers/claims/seals/counters.
  void planWave(const std::vector<uint32_t> &Wave);

  /// Phase A for one sub-chunk: pops Wave[Bounds[C], Bounds[C+1]),
  /// updates owned sets and buffers emissions into Buffers[C]. Writes the
  /// chunk's pop count (ChunkPops[C]) and its measured sweep work
  /// (ChunkWork[C]: pops + delta elements processed + records emitted —
  /// the same units the planner's weight estimate predicts).
  void sweepChunk(const std::vector<uint32_t> &Wave, uint32_t C,
                  const Timer &Clock);

  /// Phase B for one target shard: folds bucket \p Shard of every buffer
  /// (in buffer order 0..WaveChunks-1, awaiting seals) into
  /// PendingNext/QueuedNext, filling the shard's next-wave segment and
  /// its merged/filter-hit counters.
  void mergeShard(uint32_t Shard);

  /// One worker of the fused region: claim-sweep own range, steal, then
  /// claim-merge shards until none remain.
  void waveWorker(const std::vector<uint32_t> &Wave, unsigned Me,
                  const Timer &Clock);

  /// Phase B2: applies the staged PendingNext/QueuedNext to
  /// Pending/Queued and collects NextWave, segment by segment.
  void applyMerge();

  /// Phase C: replays buffered deltas through the growth handlers in
  /// global wave order.
  void runGrowthHandlers();

  /// Per-wave imbalance over the planned per-worker sub-chunk ranges
  /// (measured pops + emitted records, before stealing): feeds the
  /// run-level work-weighted mean / max pair.
  void recordWaveBalance();

  unsigned Threads;   ///< resolved worker count (>= 1)
  uint32_t NumShards; ///< == Threads; merge partition, fixed for the run
  std::unique_ptr<ThreadPool> Pool; ///< null when Threads == 1

  // --- Per-wave plan (serial writes in planWave, read-only in-region) ---
  uint32_t WaveChunks = 0;         ///< live sub-chunk count M this wave
  std::vector<uint64_t> Weights;   ///< scratch: per-node sweep weight
  std::vector<uint64_t> Prefix;    ///< scratch: weight prefix sums
  std::vector<size_t> Bounds;      ///< M+1 sub-chunk boundaries
  std::vector<DeltaBuffer> Buffers; ///< one per sub-chunk; never shrunk
  std::vector<uint64_t> ChunkPops; ///< per sub-chunk; never shrunk
  std::vector<uint64_t> ChunkWork; ///< measured sweep work per sub-chunk

  // --- Claim/seal flags (capacity FlagCap >= WaveChunks) ---
  std::unique_ptr<std::atomic<uint8_t>[]> Claimed;
  std::unique_ptr<std::atomic<uint8_t>[]> Sealed;
  size_t FlagCap = 0;

  // --- Merge staging (side arrays so the merge never races the sweep) ---
  std::vector<PointsToSet> PendingNext; ///< staged deltas, per target node
  std::vector<uint8_t> QueuedNext;      ///< staged dirty flags
  std::vector<std::vector<uint32_t>> Segments; ///< per-shard next-wave parts
  std::vector<uint64_t> ShardMerged;     ///< phase-B scratch: folded records
  std::vector<uint64_t> ShardFilterHits; ///< phase-B scratch

  std::atomic<uint32_t> NextMergeShard{0}; ///< merge-task claim cursor
  std::atomic<uint64_t> Steals{0}; ///< sub-chunks swept by a non-owner
  std::atomic<bool> Stop{false};   ///< budget exhausted mid-sweep

  std::vector<uint64_t> WorkerWork; ///< per-wave scratch for balance stats
  ImbalanceAccumulator Balance;
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_PARALLELSOLVER_H
