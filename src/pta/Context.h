//===-- pta/Context.h - Interned calling contexts -------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Calling contexts are bounded sequences of context elements; an element
/// is a call site (k-CFA), an abstract object (k-obj) or a class type
/// (k-type), stored as its raw 32-bit id. Contexts are interned so a
/// ContextId is a dense index and context comparison is id comparison.
/// ContextId 0 is always the empty context.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_CONTEXT_H
#define MAHJONG_PTA_CONTEXT_H

#include "support/Ids.h"
#include "support/Interner.h"

#include <vector>

namespace mahjong::pta {

/// Raw payload of a context element (call-site, object, or type id).
using CtxElem = uint32_t;

/// Interning table for calling contexts.
class ContextTable {
public:
  ContextTable();

  /// The empty context (always id 0).
  ContextId empty() const { return ContextId(0); }

  /// Appends \p Elem to \p Base, keeping only the most recent \p Limit
  /// elements.
  ContextId push(ContextId Base, CtxElem Elem, unsigned Limit);

  /// Keeps only the most recent \p Limit elements of \p C.
  ContextId truncate(ContextId C, unsigned Limit);

  const std::vector<CtxElem> &elems(ContextId C) const {
    return Table.get(C);
  }

  /// Number of distinct contexts interned so far.
  uint32_t size() const { return Table.size(); }

private:
  Interner<ContextId, std::vector<CtxElem>, VectorHash> Table;
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_CONTEXT_H
