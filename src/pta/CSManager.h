//===-- pta/CSManager.h - Context-sensitive entity interning --*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns context-sensitive variables, objects and methods (pairs of a
/// context and a base entity) to dense ids, with O(1) reverse lookup.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_PTA_CSMANAGER_H
#define MAHJONG_PTA_CSMANAGER_H

#include "pta/Context.h"
#include "support/Interner.h"

#include <utility>

namespace mahjong::pta {

/// Dense interning of (context, entity) pairs.
class CSManager {
public:
  CSVarId csVar(ContextId C, VarId V) {
    return Vars.intern(pack(C, V.idx()));
  }
  CSObjId csObj(ContextId C, ObjId O) {
    return Objs.intern(pack(C, O.idx()));
  }
  CSMethodId csMethod(ContextId C, MethodId M) {
    return Methods.intern(pack(C, M.idx()));
  }

  /// Const lookups that never intern; return invalid if unseen.
  CSVarId lookupCSVar(ContextId C, VarId V) const {
    return Vars.lookup(pack(C, V.idx()));
  }
  CSObjId lookupCSObj(ContextId C, ObjId O) const {
    return Objs.lookup(pack(C, O.idx()));
  }

  std::pair<ContextId, VarId> varOf(CSVarId Id) const {
    auto [C, E] = unpack(Vars.get(Id));
    return {C, VarId(E)};
  }
  std::pair<ContextId, ObjId> objOf(CSObjId Id) const {
    auto [C, E] = unpack(Objs.get(Id));
    return {C, ObjId(E)};
  }
  std::pair<ContextId, MethodId> methodOf(CSMethodId Id) const {
    auto [C, E] = unpack(Methods.get(Id));
    return {C, MethodId(E)};
  }

  uint32_t numCSVars() const { return Vars.size(); }
  uint32_t numCSObjs() const { return Objs.size(); }
  uint32_t numCSMethods() const { return Methods.size(); }

private:
  static uint64_t pack(ContextId C, uint32_t E) {
    return (static_cast<uint64_t>(C.idx()) << 32) | E;
  }
  static std::pair<ContextId, uint32_t> unpack(uint64_t Packed) {
    return {ContextId(static_cast<uint32_t>(Packed >> 32)),
            static_cast<uint32_t>(Packed)};
  }

  Interner<CSVarId, uint64_t> Vars;
  Interner<CSObjId, uint64_t> Objs;
  Interner<CSMethodId, uint64_t> Methods;
};

} // namespace mahjong::pta

#endif // MAHJONG_PTA_CSMANAGER_H
