//===-- core/GraphExport.cpp - DOT exporters ----------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/GraphExport.h"

#include <deque>
#include <set>
#include <sstream>
#include <unordered_set>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;

/// Escapes a label for DOT (quotes and backslashes).
static std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string mahjong::core::fpgToDot(const FieldPointsToGraph &G, ObjId Root,
                                    unsigned MaxNodes) {
  const Program &P = G.program();
  std::ostringstream OS;
  OS << "digraph fpg {\n  rankdir=LR;\n  node [shape=ellipse];\n";
  std::unordered_set<uint32_t> Visited{Root.idx()};
  std::deque<ObjId> Queue{Root};
  unsigned Emitted = 0;
  while (!Queue.empty() && Emitted < MaxNodes) {
    ObjId O = Queue.front();
    Queue.pop_front();
    ++Emitted;
    if (P.isNullObj(O)) {
      OS << "  o" << O.idx() << " [label=\"null\", shape=doublecircle];\n";
      continue;
    }
    OS << "  o" << O.idx() << " [label=\"o" << O.idx() << ": "
       << escape(P.type(P.obj(O).Type).Name) << "\"";
    if (O == Root)
      OS << ", style=bold";
    OS << "];\n";
    for (const auto &[F, Targets] : G.fieldsOf(O))
      for (ObjId T : Targets) {
        OS << "  o" << O.idx() << " -> o" << T.idx() << " [label=\""
           << escape(P.field(F).Name) << "\"];\n";
        if (Visited.insert(T.idx()).second)
          Queue.push_back(T);
      }
  }
  if (!Queue.empty())
    OS << "  truncated [label=\"... truncated at " << MaxNodes
       << " nodes\", shape=plaintext];\n";
  OS << "}\n";
  return OS.str();
}

std::string mahjong::core::dfaToDot(const FieldPointsToGraph &G,
                                    DFACache &Cache, ObjId Root,
                                    unsigned MaxStates) {
  const Program &P = G.program();
  std::ostringstream OS;
  OS << "digraph dfa {\n  rankdir=LR;\n  node [shape=box];\n";
  DFAStateId Start = Cache.startFor(Root);
  Cache.materialize(Start);
  std::unordered_set<uint32_t> Visited{Start.idx()};
  std::deque<DFAStateId> Queue{Start};
  unsigned Emitted = 0;
  while (!Queue.empty() && Emitted < MaxStates) {
    DFAStateId S = Queue.front();
    Queue.pop_front();
    ++Emitted;
    std::string Members, Types;
    for (ObjId O : Cache.members(S)) {
      Members += (Members.empty() ? "" : ",") + ("o" + std::to_string(
                                                            O.idx()));
    }
    for (TypeId T : Cache.outputs(S))
      Types += (Types.empty() ? "" : ",") + P.type(T).Name;
    OS << "  s" << S.idx() << " [label=\"{" << escape(Members) << "}\\n-> {"
       << escape(Types) << "}\"";
    if (S == Start)
      OS << ", style=bold";
    if (Cache.outputs(S).size() > 1)
      OS << ", color=red"; // a Condition-2 violation lives here
    OS << "];\n";
    for (const auto &[F, T] : Cache.transitions(S)) {
      OS << "  s" << S.idx() << " -> s" << T.idx() << " [label=\""
         << escape(P.field(F).Name) << "\"];\n";
      if (Visited.insert(T.idx()).second)
        Queue.push_back(T);
    }
  }
  if (!Queue.empty())
    OS << "  truncated [label=\"... truncated at " << MaxStates
       << " states\", shape=plaintext];\n";
  OS << "}\n";
  return OS.str();
}

std::string mahjong::core::callGraphToDot(const pta::PTAResult &R) {
  const Program &P = R.P;
  std::ostringstream OS;
  OS << "digraph callgraph {\n  node [shape=box, fontsize=10];\n";
  std::set<uint32_t> Methods;
  std::set<std::pair<uint32_t, uint32_t>> Edges;
  for (CallSiteId Site : R.CG.callSitesWithEdges()) {
    MethodId Caller = P.callSite(Site).Enclosing;
    Methods.insert(Caller.idx());
    for (MethodId Callee : R.CG.calleesOf(Site)) {
      Methods.insert(Callee.idx());
      Edges.insert({Caller.idx(), Callee.idx()});
    }
  }
  Methods.insert(P.entryMethod().idx());
  for (uint32_t M : Methods)
    OS << "  m" << M << " [label=\""
       << escape(P.method(MethodId(M)).Signature) << "\"];\n";
  for (auto [From, To] : Edges)
    OS << "  m" << From << " -> m" << To << ";\n";
  OS << "}\n";
  return OS.str();
}
