//===-- core/GraphExport.h - DOT exporters --------------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz (DOT) exporters for the structures a user of the library
/// wants to look at: the field points-to graph around an object, the
/// determinized automaton of an object, and the context-insensitive call
/// graph. Used by the mahjong-cli tool and handy when debugging why two
/// objects did or did not merge.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CORE_GRAPHEXPORT_H
#define MAHJONG_CORE_GRAPHEXPORT_H

#include "core/DFACache.h"
#include "core/FieldPointsToGraph.h"
#include "pta/PointerAnalysis.h"

#include <string>

namespace mahjong::core {

/// The FPG subgraph reachable from \p Root (the object's NFA, Figure 4),
/// capped at \p MaxNodes nodes, as a DOT digraph. Nodes are labeled
/// "oN: Type"; the dummy o_null is a doubled circle.
std::string fpgToDot(const FieldPointsToGraph &G, ObjId Root,
                     unsigned MaxNodes = 64);

/// The determinized automaton rooted at \p Root as a DOT digraph: nodes
/// are DFA states labeled with their member objects and output types.
/// Materializes the region in \p Cache.
std::string dfaToDot(const FieldPointsToGraph &G, DFACache &Cache,
                     ObjId Root, unsigned MaxStates = 64);

/// The context-insensitive call graph of \p R (methods as nodes, one
/// edge per (site, callee) pair) as a DOT digraph.
std::string callGraphToDot(const pta::PTAResult &R);

} // namespace mahjong::core

#endif // MAHJONG_CORE_GRAPHEXPORT_H
