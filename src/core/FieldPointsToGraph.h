//===-- core/FieldPointsToGraph.h - The FPG (paper §2.2.1) ----*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The field points-to graph (FPG): nodes are the abstract heap objects of
/// the pre-analysis, and an edge (o_i, f, o_j) says o_i.f may point to
/// o_j. Built from a (context-insensitive) PTAResult by projecting the
/// object-field points-to relation, then completing it per the paper's
/// conventions (§4.1):
///
///  - a dummy node o_null represents null;
///  - a declared field that is never written points to o_null;
///  - (o_null, f, o_null) holds for every field f (null self-loops).
///
/// Only objects allocated in pre-analysis-reachable methods participate.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CORE_FIELDPOINTSTOGRAPH_H
#define MAHJONG_CORE_FIELDPOINTSTOGRAPH_H

#include "pta/PointerAnalysis.h"

#include <vector>

namespace mahjong::core {

/// The immutable FPG for one program, derived from a pre-analysis.
class FieldPointsToGraph {
public:
  /// Projects \p Pre (normally the context-insensitive Andersen
  /// pre-analysis) onto object fields and applies null completion.
  explicit FieldPointsToGraph(const pta::PTAResult &Pre);

  const ir::Program &program() const { return P; }

  /// Successors of (\p O, \p F). For o_null, every field yields {o_null}.
  /// An empty result means O has no field F.
  const std::vector<ObjId> &succ(ObjId O, FieldId F) const;

  /// All (field, successors) pairs of \p O, sorted by field id. o_null
  /// reports an empty list (its self-loops are implicit in succ()).
  const std::vector<std::pair<FieldId, std::vector<ObjId>>> &
  fieldsOf(ObjId O) const {
    return Adj[O.idx()];
  }

  /// True if \p O was allocated in a reachable method (o_null included).
  bool isReachable(ObjId O) const { return Reachable[O.idx()]; }

  /// All reachable objects except o_null, ascending.
  std::vector<ObjId> reachableObjs() const;

  /// Number of reachable objects excluding o_null (the paper's Figure 8
  /// "allocation-site abstraction" object count).
  uint32_t numReachableObjs() const { return NumReachable; }

  /// Total number of FPG edges (after null completion).
  uint64_t numEdges() const { return NumEdges; }

  /// Number of distinct fields appearing on edges.
  uint32_t numFieldsUsed() const { return NumFieldsUsed; }

  /// Size of the NFA rooted at \p O: the number of FPG nodes reachable
  /// from it (paper §6.1.1 reports avg/max NFA sizes).
  uint32_t nfaSize(ObjId O) const;

private:
  const ir::Program &P;
  std::vector<std::vector<std::pair<FieldId, std::vector<ObjId>>>> Adj;
  std::vector<bool> Reachable;
  std::vector<ObjId> NullSucc; ///< {o_null}, returned for o_null queries
  uint32_t NumReachable = 0;
  uint64_t NumEdges = 0;
  uint32_t NumFieldsUsed = 0;
};

} // namespace mahjong::core

#endif // MAHJONG_CORE_FIELDPOINTSTOGRAPH_H
