//===-- core/Mahjong.h - Top-level MAHJONG driver -------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end MAHJONG pipeline of the paper's Figure 5: run the fast
/// context-insensitive Andersen pre-analysis, build the field points-to
/// graph, model the heap by merging equivalent automata, and hand back a
/// heap abstraction that any allocation-site-based points-to analysis can
/// drop in.
///
/// Typical use:
/// \code
///   MahjongResult MR = buildMahjongHeap(P, CH);
///   AnalysisOptions Opts{ContextKind::Object, 3, MR.Heap.get()};
///   auto M3Obj = runPointerAnalysis(P, CH, Opts);   // M-3obj
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CORE_MAHJONG_H
#define MAHJONG_CORE_MAHJONG_H

#include "core/FieldPointsToGraph.h"
#include "core/HeapModeler.h"
#include "pta/PointerAnalysis.h"

#include <memory>

namespace mahjong::core {

/// Options for the whole pipeline.
struct MahjongOptions {
  HeapModelerOptions Modeler;
  /// Wall-clock budget for the pre-analysis (0 = unlimited).
  double PreAnalysisBudgetSeconds = 0;
  /// Context flavour of the pre-analysis. The paper fixes the fast
  /// context-insensitive Andersen analysis (the default); a more precise
  /// pre-analysis produces a sharper FPG, which can only *increase*
  /// merging (fewer spurious condition-2 violations) while keeping the
  /// result sound — at the price of pre-analysis time. Exposed for the
  /// extension experiment in the ablation bench.
  pta::ContextKind PreKind = pta::ContextKind::Insensitive;
  unsigned PreK = 0;
};

/// Everything the pipeline produced, including the timing breakdown the
/// paper reports in Table 2's pre-analysis column.
struct MahjongResult {
  /// The heap abstraction for the subsequent points-to analysis.
  std::unique_ptr<pta::MergedHeapAbstraction> Heap;
  /// The raw merged object map (index = allocation site).
  std::vector<ObjId> MOM;
  /// The pre-analysis solution (kept for clients needing its call graph).
  std::unique_ptr<pta::PTAResult> Pre;
  /// The field points-to graph.
  std::unique_ptr<FieldPointsToGraph> FPG;
  /// The shared automata (kept for inspection and statistics).
  std::unique_ptr<DFACache> Cache;
  HeapModelerResult Modeling;

  double PreSeconds = 0;     ///< context-insensitive points-to ("ci")
  double FPGSeconds = 0;     ///< FPG construction
  double MahjongSeconds = 0; ///< heap modeling (automata + merging)

  /// Objects under the allocation-site abstraction (Figure 8 baseline).
  uint32_t numAllocSiteObjects() const {
    return Modeling.NumReachableObjs;
  }
  /// Objects under MAHJONG (Figure 8).
  uint32_t numMahjongObjects() const { return Modeling.NumClasses; }
};

/// Runs the full pipeline on \p P.
MahjongResult buildMahjongHeap(const ir::Program &P,
                               const ir::ClassHierarchy &CH,
                               const MahjongOptions &Opts = {});

/// Convenience: runs analysis \p Kind/\p K with the MAHJONG abstraction
/// (building it first) and returns both pieces.
struct MahjongAnalysis {
  MahjongResult Heap;
  std::unique_ptr<pta::PTAResult> Result;
};
MahjongAnalysis runMahjongAnalysis(const ir::Program &P,
                                   const ir::ClassHierarchy &CH,
                                   pta::ContextKind Kind, unsigned K,
                                   const MahjongOptions &Opts = {},
                                   double MainBudgetSeconds = 0);

} // namespace mahjong::core

#endif // MAHJONG_CORE_MAHJONG_H
