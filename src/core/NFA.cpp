//===-- core/NFA.cpp - Sequential automata over the FPG ---------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/NFA.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace mahjong;
using namespace mahjong::core;

NFA::NFA(const FieldPointsToGraph &G, ObjId Root) : G(G), Root(Root) {
  std::unordered_set<uint32_t> Visited{Root.idx()};
  std::deque<ObjId> Queue{Root};
  std::unordered_set<uint32_t> Fields;
  const ir::Program &P = G.program();
  while (!Queue.empty()) {
    ObjId Cur = Queue.front();
    Queue.pop_front();
    States.push_back(Cur);
    if (P.isNullObj(Cur))
      continue; // o_null's self-loops add no new states or symbols
    for (const auto &[F, Targets] : G.fieldsOf(Cur)) {
      Fields.insert(F.idx());
      for (ObjId T : Targets)
        if (Visited.insert(T.idx()).second)
          Queue.push_back(T);
    }
  }
  std::sort(States.begin(), States.end());
  Alphabet.reserve(Fields.size());
  for (uint32_t F : Fields)
    Alphabet.push_back(FieldId(F));
  std::sort(Alphabet.begin(), Alphabet.end());
}
