//===-- core/HeapModeler.h - MAHJONG's heap modeler (Alg. 1) --*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap modeler: partitions the abstract heap into type-consistency
/// equivalence classes (Definitions 2.1/2.2) and outputs the merged
/// object map (MOM) that a subsequent points-to analysis consumes.
///
/// Implementation of the paper's Algorithm 1 with the section-5
/// optimizations: a disjoint-set forest with union-by-rank and path
/// compression, the shared automata of DFACache, and synchronization-free
/// parallel type-consistency checks — objects are bucketed by type, one
/// task per type, so no two tasks can ever merge the same object.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CORE_HEAPMODELER_H
#define MAHJONG_CORE_HEAPMODELER_H

#include "core/DFACache.h"
#include "core/FieldPointsToGraph.h"

#include <functional>
#include <vector>

namespace mahjong::core {

/// Which member of an equivalence class becomes the representative. The
/// paper notes (§3.6.2, Example 3.2) that this choice can matter for
/// M-ktype precision; we expose it for the ablation bench.
enum class ReprPolicy : uint8_t {
  FirstSite, ///< lowest allocation-site id (default)
  LastSite,  ///< highest allocation-site id
};

/// Configuration for the heap modeler.
struct HeapModelerOptions {
  /// Worker threads for the per-type consistency checks. 1 = serial.
  unsigned Threads = 1;
  /// Ablation switch for Condition 2 of Definition 2.1 (Example 2.4
  /// shows disabling it loses precision).
  bool EnforceCondition2 = true;
  /// Pre-group candidates by the global behavioral partition
  /// (DFAPartition) before the pairwise Hopcroft-Karp checks. Exact and
  /// much faster on heaps with many small equivalence classes; disable
  /// to run the paper's plain object-vs-representative scan.
  bool UsePartitionIndex = true;
  ReprPolicy Repr = ReprPolicy::FirstSite;
};

/// The merged object map plus statistics.
struct HeapModelerResult {
  /// Per allocation site, the representative object of its equivalence
  /// class (identity for unreachable objects and o_null).
  std::vector<ObjId> MOM;
  /// Number of equivalence classes among reachable objects — the object
  /// count of the MAHJONG abstraction (Figure 8).
  uint32_t NumClasses = 0;
  uint32_t NumReachableObjs = 0;
  uint64_t PairsTested = 0;     ///< equivalence queries issued
  uint64_t DFAStates = 0;       ///< shared DFA states materialized
  double Seconds = 0;           ///< wall-clock of the modeling phase
};

/// Runs Algorithm 1 over \p G using \p Cache for automata.
HeapModelerResult modelHeap(const FieldPointsToGraph &G, DFACache &Cache,
                            const HeapModelerOptions &Opts = {});

/// The partition-indexed grouping step of Algorithm 1, parameterized by
/// an arbitrary block oracle (normally DFAPartition::blockOf). Objects
/// whose start states share a block are candidates for the same group;
/// Hopcroft-Karp still certifies every membership, so the result is
/// correct — identical to the plain object-vs-representative scan — even
/// if the oracle over-merges blocks. Exposed so tests can drive the
/// disagreement path with a lying oracle. \p Cache must have every
/// object's start region materialized and (when \p EnforceCondition2)
/// condition-2 verdicts memoized; the function performs zero writes.
std::vector<std::vector<ObjId>>
groupByBlockOracle(const std::vector<ObjId> &Objs, const DFACache &Cache,
                   const std::function<uint32_t(DFAStateId)> &BlockOf,
                   bool EnforceCondition2, uint64_t &PairsTested);

/// Groups reachable objects by representative. Pairs (representative,
/// members) are sorted by descending class size — the layout of the
/// paper's Table 1 / Figure 9.
std::vector<std::pair<ObjId, std::vector<ObjId>>>
equivalenceClasses(const FieldPointsToGraph &G,
                   const HeapModelerResult &Result);

} // namespace mahjong::core

#endif // MAHJONG_CORE_HEAPMODELER_H
