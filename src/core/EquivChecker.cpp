//===-- core/EquivChecker.cpp - Hopcroft-Karp equivalence -------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/EquivChecker.h"

#include <vector>

using namespace mahjong;
using namespace mahjong::core;

uint32_t EquivChecker::LazyUnionFind::find(uint32_t X) {
  auto It = Parent.find(X);
  if (It == Parent.end())
    return X; // untouched elements are their own singletons
  // Path-compressing find over the sparse parent map.
  uint32_t Root = X;
  while (true) {
    auto Next = Parent.find(Root);
    if (Next == Parent.end() || Next->second == Root)
      break;
    Root = Next->second;
  }
  while (X != Root) {
    uint32_t &Slot = Parent[X];
    uint32_t NextX = Slot;
    Slot = Root;
    X = NextX;
  }
  return Root;
}

void EquivChecker::LazyUnionFind::unite(uint32_t A, uint32_t B) {
  uint32_t RA = find(A), RB = find(B);
  if (RA != RB)
    Parent[RA] = RB;
}

bool EquivChecker::equivalent(DFAStateId A, DFAStateId B) {
  if (A == B)
    return true;
  // Read-only checkers and frozen caches both take the const accessor
  // path; lazy expansion happens only with a mutable, unfrozen cache.
  const bool Frozen = !MutableCache || Cache.isFrozen();
  LazyUnionFind UF;
  std::vector<std::pair<DFAStateId, DFAStateId>> Stack;

  // Uniting two states asserts they behave identically, so their outputs
  // must agree; checking at union time is the incremental equivalent of
  // Algorithm 4's final pass over every merged class.
  auto UniteChecked = [&](DFAStateId X, DFAStateId Y) -> bool {
    if (Cache.outputs(X) != Cache.outputs(Y))
      return false;
    UF.unite(X.idx(), Y.idx());
    Stack.emplace_back(X, Y);
    return true;
  };

  if (!UniteChecked(A, B))
    return false;

  while (!Stack.empty()) {
    auto [P1, P2] = Stack.back();
    Stack.pop_back();
    ++PairsExamined;
    // The relevant alphabet is the union of both states' field sets; on
    // any other symbol both sides take the same default transition
    // (q_error / the null sink), which is trivially consistent.
    if (!Frozen) {
      // Computing one state's transitions can intern new states and move
      // the transition-table headers, so force both computations before
      // taking references into the table.
      (void)MutableCache->transitions(P1);
      (void)MutableCache->transitions(P2);
    }
    const auto &T1 = Frozen ? Cache.transitionsFrozen(P1)
                            : MutableCache->transitions(P1);
    const auto &T2 = Frozen ? Cache.transitionsFrozen(P2)
                            : MutableCache->transitions(P2);
    size_t I = 0, J = 0;
    auto Step = [&](FieldId F) -> bool {
      DFAStateId N1 =
          Frozen ? Cache.nextFrozen(P1, F) : MutableCache->next(P1, F);
      DFAStateId N2 =
          Frozen ? Cache.nextFrozen(P2, F) : MutableCache->next(P2, F);
      if (UF.find(N1.idx()) == UF.find(N2.idx()))
        return true;
      return UniteChecked(N1, N2);
    };
    while (I < T1.size() || J < T2.size()) {
      FieldId F;
      if (J >= T2.size() || (I < T1.size() && T1[I].first < T2[J].first))
        F = T1[I++].first;
      else if (I >= T1.size() || T2[J].first < T1[I].first)
        F = T2[J++].first;
      else {
        F = T1[I].first;
        ++I;
        ++J;
      }
      if (!Step(F))
        return false;
    }
  }
  return true;
}
