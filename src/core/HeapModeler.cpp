//===-- core/HeapModeler.cpp - MAHJONG's heap modeler (Alg. 1) --------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/HeapModeler.h"

#include "core/DFAPartition.h"
#include "core/EquivChecker.h"
#include "obs/Trace.h"
#include "support/Parallel.h"
#include "support/Timer.h"

#include <algorithm>
#include <map>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;

namespace {

/// One per-type work unit: the objects of a single class type, in
/// allocation-site order. Tasks over different buckets are independent by
/// construction (type-consistent objects always share a type).
struct TypeBucket {
  std::vector<ObjId> Objs;
  /// Output: equivalence groups found within this bucket.
  std::vector<std::vector<ObjId>> Groups;
  uint64_t PairsTested = 0;
};

/// Partitions the bucket into type-consistency classes with the paper's
/// plain scan: each object is compared against the representative of
/// every existing class (one Hopcroft-Karp query each) and joins the
/// first match. Performs zero writes to the cache — every start state
/// and condition-2 verdict was precomputed by modelHeap's build phase.
void processBucketByScan(TypeBucket &Bucket, const DFACache &Cache,
                         bool EnforceCondition2) {
  EquivChecker Checker(Cache);
  std::vector<DFAStateId> GroupStart; // start state per group
  for (ObjId O : Bucket.Objs) {
    DFAStateId Start = Cache.startForFrozen(O);
    // Condition 2 (SINGLETYPE-CHECK): objects whose automata can reach a
    // mixed-type state stay unmerged (lines 6-7 of Algorithm 1).
    if (EnforceCondition2 && !Cache.allSingletonOutputsFrozen(Start)) {
      Bucket.Groups.push_back({O});
      GroupStart.push_back(DFAStateId::invalid());
      continue;
    }
    bool Joined = false;
    for (size_t GIdx = 0; GIdx < Bucket.Groups.size(); ++GIdx) {
      if (!GroupStart[GIdx].isValid())
        continue; // a condition-2 violator never accepts members
      ++Bucket.PairsTested;
      if (Checker.equivalent(GroupStart[GIdx], Start)) {
        Bucket.Groups[GIdx].push_back(O);
        Joined = true;
        break;
      }
    }
    if (!Joined) {
      Bucket.Groups.push_back({O});
      GroupStart.push_back(Start);
    }
  }
}

} // namespace

std::vector<std::vector<ObjId>> mahjong::core::groupByBlockOracle(
    const std::vector<ObjId> &Objs, const DFACache &Cache,
    const std::function<uint32_t(DFAStateId)> &BlockOf,
    bool EnforceCondition2, uint64_t &PairsTested) {
  EquivChecker Checker(Cache);
  std::vector<std::vector<ObjId>> Groups;
  std::vector<DFAStateId> GroupStart;
  // Candidate groups per oracle block. With an exact oracle
  // (DFAPartition) each block holds exactly one group and every
  // certification succeeds on the first try; an over-merging oracle
  // merely makes the list grow, never the result change.
  std::map<uint32_t, std::vector<size_t>> GroupsOfBlock;
  for (ObjId O : Objs) {
    DFAStateId Start = Cache.startForFrozen(O);
    if (EnforceCondition2 && !Cache.allSingletonOutputsFrozen(Start)) {
      Groups.push_back({O});
      GroupStart.push_back(DFAStateId::invalid());
      continue;
    }
    std::vector<size_t> &Candidates = GroupsOfBlock[BlockOf(Start)];
    bool Joined = false;
    for (size_t GIdx : Candidates) {
      ++PairsTested;
      if (Checker.equivalent(GroupStart[GIdx], Start)) {
        Groups[GIdx].push_back(O);
        Joined = true;
        break;
      }
    }
    if (!Joined) {
      // Either a fresh block or the oracle disagreed with Hopcroft-Karp;
      // in both cases the new group must be registered as a candidate so
      // later members of this block are tested against it.
      Candidates.push_back(Groups.size());
      Groups.push_back({O});
      GroupStart.push_back(Start);
    }
  }
  return Groups;
}

HeapModelerResult mahjong::core::modelHeap(const FieldPointsToGraph &G,
                                           DFACache &Cache,
                                           const HeapModelerOptions &Opts) {
  Timer Clock;
  const Program &P = G.program();
  HeapModelerResult Result;
  Result.MOM.resize(P.numObjs());
  for (uint32_t I = 0; I < P.numObjs(); ++I)
    Result.MOM[I] = ObjId(I);

  // Bucket reachable objects by type (std::map keeps the processing order
  // deterministic regardless of threading).
  std::map<uint32_t, TypeBucket> Buckets;
  for (ObjId O : G.reachableObjs())
    Buckets[P.obj(O).Type.idx()].Objs.push_back(O);
  Result.NumReachableObjs = G.numReachableObjs();

  // Build all shared automata up front: the behavioral partition needs
  // the complete state space, and the bucket phase only ever reads the
  // cache (the paper's synchronization-free scheme). Condition-2 verdicts
  // — positive and negative — are memoized here too, so the per-bucket
  // checks below are pure lookups.
  {
    obs::ScopedSpan Span("dfa-materialize");
    for (auto &[TypeIdx, Bucket] : Buckets)
      for (ObjId O : Bucket.Objs)
        Cache.materialize(Cache.startFor(O));
    if (Opts.EnforceCondition2)
      for (auto &[TypeIdx, Bucket] : Buckets)
        for (ObjId O : Bucket.Objs)
          Cache.allSingletonOutputs(Cache.startFor(O));
  }

  std::unique_ptr<DFAPartition> Partition;
  if (Opts.UsePartitionIndex) {
    obs::ScopedSpan Span("dfa-minimize");
    Partition = std::make_unique<DFAPartition>(Cache);
  }

  // The bucket phase sees the cache as const: serial and parallel runs
  // execute the identical read-only code path, so their results agree
  // bit for bit and worker threads cannot write to shared state.
  const DFACache &SharedCache = Cache;
  auto RunBucket = [&, Partition = Partition.get()](TypeBucket &Bucket) {
    // Under the parallel fan-out this runs on a pool worker, so each
    // bucket span lands in its worker's trace lane.
    obs::ScopedSpan Span("merge-bucket");
    Span.arg("objs", Bucket.Objs.size());
    if (Partition)
      Bucket.Groups = groupByBlockOracle(
          Bucket.Objs, SharedCache,
          [Partition](DFAStateId S) { return Partition->blockOf(S); },
          Opts.EnforceCondition2, Bucket.PairsTested);
    else
      processBucketByScan(Bucket, SharedCache, Opts.EnforceCondition2);
  };

  if (Opts.Threads > 1) {
    // From here on the workers may only use the const `...Frozen`
    // accessors; freeze() arms the assertions that enforce it.
    Cache.freeze();
    // Flatten the map to an index space for the shared chunking helper
    // (std::map iteration order keeps the flattening deterministic).
    std::vector<TypeBucket *> Work;
    Work.reserve(Buckets.size());
    for (auto &[TypeIdx, Bucket] : Buckets)
      Work.push_back(&Bucket);
    ThreadPool Pool(Opts.Threads);
    parallelFor(Pool, Work.size(), [&](size_t I) { RunBucket(*Work[I]); });
  } else {
    for (auto &[TypeIdx, Bucket] : Buckets)
      RunBucket(Bucket);
  }

  // Apply the groups: pick each class's representative per policy.
  for (auto &[TypeIdx, Bucket] : Buckets) {
    Result.PairsTested += Bucket.PairsTested;
    for (const std::vector<ObjId> &Group : Bucket.Groups) {
      ObjId Repr = Opts.Repr == ReprPolicy::FirstSite
                       ? *std::min_element(Group.begin(), Group.end())
                       : *std::max_element(Group.begin(), Group.end());
      for (ObjId Member : Group)
        Result.MOM[Member.idx()] = Repr;
      ++Result.NumClasses;
    }
  }
  Result.DFAStates = Cache.numStates();
  Result.Seconds = Clock.seconds();
  return Result;
}

std::vector<std::pair<ObjId, std::vector<ObjId>>>
mahjong::core::equivalenceClasses(const FieldPointsToGraph &G,
                                  const HeapModelerResult &Result) {
  std::map<uint32_t, std::vector<ObjId>> ByRepr;
  for (ObjId O : G.reachableObjs())
    ByRepr[Result.MOM[O.idx()].idx()].push_back(O);
  std::vector<std::pair<ObjId, std::vector<ObjId>>> Classes;
  Classes.reserve(ByRepr.size());
  for (auto &[Repr, Members] : ByRepr)
    Classes.emplace_back(ObjId(Repr), std::move(Members));
  std::stable_sort(Classes.begin(), Classes.end(),
                   [](const auto &A, const auto &B) {
                     return A.second.size() > B.second.size();
                   });
  return Classes;
}
