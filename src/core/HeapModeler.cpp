//===-- core/HeapModeler.cpp - MAHJONG's heap modeler (Alg. 1) --------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/HeapModeler.h"

#include "core/DFAPartition.h"
#include "core/EquivChecker.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <map>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;

namespace {

/// One per-type work unit: the objects of a single class type, in
/// allocation-site order. Tasks over different buckets are independent by
/// construction (type-consistent objects always share a type).
struct TypeBucket {
  std::vector<ObjId> Objs;
  /// Output: equivalence groups found within this bucket.
  std::vector<std::vector<ObjId>> Groups;
  uint64_t PairsTested = 0;
};

/// Partitions the bucket into type-consistency classes with the paper's
/// plain scan: each object is compared against the representative of
/// every existing class (one Hopcroft-Karp query each) and joins the
/// first match.
void processBucketByScan(TypeBucket &Bucket, DFACache &Cache,
                         bool EnforceCondition2) {
  EquivChecker Checker(Cache);
  std::vector<DFAStateId> GroupStart; // start state per group
  for (ObjId O : Bucket.Objs) {
    DFAStateId Start = Cache.startFor(O);
    // Condition 2 (SINGLETYPE-CHECK): objects whose automata can reach a
    // mixed-type state stay unmerged (lines 6-7 of Algorithm 1).
    if (EnforceCondition2 && !Cache.allSingletonOutputs(Start)) {
      Bucket.Groups.push_back({O});
      GroupStart.push_back(DFAStateId::invalid());
      continue;
    }
    bool Joined = false;
    for (size_t GIdx = 0; GIdx < Bucket.Groups.size(); ++GIdx) {
      if (!GroupStart[GIdx].isValid())
        continue; // a condition-2 violator never accepts members
      ++Bucket.PairsTested;
      if (Checker.equivalent(GroupStart[GIdx], Start)) {
        Bucket.Groups[GIdx].push_back(O);
        Joined = true;
        break;
      }
    }
    if (!Joined) {
      Bucket.Groups.push_back({O});
      GroupStart.push_back(Start);
    }
  }
}

/// Same result, but candidates are pre-grouped by the global behavioral
/// partition; Hopcroft-Karp certifies each member against its group's
/// representative (one near-linear query per object instead of one per
/// (object, class) pair).
void processBucketByPartition(TypeBucket &Bucket, DFACache &Cache,
                              const DFAPartition &Partition,
                              bool EnforceCondition2) {
  EquivChecker Checker(Cache);
  std::map<uint32_t, size_t> GroupOfBlock;
  std::vector<DFAStateId> GroupStart;
  for (ObjId O : Bucket.Objs) {
    DFAStateId Start = Cache.startFor(O);
    if (EnforceCondition2 && !Cache.allSingletonOutputs(Start)) {
      Bucket.Groups.push_back({O});
      GroupStart.push_back(DFAStateId::invalid());
      continue;
    }
    uint32_t Blk = Partition.blockOf(Start);
    auto [It, Fresh] = GroupOfBlock.try_emplace(Blk, Bucket.Groups.size());
    if (Fresh) {
      Bucket.Groups.push_back({O});
      GroupStart.push_back(Start);
      continue;
    }
    ++Bucket.PairsTested;
    bool Equal = Checker.equivalent(GroupStart[It->second], Start);
    assert(Equal && "partition disagrees with Hopcroft-Karp");
    if (Equal)
      Bucket.Groups[It->second].push_back(O);
    else
      Bucket.Groups.push_back({O}), GroupStart.push_back(Start);
  }
}

} // namespace

HeapModelerResult mahjong::core::modelHeap(const FieldPointsToGraph &G,
                                           DFACache &Cache,
                                           const HeapModelerOptions &Opts) {
  Timer Clock;
  const Program &P = G.program();
  HeapModelerResult Result;
  Result.MOM.resize(P.numObjs());
  for (uint32_t I = 0; I < P.numObjs(); ++I)
    Result.MOM[I] = ObjId(I);

  // Bucket reachable objects by type (std::map keeps the processing order
  // deterministic regardless of threading).
  std::map<uint32_t, TypeBucket> Buckets;
  for (ObjId O : G.reachableObjs())
    Buckets[P.obj(O).Type.idx()].Objs.push_back(O);
  Result.NumReachableObjs = G.numReachableObjs();

  // Build all shared automata up front: the behavioral partition needs
  // the complete state space, and the parallel phase must only read the
  // cache (the paper's synchronization-free scheme).
  for (auto &[TypeIdx, Bucket] : Buckets)
    for (ObjId O : Bucket.Objs)
      Cache.materialize(Cache.startFor(O));
  if (Opts.EnforceCondition2)
    for (auto &[TypeIdx, Bucket] : Buckets)
      for (ObjId O : Bucket.Objs)
        Cache.allSingletonOutputs(Cache.startFor(O));

  std::unique_ptr<DFAPartition> Partition;
  if (Opts.UsePartitionIndex)
    Partition = std::make_unique<DFAPartition>(Cache);

  auto RunBucket = [&](TypeBucket &Bucket) {
    if (Partition)
      processBucketByPartition(Bucket, Cache, *Partition,
                               Opts.EnforceCondition2);
    else
      processBucketByScan(Bucket, Cache, Opts.EnforceCondition2);
  };

  if (Opts.Threads > 1) {
    Cache.freeze();
    ThreadPool Pool(Opts.Threads);
    for (auto &[TypeIdx, Bucket] : Buckets) {
      TypeBucket *B = &Bucket;
      Pool.enqueue([B, &RunBucket] { RunBucket(*B); });
    }
    Pool.wait();
  } else {
    for (auto &[TypeIdx, Bucket] : Buckets)
      RunBucket(Bucket);
  }

  // Apply the groups: pick each class's representative per policy.
  for (auto &[TypeIdx, Bucket] : Buckets) {
    Result.PairsTested += Bucket.PairsTested;
    for (const std::vector<ObjId> &Group : Bucket.Groups) {
      ObjId Repr = Opts.Repr == ReprPolicy::FirstSite
                       ? *std::min_element(Group.begin(), Group.end())
                       : *std::max_element(Group.begin(), Group.end());
      for (ObjId Member : Group)
        Result.MOM[Member.idx()] = Repr;
      ++Result.NumClasses;
    }
  }
  Result.DFAStates = Cache.numStates();
  Result.Seconds = Clock.seconds();
  return Result;
}

std::vector<std::pair<ObjId, std::vector<ObjId>>>
mahjong::core::equivalenceClasses(const FieldPointsToGraph &G,
                                  const HeapModelerResult &Result) {
  std::map<uint32_t, std::vector<ObjId>> ByRepr;
  for (ObjId O : G.reachableObjs())
    ByRepr[Result.MOM[O.idx()].idx()].push_back(O);
  std::vector<std::pair<ObjId, std::vector<ObjId>>> Classes;
  Classes.reserve(ByRepr.size());
  for (auto &[Repr, Members] : ByRepr)
    Classes.emplace_back(ObjId(Repr), std::move(Members));
  std::stable_sort(Classes.begin(), Classes.end(),
                   [](const auto &A, const auto &B) {
                     return A.second.size() > B.second.size();
                   });
  return Classes;
}
