//===-- core/EquivChecker.h - Hopcroft-Karp equivalence -------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automata equivalence checker (the paper's Algorithm 4): the classic
/// Hopcroft-Karp union-find procedure, modified for 6-tuple sequential
/// automata by comparing the full output map instead of accept flags.
/// Runs in near-linear time O(|Σ| · |Q_larger|) per query.
///
/// Works on the shared DFACache; after the cache is frozen, independent
/// checkers can run concurrently (each keeps only a private union-find).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CORE_EQUIVCHECKER_H
#define MAHJONG_CORE_EQUIVCHECKER_H

#include "core/DFACache.h"

#include <cstdint>
#include <unordered_map>

namespace mahjong::core {

/// Decides language-and-output equivalence of two DFA states.
class EquivChecker {
public:
  /// Lazy mode: \p Cache must outlive the checker; unmaterialized states
  /// are expanded on demand (single-threaded use only). If the cache is
  /// frozen, queries route through the const accessors automatically.
  explicit EquivChecker(DFACache &Cache)
      : Cache(Cache), MutableCache(&Cache) {}

  /// Read-only mode for the parallel phase: the checker can never write
  /// to \p Cache (enforced by const), so any number of checkers may run
  /// concurrently. Every queried region must already be materialized
  /// (asserted per state by the frozen accessors).
  explicit EquivChecker(const DFACache &Cache)
      : Cache(Cache), MutableCache(nullptr) {}

  /// \returns true iff the automata rooted at \p A and \p B have
  /// identical behavior β: Σ* → P(Γ) (Condition 1 of Definition 2.1
  /// re-expressed on automata).
  bool equivalent(DFAStateId A, DFAStateId B);

  /// Total state pairs examined across all queries (statistics).
  uint64_t numPairsExamined() const { return PairsExamined; }

private:
  /// Lazy union-find over DFA state ids, local to one query.
  class LazyUnionFind {
  public:
    uint32_t find(uint32_t X);
    void unite(uint32_t A, uint32_t B);

  private:
    std::unordered_map<uint32_t, uint32_t> Parent;
  };

  const DFACache &Cache;
  DFACache *MutableCache; ///< null in read-only mode
  uint64_t PairsExamined = 0;
};

} // namespace mahjong::core

#endif // MAHJONG_CORE_EQUIVCHECKER_H
