//===-- core/DFAPartition.cpp - Global behavioral partition -----------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DFAPartition.h"

#include "support/Interner.h"

#include <algorithm>

using namespace mahjong;
using namespace mahjong::core;

DFAPartition::DFAPartition(DFACache &Cache) {
  uint32_t N = Cache.numStates();
  Block.assign(N, 0);

  // Initial partition: by output set. Outputs determine whether a state
  // contains o_null (the null type is only ever output by o_null), so the
  // default transition target — q_error vs the null sink — is uniform
  // within a block, which the signature construction below relies on.
  {
    Interner<Id<struct OutTag>, std::vector<uint32_t>, VectorHash> OutIds;
    for (uint32_t I = 0; I < N; ++I) {
      std::vector<uint32_t> Key;
      for (TypeId T : Cache.outputs(DFAStateId(I)))
        Key.push_back(T.idx());
      Block[I] = OutIds.intern(Key).idx();
    }
    NumBlocks = OutIds.size();
  }

  // Refine: a state's signature is its block plus, for each field, the
  // block of the successor — omitting entries that lead to the state's
  // default sink, so a missing field and an explicit edge to the sink
  // compare equal (they are behaviorally identical).
  for (;;) {
    ++Rounds;
    Interner<Id<struct SigTag>, std::vector<uint32_t>, VectorHash> SigIds;
    std::vector<uint32_t> Next(N);
    for (uint32_t I = 0; I < N; ++I) {
      DFAStateId S = DFAStateId(I);
      DFAStateId Sink = Cache.nextFrozenDefault(S);
      std::vector<uint32_t> Sig;
      Sig.push_back(Block[I]);
      for (const auto &[F, T] : Cache.transitions(S))
        if (Block[T.idx()] != Block[Sink.idx()]) {
          Sig.push_back(F.idx());
          Sig.push_back(Block[T.idx()]);
        }
      Next[I] = SigIds.intern(Sig).idx();
    }
    if (SigIds.size() == NumBlocks) {
      Block = std::move(Next);
      break; // stable
    }
    NumBlocks = SigIds.size();
    Block = std::move(Next);
  }
}
