//===-- core/DFAPartition.h - Global behavioral partition -----*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Moore-style partition refinement over the *whole* shared DFA: computes
/// the behavioral equivalence classes of every materialized state at
/// once. Two DFA states are language-and-output equivalent (the relation
/// Algorithm 4 decides pairwise) iff they end up in the same block.
///
/// The heap modeler uses the partition to group each type bucket by the
/// block of its objects' start states, reducing Algorithm 1's
/// object-vs-representative scan from O(objects x classes) to
/// O(objects); the Hopcroft-Karp checker still certifies each group.
/// This matters on heaps with many small equivalence classes (the
/// never-scalable programs), where the quadratic scan dominates.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CORE_DFAPARTITION_H
#define MAHJONG_CORE_DFAPARTITION_H

#include "core/DFACache.h"

#include <vector>

namespace mahjong::core {

/// Behavioral partition of all states materialized in a DFACache.
class DFAPartition {
public:
  /// Refines to a fixpoint. Every state whose transitions are
  /// materialized participates; the cache must not grow afterwards.
  explicit DFAPartition(DFACache &Cache);

  /// Block id of \p S. Equal blocks <=> behaviorally equivalent states.
  uint32_t blockOf(DFAStateId S) const { return Block[S.idx()]; }

  uint32_t numBlocks() const { return NumBlocks; }
  unsigned numRounds() const { return Rounds; }

private:
  std::vector<uint32_t> Block;
  uint32_t NumBlocks = 0;
  unsigned Rounds = 0;
};

} // namespace mahjong::core

#endif // MAHJONG_CORE_DFAPARTITION_H
