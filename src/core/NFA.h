//===-- core/NFA.h - Sequential automata over the FPG ---------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 6-tuple sequential automaton A_o = (Q, Σ, δ, q0, Γ, γ) read off the
/// field points-to graph rooted at an object o (the paper's Figure 4 and
/// Algorithm 2): states are the objects reachable from o, input symbols
/// are field names, the next-state map is the field points-to map, and
/// the output map γ assigns each state its class type.
///
/// The NFA is a *view*: states and the alphabet are materialized, but
/// transitions delegate to the shared FPG — this is the paper's "shared
/// sequential automata" optimization (§5), under which common sub-automata
/// of different roots exist only once.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CORE_NFA_H
#define MAHJONG_CORE_NFA_H

#include "core/FieldPointsToGraph.h"

#include <vector>

namespace mahjong::core {

/// The sequential automaton rooted at one object (Algorithm 2).
class NFA {
public:
  /// Builds the automaton for \p Root over \p G by discovering the
  /// reachable object set.
  NFA(const FieldPointsToGraph &G, ObjId Root);

  ObjId start() const { return Root; }

  /// Q: the states (reachable objects), ascending by id.
  const std::vector<ObjId> &states() const { return States; }

  /// Σ: the input symbols (fields of any state), ascending by id.
  const std::vector<FieldId> &alphabet() const { return Alphabet; }

  /// δ(q, f): the successor states (may be empty — no such field).
  const std::vector<ObjId> &next(ObjId State, FieldId F) const {
    return G.succ(State, F);
  }

  /// γ(q): the output symbol of a state — its type.
  TypeId output(ObjId State) const {
    return G.program().obj(State).Type;
  }

  size_t numStates() const { return States.size(); }

private:
  const FieldPointsToGraph &G;
  ObjId Root;
  std::vector<ObjId> States;
  std::vector<FieldId> Alphabet;
};

} // namespace mahjong::core

#endif // MAHJONG_CORE_NFA_H
