//===-- core/DFACache.cpp - Shared subset construction ----------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DFACache.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;

DFACache::DFACache(const FieldPointsToGraph &G) : G(G) {
  // State 0 is q_error: the empty object set with an empty output.
  DFAStateId Error = intern({});
  (void)Error;
  assert(Error == errorState() && "q_error must be state 0");
  // Pre-intern {o_null}: the sink for all-null suffixes (null self-loops).
  NullState = intern({Program::nullObj().idx()});
}

DFAStateId DFACache::intern(std::vector<uint32_t> SortedObjs) {
  DFAStateId S = Sets.intern(SortedObjs);
  if (S.idx() >= Outputs.size()) {
    assert(!Frozen && "interning a new DFA state after freeze()");
    Trans.resize(S.idx() + 1);
    TransComputed.resize(S.idx() + 1, false);
    Outputs.resize(S.idx() + 1);
    ContainsNull.resize(S.idx() + 1, false);
    KnownAllSingleton.resize(S.idx() + 1, false);
    KnownMixed.resize(S.idx() + 1, false);
    const Program &P = G.program();
    std::vector<TypeId> Types;
    for (uint32_t Obj : SortedObjs) {
      if (Program::nullObj().idx() == Obj)
        ContainsNull[S.idx()] = true;
      Types.push_back(P.obj(ObjId(Obj)).Type);
    }
    std::sort(Types.begin(), Types.end());
    Types.erase(std::unique(Types.begin(), Types.end()), Types.end());
    Outputs[S.idx()] = std::move(Types);
  }
  return S;
}

DFAStateId DFACache::startFor(ObjId O) { return intern({O.idx()}); }

DFAStateId DFACache::startForFrozen(ObjId O) const {
  DFAStateId S = Sets.lookup(std::vector<uint32_t>{O.idx()});
  assert(S.isValid() && "start state not interned before the frozen phase");
  return S;
}

void DFACache::computeTransitions(DFAStateId S) {
  assert(!Frozen && "computing transitions after freeze()");
  TransComputed[S.idx()] = true;
  // intern() below can grow the key table and move its vector headers, so
  // copy the member list instead of holding a reference into it.
  const std::vector<uint32_t> Objs = Sets.get(S);
  // Collect the union alphabet of the member objects, then the successor
  // set per field (Algorithm 3, line 10: q' = { δ[o_j, f] | o_j ∈ q }).
  std::vector<FieldId> Fields;
  for (uint32_t Obj : Objs)
    for (const auto &[F, Targets] : G.fieldsOf(ObjId(Obj)))
      Fields.push_back(F);
  std::sort(Fields.begin(), Fields.end());
  Fields.erase(std::unique(Fields.begin(), Fields.end()), Fields.end());

  bool HasNull = ContainsNull[S.idx()];
  std::vector<std::pair<FieldId, DFAStateId>> Result;
  Result.reserve(Fields.size());
  for (FieldId F : Fields) {
    std::vector<uint32_t> Next;
    for (uint32_t Obj : Objs)
      for (ObjId T : G.succ(ObjId(Obj), F))
        Next.push_back(T.idx());
    if (HasNull) // the null member self-loops on every field
      Next.push_back(Program::nullObj().idx());
    std::sort(Next.begin(), Next.end());
    Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
    Result.emplace_back(F, intern(std::move(Next)));
  }
  Trans[S.idx()] = std::move(Result);
}

const std::vector<std::pair<FieldId, DFAStateId>> &
DFACache::transitions(DFAStateId S) {
  if (!TransComputed[S.idx()])
    computeTransitions(S);
  return Trans[S.idx()];
}

DFAStateId DFACache::next(DFAStateId S, FieldId F) {
  const auto &Ts = transitions(S);
  auto It = std::lower_bound(
      Ts.begin(), Ts.end(), F,
      [](const auto &Entry, FieldId Key) { return Entry.first < Key; });
  if (It != Ts.end() && It->first == F)
    return It->second;
  // Missing field: a state containing o_null still self-loops on it.
  return ContainsNull[S.idx()] ? NullState : errorState();
}

const std::vector<std::pair<FieldId, DFAStateId>> &
DFACache::transitionsFrozen(DFAStateId S) const {
  assert(TransComputed[S.idx()] && "state not materialized before freeze()");
  return Trans[S.idx()];
}

DFAStateId DFACache::nextFrozen(DFAStateId S, FieldId F) const {
  const auto &Ts = transitionsFrozen(S);
  auto It = std::lower_bound(
      Ts.begin(), Ts.end(), F,
      [](const auto &Entry, FieldId Key) { return Entry.first < Key; });
  if (It != Ts.end() && It->first == F)
    return It->second;
  return ContainsNull[S.idx()] ? NullState : errorState();
}

const std::vector<ObjId> DFACache::members(DFAStateId S) const {
  std::vector<ObjId> Result;
  for (uint32_t Obj : Sets.get(S))
    Result.push_back(ObjId(Obj));
  return Result;
}

void DFACache::materialize(DFAStateId Start) {
  std::deque<DFAStateId> Queue{Start};
  std::unordered_set<uint32_t> Visited{Start.idx()};
  while (!Queue.empty()) {
    DFAStateId S = Queue.front();
    Queue.pop_front();
    for (const auto &[F, T] : transitions(S))
      if (Visited.insert(T.idx()).second)
        Queue.push_back(T);
  }
}

bool DFACache::allSingletonOutputs(DFAStateId Start) {
  if (KnownAllSingleton[Start.idx()])
    return true;
  if (KnownMixed[Start.idx()])
    return false;
  std::deque<DFAStateId> Queue{Start};
  // BFS tree: Parent[s] is the state whose transition enqueued s (Start
  // is its own parent). Doubles as the visited set, and on failure gives
  // the path of states that provably reach the violation.
  std::unordered_map<uint32_t, uint32_t> Parent{{Start.idx(), Start.idx()}};
  std::vector<DFAStateId> Region;
  auto FailAt = [&](DFAStateId Bad) {
    // Every state on the BFS-tree path Start..Bad reaches Bad, so the
    // negative verdict memoizes for the whole path — a repeated query on
    // any of them (in particular Start) is O(1) from now on.
    for (uint32_t X = Bad.idx();;) {
      KnownMixed[X] = true;
      uint32_t P = Parent.at(X);
      if (P == X)
        break;
      X = P;
    }
    return false;
  };
  while (!Queue.empty()) {
    DFAStateId S = Queue.front();
    Queue.pop_front();
    if (KnownAllSingleton[S.idx()])
      continue; // everything below S is already known good
    ++CheckStatesVisited;
    if (KnownMixed[S.idx()] || Outputs[S.idx()].size() != 1)
      return FailAt(S);
    Region.push_back(S);
    for (const auto &[F, T] : transitions(S))
      if (Parent.emplace(T.idx(), S.idx()).second)
        Queue.push_back(T);
  }
  // The whole region passed; remember it so shared suffixes are skipped.
  for (DFAStateId S : Region)
    KnownAllSingleton[S.idx()] = true;
  return true;
}
