//===-- core/Mahjong.cpp - Top-level MAHJONG driver --------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Mahjong.h"

#include "obs/Trace.h"
#include "support/Timer.h"

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::pta;

MahjongResult mahjong::core::buildMahjongHeap(const Program &P,
                                              const ClassHierarchy &CH,
                                              const MahjongOptions &Opts) {
  MahjongResult R;

  // Stage 1: the pre-analysis — by default the paper's fast, imprecise
  // context-insensitive Andersen with the allocation-site abstraction
  // (§3.1); optionally a more precise variant (see MahjongOptions).
  Timer Clock;
  {
    obs::ScopedSpan Span("pre-analysis");
    AnalysisOptions PreOpts;
    PreOpts.Kind = Opts.PreKind;
    PreOpts.K = Opts.PreK;
    PreOpts.TimeBudgetSeconds = Opts.PreAnalysisBudgetSeconds;
    R.Pre = runPointerAnalysis(P, CH, PreOpts);
  }
  R.PreSeconds = Clock.seconds();

  // Stage 2: the field points-to graph.
  Clock.reset();
  {
    obs::ScopedSpan Span("fpg-build");
    R.FPG = std::make_unique<FieldPointsToGraph>(*R.Pre);
  }
  R.FPGSeconds = Clock.seconds();

  // Stage 3: merge equivalent automata (Algorithm 1).
  Clock.reset();
  {
    obs::ScopedSpan Span("automata-merge");
    R.Cache = std::make_unique<DFACache>(*R.FPG);
    R.Modeling = modelHeap(*R.FPG, *R.Cache, Opts.Modeler);
    R.MOM = R.Modeling.MOM;
  }
  R.MahjongSeconds = Clock.seconds();

  R.Heap = std::make_unique<MergedHeapAbstraction>(R.MOM, "mahjong");
  return R;
}

MahjongAnalysis mahjong::core::runMahjongAnalysis(const Program &P,
                                                  const ClassHierarchy &CH,
                                                  ContextKind Kind, unsigned K,
                                                  const MahjongOptions &Opts,
                                                  double MainBudgetSeconds) {
  MahjongAnalysis MA;
  MA.Heap = buildMahjongHeap(P, CH, Opts);
  AnalysisOptions Main;
  Main.Kind = Kind;
  Main.K = K;
  Main.Heap = MA.Heap.Heap.get();
  Main.TimeBudgetSeconds = MainBudgetSeconds;
  MA.Result = runPointerAnalysis(P, CH, Main);
  MA.Result->AnalysisName = "M-" + MA.Result->AnalysisName;
  return MA;
}
