//===-- core/FieldPointsToGraph.cpp - The FPG (paper §2.2.1) ----------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/FieldPointsToGraph.h"

#include <algorithm>
#include <deque>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::pta;

FieldPointsToGraph::FieldPointsToGraph(const PTAResult &Pre) : P(Pre.P) {
  uint32_t N = P.numObjs();
  Adj.resize(N);
  Reachable.assign(N, false);
  NullSucc.push_back(Program::nullObj());
  Reachable[Program::nullObj().idx()] = true;

  // Objects allocated in reachable methods participate in the FPG.
  for (uint32_t I = 1; I < N; ++I) {
    MethodId M = P.obj(ObjId(I)).Method;
    if (M.isValid() && Pre.ReachableMethod[M.idx()]) {
      Reachable[I] = true;
      ++NumReachable;
    }
  }

  // Project the pre-analysis' object-field points-to relation onto base
  // objects. The pre-analysis is context-insensitive, so this is normally
  // a 1:1 copy; the projection keeps the builder correct for any input.
  std::unordered_map<uint64_t, PointsToSet> Collected;
  Pre.forEachFieldPts([&](CSObjId O, FieldId F, const PointsToSet &Set) {
    ObjId Base = Pre.CSM.objOf(O).second;
    uint64_t Key = (static_cast<uint64_t>(Base.idx()) << 20) | F.idx();
    PointsToSet &Into = Collected[Key];
    for (uint32_t Raw : Set)
      Into.insert(Pre.baseObjOf(Raw).idx());
  });

  std::vector<bool> FieldSeen(P.numFields(), false);
  for (auto &[Key, Set] : Collected) {
    ObjId Base = ObjId(static_cast<uint32_t>(Key >> 20));
    FieldId F = FieldId(static_cast<uint32_t>(Key & ((1u << 20) - 1)));
    if (!Reachable[Base.idx()])
      continue;
    std::vector<ObjId> Targets;
    Targets.reserve(Set.size());
    for (uint32_t Raw : Set)
      Targets.push_back(ObjId(Raw));
    NumEdges += Targets.size();
    if (!FieldSeen[F.idx()]) {
      FieldSeen[F.idx()] = true;
      ++NumFieldsUsed;
    }
    Adj[Base.idx()].emplace_back(F, std::move(Targets));
  }

  // Null completion: every declared instance field with no edge points to
  // o_null (paper §4.1: "if o_i.f = null, then (o_i, f, o_null) ∈ E").
  for (uint32_t I = 1; I < N; ++I) {
    if (!Reachable[I])
      continue;
    auto &Edges = Adj[I];
    std::sort(Edges.begin(), Edges.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    for (FieldId F : P.allInstanceFields(P.obj(ObjId(I)).Type)) {
      auto It = std::lower_bound(
          Edges.begin(), Edges.end(), F,
          [](const auto &Entry, FieldId Key) { return Entry.first < Key; });
      if (It == Edges.end() || It->first != F) {
        Edges.insert(It, {F, {Program::nullObj()}});
        ++NumEdges;
        if (!FieldSeen[F.idx()]) {
          FieldSeen[F.idx()] = true;
          ++NumFieldsUsed;
        }
      }
    }
  }
}

const std::vector<ObjId> &FieldPointsToGraph::succ(ObjId O, FieldId F) const {
  static const std::vector<ObjId> None;
  if (P.isNullObj(O))
    return NullSucc; // (o_null, f, o_null) for every f
  const auto &Edges = Adj[O.idx()];
  auto It = std::lower_bound(
      Edges.begin(), Edges.end(), F,
      [](const auto &Entry, FieldId Key) { return Entry.first < Key; });
  if (It == Edges.end() || It->first != F)
    return None;
  return It->second;
}

std::vector<ObjId> FieldPointsToGraph::reachableObjs() const {
  std::vector<ObjId> Result;
  Result.reserve(NumReachable);
  for (uint32_t I = 1; I < Reachable.size(); ++I)
    if (Reachable[I])
      Result.push_back(ObjId(I));
  return Result;
}

uint32_t FieldPointsToGraph::nfaSize(ObjId O) const {
  std::vector<bool> Visited(Adj.size(), false);
  std::deque<ObjId> Queue{O};
  Visited[O.idx()] = true;
  uint32_t Count = 0;
  while (!Queue.empty()) {
    ObjId Cur = Queue.front();
    Queue.pop_front();
    ++Count;
    if (P.isNullObj(Cur))
      continue;
    for (const auto &[F, Targets] : Adj[Cur.idx()])
      for (ObjId T : Targets)
        if (!Visited[T.idx()]) {
          Visited[T.idx()] = true;
          Queue.push_back(T);
        }
  }
  return Count;
}
