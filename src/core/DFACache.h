//===-- core/DFACache.h - Shared subset construction ----------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Determinization of the FPG-based NFAs (the paper's Algorithm 3), with
/// one crucial twist: DFA states — sets of FPG objects — are interned in a
/// single global table shared by every root object. Because two automata
/// rooted at different objects share all common sub-automata, converting
/// the second one mostly hits the cache. This realizes the paper's
/// "shared sequential automata" optimization (§5) and is what keeps the
/// pre-pass near-linear in practice.
///
/// Conventions (paper §4.3/§4.4):
///  - state id 0 is q_error, the sink for missing transitions, with an
///    empty (unique) output set;
///  - o_null has an implicit self-loop on every field, so a state
///    containing o_null never falls off to q_error;
///  - outputs are the *sets* of member types; SINGLETYPE-CHECK demands
///    every reachable state's output be a singleton (Condition 2 of
///    Definition 2.1).
///
/// After materialize()/freeze(), all query methods are const and safe to
/// call from multiple threads concurrently (the paper's parallel
/// type-consistency checks build all shared automata beforehand).
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CORE_DFACACHE_H
#define MAHJONG_CORE_DFACACHE_H

#include "core/FieldPointsToGraph.h"
#include "support/Interner.h"

#include <vector>

namespace mahjong::core {

/// Globally shared determinized automaton over the FPG.
class DFACache {
public:
  explicit DFACache(const FieldPointsToGraph &G);

  /// The DFA start state {o} for root object \p O. Materializes the state
  /// (not its successors).
  DFAStateId startFor(ObjId O);

  /// The q_error sink (always state 0).
  static constexpr DFAStateId errorState() { return DFAStateId(0); }

  /// Enumerated transitions of \p S, sorted by field: the fields its
  /// member objects actually have. Computes and memoizes them on first
  /// use (must not be the first use after freeze()).
  const std::vector<std::pair<FieldId, DFAStateId>> &
  transitions(DFAStateId S);

  /// δ(S, F), total: falls back to the null self-loop state if S contains
  /// o_null, else to q_error.
  DFAStateId next(DFAStateId S, FieldId F);

  /// Const overloads for the frozen, thread-shared phase.
  const std::vector<std::pair<FieldId, DFAStateId>> &
  transitionsFrozen(DFAStateId S) const;
  DFAStateId nextFrozen(DFAStateId S, FieldId F) const;

  /// The default sink of \p S for fields it lacks: the null self-loop
  /// state when S contains o_null, q_error otherwise.
  DFAStateId nextFrozenDefault(DFAStateId S) const {
    return ContainsNull[S.idx()] ? NullState : errorState();
  }

  /// Γ-output of \p S: sorted distinct member types (empty for q_error).
  const std::vector<TypeId> &outputs(DFAStateId S) const {
    return Outputs[S.idx()];
  }

  /// The member objects of \p S, sorted.
  const std::vector<ObjId> members(DFAStateId S) const;

  /// SINGLETYPE-CHECK (Condition 2 of Definition 2.1): every state
  /// reachable from \p Start has a singleton output. Successful regions
  /// are memoized, so repeated checks over shared sub-automata are cheap.
  bool allSingletonOutputs(DFAStateId Start);

  /// Expands every state reachable from \p Start so that all transitions
  /// are computed; afterwards queries on this region need no mutation.
  void materialize(DFAStateId Start);

  /// Marks the cache read-only (debug aid for the parallel phase).
  void freeze() { Frozen = true; }
  bool isFrozen() const { return Frozen; }

  uint32_t numStates() const { return Sets.size(); }

private:
  DFAStateId intern(std::vector<uint32_t> SortedObjs);
  void computeTransitions(DFAStateId S);

  const FieldPointsToGraph &G;
  Interner<DFAStateId, std::vector<uint32_t>, VectorHash> Sets;
  std::vector<std::vector<std::pair<FieldId, DFAStateId>>> Trans;
  std::vector<bool> TransComputed;
  std::vector<std::vector<TypeId>> Outputs;
  std::vector<bool> ContainsNull;
  std::vector<bool> KnownAllSingleton; ///< memo for allSingletonOutputs
  DFAStateId NullState;                ///< the state {o_null}
  bool Frozen = false;
};

} // namespace mahjong::core

#endif // MAHJONG_CORE_DFACACHE_H
