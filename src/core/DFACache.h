//===-- core/DFACache.h - Shared subset construction ----------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Determinization of the FPG-based NFAs (the paper's Algorithm 3), with
/// one crucial twist: DFA states — sets of FPG objects — are interned in a
/// single global table shared by every root object. Because two automata
/// rooted at different objects share all common sub-automata, converting
/// the second one mostly hits the cache. This realizes the paper's
/// "shared sequential automata" optimization (§5) and is what keeps the
/// pre-pass near-linear in practice.
///
/// Conventions (paper §4.3/§4.4):
///  - state id 0 is q_error, the sink for missing transitions, with an
///    empty (unique) output set;
///  - o_null has an implicit self-loop on every field, so a state
///    containing o_null never falls off to q_error;
///  - outputs are the *sets* of member types; SINGLETYPE-CHECK demands
///    every reachable state's output be a singleton (Condition 2 of
///    Definition 2.1).
///
/// Freeze contract (the paper's parallel type-consistency checks, §5):
/// the cache has two phases. In the *build* phase a single thread interns
/// states, expands transitions, and runs SINGLETYPE-CHECK; both positive
/// (KnownAllSingleton) and negative (KnownMixed) condition-2 verdicts are
/// memoized. Once every region the checks will touch is materialized and
/// every start state has a memoized verdict, freeze() flips the cache
/// read-only; from then on only the `...Frozen` accessors (all `const`,
/// zero writes) may be used, and they are safe from any number of threads
/// concurrently. The mutating entry points assert `!Frozen`, so a stray
/// write in the parallel phase dies in debug builds instead of racing.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_CORE_DFACACHE_H
#define MAHJONG_CORE_DFACACHE_H

#include "core/FieldPointsToGraph.h"
#include "support/Interner.h"

#include <vector>

namespace mahjong::core {

/// Globally shared determinized automaton over the FPG.
class DFACache {
public:
  explicit DFACache(const FieldPointsToGraph &G);

  /// The DFA start state {o} for root object \p O. Materializes the state
  /// (not its successors).
  DFAStateId startFor(ObjId O);

  /// The already-interned start state {o} for \p O; never interns.
  /// Requires a prior startFor(O)/materialize covering O (asserted), so it
  /// is safe from worker threads after freeze().
  DFAStateId startForFrozen(ObjId O) const;

  /// The q_error sink (always state 0).
  static constexpr DFAStateId errorState() { return DFAStateId(0); }

  /// Enumerated transitions of \p S, sorted by field: the fields its
  /// member objects actually have. Computes and memoizes them on first
  /// use (must not be the first use after freeze()). The reference is
  /// invalidated by any later call that interns a new state; do not hold
  /// it across transitions()/next() on a not-yet-computed state.
  const std::vector<std::pair<FieldId, DFAStateId>> &
  transitions(DFAStateId S);

  /// δ(S, F), total: falls back to the null self-loop state if S contains
  /// o_null, else to q_error.
  DFAStateId next(DFAStateId S, FieldId F);

  /// Const overloads for the frozen, thread-shared phase.
  const std::vector<std::pair<FieldId, DFAStateId>> &
  transitionsFrozen(DFAStateId S) const;
  DFAStateId nextFrozen(DFAStateId S, FieldId F) const;

  /// The default sink of \p S for fields it lacks: the null self-loop
  /// state when S contains o_null, q_error otherwise.
  DFAStateId nextFrozenDefault(DFAStateId S) const {
    return ContainsNull[S.idx()] ? NullState : errorState();
  }

  /// Γ-output of \p S: sorted distinct member types (empty for q_error).
  const std::vector<TypeId> &outputs(DFAStateId S) const {
    return Outputs[S.idx()];
  }

  /// The member objects of \p S, sorted.
  const std::vector<ObjId> members(DFAStateId S) const;

  /// SINGLETYPE-CHECK (Condition 2 of Definition 2.1): every state
  /// reachable from \p Start has a singleton output. Both verdicts are
  /// memoized: successful regions are marked KnownAllSingleton, and on
  /// failure the BFS-tree path from \p Start down to the offending state
  /// is marked KnownMixed (each state on it reaches the violation), so
  /// repeated checks over shared sub-automata — including repeated
  /// queries on condition-2 violators — are O(1), not a fresh traversal.
  bool allSingletonOutputs(DFAStateId Start);

  /// Memoized-only SINGLETYPE-CHECK for the frozen, thread-shared phase:
  /// never mutates and never traverses. Requires that the mutating
  /// allSingletonOutputs(\p S) ran before freeze() (asserted); with
  /// assertions off an unmemoized state conservatively reads as mixed,
  /// which keeps its object unmerged (sound, never unsound).
  bool allSingletonOutputsFrozen(DFAStateId S) const {
    assert((KnownAllSingleton[S.idx()] || KnownMixed[S.idx()]) &&
           "condition-2 verdict not precomputed before the frozen phase");
    return KnownAllSingleton[S.idx()];
  }

  /// Expands every state reachable from \p Start so that all transitions
  /// are computed; afterwards queries on this region need no mutation.
  void materialize(DFAStateId Start);

  /// Flips the cache read-only: every mutating entry point asserts
  /// !isFrozen() from here on, so the parallel phase provably performs
  /// zero writes (see the freeze contract in the file header).
  void freeze() { Frozen = true; }
  bool isFrozen() const { return Frozen; }

  uint32_t numStates() const { return Sets.size(); }

  /// States popped by allSingletonOutputs traversals since construction
  /// (statistics; lets tests assert memoized re-queries do no BFS work).
  uint64_t checkStatesVisited() const { return CheckStatesVisited; }

private:
  DFAStateId intern(std::vector<uint32_t> SortedObjs);
  void computeTransitions(DFAStateId S);

  const FieldPointsToGraph &G;
  Interner<DFAStateId, std::vector<uint32_t>, VectorHash> Sets;
  std::vector<std::vector<std::pair<FieldId, DFAStateId>>> Trans;
  std::vector<bool> TransComputed;
  std::vector<std::vector<TypeId>> Outputs;
  std::vector<bool> ContainsNull;
  std::vector<bool> KnownAllSingleton; ///< positive condition-2 verdicts
  std::vector<bool> KnownMixed;        ///< negative condition-2 verdicts
  DFAStateId NullState;                ///< the state {o_null}
  uint64_t CheckStatesVisited = 0;     ///< BFS pops across all checks
  bool Frozen = false;
};

} // namespace mahjong::core

#endif // MAHJONG_CORE_DFACACHE_H
