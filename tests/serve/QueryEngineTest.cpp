//===-- tests/serve/QueryEngineTest.cpp --------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Semantics of the six query kinds against a program whose ground truth
// is known by hand, plus the parse/error surface and the cache observable
// behavior (hits, eviction under a tiny capacity, correctness after
// eviction).
//
//===----------------------------------------------------------------------===//

#include "serve/QueryEngine.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::serve;
using namespace mahjong::test;

namespace {

std::shared_ptr<const SnapshotData> snapshotOf(const pta::PTAResult &R) {
  return std::make_shared<SnapshotData>(buildSnapshot(R));
}

/// The fixture program. Allocation order: o1 = new A, o2 = new B; x sees
/// both, so the call through x is polymorphic and the (B) cast may fail.
Analyzed fixture() {
  return analyze(R"(
    class A {
      method m(p) { return p; }
    }
    class B extends A {
      method m(p) { return this; }
    }
    class Main {
      static method main() {
        a = new A;
        b = new B;
        x = a;
        x = b;
        r = x.m(b);
        c = (B) x;
        d = (A) b;
        n = null;
      }
    }
  )");
}

} // namespace

TEST(QueryEngine, PointsTo) {
  Analyzed A = fixture();
  QueryEngine E(snapshotOf(*A.R));
  QueryResult R = E.run("points-to Main.main/0::x");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Items, (std::vector<std::string>{"o1<A>@Main.main/0",
                                               "o2<B>@Main.main/0"}));

  R = E.run("points-to Main.main/0::n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Items, (std::vector<std::string>{"o0<null>"}));
}

TEST(QueryEngine, Alias) {
  Analyzed A = fixture();
  QueryEngine E(snapshotOf(*A.R));

  QueryResult R = E.run("alias Main.main/0::a Main.main/0::x");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.HasVerdict);
  EXPECT_TRUE(R.Verdict);

  R = E.run("alias Main.main/0::a Main.main/0::b");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Verdict);

  // Sharing only o_null is not aliasing.
  R = E.run("alias Main.main/0::n Main.main/0::n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Verdict);
}

TEST(QueryEngine, Devirt) {
  Analyzed A = fixture();
  QueryEngine E(snapshotOf(*A.R));
  // Site 0 is r = x.m(b): x may hold an A or a B, so both overrides.
  QueryResult R = E.run("devirt 0");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Items, (std::vector<std::string>{"A.m/1", "B.m/1"}));
}

TEST(QueryEngine, CastMayFail) {
  Analyzed A = fixture();
  QueryEngine E(snapshotOf(*A.R));
  // Cast 0 is c = (B) x: x may hold the A object.
  QueryResult R = E.run("cast-may-fail 0");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.HasVerdict);
  EXPECT_TRUE(R.Verdict);
  // Cast 1 is d = (A) b: an upcast, can never fail.
  R = E.run("cast-may-fail 1");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Verdict);
}

TEST(QueryEngine, CallersCallees) {
  Analyzed A = fixture();
  QueryEngine E(snapshotOf(*A.R));
  QueryResult R = E.run("callees Main.main/0");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Items, (std::vector<std::string>{"A.m/1", "B.m/1"}));

  R = E.run("callers A.m/1");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Items, (std::vector<std::string>{"Main.main/0"}));

  R = E.run("callers Main.main/0");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Items.empty());
}

TEST(QueryEngine, ErrorsAreReportedNotThrown) {
  Analyzed A = fixture();
  QueryEngine E(snapshotOf(*A.R));

  // Malformed query text never enters the cache...
  EXPECT_FALSE(E.run("").Ok);
  EXPECT_FALSE(E.run("frobnicate x").Ok);
  EXPECT_FALSE(E.run("points-to").Ok);
  EXPECT_FALSE(E.run("alias Main.main/0::a").Ok);
  EXPECT_EQ(E.cacheStats().Insertions, 0u);

  // ...and neither do well-formed queries over missing entities: their
  // key space is unbounded, so an adversarial stream of unknown names
  // must not grow the cache.
  EXPECT_FALSE(E.run("points-to NoSuch.method/0::v").Ok);
  EXPECT_FALSE(E.run("devirt 99999").Ok);
  EXPECT_FALSE(E.run("devirt notanumber").Ok);
  EXPECT_FALSE(E.run("cast-may-fail -1").Ok);
  EXPECT_FALSE(E.run("callers NoSuch.method/9").Ok);
  EXPECT_EQ(E.cacheStats().Insertions, 0u);
}

TEST(QueryCacheTest, RetiredMemoryIsBounded) {
  // Retired entries are the cache's whole allocation footprint; a stream
  // of endlessly distinct keys must stop allocating at the cap instead
  // of growing without bound (misses then evaluate uncached).
  QueryCache C(/*Capacity=*/8);
  QueryResult R;
  R.Ok = true;
  R.Items.push_back("answer");
  const int Distinct = 100000;
  for (int I = 0; I < Distinct; ++I)
    C.insert("key" + std::to_string(I), R);
  QueryCache::Stats S = C.stats();
  ASSERT_LT(S.Insertions, static_cast<uint64_t>(Distinct));
  // Entries published before the cap was hit are still served: every
  // live entry's key is among the first Insertions keys.
  const QueryResult *Hit = nullptr;
  for (uint64_t I = 0; I < S.Insertions && !Hit; ++I)
    Hit = C.lookup("key" + std::to_string(I));
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Items, R.Items);
}

TEST(QueryEngine, CacheHitsRepeatQueries) {
  Analyzed A = fixture();
  QueryEngine E(snapshotOf(*A.R));
  QueryResult First = E.run("points-to Main.main/0::x");
  QueryResult Second = E.run("points-to Main.main/0::x");
  EXPECT_EQ(First.Items, Second.Items);
  QueryCache::Stats S = E.cacheStats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_GE(S.Hits, 1u);
}

TEST(QueryEngine, CacheStaysCorrectUnderEviction) {
  Analyzed A = fixture();
  // A deliberately tiny cache so distinct queries fight for slots.
  QueryEngine E(snapshotOf(*A.R), /*CacheCapacity=*/8);
  const SnapshotData &D = E.data();
  for (int Round = 0; Round < 3; ++Round) {
    for (uint32_t V = 0; V < D.Vars.size(); ++V) {
      QueryResult R = E.run("points-to " + D.varKey(V));
      ASSERT_TRUE(R.Ok) << R.Error;
      // Cached or freshly evaluated, the answer must match evaluate().
      Query Q;
      std::string Err;
      ASSERT_TRUE(parseQuery("points-to " + D.varKey(V), Q, Err)) << Err;
      EXPECT_EQ(R.Items, E.evaluate(Q).Items) << D.varKey(V);
    }
  }
  EXPECT_GT(E.cacheStats().Evictions, 0u);
}

TEST(QueryEngine, ResultToString) {
  Analyzed A = fixture();
  QueryEngine E(snapshotOf(*A.R));
  EXPECT_EQ(E.run("cast-may-fail 0").toString(), "true");
  EXPECT_EQ(E.run("cast-may-fail 1").toString(), "false");
  EXPECT_EQ(E.run("devirt 0").toString(), "[A.m/1, B.m/1]");
}
