//===-- tests/serve/ConcurrentQueryTest.cpp ----------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The concurrent serving contract: >= 8 client threads hammering one
// QueryEngine (and one QueryServer) must race nowhere — every answer must
// equal the single-threaded answer, under heavy cache contention and a
// capacity small enough to force constant eviction. Run under
// -DMAHJONG_SANITIZE=thread these tests are the TSan proof of the
// lock-free read path.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/Hashing.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace mahjong;
using namespace mahjong::serve;
using namespace mahjong::test;

namespace {

constexpr unsigned NumClients = 8;
constexpr unsigned QueriesPerClient = 2000;

/// A program with enough distinct variables to generate cache churn.
Analyzed contentionFixture() {
  std::string Src = R"(
    class A { method m(p) { return p; } }
    class B extends A { method m(p) { return this; } }
    class Main {
      static method main() {
        a = new A;
        b = new B;
        x = a;
        x = b;
        r = x.m(b);
        c = (B) x;
  )";
  // Widen main with many one-object variables so points-to keys vary.
  for (int I = 0; I < 40; ++I)
    Src += "        v" + std::to_string(I) + " = new A;\n";
  Src += "      }\n    }\n";
  return analyze(Src);
}

/// Every query text the clients draw from, with its single-threaded
/// answer precomputed before any concurrency starts.
struct Corpus {
  std::vector<std::string> Texts;
  std::vector<std::string> Expected;
};

Corpus buildCorpus(const QueryEngine &E) {
  Corpus C;
  const SnapshotData &D = E.data();
  for (uint32_t V = 0; V < D.Vars.size(); ++V)
    C.Texts.push_back("points-to " + D.varKey(V));
  for (uint32_t S = 0; S < D.Sites.size(); ++S)
    C.Texts.push_back("devirt " + std::to_string(S));
  for (uint32_t I = 0; I < D.Casts.size(); ++I)
    C.Texts.push_back("cast-may-fail " + std::to_string(I));
  for (const SnapshotData::Method &M : D.Methods) {
    C.Texts.push_back("callers " + M.Signature);
    C.Texts.push_back("callees " + M.Signature);
  }
  C.Texts.push_back("alias Main.main/0::a Main.main/0::x");
  C.Texts.push_back("not a query at all"); // error path under concurrency
  for (const std::string &T : C.Texts)
    C.Expected.push_back(E.run(T).toString());
  return C;
}

} // namespace

TEST(ConcurrentQuery, EngineAnswersAreRaceFree) {
  Analyzed A = contentionFixture();
  // Tiny cache: eviction and insertion race with lock-free readers.
  QueryEngine E(std::make_shared<SnapshotData>(buildSnapshot(*A.R)),
                /*CacheCapacity=*/32);
  Corpus C = buildCorpus(E);

  std::atomic<uint64_t> Mismatches{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumClients; ++T) {
    Threads.emplace_back([&, T] {
      uint64_t Rng = splitmix64(T + 1);
      for (unsigned I = 0; I < QueriesPerClient; ++I) {
        Rng = splitmix64(Rng);
        size_t Pick = Rng % C.Texts.size();
        if (E.run(C.Texts[Pick]).toString() != C.Expected[Pick])
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Mismatches.load(), 0u);

  QueryCache::Stats S = E.cacheStats();
  EXPECT_GT(S.Hits, 0u);
  EXPECT_GT(S.Evictions, 0u) << "capacity 32 should churn";
}

TEST(ConcurrentQuery, ServerAnswersAreRaceFree) {
  Analyzed A = contentionFixture();
  QueryEngine E(std::make_shared<SnapshotData>(buildSnapshot(*A.R)));
  Corpus C = buildCorpus(E);
  QueryServer Server(E, /*Workers=*/4, /*MaxBatch=*/8);

  std::atomic<uint64_t> Mismatches{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumClients; ++T) {
    Threads.emplace_back([&, T] {
      uint64_t Rng = splitmix64(0x5e4 + T);
      for (unsigned I = 0; I < QueriesPerClient / 4; ++I) {
        Rng = splitmix64(Rng);
        size_t Pick = Rng % C.Texts.size();
        QueryResult R = Server.submit(C.Texts[Pick]).get();
        if (R.toString() != C.Expected[Pick])
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();
  Server.drain();
  EXPECT_EQ(Mismatches.load(), 0u);

  ServerStats S = Server.stats();
  EXPECT_EQ(S.Requests, NumClients * (QueriesPerClient / 4));
  EXPECT_GE(S.Batches, 1u);
  EXPECT_LE(S.MaxBatchObserved, 8u);
}

TEST(ConcurrentQuery, ManyEnginesShareOneSnapshot) {
  // The snapshot itself must tolerate concurrent readers through
  // independent engines (shared_ptr-shared immutable data).
  Analyzed A = contentionFixture();
  auto Shared = std::make_shared<const SnapshotData>(buildSnapshot(*A.R));
  std::vector<std::thread> Threads;
  std::atomic<uint64_t> Failures{0};
  for (unsigned T = 0; T < NumClients; ++T) {
    Threads.emplace_back([&] {
      QueryEngine E(Shared, /*CacheCapacity=*/16);
      for (uint32_t V = 0; V < Shared->Vars.size(); ++V)
        if (!E.run("points-to " + Shared->varKey(V)).Ok)
          Failures.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0u);
}
