//===-- tests/serve/TrafficTest.cpp ------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The workload-spec parser (accept/reject surface, line-numbered
// diagnostics), the deterministic query generator, and an end-to-end
// traffic replay smoke check mirroring what CI's serve-bench job asserts:
// nonzero QPS, zero failed queries.
//
//===----------------------------------------------------------------------===//

#include "serve/Traffic.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace mahjong;
using namespace mahjong::serve;
using namespace mahjong::test;

namespace {

std::shared_ptr<const SnapshotData> fixtureSnapshot() {
  Analyzed A = analyze(R"(
    class A { method m(p) { return p; } }
    class B extends A { method m(p) { return this; } }
    class Main {
      static method main() {
        a = new A;
        b = new B;
        x = a;
        x = b;
        r = x.m(b);
        c = (B) x;
      }
    }
  )");
  return std::make_shared<SnapshotData>(buildSnapshot(*A.R));
}

} // namespace

TEST(WorkloadSpec, ParsesFullSpec) {
  QueryWorkload W;
  std::string Err;
  ASSERT_TRUE(parseWorkloadSpec(R"(
    # serving mix for the smoke job
    clients = 3
    queries_per_client = 123
    duration_seconds = 0.5
    seed = 99
    zipf_s = 1.1
    workers = 2
    max_batch = 4
    weight_points_to = 10
    weight_alias = 0
    weight_devirt = 5
    weight_cast_may_fail = 1
    weight_callers = 0
    weight_callees = 2
  )",
                                W, Err))
      << Err;
  EXPECT_EQ(W.Clients, 3u);
  EXPECT_EQ(W.QueriesPerClient, 123u);
  EXPECT_DOUBLE_EQ(W.DurationSeconds, 0.5);
  EXPECT_EQ(W.Seed, 99u);
  EXPECT_DOUBLE_EQ(W.ZipfS, 1.1);
  EXPECT_EQ(W.Workers, 2u);
  EXPECT_EQ(W.MaxBatch, 4u);
  EXPECT_EQ(W.WeightPointsTo, 10u);
  EXPECT_EQ(W.WeightAlias, 0u);
  EXPECT_EQ(W.WeightDevirt, 5u);
  EXPECT_EQ(W.WeightCastMayFail, 1u);
  EXPECT_EQ(W.WeightCallers, 0u);
  EXPECT_EQ(W.WeightCallees, 2u);
}

TEST(WorkloadSpec, DefaultsSurviveEmptySpec) {
  QueryWorkload W;
  std::string Err;
  ASSERT_TRUE(parseWorkloadSpec("# nothing but comments\n\n", W, Err));
  EXPECT_EQ(W.Clients, 4u);
  EXPECT_EQ(W.QueriesPerClient, 1000u);
}

TEST(WorkloadSpec, RejectsMalformedInput) {
  QueryWorkload W;
  std::string Err;

  EXPECT_FALSE(parseWorkloadSpec("clients 8\n", W, Err));
  EXPECT_NE(Err.find("line 1"), std::string::npos) << Err;

  EXPECT_FALSE(parseWorkloadSpec("\nfrobs = 3\n", W, Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
  EXPECT_NE(Err.find("frobs"), std::string::npos) << Err;

  EXPECT_FALSE(parseWorkloadSpec("clients = 0\n", W, Err));
  EXPECT_FALSE(parseWorkloadSpec("clients = -2\n", W, Err));
  EXPECT_FALSE(parseWorkloadSpec("zipf_s = banana\n", W, Err));
  EXPECT_FALSE(parseWorkloadSpec("weight_teleport = 1\n", W, Err));

  // A mix with every weight zero can generate nothing.
  QueryWorkload Z;
  EXPECT_FALSE(parseWorkloadSpec(
      "weight_points_to = 0\nweight_alias = 0\nweight_devirt = 0\n"
      "weight_cast_may_fail = 0\nweight_callers = 0\nweight_callees = 0\n",
      Z, Err));
  EXPECT_NE(Err.find("zero"), std::string::npos) << Err;
}

TEST(QueryGeneratorTest, DeterministicPerSeedAndClient) {
  auto D = fixtureSnapshot();
  QueryWorkload W;
  W.Seed = 7;

  QueryGenerator G1(*D, W, /*Client=*/0), G2(*D, W, /*Client=*/0);
  QueryGenerator G3(*D, W, /*Client=*/1);
  bool Diverged = false;
  for (int I = 0; I < 64; ++I) {
    std::string A = G1.next();
    EXPECT_EQ(A, G2.next()) << "same seed+client must replay identically";
    Diverged |= A != G3.next();
  }
  EXPECT_TRUE(Diverged) << "clients must not replay each other's stream";
}

TEST(QueryGeneratorTest, GeneratedQueriesAllParseAndSucceed) {
  auto D = fixtureSnapshot();
  QueryEngine E(D);
  QueryWorkload W;
  W.ZipfS = 1.2; // exercise the skewed-rank path too
  std::set<std::string> Kinds;
  QueryGenerator G(*D, W, 0);
  for (int I = 0; I < 512; ++I) {
    std::string Text = G.next();
    QueryResult R = E.run(Text);
    ASSERT_TRUE(R.Ok) << Text << ": " << R.Error;
    Kinds.insert(Text.substr(0, Text.find(' ')));
  }
  // The default mix must actually produce variety.
  EXPECT_GE(Kinds.size(), 4u) << "only saw: " << testing::PrintToString(Kinds);
}

TEST(Traffic, ReplayReportsSaneNumbers) {
  auto D = fixtureSnapshot();
  QueryEngine E(D);
  QueryWorkload W;
  W.Clients = 4;
  W.QueriesPerClient = 500;
  W.Workers = 2;
  TrafficReport Rep = runTraffic(E, W);

  EXPECT_EQ(Rep.Queries, 4u * 500u);
  EXPECT_EQ(Rep.Failed, 0u);
  EXPECT_GT(Rep.QPS, 0.0);
  EXPECT_GT(Rep.Seconds, 0.0);
  EXPECT_LE(Rep.P50Micros, Rep.P95Micros);
  EXPECT_LE(Rep.P95Micros, Rep.P99Micros);
  EXPECT_EQ(Rep.Cache.Hits + Rep.Cache.Misses, Rep.Queries);
  EXPECT_EQ(Rep.Server.Requests, Rep.Queries);

  std::string Json = Rep.toJson();
  EXPECT_NE(Json.find("\"queries\": 2000"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"failed\": 0"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"qps\": "), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"p99_us\": "), std::string::npos) << Json;
}

TEST(Traffic, SurvivesDegenerateEmptySnapshot) {
  // A snapshot of an empty program has no vars, sites, casts or methods;
  // the generator must emit fixed parse-valid queries instead of
  // indexing the empty tables.
  auto D = std::make_shared<SnapshotData>();
  D->PtsSets.push_back({}); // pinned empty set
  QueryEngine E(D);
  QueryWorkload W;
  W.Clients = 2;
  W.QueriesPerClient = 64;
  W.Workers = 1;
  W.ZipfS = 1.1; // the skewed-rank path must tolerate empty pools too
  TrafficReport Rep = runTraffic(E, W);
  EXPECT_EQ(Rep.Queries, 2u * 64u);
  // Every answer is a clean unknown-entity error, not a crash.
  EXPECT_EQ(Rep.Failed, Rep.Queries);
}

TEST(Traffic, DurationModeStopsOnTime) {
  auto D = fixtureSnapshot();
  QueryEngine E(D);
  QueryWorkload W;
  W.Clients = 2;
  W.DurationSeconds = 0.05;
  W.Workers = 2;
  TrafficReport Rep = runTraffic(E, W);
  EXPECT_GT(Rep.Queries, 0u);
  EXPECT_EQ(Rep.Failed, 0u);
  // Generously bounded: the run must terminate near the deadline, not
  // run the default 1000-queries-per-client count.
  EXPECT_LT(Rep.Seconds, 5.0);
}
