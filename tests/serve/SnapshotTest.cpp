//===-- tests/serve/SnapshotTest.cpp -----------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Format-level properties of the .mjsnap container: encode/decode
// round-trips, checksum and truncation detection, version gating, and
// forward-compatible skipping of unknown sections.
//
//===----------------------------------------------------------------------===//

#include "serve/Snapshot.h"

#include "../TestUtil.h"
#include "support/Hashing.h"
#include "support/Varint.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mahjong;
using namespace mahjong::serve;
using namespace mahjong::test;

namespace {

constexpr size_t HeaderSize = 6 + 4 + 8 + 8;

SnapshotData analyzedSnapshot() {
  Analyzed A = analyze(R"(
    class A {
      method m(p) { return p; }
    }
    class B extends A {
      method m(p) { return this; }
    }
    class Main {
      static method main() {
        a = new A;
        b = new B;
        x = a;
        x = b;
        r = x.m(b);
        c = (B) x;
      }
    }
  )");
  return buildSnapshot(*A.R);
}

void putFixed32(std::string &Buf, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putFixed64(std::string &Buf, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Reassembles a well-formed file around \p Payload (correct checksum
/// and size), with \p Version in the header.
std::string assemble(const std::string &Payload,
                     uint32_t Version = SnapshotVersion) {
  std::string Out = "MJSNAP";
  putFixed32(Out, Version);
  putFixed64(Out, fnv1a64(Payload));
  putFixed64(Out, Payload.size());
  return Out + Payload;
}

} // namespace

TEST(Snapshot, EncodeDecodeRoundTrips) {
  SnapshotData D = analyzedSnapshot();
  std::string Bytes = encodeSnapshot(D);
  std::string Err;
  auto D2 = decodeSnapshot(Bytes, Err);
  ASSERT_TRUE(D2) << Err;
  EXPECT_EQ(D.AnalysisName, D2->AnalysisName);
  EXPECT_EQ(D.HeapName, D2->HeapName);
  ASSERT_EQ(D.Types.size(), D2->Types.size());
  for (size_t I = 0; I < D.Types.size(); ++I) {
    EXPECT_EQ(D.Types[I].Name, D2->Types[I].Name);
    EXPECT_EQ(D.Types[I].Kind, D2->Types[I].Kind);
    EXPECT_EQ(D.Types[I].Ancestors, D2->Types[I].Ancestors);
  }
  ASSERT_EQ(D.Vars.size(), D2->Vars.size());
  for (size_t I = 0; I < D.Vars.size(); ++I) {
    EXPECT_EQ(D.Vars[I].Name, D2->Vars[I].Name);
    EXPECT_EQ(D.Vars[I].Method, D2->Vars[I].Method);
    EXPECT_EQ(D.Vars[I].PtsSet, D2->Vars[I].PtsSet);
  }
  EXPECT_EQ(D.PtsSets, D2->PtsSets);
  ASSERT_EQ(D.Sites.size(), D2->Sites.size());
  for (size_t I = 0; I < D.Sites.size(); ++I)
    EXPECT_EQ(D.Sites[I].Callees, D2->Sites[I].Callees);
  ASSERT_EQ(D.Casts.size(), D2->Casts.size());
  ASSERT_EQ(D.Objs.size(), D2->Objs.size());
  for (size_t I = 0; I < D.Objs.size(); ++I) {
    EXPECT_EQ(D.Objs[I].Type, D2->Objs[I].Type);
    EXPECT_EQ(D.Objs[I].Method, D2->Objs[I].Method);
  }
  ASSERT_EQ(D.Methods.size(), D2->Methods.size());
  for (size_t I = 0; I < D.Methods.size(); ++I) {
    EXPECT_EQ(D.Methods[I].Signature, D2->Methods[I].Signature);
    EXPECT_EQ(D.Methods[I].Reachable, D2->Methods[I].Reachable);
  }
}

TEST(Snapshot, SaveLoadFileRoundTrips) {
  Analyzed A = analyze(R"(
    class Main { static method main() { x = new Main; } }
  )");
  std::string Path = testing::TempDir() + "/roundtrip.mjsnap";
  std::string Err;
  ASSERT_TRUE(saveSnapshot(*A.R, Path, Err)) << Err;
  auto D = loadSnapshot(Path, Err);
  ASSERT_TRUE(D) << Err;
  EXPECT_EQ(D->Vars.size(), A.P->numVars());
  EXPECT_EQ(D->Objs.size(), A.P->numObjs());
}

TEST(Snapshot, RejectsBadMagic) {
  std::string Err;
  EXPECT_EQ(decodeSnapshot("NOTASNAPFILE....", Err), nullptr);
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;
}

TEST(Snapshot, RejectsCorruptedPayload) {
  std::string Bytes = encodeSnapshot(analyzedSnapshot());
  ASSERT_GT(Bytes.size(), HeaderSize + 10);
  Bytes[HeaderSize + 5] ^= 0x40;
  std::string Err;
  EXPECT_EQ(decodeSnapshot(Bytes, Err), nullptr);
  EXPECT_NE(Err.find("checksum"), std::string::npos) << Err;
}

TEST(Snapshot, RejectsTruncation) {
  std::string Bytes = encodeSnapshot(analyzedSnapshot());
  std::string Err;
  EXPECT_EQ(decodeSnapshot(Bytes.substr(0, Bytes.size() - 7), Err), nullptr);
  EXPECT_NE(Err.find("size mismatch"), std::string::npos) << Err;
  EXPECT_EQ(decodeSnapshot(Bytes.substr(0, 10), Err), nullptr);
}

TEST(Snapshot, GatesUnsupportedVersions) {
  std::string Bytes = encodeSnapshot(analyzedSnapshot());
  std::string Payload = Bytes.substr(HeaderSize);
  std::string Err;
  EXPECT_EQ(decodeSnapshot(assemble(Payload, SnapshotVersion + 1), Err),
            nullptr);
  EXPECT_NE(Err.find("version"), std::string::npos) << Err;
  if (SnapshotMinSupported > 0) {
    EXPECT_EQ(decodeSnapshot(assemble(Payload, SnapshotMinSupported - 1),
                             Err),
              nullptr);
    EXPECT_NE(Err.find("version"), std::string::npos) << Err;
  }
}

TEST(Snapshot, SkipsUnknownSectionsForForwardCompat) {
  std::string Bytes = encodeSnapshot(analyzedSnapshot());
  std::string Payload = Bytes.substr(HeaderSize);
  // A future writer appends a section this build knows nothing about.
  Payload.push_back(static_cast<char>(0xEE));
  putVarint(Payload, 5);
  Payload += "hello";
  std::string Err;
  auto D = decodeSnapshot(assemble(Payload), Err);
  ASSERT_TRUE(D) << Err;
  EXPECT_FALSE(D->Vars.empty());
}

TEST(Snapshot, RejectsDuplicateSections) {
  // A repeated section would overwrite the table earlier sections were
  // bound-checked against: SecObjs(N), SecPtsSets referencing up to N-1,
  // then SecObjs(1) would leave sets pointing past the object table.
  std::string Bytes = encodeSnapshot(analyzedSnapshot());
  std::string Payload = Bytes.substr(HeaderSize);
  std::string Body;
  putVarint(Body, 1); // one object
  putVarint(Body, 0); // type 0
  putVarint(Body, 0); // no allocating method
  Payload.push_back(static_cast<char>(6)); // SecObjs, again
  putVarint(Payload, Body.size());
  Payload += Body;
  std::string Err;
  EXPECT_EQ(decodeSnapshot(assemble(Payload), Err), nullptr);
  EXPECT_NE(Err.find("duplicate"), std::string::npos) << Err;
}

TEST(Snapshot, RejectsHugeEntryCounts) {
  // A tiny file claiming 2^40 entries must fail cleanly at decode, not
  // attempt a multi-terabyte resize and crash on bad_alloc.
  std::string Payload;
  std::string Body;
  putVarint(Body, uint64_t(1) << 40);
  Payload.push_back(static_cast<char>(5)); // SecVars
  putVarint(Payload, Body.size());
  Payload += Body;
  std::string Err;
  EXPECT_EQ(decodeSnapshot(assemble(Payload), Err), nullptr);
  EXPECT_NE(Err.find("malformed"), std::string::npos) << Err;
}

TEST(Snapshot, RejectsOutOfRangeIdListElements) {
  // The delta-encoded id lists must be validated against the final
  // tables: points-to sets against objects, callees against methods,
  // ancestors against types.
  {
    SnapshotData D = analyzedSnapshot();
    ASSERT_FALSE(D.PtsSets.empty());
    D.PtsSets.back().push_back(1u << 20);
    std::string Err;
    EXPECT_EQ(decodeSnapshot(encodeSnapshot(D), Err), nullptr);
  }
  {
    SnapshotData D = analyzedSnapshot();
    ASSERT_FALSE(D.Sites.empty());
    D.Sites[0].Callees.push_back(1u << 20);
    std::string Err;
    EXPECT_EQ(decodeSnapshot(encodeSnapshot(D), Err), nullptr);
  }
  {
    SnapshotData D = analyzedSnapshot();
    ASSERT_FALSE(D.Types.empty());
    D.Types[0].Ancestors.push_back(1u << 20);
    std::string Err;
    EXPECT_EQ(decodeSnapshot(encodeSnapshot(D), Err), nullptr);
  }
}

TEST(Snapshot, RejectsDanglingCrossReferences) {
  SnapshotData D = analyzedSnapshot();
  ASSERT_FALSE(D.Vars.empty());
  D.Vars[0].Method = 1u << 20; // beyond the method table
  std::string Err;
  EXPECT_EQ(decodeSnapshot(encodeSnapshot(D), Err), nullptr);
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;
}

TEST(Snapshot, DedupSharesIdenticalSets) {
  // Ten copies of the same variable produce one shared set entry.
  Analyzed A = analyze(R"(
    class Main {
      static method main() {
        a = new Main;
        b = a; c = a; d = a; e = a; f = a; g = a; h = a; i = a; j = a;
      }
    }
  )");
  SnapshotData D = buildSnapshot(*A.R);
  uint32_t SetOfA = 0;
  unsigned Sharers = 0;
  for (uint32_t V = 0; V < D.Vars.size(); ++V) {
    if (D.Vars[V].Name == "a")
      SetOfA = D.Vars[V].PtsSet;
  }
  for (uint32_t V = 0; V < D.Vars.size(); ++V)
    Sharers += D.Vars[V].PtsSet == SetOfA;
  EXPECT_GE(Sharers, 10u);
  // And the dedup table is strictly smaller than the variable count.
  EXPECT_LT(D.PtsSets.size(), D.Vars.size());
}

TEST(Snapshot, WritesV1ForOldConsumersAndStillLoadsIt) {
  // encodeSnapshot(D, 1) emits the legacy plain-delta-list table; this
  // build must keep decoding it (SnapshotMinSupported == 1) with content
  // identical to the v2 path.
  SnapshotData D = analyzedSnapshot();
  std::string V1 = encodeSnapshot(D, 1);
  std::string V2 = encodeSnapshot(D);
  std::string Err;
  auto D1 = decodeSnapshot(V1, Err);
  ASSERT_TRUE(D1) << Err;
  EXPECT_EQ(D1->FormatVersion, 1u);
  auto D2 = decodeSnapshot(V2, Err);
  ASSERT_TRUE(D2) << Err;
  EXPECT_EQ(D2->FormatVersion, SnapshotVersion);

  EXPECT_EQ(D1->PtsSets, D2->PtsSets);
  ASSERT_EQ(D1->Vars.size(), D2->Vars.size());
  for (size_t I = 0; I < D1->Vars.size(); ++I) {
    EXPECT_EQ(D1->Vars[I].Name, D2->Vars[I].Name);
    EXPECT_EQ(D1->Vars[I].PtsSet, D2->Vars[I].PtsSet);
  }
  // Query-facing projection agrees fact for fact.
  for (uint32_t V = 0; V < D1->Vars.size(); ++V)
    EXPECT_EQ(D1->ptsOfVar(V), D2->ptsOfVar(V)) << D1->varKey(V);
}

TEST(Snapshot, FrontCodingShrinksTheDedupTable) {
  // A chain of growing supersets: v2's shared-prefix encoding must beat
  // the v1 plain delta lists on exactly this near-identical-sets shape
  // (the regression gate for the front-coded format).
  std::string Src = R"(
    class Main {
      static method main() {
)";
  for (unsigned I = 0; I < 24; ++I) {
    Src += "        a" + std::to_string(I) + " = new Main;\n";
    Src += "        x" + std::to_string(I) + " = a" + std::to_string(I) +
           ";\n";
    if (I > 0)
      // xI accumulates all allocations up to I: sets share long prefixes.
      Src += "        x" + std::to_string(I) + " = x" +
             std::to_string(I - 1) + ";\n";
  }
  Src += R"(
      }
    }
  )";
  Analyzed A = analyze(Src);
  SnapshotData D = buildSnapshot(*A.R);

  // The table really is lexicographically sorted (the v2 invariant) and
  // keeps the empty set at index 0.
  ASSERT_FALSE(D.PtsSets.empty());
  EXPECT_TRUE(D.PtsSets[0].empty());
  EXPECT_TRUE(std::is_sorted(D.PtsSets.begin(), D.PtsSets.end()));

  std::string V1 = encodeSnapshot(D, 1);
  std::string V2 = encodeSnapshot(D);
  EXPECT_LT(V2.size(), V1.size())
      << "front-coded v2 must be strictly smaller than v1 on overlapping "
         "sets (v1="
      << V1.size() << "B, v2=" << V2.size() << "B)";

  // And the smaller encoding still round-trips bit-exact content.
  std::string Err;
  auto D2 = decodeSnapshot(V2, Err);
  ASSERT_TRUE(D2) << Err;
  EXPECT_EQ(D.PtsSets, D2->PtsSets);
}

TEST(Snapshot, RejectsMalformedFrontCodedTable) {
  // A v2 PtsSets section whose first set claims a shared prefix with a
  // nonexistent predecessor must fail decode, not crash.
  std::string Payload;
  // Section id 7 (SecPtsSets) mirrored from the writer; 1 set, Shared=3.
  Payload.push_back(char(7));
  std::string Body;
  putVarint(Body, 1); // set count
  putVarint(Body, 3); // shared prefix of 3 — but there is no previous set
  putVarint(Body, 0); // empty suffix
  putVarint(Payload, Body.size());
  Payload += Body;
  std::string Err;
  EXPECT_EQ(decodeSnapshot(assemble(Payload), Err), nullptr);
  EXPECT_FALSE(Err.empty());
}
