//===-- tests/serve/DifferentialTest.cpp -------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The snapshot losslessness guarantee, verified exhaustively: for every
// workload profile, analyze -> save -> load -> the QueryEngine must answer
// every query identically to the live PTAResult and the in-memory clients.
// Covered per profile:
//
//   - points-to of EVERY variable (vs. R.ciVarPts via describeObj),
//   - cast-may-fail of EVERY cast site (vs. clients::castMayFail),
//   - devirt of EVERY call site with edges (vs. CallGraph::calleesOf),
//   - callers/callees of EVERY method (vs. the CI call graph),
//   - may-alias over a deterministic sample of variable pairs
//     (vs. clients::mayAlias).
//
// This goes through the full binary encode/decode path, not just
// buildSnapshot, so encoding bugs cannot hide behind the in-memory model.
//
//===----------------------------------------------------------------------===//

#include "clients/Clients.h"
#include "pta/CallGraph.h"
#include "serve/QueryEngine.h"
#include "support/Hashing.h"
#include "workload/BenchmarkPrograms.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

using namespace mahjong;
using namespace mahjong::serve;

namespace {

class SnapshotDifferentialTest
    : public testing::TestWithParam<std::string> {};

/// Decodes through the real byte format and serves from the result.
std::shared_ptr<const SnapshotData> roundTrip(const pta::PTAResult &R) {
  std::string Bytes = encodeSnapshot(buildSnapshot(R));
  std::string Err;
  auto D = decodeSnapshot(Bytes, Err);
  EXPECT_TRUE(D != nullptr) << Err;
  if (!D)
    std::abort();
  return std::shared_ptr<const SnapshotData>(std::move(D));
}

std::string varKeyOf(const ir::Program &P, VarId V) {
  return P.method(P.var(V).Method).Signature + "::" + P.var(V).Name;
}

void checkProfile(const std::string &Name) {
  auto P = workload::buildBenchmarkProgram(Name, /*Scale=*/0.05);
  ir::ClassHierarchy CH(*P);
  pta::AnalysisOptions Opts;
  auto R = pta::runPointerAnalysis(*P, CH, Opts);
  ASSERT_TRUE(R != nullptr);

  QueryEngine E(roundTrip(*R));

  // --- Every variable's points-to set. ---
  for (uint32_t Raw = 0; Raw < P->numVars(); ++Raw) {
    VarId V(Raw);
    std::vector<std::string> Expected;
    for (uint32_t O : R->ciVarPts(V))
      Expected.push_back(P->describeObj(ObjId(O)));
    QueryResult Got = E.run("points-to " + varKeyOf(*P, V));
    ASSERT_TRUE(Got.Ok) << Got.Error;
    ASSERT_EQ(Got.Items, Expected) << Name << " var " << varKeyOf(*P, V);
  }

  // --- Every cast site's verdict. ---
  for (uint32_t C = 0; C < P->numCastSites(); ++C) {
    bool Expected = clients::castMayFail(*R, C);
    QueryResult Got = E.run("cast-may-fail " + std::to_string(C));
    ASSERT_TRUE(Got.Ok) << Got.Error;
    ASSERT_TRUE(Got.HasVerdict);
    ASSERT_EQ(Got.Verdict, Expected) << Name << " cast " << C;
  }

  // --- Every call site's callee set. ---
  for (uint32_t S = 0; S < P->numCallSites(); ++S) {
    std::vector<std::string> Expected;
    for (MethodId M : R->CG.calleesOf(CallSiteId(S)))
      Expected.push_back(P->method(M).Signature);
    std::sort(Expected.begin(), Expected.end());
    QueryResult Got = E.run("devirt " + std::to_string(S));
    ASSERT_TRUE(Got.Ok) << Got.Error;
    ASSERT_EQ(Got.Items, Expected) << Name << " site " << S;
  }

  // --- Every method's callers and callees. ---
  std::map<std::string, std::set<std::string>> Callees, Callers;
  for (CallSiteId S : R->CG.callSitesWithEdges()) {
    const std::string &From =
        P->method(P->callSite(S).Enclosing).Signature;
    for (MethodId M : R->CG.calleesOf(S)) {
      Callees[From].insert(P->method(M).Signature);
      Callers[P->method(M).Signature].insert(From);
    }
  }
  for (uint32_t M = 0; M < P->numMethods(); ++M) {
    const std::string &Sig = P->method(MethodId(M)).Signature;
    auto AsVector = [](const std::set<std::string> &S) {
      return std::vector<std::string>(S.begin(), S.end());
    };
    QueryResult Got = E.run("callees " + Sig);
    ASSERT_TRUE(Got.Ok) << Got.Error;
    ASSERT_EQ(Got.Items, AsVector(Callees[Sig])) << Name << " " << Sig;
    Got = E.run("callers " + Sig);
    ASSERT_TRUE(Got.Ok) << Got.Error;
    ASSERT_EQ(Got.Items, AsVector(Callers[Sig])) << Name << " " << Sig;
  }

  // --- A deterministic sample of alias pairs (all pairs is quadratic). ---
  uint64_t Rng = fnv1a64(Name);
  unsigned Pairs = std::min<unsigned>(400, P->numVars() * 2);
  for (unsigned I = 0; I < Pairs; ++I) {
    Rng = splitmix64(Rng);
    VarId A(static_cast<uint32_t>(Rng % P->numVars()));
    Rng = splitmix64(Rng);
    VarId B(static_cast<uint32_t>(Rng % P->numVars()));
    bool Expected = clients::mayAlias(*R, A, B);
    QueryResult Got = E.run("alias " + varKeyOf(*P, A) + " " +
                            varKeyOf(*P, B));
    ASSERT_TRUE(Got.Ok) << Got.Error;
    ASSERT_EQ(Got.Verdict, Expected)
        << Name << " alias " << varKeyOf(*P, A) << " " << varKeyOf(*P, B);
  }
}

} // namespace

TEST_P(SnapshotDifferentialTest, EngineMatchesLiveResult) {
  checkProfile(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, SnapshotDifferentialTest,
    testing::ValuesIn(workload::benchmarkNames()),
    [](const testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });
