//===-- tests/workload/BenchmarkShapeTest.cpp ---------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Guards the *shape* properties of the benchmark profiles that the
// Table 2 reproduction depends on — at tiny scale, so the whole file
// runs in well under a second.
//
//===----------------------------------------------------------------------===//

#include "workload/BenchmarkPrograms.h"

#include "../TestUtil.h"
#include "clients/Clients.h"
#include "core/Mahjong.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::workload;

TEST(BenchmarkShape, TiersDifferInPollutionAndChains) {
  WorkloadSpec Small = benchmarkSpec("luindex");
  WorkloadSpec Mid = benchmarkSpec("pmd");
  WorkloadSpec Big = benchmarkSpec("eclipse");
  EXPECT_LT(Small.Modules, Mid.Modules);
  EXPECT_LT(Mid.Modules, Big.Modules);
  EXPECT_LT(Mid.PollutedEnginePerMille, Big.PollutedEnginePerMille)
      << "the never-scalable tier keeps engines unmergeable";
  EXPECT_LE(Mid.ElemChainPerMille, Big.ElemChainPerMille)
      << "the never-scalable tier keeps elements unmergeable";
}

TEST(BenchmarkShape, MergeRatioTracksChainKnob) {
  // Longer element chains -> less merging, the Figure 8 lever.
  WorkloadSpec Low, High;
  Low.Modules = High.Modules = 8;
  Low.Seed = High.Seed = 3;
  Low.ElemSitesPerModule = High.ElemSitesPerModule = 30;
  Low.ElemChainPerMille = 100;
  High.ElemChainPerMille = 900;
  auto Ratio = [](const WorkloadSpec &S) {
    auto P = buildSyntheticProgram(S);
    ir::ClassHierarchy CH(*P);
    core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
    return static_cast<double>(MR.numMahjongObjects()) /
           MR.numAllocSiteObjects();
  };
  EXPECT_LT(Ratio(Low), Ratio(High));
}

TEST(BenchmarkShape, PollutionKeepsEngineSitesUnmerged) {
  WorkloadSpec Clean, Dirty;
  Clean.Modules = Dirty.Modules = 8;
  Clean.Seed = Dirty.Seed = 5;
  Clean.PollutedEnginePerMille = 0;
  Dirty.PollutedEnginePerMille = 900;
  auto EngineClasses = [](const WorkloadSpec &S) {
    auto P = buildSyntheticProgram(S);
    ir::ClassHierarchy CH(*P);
    core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
    auto Classes = core::equivalenceClasses(*MR.FPG, MR.Modeling);
    size_t N = 0;
    for (const auto &[Repr, Members] : Classes)
      if (P->type(P->obj(Repr).Type).Name.starts_with("Engine"))
        ++N;
    return N;
  };
  EXPECT_LT(EngineClasses(Clean), EngineClasses(Dirty))
      << "polluted logs must split engine equivalence classes";
}

TEST(BenchmarkShape, BufSitesCollapsePerKind) {
  WorkloadSpec S;
  S.Modules = 8;
  S.BufKinds = 2;
  S.BufSitesPerModule = 6;
  auto P = buildSyntheticProgram(S);
  ir::ClassHierarchy CH(*P);
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  auto Classes = core::equivalenceClasses(*MR.FPG, MR.Modeling);
  for (unsigned K = 0; K < S.BufKinds; ++K) {
    size_t N = 0;
    std::string Name = "Buf" + std::to_string(K);
    for (const auto &[Repr, Members] : Classes)
      if (P->type(P->obj(Repr).Type).Name == Name)
        ++N;
    EXPECT_EQ(N, 1u) << Name
                     << ": homogeneous shared-helper sites form one class";
  }
}

TEST(BenchmarkShape, ClientWorkExistsOnEveryProfile) {
  for (const std::string &Name : workload::benchmarkNames()) {
    auto P = buildBenchmarkProgram(Name, 0.03);
    ir::ClassHierarchy CH(*P);
    pta::AnalysisOptions Opts;
    auto R = pta::runPointerAnalysis(*P, CH, Opts);
    clients::ClientResults CR = clients::evaluateClients(*R);
    EXPECT_GT(CR.TotalCasts, 0u) << Name;
    EXPECT_GT(CR.PolyCallSites + CR.MonoCallSites, 0u) << Name;
    EXPECT_GT(CR.MayFailCasts, 0u)
        << Name << ": genuinely unsafe casts must exist";
  }
}
