//===-- tests/workload/WorkloadTest.cpp --------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/BenchmarkPrograms.h"

#include "../TestUtil.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::workload;

TEST(Workload, GenerationIsDeterministic) {
  WorkloadSpec Spec;
  Spec.Seed = 7;
  Spec.Modules = 3;
  auto P1 = buildSyntheticProgram(Spec);
  auto P2 = buildSyntheticProgram(Spec);
  EXPECT_EQ(printProgram(*P1), printProgram(*P2));
}

TEST(Workload, SeedChangesTheProgram) {
  WorkloadSpec A, B;
  A.Seed = 1;
  B.Seed = 2;
  A.Modules = B.Modules = 3;
  A.MixedPerMille = B.MixedPerMille = 400; // make randomness visible
  EXPECT_NE(printProgram(*buildSyntheticProgram(A)),
            printProgram(*buildSyntheticProgram(B)));
}

TEST(Workload, SizeKnobsScaleObjectCounts) {
  WorkloadSpec Small, Large;
  Small.Modules = 2;
  Large.Modules = 8;
  auto PS = buildSyntheticProgram(Small);
  auto PL = buildSyntheticProgram(Large);
  EXPECT_GT(PL->numObjs(), PS->numObjs() * 2);
  EXPECT_GT(PL->numCallSites(), PS->numCallSites() * 2);
}

TEST(Workload, ZeroOptionalFeaturesStillBuild) {
  WorkloadSpec Spec;
  Spec.Modules = 2;
  Spec.WrapDepth = 0;
  Spec.UtilChains = 0;
  Spec.BufKinds = 0;
  Spec.UseIterators = false;
  Spec.NullSitesPerModule = 0;
  Spec.BoxHelperChain = 0;
  Spec.IterHelperChain = 0;
  auto P = buildSyntheticProgram(Spec);
  EXPECT_TRUE(P->entryMethod().isValid());
}

TEST(Workload, MakerIndirectionAddsClasses) {
  WorkloadSpec Plain, Maker;
  Plain.Modules = Maker.Modules = 2;
  Maker.UseMakerIndirection = true;
  auto PP = buildSyntheticProgram(Plain);
  auto PM = buildSyntheticProgram(Maker);
  EXPECT_GT(PM->numTypes(), PP->numTypes());
  EXPECT_TRUE(PM->typeByName("Maker0").isValid());
}

TEST(Workload, AllBenchmarkNamesHaveSpecs) {
  EXPECT_EQ(benchmarkNames().size(), 12u);
  for (const std::string &Name : benchmarkNames()) {
    WorkloadSpec Spec = benchmarkSpec(Name, 0.05);
    EXPECT_EQ(Spec.Name, Name);
    EXPECT_GE(Spec.Modules, 1u);
  }
}

TEST(Workload, ScaleMultipliesModules) {
  WorkloadSpec S1 = benchmarkSpec("pmd", 1.0);
  WorkloadSpec S2 = benchmarkSpec("pmd", 0.5);
  EXPECT_NEAR(static_cast<double>(S1.Modules) / S2.Modules, 2.0, 0.1);
}

TEST(Workload, ProfilesFollowThePaperSizeOrdering) {
  // luindex is the smallest program, eclipse the largest (paper §6.1.2).
  auto Count = [](const char *Name) {
    return buildBenchmarkProgram(Name, 0.1)->numObjs();
  };
  EXPECT_LT(Count("luindex"), Count("pmd"));
  EXPECT_LT(Count("pmd"), Count("eclipse"));
}

TEST(Workload, GeneratedProgramsAnalyzeCleanly) {
  WorkloadSpec Spec;
  Spec.Modules = 3;
  auto P = buildSyntheticProgram(Spec);
  ClassHierarchy CH(*P);
  pta::AnalysisOptions Opts;
  auto R = pta::runPointerAnalysis(*P, CH, Opts);
  EXPECT_FALSE(R->Stats.TimedOut);
  EXPECT_GT(R->Stats.NumReachableMethods, 10u);
  EXPECT_GT(R->CG.numCIEdges(), 10u);
}
