//===-- tests/pta/HeapAbstractionTest.cpp ------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/HeapAbstraction.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

const char *Src = R"(
  class A { }
  class B { }
  class Main {
    static method main() {
      a1 = new A;  // o1
      a2 = new A;  // o2
      b1 = new B;  // o3
      a3 = new A;  // o4
    }
  }
)";

} // namespace

TEST(HeapAbstraction, AllocSiteIsIdentity) {
  auto P = parseOrDie(Src);
  AllocSiteAbstraction H;
  for (uint32_t I = 0; I < P->numObjs(); ++I) {
    EXPECT_EQ(H.repr(ObjId(I)), ObjId(I));
    EXPECT_FALSE(H.isMerged(ObjId(I)));
  }
  EXPECT_EQ(H.countAbstractObjects(P->numObjs()), P->numObjs());
  EXPECT_EQ(H.name(), "alloc-site");
}

TEST(HeapAbstraction, AllocTypeMergesPerType) {
  auto P = parseOrDie(Src);
  AllocTypeAbstraction H(*P);
  EXPECT_EQ(H.repr(ObjId(1)), ObjId(1)) << "first A site represents";
  EXPECT_EQ(H.repr(ObjId(2)), ObjId(1));
  EXPECT_EQ(H.repr(ObjId(4)), ObjId(1));
  EXPECT_EQ(H.repr(ObjId(3)), ObjId(3)) << "B stays alone";
  EXPECT_TRUE(H.isMerged(ObjId(1))) << "representative of a >1 class";
  EXPECT_TRUE(H.isMerged(ObjId(2)));
  EXPECT_FALSE(H.isMerged(ObjId(3)));
  // o_null + one A + one B = 3 abstract objects.
  EXPECT_EQ(H.countAbstractObjects(P->numObjs()), 3u);
}

TEST(HeapAbstraction, AllocTypeNeverMergesNull) {
  auto P = parseOrDie(Src);
  AllocTypeAbstraction H(*P);
  EXPECT_EQ(H.repr(ir::Program::nullObj()), ir::Program::nullObj());
  EXPECT_FALSE(H.isMerged(ir::Program::nullObj()));
}

TEST(HeapAbstraction, MergedHeapFromExplicitMap) {
  auto P = parseOrDie(Src);
  // Merge o2 into o1, keep the rest.
  std::vector<ObjId> MOM = {ObjId(0), ObjId(1), ObjId(1), ObjId(3), ObjId(4)};
  MergedHeapAbstraction H(MOM, "test-heap");
  EXPECT_EQ(H.repr(ObjId(2)), ObjId(1));
  EXPECT_TRUE(H.isMerged(ObjId(1)));
  EXPECT_TRUE(H.isMerged(ObjId(2)));
  EXPECT_FALSE(H.isMerged(ObjId(3)));
  EXPECT_FALSE(H.isMerged(ObjId(4)));
  EXPECT_EQ(H.name(), "test-heap");
  EXPECT_EQ(H.countAbstractObjects(5), 4u);
}

TEST(HeapAbstraction, AllocTypeAnalysisConflatesSameTypedSites) {
  // Figure 1 intuition at the variable level: with the allocation-type
  // abstraction, two A-sites become aliases.
  const char *Fig = R"(
    class A { field f: A; }
    class B { }
    class C { }
    class Main {
      static method main() {
        x = new A;
        y = new A;
        vb = new B;
        vc = new C;
        x.f = vb;
        y.f = vc;
        r = y.f;
      }
    }
  )";
  auto Base = analyze(Fig);
  EXPECT_EQ(pointeeTypes(*Base.R, "Main.main/0", "r"),
            (std::vector<std::string>{"C"}));

  auto P = parseOrDie(Fig);
  ir::ClassHierarchy CH(*P);
  AllocTypeAbstraction H(*P);
  AnalysisOptions Opts;
  Opts.Heap = &H;
  auto R = runPointerAnalysis(*P, CH, Opts);
  EXPECT_EQ(pointeeTypes(*R, "Main.main/0", "r"),
            (std::vector<std::string>{"B", "C"}))
      << "merging the A-sites aliases x.f and y.f";
}
