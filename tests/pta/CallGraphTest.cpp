//===-- tests/pta/CallGraphTest.cpp ------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/CallGraph.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

TEST(CallGraph, DeduplicatesCSAndCIEdges) {
  CallGraph CG;
  EXPECT_TRUE(CG.addEdge(ContextId(0), CallSiteId(1), ContextId(0),
                         MethodId(7)));
  EXPECT_FALSE(CG.addEdge(ContextId(0), CallSiteId(1), ContextId(0),
                          MethodId(7)))
      << "exact duplicate";
  EXPECT_TRUE(CG.addEdge(ContextId(3), CallSiteId(1), ContextId(4),
                         MethodId(7)))
      << "new cs edge, same ci edge";
  EXPECT_EQ(CG.numCSEdges(), 2u);
  EXPECT_EQ(CG.numCIEdges(), 1u);
  EXPECT_EQ(CG.calleesOf(CallSiteId(1)).size(), 1u);
}

TEST(CallGraph, TracksDistinctTargetsPerSite) {
  CallGraph CG;
  CG.addEdge(ContextId(0), CallSiteId(5), ContextId(0), MethodId(1));
  CG.addEdge(ContextId(0), CallSiteId(5), ContextId(0), MethodId(2));
  CG.addEdge(ContextId(0), CallSiteId(6), ContextId(0), MethodId(1));
  EXPECT_EQ(CG.calleesOf(CallSiteId(5)).size(), 2u);
  EXPECT_EQ(CG.calleesOf(CallSiteId(6)).size(), 1u);
  EXPECT_TRUE(CG.calleesOf(CallSiteId(7)).empty());
  EXPECT_EQ(CG.callSitesWithEdges().size(), 2u);
}

TEST(CallGraph, OnTheFlyDiscoversOnlyRealTargets) {
  auto A = analyze(R"(
    class A { method m() { return this; } }
    class B extends A { method m() { return this; } }
    class C extends A { method m() { return this; } }
    class Main {
      static method main() {
        x = new B;
        y = x;        // y: {B} only — C is allocated but never flows here
        unused = new C;
        y.m();
      }
    }
  )");
  // The virtual site is the only call site; it must resolve to B.m only.
  std::vector<CallSiteId> Sites = A.R->CG.callSitesWithEdges();
  ASSERT_EQ(Sites.size(), 1u);
  const std::vector<MethodId> &Targets = A.R->CG.calleesOf(Sites[0]);
  ASSERT_EQ(Targets.size(), 1u);
  EXPECT_EQ(A.P->method(Targets[0]).Signature, "B.m/0");
}

TEST(CallGraph, PolymorphicSiteFindsAllFlowingTypes) {
  auto A = analyze(R"(
    class A { method m() { return this; } }
    class B extends A { method m() { return this; } }
    class C extends A { method m() { return this; } }
    class Main {
      static method main() {
        x = new B;
        x = new C;
        x.m();
      }
    }
  )");
  std::vector<CallSiteId> Sites = A.R->CG.callSitesWithEdges();
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(A.R->CG.calleesOf(Sites[0]).size(), 2u);
}

TEST(CallGraph, ReachabilityIsTransitive) {
  auto A = analyze(R"(
    class Main {
      static method main() { Main::a(); }
      static method a() { Main::b(); }
      static method b() { }
      static method island() { Main::b(); }
    }
  )");
  auto Reach = [&](const char *Sig) {
    return A.R->ReachableMethod[A.P->methodBySignature(Sig).idx()];
  };
  EXPECT_TRUE(Reach("Main.main/0"));
  EXPECT_TRUE(Reach("Main.a/0"));
  EXPECT_TRUE(Reach("Main.b/0"));
  EXPECT_FALSE(Reach("Main.island/0"));
}
