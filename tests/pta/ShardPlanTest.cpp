//===-- tests/pta/ShardPlanTest.cpp ------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The wave-parallel scheduler's partitioning and imbalance arithmetic
// (pta/ShardPlan.h), pinned in isolation. The semantics pinned here are
// what Stats.ShardImbalancePct / ShardImbalanceMaxPct mean: per-wave
// (max - mean) / mean over per-worker work, aggregated as a work-
// weighted mean plus a max that ignores trivial waves.
//
//===----------------------------------------------------------------------===//

#include "pta/ShardPlan.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace mahjong::pta;

namespace {

uint64_t chunkWeight(const std::vector<uint64_t> &W,
                     const std::vector<size_t> &Bounds, size_t C) {
  uint64_t Total = 0;
  for (size_t I = Bounds[C]; I < Bounds[C + 1]; ++I)
    Total += W[I];
  return Total;
}

} // namespace

TEST(ShardPlan, UniformWeightsSplitLikeEqualCounts) {
  std::vector<uint64_t> W(100, 1);
  auto Bounds = weightedChunkBounds(W, 4);
  ASSERT_EQ(Bounds.size(), 5u);
  EXPECT_EQ(Bounds.front(), 0u);
  EXPECT_EQ(Bounds.back(), 100u);
  for (size_t C = 0; C < 4; ++C)
    EXPECT_EQ(chunkWeight(W, Bounds, C), 25u) << "chunk " << C;
}

TEST(ShardPlan, SkewedWeightsEqualizeCost) {
  // One node carries half of the total work: equal-count chunking would
  // hand chunk 0 a 10x load; weighted chunking isolates the heavy node.
  std::vector<uint64_t> W(100, 1);
  W[0] = 100; // total 199
  auto Bounds = weightedChunkBounds(W, 4);
  // The heavy item alone already exceeds an ideal chunk (~50): the first
  // cut lands right after it.
  EXPECT_EQ(Bounds[1], 1u);
  // Remaining chunks share the 99 unit-weight nodes near-evenly.
  for (size_t C = 1; C < 4; ++C) {
    uint64_t Weight = chunkWeight(W, Bounds, C);
    EXPECT_GE(Weight, 24u) << "chunk " << C;
    EXPECT_LE(Weight, 51u) << "chunk " << C;
  }
}

TEST(ShardPlan, BoundsAreMonotoneAndCoverEvenWhenOneItemDominates) {
  // A mega-item mid-range: chunks before it fill up, chunks after it may
  // be empty — but bounds must stay sorted and cover [0, N).
  std::vector<uint64_t> W = {1, 1, 1000, 1, 1};
  auto Bounds = weightedChunkBounds(W, 4);
  ASSERT_EQ(Bounds.size(), 5u);
  EXPECT_EQ(Bounds.front(), 0u);
  EXPECT_EQ(Bounds.back(), 5u);
  for (size_t C = 0; C < 4; ++C)
    EXPECT_LE(Bounds[C], Bounds[C + 1]);
  uint64_t Covered = 0;
  for (size_t C = 0; C < 4; ++C)
    Covered += chunkWeight(W, Bounds, C);
  EXPECT_EQ(Covered, std::accumulate(W.begin(), W.end(), uint64_t(0)));
}

TEST(ShardPlan, MoreChunksThanItemsDegradesToSingletons) {
  std::vector<uint64_t> W = {5, 5};
  auto Bounds = weightedChunkBounds(W, 8);
  ASSERT_EQ(Bounds.size(), 9u);
  EXPECT_EQ(Bounds.front(), 0u);
  EXPECT_EQ(Bounds.back(), 2u);
  for (size_t C = 0; C < 8; ++C)
    EXPECT_LE(Bounds[C + 1] - Bounds[C], 1u);
}

TEST(ShardPlan, SweepWeightCombinesDegreeAndPendingWithFloor) {
  EXPECT_EQ(sweepWeight(0, 0), 1u); // stale entries still cost one visit
  EXPECT_EQ(sweepWeight(3, 7), 11u);
}

TEST(ShardPlan, ImbalancePctMatchesHandComputedValues) {
  EXPECT_DOUBLE_EQ(imbalancePct({10, 10, 10, 10}), 0.0);
  // mean 10, max 40: (40 - 10) / 10 = 300%.
  EXPECT_DOUBLE_EQ(imbalancePct({40, 0, 0, 0}), 300.0);
  // mean 15, max 20: 33.33..%.
  EXPECT_NEAR(imbalancePct({10, 20}), 33.33, 0.01);
  // Degenerate inputs report 0, not NaN.
  EXPECT_DOUBLE_EQ(imbalancePct({}), 0.0);
  EXPECT_DOUBLE_EQ(imbalancePct({42}), 0.0);
  EXPECT_DOUBLE_EQ(imbalancePct({0, 0, 0}), 0.0);
}

TEST(ShardPlan, AccumulatorWeightsWavesByWork) {
  ImbalanceAccumulator Acc;
  // A perfectly balanced big wave and an equally big 300%-skewed wave:
  // the mean weights them by their (equal) total work.
  Acc.addWave({500, 500, 500, 500}); // 2000 units, 0%
  Acc.addWave({2000, 0, 0, 0});      // 2000 units, 300%
  EXPECT_DOUBLE_EQ(Acc.meanPct(), 150.0);
  EXPECT_DOUBLE_EQ(Acc.MaxPct, 300.0);
}

TEST(ShardPlan, TinyWavesCannotSetTheMax) {
  ImbalanceAccumulator Acc;
  // A two-node wave on 8 workers is 700% "imbalanced" — and meaningless.
  // It stays out of the max, and its 2 units of work cannot move a mean
  // dominated by real waves.
  Acc.addWave({1, 1, 0, 0, 0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(Acc.MaxPct, 0.0);
  Acc.addWave({300, 300, 300, 300, 300, 300, 300, 300}); // 2400 units, 0%
  EXPECT_LT(Acc.meanPct(), 1.0);
  EXPECT_DOUBLE_EQ(Acc.MaxPct, 0.0);
  // A big skewed wave does set it.
  Acc.addWave({600, 200, 200, 200, 200, 200, 200, 600}); // 2400 units
  EXPECT_GT(Acc.MaxPct, 0.0);
}

TEST(ShardPlan, EmptyWavesAreIgnored) {
  ImbalanceAccumulator Acc;
  Acc.addWave({0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(Acc.meanPct(), 0.0);
  EXPECT_DOUBLE_EQ(Acc.MaxPct, 0.0);
  EXPECT_EQ(Acc.TotalWork, 0u);
}
