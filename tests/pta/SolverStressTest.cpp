//===-- tests/pta/SolverStressTest.cpp ---------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regression anchors for solver behaviors that once bit us during
// calibration, plus stress shapes (deep recursion, wide fan-out, the
// time budget) that must stay cheap and correct.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "workload/SyntheticBuilder.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

TEST(SolverStress, MakerIndirectionCollapsesBoxesUnderTwoObj) {
  // Regression: with a second factory level, 2obj's k-1 heap contexts
  // keep only [maker], so all boxes of a family collapse into ONE
  // cs-object — while 3obj keeps them apart per engine. This exact
  // truncation semantics silently destroyed the Table 2 cost shapes
  // once; pin it.
  workload::WorkloadSpec Spec;
  Spec.Modules = 6;
  Spec.EngineSitesPerModule = 4;
  Spec.UseMakerIndirection = true;
  auto P = workload::buildSyntheticProgram(Spec);
  ir::ClassHierarchy CH(*P);

  AnalysisOptions O2;
  O2.Kind = ContextKind::Object;
  O2.K = 2;
  auto R2 = runPointerAnalysis(*P, CH, O2);
  AnalysisOptions O3 = O2;
  O3.K = 3;
  auto R3 = runPointerAnalysis(*P, CH, O3);

  MethodId Put = P->methodBySignature("Box0.put/1");
  ASSERT_TRUE(Put.isValid());
  size_t Ctx2 = R2->MethodCtxs[Put.idx()].size();
  size_t Ctx3 = R3->MethodCtxs[Put.idx()].size();
  EXPECT_LT(Ctx2, Ctx3) << "2obj must see far fewer put contexts than "
                           "3obj under maker indirection";
  EXPECT_LE(Ctx2, 4u);
}

TEST(SolverStress, WithoutMakerTwoObjKeepsPerEngineContexts) {
  workload::WorkloadSpec Spec;
  Spec.Modules = 6;
  Spec.EngineSitesPerModule = 4;
  Spec.UseMakerIndirection = false;
  auto P = workload::buildSyntheticProgram(Spec);
  ir::ClassHierarchy CH(*P);
  AnalysisOptions O2;
  O2.Kind = ContextKind::Object;
  O2.K = 2;
  auto R2 = runPointerAnalysis(*P, CH, O2);
  MethodId Put = P->methodBySignature("Box0.put/1");
  ASSERT_TRUE(Put.isValid());
  EXPECT_GT(R2->MethodCtxs[Put.idx()].size(), 4u)
      << "direct engine factories keep per-engine box contexts";
}

TEST(SolverStress, DeepStaticRecursionStaysBoundedUnderKCFA) {
  auto A = analyze(R"(
    class T { }
    class Main {
      static method main() { x = new T; r = Main::f(x); }
      static method f(p) { q = Main::g(p); return p; }
      static method g(p) { q = Main::f(p); return q; }
    }
  )",
                   ContextKind::CallSite, 2);
  EXPECT_FALSE(A.R->Stats.TimedOut);
  EXPECT_LT(A.R->Stats.NumContexts, 40u)
      << "mutual recursion cycles through finitely many 2cs contexts";
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "r"),
            (std::vector<std::string>{"T"}));
}

TEST(SolverStress, WideReceiverFanOutDispatchesEverything) {
  // One call site, many receiver objects, several target methods.
  std::string Src = R"(
    class A { method m() { return this; } }
    class B extends A { method m() { return this; } }
    class Main {
      static method main() {
)";
  for (int I = 0; I < 40; ++I)
    Src += "        x = new " + std::string(I % 2 ? "A" : "B") + ";\n";
  Src += R"(
        x.m();
      }
    }
  )";
  auto A = analyze(Src);
  std::vector<CallSiteId> Sites = A.R->CG.callSitesWithEdges();
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(A.R->CG.calleesOf(Sites[0]).size(), 2u);
  EXPECT_EQ(A.R->CG.numCSEdges(), 2u);
}

TEST(SolverStress, TimeBudgetProducesPartialButConsistentResult) {
  workload::WorkloadSpec Spec;
  Spec.Modules = 30;
  auto P = workload::buildSyntheticProgram(Spec);
  ir::ClassHierarchy CH(*P);
  AnalysisOptions Opts;
  Opts.Kind = ContextKind::Object;
  Opts.K = 3;
  Opts.TimeBudgetSeconds = 0.02; // far too little
  auto R = runPointerAnalysis(*P, CH, Opts);
  if (!R->Stats.TimedOut)
    GTEST_SKIP() << "machine too fast for this budget";
  // The partial result must still be internally consistent.
  EXPECT_GT(R->Stats.NumReachableMethods, 0u);
  EXPECT_EQ(R->Pts.size(), R->Nodes.size());
}

TEST(SolverStress, SelfAssignmentAndSelfStoreAreHarmless) {
  auto A = analyze(R"(
    class N { field next: N; }
    class Main {
      static method main() {
        a = new N;
        a = a;
        a.next = a;
        b = a.next;
      }
    }
  )");
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "b"),
            (std::vector<std::string>{"o1<N>"}));
}

TEST(SolverStress, ArgArityMismatchIsTolerated) {
  // Dispatch is by name/arity, so a mismatch cannot happen through the
  // frontend; the solver still guards the zip of args/params. Build a
  // direct call with matching arity but unused params.
  auto A = analyze(R"(
    class T { }
    class Main {
      static method main() { x = new T; Main::f(x); }
      static method f(p) { }
    }
  )");
  EXPECT_EQ(pointeeObjs(*A.R, "Main.f/1", "p"),
            (std::vector<std::string>{"o1<T>"}));
}
