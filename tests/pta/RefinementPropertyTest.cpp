//===-- tests/pta/RefinementPropertyTest.cpp ----------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential properties across analyses on whole workloads:
//
//  - Refinement: a context-sensitive analysis, projected context-
//    insensitively, never discovers points-to facts or call edges the
//    ci analysis lacks (every flavour computes a subset of ci's facts).
//  - Hybrid dominance: k-objH is at least as precise as k-obj on the
//    client metrics (it only splits static-call contexts further).
//  - Determinism: re-running any analysis reproduces identical results.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "clients/Clients.h"
#include "workload/SyntheticBuilder.h"

#include <gtest/gtest.h>

#include <set>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

std::set<std::pair<uint32_t, uint32_t>> ciEdges(const PTAResult &R) {
  std::set<std::pair<uint32_t, uint32_t>> Edges;
  for (CallSiteId Site : R.CG.callSitesWithEdges())
    for (MethodId Callee : R.CG.calleesOf(Site))
      Edges.insert({Site.idx(), Callee.idx()});
  return Edges;
}

std::unique_ptr<ir::Program> makeWorkload(unsigned Seed) {
  workload::WorkloadSpec Spec;
  Spec.Seed = Seed;
  Spec.Modules = 3 + Seed % 3;
  Spec.MixedPerMille = 120;
  Spec.ElemChainPerMille = 400;
  return workload::buildSyntheticProgram(Spec);
}

} // namespace

class RefinementTest
    : public ::testing::TestWithParam<std::tuple<ContextKind, unsigned>> {};

TEST_P(RefinementTest, ContextSensitiveFactsRefineCi) {
  auto [Kind, K] = GetParam();
  auto P = makeWorkload(11);
  ir::ClassHierarchy CH(*P);

  AnalysisOptions CiOpts;
  auto Ci = runPointerAnalysis(*P, CH, CiOpts);
  AnalysisOptions CsOpts;
  CsOpts.Kind = Kind;
  CsOpts.K = K;
  auto Cs = runPointerAnalysis(*P, CH, CsOpts);

  // Call graph refinement.
  auto CiE = ciEdges(*Ci), CsE = ciEdges(*Cs);
  for (const auto &E : CsE)
    ASSERT_TRUE(CiE.count(E)) << "cs edge missing from ci under "
                              << analysisName(Kind, K);

  // Per-variable points-to refinement (CI-projected), for reachable
  // methods of the cs analysis.
  for (uint32_t VI = 0; VI < P->numVars(); ++VI) {
    VarId V = VarId(VI);
    PointsToSet CsPts = Cs->ciVarPts(V);
    if (CsPts.empty())
      continue;
    PointsToSet CiPts = Ci->ciVarPts(V);
    for (uint32_t Obj : CsPts)
      ASSERT_TRUE(CiPts.contains(Obj))
          << "var " << P->var(V).Name << " of "
          << P->method(P->var(V).Method).Signature << " points to o"
          << Obj << " under " << analysisName(Kind, K) << " but not ci";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Analyses, RefinementTest,
    ::testing::Values(std::tuple{ContextKind::CallSite, 1u},
                      std::tuple{ContextKind::CallSite, 2u},
                      std::tuple{ContextKind::Object, 1u},
                      std::tuple{ContextKind::Object, 2u},
                      std::tuple{ContextKind::Object, 3u},
                      std::tuple{ContextKind::Type, 2u},
                      std::tuple{ContextKind::Hybrid, 2u}));

TEST(HybridSelector, AtLeastAsPreciseAsPlainObjSens) {
  auto P = makeWorkload(23);
  ir::ClassHierarchy CH(*P);
  AnalysisOptions Obj;
  Obj.Kind = ContextKind::Object;
  Obj.K = 2;
  auto RObj = runPointerAnalysis(*P, CH, Obj);
  AnalysisOptions Hyb;
  Hyb.Kind = ContextKind::Hybrid;
  Hyb.K = 2;
  auto RHyb = runPointerAnalysis(*P, CH, Hyb);
  clients::ClientResults CObj = clients::evaluateClients(*RObj);
  clients::ClientResults CHyb = clients::evaluateClients(*RHyb);
  EXPECT_LE(CHyb.CallGraphEdges, CObj.CallGraphEdges);
  EXPECT_LE(CHyb.PolyCallSites, CObj.PolyCallSites);
  EXPECT_LE(CHyb.MayFailCasts, CObj.MayFailCasts);
}

TEST(HybridSelector, SplitsStaticHelperContexts) {
  // The motivating case: a static helper between two receivers.
  auto A = analyze(R"(
    class T { }
    class U { }
    class Box {
      field val: Object;
      method set(v) { this.val = v; return this; }
      method get() { r = this.val; return r; }
    }
    class H { static method fill(b, v) { b.set(v); } }
    class Main {
      static method main() {
        bt = new Box;
        bu = new Box;
        t = new T;
        u = new U;
        H::fill(bt, t);
        H::fill(bu, u);
        rt = bt.get();
        ru = bu.get();
      }
    }
  )",
                   ContextKind::Hybrid, 2);
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T"}))
      << "2objH distinguishes the two fill() call sites where 2obj "
         "conflates them (see ContextSensitivityTest)";
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "ru"),
            (std::vector<std::string>{"U"}));
}

TEST(Determinism, RepeatedRunsAreIdentical) {
  auto P = makeWorkload(31);
  ir::ClassHierarchy CH(*P);
  for (ContextKind Kind : {ContextKind::Insensitive, ContextKind::Object}) {
    AnalysisOptions Opts;
    Opts.Kind = Kind;
    Opts.K = Kind == ContextKind::Object ? 2 : 0;
    auto R1 = runPointerAnalysis(*P, CH, Opts);
    auto R2 = runPointerAnalysis(*P, CH, Opts);
    EXPECT_EQ(R1->Stats.NumCSVars, R2->Stats.NumCSVars);
    EXPECT_EQ(R1->Stats.VarPtsEntries, R2->Stats.VarPtsEntries);
    EXPECT_EQ(R1->CG.numCIEdges(), R2->CG.numCIEdges());
    EXPECT_EQ(R1->CG.numCSEdges(), R2->CG.numCSEdges());
    EXPECT_EQ(ciEdges(*R1), ciEdges(*R2));
  }
}
