//===-- tests/pta/EngineSelectTest.cpp ---------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Adaptive engine selection (SolverEngine::Auto). The chooser is a pure
// function of (numVars, numObjs, hardware threads): small constraint
// systems go to the naive reference (it beats wave below the cutoff on
// every checked-in profile), large ones to wave, and very large ones to
// the parallel engine when hardware is actually available. Running under
// Auto must be observationally identical to running the chosen engine
// explicitly — same digest, EngineName reporting the resolved choice.
//
//===----------------------------------------------------------------------===//

#include "pta/PointerAnalysis.h"
#include "pta/ResultDigest.h"

#include "workload/BenchmarkPrograms.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;

TEST(EngineSelect, SmallSystemsPickNaive) {
  // A toy program: a few hundred vars, a handful of objects.
  EXPECT_EQ(chooseSolverEngine(/*NumVars=*/300, /*NumObjs=*/40,
                               /*HardwareThreads=*/8),
            SolverEngine::Naive);
  EXPECT_EQ(chooseSolverEngine(0, 0, 1), SolverEngine::Naive);
}

TEST(EngineSelect, LargeSystemsPickWave) {
  // The eclipse-at-full-scale class on a single core: wave (collapsing
  // pays), never parallel (no workers to use).
  EXPECT_EQ(chooseSolverEngine(/*NumVars=*/500'000, /*NumObjs=*/100'000,
                               /*HardwareThreads=*/1),
            SolverEngine::Wave);
  // Mid-size on many cores: still wave — parallel overhead only
  // amortizes on very large systems.
  EXPECT_EQ(chooseSolverEngine(/*NumVars=*/200'000, /*NumObjs=*/20'000,
                               /*HardwareThreads=*/16),
            SolverEngine::Wave);
}

TEST(EngineSelect, HugeSystemsWithRealConcurrencyPickParallel) {
  EXPECT_EQ(chooseSolverEngine(/*NumVars=*/2'000'000, /*NumObjs=*/400'000,
                               /*HardwareThreads=*/8),
            SolverEngine::ParallelWave);
  // The same system on a 1-core box must not: sharding with one worker
  // is pure overhead.
  EXPECT_EQ(chooseSolverEngine(/*NumVars=*/2'000'000, /*NumObjs=*/400'000,
                               /*HardwareThreads=*/1),
            SolverEngine::Wave);
}

TEST(EngineSelect, ChoiceIsMonotoneInWork) {
  // Growing the system never moves the choice backwards toward naive:
  // scan a work ramp and require naive* -> wave* (parallel only at the
  // top, and only with threads).
  bool SeenWave = false;
  for (uint64_t Vars = 1'000; Vars <= 3'000'000; Vars *= 2) {
    SolverEngine E = chooseSolverEngine(Vars, Vars / 8, /*Threads=*/1);
    if (E == SolverEngine::Wave)
      SeenWave = true;
    if (SeenWave)
      EXPECT_NE(E, SolverEngine::Naive) << "regressed at " << Vars;
    EXPECT_NE(E, SolverEngine::ParallelWave) << "parallel on 1 thread";
  }
  EXPECT_TRUE(SeenWave);
}

TEST(EngineSelect, AutoRunMatchesExplicitChoiceBitForBit) {
  for (const char *Name : {"antlr", "eclipse"}) {
    SCOPED_TRACE(Name);
    auto P = workload::buildBenchmarkProgram(Name, 0.05);
    ir::ClassHierarchy CH(*P);

    AnalysisOptions AutoOpts;
    AutoOpts.Engine = SolverEngine::Auto;
    AutoOpts.SolverThreads = 2;
    auto AutoR = runPointerAnalysis(*P, CH, AutoOpts);

    // EngineName reports the *resolved* engine, never "auto".
    EXPECT_TRUE(AutoR->EngineName == "naive" ||
                AutoR->EngineName == "wave" ||
                AutoR->EngineName == "parallel")
        << AutoR->EngineName;
    // The choice is reproducible (pure function of program + threads)...
    EXPECT_EQ(solverEngineName(chooseSolverEngine(*P, 2)),
              AutoR->EngineName);

    // ...and running the named engine explicitly gives the identical
    // result.
    AnalysisOptions ExplicitOpts;
    ExplicitOpts.Engine = AutoR->EngineName == "naive"
                              ? SolverEngine::Naive
                          : AutoR->EngineName == "parallel"
                              ? SolverEngine::ParallelWave
                              : SolverEngine::Wave;
    ExplicitOpts.SolverThreads = 2;
    auto ExplicitR = runPointerAnalysis(*P, CH, ExplicitOpts);
    EXPECT_EQ(ExplicitR->EngineName, AutoR->EngineName);
    EXPECT_EQ(canonicalResultDigest(*ExplicitR),
              canonicalResultDigest(*AutoR));
  }
}

TEST(EngineSelect, ExplicitEnginesReportTheirOwnName) {
  auto P = workload::buildBenchmarkProgram("antlr", 0.04);
  ir::ClassHierarchy CH(*P);
  const std::pair<SolverEngine, const char *> Cases[] = {
      {SolverEngine::Wave, "wave"},
      {SolverEngine::Naive, "naive"},
      {SolverEngine::ParallelWave, "parallel"},
  };
  for (auto [Engine, Expected] : Cases) {
    AnalysisOptions Opts;
    Opts.Engine = Engine;
    Opts.SolverThreads = 2;
    auto R = runPointerAnalysis(*P, CH, Opts);
    EXPECT_EQ(R->EngineName, Expected);
  }
}
