//===-- tests/pta/ParallelSolverEquivalenceTest.cpp --------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential equivalence of the wave-parallel engine: ParallelSolver
// must produce the bit-identical solution of the serial wave engine — at
// every thread count — across all 12 workload profiles and all five
// context policies plus the context-insensitive pre-analysis. Equality is
// asserted on the canonical form (pta/ResultDigest.h) and, between thread
// counts of the parallel engine itself, the digests must also agree with
// each other (determinism, not just correctness).
//
// The merge-conservation stress checks the engine's own accounting: every
// delta record buffered by a Phase-A worker must be folded by exactly one
// Phase-B merge (Stats.DeltasBuffered == Stats.DeltasMerged), on a
// crafted deep-copy-cycle program whose waves are dominated by cycle
// collapsing — the hardest case for keeping buffered work and merged work
// in sync, because representatives change between waves.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "pta/ResultDigest.h"
#include "workload/BenchmarkPrograms.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

// Powers of two are not enough: the weight-aware partitioner and the
// stealing victim order must also hold at odd widths, where sub-chunk
// ranges split unevenly across workers.
const unsigned ThreadCounts[] = {1, 2, 3, 5, 7, 8};

std::unique_ptr<PTAResult> runWith(const ir::Program &P,
                                   const ir::ClassHierarchy &CH,
                                   ContextKind Kind, unsigned K,
                                   SolverEngine Engine, unsigned Threads) {
  AnalysisOptions Opts;
  Opts.Kind = Kind;
  Opts.K = K;
  Opts.Engine = Engine;
  Opts.SolverThreads = Threads;
  return runPointerAnalysis(P, CH, Opts);
}

void expectParallelMatchesWave(const ir::Program &P,
                               const ir::ClassHierarchy &CH,
                               ContextKind Kind, unsigned K,
                               const std::string &Label) {
  auto Wave = runWith(P, CH, Kind, K, SolverEngine::Wave, 0);
  const uint64_t WaveDigest = canonicalResultDigest(*Wave);
  for (unsigned Threads : ThreadCounts) {
    auto Par =
        runWith(P, CH, Kind, K, SolverEngine::ParallelWave, Threads);
    std::string FirstDiff;
    EXPECT_TRUE(equivalentResults(*Wave, *Par, &FirstDiff))
        << Label << " @" << Threads << " threads: first differing fact:\n"
        << FirstDiff;
    EXPECT_EQ(WaveDigest, canonicalResultDigest(*Par))
        << Label << " @" << Threads << " threads";
    // The merge phase must account for every buffered delta record
    // (conservation: nothing dropped, nothing folded twice — a complete
    // run never drops).
    EXPECT_EQ(Par->Stats.DeltasBuffered, Par->Stats.DeltasMerged)
        << Label << " @" << Threads << " threads";
    EXPECT_EQ(Par->Stats.DeltasDropped, 0u)
        << Label << " @" << Threads << " threads";
    EXPECT_GT(Par->Stats.ParallelWaves, 0u) << Label;
    // Aggregates the CLI prints must agree with the serial engine too.
    EXPECT_EQ(Wave->Stats.VarPtsEntries, Par->Stats.VarPtsEntries) << Label;
    EXPECT_EQ(Wave->CG.numCIEdges(), Par->CG.numCIEdges()) << Label;
    EXPECT_EQ(Wave->CG.numCSEdges(), Par->CG.numCSEdges()) << Label;
  }
}

/// The five context policies of the paper's main analyses.
const std::pair<ContextKind, unsigned> Policies[] = {
    {ContextKind::CallSite, 2}, {ContextKind::Object, 2},
    {ContextKind::Object, 3},   {ContextKind::Type, 2},
    {ContextKind::Type, 3},
};

} // namespace

class ParallelSolverEquivalenceProfile
    : public ::testing::TestWithParam<std::string> {};

// All five context policies (plus ci) on each of the 12 profiles, each at
// thread counts 1, 2, 3, 5, 7 and 8 — on any machine the digests must be
// bit-identical to the serial wave engine and to each other.
TEST_P(ParallelSolverEquivalenceProfile, MatchesSerialWaveAtEveryThreadCount) {
  auto P = workload::buildBenchmarkProgram(GetParam(), 0.04);
  ir::ClassHierarchy CH(*P);
  for (auto [Kind, K] : Policies)
    expectParallelMatchesWave(*P, CH, Kind, K,
                              GetParam() + "/" + analysisName(Kind, K));
  expectParallelMatchesWave(*P, CH, ContextKind::Insensitive, 0,
                            GetParam() + "/ci");
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ParallelSolverEquivalenceProfile,
    ::testing::ValuesIn(workload::benchmarkNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

namespace {

/// A program dominated by one deep copy cycle (v0 -> v1 -> ... -> v0) fed
/// by several allocations, with loads/stores on cycle members. Wave-time
/// cycle collapsing rewrites representatives between waves, so Phase-A
/// target resolution and Phase-B merging must stay consistent across the
/// collapse — the stress for delta conservation.
std::string deepCopyCycleSource(unsigned N) {
  std::string Src = R"(
    class N { field next: N; }
    class Main {
      static method main() {
        v0 = new N;
)";
  for (unsigned I = 1; I < N; ++I)
    Src += "        v" + std::to_string(I) + " = v" + std::to_string(I - 1) +
           ";\n";
  Src += "        v0 = v" + std::to_string(N - 1) + ";\n";
  Src += "        v" + std::to_string(N / 2) + " = new N;\n";
  Src += "        v1.next = v" + std::to_string(N - 2) + ";\n";
  Src += "        w = v" + std::to_string(N / 3) + ".next;\n";
  Src += R"(
      }
    }
  )";
  return Src;
}

} // namespace

TEST(ParallelSolverEquivalence, DeepCopyCycleMergeLosesNoDelta) {
  auto P = parseOrDie(deepCopyCycleSource(64));
  ir::ClassHierarchy CH(*P);

  auto Wave =
      runWith(*P, CH, ContextKind::Insensitive, 0, SolverEngine::Wave, 0);
  for (unsigned Threads : ThreadCounts) {
    auto Par = runWith(*P, CH, ContextKind::Insensitive, 0,
                       SolverEngine::ParallelWave, Threads);
    std::string FirstDiff;
    EXPECT_TRUE(equivalentResults(*Wave, *Par, &FirstDiff))
        << Threads << " threads: first differing fact:\n"
        << FirstDiff;
    // The cycle collapsed online in the parallel engine too...
    EXPECT_GE(Par->Stats.SCCsCollapsed, 1u);
    EXPECT_GE(Par->Stats.NodesCollapsed, 32u);
    // ...and the shard merge conserved every buffered delta while real
    // propagation work flowed through the buffers.
    EXPECT_GT(Par->Stats.DeltasBuffered, 0u);
    EXPECT_EQ(Par->Stats.DeltasBuffered, Par->Stats.DeltasMerged);
    // Every cycle member converges to the identical solution.
    EXPECT_EQ(pointeeObjs(*Par, "Main.main/0", "v0"),
              pointeeObjs(*Wave, "Main.main/0", "v0"));
    EXPECT_EQ(pointeeObjs(*Par, "Main.main/0", "v63"),
              pointeeObjs(*Wave, "Main.main/0", "v63"));
    EXPECT_EQ(pointeeObjs(*Par, "Main.main/0", "w"),
              pointeeObjs(*Wave, "Main.main/0", "w"));
  }
}

TEST(ParallelSolverEquivalence, WorkStealingIsDeterministicAcrossRuns) {
  // Work stealing moves sub-chunks between threads at runtime, so the
  // schedule differs on every run — but results are keyed by sub-chunk
  // index, never by thread, so repeated runs at the same width must be
  // byte-identical. The deep-copy-cycle profile maximizes scheduling
  // freedom: waves are long chains of near-empty nodes (stolen chunks
  // finish instantly) punctuated by collapse-heavy ones.
  auto P = parseOrDie(deepCopyCycleSource(96));
  ir::ClassHierarchy CH(*P);
  for (unsigned Threads : {3u, 7u}) {
    SCOPED_TRACE(Threads);
    uint64_t FirstDigest = 0;
    uint64_t FirstBuffered = 0;
    for (int Run = 0; Run < 4; ++Run) {
      auto R = runWith(*P, CH, ContextKind::Insensitive, 0,
                       SolverEngine::ParallelWave, Threads);
      uint64_t Digest = canonicalResultDigest(*R);
      if (Run == 0) {
        FirstDigest = Digest;
        FirstBuffered = R->Stats.DeltasBuffered;
      } else {
        EXPECT_EQ(Digest, FirstDigest) << "run " << Run;
        // The deterministic accounting too, not just the solution.
        EXPECT_EQ(R->Stats.DeltasBuffered, FirstBuffered) << "run " << Run;
      }
      EXPECT_EQ(R->Stats.DeltasBuffered, R->Stats.DeltasMerged);
    }
  }
}

TEST(ParallelSolverEquivalence, CastFilteredEdgesStayPreciseAcrossShards) {
  // Filtered edges cross shard boundaries: the pre-materialized filter
  // bitmaps applied during the merge must reproduce the serial filtering.
  auto P = parseOrDie(R"(
    class T { }
    class U { }
    class Main {
      static method main() {
        a = new T;
        b = a;
        c = b;
        a = c;
        u = new U;
        a = u;
        d = (T) c;
      }
    }
  )");
  ir::ClassHierarchy CH(*P);
  auto Wave =
      runWith(*P, CH, ContextKind::Insensitive, 0, SolverEngine::Wave, 0);
  auto Par = runWith(*P, CH, ContextKind::Insensitive, 0,
                     SolverEngine::ParallelWave, 8);
  std::string FirstDiff;
  EXPECT_TRUE(equivalentResults(*Wave, *Par, &FirstDiff))
      << "first differing fact:\n"
      << FirstDiff;
  EXPECT_EQ(pointeeTypes(*Par, "Main.main/0", "d"),
            (std::vector<std::string>{"T"}))
      << "the (T) cast must keep filtering when applied at merge time";
}

TEST(ParallelSolverEquivalence, MahjongHeapPreAnalysisAgrees) {
  // The engine also drives the pre-analysis MAHJONG's heap modeling
  // consumes; pin equivalence under a type-based abstraction as well.
  auto P = workload::buildBenchmarkProgram("luindex", 0.05);
  ir::ClassHierarchy CH(*P);
  AllocTypeAbstraction TypeHeap(*P);
  AnalysisOptions WaveOpts, ParOpts;
  WaveOpts.Heap = ParOpts.Heap = &TypeHeap;
  WaveOpts.Engine = SolverEngine::Wave;
  ParOpts.Engine = SolverEngine::ParallelWave;
  ParOpts.SolverThreads = 2;
  auto RW = runPointerAnalysis(*P, CH, WaveOpts);
  auto RP = runPointerAnalysis(*P, CH, ParOpts);
  EXPECT_FALSE(RP->Stats.TimedOut);
  std::string FirstDiff;
  EXPECT_TRUE(equivalentResults(*RW, *RP, &FirstDiff))
      << "first differing fact:\n"
      << FirstDiff;
}
