//===-- tests/pta/ContextSelectorUnitTest.cpp ---------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit tests pinning the context algebra of every selector: what gets
// pushed for callees, what heap contexts keep, how static calls behave.
// Regression anchor for the heap-context truncation semantics (a k-obj
// implementation that truncates the wrong end silently collapses or
// explodes context spaces).
//
//===----------------------------------------------------------------------===//

#include "pta/ContextSelector.h"

#include "../TestUtil.h"
#include "core/Mahjong.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

struct SelSetup {
  std::unique_ptr<ir::Program> P;
  ContextTable Ctxs;
  std::unique_ptr<ContextSelector> Sel;

  SelSetup(ContextKind Kind, unsigned K) {
    P = parseOrDie(R"(
      class A { method m() { return this; } }
      class Main { static method main() { a = new A; a.m(); } }
    )");
    Sel = makeContextSelector(Kind, K, Ctxs, *P);
  }
};

} // namespace

TEST(ContextSelectorUnit, InsensitiveAlwaysEmpty) {
  SelSetup S(ContextKind::Insensitive, 0);
  ContextId C = S.Sel->selectCallee(ContextId(0), CallSiteId(3),
                                    ContextId(0), ObjId(1));
  EXPECT_EQ(C, S.Ctxs.empty());
  EXPECT_EQ(S.Sel->selectHeap(ContextId(0), ObjId(1)), S.Ctxs.empty());
  EXPECT_EQ(S.Sel->name(), "ci");
}

TEST(ContextSelectorUnit, CallSitePushesSites) {
  SelSetup S(ContextKind::CallSite, 2);
  ContextId C1 = S.Sel->selectCallee(S.Ctxs.empty(), CallSiteId(7),
                                     S.Ctxs.empty(), ObjId(1));
  EXPECT_EQ(S.Ctxs.elems(C1), (std::vector<CtxElem>{7}));
  ContextId C2 = S.Sel->selectStaticCallee(C1, CallSiteId(9));
  EXPECT_EQ(S.Ctxs.elems(C2), (std::vector<CtxElem>{7, 9}));
  ContextId C3 = S.Sel->selectStaticCallee(C2, CallSiteId(11));
  EXPECT_EQ(S.Ctxs.elems(C3), (std::vector<CtxElem>{9, 11}))
      << "k=2 keeps the two most recent call sites";
  // Heap contexts keep k-1 = 1 site.
  EXPECT_EQ(S.Ctxs.elems(S.Sel->selectHeap(C3, ObjId(1))),
            (std::vector<CtxElem>{11}));
}

TEST(ContextSelectorUnit, ObjectPushesReceiverOntoItsHeapContext) {
  SelSetup S(ContextKind::Object, 2);
  // Receiver o5 allocated under heap context [o3]: callee ctx = [o3, o5].
  ContextId H = S.Ctxs.push(S.Ctxs.empty(), 3, 1);
  ContextId C = S.Sel->selectCallee(ContextId(0), CallSiteId(42), H,
                                    ObjId(5));
  EXPECT_EQ(S.Ctxs.elems(C), (std::vector<CtxElem>{3, 5}));
  // The caller context is irrelevant for virtual dispatch under k-obj.
  ContextId C2 = S.Sel->selectCallee(S.Ctxs.push(S.Ctxs.empty(), 99, 2),
                                     CallSiteId(1), H, ObjId(5));
  EXPECT_EQ(C2, C);
}

TEST(ContextSelectorUnit, ObjectStaticCallsInheritCallerContext) {
  SelSetup S(ContextKind::Object, 2);
  ContextId Caller = S.Ctxs.push(S.Ctxs.empty(), 5, 2);
  EXPECT_EQ(S.Sel->selectStaticCallee(Caller, CallSiteId(1)), Caller);
}

TEST(ContextSelectorUnit, ObjectHeapContextKeepsKMinusOneSuffix) {
  SelSetup S(ContextKind::Object, 3);
  ContextId M = S.Ctxs.empty();
  for (CtxElem E : {10u, 11u, 12u})
    M = S.Ctxs.push(M, E, 3);
  EXPECT_EQ(S.Ctxs.elems(S.Sel->selectHeap(M, ObjId(1))),
            (std::vector<CtxElem>{11, 12}))
      << "heap ctx drops the oldest element, keeping the k-1 suffix";
}

TEST(ContextSelectorUnit, TypeReplacesReceiverWithContainingClass) {
  SelSetup S(ContextKind::Type, 2);
  // Object 1 is allocated in Main.main, so its containing class is Main.
  TypeId Main = S.P->typeByName("Main");
  ContextId C = S.Sel->selectCallee(ContextId(0), CallSiteId(0),
                                    S.Ctxs.empty(), ObjId(1));
  EXPECT_EQ(S.Ctxs.elems(C), (std::vector<CtxElem>{Main.idx()}));
}

TEST(ContextSelectorUnit, NamesMatchAnalysisNames) {
  EXPECT_EQ(SelSetup(ContextKind::CallSite, 2).Sel->name(), "2cs");
  EXPECT_EQ(SelSetup(ContextKind::Object, 3).Sel->name(), "3obj");
  EXPECT_EQ(SelSetup(ContextKind::Type, 2).Sel->name(), "2type");
}

TEST(ContextSelectorUnit, MorePrecisePreAnalysisCanOnlyImproveMerging) {
  // The MahjongOptions::PreKind extension: a 2obj pre-analysis removes
  // the spurious condition-2 violation of Figure 3 and merges what the
  // ci pre-analysis must keep apart.
  const char *Src = R"(
    class T { field f: Object; }
    class X { }
    class Y { }
    class Mk {
      method fill(t, v) { t.T::f = v; }
    }
    class Main {
      static method main() {
        ti = new T;
        tj = new T;
        x = new X;
        y = new Y;
        m1 = new Mk;
        m2 = new Mk;
        m1.fill(ti, x);
        m2.fill(tj, y);
      }
    }
  )";
  // Under ci, fill's params conflate: both T objects' f reaches {X, Y} —
  // condition 2 fails and nothing merges. (They are genuinely not
  // type-consistent: ti stores X, tj stores Y, so this is also correct.)
  auto P = parseOrDie(Src);
  ir::ClassHierarchy CH(*P);
  core::MahjongOptions CiOpts;
  core::MahjongResult CiMR = core::buildMahjongHeap(*P, CH, CiOpts);
  EXPECT_NE(CiMR.MOM[1], CiMR.MOM[2]);
  // A 2obj pre-analysis sees exact contents; ti/tj still differ (X vs Y),
  // but the X and Y leaves now merge with nothing spuriously — and the
  // class count can only go down (more precise FPG => more merging).
  core::MahjongOptions ObjOpts;
  ObjOpts.PreKind = pta::ContextKind::Object;
  ObjOpts.PreK = 2;
  core::MahjongResult ObjMR = core::buildMahjongHeap(*P, CH, ObjOpts);
  EXPECT_NE(ObjMR.MOM[1], ObjMR.MOM[2]);
  EXPECT_LE(ObjMR.Modeling.NumClasses, CiMR.Modeling.NumClasses);
}
