//===-- tests/pta/ContextTableTest.cpp ---------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/Context.h"

#include "pta/CSManager.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;

TEST(ContextTable, EmptyContextIsIdZero) {
  ContextTable T;
  EXPECT_EQ(T.empty().idx(), 0u);
  EXPECT_TRUE(T.elems(T.empty()).empty());
  EXPECT_EQ(T.size(), 1u);
}

TEST(ContextTable, PushAppendsAndInterns) {
  ContextTable T;
  ContextId A = T.push(T.empty(), 7, 3);
  EXPECT_EQ(T.elems(A), (std::vector<CtxElem>{7}));
  ContextId B = T.push(A, 9, 3);
  EXPECT_EQ(T.elems(B), (std::vector<CtxElem>{7, 9}));
  EXPECT_EQ(T.push(T.empty(), 7, 3), A) << "identical contexts intern";
  EXPECT_EQ(T.size(), 3u);
}

TEST(ContextTable, PushKeepsMostRecentK) {
  ContextTable T;
  ContextId C = T.empty();
  for (CtxElem E : {1u, 2u, 3u, 4u})
    C = T.push(C, E, 2);
  EXPECT_EQ(T.elems(C), (std::vector<CtxElem>{3, 4}));
}

TEST(ContextTable, PushWithZeroLimitStaysEmpty) {
  ContextTable T;
  EXPECT_EQ(T.push(T.empty(), 42, 0), T.empty());
}

TEST(ContextTable, TruncateKeepsSuffix) {
  ContextTable T;
  ContextId C = T.empty();
  for (CtxElem E : {1u, 2u, 3u})
    C = T.push(C, E, 8);
  EXPECT_EQ(T.elems(T.truncate(C, 2)), (std::vector<CtxElem>{2, 3}));
  EXPECT_EQ(T.truncate(C, 3), C) << "no-op when already short enough";
  EXPECT_EQ(T.truncate(C, 0), T.empty());
}

TEST(CSManager, InternsAndDecodesPairs) {
  CSManager M;
  CSVarId V1 = M.csVar(ContextId(3), VarId(5));
  CSVarId V2 = M.csVar(ContextId(3), VarId(5));
  CSVarId V3 = M.csVar(ContextId(4), VarId(5));
  EXPECT_EQ(V1, V2);
  EXPECT_NE(V1, V3);
  auto [C, V] = M.varOf(V1);
  EXPECT_EQ(C, ContextId(3));
  EXPECT_EQ(V, VarId(5));
  EXPECT_EQ(M.numCSVars(), 2u);
}

TEST(CSManager, LookupNeverInterns) {
  CSManager M;
  EXPECT_FALSE(M.lookupCSVar(ContextId(0), VarId(1)).isValid());
  EXPECT_EQ(M.numCSVars(), 0u);
  M.csVar(ContextId(0), VarId(1));
  EXPECT_TRUE(M.lookupCSVar(ContextId(0), VarId(1)).isValid());
}

TEST(CSManager, ObjectAndMethodSpacesAreIndependent) {
  CSManager M;
  CSObjId O = M.csObj(ContextId(0), ObjId(9));
  CSMethodId F = M.csMethod(ContextId(0), MethodId(9));
  EXPECT_EQ(O.idx(), 0u);
  EXPECT_EQ(F.idx(), 0u) << "separate dense id spaces";
  auto [CO, Obj] = M.objOf(O);
  EXPECT_EQ(Obj, ObjId(9));
  auto [CM, Mth] = M.methodOf(F);
  EXPECT_EQ(Mth, MethodId(9));
}
