//===-- tests/pta/FactsExportTest.cpp ----------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pta/FactsExport.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

const char *Src = R"(
  class A { field f: B; static field s: B; }
  class B { }
  class Main {
    static method main() {
      a = new A;
      b = new B;
      a.f = b;
      A::s = b;
      Main::helper(a);
    }
    static method helper(p) { return p; }
  }
)";

} // namespace

TEST(FactsExport, VarPointsToRows) {
  auto A = analyze(Src);
  std::ostringstream OS;
  writeVarPointsTo(*A.R, OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Main.main/0\ta\to1<A>@Main.main/0"),
            std::string::npos);
  EXPECT_NE(Out.find("Main.helper/1\tp\to1<A>@Main.main/0"),
            std::string::npos);
}

TEST(FactsExport, InstanceFieldRows) {
  auto A = analyze(Src);
  std::ostringstream OS;
  writeInstanceFieldPointsTo(*A.R, OS);
  EXPECT_NE(OS.str().find("o1<A>@Main.main/0\tf\to2<B>@Main.main/0"),
            std::string::npos);
}

TEST(FactsExport, StaticFieldRows) {
  auto A = analyze(Src);
  std::ostringstream OS;
  writeStaticFieldPointsTo(*A.R, OS);
  EXPECT_NE(OS.str().find("A\ts\to2<B>@Main.main/0"), std::string::npos);
}

TEST(FactsExport, CallGraphEdgeRows) {
  auto A = analyze(Src);
  std::ostringstream OS;
  writeCallGraphEdge(*A.R, OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Main.main/0"), std::string::npos);
  EXPECT_NE(Out.find("Main.helper/1"), std::string::npos);
}

TEST(FactsExport, ReachableRows) {
  auto A = analyze(Src);
  std::ostringstream OS;
  writeReachable(*A.R, OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Main.main/0\n"), std::string::npos);
  EXPECT_NE(Out.find("Main.helper/1\n"), std::string::npos);
}

TEST(FactsExport, OutputIsDeterministic) {
  auto A1 = analyze(Src);
  auto A2 = analyze(Src);
  std::ostringstream O1, O2;
  writeVarPointsTo(*A1.R, O1);
  writeVarPointsTo(*A2.R, O2);
  EXPECT_EQ(O1.str(), O2.str());
  std::ostringstream F1, F2;
  writeInstanceFieldPointsTo(*A1.R, F1);
  writeInstanceFieldPointsTo(*A2.R, F2);
  EXPECT_EQ(F1.str(), F2.str());
}

TEST(FactsExport, WriteAllFactsCreatesFiles) {
  auto A = analyze(Src);
  std::string Dir = ::testing::TempDir() + "/mahjong_facts";
  std::filesystem::create_directories(Dir);
  ASSERT_TRUE(writeAllFacts(*A.R, Dir));
  for (const char *Name :
       {"VarPointsTo", "InstanceFieldPointsTo", "StaticFieldPointsTo",
        "CallGraphEdge", "Reachable"})
    EXPECT_TRUE(std::filesystem::exists(Dir + "/" + Name + ".facts"))
        << Name;
}

TEST(FactsExport, WriteAllFactsFailsOnBadDirectory) {
  auto A = analyze(Src);
  EXPECT_FALSE(writeAllFacts(*A.R, "/nonexistent/dir/for/sure"));
}
