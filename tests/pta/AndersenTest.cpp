//===-- tests/pta/AndersenTest.cpp -------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Semantics of the context-insensitive Andersen solver, statement kind by
// statement kind, on hand-written programs.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

TEST(Andersen, AllocAndCopy) {
  auto A = analyze(R"(
    class T { }
    class Main { static method main() { x = new T; y = x; z = y; } }
  )");
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "x"),
            (std::vector<std::string>{"o1<T>"}));
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "z"),
            (std::vector<std::string>{"o1<T>"}));
}

TEST(Andersen, CopyIsDirectional) {
  auto A = analyze(R"(
    class T { }
    class Main { static method main() { x = new T; y = new T; y = x; } }
  )");
  // y sees both objects; x only its own.
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "x").size(), 1u);
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "y").size(), 2u);
}

TEST(Andersen, FieldStoreThenLoad) {
  auto A = analyze(R"(
    class T { field f: T; }
    class Main {
      static method main() { x = new T; v = new T; x.f = v; w = x.f; }
    }
  )");
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "w"),
            (std::vector<std::string>{"o2<T>"}));
}

TEST(Andersen, FieldsAreObjectSensitiveNotVarSensitive) {
  auto A = analyze(R"(
    class T { field f: T; }
    class Main {
      static method main() {
        a = new T;      // o1
        b = new T;      // o2
        va = new T;     // o3
        vb = new T;     // o4
        a.f = va;
        b.f = vb;
        ra = a.f;
        rb = b.f;
        alias = a;      // alias.f and a.f share the base object
        rc = alias.f;
      }
    }
  )");
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "ra"),
            (std::vector<std::string>{"o3<T>"}));
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "rb"),
            (std::vector<std::string>{"o4<T>"}));
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "rc"),
            (std::vector<std::string>{"o3<T>"}));
}

TEST(Andersen, StaticFields) {
  auto A = analyze(R"(
    class G { static field s: G; }
    class Main {
      static method main() { x = new G; G::s = x; y = G::s; }
    }
  )");
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "y"),
            (std::vector<std::string>{"o1<G>"}));
}

TEST(Andersen, ArraysSmashElements) {
  auto A = analyze(R"(
    class T { }
    class Main {
      static method main() {
        arr = new T[];
        a = new T;
        b = new T;
        arr[] = a;
        arr[] = b;
        r = arr[];
      }
    }
  )");
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "r").size(), 2u)
      << "one smashed element per array object";
}

TEST(Andersen, NullPropagatesButHasNoFields) {
  auto A = analyze(R"(
    class T { field f: T; }
    class Main {
      static method main() { x = null; y = x; z = y.f; }
    }
  )");
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "y"),
            (std::vector<std::string>{"null"}));
  EXPECT_TRUE(pointeeObjs(*A.R, "Main.main/0", "z").empty())
      << "loading through null yields nothing";
}

TEST(Andersen, StaticCallPassesArgsAndReturns) {
  auto A = analyze(R"(
    class T { }
    class Main {
      static method main() { x = new T; r = Main::id(x); }
      static method id(p) { return p; }
    }
  )");
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "r"),
            (std::vector<std::string>{"o1<T>"}));
  EXPECT_EQ(pointeeObjs(*A.R, "Main.id/1", "p"),
            (std::vector<std::string>{"o1<T>"}));
}

TEST(Andersen, VirtualCallBindsReceiverPrecisely) {
  auto A = analyze(R"(
    class T { method self() { return this; } }
    class Main {
      static method main() {
        a = new T;
        b = new T;
        ra = a.self();
        rb = b.self();
      }
    }
  )");
  // Context-insensitively, 'this' holds both receivers, so returns
  // conflate — but each receiver DID flow only via its own call edge.
  EXPECT_EQ(pointeeObjs(*A.R, "T.self/0", "this").size(), 2u);
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "ra").size(), 2u)
      << "ci conflates the two call sites through one return";
}

TEST(Andersen, SpecialCallHitsExactTarget) {
  auto A = analyze(R"(
    class A { method m() { r = new A; return r; } }
    class B extends A { method m() { r = new B; return r; } }
    class Main {
      static method main() {
        b = new B;
        x = special b.A::m();
      }
    }
  )");
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "x"),
            (std::vector<std::string>{"A"}))
      << "special call ignores dynamic dispatch";
}

TEST(Andersen, CastFiltersIncompatibleObjects) {
  auto A = analyze(R"(
    class A { }
    class B extends A { }
    class C extends A { }
    class Main {
      static method main() {
        x = new B;
        y = new C;
        a = x;
        a = y;
        b = (B) a;
        n = null;
        a = n;
        c = (C) a;
      }
    }
  )");
  // Flow-insensitively the later "a = null" also reaches this cast, so b
  // keeps null — but the C object must be filtered out.
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "b"),
            (std::vector<std::string>{"B", "null"}))
      << "cast removes the C object but null always passes";
  // null passes every cast.
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "c"),
            (std::vector<std::string>{"C", "null"}));
}

TEST(Andersen, UpcastKeepsSubtypes) {
  auto A = analyze(R"(
    class A { }
    class B extends A { }
    class Main {
      static method main() { x = new B; a = (A) x; o = (Object) x; }
    }
  )");
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "a"),
            (std::vector<std::string>{"B"}));
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "o"),
            (std::vector<std::string>{"B"}));
}

TEST(Andersen, UnreachableCodeIsNotAnalyzed) {
  auto A = analyze(R"(
    class T { }
    class Main {
      static method main() { x = new T; }
      static method dead() { y = new T; }
    }
  )");
  MethodId Dead = A.P->methodBySignature("Main.dead/0");
  EXPECT_FALSE(A.R->ReachableMethod[Dead.idx()]);
  EXPECT_TRUE(pointeeObjs(*A.R, "Main.dead/0", "y").empty());
}

TEST(Andersen, RecursionTerminates) {
  auto A = analyze(R"(
    class T { }
    class Main {
      static method main() { x = new T; r = Main::rec(x); }
      static method rec(p) { q = Main::rec(p); return p; }
    }
  )");
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "r"),
            (std::vector<std::string>{"o1<T>"}));
  EXPECT_EQ(pointeeObjs(*A.R, "Main.rec/1", "q"),
            (std::vector<std::string>{"o1<T>"}));
}

TEST(Andersen, MutualRecursionThroughFields) {
  auto A = analyze(R"(
    class N { field next: N; }
    class Main {
      static method main() {
        a = new N;
        b = new N;
        a.next = b;
        b.next = a;     // cycle in the heap
        x = a.next;
        y = x.next;
        z = y.next;
      }
    }
  )");
  EXPECT_EQ(pointeeObjs(*A.R, "Main.main/0", "z"),
            (std::vector<std::string>{"o2<N>"}));
}

TEST(Andersen, DispatchOnAbstractHasNoTarget) {
  auto A = analyze(R"(
    class A { abstract method m(); }
    class Main {
      static method main() { x = Main::make(); x.m(); }
      static method make() { r = null; return r; }
    }
  )");
  // No receiver objects at all: the call has no edges and nothing crashes.
  EXPECT_EQ(A.R->CG.calleesOf(CallSiteId(0)).size() +
                A.R->CG.calleesOf(CallSiteId(1)).size(),
            1u)
      << "only the static call to make() resolved";
}

TEST(Andersen, TimeBudgetStopsEarly) {
  // A budget so small the solver must give up immediately but cleanly.
  auto P = parseOrDie(R"(
    class T { }
    class Main { static method main() { x = new T; } }
  )");
  ir::ClassHierarchy CH(*P);
  AnalysisOptions Opts;
  Opts.TimeBudgetSeconds = 1e-9;
  auto R = runPointerAnalysis(*P, CH, Opts);
  // With a single statement the fixpoint may still complete before the
  // first budget check; either way the flag is consistent with progress.
  EXPECT_TRUE(R->Stats.Seconds >= 0);
}
