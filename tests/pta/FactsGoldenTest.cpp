//===-- tests/pta/FactsGoldenTest.cpp ----------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Byte-stability of the fact dumps: the full writeAllFacts output of a
// fixed program must equal an embedded golden byte-for-byte, and stay
// identical across repeated runs and across mahjong-heap worker thread
// counts. This pins the export order to program structure (dense variable
// ids, field ids, site ids) rather than solver worklist or modeler
// scheduling order, which is what downstream diffing tools rely on.
//
//===----------------------------------------------------------------------===//

#include "core/Mahjong.h"
#include "pta/FactsExport.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

/// Statics are written in reverse declaration order so an export that
/// leaks solver discovery order cannot accidentally match the golden.
const char *Src = R"(
  class A {
    field f: Object;
    static field s2: Object;
    static field s1: Object;
  }
  class B extends A {
    method m(p) { return p; }
  }
  class C {
    static field t: Object;
  }
  class Main {
    static method main() {
      b = new B;
      c = new C;
      a = new A;
      C::t = b;
      A::s1 = c;
      A::s2 = a;
      A::s1 = b;
      a.f = b;
      h = Main::id(a);
      r = b.m(c);
    }
    static method id(p) { return p; }
  }
)";

/// All five relations, concatenated with headers, as one string.
std::string dumpAllFacts(const PTAResult &R) {
  struct Relation {
    const char *Name;
    void (*Write)(const PTAResult &, std::ostream &);
  } Relations[] = {
      {"VarPointsTo", writeVarPointsTo},
      {"InstanceFieldPointsTo", writeInstanceFieldPointsTo},
      {"StaticFieldPointsTo", writeStaticFieldPointsTo},
      {"CallGraphEdge", writeCallGraphEdge},
      {"Reachable", writeReachable},
  };
  std::ostringstream OS;
  for (const Relation &Rel : Relations) {
    OS << "== " << Rel.Name << " ==\n";
    Rel.Write(R, OS);
  }
  return OS.str();
}

std::string analyzeAndDump(unsigned ModelerThreads) {
  auto P = parseOrDie(Src);
  ir::ClassHierarchy CH(*P);
  core::MahjongOptions MOpts;
  MOpts.Modeler.Threads = ModelerThreads;
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH, MOpts);
  pta::AnalysisOptions Opts;
  Opts.Kind = pta::ContextKind::Object;
  Opts.K = 2;
  Opts.Heap = MR.Heap.get();
  auto R = pta::runPointerAnalysis(*P, CH, Opts);
  return dumpAllFacts(*R);
}

const char *Golden = "== VarPointsTo ==\n"
                     "B.m/1\tthis\to1<B>@Main.main/0\n"
                     "B.m/1\tp\to2<C>@Main.main/0\n"
                     "B.m/1\t$ret\to2<C>@Main.main/0\n"
                     "Main.main/0\tb\to1<B>@Main.main/0\n"
                     "Main.main/0\tc\to2<C>@Main.main/0\n"
                     "Main.main/0\ta\to3<A>@Main.main/0\n"
                     "Main.main/0\th\to3<A>@Main.main/0\n"
                     "Main.main/0\tr\to2<C>@Main.main/0\n"
                     "Main.id/1\tp\to3<A>@Main.main/0\n"
                     "Main.id/1\t$ret\to3<A>@Main.main/0\n"
                     "== InstanceFieldPointsTo ==\n"
                     "o3<A>@Main.main/0\tf\to1<B>@Main.main/0\n"
                     "== StaticFieldPointsTo ==\n"
                     "A\ts2\to3<A>@Main.main/0\n"
                     "A\ts1\to1<B>@Main.main/0\n"
                     "A\ts1\to2<C>@Main.main/0\n"
                     "C\tt\to1<B>@Main.main/0\n"
                     "== CallGraphEdge ==\n"
                     "Main.main/0\t0\tMain.id/1\n"
                     "Main.main/0\t1\tB.m/1\n"
                     "== Reachable ==\n"
                     "B.m/1\n"
                     "Main.main/0\n"
                     "Main.id/1\n";

} // namespace

TEST(FactsGolden, MatchesEmbeddedGolden) {
  EXPECT_EQ(analyzeAndDump(/*ModelerThreads=*/1), Golden);
}

TEST(FactsGolden, ByteStableAcrossRunsAndThreadCounts) {
  std::string Reference = analyzeAndDump(1);
  // Repeated runs.
  EXPECT_EQ(analyzeAndDump(1), Reference);
  // The parallel modeler must not leak scheduling order into the dump.
  for (unsigned Threads : {2u, 4u, 8u})
    EXPECT_EQ(analyzeAndDump(Threads), Reference)
        << "with " << Threads << " modeler threads";
}

TEST(FactsGolden, CiProjectionIsAlsoStable) {
  // The CI path exercises different solver scheduling than 2obj; its dump
  // must still be a deterministic function of the program.
  auto A1 = analyze(Src);
  auto A2 = analyze(Src);
  EXPECT_EQ(dumpAllFacts(*A1.R), dumpAllFacts(*A2.R));
}
