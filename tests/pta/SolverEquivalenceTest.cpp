//===-- tests/pta/SolverEquivalenceTest.cpp ----------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential equivalence of the two propagation engines: the wave
// solver (online cycle collapsing, topological worklist, filter bitmaps)
// must produce the bit-identical solution of the retained naive FIFO
// reference — per-variable points-to sets under every context, field and
// static points-to sets, call-graph edges and reachability — across all
// 12 workload profiles and all five context policies, plus a crafted
// deep-copy-cycle program that forces online collapsing.
//
// Interned ids depend on discovery order, which legitimately differs
// between schedulers, so "bit-identical" is asserted on the canonical
// form (pta/ResultDigest.h), which spells facts in program-level ids and
// context contents.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "pta/ResultDigest.h"
#include "workload/BenchmarkPrograms.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

std::unique_ptr<PTAResult> runEngine(const ir::Program &P,
                                     const ir::ClassHierarchy &CH,
                                     ContextKind Kind, unsigned K,
                                     SolverEngine Engine) {
  AnalysisOptions Opts;
  Opts.Kind = Kind;
  Opts.K = K;
  Opts.Engine = Engine;
  return runPointerAnalysis(P, CH, Opts);
}

void expectEnginesAgree(const ir::Program &P, const ir::ClassHierarchy &CH,
                        ContextKind Kind, unsigned K,
                        const std::string &Label) {
  auto Naive = runEngine(P, CH, Kind, K, SolverEngine::Naive);
  auto Wave = runEngine(P, CH, Kind, K, SolverEngine::Wave);
  std::string FirstDiff;
  EXPECT_TRUE(equivalentResults(*Naive, *Wave, &FirstDiff))
      << Label << ": first differing fact:\n"
      << FirstDiff;
  // The cheap aggregates must agree too (they are what the CLI prints).
  EXPECT_EQ(Naive->Stats.VarPtsEntries, Wave->Stats.VarPtsEntries) << Label;
  EXPECT_EQ(Naive->Stats.NumReachableMethods, Wave->Stats.NumReachableMethods)
      << Label;
  EXPECT_EQ(Naive->CG.numCIEdges(), Wave->CG.numCIEdges()) << Label;
  EXPECT_EQ(Naive->CG.numCSEdges(), Wave->CG.numCSEdges()) << Label;
  EXPECT_EQ(canonicalResultDigest(*Naive), canonicalResultDigest(*Wave))
      << Label;
}

/// The five context policies of the paper's main analyses.
const std::pair<ContextKind, unsigned> Policies[] = {
    {ContextKind::CallSite, 2}, {ContextKind::Object, 2},
    {ContextKind::Object, 3},   {ContextKind::Type, 2},
    {ContextKind::Type, 3},
};

std::string policyName(ContextKind Kind, unsigned K) {
  return analysisName(Kind, K);
}

} // namespace

class SolverEquivalenceProfile
    : public ::testing::TestWithParam<std::string> {};

// All five context policies on each of the 12 profiles, at a scale that
// keeps 60 paired runs inside test-suite budget while still exercising
// virtual dispatch, casts, exceptions, statics, and recursion.
TEST_P(SolverEquivalenceProfile, WaveMatchesNaiveUnderAllPolicies) {
  auto P = workload::buildBenchmarkProgram(GetParam(), 0.04);
  ir::ClassHierarchy CH(*P);
  for (auto [Kind, K] : Policies)
    expectEnginesAgree(*P, CH, Kind, K,
                       GetParam() + "/" + policyName(Kind, K));
  // The context-insensitive pre-analysis is what MAHJONG itself consumes;
  // pin it as well.
  expectEnginesAgree(*P, CH, ContextKind::Insensitive, 0, GetParam() + "/ci");
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, SolverEquivalenceProfile,
    ::testing::ValuesIn(workload::benchmarkNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

namespace {

/// A program whose pointer-flow graph is dominated by one deep copy
/// cycle: v0 -> v1 -> ... -> v(N-1) -> v0, fed by allocations at several
/// points, with loads/stores hanging off cycle members so collapsing must
/// preserve var-growth processing for every merged variable.
std::string deepCopyCycleSource(unsigned N) {
  std::string Src = R"(
    class N { field next: N; }
    class Main {
      static method main() {
        v0 = new N;
)";
  for (unsigned I = 1; I < N; ++I)
    Src += "        v" + std::to_string(I) + " = v" + std::to_string(I - 1) +
           ";\n";
  Src += "        v0 = v" + std::to_string(N - 1) + ";\n";
  // A second allocation entering mid-cycle, and field traffic on members.
  Src += "        v" + std::to_string(N / 2) + " = new N;\n";
  Src += "        v1.next = v" + std::to_string(N - 2) + ";\n";
  Src += "        w = v" + std::to_string(N / 3) + ".next;\n";
  Src += R"(
      }
    }
  )";
  return Src;
}

} // namespace

TEST(SolverEquivalence, DeepCopyCycleCollapsesOnline) {
  auto P = parseOrDie(deepCopyCycleSource(64));
  ir::ClassHierarchy CH(*P);

  auto Naive = runEngine(*P, CH, ContextKind::Insensitive, 0,
                         SolverEngine::Naive);
  auto Wave =
      runEngine(*P, CH, ContextKind::Insensitive, 0, SolverEngine::Wave);

  std::string FirstDiff;
  EXPECT_TRUE(equivalentResults(*Naive, *Wave, &FirstDiff))
      << "first differing fact:\n"
      << FirstDiff;

  // The cycle must actually have been collapsed...
  EXPECT_GE(Wave->Stats.SCCsCollapsed, 1u);
  EXPECT_GE(Wave->Stats.NodesCollapsed, 32u)
      << "the 64-var copy cycle should fold into one representative";
  // ...and doing so must strictly reduce scheduling work.
  EXPECT_LT(Wave->Stats.WorklistPops, Naive->Stats.WorklistPops);

  // Every cycle member converges to the same three-element solution
  // (two allocations plus the stored neighbor flows through .next).
  EXPECT_EQ(pointeeObjs(*Wave, "Main.main/0", "v0"),
            pointeeObjs(*Naive, "Main.main/0", "v0"));
  EXPECT_EQ(pointeeObjs(*Wave, "Main.main/0", "v63"),
            pointeeObjs(*Naive, "Main.main/0", "v63"));
  EXPECT_EQ(pointeeObjs(*Wave, "Main.main/0", "w"),
            pointeeObjs(*Naive, "Main.main/0", "w"));
}

TEST(SolverEquivalence, CastFilteredCycleChordStaysPrecise) {
  // A copy cycle with a cast chord: the filtered edge must not be
  // collapsed across — T-typed objects may cross, U-typed may not.
  auto P = parseOrDie(R"(
    class T { }
    class U { }
    class Main {
      static method main() {
        a = new T;
        b = a;
        c = b;
        a = c;
        u = new U;
        a = u;
        d = (T) c;
      }
    }
  )");
  ir::ClassHierarchy CH(*P);
  auto Naive = runEngine(*P, CH, ContextKind::Insensitive, 0,
                         SolverEngine::Naive);
  auto Wave =
      runEngine(*P, CH, ContextKind::Insensitive, 0, SolverEngine::Wave);
  std::string FirstDiff;
  EXPECT_TRUE(equivalentResults(*Naive, *Wave, &FirstDiff))
      << "first differing fact:\n"
      << FirstDiff;
  EXPECT_EQ(pointeeTypes(*Wave, "Main.main/0", "d"),
            (std::vector<std::string>{"T"}))
      << "the (T) cast must keep filtering after the a/b/c cycle collapses";
}

TEST(SolverEquivalence, MahjongHeapPreAnalysisAgrees) {
  // The wave engine also drives the pre-analysis that MAHJONG's heap
  // modeling consumes; pin equivalence under a type-based abstraction.
  auto P = workload::buildBenchmarkProgram("luindex", 0.05);
  ir::ClassHierarchy CH(*P);
  AllocTypeAbstraction TypeHeap(*P);
  for (SolverEngine E : {SolverEngine::Naive, SolverEngine::Wave}) {
    AnalysisOptions Opts;
    Opts.Kind = ContextKind::Object;
    Opts.K = 2;
    Opts.Heap = &TypeHeap;
    Opts.Engine = E;
    auto R = runPointerAnalysis(*P, CH, Opts);
    EXPECT_FALSE(R->Stats.TimedOut);
  }
  AnalysisOptions NaiveOpts, WaveOpts;
  NaiveOpts.Heap = WaveOpts.Heap = &TypeHeap;
  NaiveOpts.Engine = SolverEngine::Naive;
  auto RN = runPointerAnalysis(*P, CH, NaiveOpts);
  auto RW = runPointerAnalysis(*P, CH, WaveOpts);
  std::string FirstDiff;
  EXPECT_TRUE(equivalentResults(*RN, *RW, &FirstDiff))
      << "first differing fact:\n"
      << FirstDiff;
}
