//===-- tests/pta/StatsConservationTest.cpp ----------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Conservation laws of the PTAStats the observability layer exports.
// Since PR 5, SetBytes is computed uniformly by SolverCore over the
// flattened solution (PointsToSet::liveBytes), so it — like
// VarPtsEntries — is a pure function of the solution and must be
// bit-identical across the naive, wave, and parallel engines on every
// workload profile. The parallel engine's delta accounting must balance
// at every thread count: DeltasBuffered == DeltasMerged + DeltasDropped,
// with DeltasDropped nonzero only on a timed-out run (a timeout stops
// mid-wave, so deliveries already buffered are dropped — and counted).
// The engine-owned WorkingSetBytes may differ between engines but never
// be zero on a non-trivial run.
//
//===----------------------------------------------------------------------===//

#include "pta/PointerAnalysis.h"

#include "workload/BenchmarkPrograms.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;

namespace {

std::unique_ptr<PTAResult> runWith(const ir::Program &P,
                                   const ir::ClassHierarchy &CH,
                                   SolverEngine Engine, unsigned Threads) {
  AnalysisOptions Opts; // context-insensitive: every profile is scalable
  Opts.Engine = Engine;
  Opts.SolverThreads = Threads;
  return runPointerAnalysis(P, CH, Opts);
}

TEST(StatsConservation, SolutionStatsAgreeAcrossEnginesOnAllProfiles) {
  const double Scale = 0.05; // smoke scale: shapes, not sizes
  for (const std::string &Name : workload::benchmarkNames()) {
    SCOPED_TRACE(Name);
    auto P = workload::buildBenchmarkProgram(Name, Scale);
    ir::ClassHierarchy CH(*P);

    auto Naive = runWith(*P, CH, SolverEngine::Naive, 0);
    auto Wave = runWith(*P, CH, SolverEngine::Wave, 0);
    ASSERT_GT(Wave->Stats.VarPtsEntries, 0u);
    EXPECT_EQ(Naive->Stats.VarPtsEntries, Wave->Stats.VarPtsEntries);
    EXPECT_EQ(Naive->Stats.SetBytes, Wave->Stats.SetBytes);
    EXPECT_GT(Naive->Stats.WorkingSetBytes, 0u);
    EXPECT_GT(Wave->Stats.WorkingSetBytes, 0u);

    for (unsigned Threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(Threads);
      auto Par = runWith(*P, CH, SolverEngine::ParallelWave, Threads);
      EXPECT_EQ(Par->Stats.DeltasBuffered, Par->Stats.DeltasMerged);
      EXPECT_EQ(Par->Stats.DeltasDropped, 0u); // complete runs drop nothing
      EXPECT_EQ(Par->Stats.VarPtsEntries, Wave->Stats.VarPtsEntries);
      EXPECT_EQ(Par->Stats.SetBytes, Wave->Stats.SetBytes);
      EXPECT_GT(Par->Stats.WorkingSetBytes, 0u);
    }
  }
}

TEST(StatsConservation, TimeoutDropsAreCountedNotLost) {
  // A budget of (effectively) zero stops the parallel engine at its
  // first in-sweep budget check — mid-wave, with deliveries already
  // buffered that the merge phase then abandons. Those must land in
  // DeltasDropped so the conservation law still balances; silently
  // vanishing buffered work was the pre-fix defect.
  auto P = workload::buildBenchmarkProgram("chart", 0.1);
  ir::ClassHierarchy CH(*P);
  for (unsigned Threads : {1u, 2u}) {
    SCOPED_TRACE(Threads);
    AnalysisOptions Opts;
    Opts.Engine = SolverEngine::ParallelWave;
    Opts.SolverThreads = Threads;
    Opts.TimeBudgetSeconds = 1e-9;
    auto R = runPointerAnalysis(*P, CH, Opts);
    EXPECT_TRUE(R->Stats.TimedOut);
    EXPECT_EQ(R->Stats.DeltasBuffered,
              R->Stats.DeltasMerged + R->Stats.DeltasDropped);
    if (Threads == 1) {
      // Single-threaded the schedule is fixed: the sweep buffers real
      // work before the 64-pop budget check fires, so the drop counter
      // must actually engage (not balance trivially at 0 == 0 + 0).
      EXPECT_GT(R->Stats.DeltasDropped, 0u);
    }
  }
}

TEST(StatsConservation, WaveLatencyHistogramMatchesWaveCount) {
  // The per-wave latency histogram rides on PTAResult: its sample count
  // is the number of waves the engine ran, and the naive engine (no wave
  // structure) leaves it empty.
  auto P = workload::buildBenchmarkProgram("antlr", 0.05);
  ir::ClassHierarchy CH(*P);

  auto Wave = runWith(*P, CH, SolverEngine::Wave, 0);
  EXPECT_GT(Wave->WaveMicros.count(), 0u);

  auto Par = runWith(*P, CH, SolverEngine::ParallelWave, 2);
  EXPECT_EQ(Par->WaveMicros.count(), Par->Stats.ParallelWaves);

  auto Naive = runWith(*P, CH, SolverEngine::Naive, 0);
  EXPECT_EQ(Naive->WaveMicros.count(), 0u);
}

} // namespace
