//===-- tests/pta/ExceptionsTest.cpp -----------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Exceptional flow: throw fills the method's $exc slot, calls propagate
// callee exceptions, and catch filters by type. The model is
// flow-insensitive and conservative (caught exceptions still propagate;
// see MethodInfo::Exc) — these tests pin down exactly that contract.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "core/Mahjong.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

TEST(Exceptions, ThrowFillsTheExceptionSlot) {
  auto A = analyze(R"(
    class Err { }
    class Main {
      static method main() { e = new Err; throw e; }
    }
  )");
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "$exc"),
            (std::vector<std::string>{"Err"}));
}

TEST(Exceptions, CalleeExceptionsReachTheCaller) {
  auto A = analyze(R"(
    class Err { }
    class Main {
      static method main() { Main::risky(); }
      static method risky() { e = new Err; throw e; }
    }
  )");
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "$exc"),
            (std::vector<std::string>{"Err"}))
      << "uncaught exceptions propagate through static calls";
}

TEST(Exceptions, PropagationIsTransitive) {
  auto A = analyze(R"(
    class Err { }
    class Main {
      static method main() { Main::a(); }
      static method a() { Main::b(); }
      static method b() { e = new Err; throw e; }
    }
  )");
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "$exc"),
            (std::vector<std::string>{"Err"}));
}

TEST(Exceptions, VirtualCalleesPropagateToo) {
  auto A = analyze(R"(
    class Err { }
    class W { method work() { e = new Err; throw e; } }
    class Main {
      static method main() { w = new W; w.work(); }
    }
  )");
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "$exc"),
            (std::vector<std::string>{"Err"}));
}

TEST(Exceptions, CatchBindsByType) {
  auto A = analyze(R"(
    class IoErr { }
    class NetErr { }
    class Main {
      static method main() {
        Main::risky();
        io = catch IoErr;
        net = catch NetErr;
        any = catch Object;
      }
      static method risky() {
        a = new IoErr;
        throw a;
        b = new NetErr;
        throw b;
      }
    }
  )");
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "io"),
            (std::vector<std::string>{"IoErr"}));
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "net"),
            (std::vector<std::string>{"NetErr"}));
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "any"),
            (std::vector<std::string>{"IoErr", "NetErr"}));
}

TEST(Exceptions, CatchCoversSubtypes) {
  auto A = analyze(R"(
    class Base { }
    class Derived extends Base { }
    class Main {
      static method main() {
        d = new Derived;
        throw d;
        c = catch Base;
      }
    }
  )");
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "c"),
            (std::vector<std::string>{"Derived"}));
}

TEST(Exceptions, CaughtExceptionsStillPropagateConservatively) {
  // The documented over-approximation: catching does not subtract from
  // the $exc slot, so callers still see the exception (sound, coarser
  // than Doop's flow-sensitive handlers).
  auto A = analyze(R"(
    class Err { }
    class Main {
      static method main() { Main::guarded(); }
      static method guarded() {
        e = new Err;
        throw e;
        c = catch Err;
      }
    }
  )");
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "$exc"),
            (std::vector<std::string>{"Err"}));
}

TEST(Exceptions, ExceptionObjectsParticipateInMerging) {
  // Two type-consistent exception sites merge like any other objects —
  // throw-site provenance is exactly what type-dependent clients do not
  // need.
  auto P = parseOrDie(R"(
    class Err { field ctx: Object; }
    class Pay { }
    class Main {
      static method main() {
        p1 = new Pay;
        p2 = new Pay;
        e1 = new Err;
        e1.ctx = p1;
        throw e1;
        e2 = new Err;
        e2.ctx = p2;
        throw e2;
        c = catch Err;
      }
    }
  )");
  ir::ClassHierarchy CH(*P);
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  // e1 is o3, e2 is o4 (after p1, p2).
  EXPECT_EQ(MR.MOM[3], MR.MOM[4]) << "type-consistent exceptions merge";
}

TEST(Exceptions, RoundTripThroughPrinter) {
  auto P = parseOrDie(R"(
    class Err { }
    class Main {
      static method main() {
        e = new Err;
        throw e;
        c = catch Err;
      }
    }
  )");
  std::string Text = ir::printProgram(*P);
  EXPECT_NE(Text.find("throw e;"), std::string::npos);
  EXPECT_NE(Text.find("c = catch Err;"), std::string::npos);
  std::string Err;
  auto P2 = ir::parseProgram(Text, Err);
  ASSERT_TRUE(P2) << Err;
  EXPECT_EQ(ir::printProgram(*P2), Text);
}

TEST(Exceptions, EntrySlotEmptyWithoutThrows) {
  auto A = analyze(R"(
    class T { }
    class Main { static method main() { x = new T; } }
  )");
  EXPECT_TRUE(pointeeTypes(*A.R, "Main.main/0", "$exc").empty());
}
