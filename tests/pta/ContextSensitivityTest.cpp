//===-- tests/pta/ContextSensitivityTest.cpp ---------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The three context flavours: what each distinguishes, what each
// conflates, and how heap contexts and merged objects interact.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "core/Mahjong.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

// The classic identity-method example: ci conflates the two call sites,
// any context-sensitive analysis keeps them apart.
const char *IdSrc = R"(
  class T { }
  class U { }
  class Id { method id(p) { return p; } }
  class Main {
    static method main() {
      h = new Id;
      t = new T;
      u = new U;
      rt = h.id(t);
      ru = h.id(u);
    }
  }
)";

} // namespace

TEST(ContextSensitivity, CiConflatesIdentityCalls) {
  auto A = analyze(IdSrc, ContextKind::Insensitive);
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T", "U"}));
}

TEST(ContextSensitivity, TwoCFADistinguishesCallSites) {
  auto A = analyze(IdSrc, ContextKind::CallSite, 2);
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T"}));
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "ru"),
            (std::vector<std::string>{"U"}));
}

TEST(ContextSensitivity, ObjectSensitivityConflatesSameReceiver) {
  // Both calls share the receiver h, so 2obj cannot split them — the
  // textbook difference between k-CFA and k-obj.
  auto A = analyze(IdSrc, ContextKind::Object, 2);
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T", "U"}));
}

namespace {

// Container example: per-receiver field precision. k-obj shines; k-CFA
// with k=2 also works here because the store/load happen directly in the
// wrapping call.
const char *BoxSrc = R"(
  class T { }
  class U { }
  class Box {
    field val: Object;
    method set(v) { this.val = v; return this; }
    method get() { r = this.val; return r; }
  }
  class Main {
    static method main() {
      bt = new Box;
      bu = new Box;
      t = new T;
      u = new U;
      bt.set(t);
      bu.set(u);
      rt = bt.get();
      ru = bu.get();
    }
  }
)";

} // namespace

TEST(ContextSensitivity, CiConflatesBoxContents) {
  auto A = analyze(BoxSrc, ContextKind::Insensitive);
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T", "U"}));
}

TEST(ContextSensitivity, TwoObjSeparatesBoxContents) {
  auto A = analyze(BoxSrc, ContextKind::Object, 2);
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T"}));
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "ru"),
            (std::vector<std::string>{"U"}));
}

TEST(ContextSensitivity, TypeSensitivityConflatesSameDeclaringClass) {
  // Both boxes are allocated in Main, so their type contexts coincide:
  // 2type is coarser than 2obj here (Smaragdakis et al.).
  auto A = analyze(BoxSrc, ContextKind::Type, 2);
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T", "U"}));
}

TEST(ContextSensitivity, TypeSensitivitySeparatesAcrossClasses) {
  // Same pattern, but the two boxes are allocated in different classes:
  // now the containing types differ and 2type regains the precision.
  auto A = analyze(R"(
    class T { }
    class U { }
    class Box {
      field val: Object;
      method set(v) { this.val = v; return this; }
      method get() { r = this.val; return r; }
    }
    class MakeT { static method make() { b = new Box; return b; } }
    class MakeU { static method make() { b = new Box; return b; } }
    class Main {
      static method main() {
        bt = MakeT::make();
        bu = MakeU::make();
        t = new T;
        u = new U;
        bt.set(t);
        bu.set(u);
        rt = bt.get();
        ru = bu.get();
      }
    }
  )",
                   ContextKind::Type, 2);
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T"}));
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "ru"),
            (std::vector<std::string>{"U"}));
}

namespace {

// Factory nesting: the box is allocated inside the factory's method, so
// distinguishing boxes requires heap context — 2obj succeeds through the
// receiver chain, 1obj does not.
const char *FactorySrc = R"(
  class T { }
  class U { }
  class Box {
    field val: Object;
    method set(v) { this.val = v; return this; }
    method get() { r = this.val; return r; }
  }
  class Factory { method make() { b = new Box; return b; } }
  class Main {
    static method main() {
      ft = new Factory;
      fu = new Factory;
      bt = ft.make();
      bu = fu.make();
      t = new T;
      u = new U;
      bt.set(t);
      bu.set(u);
      rt = bt.get();
      ru = bu.get();
    }
  }
)";

} // namespace

TEST(ContextSensitivity, HeapContextDistinguishesFactoryProducts) {
  auto A1 = analyze(FactorySrc, ContextKind::Object, 1);
  EXPECT_EQ(pointeeTypes(*A1.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T", "U"}))
      << "1obj has no heap context: both boxes are one cs-object";
  auto A2 = analyze(FactorySrc, ContextKind::Object, 2);
  EXPECT_EQ(pointeeTypes(*A2.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T"}));
  EXPECT_EQ(pointeeTypes(*A2.R, "Main.main/0", "ru"),
            (std::vector<std::string>{"U"}));
}

TEST(ContextSensitivity, StaticCallsInheritCallerContextUnderObjSens) {
  // A static helper between the call sites must not destroy 2obj's
  // receiver distinction.
  auto A = analyze(R"(
    class T { }
    class U { }
    class Box {
      field val: Object;
      method set(v) { this.val = v; return this; }
      method get() { r = this.val; return r; }
    }
    class H { static method fill(b, v) { b.set(v); } }
    class Main {
      static method main() {
        bt = new Box;
        bu = new Box;
        t = new T;
        u = new U;
        H::fill(bt, t);
        H::fill(bu, u);
        rt = bt.get();
      }
    }
  )",
                   ContextKind::Object, 2);
  // The static helper runs context-insensitively (caller ctx is empty),
  // so its parameters conflate — but the *fields* stay per-object; only
  // contents that were never conflated by vars remain separate. set()'s
  // param v conflates: rt sees both. This documents the known behavior.
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T", "U"}));
}

TEST(ContextSensitivity, MergedObjectsAreContextInsensitive) {
  // With a MAHJONG heap, merged receivers collapse their callee contexts;
  // un-merged ones keep them (paper §3.6.1).
  auto P = parseOrDie(BoxSrc);
  ir::ClassHierarchy CH(*P);
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  // The two Box sites store different types, so they must NOT be merged.
  EXPECT_NE(MR.MOM[1].idx(), MR.MOM[2].idx())
      << "bt-box and bu-box are not type-consistent";
  AnalysisOptions Opts;
  Opts.Kind = ContextKind::Object;
  Opts.K = 2;
  Opts.Heap = MR.Heap.get();
  auto R = runPointerAnalysis(*P, CH, Opts);
  EXPECT_EQ(pointeeTypes(*R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T"}))
      << "unmerged boxes keep full 2obj precision under M-2obj";
}

TEST(ContextSensitivity, ContextDepthIsBounded) {
  // Deep recursion on a receiver chain must intern only boundedly many
  // contexts under 2obj.
  auto A = analyze(R"(
    class N {
      field next: N;
      method grow() {
        m = new N;
        this.next = m;
        m.grow();
        return m;
      }
    }
    class Main {
      static method main() { root = new N; root.grow(); }
    }
  )",
                   ContextKind::Object, 2);
  EXPECT_LT(A.R->Stats.NumContexts, 50u);
  EXPECT_FALSE(A.R->Stats.TimedOut);
}

TEST(ContextSensitivity, KCFAHeapContextsUseCallSites) {
  auto A = analyze(FactorySrc, ContextKind::CallSite, 2);
  // Under 2cs the two make() call sites distinguish the boxes.
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "rt"),
            (std::vector<std::string>{"T"}));
  EXPECT_EQ(pointeeTypes(*A.R, "Main.main/0", "ru"),
            (std::vector<std::string>{"U"}));
}

TEST(ContextSensitivity, AnalysisNamesAreCanonical) {
  EXPECT_EQ(analysisName(ContextKind::Insensitive, 0), "ci");
  EXPECT_EQ(analysisName(ContextKind::CallSite, 2), "2cs");
  EXPECT_EQ(analysisName(ContextKind::Object, 3), "3obj");
  EXPECT_EQ(analysisName(ContextKind::Type, 2), "2type");
}
