//===-- tests/ir/ParserFuzzTest.cpp ------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Robustness property: the parser must never crash and never hang — it
// either produces a program or a located diagnostic — for arbitrary
// token soup, truncated valid programs, and mutated valid programs.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace mahjong;
using namespace mahjong::ir;

namespace {

/// Runs the parser and only checks the contract: result XOR diagnostic.
void expectGraceful(const std::string &Src) {
  std::string Err;
  auto P = parseProgram(Src, Err);
  if (P)
    EXPECT_TRUE(Err.empty());
  else
    EXPECT_FALSE(Err.empty()) << "failed without a diagnostic";
}

const char *ValidProgram = R"(
class A { field f: A; method m(p) { this.f = p; return p; } }
class B extends A { method m(p) { return this; } }
class Main {
  static method main() {
    a = new A;
    b = new B;
    a.m(b);
    c = (B) b;
    arr = new A[];
    arr[] = a;
    x = arr[];
    throw a;
    e = catch A;
  }
}
)";

} // namespace

class ParserFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzzTest, RandomTokenSoupIsHandledGracefully) {
  std::mt19937 Rng(GetParam() * 2654435761u + 17);
  static const char *Pieces[] = {
      "class", "extends", "field", "method", "static", "abstract", "new",
      "null", "return", "special", "throw", "catch", "{", "}", "(", ")",
      "[", "]", ";", ",", ".", "=", ":", "::", "A", "B", "Main", "main",
      "x", "y", "f", "m", "#", "@",
  };
  std::string Src;
  for (int I = 0, N = 20 + Rng() % 120; I < N; ++I) {
    Src += Pieces[Rng() % (sizeof(Pieces) / sizeof(*Pieces))];
    Src += ' ';
  }
  expectGraceful(Src);
}

TEST_P(ParserFuzzTest, TruncatedValidProgramsAreHandledGracefully) {
  std::string Full = ValidProgram;
  std::mt19937 Rng(GetParam() * 40503u + 3);
  size_t Cut = Rng() % Full.size();
  expectGraceful(Full.substr(0, Cut));
}

TEST_P(ParserFuzzTest, MutatedValidProgramsAreHandledGracefully) {
  std::string Src = ValidProgram;
  std::mt19937 Rng(GetParam() * 69069u + 11);
  for (int M = 0, N = 1 + Rng() % 4; M < N; ++M) {
    size_t Pos = Rng() % Src.size();
    switch (Rng() % 3) {
    case 0:
      Src[Pos] = static_cast<char>("{}();=.:"[Rng() % 8]);
      break;
    case 1:
      Src.erase(Pos, 1 + Rng() % 3);
      break;
    case 2:
      Src.insert(Pos, 1, static_cast<char>(' ' + Rng() % 94));
      break;
    }
  }
  expectGraceful(Src);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(1u, 41u));

TEST(ParserEdge, EmptyAndWhitespaceOnly) {
  for (const char *Src : {"", "   ", "\n\n\t", "// only a comment\n",
                          "/* only a block comment */"}) {
    std::string Err;
    EXPECT_EQ(parseProgram(Src, Err), nullptr) << "no entry method";
    EXPECT_FALSE(Err.empty());
  }
}

TEST(ParserEdge, DeeplyNestedArrayTypes) {
  std::string Src = "class A { } class Main { static method main() { "
                    "x = new A";
  for (int I = 0; I < 40; ++I)
    Src += "[]";
  Src += "; } }";
  std::string Err;
  auto P = parseProgram(Src, Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_GE(P->numTypes(), 42u);
}

TEST(ParserEdge, LongIdentifiers) {
  std::string Long(2000, 'x');
  std::string Src = "class " + Long + " { } class Main { "
                    "static method main() { v = new " + Long + "; } }";
  std::string Err;
  auto P = parseProgram(Src, Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_TRUE(P->typeByName(Long).isValid());
}
