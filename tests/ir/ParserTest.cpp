//===-- tests/ir/ParserTest.cpp ----------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::test;

static std::string parseError(std::string_view Src) {
  std::string Err;
  auto P = parseProgram(Src, Err);
  EXPECT_EQ(P, nullptr) << "expected a parse error";
  return Err;
}

TEST(Parser, MinimalProgram) {
  auto P = parseOrDie("class Main { static method main() { } }");
  EXPECT_TRUE(P->entryMethod().isValid());
  EXPECT_EQ(P->method(P->entryMethod()).Signature, "Main.main/0");
}

TEST(Parser, FieldsAndInheritance) {
  auto P = parseOrDie(R"(
    class A { field f: A; static field g: B; }
    class B extends A { }
    class Main { static method main() { } }
  )");
  TypeId A = P->typeByName("A");
  TypeId B = P->typeByName("B");
  ASSERT_TRUE(A.isValid());
  ASSERT_TRUE(B.isValid());
  EXPECT_EQ(P->type(B).Super, A);
  EXPECT_EQ(P->type(A).Fields.size(), 2u);
  FieldId F = P->findField(B, "f"); // inherited
  ASSERT_TRUE(F.isValid());
  EXPECT_FALSE(P->field(F).IsStatic);
}

TEST(Parser, AllStatementForms) {
  auto P = parseOrDie(R"(
    class A {
      field f: A;
      static field s: A;
      method m(p) { return p; }
    }
    class Main {
      static method main() {
        x = new A;
        y = x;
        z = null;
        x.f = y;
        w = x.f;
        q = x.A::f;
        x.A::f = y;
        A::s = x;
        t = A::s;
        c = (A) y;
        r = x.m(y);
        x.m(y);
        u = Main::helper(x);
        Main::helper(x);
        arr = new A[];
        arr[] = x;
        e = arr[];
        sp = special x.A::m(y);
        special x.A::m(y);
      }
      static method helper(a) { return a; }
    }
  )");
  const MethodInfo &Main = P->method(P->entryMethod());
  EXPECT_EQ(Main.Body.size(), 19u);
  EXPECT_GE(P->numCallSites(), 6u);
  EXPECT_EQ(P->numCastSites(), 1u);
}

TEST(Parser, ArrayTypesSpringIntoExistence) {
  auto P = parseOrDie(R"(
    class A { }
    class Main { static method main() { x = new A[]; y = new A[][]; } }
  )");
  TypeId Arr = P->typeByName("A[]");
  TypeId Arr2 = P->typeByName("A[][]");
  ASSERT_TRUE(Arr.isValid());
  ASSERT_TRUE(Arr2.isValid());
  EXPECT_EQ(P->type(Arr).Kind, TypeKind::Array);
  EXPECT_EQ(P->type(Arr).Elem, P->typeByName("A"));
  EXPECT_EQ(P->type(Arr2).Elem, Arr);
}

TEST(Parser, ParamAndReturnTypeAnnotationsAreAccepted) {
  auto P = parseOrDie(R"(
    class A { method m(p: A, q: A[]): A { return p; } }
    class Main { static method main() { } }
  )");
  MethodId M = P->methodBySignature("A.m/2");
  ASSERT_TRUE(M.isValid());
  EXPECT_EQ(P->method(M).Params.size(), 2u);
}

TEST(Parser, AbstractMethods) {
  auto P = parseOrDie(R"(
    class A { abstract method m(p); }
    class B extends A { method m(p) { return p; } }
    class Main { static method main() { } }
  )");
  MethodId AM = P->methodBySignature("A.m/1");
  ASSERT_TRUE(AM.isValid());
  EXPECT_TRUE(P->method(AM).IsAbstract);
  EXPECT_FALSE(P->method(P->methodBySignature("B.m/1")).IsAbstract);
}

TEST(Parser, CommentsAnywhere) {
  auto P = parseOrDie(R"(
    // leading
    class A { /* inline */ field f: A; }
    class Main { static method main() { x = new A; /* trailing */ } }
  )");
  EXPECT_TRUE(P->typeByName("A").isValid());
}

// --- Error cases: each must produce a located, specific diagnostic. ---

TEST(ParserErrors, MissingEntry) {
  EXPECT_NE(parseError("class A { }").find("entry"), std::string::npos);
}

TEST(ParserErrors, UnknownSuperclass) {
  EXPECT_NE(parseError("class A extends Nope { } "
                       "class Main { static method main() { } }")
                .find("Nope"),
            std::string::npos);
}

TEST(ParserErrors, UnknownTypeInAlloc) {
  EXPECT_NE(parseError("class Main { static method main() { x = new Zed; } }")
                .find("Zed"),
            std::string::npos);
}

TEST(ParserErrors, UnterminatedClass) {
  EXPECT_NE(parseError("class A { field f: A;").find("unterminated"),
            std::string::npos);
}

TEST(ParserErrors, MalformedStatement) {
  std::string Err = parseError(
      "class Main { static method main() { x + y; } }");
  EXPECT_NE(Err.find(":"), std::string::npos) << "diagnostic has location";
}

TEST(ParserErrors, MissingSemicolon) {
  EXPECT_NE(parseError("class A { field f: A } "
                       "class Main { static method main() { } }")
                .find("';'"),
            std::string::npos);
}

TEST(ParserErrors, DuplicateClass) {
  EXPECT_NE(parseError("class A { } class A { } "
                       "class Main { static method main() { } }")
                .find("duplicate"),
            std::string::npos);
}

TEST(ParserErrors, DuplicateField) {
  EXPECT_NE(parseError("class A { field f: A; field f: A; } "
                       "class Main { static method main() { } }")
                .find("duplicate"),
            std::string::npos);
}

TEST(ParserErrors, InheritanceCycle) {
  EXPECT_NE(parseError("class A extends B { } class B extends A { } "
                       "class Main { static method main() { } }")
                .find("cycle"),
            std::string::npos);
}

TEST(ParserErrors, UnresolvedStaticCall) {
  EXPECT_NE(parseError("class Main { static method main() { Main::nope(); } }")
                .find("nope"),
            std::string::npos);
}

TEST(ParserErrors, AmbiguousUnqualifiedField) {
  std::string Err = parseError(R"(
    class A { field f: A; }
    class B { field f: B; }
    class Main { static method main() { a = new A; a.f = a; } }
  )");
  EXPECT_NE(Err.find("ambiguous"), std::string::npos);
}

TEST(ParserErrors, QualifiedFieldResolvesAmbiguity) {
  auto P = parseOrDie(R"(
    class A { field f: A; }
    class B { field f: B; }
    class Main { static method main() { a = new A; a.A::f = a; } }
  )");
  EXPECT_TRUE(P->typeByName("A").isValid());
}

TEST(ParserErrors, StaticAbstractRejected) {
  EXPECT_NE(parseError("class A { static abstract method m(); } "
                       "class Main { static method main() { } }")
                .find("static and abstract"),
            std::string::npos);
}

TEST(ParserErrors, ErrorHasLineAndColumn) {
  std::string Err = parseError("class A {\n  field : A;\n}");
  EXPECT_EQ(Err.substr(0, 2), "2:");
}
