//===-- tests/ir/RoundTripTest.cpp -------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property: printProgram() emits valid .mj that reparses to a structurally
// identical program — and printing THAT parse reproduces the same text
// (print/parse is idempotent after one round).
//
//===----------------------------------------------------------------------===//

#include "ir/PrettyPrinter.h"

#include "../TestUtil.h"
#include "workload/BenchmarkPrograms.h"
#include "workload/SyntheticBuilder.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::test;

static void expectRoundTrips(const Program &P) {
  std::string Text = printProgram(P);
  std::string Err;
  auto P2 = parseProgram(Text, Err);
  ASSERT_TRUE(P2) << "reparse failed: " << Err << "\n--- text ---\n" << Text;
  EXPECT_EQ(P.numTypes(), P2->numTypes());
  EXPECT_EQ(P.numFields(), P2->numFields());
  EXPECT_EQ(P.numMethods(), P2->numMethods());
  EXPECT_EQ(P.numObjs(), P2->numObjs());
  EXPECT_EQ(P.numCallSites(), P2->numCallSites());
  EXPECT_EQ(P.numCastSites(), P2->numCastSites());
  EXPECT_EQ(printProgram(*P2), Text) << "second print must be identical";
}

TEST(RoundTrip, HandWrittenProgram) {
  auto P = parseOrDie(R"(
    class A {
      field f: A;
      static field s: A;
      method m(p) { this.f = p; r = this.f; return r; }
    }
    class B extends A {
      method m(p) { return p; }
      abstract method n(q);
    }
    class Main {
      static method main() {
        x = new A;
        y = new B;
        x.m(y);
        r = x.m(y);
        c = (B) r;
        A::s = x;
        t = A::s;
        arr = new B[];
        arr[] = y;
        e = arr[];
        z = null;
        sp = special y.A::m(x);
      }
    }
  )");
  expectRoundTrips(*P);
}

/// Property sweep: every synthetic workload round-trips.
class RoundTripWorkloadTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RoundTripWorkloadTest, SyntheticProgramsRoundTrip) {
  workload::WorkloadSpec Spec;
  Spec.Seed = GetParam();
  Spec.Modules = 2 + GetParam() % 3;
  Spec.ElemFamilies = 2 + GetParam() % 3;
  Spec.WrapDepth = GetParam() % 3;
  auto P = workload::buildSyntheticProgram(Spec);
  expectRoundTrips(*P);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripWorkloadTest,
                         ::testing::Range(1u, 9u));

/// Every benchmark profile round-trips too: the profiles exercise knob
/// combinations (exceptions, arrays, static fields, deep wrappers) the
/// plain seed sweep above does not.
class RoundTripBenchmarkTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTripBenchmarkTest, BenchmarkProfilesRoundTrip) {
  auto P = workload::buildBenchmarkProgram(GetParam(), /*Scale=*/0.05);
  expectRoundTrips(*P);
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, RoundTripBenchmarkTest,
    ::testing::ValuesIn(workload::benchmarkNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });
