//===-- tests/ir/ProgramBuilderTest.cpp --------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::ir;

TEST(ProgramBuilder, ObjectAndNullAreImplicit) {
  ProgramBuilder B;
  B.declClass("Main");
  B.method("Main", "main", {}, /*IsStatic=*/true);
  std::string Err;
  auto P = B.finish(Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_TRUE(P->typeByName("Object").isValid());
  EXPECT_TRUE(P->typeByName("null").isValid());
  EXPECT_EQ(P->type(P->typeByName("Main")).Super, P->objectType());
  EXPECT_EQ(P->obj(Program::nullObj()).Type, P->nullType());
}

TEST(ProgramBuilder, LocalsAreImplicitlyDeclared) {
  ProgramBuilder B;
  B.declClass("A");
  B.method("A", "main", {}, true).alloc("x", "A").copy("y", "x");
  std::string Err;
  auto P = B.finish(Err);
  ASSERT_TRUE(P) << Err;
  // this is absent (static), params absent, $ret + x + y present.
  const MethodInfo &M = P->method(P->entryMethod());
  EXPECT_FALSE(M.This.isValid());
  EXPECT_TRUE(M.Ret.isValid());
  EXPECT_EQ(M.Body.size(), 2u);
}

TEST(ProgramBuilder, InstanceMethodsGetThis) {
  ProgramBuilder B;
  B.declClass("A");
  B.method("A", "m", {"p", "q"}).ret("p");
  B.declClass("Main");
  B.method("Main", "main", {}, true);
  std::string Err;
  auto P = B.finish(Err);
  ASSERT_TRUE(P) << Err;
  const MethodInfo &M = P->method(P->methodBySignature("A.m/2"));
  EXPECT_TRUE(M.This.isValid());
  EXPECT_EQ(P->var(M.This).Name, "this");
  EXPECT_EQ(M.Params.size(), 2u);
}

TEST(ProgramBuilder, AllocationSitesAreNumbered) {
  ProgramBuilder B;
  B.declClass("A");
  B.declClass("Main");
  B.method("Main", "main", {}, true)
      .alloc("x", "A")
      .alloc("y", "A")
      .alloc("z", "A");
  std::string Err;
  auto P = B.finish(Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_EQ(P->numObjs(), 4u) << "3 sites + o_null";
  for (uint32_t I = 1; I < 4; ++I)
    EXPECT_EQ(P->obj(ObjId(I)).Type, P->typeByName("A"));
}

TEST(ProgramBuilder, SharedArrayElementField) {
  ProgramBuilder B;
  B.declClass("A");
  B.declClass("B");
  B.declClass("Main");
  B.method("Main", "main", {}, true).alloc("x", "A[]").alloc("y", "B[]");
  std::string Err;
  auto P = B.finish(Err);
  ASSERT_TRUE(P) << Err;
  TypeId ArrA = P->typeByName("A[]"), ArrB = P->typeByName("B[]");
  ASSERT_EQ(P->type(ArrA).Fields.size(), 1u);
  ASSERT_EQ(P->type(ArrB).Fields.size(), 1u);
  EXPECT_EQ(P->type(ArrA).Fields[0], P->type(ArrB).Fields[0])
      << "all arrays share the global \"[]\" element field";
}

TEST(ProgramBuilder, StaticCallsResolveThroughSuperclasses) {
  ProgramBuilder B;
  B.declClass("A");
  B.method("A", "helper", {"x"}, true).ret("x");
  B.declClass("B", "A");
  B.declClass("Main");
  B.method("Main", "main", {}, true)
      .alloc("v", "A")
      .scall("r", "B", "helper", {"v"}); // inherited static
  std::string Err;
  auto P = B.finish(Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_EQ(P->callSite(CallSiteId(0)).Direct,
            P->methodBySignature("A.helper/1"));
}

TEST(ProgramBuilder, ErrorOnStaticCallToInstanceMethod) {
  ProgramBuilder B;
  B.declClass("A");
  B.method("A", "m", {});
  B.declClass("Main");
  B.method("Main", "main", {}, true).scall("", "A", "m", {});
  std::string Err;
  EXPECT_EQ(B.finish(Err), nullptr);
  EXPECT_NE(Err.find("instance method"), std::string::npos);
}

TEST(ProgramBuilder, ErrorOnAllocatingNullType) {
  ProgramBuilder B;
  B.declClass("Main");
  B.method("Main", "main", {}, true).alloc("x", "null");
  std::string Err;
  EXPECT_EQ(B.finish(Err), nullptr);
  EXPECT_NE(Err.find("null"), std::string::npos);
}

TEST(ProgramBuilder, ErrorOnNonStaticEntry) {
  ProgramBuilder B;
  B.declClass("Main");
  B.method("Main", "main", {});
  std::string Err;
  EXPECT_EQ(B.finish(Err), nullptr);
}

TEST(ProgramBuilder, ErrorOnDuplicateMethod) {
  ProgramBuilder B;
  B.declClass("A");
  B.method("A", "m", {"x"});
  B.method("A", "m", {"y"});
  B.declClass("Main");
  B.method("Main", "main", {}, true);
  std::string Err;
  EXPECT_EQ(B.finish(Err), nullptr);
  EXPECT_NE(Err.find("duplicate"), std::string::npos);
}

TEST(ProgramBuilder, OverloadByArityIsAllowed) {
  ProgramBuilder B;
  B.declClass("A");
  B.method("A", "m", {});
  B.method("A", "m", {"x"});
  B.declClass("Main");
  B.method("Main", "main", {}, true);
  std::string Err;
  auto P = B.finish(Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_TRUE(P->methodBySignature("A.m/0").isValid());
  EXPECT_TRUE(P->methodBySignature("A.m/1").isValid());
}

TEST(ProgramBuilder, ExplicitEntrySelection) {
  ProgramBuilder B;
  B.declClass("App");
  B.method("App", "start", {}, true);
  B.setEntry("App", "start");
  std::string Err;
  auto P = B.finish(Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_EQ(P->method(P->entryMethod()).Signature, "App.start/0");
}

TEST(ProgramBuilder, DescribeObjIsReadable) {
  ProgramBuilder B;
  B.declClass("A");
  B.declClass("Main");
  B.method("Main", "main", {}, true).alloc("x", "A");
  std::string Err;
  auto P = B.finish(Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_EQ(P->describeObj(ObjId(1)), "o1<A>@Main.main/0");
  EXPECT_EQ(P->describeObj(Program::nullObj()), "o0<null>");
}
