//===-- tests/ir/PrettyPrinterTest.cpp ---------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/PrettyPrinter.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::test;

namespace {

/// Prints the Nth statement of a method.
std::string stmtText(const Program &P, const char *Sig, size_t N) {
  const MethodInfo &M = P.method(P.methodBySignature(Sig));
  EXPECT_LT(N, M.Body.size());
  return printStmt(P, M.Body[N]);
}

} // namespace

TEST(PrettyPrinter, StatementForms) {
  auto P = parseOrDie(R"(
    class A {
      field f: A;
      static field s: A;
      method m(p) { return p; }
    }
    class Main {
      static method main() {
        x = new A;
        y = x;
        z = null;
        x.f = y;
        w = x.f;
        A::s = x;
        t = A::s;
        c = (A) y;
        r = x.m(y);
        u = Main::id(x);
        sp = special x.A::m(y);
        arr = new A[];
        arr[] = x;
        e = arr[];
        throw x;
        cc = catch A;
      }
      static method id(a) { return a; }
    }
  )");
  const char *Main = "Main.main/0";
  EXPECT_EQ(stmtText(*P, Main, 0), "x = new A;");
  EXPECT_EQ(stmtText(*P, Main, 1), "y = x;");
  EXPECT_EQ(stmtText(*P, Main, 2), "z = null;");
  EXPECT_EQ(stmtText(*P, Main, 3), "x.A::f = y;");
  EXPECT_EQ(stmtText(*P, Main, 4), "w = x.A::f;");
  EXPECT_EQ(stmtText(*P, Main, 5), "A::s = x;");
  EXPECT_EQ(stmtText(*P, Main, 6), "t = A::s;");
  EXPECT_EQ(stmtText(*P, Main, 7), "c = (A) y;");
  EXPECT_EQ(stmtText(*P, Main, 8), "r = x.m(y);");
  EXPECT_EQ(stmtText(*P, Main, 9), "u = Main::id(x);");
  EXPECT_EQ(stmtText(*P, Main, 10), "sp = special x.A::m(y);");
  EXPECT_EQ(stmtText(*P, Main, 11), "arr = new A[];");
  EXPECT_EQ(stmtText(*P, Main, 12), "arr[] = x;");
  EXPECT_EQ(stmtText(*P, Main, 13), "e = arr[];");
  EXPECT_EQ(stmtText(*P, Main, 14), "throw x;");
  EXPECT_EQ(stmtText(*P, Main, 15), "cc = catch A;");
  EXPECT_EQ(stmtText(*P, "A.m/1", 0), "return p;");
}

TEST(PrettyPrinter, ResultlessCallsPrintWithoutAssignment) {
  auto P = parseOrDie(R"(
    class A { method m() { return this; } }
    class Main { static method main() { x = new A; x.m(); } }
  )");
  EXPECT_EQ(stmtText(*P, "Main.main/0", 1), "x.m();");
}

TEST(PrettyPrinter, ProgramHeaderAndMembers) {
  auto P = parseOrDie(R"(
    class A { field f: A; }
    class B extends A { abstract method m(p, q); }
    class Main { static method main() { } }
  )");
  std::string Text = printProgram(*P);
  EXPECT_NE(Text.find("class A {"), std::string::npos);
  EXPECT_NE(Text.find("class B extends A {"), std::string::npos);
  EXPECT_NE(Text.find("field f: A;"), std::string::npos);
  EXPECT_NE(Text.find("abstract method m(p, q);"), std::string::npos);
  EXPECT_NE(Text.find("static method main()"), std::string::npos);
  EXPECT_EQ(Text.find("class Object"), std::string::npos)
      << "implicit classes are not printed";
  EXPECT_EQ(Text.find("class null"), std::string::npos);
}

TEST(PrettyPrinter, ArrayTypesAreNotPrintedAsClasses) {
  auto P = parseOrDie(R"(
    class A { }
    class Main { static method main() { x = new A[]; } }
  )");
  std::string Text = printProgram(*P);
  EXPECT_EQ(Text.find("class A[]"), std::string::npos);
  EXPECT_NE(Text.find("x = new A[];"), std::string::npos);
}
