//===-- tests/ir/LexerTest.cpp -----------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Lexer.h"

#include <gtest/gtest.h>

using namespace mahjong::ir;

static std::vector<TokKind> kinds(std::string_view Src) {
  std::vector<TokKind> Kinds;
  for (const Token &T : tokenize(Src))
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(Lexer, EmptyInputYieldsEof) {
  EXPECT_EQ(kinds(""), (std::vector<TokKind>{TokKind::Eof}));
  EXPECT_EQ(kinds("   \n\t "), (std::vector<TokKind>{TokKind::Eof}));
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto Toks = tokenize("class Foo extends Bar field method static "
                       "abstract new null return special foo_1 $ret");
  std::vector<TokKind> Want = {
      TokKind::KwClass,  TokKind::Ident,     TokKind::KwExtends,
      TokKind::Ident,    TokKind::KwField,   TokKind::KwMethod,
      TokKind::KwStatic, TokKind::KwAbstract, TokKind::KwNew,
      TokKind::KwNull,   TokKind::KwReturn,  TokKind::KwSpecial,
      TokKind::Ident,    TokKind::Ident,     TokKind::Eof};
  ASSERT_EQ(Toks.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_EQ(Toks[I].Kind, Want[I]) << "token " << I;
  EXPECT_EQ(Toks[1].Text, "Foo");
  EXPECT_EQ(Toks[12].Text, "foo_1");
  EXPECT_EQ(Toks[13].Text, "$ret");
}

TEST(Lexer, Punctuation) {
  EXPECT_EQ(kinds("{ } ( ) [ ] ; , . = : ::"),
            (std::vector<TokKind>{
                TokKind::LBrace, TokKind::RBrace, TokKind::LParen,
                TokKind::RParen, TokKind::LBracket, TokKind::RBracket,
                TokKind::Semi, TokKind::Comma, TokKind::Dot, TokKind::Eq,
                TokKind::Colon, TokKind::ColonColon, TokKind::Eof}));
}

TEST(Lexer, ColonColonIsOneToken) {
  auto Toks = tokenize("A::f");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[1].Kind, TokKind::ColonColon);
}

TEST(Lexer, LineComments) {
  EXPECT_EQ(kinds("x // comment with class new null\ny"),
            (std::vector<TokKind>{TokKind::Ident, TokKind::Ident,
                                  TokKind::Eof}));
}

TEST(Lexer, BlockComments) {
  EXPECT_EQ(kinds("x /* multi \n line */ y"),
            (std::vector<TokKind>{TokKind::Ident, TokKind::Ident,
                                  TokKind::Eof}));
  // Unterminated block comment consumes to end of input, no crash.
  EXPECT_EQ(kinds("x /* never closed"),
            (std::vector<TokKind>{TokKind::Ident, TokKind::Eof}));
}

TEST(Lexer, TracksLineAndColumn) {
  auto Toks = tokenize("a\n  b");
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[0].Col, 1u);
  EXPECT_EQ(Toks[1].Line, 2u);
  EXPECT_EQ(Toks[1].Col, 3u);
}

TEST(Lexer, InvalidCharactersBecomeErrorTokens) {
  auto Toks = tokenize("a # b");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[1].Kind, TokKind::Error);
  EXPECT_EQ(Toks[1].Text, "#");
}

TEST(Lexer, TokKindNamesAreNonEmpty) {
  for (int K = 0; K <= static_cast<int>(TokKind::Error); ++K)
    EXPECT_FALSE(tokKindName(static_cast<TokKind>(K)).empty());
}
