//===-- tests/ir/ClassHierarchyTest.cpp --------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ClassHierarchy.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::ir;
using namespace mahjong::test;

namespace {

const char *HierarchySrc = R"(
  class A { method m() { return this; } method only_a() { return this; } }
  class B extends A { method m() { return this; } }
  class C extends B { }
  class D extends A { }
  class E { abstract method n(); }
  class F extends E { method n() { return this; } }
  class Main { static method main() { x = new A[]; y = new B[]; } }
)";

class ClassHierarchyTest : public ::testing::Test {
protected:
  void SetUp() override {
    P = parseOrDie(HierarchySrc);
    CH = std::make_unique<ClassHierarchy>(*P);
  }
  TypeId ty(const char *Name) { return P->typeByName(Name); }

  std::unique_ptr<Program> P;
  std::unique_ptr<ClassHierarchy> CH;
};

} // namespace

TEST_F(ClassHierarchyTest, ReflexiveSubtyping) {
  for (const char *Name : {"A", "B", "C", "Object"})
    EXPECT_TRUE(CH->isSubtype(ty(Name), ty(Name))) << Name;
}

TEST_F(ClassHierarchyTest, TransitiveSubtyping) {
  EXPECT_TRUE(CH->isSubtype(ty("C"), ty("B")));
  EXPECT_TRUE(CH->isSubtype(ty("C"), ty("A")));
  EXPECT_TRUE(CH->isSubtype(ty("C"), P->objectType()));
  EXPECT_FALSE(CH->isSubtype(ty("A"), ty("C")));
  EXPECT_FALSE(CH->isSubtype(ty("D"), ty("B"))) << "siblings unrelated";
}

TEST_F(ClassHierarchyTest, EverythingIsAnObject) {
  EXPECT_TRUE(CH->isSubtype(ty("A[]"), P->objectType()));
  EXPECT_TRUE(CH->isSubtype(P->nullType(), P->objectType()));
}

TEST_F(ClassHierarchyTest, NullIsBottom) {
  for (const char *Name : {"A", "B", "A[]"})
    EXPECT_TRUE(CH->isSubtype(P->nullType(), ty(Name))) << Name;
  EXPECT_FALSE(CH->isSubtype(ty("A"), P->nullType()));
}

TEST_F(ClassHierarchyTest, ArraysAreCovariant) {
  EXPECT_TRUE(CH->isSubtype(ty("B[]"), ty("A[]")));
  EXPECT_FALSE(CH->isSubtype(ty("A[]"), ty("B[]")));
  EXPECT_FALSE(CH->isSubtype(ty("A[]"), ty("A"))) << "array vs scalar";
  EXPECT_FALSE(CH->isSubtype(ty("A"), ty("A[]")));
}

TEST_F(ClassHierarchyTest, DispatchFindsOverride) {
  EXPECT_EQ(CH->resolveVirtual(ty("B"), "m/0"),
            P->methodBySignature("B.m/0"));
  EXPECT_EQ(CH->resolveVirtual(ty("C"), "m/0"),
            P->methodBySignature("B.m/0")) << "inherited override";
  EXPECT_EQ(CH->resolveVirtual(ty("A"), "m/0"),
            P->methodBySignature("A.m/0"));
  EXPECT_EQ(CH->resolveVirtual(ty("D"), "m/0"),
            P->methodBySignature("A.m/0")) << "inherited base method";
}

TEST_F(ClassHierarchyTest, DispatchInheritsNonOverridden) {
  EXPECT_EQ(CH->resolveVirtual(ty("C"), "only_a/0"),
            P->methodBySignature("A.only_a/0"));
}

TEST_F(ClassHierarchyTest, DispatchOnMissingMethodFails) {
  EXPECT_FALSE(CH->resolveVirtual(ty("A"), "nope/0").isValid());
  EXPECT_FALSE(CH->resolveVirtual(ty("A"), "m/3").isValid())
      << "arity is part of the dispatch key";
}

TEST_F(ClassHierarchyTest, AbstractMethodsNeverResolve) {
  EXPECT_FALSE(CH->resolveVirtual(ty("E"), "n/0").isValid());
  EXPECT_EQ(CH->resolveVirtual(ty("F"), "n/0"),
            P->methodBySignature("F.n/0"));
}

TEST_F(ClassHierarchyTest, SubclassesIncludeSelfAndDescendants) {
  const std::vector<TypeId> &Subs = CH->subclassesOf(ty("A"));
  EXPECT_EQ(Subs.size(), 4u); // A, B, C, D
  EXPECT_EQ(CH->subclassesOf(ty("C")).size(), 1u);
}

TEST_F(ClassHierarchyTest, DepthIsPathLengthFromObject) {
  EXPECT_EQ(CH->depth(P->objectType()), 0u);
  EXPECT_EQ(CH->depth(ty("A")), 1u);
  EXPECT_EQ(CH->depth(ty("C")), 3u);
}
