//===-- tests/obs/TraceTest.cpp ----------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

using namespace mahjong;
using namespace mahjong::obs;

namespace {

/// Restores a clean global-sink state around every test in this file.
class TraceTest : public ::testing::Test {
protected:
  void TearDown() override { installTraceSink(nullptr); }
};

TEST_F(TraceTest, NoSinkMeansNoOp) {
  ASSERT_EQ(currentTraceSink(), nullptr);
  EXPECT_FALSE(tracingEnabled());
  {
    ScopedSpan Span("unobserved");
    Span.arg("n", 7); // must be tolerated with no sink
    MAHJONG_SPAN("also-unobserved");
  }
  // Still nothing installed; nothing to flush and nothing leaked.
  EXPECT_EQ(currentTraceSink(), nullptr);
}

TEST_F(TraceTest, RecordsNestedSpans) {
  TraceSink Sink;
  installTraceSink(&Sink);
  {
    ScopedSpan Outer("outer");
    {
      ScopedSpan Inner("inner");
      Inner.arg("items", 3);
    }
  }
  installTraceSink(nullptr);
  EXPECT_EQ(Sink.eventCount(), 2u);
  EXPECT_EQ(Sink.laneCount(), 1u);

  std::ostringstream OS;
  Sink.write(OS);
  std::string Json = OS.str();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"items\":3"), std::string::npos);
  // Exactly one lane means exactly one thread_name metadata event.
  EXPECT_NE(Json.find("thread_name"), std::string::npos);
}

TEST_F(TraceTest, InnerSpanNestsInsideOuter) {
  TraceSink Sink;
  installTraceSink(&Sink);
  {
    ScopedSpan Outer("outer");
    ScopedSpan Inner("inner");
  }
  installTraceSink(nullptr);
  // Spans close inner-first, so the lane holds [inner, outer] and the
  // parent's interval must contain the child's.
  const TraceSink::Lane &L = Sink.laneForCurrentThread();
  ASSERT_EQ(L.Events.size(), 2u);
  const TraceSink::Event &Inner = L.Events[0];
  const TraceSink::Event &Outer = L.Events[1];
  EXPECT_STREQ(Inner.Name, "inner");
  EXPECT_STREQ(Outer.Name, "outer");
  EXPECT_LE(Outer.StartNs, Inner.StartNs);
  EXPECT_GE(Outer.StartNs + Outer.DurNs, Inner.StartNs + Inner.DurNs);
}

TEST_F(TraceTest, EachThreadGetsItsOwnLane) {
  TraceSink Sink;
  installTraceSink(&Sink);
  constexpr unsigned Threads = 4;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([] {
      for (int I = 0; I < 10; ++I)
        MAHJONG_SPAN("worker-span");
    });
  for (std::thread &T : Ts)
    T.join();
  installTraceSink(nullptr);
  EXPECT_EQ(Sink.laneCount(), Threads);
  EXPECT_EQ(Sink.eventCount(), Threads * 10u);
}

TEST_F(TraceTest, LaneCacheSurvivesSinkSwap) {
  // The thread-local lane cache is keyed by sink generation: destroying
  // a sink and installing a fresh one (possibly at the same address)
  // must route this thread's spans to the new sink's lanes.
  auto First = std::make_unique<TraceSink>();
  installTraceSink(First.get());
  { ScopedSpan Span("one"); }
  installTraceSink(nullptr);
  EXPECT_EQ(First->eventCount(), 1u);
  uint64_t FirstGen = First->generation();
  First.reset();

  TraceSink Second;
  EXPECT_NE(Second.generation(), FirstGen);
  installTraceSink(&Second);
  { ScopedSpan Span("two"); }
  installTraceSink(nullptr);
  EXPECT_EQ(Second.eventCount(), 1u);
  EXPECT_EQ(Second.laneCount(), 1u);
}

TEST_F(TraceTest, WriteFileRoundTrips) {
  TraceSink Sink;
  installTraceSink(&Sink);
  { MAHJONG_SPAN("to-disk"); }
  installTraceSink(nullptr);
  std::string Path = ::testing::TempDir() + "trace_test_out.json";
  std::string Err;
  ASSERT_TRUE(Sink.writeFile(Path, Err)) << Err;
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_NE(Buf.str().find("to-disk"), std::string::npos);

  std::string BadErr;
  EXPECT_FALSE(Sink.writeFile("/nonexistent-dir/x/y.json", BadErr));
  EXPECT_FALSE(BadErr.empty());
}

} // namespace
