//===-- tests/obs/MetricsTest.cpp --------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "pta/PointerAnalysis.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

using namespace mahjong;
using namespace mahjong::obs;

namespace {

TEST(Metrics, SameNameSameMetric) {
  MetricsRegistry Reg;
  Counter &A = Reg.counter("pops");
  Counter &B = Reg.counter("pops");
  EXPECT_EQ(&A, &B);
  A.inc(3);
  B.inc(4);
  EXPECT_EQ(Reg.counter("pops").value(), 7u);
  EXPECT_NE(static_cast<void *>(&Reg.counter("pops")),
            static_cast<void *>(&Reg.counter("pops2")));
}

TEST(Metrics, JsonIsSortedAndInsertionOrderFree) {
  // Two registries fed the same metrics in opposite orders must render
  // byte-identically — the property the golden CLI test leans on.
  MetricsRegistry A, B;
  A.counter("z.last").set(1);
  A.counter("a.first").set(2);
  A.gauge("m.middle").set(0.5);
  B.gauge("m.middle").set(0.5);
  B.counter("a.first").set(2);
  B.counter("z.last").set(1);
  EXPECT_EQ(A.toJson(), B.toJson());
  std::string J = A.toJson();
  EXPECT_LT(J.find("a.first"), J.find("z.last"));
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"gauges\""), std::string::npos);
  EXPECT_NE(J.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, HistogramJsonCarriesSummaryAndBuckets) {
  MetricsRegistry Reg;
  LogHistogram &H = Reg.histogram("latency");
  for (uint64_t V = 0; V < 100; ++V)
    H.record(V);
  std::string J = Reg.toJson();
  EXPECT_NE(J.find("\"latency\""), std::string::npos);
  EXPECT_NE(J.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(J.find("\"sum\": 4950"), std::string::npos);
  EXPECT_NE(J.find("\"max\": 99"), std::string::npos);
  EXPECT_NE(J.find("\"buckets\""), std::string::npos);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry Reg;
  Reg.counter("pta.worklist_pops").set(12);
  Reg.gauge("phase.parse_seconds").set(1.5);
  LogHistogram &H = Reg.histogram("serve.latency_ns");
  H.record(10);
  H.record(100000);
  std::string P = Reg.toPrometheus();
  // Names are prefixed and sanitized for the exposition format.
  EXPECT_NE(P.find("# TYPE mahjong_pta_worklist_pops counter"),
            std::string::npos);
  EXPECT_NE(P.find("mahjong_pta_worklist_pops 12"), std::string::npos);
  EXPECT_NE(P.find("# TYPE mahjong_phase_parse_seconds gauge"),
            std::string::npos);
  EXPECT_NE(P.find("# TYPE mahjong_serve_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(P.find("mahjong_serve_latency_ns_count 2"), std::string::npos);
  EXPECT_NE(P.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(P.find("_sum 100010"), std::string::npos);
}

TEST(Metrics, ConcurrentUpdatesAreSafe) {
  MetricsRegistry Reg;
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 10000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&Reg] {
      // Mixed lookup + update from every thread: lookups lock, updates
      // are atomic on the stable references.
      Counter &C = Reg.counter("shared.counter");
      LogHistogram &H = Reg.histogram("shared.hist");
      for (unsigned I = 0; I < PerThread; ++I) {
        C.inc();
        H.record(I);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Reg.counter("shared.counter").value(), Threads * PerThread);
  EXPECT_EQ(Reg.histogram("shared.hist").count(), Threads * PerThread);
}

TEST(Metrics, ExportStatsCoversEveryPTAStatsField) {
  pta::PTAStats S;
  S.Seconds = 1.25;
  S.TimedOut = true;
  S.NumContexts = 1;
  S.NumCSVars = 2;
  S.NumCSObjs = 3;
  S.NumCSMethods = 4;
  S.NumReachableMethods = 5;
  S.VarPtsEntries = 6;
  S.WorklistPops = 7;
  S.SCCsCollapsed = 8;
  S.NodesCollapsed = 9;
  S.FilterBitmapHits = 10;
  S.SetBytes = 11;
  S.WorkingSetBytes = 12;
  S.ParallelWaves = 13;
  S.DeltasBuffered = 14;
  S.DeltasMerged = 15;
  S.ShardImbalancePct = 16.5;

  MetricsRegistry Reg;
  pta::exportStats(S, Reg);
  EXPECT_EQ(Reg.counter("pta.timed_out").value(), 1u);
  EXPECT_EQ(Reg.counter("pta.num_contexts").value(), 1u);
  EXPECT_EQ(Reg.counter("pta.num_cs_vars").value(), 2u);
  EXPECT_EQ(Reg.counter("pta.num_cs_objs").value(), 3u);
  EXPECT_EQ(Reg.counter("pta.num_cs_methods").value(), 4u);
  EXPECT_EQ(Reg.counter("pta.num_reachable_methods").value(), 5u);
  EXPECT_EQ(Reg.counter("pta.var_pts_entries").value(), 6u);
  EXPECT_EQ(Reg.counter("pta.worklist_pops").value(), 7u);
  EXPECT_EQ(Reg.counter("pta.sccs_collapsed").value(), 8u);
  EXPECT_EQ(Reg.counter("pta.nodes_collapsed").value(), 9u);
  EXPECT_EQ(Reg.counter("pta.filter_bitmap_hits").value(), 10u);
  EXPECT_EQ(Reg.counter("pta.set_bytes").value(), 11u);
  EXPECT_EQ(Reg.counter("pta.working_set_bytes").value(), 12u);
  EXPECT_EQ(Reg.counter("pta.parallel_waves").value(), 13u);
  EXPECT_EQ(Reg.counter("pta.deltas_buffered").value(), 14u);
  EXPECT_EQ(Reg.counter("pta.deltas_merged").value(), 15u);
  EXPECT_DOUBLE_EQ(Reg.gauge("pta.seconds").value(), 1.25);
  EXPECT_DOUBLE_EQ(Reg.gauge("pta.shard_imbalance_pct").value(), 16.5);
}

} // namespace
