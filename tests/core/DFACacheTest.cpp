//===-- tests/core/DFACacheTest.cpp ------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Subset construction (Algorithm 3) on the shared cache: determinism,
// sinks, sharing across roots, and SINGLETYPE-CHECK.
//
//===----------------------------------------------------------------------===//

#include "core/DFACache.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::test;

namespace {

struct Built {
  std::unique_ptr<Program> P;
  std::unique_ptr<ClassHierarchy> CH;
  std::unique_ptr<pta::PTAResult> R;
  std::unique_ptr<FieldPointsToGraph> G;
  std::unique_ptr<DFACache> Cache;
};

Built buildGraph(const GraphSpec &Spec) {
  Built B;
  B.P = buildGraphProgram(Spec);
  B.CH = std::make_unique<ClassHierarchy>(*B.P);
  pta::AnalysisOptions Opts;
  B.R = pta::runPointerAnalysis(*B.P, *B.CH, Opts);
  B.G = std::make_unique<FieldPointsToGraph>(*B.R);
  B.Cache = std::make_unique<DFACache>(*B.G);
  return B;
}

FieldId field(const Built &B, unsigned T, unsigned F) {
  return B.P->findField(B.P->typeByName("T" + std::to_string(T)),
                        "f" + std::to_string(F));
}

} // namespace

TEST(DFACache, ErrorStateIsStateZeroWithEmptyOutput) {
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  G.TypeOf = {0};
  Built B = buildGraph(G);
  EXPECT_EQ(DFACache::errorState().idx(), 0u);
  EXPECT_TRUE(B.Cache->outputs(DFACache::errorState()).empty());
}

TEST(DFACache, NondeterminismCollapsesIntoSetStates) {
  // o0 --f0--> {o1, o2}: the DFA state after f0 is the two-object set.
  GraphSpec G;
  G.NumTypes = 2;
  G.NumFields = 1;
  G.TypeOf = {0, 1, 1};
  G.Edges = {{0, 0, 1}, {0, 0, 2}};
  Built B = buildGraph(G);
  DFAStateId S0 = B.Cache->startFor(graphObj(0));
  DFAStateId S1 = B.Cache->next(S0, field(B, 0, 0));
  EXPECT_EQ(B.Cache->members(S1),
            (std::vector<ObjId>{graphObj(1), graphObj(2)}));
  ASSERT_EQ(B.Cache->outputs(S1).size(), 1u) << "both members are T1";
}

TEST(DFACache, MissingFieldGoesToError) {
  GraphSpec G;
  G.NumTypes = 2;
  G.NumFields = 2;
  G.TypeOf = {0, 1};
  G.Edges = {{0, 0, 1}};
  Built B = buildGraph(G);
  DFAStateId S0 = B.Cache->startFor(graphObj(0));
  DFAStateId S1 = B.Cache->next(S0, field(B, 0, 0)); // {o1, ...}
  // Probe a field id from another class that o1's set lacks entirely:
  // if the state contains o_null (via completion) we land on the null
  // sink, otherwise on q_error — never anywhere else.
  DFAStateId Sink = B.Cache->next(S1, FieldId(B.P->numFields() - 1));
  DFAStateId Again = B.Cache->next(S1, FieldId(B.P->numFields() - 1));
  EXPECT_EQ(Sink, Again) << "deterministic";
}

TEST(DFACache, NullStateSelfLoops) {
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  G.TypeOf = {0}; // field f0 unwritten -> completes to null
  Built B = buildGraph(G);
  DFAStateId S0 = B.Cache->startFor(graphObj(0));
  DFAStateId Null = B.Cache->next(S0, field(B, 0, 0));
  ASSERT_EQ(B.Cache->members(Null),
            (std::vector<ObjId>{Program::nullObj()}));
  EXPECT_EQ(B.Cache->next(Null, field(B, 0, 0)), Null)
      << "null self-loop on every field (paper §4.1)";
  EXPECT_EQ(B.Cache->next(Null, FieldId(0)), Null);
}

TEST(DFACache, StatesAreSharedAcrossRoots) {
  // Two roots reaching the same suffix object: one shared state.
  GraphSpec G;
  G.NumTypes = 2;
  G.NumFields = 1;
  G.TypeOf = {0, 0, 1};
  G.Edges = {{0, 0, 2}, {1, 0, 2}};
  Built B = buildGraph(G);
  DFAStateId A = B.Cache->startFor(graphObj(0));
  DFAStateId C = B.Cache->startFor(graphObj(1));
  DFAStateId SuffixA = B.Cache->next(A, field(B, 0, 0));
  DFAStateId SuffixC = B.Cache->next(C, field(B, 0, 0));
  EXPECT_EQ(SuffixA, SuffixC) << "shared sequential automata (paper §5)";
}

TEST(DFACache, SingleTypeCheckAcceptsHomogeneousPaths) {
  GraphSpec G; // Figure 2-like, every path single-typed
  G.NumTypes = 3;
  G.NumFields = 2;
  G.TypeOf = {0, 1, 1, 2};
  G.Edges = {{0, 0, 1}, {0, 0, 2}, {1, 1, 3}, {2, 1, 3}};
  Built B = buildGraph(G);
  EXPECT_TRUE(B.Cache->allSingletonOutputs(B.Cache->startFor(graphObj(0))));
}

TEST(DFACache, SingleTypeCheckRejectsMixedTypePaths) {
  // o0.f0 reaches a T1 and a T2 object: Condition 2 violated (Fig. 3).
  GraphSpec G;
  G.NumTypes = 3;
  G.NumFields = 1;
  G.TypeOf = {0, 1, 2};
  G.Edges = {{0, 0, 1}, {0, 0, 2}};
  Built B = buildGraph(G);
  EXPECT_FALSE(B.Cache->allSingletonOutputs(B.Cache->startFor(graphObj(0))));
}

TEST(DFACache, SingleTypeCheckRejectsObjectMixedWithNull) {
  // o0.f0 may be o1 or null (explicit null store): outputs {T1, null}.
  auto P = parseOrDie(R"(
    class A { field f: B; }
    class B { }
    class Main {
      static method main() {
        a = new A;
        b = new B;
        n = null;
        a.f = b;
        a.f = n;
      }
    }
  )");
  ClassHierarchy CH(*P);
  pta::AnalysisOptions Opts;
  auto R = pta::runPointerAnalysis(*P, CH, Opts);
  FieldPointsToGraph G(*R);
  DFACache Cache(G);
  EXPECT_FALSE(Cache.allSingletonOutputs(Cache.startFor(ObjId(1))));
}

TEST(DFACache, RepeatedViolatorQueryIsConstantTime) {
  // o0.f0 reaches a mixed-type state: the first query walks the region,
  // every later query must answer from the KnownMixed memo without any
  // BFS work (the condition-2 negative-result regression).
  GraphSpec G;
  G.NumTypes = 3;
  G.NumFields = 1;
  G.TypeOf = {0, 1, 2};
  G.Edges = {{0, 0, 1}, {0, 0, 2}};
  Built B = buildGraph(G);
  DFAStateId Start = B.Cache->startFor(graphObj(0));
  uint64_t Before = B.Cache->checkStatesVisited();
  EXPECT_FALSE(B.Cache->allSingletonOutputs(Start));
  EXPECT_GT(B.Cache->checkStatesVisited(), Before) << "first query walks";
  uint64_t AfterFirst = B.Cache->checkStatesVisited();
  for (int I = 0; I < 5; ++I)
    EXPECT_FALSE(B.Cache->allSingletonOutputs(Start));
  EXPECT_EQ(B.Cache->checkStatesVisited(), AfterFirst)
      << "repeated queries on a violator must not re-traverse its region";
}

TEST(DFACache, NegativeVerdictMemoizesAlongTheFailurePath) {
  // A chain o0 -> o1 -> {o2,o3} whose tip mixes T1 and T2: failing the
  // check from o0 marks the whole BFS path mixed, so a later query from
  // the intermediate o1 is answered without traversal.
  GraphSpec G;
  G.NumTypes = 3;
  G.NumFields = 1;
  G.TypeOf = {0, 1, 1, 2};
  G.Edges = {{0, 0, 1}, {1, 0, 2}, {1, 0, 3}};
  Built B = buildGraph(G);
  EXPECT_FALSE(B.Cache->allSingletonOutputs(B.Cache->startFor(graphObj(0))));
  uint64_t AfterRoot = B.Cache->checkStatesVisited();
  EXPECT_FALSE(B.Cache->allSingletonOutputs(B.Cache->startFor(graphObj(1))));
  EXPECT_EQ(B.Cache->checkStatesVisited(), AfterRoot)
      << "the shared suffix verdict was memoized by the first failure";
}

TEST(DFACache, MixedVerdictSharedAcrossRootsStopsEarly) {
  // Two roots funnel into the same mixed suffix: the second root's query
  // stops as soon as it touches the known-mixed shared state instead of
  // exploring past it.
  GraphSpec G;
  G.NumTypes = 4;
  G.NumFields = 1;
  G.TypeOf = {0, 3, 1, 2};
  G.Edges = {{0, 0, 2}, {0, 0, 3}, {1, 0, 2}, {1, 0, 3}};
  Built B = buildGraph(G);
  EXPECT_FALSE(B.Cache->allSingletonOutputs(B.Cache->startFor(graphObj(0))));
  uint64_t AfterFirst = B.Cache->checkStatesVisited();
  EXPECT_FALSE(B.Cache->allSingletonOutputs(B.Cache->startFor(graphObj(1))));
  uint64_t SecondCost = B.Cache->checkStatesVisited() - AfterFirst;
  EXPECT_LE(SecondCost, 2u)
      << "the second root pays for its own start plus the shared state";
}

TEST(DFACache, FrozenVerdictsMatchMutatingVerdicts) {
  GraphSpec G;
  G.NumTypes = 3;
  G.NumFields = 2;
  G.TypeOf = {0, 1, 2, 1, 1};
  G.Edges = {{0, 0, 1}, {0, 0, 2}, {3, 1, 4}};
  Built B = buildGraph(G);
  std::vector<bool> Want;
  for (unsigned I = 0; I < G.TypeOf.size(); ++I) {
    DFAStateId S = B.Cache->startFor(graphObj(I));
    B.Cache->materialize(S);
    Want.push_back(B.Cache->allSingletonOutputs(S));
  }
  B.Cache->freeze();
  for (unsigned I = 0; I < G.TypeOf.size(); ++I) {
    DFAStateId S = B.Cache->startForFrozen(graphObj(I));
    EXPECT_EQ(B.Cache->startFor(graphObj(I)), S)
        << "frozen start lookup agrees with the interning path";
    EXPECT_EQ(B.Cache->allSingletonOutputsFrozen(S), Want[I]) << "object " << I;
  }
}

TEST(DFACache, MaterializeThenFrozenQueriesAgree) {
  GraphSpec G;
  G.NumTypes = 2;
  G.NumFields = 2;
  G.TypeOf = {0, 1, 1};
  G.Edges = {{0, 0, 1}, {0, 1, 2}, {1, 0, 2}};
  Built B = buildGraph(G);
  DFAStateId S0 = B.Cache->startFor(graphObj(0));
  B.Cache->materialize(S0);
  B.Cache->freeze();
  EXPECT_TRUE(B.Cache->isFrozen());
  for (const auto &[F, T] : B.Cache->transitionsFrozen(S0))
    EXPECT_EQ(B.Cache->nextFrozen(S0, F), T);
}

TEST(DFACache, CyclesProduceFinitelyManyStates) {
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  G.TypeOf = {0, 0, 0};
  G.Edges = {{0, 0, 1}, {1, 0, 2}, {2, 0, 0}}; // 3-cycle
  Built B = buildGraph(G);
  B.Cache->materialize(B.Cache->startFor(graphObj(0)));
  EXPECT_LE(B.Cache->numStates(), 8u);
  EXPECT_TRUE(B.Cache->allSingletonOutputs(B.Cache->startFor(graphObj(0))));
}
