//===-- tests/core/GraphExportTest.cpp ---------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/GraphExport.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::test;

namespace {

const char *Src = R"(
  class A { field f: B; }
  class B { }
  class Main {
    static method main() {
      a = new A;
      b = new B;
      a.f = b;
      Main::helper();
    }
    static method helper() { }
  }
)";

struct Built {
  Analyzed A;
  std::unique_ptr<FieldPointsToGraph> G;
};

Built build() {
  Built B;
  B.A = analyze(Src);
  B.G = std::make_unique<FieldPointsToGraph>(*B.A.R);
  return B;
}

} // namespace

TEST(GraphExport, FpgDotContainsNodesAndEdges) {
  Built B = build();
  std::string Dot = fpgToDot(*B.G, ObjId(1));
  EXPECT_NE(Dot.find("digraph fpg"), std::string::npos);
  EXPECT_NE(Dot.find("o1: A"), std::string::npos);
  EXPECT_NE(Dot.find("o2: B"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"f\""), std::string::npos);
  EXPECT_EQ(Dot.find("truncated"), std::string::npos);
  EXPECT_EQ(Dot.back(), '\n');
}

TEST(GraphExport, FpgDotHonorsNodeCap) {
  Built B = build();
  std::string Dot = fpgToDot(*B.G, ObjId(1), 1);
  EXPECT_NE(Dot.find("truncated"), std::string::npos);
}

TEST(GraphExport, DfaDotMarksStartAndStates) {
  Built B = build();
  DFACache Cache(*B.G);
  std::string Dot = dfaToDot(*B.G, Cache, ObjId(1));
  EXPECT_NE(Dot.find("digraph dfa"), std::string::npos);
  EXPECT_NE(Dot.find("{o1}"), std::string::npos);
  EXPECT_NE(Dot.find("style=bold"), std::string::npos);
  EXPECT_NE(Dot.find("-> {A}"), std::string::npos);
}

TEST(GraphExport, DfaDotFlagsMixedStates) {
  // A condition-2 violation shows up as a red state.
  auto A = analyze(R"(
    class T { field f: Object; }
    class X { }
    class Y { }
    class Main {
      static method main() {
        t = new T;
        m = new X;
        t.f = m;
        n = new Y;
        t.f = n;
      }
    }
  )");
  FieldPointsToGraph G(*A.R);
  DFACache Cache(G);
  std::string Dot = dfaToDot(G, Cache, ObjId(1));
  EXPECT_NE(Dot.find("color=red"), std::string::npos);
}

TEST(GraphExport, CallGraphDotListsEdges) {
  Built B = build();
  std::string Dot = callGraphToDot(*B.A.R);
  EXPECT_NE(Dot.find("Main.main/0"), std::string::npos);
  EXPECT_NE(Dot.find("Main.helper/0"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}
