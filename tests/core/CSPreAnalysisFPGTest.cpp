//===-- tests/core/CSPreAnalysisFPGTest.cpp -----------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The FPG builder projects ANY pre-analysis onto base objects — the
// MahjongOptions::PreKind extension relies on it. These tests feed it
// context-sensitive results and check the projection and the downstream
// merging behavior.
//
//===----------------------------------------------------------------------===//

#include "core/FieldPointsToGraph.h"

#include "../TestUtil.h"
#include "core/Mahjong.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::test;

namespace {

// The identity-method conflation example: ci sees both boxes' contents
// as {T, U}; 2obj sees them exactly.
const char *BoxSrc = R"(
  class T { }
  class U { }
  class Box {
    field val: Object;
    method set(v) { this.val = v; return this; }
  }
  class Main {
    static method main() {
      bt = new Box;
      bu = new Box;
      t = new T;
      u = new U;
      bt.set(t);
      bu.set(u);
    }
  }
)";

} // namespace

TEST(CSPreAnalysisFPG, ProjectionCollapsesHeapContexts) {
  auto A = analyze(BoxSrc, pta::ContextKind::Object, 2);
  FieldPointsToGraph G(*A.R);
  FieldId Val = A.P->findField(A.P->typeByName("Box"), "val");
  // Under the 2obj pre-analysis the two boxes' contents are exact.
  const std::vector<ObjId> &BT = G.succ(ObjId(1), Val);
  ASSERT_EQ(BT.size(), 1u);
  EXPECT_EQ(A.P->type(A.P->obj(BT[0]).Type).Name, "T");
  const std::vector<ObjId> &BU = G.succ(ObjId(2), Val);
  ASSERT_EQ(BU.size(), 1u);
  EXPECT_EQ(A.P->type(A.P->obj(BU[0]).Type).Name, "U");
}

TEST(CSPreAnalysisFPG, CiProjectionIsCoarser) {
  auto A = analyze(BoxSrc, pta::ContextKind::Insensitive);
  FieldPointsToGraph G(*A.R);
  FieldId Val = A.P->findField(A.P->typeByName("Box"), "val");
  EXPECT_EQ(G.succ(ObjId(1), Val).size(), 2u)
      << "ci conflates the shared set() param";
}

TEST(CSPreAnalysisFPG, SharperPreAnalysisSplitsSpuriousViolators) {
  // Under ci both boxes are condition-2 violators (mixed {T, U}); under
  // the 2obj pre-analysis they are single-typed but different — so they
  // still don't merge, correctly, while losing the "violator" status.
  auto P = parseOrDie(BoxSrc);
  ClassHierarchy CH(*P);

  MahjongOptions Ci;
  MahjongResult MRci = buildMahjongHeap(*P, CH, Ci);
  MahjongOptions Obj;
  Obj.PreKind = pta::ContextKind::Object;
  Obj.PreK = 2;
  MahjongResult MRobj = buildMahjongHeap(*P, CH, Obj);

  EXPECT_NE(MRci.MOM[1], MRci.MOM[2]);
  EXPECT_NE(MRobj.MOM[1], MRobj.MOM[2]);

  DFACache CacheCi(*MRci.FPG), CacheObj(*MRobj.FPG);
  EXPECT_FALSE(CacheCi.allSingletonOutputs(CacheCi.startFor(ObjId(1))))
      << "ci: mixed-type field -> condition-2 violation";
  EXPECT_TRUE(CacheObj.allSingletonOutputs(CacheObj.startFor(ObjId(1))))
      << "2obj: exact single-typed field";
}

TEST(CSPreAnalysisFPG, SharperPreAnalysisEnablesRealMerges) {
  // Two boxes that DO store the same type, but through a shared helper:
  // ci mixes a third type in via another call site, blocking the merge;
  // 2obj separates the helper contexts and the boxes merge.
  auto P = parseOrDie(R"(
    class T { }
    class U { }
    class Box {
      field val: Object;
      method set(v) { this.val = v; return this; }
    }
    class Main {
      static method main() {
        b1 = new Box;   // o1: stores T
        b2 = new Box;   // o2: stores T
        b3 = new Box;   // o3: stores U
        t1 = new T;
        t2 = new T;
        u = new U;
        b1.set(t1);
        b2.set(t2);
        b3.set(u);
      }
    }
  )");
  ClassHierarchy CH(*P);
  MahjongOptions Ci;
  MahjongResult MRci = buildMahjongHeap(*P, CH, Ci);
  EXPECT_NE(MRci.MOM[1], MRci.MOM[2])
      << "ci conflation blocks the legitimate merge";

  MahjongOptions Obj;
  Obj.PreKind = pta::ContextKind::Object;
  Obj.PreK = 2;
  MahjongResult MRobj = buildMahjongHeap(*P, CH, Obj);
  EXPECT_EQ(MRobj.MOM[1], MRobj.MOM[2])
      << "the 2obj pre-analysis recovers it";
  EXPECT_NE(MRobj.MOM[1], MRobj.MOM[3]) << "the U box stays apart";
  EXPECT_LT(MRobj.Modeling.NumClasses, MRci.Modeling.NumClasses);
}
