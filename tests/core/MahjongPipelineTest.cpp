//===-- tests/core/MahjongPipelineTest.cpp -----------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// End-to-end properties of the full pipeline (Figure 5): soundness (the
// MAHJONG-based analysis over-approximates the baseline's call graph) and
// precision (the type-dependent client metrics match the baseline) on
// synthetic workloads, for all three context flavours.
//
//===----------------------------------------------------------------------===//

#include "core/Mahjong.h"

#include "../TestUtil.h"
#include "clients/Clients.h"
#include "workload/BenchmarkPrograms.h"

#include <gtest/gtest.h>

#include <set>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

/// CI call-graph edges as a comparable set of (site, callee) pairs.
std::set<std::pair<uint32_t, uint32_t>> ciEdges(const PTAResult &R) {
  std::set<std::pair<uint32_t, uint32_t>> Edges;
  for (CallSiteId Site : R.CG.callSitesWithEdges())
    for (MethodId Callee : R.CG.calleesOf(Site))
      Edges.insert({Site.idx(), Callee.idx()});
  return Edges;
}

} // namespace

TEST(MahjongPipeline, ProducesTimingBreakdown) {
  workload::WorkloadSpec Spec;
  Spec.Modules = 4;
  auto P = workload::buildSyntheticProgram(Spec);
  ClassHierarchy CH(*P);
  MahjongResult MR = buildMahjongHeap(*P, CH);
  EXPECT_GE(MR.PreSeconds, 0.0);
  EXPECT_GE(MR.FPGSeconds, 0.0);
  EXPECT_GE(MR.MahjongSeconds, 0.0);
  EXPECT_GT(MR.numAllocSiteObjects(), MR.numMahjongObjects())
      << "some merging must happen on container-heavy workloads";
  EXPECT_TRUE(MR.Heap != nullptr);
  EXPECT_EQ(MR.Heap->name(), "mahjong");
}

class PipelineSweepTest
    : public ::testing::TestWithParam<std::tuple<ContextKind, unsigned>> {};

TEST_P(PipelineSweepTest, MahjongIsSoundAndPreciseForClients) {
  auto [Kind, K] = GetParam();
  workload::WorkloadSpec Spec;
  Spec.Seed = 42;
  Spec.Modules = 4;
  Spec.MixedPerMille = 120;
  Spec.ElemChainPerMille = 400;
  auto P = workload::buildSyntheticProgram(Spec);
  ClassHierarchy CH(*P);

  AnalysisOptions Base;
  Base.Kind = Kind;
  Base.K = K;
  auto BaseR = runPointerAnalysis(*P, CH, Base);

  MahjongResult MR = buildMahjongHeap(*P, CH);
  AnalysisOptions Merged = Base;
  Merged.Heap = MR.Heap.get();
  auto MergedR = runPointerAnalysis(*P, CH, Merged);

  // Soundness: every baseline call edge survives merging.
  auto BaseEdges = ciEdges(*BaseR);
  auto MergedEdges = ciEdges(*MergedR);
  for (const auto &E : BaseEdges)
    ASSERT_TRUE(MergedEdges.count(E))
        << "lost call edge under " << analysisName(Kind, K);

  // Precision for type-dependent clients: nearly the paper's "nearly the
  // same" — on these workloads it is exactly the same.
  clients::ClientResults BaseCR = clients::evaluateClients(*BaseR);
  clients::ClientResults MergedCR = clients::evaluateClients(*MergedR);
  EXPECT_EQ(MergedCR.CallGraphEdges, BaseCR.CallGraphEdges);
  EXPECT_EQ(MergedCR.PolyCallSites, BaseCR.PolyCallSites);
  EXPECT_EQ(MergedCR.MayFailCasts, BaseCR.MayFailCasts);
  EXPECT_EQ(MergedCR.ReachableMethods, BaseCR.ReachableMethods);
}

INSTANTIATE_TEST_SUITE_P(
    Analyses, PipelineSweepTest,
    ::testing::Values(std::tuple{ContextKind::Insensitive, 0u},
                      std::tuple{ContextKind::CallSite, 2u},
                      std::tuple{ContextKind::Object, 2u},
                      std::tuple{ContextKind::Object, 3u},
                      std::tuple{ContextKind::Type, 2u},
                      std::tuple{ContextKind::Type, 3u}));

TEST(MahjongPipeline, MergedHeapShrinksContextSpace) {
  workload::WorkloadSpec Spec;
  Spec.Modules = 6;
  auto P = workload::buildSyntheticProgram(Spec);
  ClassHierarchy CH(*P);
  AnalysisOptions Base;
  Base.Kind = ContextKind::Object;
  Base.K = 3;
  auto BaseR = runPointerAnalysis(*P, CH, Base);
  MahjongResult MR = buildMahjongHeap(*P, CH);
  AnalysisOptions Merged = Base;
  Merged.Heap = MR.Heap.get();
  auto MergedR = runPointerAnalysis(*P, CH, Merged);
  EXPECT_LT(MergedR->Stats.NumCSObjs, BaseR->Stats.NumCSObjs);
  EXPECT_LT(MergedR->Stats.NumContexts, BaseR->Stats.NumContexts);
  EXPECT_LT(MergedR->Stats.VarPtsEntries, BaseR->Stats.VarPtsEntries);
}

TEST(MahjongPipeline, RunMahjongAnalysisConvenienceWrapper) {
  workload::WorkloadSpec Spec;
  Spec.Modules = 3;
  auto P = workload::buildSyntheticProgram(Spec);
  ClassHierarchy CH(*P);
  MahjongAnalysis MA = runMahjongAnalysis(*P, CH, ContextKind::Object, 2);
  EXPECT_EQ(MA.Result->AnalysisName, "M-2obj");
  EXPECT_EQ(MA.Result->HeapName, "mahjong");
  EXPECT_FALSE(MA.Result->Stats.TimedOut);
}

TEST(MahjongPipeline, BenchmarkProfilesAllBuildAndMerge) {
  // Every named profile must generate, pre-analyze and model at a small
  // scale; this guards the profile table itself.
  for (const std::string &Name : workload::benchmarkNames()) {
    workload::WorkloadSpec Spec = workload::benchmarkSpec(Name, 0.02);
    auto P = workload::buildSyntheticProgram(Spec);
    ClassHierarchy CH(*P);
    MahjongResult MR = buildMahjongHeap(*P, CH);
    EXPECT_GT(MR.numAllocSiteObjects(), 0u) << Name;
    EXPECT_LE(MR.numMahjongObjects(), MR.numAllocSiteObjects()) << Name;
  }
}
