//===-- tests/core/NFATest.cpp -----------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The NFA view of the FPG (paper Figure 4 / Algorithm 2), checked against
// the paper's running example (Figure 2 / Example 2.2).
//
//===----------------------------------------------------------------------===//

#include "core/NFA.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::test;

namespace {

/// The paper's Figure 2, right automaton: o2<T> --f--> o4<U> --h--> o8<Y>,
/// o2 --g--> o6<X> --k--> o8. Types: T=0, U=1, X=2, Y=3; fields f=0, g=1,
/// h=2, k=3.
GraphSpec figure2Right() {
  GraphSpec G;
  G.NumTypes = 4;
  G.NumFields = 4;
  G.TypeOf = {0, 1, 2, 3};
  G.Edges = {{0, 0, 1}, {0, 1, 2}, {1, 2, 3}, {2, 3, 3}};
  return G;
}

struct Built {
  std::unique_ptr<Program> P;
  std::unique_ptr<ClassHierarchy> CH;
  std::unique_ptr<pta::PTAResult> R;
  std::unique_ptr<FieldPointsToGraph> G;
};

Built buildGraph(const GraphSpec &Spec) {
  Built B;
  B.P = buildGraphProgram(Spec);
  B.CH = std::make_unique<ClassHierarchy>(*B.P);
  pta::AnalysisOptions Opts;
  B.R = pta::runPointerAnalysis(*B.P, *B.CH, Opts);
  B.G = std::make_unique<FieldPointsToGraph>(*B.R);
  return B;
}

} // namespace

TEST(NFA, Example22StatesAndAlphabet) {
  Built B = buildGraph(figure2Right());
  NFA A(*B.G, graphObj(0));
  // Q = {o_T, o_U, o_X, o_Y, o_null}: the paper's four objects plus the
  // null completion of the leaf/unused fields.
  EXPECT_EQ(A.numStates(), 5u);
  EXPECT_EQ(A.start(), graphObj(0));
  // Σ = every field of every reachable object. Each of T0..T3 declares
  // its own f0..f3 (unwritten ones null-completed), so 16 symbols.
  EXPECT_EQ(A.alphabet().size(), 16u);
}

TEST(NFA, TransitionsFollowTheGraph) {
  Built B = buildGraph(figure2Right());
  NFA A(*B.G, graphObj(0));
  FieldId F0 = B.P->findField(B.P->typeByName("T0"), "f0");
  const std::vector<ObjId> &Next = A.next(graphObj(0), F0);
  ASSERT_EQ(Next.size(), 1u);
  EXPECT_EQ(Next[0], graphObj(1));
}

TEST(NFA, OutputMapIsTheObjectType) {
  Built B = buildGraph(figure2Right());
  NFA A(*B.G, graphObj(0));
  EXPECT_EQ(B.P->type(A.output(graphObj(0))).Name, "T0");
  EXPECT_EQ(B.P->type(A.output(graphObj(3))).Name, "T3");
  EXPECT_EQ(A.output(Program::nullObj()), B.P->nullType());
}

TEST(NFA, NondeterminismFromMultiTargetFields) {
  // One field pointing to two objects: the defining NFA feature.
  GraphSpec G;
  G.NumTypes = 2;
  G.NumFields = 1;
  G.TypeOf = {0, 1, 1};
  G.Edges = {{0, 0, 1}, {0, 0, 2}};
  Built B = buildGraph(G);
  NFA A(*B.G, graphObj(0));
  FieldId F0 = B.P->findField(B.P->typeByName("T0"), "f0");
  EXPECT_EQ(A.next(graphObj(0), F0).size(), 2u);
}

TEST(NFA, SingleStateForLeafObjectWithoutFields) {
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 0; // classes declare no fields at all
  G.TypeOf = {0};
  Built B = buildGraph(G);
  NFA A(*B.G, graphObj(0));
  EXPECT_EQ(A.numStates(), 1u);
  EXPECT_TRUE(A.alphabet().empty());
}

TEST(NFA, CyclicGraphsTerminate) {
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  G.TypeOf = {0, 0};
  G.Edges = {{0, 0, 1}, {1, 0, 0}}; // 2-cycle
  Built B = buildGraph(G);
  NFA A(*B.G, graphObj(0));
  EXPECT_EQ(A.numStates(), 2u);
}
