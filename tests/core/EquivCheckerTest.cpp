//===-- tests/core/EquivCheckerTest.cpp --------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The Hopcroft-Karp equivalence checker (Algorithm 4): the paper's
// running examples, cycle handling, and a property sweep certifying it
// against the bounded reference implementation of Definition 2.1.
//
//===----------------------------------------------------------------------===//

#include "core/EquivChecker.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <random>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::test;

namespace {

struct Built {
  std::unique_ptr<Program> P;
  std::unique_ptr<ClassHierarchy> CH;
  std::unique_ptr<pta::PTAResult> R;
  std::unique_ptr<FieldPointsToGraph> G;
  std::unique_ptr<DFACache> Cache;
};

Built buildGraph(const GraphSpec &Spec) {
  Built B;
  B.P = buildGraphProgram(Spec);
  B.CH = std::make_unique<ClassHierarchy>(*B.P);
  pta::AnalysisOptions Opts;
  B.R = pta::runPointerAnalysis(*B.P, *B.CH, Opts);
  B.G = std::make_unique<FieldPointsToGraph>(*B.R);
  B.Cache = std::make_unique<DFACache>(*B.G);
  return B;
}

bool equiv(Built &B, unsigned NodeA, unsigned NodeB) {
  EquivChecker Checker(*B.Cache);
  return Checker.equivalent(B.Cache->startFor(graphObj(NodeA)),
                            B.Cache->startFor(graphObj(NodeB)));
}

} // namespace

TEST(EquivChecker, Figure2AutomataAreEquivalent) {
  // The paper's Figure 2: two T-rooted automata with the same typed
  // behavior but different shapes (left has two Y objects and
  // nondeterminism on f, right is a diamond).
  // Types: T=0, U=1, X=2, Y=3. Fields: f=0, g=1, h=2, k=3.
  GraphSpec G;
  G.NumTypes = 4;
  G.NumFields = 4;
  //        o1.T  o3.U  o5.X  o7.Y  o9.Y  o11.Y   (left, paper numbering)
  // nodes: 0     1     2     3     4     5
  //        o2.T  o4.U  o6.X  o8.Y                (right)
  // nodes: 6     7     8     9
  G.TypeOf = {0, 1, 2, 3, 3, 3, 0, 1, 2, 3};
  G.Edges = {
      // left: o1 -f-> o3, o1 -g-> o5, o3 -h-> o7, o3 -h-> o9, o5 -k-> o11
      {0, 0, 1}, {0, 1, 2}, {1, 2, 3}, {1, 2, 4}, {2, 3, 5},
      // right: o2 -f-> o4, o2 -g-> o6, o4 -h-> o8, o6 -k-> o8
      {6, 0, 7}, {6, 1, 8}, {7, 2, 9}, {8, 3, 9},
  };
  Built B = buildGraph(G);
  EXPECT_TRUE(B.Cache->allSingletonOutputs(B.Cache->startFor(graphObj(0))));
  EXPECT_TRUE(B.Cache->allSingletonOutputs(B.Cache->startFor(graphObj(6))));
  EXPECT_TRUE(equiv(B, 0, 6)) << "the paper's Example 2.6";
}

TEST(EquivChecker, DifferentFieldTypeBreaksEquivalence) {
  // Figure 1: o2 and o3 store a C, o1 stores a B.
  // Types: A=0, B=1, C=2; field f=0.
  GraphSpec G;
  G.NumTypes = 3;
  G.NumFields = 1;
  G.TypeOf = {0, 0, 0, 1, 2, 2}; // o1,o2,o3 : A; o4: B; o5,o6: C
  G.Edges = {{0, 0, 3}, {1, 0, 4}, {2, 0, 5}};
  Built B = buildGraph(G);
  EXPECT_TRUE(equiv(B, 1, 2)) << "o2 === o3 (both reach a C)";
  EXPECT_FALSE(equiv(B, 0, 1)) << "o1 reaches a B instead";
  EXPECT_FALSE(equiv(B, 0, 2));
}

TEST(EquivChecker, NullVsStoredFieldDiffer) {
  // One object with a written field, one with the field still null.
  GraphSpec G;
  G.NumTypes = 2;
  G.NumFields = 1;
  G.TypeOf = {0, 0, 1};
  G.Edges = {{0, 0, 2}}; // node 1's f0 stays null
  Built B = buildGraph(G);
  EXPECT_FALSE(equiv(B, 0, 1))
      << "MAHJONG distinguishes null fields (Table 1, ASTPair rows)";
  EXPECT_TRUE(equiv(B, 1, 1));
}

TEST(EquivChecker, AllNullObjectsAreEquivalent) {
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 2;
  G.TypeOf = {0, 0};
  Built B = buildGraph(G); // both objects have only null fields
  EXPECT_TRUE(equiv(B, 0, 1));
}

TEST(EquivChecker, ChainLengthMatters) {
  // f0-chains of length 1 vs 2 over the same type.
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  G.TypeOf = {0, 0, 0, 0, 0};
  G.Edges = {{0, 0, 1},             // chain A: 0 -> 1 -> null
             {2, 0, 3}, {3, 0, 4}}; // chain B: 2 -> 3 -> 4 -> null
  Built B = buildGraph(G);
  EXPECT_FALSE(equiv(B, 0, 2)) << "depth-2 path: null vs T0";
  EXPECT_TRUE(equiv(B, 1, 4)) << "both tails are a T0 with a null field";
}

TEST(EquivChecker, CyclesVersusUnrolledChainsAreEquivalent) {
  // A self-loop and a 2-cycle of the same type have identical behavior:
  // every f0-path yields T0 forever.
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  G.TypeOf = {0, 0, 0};
  G.Edges = {{0, 0, 0},            // self-loop
             {1, 0, 2}, {2, 0, 1}}; // 2-cycle
  Built B = buildGraph(G);
  EXPECT_TRUE(equiv(B, 0, 1)) << "Hopcroft-Karp handles cycles";
}

TEST(EquivChecker, CycleVersusFiniteChainDiffer) {
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  G.TypeOf = {0, 0};
  G.Edges = {{0, 0, 0}, /* node 1: f0 stays null */};
  Built B = buildGraph(G);
  EXPECT_FALSE(equiv(B, 0, 1));
}

TEST(EquivChecker, NondeterministicFanoutSameTypes) {
  // o0 -f-> {a, b} both T1-with-null vs o5 -f-> single T1-with-null:
  // the determinized behaviors coincide.
  GraphSpec G;
  G.NumTypes = 2;
  G.NumFields = 1;
  G.TypeOf = {0, 1, 1, 0, 1};
  G.Edges = {{0, 0, 1}, {0, 0, 2}, {3, 0, 4}};
  Built B = buildGraph(G);
  EXPECT_TRUE(equiv(B, 0, 3));
}

// --- Property sweep: Hopcroft-Karp vs the Definition 2.1 reference. ---

class EquivPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EquivPropertyTest, MatchesBoundedReferenceOnRandomAcyclicGraphs) {
  std::mt19937 Rng(GetParam() * 7919 + 13);
  // Random acyclic graph: edges only point to higher node indices.
  GraphSpec G;
  G.NumTypes = 1 + Rng() % 3;
  G.NumFields = 1 + Rng() % 3;
  unsigned N = 8 + Rng() % 8;
  for (unsigned I = 0; I < N; ++I)
    G.TypeOf.push_back(Rng() % G.NumTypes);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned F = 0; F < G.NumFields; ++F)
      while (Rng() % 3 == 0 && I + 1 < N)
        G.Edges.push_back(
            {I, F, I + 1 + static_cast<unsigned>(Rng() % (N - I - 1))});
  Built B = buildGraph(G);
  EquivChecker Checker(*B.Cache);

  unsigned Depth = N + 3; // exceeds the longest simple path: exact
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = I; J < N; ++J) {
      if (G.TypeOf[I] != G.TypeOf[J])
        continue; // only same-typed objects are candidates
      DFAStateId SI = B.Cache->startFor(graphObj(I));
      DFAStateId SJ = B.Cache->startFor(graphObj(J));
      bool HK = B.Cache->allSingletonOutputs(SI) &&
                B.Cache->allSingletonOutputs(SJ) &&
                Checker.equivalent(SI, SJ);
      bool Ref = refTypeConsistent(*B.G, graphObj(I), graphObj(J), Depth);
      ASSERT_EQ(HK, Ref) << "objects " << I << " and " << J << " (seed "
                         << GetParam() << ")";
    }
}

TEST_P(EquivPropertyTest, IsAnEquivalenceRelationOnRandomGraphs) {
  std::mt19937 Rng(GetParam() * 104729 + 7);
  GraphSpec G;
  G.NumTypes = 2;
  G.NumFields = 2;
  unsigned N = 10;
  for (unsigned I = 0; I < N; ++I)
    G.TypeOf.push_back(Rng() % G.NumTypes);
  for (unsigned E = 0; E < 14; ++E) // cycles allowed
    G.Edges.push_back({static_cast<unsigned>(Rng() % N),
                       static_cast<unsigned>(Rng() % G.NumFields),
                       static_cast<unsigned>(Rng() % N)});
  Built B = buildGraph(G);
  EquivChecker Checker(*B.Cache);
  auto Eq = [&](unsigned I, unsigned J) {
    return Checker.equivalent(B.Cache->startFor(graphObj(I)),
                              B.Cache->startFor(graphObj(J)));
  };
  for (unsigned I = 0; I < N; ++I)
    ASSERT_TRUE(Eq(I, I)) << "reflexive";
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      ASSERT_EQ(Eq(I, J), Eq(J, I)) << "symmetric " << I << "," << J;
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      for (unsigned K = 0; K < N; ++K)
        if (Eq(I, J) && Eq(J, K)) {
          ASSERT_TRUE(Eq(I, K)) << "transitive " << I << "," << J << ","
                                << K;
        }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivPropertyTest, ::testing::Range(1u, 15u));
