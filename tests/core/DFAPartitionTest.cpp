//===-- tests/core/DFAPartitionTest.cpp --------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The global behavioral partition must agree exactly with the pairwise
// Hopcroft-Karp checker — on hand-written shapes and random graphs.
//
//===----------------------------------------------------------------------===//

#include "core/DFAPartition.h"

#include "../TestUtil.h"
#include "core/EquivChecker.h"

#include <gtest/gtest.h>

#include <random>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::test;

namespace {

struct Built {
  std::unique_ptr<Program> P;
  std::unique_ptr<ClassHierarchy> CH;
  std::unique_ptr<pta::PTAResult> R;
  std::unique_ptr<FieldPointsToGraph> G;
  std::unique_ptr<DFACache> Cache;
};

Built buildGraph(const GraphSpec &Spec) {
  Built B;
  B.P = buildGraphProgram(Spec);
  B.CH = std::make_unique<ClassHierarchy>(*B.P);
  pta::AnalysisOptions Opts;
  B.R = pta::runPointerAnalysis(*B.P, *B.CH, Opts);
  B.G = std::make_unique<FieldPointsToGraph>(*B.R);
  B.Cache = std::make_unique<DFACache>(*B.G);
  return B;
}

} // namespace

TEST(DFAPartition, GroupsEquivalentChainTails) {
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  G.TypeOf = {0, 0, 0, 0, 0};
  G.Edges = {{0, 0, 1}, {2, 0, 3}, {3, 0, 4}};
  Built B = buildGraph(G);
  for (unsigned I = 0; I < 5; ++I)
    B.Cache->materialize(B.Cache->startFor(graphObj(I)));
  DFAPartition Part(*B.Cache);
  auto Blk = [&](unsigned I) {
    return Part.blockOf(B.Cache->startFor(graphObj(I)));
  };
  EXPECT_EQ(Blk(1), Blk(4)) << "both tails: T0 with a null field";
  EXPECT_EQ(Blk(0), Blk(3)) << "both: one hop to a tail";
  EXPECT_NE(Blk(0), Blk(1));
  EXPECT_NE(Blk(2), Blk(0)) << "head of the longer chain is distinct";
}

TEST(DFAPartition, SeparatesByOutputImmediately) {
  GraphSpec G;
  G.NumTypes = 2;
  G.NumFields = 0;
  G.TypeOf = {0, 1, 0};
  Built B = buildGraph(G);
  for (unsigned I = 0; I < 3; ++I)
    B.Cache->materialize(B.Cache->startFor(graphObj(I)));
  DFAPartition Part(*B.Cache);
  EXPECT_EQ(Part.blockOf(B.Cache->startFor(graphObj(0))),
            Part.blockOf(B.Cache->startFor(graphObj(2))));
  EXPECT_NE(Part.blockOf(B.Cache->startFor(graphObj(0))),
            Part.blockOf(B.Cache->startFor(graphObj(1))));
  EXPECT_GE(Part.numBlocks(), 2u);
}

TEST(DFAPartition, HandlesCyclesLikeHopcroftKarp) {
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  G.TypeOf = {0, 0, 0, 0};
  G.Edges = {{0, 0, 0},             // self-loop
             {1, 0, 2}, {2, 0, 1},  // 2-cycle
             /* node 3: null field */};
  Built B = buildGraph(G);
  for (unsigned I = 0; I < 4; ++I)
    B.Cache->materialize(B.Cache->startFor(graphObj(I)));
  DFAPartition Part(*B.Cache);
  auto Blk = [&](unsigned I) {
    return Part.blockOf(B.Cache->startFor(graphObj(I)));
  };
  EXPECT_EQ(Blk(0), Blk(1)) << "loop === cycle";
  EXPECT_NE(Blk(0), Blk(3));
}

class DFAPartitionPropertyTest : public ::testing::TestWithParam<unsigned> {
};

TEST_P(DFAPartitionPropertyTest, AgreesWithHopcroftKarpOnRandomGraphs) {
  std::mt19937 Rng(GetParam() * 31337 + 5);
  GraphSpec G;
  G.NumTypes = 1 + Rng() % 3;
  G.NumFields = 1 + Rng() % 3;
  unsigned N = 8 + Rng() % 10;
  for (unsigned I = 0; I < N; ++I)
    G.TypeOf.push_back(Rng() % G.NumTypes);
  for (unsigned E = 0, M = 6 + Rng() % 20; E < M; ++E) // cycles allowed
    G.Edges.push_back({static_cast<unsigned>(Rng() % N),
                       static_cast<unsigned>(Rng() % G.NumFields),
                       static_cast<unsigned>(Rng() % N)});
  Built B = buildGraph(G);
  for (unsigned I = 0; I < N; ++I)
    B.Cache->materialize(B.Cache->startFor(graphObj(I)));
  DFAPartition Part(*B.Cache);
  EquivChecker Checker(*B.Cache);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J) {
      DFAStateId SI = B.Cache->startFor(graphObj(I));
      DFAStateId SJ = B.Cache->startFor(graphObj(J));
      ASSERT_EQ(Part.blockOf(SI) == Part.blockOf(SJ),
                Checker.equivalent(SI, SJ))
          << "objects " << I << "," << J << " (seed " << GetParam() << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DFAPartitionPropertyTest,
                         ::testing::Range(1u, 21u));
