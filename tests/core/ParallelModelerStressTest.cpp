//===-- tests/core/ParallelModelerStressTest.cpp -----------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The parallel pre-pass under load: serial and parallel modelHeap must
// produce bit-identical merged object maps on every benchmark profile,
// and a many-threaded run over a large synthetic workload exercises the
// frozen DFACache from concurrent workers (the ThreadSanitizer canary —
// any post-freeze write or unsynchronized read shows up here).
//
//===----------------------------------------------------------------------===//

#include "core/HeapModeler.h"

#include "../TestUtil.h"
#include "workload/BenchmarkPrograms.h"

#include <gtest/gtest.h>

#include <thread>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;

namespace {

struct Prepared {
  std::unique_ptr<Program> P;
  std::unique_ptr<ClassHierarchy> CH;
  std::unique_ptr<pta::PTAResult> Pre;
  std::unique_ptr<FieldPointsToGraph> G;
};

Prepared prepare(std::unique_ptr<Program> P) {
  Prepared R;
  R.P = std::move(P);
  R.CH = std::make_unique<ClassHierarchy>(*R.P);
  pta::AnalysisOptions PreOpts;
  R.Pre = pta::runPointerAnalysis(*R.P, *R.CH, PreOpts);
  R.G = std::make_unique<FieldPointsToGraph>(*R.Pre);
  return R;
}

HeapModelerResult run(const Prepared &R, unsigned Threads,
                      bool UsePartitionIndex = true) {
  DFACache Cache(*R.G);
  HeapModelerOptions Opts;
  Opts.Threads = Threads;
  Opts.UsePartitionIndex = UsePartitionIndex;
  return modelHeap(*R.G, Cache, Opts);
}

} // namespace

// Acceptance gate: parallel and serial modelHeap agree bit for bit on
// all 12 workload profiles, for both grouping strategies.
TEST(ParallelModeler, SerialAndParallelAgreeOnAllProfiles) {
  for (const std::string &Name : workload::benchmarkNames()) {
    // Scale 0.05 keeps the whole 12-profile sweep a few seconds even
    // under ThreadSanitizer; determinism does not depend on heap size.
    Prepared R =
        prepare(workload::buildBenchmarkProgram(Name, /*Scale=*/0.05));
    HeapModelerResult Serial = run(R, 1);
    HeapModelerResult Parallel = run(R, 4);
    ASSERT_EQ(Serial.MOM, Parallel.MOM) << "profile " << Name;
    ASSERT_EQ(Serial.NumClasses, Parallel.NumClasses) << "profile " << Name;
    ASSERT_EQ(Serial.PairsTested, Parallel.PairsTested)
        << "profile " << Name
        << ": the two runs must do the same certification work";
    HeapModelerResult SerialScan = run(R, 1, /*UsePartitionIndex=*/false);
    HeapModelerResult ParallelScan = run(R, 4, /*UsePartitionIndex=*/false);
    ASSERT_EQ(SerialScan.MOM, ParallelScan.MOM) << "profile " << Name;
    ASSERT_EQ(Serial.MOM, SerialScan.MOM)
        << "profile " << Name << ": strategy must not change the classes";
  }
}

// Oversubscribed stress on one large heterogeneous workload: more
// threads than cores, repeated runs, every run identical. Under TSan
// this is the test that proves the frozen-cache discipline — workers
// share one DFACache and may only read it.
TEST(ParallelModeler, OversubscribedRunsAreIdenticalOnLargeWorkload) {
  workload::WorkloadSpec Spec;
  Spec.Name = "stress";
  Spec.Seed = 42;
  Spec.Modules = 96;
  Spec.BoxSitesPerModule = 8;
  Spec.EngineSitesPerModule = 6;
  Spec.ElemSitesPerModule = 10;
  Spec.MixedPerMille = 200;      // plenty of condition-2 violators
  Spec.PollutedEnginePerMille = 300;
  Spec.ElemChainPerMille = 400;
  Prepared R = prepare(workload::buildSyntheticProgram(Spec));

  HeapModelerResult Reference = run(R, 1);
  EXPECT_GT(Reference.NumReachableObjs, 2000u)
      << "the stress workload should be genuinely large";
  unsigned Threads = std::max(8u, 2 * std::thread::hardware_concurrency());
  for (int Round = 0; Round < 3; ++Round) {
    HeapModelerResult Parallel = run(R, Threads);
    ASSERT_EQ(Reference.MOM, Parallel.MOM) << "round " << Round;
    ASSERT_EQ(Reference.PairsTested, Parallel.PairsTested)
        << "round " << Round;
  }
}

// Many buckets, few threads, and a thread count far above the bucket
// count both funnel through the same pool without losing work.
TEST(ParallelModeler, ThreadCountSweepIsStable) {
  Prepared R = prepare(workload::buildBenchmarkProgram("pmd", /*Scale=*/0.05));
  HeapModelerResult Reference = run(R, 1);
  for (unsigned Threads : {2u, 3u, 16u, 64u}) {
    HeapModelerResult Parallel = run(R, Threads);
    ASSERT_EQ(Reference.MOM, Parallel.MOM) << Threads << " threads";
  }
}
