//===-- tests/core/DFACacheSharedRegionTest.cpp -------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quantitative checks of the shared-automata optimization (paper §5):
// the global state count must grow with the distinct suffix structure,
// not with the number of roots.
//
//===----------------------------------------------------------------------===//

#include "core/DFACache.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::test;

namespace {

struct Built {
  std::unique_ptr<Program> P;
  std::unique_ptr<ClassHierarchy> CH;
  std::unique_ptr<pta::PTAResult> R;
  std::unique_ptr<FieldPointsToGraph> G;
  std::unique_ptr<DFACache> Cache;
};

Built buildGraph(const GraphSpec &Spec) {
  Built B;
  B.P = buildGraphProgram(Spec);
  B.CH = std::make_unique<ClassHierarchy>(*B.P);
  pta::AnalysisOptions Opts;
  B.R = pta::runPointerAnalysis(*B.P, *B.CH, Opts);
  B.G = std::make_unique<FieldPointsToGraph>(*B.R);
  B.Cache = std::make_unique<DFACache>(*B.G);
  return B;
}

} // namespace

TEST(DFACacheSharing, ManyRootsOneSharedSuffix) {
  // 50 roots all pointing at the same leaf: materializing every root
  // adds one start state each, but the suffix exists once.
  GraphSpec G;
  G.NumTypes = 2;
  G.NumFields = 1;
  const unsigned Roots = 50;
  for (unsigned I = 0; I < Roots; ++I)
    G.TypeOf.push_back(0);
  G.TypeOf.push_back(1); // the shared leaf
  for (unsigned I = 0; I < Roots; ++I)
    G.Edges.push_back({I, 0, Roots});
  Built B = buildGraph(G);
  for (unsigned I = 0; I < Roots; ++I)
    B.Cache->materialize(B.Cache->startFor(graphObj(I)));
  // States: error + {null} + 50 singleton roots + {leaf} (+ nothing
  // else: the leaf's f0-null successor IS the null state).
  EXPECT_LE(B.Cache->numStates(), Roots + 4u);
}

TEST(DFACacheSharing, ChainSuffixesAreReused) {
  // One long chain: materializing from every position must reuse all
  // downstream states — total states linear, not quadratic.
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  const unsigned N = 60;
  for (unsigned I = 0; I < N; ++I)
    G.TypeOf.push_back(0);
  for (unsigned I = 0; I + 1 < N; ++I)
    G.Edges.push_back({I, 0, I + 1});
  Built B = buildGraph(G);
  for (unsigned I = 0; I < N; ++I)
    B.Cache->materialize(B.Cache->startFor(graphObj(I)));
  EXPECT_LE(B.Cache->numStates(), N + 4u)
      << "per-root determinization would need O(N^2) states";
}

TEST(DFACacheSharing, SingleTypeCheckMemoizationAcrossRoots) {
  // Checking every chain position reuses the memoized good region: the
  // second and later checks must not re-walk the whole suffix. We can't
  // observe time portably, but we can observe correctness under heavy
  // reuse plus the state bound above.
  GraphSpec G;
  G.NumTypes = 1;
  G.NumFields = 1;
  const unsigned N = 40;
  for (unsigned I = 0; I < N; ++I)
    G.TypeOf.push_back(0);
  for (unsigned I = 0; I + 1 < N; ++I)
    G.Edges.push_back({I, 0, I + 1});
  Built B = buildGraph(G);
  for (unsigned I = 0; I < N; ++I)
    EXPECT_TRUE(B.Cache->allSingletonOutputs(B.Cache->startFor(graphObj(I))));
}

TEST(DFACacheSharing, DiamondSharesJoinPoint) {
  // Two roots reaching a diamond that reconverges: the join state is
  // created once.
  GraphSpec G;
  G.NumTypes = 3;
  G.NumFields = 2;
  G.TypeOf = {0, 0, 1, 1, 2};
  G.Edges = {{0, 0, 2}, {0, 1, 3}, {1, 0, 2}, {1, 1, 3},
             {2, 0, 4}, {3, 0, 4}};
  Built B = buildGraph(G);
  B.Cache->materialize(B.Cache->startFor(graphObj(0)));
  uint32_t After0 = B.Cache->numStates();
  B.Cache->materialize(B.Cache->startFor(graphObj(1)));
  EXPECT_EQ(B.Cache->numStates(), After0 + 1)
      << "the second root adds only its own start state";
}
