//===-- tests/core/HeapModelerTest.cpp ---------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Algorithm 1 end to end: the paper's Figure 1 merging, Condition 2
// (Example 2.4), null-field separation, representative policies, and the
// scan-vs-partition and serial-vs-parallel agreement properties.
//
//===----------------------------------------------------------------------===//

#include "core/HeapModeler.h"

#include "../TestUtil.h"
#include "core/Mahjong.h"
#include "workload/SyntheticBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::test;

namespace {

const char *Figure1Src = R"(
  class A { field f: A; method foo() { return this; } }
  class B extends A { method foo() { return this; } }
  class C extends A { method foo() { return this; } }
  class Main {
    static method main() {
      x = new A;   // o1
      y = new A;   // o2
      z = new A;   // o3
      xf = new B;  // o4
      x.f = xf;
      yf = new C;  // o5
      y.f = yf;
      zf = new C;  // o6
      z.f = zf;
      a = z.f;
      a.foo();
      c = (C) a;
    }
  }
)";

struct Modeled {
  std::unique_ptr<Program> P;
  std::unique_ptr<ClassHierarchy> CH;
  std::unique_ptr<pta::PTAResult> Pre;
  std::unique_ptr<FieldPointsToGraph> G;
  std::unique_ptr<DFACache> Cache;
  HeapModelerResult Result;
};

Modeled model(std::string_view Src, const HeapModelerOptions &Opts = {}) {
  Modeled M;
  M.P = parseOrDie(Src);
  M.CH = std::make_unique<ClassHierarchy>(*M.P);
  pta::AnalysisOptions PreOpts;
  M.Pre = pta::runPointerAnalysis(*M.P, *M.CH, PreOpts);
  M.G = std::make_unique<FieldPointsToGraph>(*M.Pre);
  M.Cache = std::make_unique<DFACache>(*M.G);
  M.Result = modelHeap(*M.G, *M.Cache, Opts);
  return M;
}

} // namespace

TEST(HeapModeler, Figure1MergesTypeConsistentObjectsOnly) {
  Modeled M = model(Figure1Src);
  const std::vector<ObjId> &MOM = M.Result.MOM;
  EXPECT_EQ(MOM[2], MOM[3]) << "o2 === o3 (both store a C)";
  EXPECT_NE(MOM[1], MOM[2]) << "o1 stores a B: not type-consistent";
  EXPECT_EQ(MOM[5], MOM[6]) << "the two C objects merge too";
  EXPECT_NE(MOM[4], MOM[5]) << "B and C never merge (different types)";
  // 6 reachable objects -> 4 classes: {o1}, {o2,o3}, {o4}, {o5,o6}.
  EXPECT_EQ(M.Result.NumReachableObjs, 6u);
  EXPECT_EQ(M.Result.NumClasses, 4u);
}

TEST(HeapModeler, NullObjectIsNeverMerged) {
  Modeled M = model(Figure1Src);
  EXPECT_EQ(M.Result.MOM[0], Program::nullObj());
}

TEST(HeapModeler, UnreachableObjectsKeepIdentity) {
  Modeled M = model(R"(
    class A { }
    class Main {
      static method main() { a = new A; }
      static method dead() { b = new A; c = new A; }
    }
  )");
  EXPECT_EQ(M.Result.MOM[2], ObjId(2));
  EXPECT_EQ(M.Result.MOM[3], ObjId(3));
  EXPECT_EQ(M.Result.NumClasses, 1u) << "only the reachable object counts";
}

TEST(HeapModeler, Condition2BlocksMergingOfMixedSites) {
  // Example 2.4 / Figure 3: both objects' f reaches {X, Y} in the
  // pre-analysis; they must NOT merge while Condition 2 is on.
  const char *Src = R"(
    class T { field f: Object; }
    class X { }
    class Y { }
    class Main {
      static method main() {
        ti = new T;   // o1
        tj = new T;   // o2
        x = new X;    // o3
        y = new Y;    // o4
        m = x;
        m = y;        // m: {X, Y}
        ti.f = m;
        tj.f = m;
      }
    }
  )";
  Modeled WithC2 = model(Src);
  EXPECT_NE(WithC2.Result.MOM[1], WithC2.Result.MOM[2])
      << "Condition 2 keeps the mixed sites apart";

  HeapModelerOptions NoC2;
  NoC2.EnforceCondition2 = false;
  Modeled WithoutC2 = model(Src, NoC2);
  EXPECT_EQ(WithoutC2.Result.MOM[1], WithoutC2.Result.MOM[2])
      << "the ablation merges them (and would lose precision)";
}

TEST(HeapModeler, NullFieldSeparatesFromWrittenField) {
  // The Table 1 ASTPair pattern: same type, one site never writes f.
  Modeled M = model(R"(
    class T { field f: U; }
    class U { }
    class Main {
      static method main() {
        a = new T;   // o1: f -> U
        b = new T;   // o2: f -> U
        z = new T;   // o3: f stays null
        u1 = new U;
        u2 = new U;
        a.f = u1;
        b.f = u2;
      }
    }
  )");
  EXPECT_EQ(M.Result.MOM[1], M.Result.MOM[2]);
  EXPECT_NE(M.Result.MOM[1], M.Result.MOM[3]);
}

TEST(HeapModeler, RepresentativePolicyPicksFirstOrLast) {
  HeapModelerOptions First;
  First.Repr = ReprPolicy::FirstSite;
  Modeled MF = model(Figure1Src, First);
  EXPECT_EQ(MF.Result.MOM[3], ObjId(2)) << "o2 represents {o2,o3}";

  HeapModelerOptions Last;
  Last.Repr = ReprPolicy::LastSite;
  Modeled ML = model(Figure1Src, Last);
  EXPECT_EQ(ML.Result.MOM[2], ObjId(3)) << "o3 represents {o2,o3}";
}

TEST(HeapModeler, EquivalenceClassesAreSortedBySize) {
  Modeled M = model(Figure1Src);
  auto Classes = equivalenceClasses(*M.G, M.Result);
  ASSERT_EQ(Classes.size(), 4u);
  EXPECT_GE(Classes[0].second.size(), Classes[1].second.size());
  EXPECT_EQ(Classes[0].second.size(), 2u);
  EXPECT_EQ(Classes[3].second.size(), 1u);
}

TEST(HeapModeler, MergedObjectMapIsIdempotent) {
  Modeled M = model(Figure1Src);
  for (uint32_t I = 0; I < M.Result.MOM.size(); ++I)
    EXPECT_EQ(M.Result.MOM[M.Result.MOM[I].idx()], M.Result.MOM[I])
        << "representatives represent themselves";
}

TEST(HeapModeler, MergingRespectsTypes) {
  Modeled M = model(Figure1Src);
  for (uint32_t I = 0; I < M.Result.MOM.size(); ++I)
    EXPECT_EQ(M.P->obj(ObjId(I)).Type, M.P->obj(M.Result.MOM[I]).Type)
        << "an object and its representative always share a type";
}

// --- The partition-disagreement fallback (release-mode regression) ---

// A lying block oracle maps every start state to one block, forcing the
// grouping loop down the path where Hopcroft-Karp rejects candidate
// after candidate. The old code only handled rejection via an assert and
// (in release builds) forgot to register fresh groups with their block,
// so later objects were re-tested against a stale representative. The
// restructured loop must produce exactly the plain scan's groups under
// ANY oracle.
TEST(HeapModeler, LyingBlockOracleStillGroupsCorrectly) {
  workload::WorkloadSpec Spec;
  Spec.Seed = 7;
  Spec.Modules = 4;
  Spec.MixedPerMille = 150;
  auto P = workload::buildSyntheticProgram(Spec);
  ClassHierarchy CH(*P);
  pta::AnalysisOptions PreOpts;
  auto Pre = pta::runPointerAnalysis(*P, CH, PreOpts);
  FieldPointsToGraph G(*Pre);

  // Reference: the paper's plain object-vs-representative scan.
  DFACache ScanCache(G);
  HeapModelerOptions Scan;
  Scan.UsePartitionIndex = false;
  HeapModelerResult Want = modelHeap(G, ScanCache, Scan);

  // Materialize and pre-warm a fresh cache the way modelHeap does.
  DFACache Cache(G);
  for (ObjId O : G.reachableObjs()) {
    Cache.materialize(Cache.startFor(O));
    Cache.allSingletonOutputs(Cache.startFor(O));
  }
  std::map<uint32_t, std::vector<ObjId>> Buckets;
  for (ObjId O : G.reachableObjs())
    Buckets[P->obj(O).Type.idx()].push_back(O);

  std::vector<ObjId> MOM(P->numObjs());
  for (uint32_t I = 0; I < P->numObjs(); ++I)
    MOM[I] = ObjId(I);
  uint64_t PairsTested = 0;
  for (auto &[TypeIdx, Objs] : Buckets) {
    auto Groups = groupByBlockOracle(
        Objs, Cache, [](DFAStateId) { return 0u; },
        /*EnforceCondition2=*/true, PairsTested);
    // Consistency: groups cover the bucket exactly once, and every
    // member merges to the group's first (lowest-id) object.
    size_t Covered = 0;
    for (const std::vector<ObjId> &Group : Groups) {
      ASSERT_FALSE(Group.empty());
      Covered += Group.size();
      ObjId Repr = *std::min_element(Group.begin(), Group.end());
      for (ObjId Member : Group)
        MOM[Member.idx()] = Repr;
    }
    ASSERT_EQ(Covered, Objs.size());
  }
  EXPECT_EQ(MOM, Want.MOM)
      << "a degenerate oracle must not change the equivalence classes";
  EXPECT_GE(PairsTested, Want.PairsTested)
      << "the lying oracle can only add certification work, never skip it";
}

// --- Property sweeps ---

class HeapModelerPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(HeapModelerPropertyTest, PartitionIndexMatchesPlainScan) {
  workload::WorkloadSpec Spec;
  Spec.Seed = GetParam();
  Spec.Modules = 3 + GetParam() % 4;
  Spec.MixedPerMille = 150;
  Spec.ElemChainPerMille = 500;
  auto P = workload::buildSyntheticProgram(Spec);
  ClassHierarchy CH(*P);
  pta::AnalysisOptions PreOpts;
  auto Pre = pta::runPointerAnalysis(*P, CH, PreOpts);
  FieldPointsToGraph G(*Pre);

  DFACache CacheA(G), CacheB(G);
  HeapModelerOptions Scan;
  Scan.UsePartitionIndex = false;
  HeapModelerOptions Index;
  Index.UsePartitionIndex = true;
  HeapModelerResult A = modelHeap(G, CacheA, Scan);
  HeapModelerResult B = modelHeap(G, CacheB, Index);
  ASSERT_EQ(A.MOM, B.MOM) << "seed " << GetParam();
  EXPECT_EQ(A.NumClasses, B.NumClasses);
}

TEST_P(HeapModelerPropertyTest, ParallelMatchesSerial) {
  workload::WorkloadSpec Spec;
  Spec.Seed = GetParam() + 100;
  Spec.Modules = 3 + GetParam() % 4;
  auto P = workload::buildSyntheticProgram(Spec);
  ClassHierarchy CH(*P);
  pta::AnalysisOptions PreOpts;
  auto Pre = pta::runPointerAnalysis(*P, CH, PreOpts);
  FieldPointsToGraph G(*Pre);

  DFACache CacheA(G), CacheB(G);
  HeapModelerOptions Serial;
  Serial.Threads = 1;
  HeapModelerOptions Parallel;
  Parallel.Threads = 4;
  HeapModelerResult A = modelHeap(G, CacheA, Serial);
  HeapModelerResult B = modelHeap(G, CacheB, Parallel);
  ASSERT_EQ(A.MOM, B.MOM) << "seed " << GetParam();
}

TEST_P(HeapModelerPropertyTest, AgreesWithDefinition21OnRandomGraphs) {
  std::mt19937 Rng(GetParam() * 27644437 + 3);
  GraphSpec G;
  G.NumTypes = 1 + Rng() % 3;
  G.NumFields = 1 + Rng() % 2;
  unsigned N = 6 + Rng() % 8;
  for (unsigned I = 0; I < N; ++I)
    G.TypeOf.push_back(Rng() % G.NumTypes);
  for (unsigned I = 0; I < N; ++I) // acyclic: exact reference
    for (unsigned F = 0; F < G.NumFields; ++F)
      if (Rng() % 2 == 0 && I + 1 < N)
        G.Edges.push_back(
            {I, F, I + 1 + static_cast<unsigned>(Rng() % (N - I - 1))});
  auto P = buildGraphProgram(G);
  ClassHierarchy CH(*P);
  pta::AnalysisOptions PreOpts;
  auto Pre = pta::runPointerAnalysis(*P, CH, PreOpts);
  FieldPointsToGraph FPG(*Pre);
  DFACache Cache(FPG);
  HeapModelerResult R = modelHeap(FPG, Cache);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = I + 1; J < N; ++J) {
      bool Merged = R.MOM[graphObj(I).idx()] == R.MOM[graphObj(J).idx()];
      bool Want = G.TypeOf[I] == G.TypeOf[J] &&
                  refTypeConsistent(FPG, graphObj(I), graphObj(J), N + 3);
      ASSERT_EQ(Merged, Want)
          << "objects " << I << "," << J << " (seed " << GetParam() << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapModelerPropertyTest,
                         ::testing::Range(1u, 11u));
