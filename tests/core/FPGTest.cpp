//===-- tests/core/FPGTest.cpp -----------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/FieldPointsToGraph.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;
using namespace mahjong::test;

namespace {

std::unique_ptr<FieldPointsToGraph> buildFPG(const Analyzed &A) {
  return std::make_unique<FieldPointsToGraph>(*A.R);
}

} // namespace

TEST(FPG, EdgesFollowFieldPointsTo) {
  auto A = analyze(R"(
    class T { field f: T; field g: T; }
    class Main {
      static method main() {
        a = new T;   // o1
        b = new T;   // o2
        a.f = b;
      }
    }
  )");
  auto G = buildFPG(A);
  const std::vector<ObjId> &F = G->succ(ObjId(1), A.P->findField(
                                                      A.P->typeByName("T"),
                                                      "f"));
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0], ObjId(2));
}

TEST(FPG, NeverWrittenFieldsPointToNull) {
  auto A = analyze(R"(
    class T { field f: T; field g: T; }
    class Main {
      static method main() { a = new T; b = new T; a.f = b; }
    }
  )");
  auto G = buildFPG(A);
  FieldId GField = A.P->findField(A.P->typeByName("T"), "g");
  const std::vector<ObjId> &Succ = G->succ(ObjId(1), GField);
  ASSERT_EQ(Succ.size(), 1u);
  EXPECT_EQ(Succ[0], Program::nullObj()) << "null completion (paper §4.1)";
  // o2 has both fields null-completed.
  EXPECT_EQ(G->succ(ObjId(2), GField).front(), Program::nullObj());
}

TEST(FPG, NullHasSelfLoopsOnEveryField) {
  auto A = analyze(R"(
    class T { field f: T; }
    class Main { static method main() { a = new T; } }
  )");
  auto G = buildFPG(A);
  FieldId F = A.P->findField(A.P->typeByName("T"), "f");
  const std::vector<ObjId> &Succ = G->succ(Program::nullObj(), F);
  ASSERT_EQ(Succ.size(), 1u);
  EXPECT_EQ(Succ[0], Program::nullObj());
}

TEST(FPG, ExplicitNullStoreAddsNullEdge) {
  auto A = analyze(R"(
    class T { field f: T; }
    class Main {
      static method main() {
        a = new T;
        b = new T;
        n = null;
        a.f = b;
        a.f = n;   // both a real object and null flow into a.f
      }
    }
  )");
  auto G = buildFPG(A);
  FieldId F = A.P->findField(A.P->typeByName("T"), "f");
  const std::vector<ObjId> &Succ = G->succ(ObjId(1), F);
  EXPECT_EQ(Succ.size(), 2u);
  EXPECT_EQ(Succ[0], Program::nullObj());
  EXPECT_EQ(Succ[1], ObjId(2));
}

TEST(FPG, UnreachableObjectsExcluded) {
  auto A = analyze(R"(
    class T { field f: T; }
    class Main {
      static method main() { a = new T; }
      static method dead() { b = new T; }
    }
  )");
  auto G = buildFPG(A);
  EXPECT_TRUE(G->isReachable(ObjId(1)));
  EXPECT_FALSE(G->isReachable(ObjId(2)));
  EXPECT_EQ(G->numReachableObjs(), 1u);
  EXPECT_EQ(G->reachableObjs(), (std::vector<ObjId>{ObjId(1)}));
}

TEST(FPG, MissingFieldHasNoSuccessors) {
  auto A = analyze(R"(
    class T { field f: T; }
    class U { field g: U; }
    class Main { static method main() { a = new T; b = new U; } }
  )");
  auto G = buildFPG(A);
  FieldId GField = A.P->findField(A.P->typeByName("U"), "g");
  EXPECT_TRUE(G->succ(ObjId(1), GField).empty()) << "T has no field g";
}

TEST(FPG, NfaSizeCountsReachableObjects) {
  // Figure 2 shape: o1 -> {f: o3, g: o5}, o3 -> {h: o7}, o5 -> {k: o7}.
  GraphSpec G;
  G.NumTypes = 4;
  G.NumFields = 4;
  G.TypeOf = {0, 1, 2, 3}; // nodes 0..3
  G.Edges = {{0, 0, 1}, {0, 1, 2}, {1, 2, 3}, {2, 3, 3}};
  auto P = buildGraphProgram(G);
  ClassHierarchy CH(*P);
  pta::AnalysisOptions Opts;
  auto R = pta::runPointerAnalysis(*P, CH, Opts);
  FieldPointsToGraph FPG(*R);
  // From node 0: all 4 nodes + o_null (unwritten fields complete to null).
  EXPECT_EQ(FPG.nfaSize(graphObj(0)), 5u);
  // From node 3 (a leaf with all-null fields): itself + o_null.
  EXPECT_EQ(FPG.nfaSize(graphObj(3)), 2u);
}

TEST(FPG, EdgeAndFieldCountsAreConsistent) {
  auto A = analyze(R"(
    class T { field f: T; }
    class Main {
      static method main() { a = new T; b = new T; a.f = b; }
    }
  )");
  auto G = buildFPG(A);
  // Edges: (o1,f,o2) + null completion (o2,f,null) = 2.
  EXPECT_EQ(G->numEdges(), 2u);
  EXPECT_EQ(G->numFieldsUsed(), 1u);
}
