//===-- tests/support/ParallelTest.cpp ---------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The shared chunking helpers (support/Parallel.h) and the wave-parallel
// solver's per-worker DeltaBuffer (support/DeltaBuffer.h): boundary
// arithmetic, exactly-once coverage, exception propagation, and the
// single-store/zero-copy emission contract.
//
//===----------------------------------------------------------------------===//

#include "support/DeltaBuffer.h"
#include "support/Parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace mahjong;

TEST(Parallel, ChunkBeginPartitionsTheRange) {
  // Every (N, NumChunks) pair yields contiguous, non-overlapping,
  // exhaustive chunks whose sizes differ by at most one.
  for (size_t N : {0u, 1u, 2u, 7u, 8u, 9u, 100u, 1023u})
    for (size_t Chunks : {1u, 2u, 3u, 8u, 16u, 200u}) {
      EXPECT_EQ(chunkBegin(N, Chunks, 0), 0u);
      EXPECT_EQ(chunkBegin(N, Chunks, Chunks), N);
      size_t MinSize = N, MaxSize = 0;
      for (size_t C = 0; C < Chunks; ++C) {
        size_t B = chunkBegin(N, Chunks, C), E = chunkBegin(N, Chunks, C + 1);
        ASSERT_LE(B, E) << "N=" << N << " chunks=" << Chunks << " c=" << C;
        MinSize = std::min(MinSize, E - B);
        MaxSize = std::max(MaxSize, E - B);
      }
      EXPECT_LE(MaxSize - MinSize, 1u) << "N=" << N << " chunks=" << Chunks;
    }
}

TEST(Parallel, ParallelForCoversEachIndexExactlyOnce) {
  constexpr size_t N = 10007; // prime, so no chunk boundary aligns
  ThreadPool Pool(4);
  std::vector<std::atomic<uint32_t>> Hits(N);
  parallelFor(Pool, N, [&](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(Parallel, ParallelChunksAssignsItemsDeterministically) {
  // The chunk an item lands in depends only on (N, NumChunks) — the
  // contract the solver's shard buffers rely on.
  constexpr size_t N = 1000, Chunks = 8;
  ThreadPool Pool(4);
  std::vector<size_t> First(N), Second(N);
  for (std::vector<size_t> *Out : {&First, &Second})
    parallelChunks(Pool, N, Chunks, [&](size_t C, size_t B, size_t E) {
      for (size_t I = B; I < E; ++I)
        (*Out)[I] = C;
    });
  EXPECT_EQ(First, Second);
  // Contiguity: chunk ids are non-decreasing over the index space.
  EXPECT_TRUE(std::is_sorted(First.begin(), First.end()));
}

TEST(Parallel, SmallRangeRunsInlineAsOneChunk) {
  ThreadPool Pool(4);
  const std::thread::id Caller = std::this_thread::get_id();
  std::thread::id Ran;
  size_t Calls = 0;
  parallelChunks(Pool, 3, 1, [&](size_t C, size_t B, size_t E) {
    ++Calls;
    Ran = std::this_thread::get_id();
    EXPECT_EQ(C, 0u);
    EXPECT_EQ(B, 0u);
    EXPECT_EQ(E, 3u);
  });
  EXPECT_EQ(Calls, 1u);
  EXPECT_EQ(Ran, Caller) << "single chunk must run on the calling thread";
  // Empty range: body never runs.
  parallelFor(Pool, 0, [&](size_t) { FAIL() << "body called for N=0"; });
}

TEST(Parallel, WorkerExceptionPropagatesFromWait) {
  ThreadPool Pool(4);
  EXPECT_THROW(parallelFor(Pool, 512,
                           [](size_t I) {
                             if (I == 317)
                               throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The pool is reusable after an exception drained through wait().
  std::atomic<size_t> Count{0};
  parallelFor(Pool, 64, [&](size_t) { ++Count; });
  EXPECT_EQ(Count.load(), 64u);
}

TEST(DeltaBuffer, StoresDeltaOnceAndBucketsRecordsByShard) {
  DeltaBuffer Buf;
  Buf.reset(3);
  EXPECT_EQ(Buf.numTargetShards(), 3u);

  PointsToSet D1;
  D1.insert(5);
  D1.insert(900);
  uint32_t S1 = Buf.addDelta(/*Node=*/42, std::move(D1));
  // One stored set, fanned out to targets in different shards.
  Buf.emit(/*TargetShard=*/0, /*Target=*/7, S1, /*FilterPlus1=*/0);
  Buf.emit(2, 11, S1, 4);
  Buf.emit(2, 13, S1, 0);

  PointsToSet D2;
  D2.insert(1);
  uint32_t S2 = Buf.addDelta(43, std::move(D2));
  Buf.emit(1, 9, S2, 0);

  EXPECT_EQ(Buf.numDeltas(), 2u);
  EXPECT_EQ(Buf.numRecords(), 4u);
  ASSERT_EQ(Buf.records(0).size(), 1u);
  ASSERT_EQ(Buf.records(1).size(), 1u);
  ASSERT_EQ(Buf.records(2).size(), 2u);

  // Records reference the single stored set by slot — no copies.
  const DeltaBuffer::Record &R = Buf.records(2)[0];
  EXPECT_EQ(R.Target, 11u);
  EXPECT_EQ(R.DeltaSlot, S1);
  EXPECT_EQ(R.FilterPlus1, 4u);
  EXPECT_TRUE(Buf.delta(R.DeltaSlot).contains(900));
  EXPECT_EQ(Buf.records(2)[1].DeltaSlot, S1);
  EXPECT_EQ(Buf.records(1)[0].DeltaSlot, S2);

  // Wave order of stored deltas is preserved for the growth phase.
  EXPECT_EQ(Buf.deltaNode(0), 42u);
  EXPECT_EQ(Buf.deltaNode(1), 43u);
  EXPECT_EQ(Buf.deltaSet(1).size(), 1u);
}

TEST(DeltaBuffer, ResetClearsContentButKeepsShardCount) {
  DeltaBuffer Buf;
  Buf.reset(2);
  PointsToSet D;
  D.insert(3);
  Buf.emit(1, 8, Buf.addDelta(1, std::move(D)), 0);
  EXPECT_EQ(Buf.numRecords(), 1u);

  Buf.reset(2);
  EXPECT_EQ(Buf.numDeltas(), 0u);
  EXPECT_EQ(Buf.numRecords(), 0u);
  EXPECT_EQ(Buf.numTargetShards(), 2u);
  EXPECT_TRUE(Buf.records(0).empty());
  EXPECT_TRUE(Buf.records(1).empty());

  // Re-bucketing to a different shard count.
  Buf.reset(5);
  EXPECT_EQ(Buf.numTargetShards(), 5u);
}
