//===-- tests/support/ThreadPoolTest.cpp -------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

using namespace mahjong;

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool Pool(4);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.enqueue([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  Pool.enqueue([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 1);
  Pool.enqueue([&Counter] { ++Counter; });
  Pool.enqueue([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 3);
}

TEST(ThreadPool, WaitOnEmptyPoolReturns) {
  ThreadPool Pool(2);
  Pool.wait(); // must not hang
  SUCCEED();
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool Pool(1);
  std::atomic<int> Sum{0};
  for (int I = 1; I <= 10; ++I)
    Pool.enqueue([&Sum, I] { Sum += I; });
  Pool.wait();
  EXPECT_EQ(Sum.load(), 55);
}

TEST(ThreadPool, WaitRethrowsWorkerException) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  Pool.enqueue([&Ran] { ++Ran; });
  Pool.enqueue([] { throw std::runtime_error("task failed"); });
  Pool.enqueue([&Ran] { ++Ran; });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Ran.load(), 2) << "other tasks still ran to completion";
}

TEST(ThreadPool, PoolStaysUsableAfterException) {
  ThreadPool Pool(2);
  Pool.enqueue([] { throw std::runtime_error("first batch fails"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The error is consumed: the pool accepts and runs new work cleanly.
  std::atomic<int> Counter{0};
  for (int I = 0; I < 10; ++I)
    Pool.enqueue([&Counter] { ++Counter; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Counter.load(), 10);
}

TEST(ThreadPool, FirstOfManyExceptionsWins) {
  ThreadPool Pool(4);
  for (int I = 0; I < 8; ++I)
    Pool.enqueue([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_NO_THROW(Pool.wait()) << "remaining exceptions were dropped";
}

TEST(ThreadPool, DisjointWorkPartitionsAreRaceFree) {
  // The heap modeler's usage pattern: tasks write disjoint slots.
  ThreadPool Pool(4);
  std::vector<int> Slots(64, 0);
  for (int I = 0; I < 64; ++I)
    Pool.enqueue([&Slots, I] { Slots[I] = I * I; });
  Pool.wait();
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Slots[I], I * I);
}
