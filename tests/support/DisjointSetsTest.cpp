//===-- tests/support/DisjointSetsTest.cpp -----------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/DisjointSets.h"

#include <gtest/gtest.h>

#include <random>

using namespace mahjong;

TEST(DisjointSets, SingletonsInitially) {
  DisjointSets DS(5);
  EXPECT_EQ(DS.numSets(), 5u);
  for (uint32_t I = 0; I < 5; ++I) {
    EXPECT_EQ(DS.find(I), I);
    EXPECT_EQ(DS.setSize(I), 1u);
  }
}

TEST(DisjointSets, UniteMergesAndCounts) {
  DisjointSets DS(6);
  DS.unite(0, 1);
  DS.unite(2, 3);
  EXPECT_EQ(DS.numSets(), 4u);
  EXPECT_TRUE(DS.connected(0, 1));
  EXPECT_FALSE(DS.connected(0, 2));
  DS.unite(1, 3);
  EXPECT_TRUE(DS.connected(0, 2));
  EXPECT_EQ(DS.setSize(0), 4u);
  EXPECT_EQ(DS.numSets(), 3u);
}

TEST(DisjointSets, UniteIsIdempotent) {
  DisjointSets DS(3);
  DS.unite(0, 1);
  uint32_t Sets = DS.numSets();
  DS.unite(0, 1);
  DS.unite(1, 0);
  EXPECT_EQ(DS.numSets(), Sets);
  EXPECT_EQ(DS.setSize(1), 2u);
}

TEST(DisjointSets, GrowPreservesExistingSets) {
  DisjointSets DS(2);
  DS.unite(0, 1);
  DS.grow(5);
  EXPECT_EQ(DS.numSets(), 4u);
  EXPECT_TRUE(DS.connected(0, 1));
  EXPECT_FALSE(DS.connected(0, 4));
}

/// Property: after any random union sequence, connectivity matches a
/// naive label-propagation implementation.
TEST(DisjointSets, MatchesNaiveReferenceOnRandomSequences) {
  std::mt19937 Rng(42);
  for (int Round = 0; Round < 20; ++Round) {
    const uint32_t N = 64;
    DisjointSets DS(N);
    std::vector<uint32_t> Label(N);
    for (uint32_t I = 0; I < N; ++I)
      Label[I] = I;
    for (int Op = 0; Op < 100; ++Op) {
      uint32_t A = Rng() % N, B = Rng() % N;
      DS.unite(A, B);
      uint32_t LA = Label[A], LB = Label[B];
      for (uint32_t I = 0; I < N; ++I)
        if (Label[I] == LB)
          Label[I] = LA;
    }
    for (uint32_t I = 0; I < N; ++I)
      for (uint32_t J = I + 1; J < N; ++J)
        ASSERT_EQ(DS.connected(I, J), Label[I] == Label[J])
            << "round " << Round << " elements " << I << "," << J;
  }
}
