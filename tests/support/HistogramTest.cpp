//===-- tests/support/HistogramTest.cpp --------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

using namespace mahjong;

namespace {

//===----------------------------------------------------------------------===//
// Bucket math invariants
//===----------------------------------------------------------------------===//

TEST(Histogram, SmallValuesAreExactBuckets) {
  // Values below 2 * 2^SubBucketBits get a bucket each: zero error.
  for (uint64_t V = 0; V < 32; ++V) {
    EXPECT_EQ(LogHistogram::bucketOf(V), V);
    EXPECT_EQ(LogHistogram::bucketLow(V), V);
    EXPECT_EQ(LogHistogram::bucketHigh(V), V); // inclusive upper bound
  }
}

TEST(Histogram, BucketsPartitionTheRange) {
  // Consecutive buckets tile [low, high] with no gaps or overlaps
  // (bucketHigh is inclusive — it doubles as the Prometheus `le` bound).
  for (unsigned I = 0; I + 1 < LogHistogram::NumBuckets; ++I)
    EXPECT_EQ(LogHistogram::bucketHigh(I) + 1, LogHistogram::bucketLow(I + 1))
        << "gap after bucket " << I;
}

TEST(Histogram, EveryValueFallsInItsBucket) {
  // Probe across the whole 64-bit range: exact low/high boundaries of
  // every bucket must map back to it, and nothing past them may.
  for (unsigned I = 0; I < LogHistogram::NumBuckets; ++I) {
    uint64_t Low = LogHistogram::bucketLow(I);
    EXPECT_EQ(LogHistogram::bucketOf(Low), I);
    uint64_t High = LogHistogram::bucketHigh(I);
    EXPECT_EQ(LogHistogram::bucketOf(High), I);
    if (I + 1 < LogHistogram::NumBuckets) {
      EXPECT_EQ(LogHistogram::bucketOf(High + 1), I + 1);
    }
  }
  EXPECT_EQ(LogHistogram::bucketOf(~0ull), LogHistogram::NumBuckets - 1);
}

TEST(Histogram, RelativeErrorIsBounded) {
  // The log-linear layout guarantees bucket width <= value / 16, i.e.
  // at most ~6.25% relative quantization error for any recorded value.
  for (uint64_t E = 5; E < 63; ++E) {
    uint64_t V = (1ull << E) + (1ull << (E - 1)); // mid-range of octave E
    size_t B = LogHistogram::bucketOf(V);
    uint64_t Width =
        LogHistogram::bucketHigh(B) - LogHistogram::bucketLow(B);
    EXPECT_LE(Width * 16, LogHistogram::bucketLow(B) + Width)
        << "bucket " << B << " too wide for value " << V;
  }
}

//===----------------------------------------------------------------------===//
// Recording and aggregates
//===----------------------------------------------------------------------===//

TEST(Histogram, CountSumMaxMean) {
  LogHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentile(0.5), 0u);
  H.record(1);
  H.record(2);
  H.record(9);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 12u);
  EXPECT_EQ(H.max(), 9u);
  EXPECT_DOUBLE_EQ(H.mean(), 4.0);
}

TEST(Histogram, MergeFromAccumulates) {
  LogHistogram A, B;
  for (uint64_t V = 0; V < 100; ++V)
    A.record(V);
  for (uint64_t V = 1000; V < 1100; ++V)
    B.record(V);
  A.mergeFrom(B);
  EXPECT_EQ(A.count(), 200u);
  EXPECT_EQ(A.max(), 1099u);
  EXPECT_EQ(A.sum(), 4950u + (1000u + 1099u) * 100u / 2u);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  LogHistogram H;
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&H, T] {
      uint64_t S = splitmix64(T + 1);
      for (uint64_t I = 0; I < PerThread; ++I) {
        S = splitmix64(S);
        H.record(S % 1000000);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(H.count(), Threads * PerThread);
}

//===----------------------------------------------------------------------===//
// Percentiles vs the exact sorted-sample answer (satellite: the shared
// histogram replaced sort-based percentiles in the traffic driver; these
// pin the two within one bucket width on adversarial shapes).
//===----------------------------------------------------------------------===//

// The exact value the old sort-based path would have returned.
uint64_t exactPercentile(std::vector<uint64_t> Sorted, double Q) {
  size_t Idx = std::min(Sorted.size() - 1,
                        static_cast<size_t>(Q * Sorted.size()));
  return Sorted[Idx];
}

void expectWithinOneBucket(const std::vector<uint64_t> &Samples) {
  LogHistogram H;
  for (uint64_t V : Samples)
    H.record(V);
  std::vector<uint64_t> Sorted = Samples;
  std::sort(Sorted.begin(), Sorted.end());
  for (double Q : {0.50, 0.95, 0.99}) {
    uint64_t Exact = exactPercentile(Sorted, Q);
    size_t B = LogHistogram::bucketOf(Exact);
    uint64_t Got = H.percentile(Q);
    EXPECT_GE(Got, LogHistogram::bucketLow(B))
        << "p" << Q * 100 << ": exact " << Exact;
    EXPECT_LE(Got, LogHistogram::bucketHigh(B))
        << "p" << Q * 100 << ": exact " << Exact;
  }
}

TEST(Histogram, PercentilesMatchSortOnZipfSkew) {
  // Zipf-ish long tail: many tiny latencies, few huge ones.
  std::vector<uint64_t> Samples;
  uint64_t S = 42;
  for (unsigned I = 0; I < 50000; ++I) {
    S = splitmix64(S);
    double U = (S >> 11) * (1.0 / 9007199254740992.0);
    // Inverse-power transform: rank^(1/s) tail with s ~ 1.2.
    Samples.push_back(
        static_cast<uint64_t>(200.0 / std::pow(1.0 - U, 1.0 / 1.2)));
  }
  expectWithinOneBucket(Samples);
}

TEST(Histogram, PercentilesMatchSortOnConstant) {
  std::vector<uint64_t> Samples(10000, 777);
  expectWithinOneBucket(Samples);
  LogHistogram H;
  for (uint64_t V : Samples)
    H.record(V);
  // All mass in one bucket: every percentile is that bucket's midpoint.
  EXPECT_EQ(H.percentile(0.5), H.percentile(0.99));
}

TEST(Histogram, PercentilesMatchSortOnBimodal) {
  // Cache-hit/miss shape: 90% fast mode, 10% slow mode, 3 decades apart.
  std::vector<uint64_t> Samples;
  uint64_t S = 7;
  for (unsigned I = 0; I < 50000; ++I) {
    S = splitmix64(S);
    uint64_t Base = (S % 10 == 0) ? 800000 : 900;
    Samples.push_back(Base + splitmix64(S) % (Base / 4));
  }
  expectWithinOneBucket(Samples);
}

} // namespace
