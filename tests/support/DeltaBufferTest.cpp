//===-- tests/support/DeltaBufferTest.cpp ------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// DeltaBuffer semantics plus its capacity-retention contract: reset()
// recycles every byte of storage — bucket vectors and delta slots alike —
// so the wave-parallel solver's steady-state wave loop allocates nothing
// per wave. The capacity probes pin that as a regression test: capacities
// after a refill of the same shape must equal the capacities before the
// reset.
//
//===----------------------------------------------------------------------===//

#include "support/DeltaBuffer.h"

#include <gtest/gtest.h>

using namespace mahjong;

namespace {

/// A representative wave's worth of traffic: \p NumDeltas deltas, each
/// emitted to two targets spread round-robin over the buckets.
void fillTypicalWave(DeltaBuffer &Buf, uint32_t NumShards,
                     uint32_t NumDeltas) {
  Buf.reset(NumShards);
  for (uint32_t I = 0; I < NumDeltas; ++I) {
    PointsToSet Delta;
    Delta.insert(I);
    Delta.insert(I + 1000);
    uint32_t Slot = Buf.addDelta(/*Node=*/I, std::move(Delta));
    Buf.emit(I % NumShards, /*Target=*/I, Slot, /*FilterPlus1=*/0);
    Buf.emit((I + 1) % NumShards, /*Target=*/I + 1, Slot, /*FilterPlus1=*/3);
  }
}

} // namespace

TEST(DeltaBuffer, RecordsLandInTheirBucketInEmissionOrder) {
  DeltaBuffer Buf;
  Buf.reset(4);
  PointsToSet D1, D2;
  D1.insert(7);
  D2.insert(8);
  uint32_t S1 = Buf.addDelta(10, std::move(D1));
  uint32_t S2 = Buf.addDelta(11, std::move(D2));
  Buf.emit(2, 102, S1, 0);
  Buf.emit(2, 202, S2, 5);
  Buf.emit(0, 100, S1, 0);

  EXPECT_EQ(Buf.numDeltas(), 2u);
  EXPECT_EQ(Buf.numRecords(), 3u);
  ASSERT_EQ(Buf.records(2).size(), 2u);
  EXPECT_EQ(Buf.records(2)[0].Target, 102u);
  EXPECT_EQ(Buf.records(2)[1].Target, 202u);
  EXPECT_EQ(Buf.records(2)[1].FilterPlus1, 5u);
  EXPECT_EQ(Buf.records(1).size(), 0u);
  EXPECT_TRUE(Buf.delta(S1).contains(7));
  EXPECT_EQ(Buf.deltaNode(0), 10u);
  EXPECT_EQ(Buf.deltaNode(1), 11u);
}

TEST(DeltaBuffer, ResetEmptiesButRetainsEveryCapacity) {
  DeltaBuffer Buf;
  fillTypicalWave(Buf, 8, 64);
  ASSERT_EQ(Buf.numDeltas(), 64u);
  ASSERT_EQ(Buf.numRecords(), 128u);

  size_t SlotCap = Buf.deltaSlotCapacity();
  size_t BucketCap = Buf.totalBucketCapacity();
  ASSERT_GE(SlotCap, 64u);
  ASSERT_GT(BucketCap, 0u);

  Buf.reset(8);
  // Logically empty...
  EXPECT_EQ(Buf.numDeltas(), 0u);
  EXPECT_EQ(Buf.numRecords(), 0u);
  for (uint32_t S = 0; S < 8; ++S)
    EXPECT_TRUE(Buf.records(S).empty());
  // ...but no storage was released.
  EXPECT_EQ(Buf.deltaSlotCapacity(), SlotCap);
  EXPECT_EQ(Buf.totalBucketCapacity(), BucketCap);
}

TEST(DeltaBuffer, SteadyStateWavesAllocateNothing) {
  // The regression the probes exist for: after the first wave grows the
  // buffer, every identically-shaped later wave must run entirely inside
  // retained capacity — the solver resets thousands of times per run.
  DeltaBuffer Buf;
  fillTypicalWave(Buf, 8, 64);
  size_t SlotCap = Buf.deltaSlotCapacity();
  size_t BucketCap = Buf.totalBucketCapacity();
  for (int Wave = 0; Wave < 10; ++Wave) {
    fillTypicalWave(Buf, 8, 64);
    EXPECT_EQ(Buf.deltaSlotCapacity(), SlotCap) << "wave " << Wave;
    EXPECT_EQ(Buf.totalBucketCapacity(), BucketCap) << "wave " << Wave;
  }
  // Delta contents are correct even though slots were recycled.
  EXPECT_TRUE(Buf.delta(5).contains(5));
  EXPECT_TRUE(Buf.delta(5).contains(1005));
  EXPECT_EQ(Buf.delta(5).size(), 2u);
}

TEST(DeltaBuffer, ShrinkingShardCountLeavesNoStaleRecords) {
  // The solver's live sub-chunk count varies per wave; a reset to fewer
  // shards must still empty the now-out-of-range buckets (and keep their
  // storage for when the width grows back).
  DeltaBuffer Buf;
  fillTypicalWave(Buf, 8, 16);
  size_t BucketCap = Buf.totalBucketCapacity();
  Buf.reset(2);
  EXPECT_EQ(Buf.numTargetShards(), 2u);
  EXPECT_EQ(Buf.numRecords(), 0u);
  EXPECT_EQ(Buf.totalBucketCapacity(), BucketCap);
  // Growing back re-exposes the retained buckets, still empty.
  Buf.reset(8);
  EXPECT_EQ(Buf.numRecords(), 0u);
  EXPECT_EQ(Buf.totalBucketCapacity(), BucketCap);
}

TEST(DeltaBuffer, RecycledSlotsOverwriteCleanly) {
  DeltaBuffer Buf;
  Buf.reset(1);
  PointsToSet Big;
  for (uint32_t I = 0; I < 100; ++I)
    Big.insert(I * 3);
  Buf.addDelta(1, std::move(Big));

  Buf.reset(1);
  PointsToSet Small;
  Small.insert(999);
  uint32_t Slot = Buf.addDelta(2, std::move(Small));
  EXPECT_EQ(Slot, 0u); // slot 0 recycled
  EXPECT_EQ(Buf.numDeltas(), 1u);
  EXPECT_EQ(Buf.deltaNode(0), 2u);
  // The recycled slot holds exactly the new delta, nothing stale.
  EXPECT_EQ(Buf.delta(0).size(), 1u);
  EXPECT_TRUE(Buf.delta(0).contains(999));
  EXPECT_FALSE(Buf.delta(0).contains(0));
}
