//===-- tests/support/PointsToSetTest.cpp ------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/PointsToSet.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace mahjong;

TEST(PointsToSet, EmptyInitially) {
  PointsToSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.size(), 0u);
  EXPECT_FALSE(S.contains(0));
  EXPECT_EQ(S.begin(), S.end());
}

TEST(PointsToSet, InsertAndContains) {
  PointsToSet S;
  EXPECT_TRUE(S.insert(5));
  EXPECT_FALSE(S.insert(5));
  EXPECT_TRUE(S.insert(64)); // next chunk
  EXPECT_TRUE(S.insert(63)); // same chunk as 5
  EXPECT_EQ(S.size(), 3u);
  EXPECT_TRUE(S.contains(5));
  EXPECT_TRUE(S.contains(63));
  EXPECT_TRUE(S.contains(64));
  EXPECT_FALSE(S.contains(6));
  EXPECT_FALSE(S.contains(65));
}

TEST(PointsToSet, IterationIsAscending) {
  PointsToSet S;
  for (uint32_t E : {300u, 0u, 64u, 65u, 1u, 1000000u})
    S.insert(E);
  std::vector<uint32_t> Got(S.begin(), S.end());
  EXPECT_EQ(Got, (std::vector<uint32_t>{0, 1, 64, 65, 300, 1000000}));
  EXPECT_EQ(S.toVector(), Got);
}

TEST(PointsToSet, ChunkBoundaries) {
  PointsToSet S;
  for (uint32_t E : {63u, 64u, 127u, 128u})
    S.insert(E);
  EXPECT_EQ(S.size(), 4u);
  for (uint32_t E : {63u, 64u, 127u, 128u})
    EXPECT_TRUE(S.contains(E));
  EXPECT_FALSE(S.contains(62));
  EXPECT_FALSE(S.contains(129));
}

TEST(PointsToSet, UnionWithDisjoint) {
  PointsToSet A, B;
  A.insert(1);
  B.insert(100);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B)); // now a subset
  EXPECT_EQ(A.size(), 2u);
  EXPECT_TRUE(A.contains(1));
  EXPECT_TRUE(A.contains(100));
  EXPECT_EQ(B.size(), 1u) << "union must not mutate the argument";
}

TEST(PointsToSet, UnionWithOverlapping) {
  PointsToSet A, B;
  for (uint32_t E : {1u, 2u, 70u})
    A.insert(E);
  for (uint32_t E : {2u, 70u, 71u})
    B.insert(E);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_EQ(A.size(), 4u);
}

TEST(PointsToSet, UnionWithEmptySides) {
  PointsToSet A, B;
  A.insert(3);
  EXPECT_FALSE(A.unionWith(B));
  EXPECT_TRUE(B.unionWith(A));
  EXPECT_EQ(B.size(), 1u);
}

TEST(PointsToSet, DifferenceFrom) {
  PointsToSet Mine, Other;
  for (uint32_t E : {1u, 64u})
    Mine.insert(E);
  for (uint32_t E : {1u, 2u, 64u, 65u, 200u})
    Other.insert(E);
  PointsToSet Diff = Mine.differenceFrom(Other); // Other \ Mine
  EXPECT_EQ(Diff.toVector(), (std::vector<uint32_t>{2, 65, 200}));
}

TEST(PointsToSet, DifferenceFromSubsetIsEmpty) {
  PointsToSet Mine, Other;
  for (uint32_t E : {1u, 2u, 3u})
    Mine.insert(E);
  Other.insert(2);
  EXPECT_TRUE(Mine.differenceFrom(Other).empty());
}

TEST(PointsToSet, EqualityComparesContents) {
  PointsToSet A, B;
  A.insert(1);
  A.insert(100);
  B.insert(100);
  B.insert(1);
  EXPECT_TRUE(A == B);
  B.insert(2);
  EXPECT_FALSE(A == B);
}

TEST(PointsToSet, ClearResets) {
  PointsToSet S;
  S.insert(42);
  S.clear();
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.size(), 0u);
  EXPECT_FALSE(S.contains(42));
}

TEST(PointsToSet, NoOpUnionKeepsCountExact) {
  // Subset unions (no-ops) must neither change contents nor drift Count.
  PointsToSet A, Sub;
  for (uint32_t E : {1u, 63u, 64u, 200u, 4096u})
    A.insert(E);
  for (uint32_t E : {63u, 200u})
    Sub.insert(E);
  PointsToSet Before = A;
  for (int Round = 0; Round < 3; ++Round) {
    EXPECT_FALSE(A.unionWith(Sub));
    EXPECT_FALSE(A.unionWith(A));
    EXPECT_EQ(A.size(), 5u);
    EXPECT_TRUE(A == Before);
  }
}

TEST(PointsToSet, FastPathAppendKeepsCountExact) {
  // Other entirely beyond our maximum chunk: the append fast path.
  PointsToSet A, Tail;
  for (uint32_t E : {1u, 2u, 100u})
    A.insert(E);
  for (uint32_t E : {1000u, 1001u, 2000u})
    Tail.insert(E);
  EXPECT_TRUE(A.unionWith(Tail));
  EXPECT_EQ(A.size(), 6u);
  EXPECT_EQ(A.toVector(),
            (std::vector<uint32_t>{1, 2, 100, 1000, 1001, 2000}));
  EXPECT_FALSE(A.unionWith(Tail)) << "the same append again is a no-op";
  EXPECT_EQ(A.size(), 6u);
}

TEST(PointsToSet, OverlappingUnionKeepsCountExact) {
  // Shared chunks with partially-new words, interleaved with chunks only
  // one side has — the general merge.
  PointsToSet A, B;
  for (uint32_t E : {0u, 1u, 64u, 300u})
    A.insert(E);
  for (uint32_t E : {1u, 65u, 128u, 300u, 301u})
    B.insert(E);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_EQ(A.size(), 7u);
  EXPECT_EQ(A.toVector(), (std::vector<uint32_t>{0, 1, 64, 65, 128, 300, 301}));
  EXPECT_FALSE(A.unionWith(B)) << "B is now a subset";
  EXPECT_EQ(A.size(), 7u);
}

TEST(PointsToSet, NoOpUnionWithInterleavedUniqueChunks) {
  // A owns chunks Other lacks on both sides of every shared chunk: the
  // no-op pre-scan must skip over them without declaring a change.
  PointsToSet A, Sub;
  for (uint32_t E : {0u, 128u, 256u, 384u})
    A.insert(E);
  for (uint32_t E : {128u, 384u})
    Sub.insert(E);
  EXPECT_FALSE(A.unionWith(Sub));
  EXPECT_EQ(A.size(), 4u);
}

/// Property: a random operation sequence matches std::set semantics.
class PointsToSetRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PointsToSetRandomTest, MatchesStdSetReference) {
  std::mt19937 Rng(GetParam());
  PointsToSet S;
  std::set<uint32_t> Ref;
  auto RandomElem = [&] {
    // Mix tight and sparse ids so chunks are exercised both dense and
    // sparse.
    return Rng() % 2 ? Rng() % 128 : Rng() % 100000;
  };
  for (int Op = 0; Op < 500; ++Op) {
    switch (Rng() % 3) {
    case 0: {
      uint32_t E = RandomElem();
      ASSERT_EQ(S.insert(E), Ref.insert(E).second);
      break;
    }
    case 1: {
      PointsToSet B;
      std::set<uint32_t> BRef;
      for (int I = 0, N = Rng() % 20; I < N; ++I) {
        uint32_t E = RandomElem();
        B.insert(E);
        BRef.insert(E);
      }
      bool Changed = S.unionWith(B);
      size_t Before = Ref.size();
      Ref.insert(BRef.begin(), BRef.end());
      ASSERT_EQ(Changed, Ref.size() != Before);
      break;
    }
    case 2: {
      uint32_t E = RandomElem();
      ASSERT_EQ(S.contains(E), Ref.count(E) > 0);
      break;
    }
    }
    ASSERT_EQ(S.size(), Ref.size());
  }
  ASSERT_EQ(S.toVector(), std::vector<uint32_t>(Ref.begin(), Ref.end()));
  // differenceFrom against a random probe set.
  PointsToSet Probe;
  std::set<uint32_t> ProbeRef;
  for (int I = 0; I < 100; ++I) {
    uint32_t E = RandomElem();
    Probe.insert(E);
    ProbeRef.insert(E);
  }
  std::vector<uint32_t> WantDiff;
  for (uint32_t E : ProbeRef)
    if (!Ref.count(E))
      WantDiff.push_back(E);
  ASSERT_EQ(S.differenceFrom(Probe).toVector(), WantDiff);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointsToSetRandomTest,
                         ::testing::Range(1u, 13u));
