//===-- tests/support/InternerTest.cpp ---------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Interner.h"

#include "support/Ids.h"

#include <gtest/gtest.h>

using namespace mahjong;

namespace {
struct TestTag;
using TestId = Id<TestTag>;
} // namespace

TEST(Interner, AssignsDenseIdsInInsertionOrder) {
  Interner<TestId, uint64_t> I;
  EXPECT_EQ(I.intern(42).idx(), 0u);
  EXPECT_EQ(I.intern(7).idx(), 1u);
  EXPECT_EQ(I.intern(42).idx(), 0u) << "re-interning must return the same id";
  EXPECT_EQ(I.size(), 2u);
}

TEST(Interner, GetReturnsInternedValue) {
  Interner<TestId, uint64_t> I;
  TestId A = I.intern(123456789ull);
  EXPECT_EQ(I.get(A), 123456789ull);
}

TEST(Interner, LookupDoesNotIntern) {
  Interner<TestId, uint64_t> I;
  EXPECT_FALSE(I.lookup(9).isValid());
  EXPECT_EQ(I.size(), 0u);
  I.intern(9);
  EXPECT_TRUE(I.lookup(9).isValid());
  EXPECT_EQ(I.size(), 1u);
}

TEST(Interner, VectorKeysWithVectorHash) {
  Interner<TestId, std::vector<uint32_t>, VectorHash> I;
  TestId Empty = I.intern({});
  TestId AB = I.intern({1, 2});
  TestId BA = I.intern({2, 1});
  EXPECT_NE(AB, BA) << "order matters for vector keys";
  EXPECT_EQ(I.intern({}), Empty);
  EXPECT_EQ(I.intern({1, 2}), AB);
  EXPECT_EQ(I.get(AB), (std::vector<uint32_t>{1, 2}));
}

TEST(StrongIds, DistinctTagsDoNotCompare) {
  TypeId T(3);
  EXPECT_EQ(T.idx(), 3u);
  EXPECT_TRUE(T.isValid());
  EXPECT_FALSE(TypeId::invalid().isValid());
  EXPECT_LT(TypeId(1), TypeId(2));
  EXPECT_EQ(std::hash<TypeId>()(TypeId(7)), std::hash<uint32_t>()(7u));
}
