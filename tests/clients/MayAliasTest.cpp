//===-- tests/clients/MayAliasTest.cpp ---------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The may-alias client — and the paper's documented trade-off: MAHJONG
// targets type-dependent clients, so merging type-consistent objects is
// allowed to (and does) cost alias precision even while the three
// type-dependent clients stay exact.
//
//===----------------------------------------------------------------------===//

#include "clients/Clients.h"

#include "../TestUtil.h"
#include "core/Mahjong.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::clients;
using namespace mahjong::ir;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

const char *Figure1Src = R"(
  class A { field f: A; method foo() { return this; } }
  class B extends A { method foo() { return this; } }
  class C extends A { method foo() { return this; } }
  class Main {
    static method main() {
      x = new A;
      y = new A;
      z = new A;
      xf = new B;
      x.f = xf;
      yf = new C;
      y.f = yf;
      zf = new C;
      z.f = zf;
      a = z.f;
      a.foo();
      c = (C) a;
    }
  }
)";

} // namespace

TEST(MayAlias, BasicQueries) {
  auto A = analyze(R"(
    class T { }
    class Main {
      static method main() {
        p = new T;
        q = p;
        r = new T;
        n = null;
        m = null;
      }
    }
  )");
  auto V = [&](const char *Name) {
    return findVar(*A.P, "Main.main/0", Name);
  };
  EXPECT_TRUE(mayAlias(*A.R, V("p"), V("q")));
  EXPECT_FALSE(mayAlias(*A.R, V("p"), V("r")));
  EXPECT_FALSE(mayAlias(*A.R, V("n"), V("m")))
      << "two nulls do not alias";
  EXPECT_TRUE(mayAlias(*A.R, V("p"), V("p"))) << "self-alias";
}

TEST(MayAlias, AllocSiteKeepsFigure1VarsApart) {
  auto A = analyze(Figure1Src);
  auto V = [&](const char *Name) {
    return findVar(*A.P, "Main.main/0", Name);
  };
  EXPECT_FALSE(mayAlias(*A.R, V("y"), V("z")));
  EXPECT_FALSE(mayAlias(*A.R, V("yf"), V("zf")));
}

TEST(MayAlias, MahjongTradesAliasPrecisionForSpeed) {
  // The documented §1/§2 trade-off: under MAHJONG the merged o2/o3 (and
  // o5/o6) make y/z and yf/zf alias — while the type-dependent clients
  // remain exact (ClientsTest.Figure1UnderMahjong).
  auto P = parseOrDie(Figure1Src);
  ClassHierarchy CH(*P);
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  AnalysisOptions Opts;
  Opts.Heap = MR.Heap.get();
  auto R = runPointerAnalysis(*P, CH, Opts);
  auto V = [&](const char *Name) {
    return findVar(*P, "Main.main/0", Name);
  };
  EXPECT_TRUE(mayAlias(*R, V("y"), V("z")))
      << "merged sites alias under MAHJONG";
  EXPECT_TRUE(mayAlias(*R, V("yf"), V("zf")));
  EXPECT_FALSE(mayAlias(*R, V("x"), V("y")))
      << "o1 stayed unmerged, so x/y still do not alias";
}

TEST(MayAlias, AggregatePairCountOrdersAbstractions) {
  // alias pairs: alloc-site <= mahjong <= alloc-type (coarser heaps can
  // only add alias pairs).
  auto P = parseOrDie(Figure1Src);
  ClassHierarchy CH(*P);
  MethodId Main = P->entryMethod();

  AnalysisOptions Base;
  auto BaseR = runPointerAnalysis(*P, CH, Base);
  uint64_t BasePairs = countAliasedLocalPairs(*BaseR, Main);

  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  AnalysisOptions MOpts;
  MOpts.Heap = MR.Heap.get();
  auto Mres = runPointerAnalysis(*P, CH, MOpts);
  uint64_t MPairs = countAliasedLocalPairs(*Mres, Main);

  AllocTypeAbstraction TypeHeap(*P);
  AnalysisOptions TOpts;
  TOpts.Heap = &TypeHeap;
  auto Tres = runPointerAnalysis(*P, CH, TOpts);
  uint64_t TPairs = countAliasedLocalPairs(*Tres, Main);

  EXPECT_LT(BasePairs, MPairs) << "MAHJONG costs alias precision";
  EXPECT_LE(MPairs, TPairs) << "but less than blind type merging";
}
