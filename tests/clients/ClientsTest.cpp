//===-- tests/clients/ClientsTest.cpp ----------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The three type-dependent clients, including the paper's Figure 1
// comparison of the allocation-site, allocation-type, and MAHJONG heaps.
//
//===----------------------------------------------------------------------===//

#include "clients/Clients.h"

#include "../TestUtil.h"
#include "core/Mahjong.h"

#include <gtest/gtest.h>

using namespace mahjong;
using namespace mahjong::clients;
using namespace mahjong::ir;
using namespace mahjong::pta;
using namespace mahjong::test;

namespace {

const char *Figure1Src = R"(
  class A { field f: A; method foo() { return this; } }
  class B extends A { method foo() { return this; } }
  class C extends A { method foo() { return this; } }
  class Main {
    static method main() {
      x = new A;
      y = new A;
      z = new A;
      xf = new B;
      x.f = xf;
      yf = new C;
      y.f = yf;
      zf = new C;
      z.f = zf;
      a = z.f;
      a.foo();     // mono-call in truth
      c = (C) a;   // safe in truth
    }
  }
)";

} // namespace

TEST(Clients, Figure1UnderAllocSite) {
  auto A = analyze(Figure1Src);
  ClientResults CR = evaluateClients(*A.R);
  EXPECT_EQ(CR.PolyCallSites, 0u);
  EXPECT_EQ(CR.MonoCallSites, 1u) << "a.foo() is devirtualizable";
  EXPECT_EQ(CR.MayFailCasts, 0u) << "(C) a is safe";
  EXPECT_EQ(CR.TotalCasts, 1u);
}

TEST(Clients, Figure1UnderAllocType) {
  auto P = parseOrDie(Figure1Src);
  ClassHierarchy CH(*P);
  AllocTypeAbstraction Heap(*P);
  AnalysisOptions Opts;
  Opts.Heap = &Heap;
  auto R = runPointerAnalysis(*P, CH, Opts);
  ClientResults CR = evaluateClients(*R);
  EXPECT_EQ(CR.PolyCallSites, 1u) << "a.foo() becomes a poly-call";
  EXPECT_EQ(CR.MayFailCasts, 1u) << "(C) a may now fail";
}

TEST(Clients, Figure1UnderMahjong) {
  auto P = parseOrDie(Figure1Src);
  ClassHierarchy CH(*P);
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  AnalysisOptions Opts;
  Opts.Heap = MR.Heap.get();
  auto R = runPointerAnalysis(*P, CH, Opts);
  ClientResults CR = evaluateClients(*R);
  EXPECT_EQ(CR.PolyCallSites, 0u) << "MAHJONG preserves devirtualization";
  EXPECT_EQ(CR.MayFailCasts, 0u) << "MAHJONG preserves cast safety";
}

TEST(Clients, GenuinelyUnsafeCastIsAlwaysReported) {
  auto A = analyze(R"(
    class A { }
    class B extends A { }
    class C extends A { }
    class Main {
      static method main() {
        x = new B;
        c = (C) x;   // always fails at runtime
      }
    }
  )");
  ClientResults CR = evaluateClients(*A.R);
  EXPECT_EQ(CR.MayFailCasts, 1u);
}

TEST(Clients, NullOnlyCastIsSafe) {
  auto A = analyze(R"(
    class C { }
    class Main { static method main() { x = null; c = (C) x; } }
  )");
  EXPECT_EQ(evaluateClients(*A.R).MayFailCasts, 0u);
}

TEST(Clients, CastsInUnreachableCodeAreNotCounted) {
  auto A = analyze(R"(
    class A { }
    class B extends A { }
    class Main {
      static method main() { x = new B; }
      static method dead() { y = new A; c = (B) y; }
    }
  )");
  ClientResults CR = evaluateClients(*A.R);
  EXPECT_EQ(CR.TotalCasts, 0u);
  EXPECT_EQ(CR.MayFailCasts, 0u);
}

TEST(Clients, PolyAndMonoCountVirtualSitesOnly) {
  auto A = analyze(R"(
    class A { method m() { return this; } }
    class B extends A { method m() { return this; } }
    class Main {
      static method main() {
        mono = new A;
        mono.m();
        poly = new A;
        poly = Main::mix(poly);
        poly.m();
        Main::help();        // static call: neither poly nor mono
      }
      static method mix(p) { q = new B; return q; }
      static method help() { }
    }
  )");
  ClientResults CR = evaluateClients(*A.R);
  EXPECT_EQ(CR.MonoCallSites, 1u);
  EXPECT_EQ(CR.PolyCallSites, 1u);
}

TEST(Clients, VirtualTargetsHelper) {
  auto A = analyze(R"(
    class A { method m() { return this; } }
    class B extends A { method m() { return this; } }
    class Main {
      static method main() {
        x = new A;
        x = new B;
        x.m();
      }
    }
  )");
  // The call site is the only one in main.
  std::vector<CallSiteId> Sites = A.R->CG.callSitesWithEdges();
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(virtualTargets(*A.R, Sites[0]).size(), 2u);
}

TEST(Clients, ToStringMentionsAllMetrics) {
  ClientResults CR;
  CR.CallGraphEdges = 12;
  CR.PolyCallSites = 3;
  CR.MayFailCasts = 4;
  CR.TotalCasts = 9;
  std::string S = toString(CR);
  EXPECT_NE(S.find("edges=12"), std::string::npos);
  EXPECT_NE(S.find("poly=3"), std::string::npos);
  EXPECT_NE(S.find("mayfail=4/9"), std::string::npos);
}

TEST(Clients, CastMayFailChecksEveryContext) {
  // Under 2obj the cast is safe in one context, unsafe in another: the
  // client must report it.
  auto A = analyze(R"(
    class T { }
    class U { }
    class Id { method id(p) { return p; } }
    class Main {
      static method main() {
        h1 = new Id;
        h2 = new Id;
        t = new T;
        u = new U;
        rt = h1.id(t);
        ru = h2.id(u);
        c = (T) ru;    // fails: ru is a U
      }
    }
  )",
                   ContextKind::Object, 2);
  EXPECT_EQ(evaluateClients(*A.R).MayFailCasts, 1u);
}
