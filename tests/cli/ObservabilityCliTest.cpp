//===-- tests/cli/ObservabilityCliTest.cpp -----------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The CLI observability surface, driven in-process through cli::runCli:
// --trace-out / --metrics-out / --stats-json on analyze, the gen
// command, the serve-side stats query verb, and the serve-bench
// heartbeat. The --stats-json rendering is pinned by a golden body:
// timing-dependent numbers are normalized away, while the counters
// section — solver and client aggregates that are deterministic for the
// fixture — must match byte for byte.
//
//===----------------------------------------------------------------------===//

#include "cli/Driver.h"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace mahjong;

namespace {

struct CliRun {
  int Exit;
  std::string Out;
  std::string Err;
};

CliRun run(std::vector<std::string> Args) {
  std::vector<const char *> Argv{"mahjong-cli"};
  for (const std::string &A : Args)
    Argv.push_back(A.c_str());
  std::ostringstream Out, Err;
  int Exit = cli::runCli(static_cast<int>(Argv.size()), Argv.data(), Out,
                         Err);
  return {Exit, Out.str(), Err.str()};
}

std::string writeFile(const std::string &Name, std::string_view Body) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::ofstream(Path) << Body;
  return Path;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

constexpr std::string_view FixtureSrc = R"(
  class A { method m(p) { return p; } }
  class B extends A { method m(p) { return this; } }
  class Main {
    static method main() {
      a = new A;
      b = new B;
      x = a;
      x = b;
      r = x.m(b);
      c = (B) x;
    }
  }
)";

/// Normalizes a --stats-json body for golden comparison: the counters
/// section and histogram "count" lines stay verbatim (deterministic for
/// a fixed fixture and solver), every other numeric value becomes 0 and
/// bucket arrays are emptied (timing-dependent).
std::string normalizeStatsJson(const std::string &Json) {
  std::istringstream In(Json);
  std::ostringstream Out;
  std::string Line;
  bool InCounters = false;
  while (std::getline(In, Line)) {
    if (Line.find("\"counters\"") != std::string::npos)
      InCounters = true;
    else if (Line.find("\"gauges\"") != std::string::npos ||
             Line.find("\"histograms\"") != std::string::npos)
      InCounters = false;
    if (size_t B = Line.find("\"buckets\": ["); B != std::string::npos) {
      Out << Line.substr(0, B) << "\"buckets\": []\n";
      continue;
    }
    bool KeepNumbers =
        InCounters || Line.find("\"count\":") != std::string::npos;
    if (!KeepNumbers) {
      // `  "name": <number>[,]` -> `  "name": 0[,]`
      size_t Colon = Line.find(": ");
      if (Colon != std::string::npos && Colon + 2 < Line.size() &&
          (std::isdigit(static_cast<unsigned char>(Line[Colon + 2])) ||
           Line[Colon + 2] == '-')) {
        bool Comma = !Line.empty() && Line.back() == ',';
        Out << Line.substr(0, Colon + 2) << "0" << (Comma ? "," : "")
            << "\n";
        continue;
      }
    }
    Out << Line << "\n";
  }
  return Out.str();
}

} // namespace

TEST(ObservabilityCli, AnalyzeWritesValidTraceAndMetrics) {
  std::string Mj = writeFile("obs.mj", FixtureSrc);
  std::string Trace = testing::TempDir() + "/obs_trace.json";
  std::string Metrics = testing::TempDir() + "/obs_metrics.json";
  // Pin the wave engine: this test asserts wave-specific spans and the
  // pta.wave_us histogram, which the auto default would route around on a
  // fixture this small (auto resolves to naive).
  CliRun R = run({"analyze", Mj, "--analysis", "ci", "--solver", "wave",
                  "--trace-out", Trace, "--metrics-out", Metrics});
  ASSERT_EQ(R.Exit, cli::ExitOk) << R.Err;
  EXPECT_NE(R.Out.find("trace written to"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("metrics written to"), std::string::npos) << R.Out;

  std::string TraceBody = readFile(Trace);
  EXPECT_NE(TraceBody.find("\"traceEvents\""), std::string::npos);
  // The mahjong pipeline phases and the solver span must all be present.
  for (const char *Span :
       {"parse", "cha", "pre-analysis", "fpg-build", "automata-merge",
        "merge-bucket", "solve/wave", "main-analysis"})
    EXPECT_NE(TraceBody.find(std::string("\"name\": \"") + Span + "\""),
              std::string::npos)
        << Span;

  std::string MetricsBody = readFile(Metrics);
  EXPECT_NE(MetricsBody.find("\"pta.worklist_pops\""), std::string::npos);
  EXPECT_NE(MetricsBody.find("\"pta.wave_us\""), std::string::npos);
  EXPECT_NE(MetricsBody.find("\"phase.parse_seconds\""),
            std::string::npos);
  EXPECT_NE(MetricsBody.find("\"mahjong.objects\""), std::string::npos);
}

TEST(ObservabilityCli, ParallelSolverTraceHasWorkerSpans) {
  std::string Mj = writeFile("obs_par.mj", FixtureSrc);
  std::string Trace = testing::TempDir() + "/obs_par_trace.json";
  CliRun R = run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                  "--solver", "parallel", "--threads", "2", "--trace-out",
                  Trace});
  ASSERT_EQ(R.Exit, cli::ExitOk) << R.Err;
  std::string Body = readFile(Trace);
  EXPECT_NE(Body.find("\"solve/parallel\""), std::string::npos);
  EXPECT_NE(Body.find("\"pwave\""), std::string::npos);
  EXPECT_NE(Body.find("\"sweep-chunk\""), std::string::npos);
}

TEST(ObservabilityCli, MetricsOutSpeaksPrometheusForPromFiles) {
  std::string Mj = writeFile("obs_prom.mj", FixtureSrc);
  std::string Metrics = testing::TempDir() + "/obs_metrics.prom";
  CliRun R = run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                  "--metrics-out", Metrics});
  ASSERT_EQ(R.Exit, cli::ExitOk) << R.Err;
  std::string Body = readFile(Metrics);
  EXPECT_NE(Body.find("# TYPE mahjong_pta_worklist_pops counter"),
            std::string::npos)
      << Body.substr(0, 400);
  EXPECT_NE(Body.find("# TYPE mahjong_pta_seconds gauge"),
            std::string::npos);
}

TEST(ObservabilityCli, TracingDoesNotChangeAnalysisOutput) {
  // Bit-identical results with tracing on vs off: the analyze stdout
  // reports (counters, client metrics) must match modulo timings, which
  // both runs print with fixed precision but different values — so
  // compare the timing-free lines only.
  std::string Mj = writeFile("obs_id.mj", FixtureSrc);
  std::string Trace = testing::TempDir() + "/obs_id_trace.json";
  CliRun Plain = run({"analyze", Mj, "--analysis", "ci", "--heap", "site"});
  CliRun Traced = run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                       "--trace-out", Trace});
  ASSERT_EQ(Plain.Exit, cli::ExitOk);
  ASSERT_EQ(Traced.Exit, cli::ExitOk);
  // Timing lines are the only ones carrying a decimal point; everything
  // else (solver pops, client counts) must match exactly.
  auto StableLines = [](const std::string &S) {
    std::istringstream In(S);
    std::string Line, Kept;
    while (std::getline(In, Line))
      if (Line.find('.') == std::string::npos &&
          Line.find("written to") == std::string::npos)
        Kept += Line + "\n";
    return Kept;
  };
  std::string Stable = StableLines(Plain.Out);
  EXPECT_FALSE(Stable.empty());
  EXPECT_EQ(Stable, StableLines(Traced.Out));
}

TEST(ObservabilityCli, StatsJsonGolden) {
  std::string Mj = writeFile("obs_golden.mj", FixtureSrc);
  std::string Stats = testing::TempDir() + "/obs_stats.json";
  CliRun R = run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                  "--solver", "wave", "--stats-json", Stats});
  ASSERT_EQ(R.Exit, cli::ExitOk) << R.Err;
  EXPECT_NE(R.Out.find("stats written to"), std::string::npos);
  std::string Normalized = normalizeStatsJson(readFile(Stats));
  // Golden body: counters (deterministic for this fixture + wave solver)
  // verbatim; gauges and histogram statistics normalized to 0.
  const std::string Golden = R"json({
  "counters": {
    "clients.call_graph_edges": 2,
    "clients.may_fail_casts": 1,
    "clients.mono_call_sites": 0,
    "clients.poly_call_sites": 1,
    "clients.reachable_methods": 3,
    "clients.total_casts": 1,
    "pta.deltas_buffered": 0,
    "pta.deltas_dropped": 0,
    "pta.deltas_merged": 0,
    "pta.filter_bitmap_hits": 1,
    "pta.nodes_collapsed": 0,
    "pta.num_contexts": 1,
    "pta.num_cs_methods": 3,
    "pta.num_cs_objs": 3,
    "pta.num_cs_vars": 14,
    "pta.num_reachable_methods": 3,
    "pta.parallel_waves": 0,
    "pta.sccs_collapsed": 0,
    "pta.set_bytes": 176,
    "pta.timed_out": 0,
    "pta.var_pts_entries": 12,
    "pta.work_steals": 0,
    "pta.working_set_bytes": 176,
    "pta.worklist_pops": 11
  },
  "gauges": {
    "phase.cha_seconds": 0,
    "phase.main_analysis_seconds": 0,
    "phase.parse_seconds": 0,
    "pta.seconds": 0,
    "pta.shard_imbalance_max_pct": 0,
    "pta.shard_imbalance_pct": 0
  },
  "histograms": {
    "pta.wave_us": {
      "count": 5,
      "sum": 0,
      "max": 0,
      "mean": 0,
      "p50": 0,
      "p95": 0,
      "p99": 0,
      "buckets": []
    }
  }
}
)json";
  EXPECT_EQ(Normalized, Golden);
}

TEST(ObservabilityCli, GenWritesAnalyzableSource) {
  std::string Out = testing::TempDir() + "/gen_antlr.mj";
  CliRun G = run({"gen", "antlr", Out, "--scale", "0.05"});
  ASSERT_EQ(G.Exit, cli::ExitOk) << G.Err;
  EXPECT_NE(G.Out.find("antlr written to"), std::string::npos) << G.Out;

  CliRun A = run({"analyze", Out, "--analysis", "ci", "--heap", "site"});
  EXPECT_EQ(A.Exit, cli::ExitOk) << A.Err;

  CliRun Bad = run({"gen", "no-such-profile", Out});
  EXPECT_EQ(Bad.Exit, cli::ExitUsage);
  EXPECT_NE(Bad.Err.find("unknown profile 'no-such-profile'"),
            std::string::npos)
      << Bad.Err;

  CliRun BadScale = run({"gen", "antlr", Out, "--scale", "-1"});
  EXPECT_EQ(BadScale.Exit, cli::ExitUsage);
  EXPECT_NE(BadScale.Err.find("--scale"), std::string::npos);
}

TEST(ObservabilityCli, StatsQueryVerbExposesEngineMetrics) {
  std::string Mj = writeFile("obs_serve.mj", FixtureSrc);
  std::string Snap = testing::TempDir() + "/obs_serve.mjsnap";
  CliRun A = run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                  "--save-snapshot", Snap});
  ASSERT_EQ(A.Exit, cli::ExitOk) << A.Err;

  CliRun Q = run({"query", Snap, "stats"});
  ASSERT_EQ(Q.Exit, cli::ExitOk) << Q.Err;
  EXPECT_NE(Q.Out.find("mahjong_serve_cache_hits"), std::string::npos)
      << Q.Out;
  EXPECT_NE(Q.Out.find("mahjong_serve_cache_misses"), std::string::npos);

  CliRun BadArity = run({"query", Snap, "stats", "extra"});
  EXPECT_EQ(BadArity.Exit, cli::ExitParseError);
  EXPECT_NE(BadArity.Err.find("'stats' expects 0 argument(s)"),
            std::string::npos)
      << BadArity.Err;
}

TEST(ObservabilityCli, ServeBenchReportsKindsAndHeartbeat) {
  std::string Mj = writeFile("obs_bench.mj", FixtureSrc);
  std::string Snap = testing::TempDir() + "/obs_bench.mjsnap";
  CliRun A = run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                  "--save-snapshot", Snap});
  ASSERT_EQ(A.Exit, cli::ExitOk) << A.Err;

  std::string Spec = writeFile("obs_bench.spec", "clients = 2\n"
                                                 "duration_seconds = 0.3\n"
                                                 "workers = 2\n"
                                                 "heartbeat_seconds = 0.05\n");
  CliRun B = run({"serve-bench", Snap, "--spec", Spec});
  ASSERT_EQ(B.Exit, cli::ExitOk) << B.Err;
  EXPECT_NE(B.Out.find("\"kinds\""), std::string::npos) << B.Out;
  EXPECT_NE(B.Out.find("\"points-to\""), std::string::npos) << B.Out;
  EXPECT_NE(B.Out.find("\"cache_retired\""), std::string::npos);
  // The heartbeat goes to stderr so stdout stays one JSON object.
  EXPECT_NE(B.Err.find("[serve-bench] t="), std::string::npos) << B.Err;
  EXPECT_EQ(B.Out.find("[serve-bench]"), std::string::npos);

  CliRun BadHb = run({"serve-bench", Snap, "--heartbeat", "nope"});
  EXPECT_EQ(BadHb.Exit, cli::ExitUsage);
  EXPECT_NE(BadHb.Err.find("--heartbeat"), std::string::npos);
}
