//===-- tests/cli/CliSmokeTest.cpp -------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The CLI exit-code contract, driven in-process through cli::runCli:
//
//   0  success                (analyze / query / serve-bench happy paths)
//   1  I/O error              (missing input files)
//   2  usage error            (unknown command/flag, malformed flag value)
//   3  parse error            (.mj source, snapshot bytes, query, spec)
//   4  analysis error         (time budget exceeded)
//
// Usage diagnostics must name the offending flag or command.
//
//===----------------------------------------------------------------------===//

#include "cli/Driver.h"

#include "ir/PrettyPrinter.h"
#include "workload/BenchmarkPrograms.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace mahjong;

namespace {

struct CliRun {
  int Exit;
  std::string Out;
  std::string Err;
};

CliRun run(std::vector<std::string> Args) {
  std::vector<const char *> Argv{"mahjong-cli"};
  for (const std::string &A : Args)
    Argv.push_back(A.c_str());
  std::ostringstream Out, Err;
  int Exit = cli::runCli(static_cast<int>(Argv.size()), Argv.data(), Out,
                         Err);
  return {Exit, Out.str(), Err.str()};
}

std::string writeFile(const std::string &Name, std::string_view Body) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::ofstream(Path) << Body;
  return Path;
}

constexpr std::string_view FixtureSrc = R"(
  class A { method m(p) { return p; } }
  class B extends A { method m(p) { return this; } }
  class Main {
    static method main() {
      a = new A;
      b = new B;
      x = a;
      x = b;
      r = x.m(b);
      c = (B) x;
    }
  }
)";

} // namespace

TEST(CliSmoke, NoArgumentsIsUsage) {
  CliRun R = run({});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("usage:"), std::string::npos);
}

TEST(CliSmoke, UnknownCommandNamesTheCommand) {
  CliRun R = run({"frobnicate"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("unknown command 'frobnicate'"), std::string::npos)
      << R.Err;
}

TEST(CliSmoke, UnknownFlagNamesTheFlag) {
  std::string Mj = writeFile("ok.mj", FixtureSrc);
  CliRun R = run({"analyze", Mj, "--frobnicate", "3"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("unknown option '--frobnicate'"), std::string::npos)
      << R.Err;
}

TEST(CliSmoke, FlagMissingValueNamesTheFlag) {
  std::string Mj = writeFile("ok.mj", FixtureSrc);
  CliRun R = run({"analyze", Mj, "--analysis"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("flag '--analysis' requires a value"),
            std::string::npos)
      << R.Err;
}

TEST(CliSmoke, BadFlagValuesAreUsageErrors) {
  std::string Mj = writeFile("ok.mj", FixtureSrc);
  CliRun R = run({"analyze", Mj, "--analysis", "11obj"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--analysis"), std::string::npos) << R.Err;

  R = run({"analyze", Mj, "--heap", "lava"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--heap"), std::string::npos) << R.Err;

  R = run({"analyze", Mj, "--budget", "-3"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--budget"), std::string::npos) << R.Err;

  R = run({"analyze", Mj, "--solver", "turbo"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--solver"), std::string::npos) << R.Err;

  R = run({"analyze", Mj, "--threads", "0"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--threads"), std::string::npos) << R.Err;

  R = run({"analyze", Mj, "--threads", "banana"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--threads"), std::string::npos) << R.Err;

  R = run({"dot-fpg", Mj, "notanumber"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
}

TEST(CliSmoke, SolverEnginesAgreeOnClientCounts) {
  std::string Mj = writeFile("ok.mj", FixtureSrc);
  CliRun W = run({"analyze", Mj, "--analysis", "2obj", "--heap", "site",
                  "--solver", "wave"});
  CliRun N = run({"analyze", Mj, "--analysis", "2obj", "--heap", "site",
                  "--solver", "naive"});
  ASSERT_EQ(W.Exit, cli::ExitOk) << W.Err;
  ASSERT_EQ(N.Exit, cli::ExitOk) << N.Err;
  // The client-metric lines (between the timing line and the
  // engine-specific solver line) must match exactly.
  auto Metrics = [](const std::string &Out) {
    size_t B = Out.find("  reachable methods");
    size_t E = Out.find("  solver (");
    return Out.substr(B, E == std::string::npos ? E : E - B);
  };
  EXPECT_EQ(Metrics(W.Out), Metrics(N.Out));
  EXPECT_NE(W.Out.find("solver (wave)"), std::string::npos) << W.Out;
  EXPECT_NE(N.Out.find("solver (naive)"), std::string::npos) << N.Out;

  // The parallel engine agrees too, at an explicit thread count, and
  // surfaces its extra stats line.
  CliRun P = run({"analyze", Mj, "--analysis", "2obj", "--heap", "site",
                  "--solver", "parallel", "--threads", "4"});
  ASSERT_EQ(P.Exit, cli::ExitOk) << P.Err;
  EXPECT_EQ(Metrics(W.Out), Metrics(P.Out));
  EXPECT_NE(P.Out.find("solver (parallel)"), std::string::npos) << P.Out;
  EXPECT_NE(P.Out.find("parallel waves:"), std::string::npos) << P.Out;
  EXPECT_NE(P.Out.find("shard imbalance"), std::string::npos) << P.Out;
  // Serial engines do not print the parallel-only line.
  EXPECT_EQ(W.Out.find("parallel waves:"), std::string::npos) << W.Out;

  // The auto default agrees as well, and reports its resolved choice as
  // `solver (auto:<engine>)`.
  CliRun A = run({"analyze", Mj, "--analysis", "2obj", "--heap", "site",
                  "--solver", "auto"});
  ASSERT_EQ(A.Exit, cli::ExitOk) << A.Err;
  EXPECT_EQ(Metrics(W.Out), Metrics(A.Out));
  EXPECT_NE(A.Out.find("solver (auto:"), std::string::npos) << A.Out;
  // Omitting --solver entirely is the same as asking for auto.
  CliRun D = run({"analyze", Mj, "--analysis", "2obj", "--heap", "site"});
  ASSERT_EQ(D.Exit, cli::ExitOk) << D.Err;
  EXPECT_EQ(Metrics(A.Out), Metrics(D.Out));
  EXPECT_NE(D.Out.find("solver (auto:"), std::string::npos) << D.Out;
}

TEST(CliSmoke, MissingInputsAreIOErrors) {
  EXPECT_EQ(run({"analyze", "/nonexistent/x.mj"}).Exit, cli::ExitIOError);
  EXPECT_EQ(run({"query", "/nonexistent/x.mjsnap", "devirt", "0"}).Exit,
            cli::ExitIOError);
  EXPECT_EQ(run({"serve-bench", "/nonexistent/x.mjsnap", "--smoke"}).Exit,
            cli::ExitIOError);
}

TEST(CliSmoke, SourceParseErrorIsExit3) {
  std::string Bad = writeFile("bad.mj", "class { oops");
  CliRun R = run({"analyze", Bad});
  EXPECT_EQ(R.Exit, cli::ExitParseError);
  EXPECT_NE(R.Err.find("parse error"), std::string::npos) << R.Err;
}

TEST(CliSmoke, CorruptSnapshotIsExit3) {
  std::string Bad = writeFile("bad.mjsnap", "these are not snapshot bytes");
  CliRun R = run({"query", Bad, "devirt", "0"});
  EXPECT_EQ(R.Exit, cli::ExitParseError);
}

TEST(CliSmoke, AnalyzeSaveThenQueryHappyPath) {
  std::string Mj = writeFile("fixture.mj", FixtureSrc);
  std::string Snap = testing::TempDir() + "/fixture.mjsnap";

  CliRun R = run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                  "--save-snapshot", Snap});
  ASSERT_EQ(R.Exit, cli::ExitOk) << R.Err;
  EXPECT_NE(R.Out.find("snapshot written to"), std::string::npos) << R.Out;

  R = run({"query", Snap, "points-to", "Main.main/0::x"});
  ASSERT_EQ(R.Exit, cli::ExitOk) << R.Err;
  EXPECT_NE(R.Out.find("2 result(s)"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("o1<A>@Main.main/0"), std::string::npos) << R.Out;

  R = run({"query", Snap, "cast-may-fail", "0"});
  ASSERT_EQ(R.Exit, cli::ExitOk) << R.Err;
  EXPECT_EQ(R.Out, "true\n");

  // A well-formed command over a malformed query is a parse error.
  R = run({"query", Snap, "points-to"});
  EXPECT_EQ(R.Exit, cli::ExitParseError);
  R = run({"query", Snap, "devirt", "notanumber"});
  EXPECT_EQ(R.Exit, cli::ExitParseError);
}

TEST(CliSmoke, ServeBenchSmokeSucceeds) {
  std::string Mj = writeFile("bench.mj", FixtureSrc);
  std::string Snap = testing::TempDir() + "/bench.mjsnap";
  ASSERT_EQ(run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                 "--save-snapshot", Snap})
                .Exit,
            cli::ExitOk);

  CliRun R = run({"serve-bench", Snap, "--smoke"});
  ASSERT_EQ(R.Exit, cli::ExitOk) << R.Err;
  EXPECT_NE(R.Out.find("\"failed\": 0"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("\"queries\": 500"), std::string::npos) << R.Out;
}

TEST(CliSmoke, ServeBenchSpecErrorsAreExit3) {
  std::string Mj = writeFile("spec.mj", FixtureSrc);
  std::string Snap = testing::TempDir() + "/spec.mjsnap";
  ASSERT_EQ(run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                 "--save-snapshot", Snap})
                .Exit,
            cli::ExitOk);

  std::string BadSpec = writeFile("bad.spec", "clients = banana\n");
  CliRun R = run({"serve-bench", Snap, "--spec", BadSpec});
  EXPECT_EQ(R.Exit, cli::ExitParseError);
  EXPECT_NE(R.Err.find("clients"), std::string::npos) << R.Err;

  EXPECT_EQ(run({"serve-bench", Snap, "--spec", "/nonexistent.spec"}).Exit,
            cli::ExitIOError);

  std::string GoodSpec = writeFile(
      "good.spec", "clients = 2\nqueries_per_client = 50\nworkers = 2\n");
  R = run({"serve-bench", Snap, "--spec", GoodSpec});
  ASSERT_EQ(R.Exit, cli::ExitOk) << R.Err;
  EXPECT_NE(R.Out.find("\"queries\": 100"), std::string::npos) << R.Out;
}

TEST(CliSmoke, BudgetTimeoutIsExit4) {
  // A mid-size profile under a context-sensitive analysis and a budget of
  // (effectively) zero: the solver must give up at its first budget check.
  auto P = workload::buildBenchmarkProgram("pmd", /*Scale=*/0.4);
  std::string Mj = writeFile("pmd.mj", ir::printProgram(*P));
  CliRun R = run({"analyze", Mj, "--analysis", "3obj", "--heap", "site",
                  "--budget", "0.000001"});
  EXPECT_EQ(R.Exit, cli::ExitAnalysisError) << R.Err;
  EXPECT_NE(R.Err.find("budget"), std::string::npos) << R.Err;
}

TEST(CliSmoke, ServeFlagErrorsNameTheOffendingFlag) {
  // `serve` joins the exit-code contract: every malformed flag is exit 2
  // with a diagnostic naming the flag, before any socket is touched.
  EXPECT_EQ(run({"serve"}).Exit, cli::ExitUsage);

  CliRun R = run({"serve", "x.mjsnap", "--listen", "nonsense"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--listen"), std::string::npos) << R.Err;

  R = run({"serve", "x.mjsnap", "--max-conns", "0"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--max-conns"), std::string::npos) << R.Err;

  R = run({"serve", "x.mjsnap", "--max-inflight", "banana"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--max-inflight"), std::string::npos) << R.Err;

  R = run({"serve", "x.mjsnap", "--workers", "9999"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--workers"), std::string::npos) << R.Err;

  R = run({"serve", "x.mjsnap", "--duration", "-3"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--duration"), std::string::npos) << R.Err;

  R = run({"serve", "x.mjsnap", "--listen"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--listen"), std::string::npos) << R.Err;

  R = run({"serve", "x.mjsnap", "--frobnicate", "1"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--frobnicate"), std::string::npos) << R.Err;

  // Input errors keep their usual codes.
  EXPECT_EQ(run({"serve", "/nonexistent/x.mjsnap", "--duration", "0.01"})
                .Exit,
            cli::ExitIOError);
  std::string Bad = writeFile("servebad.mjsnap", "not snapshot bytes");
  EXPECT_EQ(run({"serve", Bad, "--duration", "0.01"}).Exit,
            cli::ExitParseError);
}

TEST(CliSmoke, ServeRunsForDurationThenDrains) {
  std::string Mj = writeFile("serve.mj", FixtureSrc);
  std::string Snap = testing::TempDir() + "/serve.mjsnap";
  ASSERT_EQ(run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                 "--save-snapshot", Snap})
                .Exit,
            cli::ExitOk);

  std::string Metrics = testing::TempDir() + "/serve_metrics.prom";
  CliRun R = run({"serve", Snap, "--listen", "127.0.0.1:0", "--duration",
                  "0.1", "--metrics-out", Metrics});
  ASSERT_EQ(R.Exit, cli::ExitOk) << R.Err;
  EXPECT_NE(R.Out.find("listening on 127.0.0.1:"), std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("server drained:"), std::string::npos) << R.Out;
  std::ifstream In(Metrics);
  std::string Prom((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Prom.find("mahjong_net_accepted_total"), std::string::npos);
}

TEST(CliSmoke, ServeBenchConnectFlagErrors) {
  CliRun R = run({"serve-bench", "x.mjsnap", "--connect", "nonsense"});
  // The host:port shape is validated before the snapshot is touched at
  // the transport level, but after it loads — use a real snapshot.
  std::string Mj = writeFile("connect.mj", FixtureSrc);
  std::string Snap = testing::TempDir() + "/connect.mjsnap";
  ASSERT_EQ(run({"analyze", Mj, "--analysis", "ci", "--heap", "site",
                 "--save-snapshot", Snap})
                .Exit,
            cli::ExitOk);
  R = run({"serve-bench", Snap, "--connect", "nonsense", "--smoke"});
  EXPECT_EQ(R.Exit, cli::ExitUsage);
  EXPECT_NE(R.Err.find("--connect"), std::string::npos) << R.Err;

  // A well-formed address nobody listens on is an analysis-level failure
  // (zero queries answered), not a usage error.
  R = run({"serve-bench", Snap, "--connect", "127.0.0.1:1", "--smoke"});
  EXPECT_EQ(R.Exit, cli::ExitAnalysisError);
}
