//===-- tests/TestUtil.h - Shared test helpers ----------------*- C++ -*-===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the test suite: parse-or-die, a one-call analysis
/// runner, points-to lookups by name, and a builder that turns an explicit
/// (object, field, object) edge list into a Program whose field points-to
/// graph is exactly that list — the workhorse of the automata property
/// tests.
///
//===----------------------------------------------------------------------===//

#ifndef MAHJONG_TESTS_TESTUTIL_H
#define MAHJONG_TESTS_TESTUTIL_H

#include "core/FieldPointsToGraph.h"
#include "ir/ClassHierarchy.h"
#include "ir/Parser.h"
#include "ir/ProgramBuilder.h"
#include "pta/PointerAnalysis.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace mahjong::test {

/// Parses .mj source, failing the test on a syntax error.
inline std::unique_ptr<ir::Program> parseOrDie(std::string_view Src) {
  std::string Err;
  auto P = ir::parseProgram(Src, Err);
  EXPECT_TRUE(P != nullptr) << "parse error: " << Err;
  if (!P)
    std::abort();
  return P;
}

/// A program together with its hierarchy and one analysis result.
struct Analyzed {
  std::unique_ptr<ir::Program> P;
  std::unique_ptr<ir::ClassHierarchy> CH;
  std::unique_ptr<pta::PTAResult> R;
};

/// Parses and analyzes in one step.
inline Analyzed analyze(std::string_view Src,
                        pta::ContextKind Kind = pta::ContextKind::Insensitive,
                        unsigned K = 0,
                        const pta::HeapAbstraction *Heap = nullptr) {
  Analyzed A;
  A.P = parseOrDie(Src);
  A.CH = std::make_unique<ir::ClassHierarchy>(*A.P);
  pta::AnalysisOptions Opts;
  Opts.Kind = Kind;
  Opts.K = K;
  Opts.Heap = Heap;
  A.R = pta::runPointerAnalysis(*A.P, *A.CH, Opts);
  return A;
}

/// Finds a variable by method signature and name; fails if absent.
inline VarId findVar(const ir::Program &P, std::string_view MethodSig,
                     std::string_view VarName) {
  MethodId M = P.methodBySignature(MethodSig);
  EXPECT_TRUE(M.isValid()) << "no method " << MethodSig;
  for (uint32_t I = 0; I < P.numVars(); ++I)
    if (P.var(VarId(I)).Method == M && P.var(VarId(I)).Name == VarName)
      return VarId(I);
  ADD_FAILURE() << "no var " << VarName << " in " << MethodSig;
  return VarId::invalid();
}

/// Names of the types a variable may point to, sorted (CI projection).
inline std::vector<std::string> pointeeTypes(const pta::PTAResult &R,
                                             std::string_view MethodSig,
                                             std::string_view VarName) {
  VarId V = findVar(R.P, MethodSig, VarName);
  std::vector<std::string> Names;
  for (uint32_t Raw : R.ciVarPts(V))
    Names.push_back(R.P.type(R.P.obj(ObjId(Raw)).Type).Name);
  std::sort(Names.begin(), Names.end());
  Names.erase(std::unique(Names.begin(), Names.end()), Names.end());
  return Names;
}

/// Labels ("oN<T>") of the objects a variable may point to, sorted.
inline std::vector<std::string> pointeeObjs(const pta::PTAResult &R,
                                            std::string_view MethodSig,
                                            std::string_view VarName) {
  VarId V = findVar(R.P, MethodSig, VarName);
  std::vector<std::string> Names;
  for (uint32_t Raw : R.ciVarPts(V)) {
    ObjId O = ObjId(Raw);
    Names.push_back("o" + std::to_string(O.idx()) + "<" +
                    R.P.type(R.P.obj(O).Type).Name + ">");
  }
  std::sort(Names.begin(), Names.end());
  return Names;
}

/// An explicit object graph: node I has type TypeOf[I] (an index into
/// synthetic classes T0..Tn) and edges (From, Field, To); Field is an
/// index into fields f0..fK declared by every class.
struct GraphSpec {
  unsigned NumTypes = 1;
  unsigned NumFields = 1;
  std::vector<unsigned> TypeOf; ///< per node
  struct Edge {
    unsigned From, Field, To;
  };
  std::vector<Edge> Edges;
};

/// Materializes \p G as a Program whose pre-analysis FPG is exactly G
/// (plus the standard null completion): every node is one allocation in
/// main, every edge one direct store. The nth node is the (n+1)th
/// allocation site (site 0 is o_null), i.e. node I is ObjId(I + 1).
inline std::unique_ptr<ir::Program> buildGraphProgram(const GraphSpec &G) {
  ir::ProgramBuilder B;
  for (unsigned T = 0; T < G.NumTypes; ++T) {
    std::string Name = "T" + std::to_string(T);
    B.declClass(Name);
    for (unsigned F = 0; F < G.NumFields; ++F)
      B.declField(Name, "f" + std::to_string(F), "Object");
  }
  B.declClass("Main");
  ir::MethodBuilder &Main = B.method("Main", "main", {}, /*IsStatic=*/true);
  for (unsigned I = 0; I < G.TypeOf.size(); ++I)
    Main.alloc("o" + std::to_string(I), "T" + std::to_string(G.TypeOf[I]));
  for (const GraphSpec::Edge &E : G.Edges)
    Main.store("o" + std::to_string(E.From),
               "T" + std::to_string(G.TypeOf[E.From]) +
                   "::f" + std::to_string(E.Field),
               "o" + std::to_string(E.To));
  std::string Err;
  auto P = B.finish(Err);
  EXPECT_TRUE(P != nullptr) << "graph program build failed: " << Err;
  if (!P)
    std::abort();
  return P;
}

/// The ObjId of graph node \p I (see buildGraphProgram).
inline ObjId graphObj(unsigned I) { return ObjId(I + 1); }

/// Reference implementation of Definition 2.1 over an FPG, checking all
/// field paths up to \p Depth by joint determinization. Exact on acyclic
/// object graphs when Depth exceeds the longest simple path (both runs
/// are absorbed into constant sinks beyond it).
bool refTypeConsistent(const core::FieldPointsToGraph &G, ObjId A, ObjId B,
                       unsigned Depth);

} // namespace mahjong::test

#endif // MAHJONG_TESTS_TESTUTIL_H
