//===-- tests/TestUtil.cpp - Shared test helpers -----------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <algorithm>
#include <set>

using namespace mahjong;
using namespace mahjong::core;
using namespace mahjong::ir;

namespace {

/// Sorted distinct type ids of a set of objects.
std::vector<uint32_t> typesOf(const Program &P,
                              const std::vector<ObjId> &Objs) {
  std::vector<uint32_t> Types;
  for (ObjId O : Objs)
    Types.push_back(P.obj(O).Type.idx());
  std::sort(Types.begin(), Types.end());
  Types.erase(std::unique(Types.begin(), Types.end()), Types.end());
  return Types;
}

/// The fields some object in \p Objs actually has (o_null contributes
/// nothing — its self-loops apply to any field the other side probes).
std::vector<FieldId> fieldsOf(const FieldPointsToGraph &G,
                              const std::vector<ObjId> &Objs) {
  std::vector<FieldId> Fields;
  for (ObjId O : Objs) {
    if (G.program().isNullObj(O))
      continue;
    for (const auto &[F, Targets] : G.fieldsOf(O))
      Fields.push_back(F);
  }
  std::sort(Fields.begin(), Fields.end());
  Fields.erase(std::unique(Fields.begin(), Fields.end()), Fields.end());
  return Fields;
}

/// One determinized step from the object set \p Objs along \p F,
/// mirroring the FPG/DFA conventions (null self-loops included).
std::vector<ObjId> step(const FieldPointsToGraph &G,
                        const std::vector<ObjId> &Objs, FieldId F) {
  std::vector<ObjId> Next;
  for (ObjId O : Objs)
    for (ObjId T : G.succ(O, F))
      Next.push_back(T);
  std::sort(Next.begin(), Next.end());
  Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
  return Next;
}

/// Joint bounded exploration of Definition 2.1 on the pair of object
/// sets reached by some common path.
bool refCheck(const FieldPointsToGraph &G, const std::vector<ObjId> &SA,
              const std::vector<ObjId> &SB, unsigned Depth,
              std::set<std::pair<std::vector<ObjId>, std::vector<ObjId>>>
                  &Visited) {
  const Program &P = G.program();
  // Condition 1: the same path must reach the same set of types; an empty
  // set on one side and not the other is a mismatch.
  std::vector<uint32_t> TA = typesOf(P, SA), TB = typesOf(P, SB);
  if (TA != TB)
    return false;
  // Condition 2: every nonempty reached set must be single-typed.
  if (!SA.empty() && TA.size() != 1)
    return false;
  if (Depth == 0 || (SA.empty() && SB.empty()))
    return true;
  if (!Visited.insert({SA, SB}).second)
    return true; // joint state already explored
  // Probe the union alphabet; a field only one side has steps the other
  // side to the empty set (or keeps it on null self-loops via succ()).
  std::vector<FieldId> Fields = fieldsOf(G, SA);
  for (FieldId F : fieldsOf(G, SB))
    Fields.push_back(F);
  std::sort(Fields.begin(), Fields.end());
  Fields.erase(std::unique(Fields.begin(), Fields.end()), Fields.end());
  for (FieldId F : Fields)
    if (!refCheck(G, step(G, SA, F), step(G, SB, F), Depth - 1, Visited))
      return false;
  return true;
}

} // namespace

bool mahjong::test::refTypeConsistent(const FieldPointsToGraph &G, ObjId A,
                                      ObjId B, unsigned Depth) {
  std::set<std::pair<std::vector<ObjId>, std::vector<ObjId>>> Visited;
  return refCheck(G, {A}, {B}, Depth, Visited);
}
