//===-- tests/net/SnapshotServerTest.cpp -------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The socket server end to end over loopback: binary round trips, line
// mode (raw text and JSON, with garbage surviving the connection),
// hostile framing answered with an error and a disconnect — never a
// crash — pipelined half-close drains, the swap verb, worker-pool mode
// ordering, and graceful stop. Every connection here is a real socket.
//
//===----------------------------------------------------------------------===//

#include "net/SnapshotServer.h"

#include "../TestUtil.h"
#include "net/Client.h"
#include "serve/Snapshot.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <string>

using namespace mahjong;
using namespace mahjong::net;
using namespace mahjong::test;

namespace {

std::shared_ptr<const serve::SnapshotData> snapTwoObjects() {
  Analyzed A = analyze(R"(
    class A { }
    class B extends A { }
    class Main {
      static method main() {
        x = new A;
        x = new B;
      }
    }
  )");
  return std::make_shared<serve::SnapshotData>(serve::buildSnapshot(*A.R));
}

std::shared_ptr<const serve::SnapshotData> snapOneObject() {
  Analyzed A = analyze(R"(
    class A { }
    class Main {
      static method main() {
        x = new A;
      }
    }
  )");
  return std::make_shared<serve::SnapshotData>(serve::buildSnapshot(*A.R));
}

std::string writeSnapshotFile(const serve::SnapshotData &D,
                              const std::string &Name) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::ofstream Out(Path, std::ios::binary);
  Out << serve::encodeSnapshot(D, serve::SnapshotVersion);
  return Path;
}

/// A raw loopback socket for driving the wire formats by hand.
class RawConn {
public:
  explicit RawConn(uint16_t Port) {
    Fd = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  ~RawConn() {
    if (Fd >= 0)
      ::close(Fd);
  }
  bool ok() const { return Fd >= 0; }

  void sendAll(std::string_view Bytes) {
    size_t Sent = 0;
    while (Sent < Bytes.size()) {
      ssize_t N = send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                       MSG_NOSIGNAL);
      ASSERT_GT(N, 0);
      Sent += static_cast<size_t>(N);
    }
  }

  void shutdownWrite() { shutdown(Fd, SHUT_WR); }

  /// Reads one '\n'-terminated line (newline stripped); fails the test
  /// on EOF.
  std::string readLine() {
    while (true) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Line = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Line;
      }
      if (!fill()) {
        ADD_FAILURE() << "EOF while waiting for a line";
        return {};
      }
    }
  }

  /// Decodes one binary frame; fails the test on EOF or corruption.
  Frame readFrame() {
    while (true) {
      Frame F;
      size_t Consumed = 0;
      std::string Err;
      DecodeStatus S = decodeFrame(Buf, Consumed, F, Err);
      if (S == DecodeStatus::Ok) {
        Buf.erase(0, Consumed);
        return F;
      }
      EXPECT_NE(S, DecodeStatus::Corrupt) << Err;
      if (!fill()) {
        ADD_FAILURE() << "EOF while waiting for a frame";
        return F;
      }
    }
  }

  /// True once the peer closed and everything buffered is consumed.
  bool atEof() {
    while (fill())
      ;
    return Buf.empty();
  }

private:
  bool fill() {
    char Tmp[4096];
    ssize_t N = recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N <= 0)
      return false;
    Buf.append(Tmp, static_cast<size_t>(N));
    return true;
  }

  int Fd = -1;
  std::string Buf;
};

/// Registry + started server on an ephemeral port.
struct LiveServer {
  explicit LiveServer(ServerConfig Cfg = {})
      : Registry(snapTwoObjects(), "<memory>"),
        Server(Registry, std::move(Cfg)) {
    std::string Err;
    Started = Server.start(Err);
    EXPECT_TRUE(Started) << Err;
  }
  SnapshotRegistry Registry;
  SnapshotServer Server;
  bool Started = false;
};

} // namespace

TEST(SnapshotServer, BinaryRoundTripMatchesTheEngine) {
  LiveServer S;
  ASSERT_TRUE(S.Started);
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S.Server.port(), Err)) << Err;

  Response Pong;
  ASSERT_TRUE(C.ping(Pong, Err)) << Err;
  EXPECT_TRUE(Pong.Ok);
  EXPECT_EQ(Pong.Epoch, 1u);

  auto Pin = S.Registry.pin();
  Response R;
  ASSERT_TRUE(C.query("points-to Main.main/0::x", R, Err)) << Err;
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Epoch, 1u);
  EXPECT_EQ(R.Digest, Pin->digest());
  EXPECT_EQ(R.Text, Pin->engine().run("points-to Main.main/0::x").toString());

  // A query the engine rejects comes back as RespError with the engine's
  // diagnostic — still a well-formed, digest-stamped response.
  ASSERT_TRUE(C.query("points-to No.such/0::v", R, Err)) << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Text.find("unknown"), std::string::npos);
  EXPECT_EQ(R.Digest, Pin->digest());
}

TEST(SnapshotServer, StatsVerbExposesEngineAndNetMetrics) {
  LiveServer S;
  ASSERT_TRUE(S.Started);
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S.Server.port(), Err)) << Err;
  Response Warm;
  ASSERT_TRUE(C.query("points-to Main.main/0::x", Warm, Err));
  Response R;
  ASSERT_TRUE(C.query("stats", R, Err)) << Err;
  ASSERT_TRUE(R.Ok) << R.Text;
  // Engine-side exposition and the net tier in one answer.
  EXPECT_NE(R.Text.find("mahjong_serve_cache_hits"), std::string::npos);
  EXPECT_NE(R.Text.find("mahjong_net_queries_total"), std::string::npos);
  EXPECT_NE(R.Text.find("mahjong_net_accepted_total"), std::string::npos);
  EXPECT_NE(R.Text.find("mahjong_net_current_epoch"), std::string::npos);
}

TEST(SnapshotServer, LineModeAnswersRawTextAndJson) {
  LiveServer S;
  ASSERT_TRUE(S.Started);
  RawConn C(S.Server.port());
  ASSERT_TRUE(C.ok());

  C.sendAll("points-to Main.main/0::x\n");
  Response R;
  std::string Err;
  ASSERT_TRUE(parseLineResponse(C.readLine(), R, Err)) << Err;
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Epoch, 1u);

  C.sendAll("{\"q\": \"alias Main.main/0::x Main.main/0::x\"}\n");
  ASSERT_TRUE(parseLineResponse(C.readLine(), R, Err)) << Err;
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Text, "true");
}

TEST(SnapshotServer, GarbageJsonGetsAnErrorLineAndTheConnectionSurvives) {
  LiveServer S;
  ASSERT_TRUE(S.Started);
  RawConn C(S.Server.port());
  ASSERT_TRUE(C.ok());

  C.sendAll("{\"q\": unterminated\n");
  Response R;
  std::string Err;
  ASSERT_TRUE(parseLineResponse(C.readLine(), R, Err)) << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Text.find("JSON"), std::string::npos);

  // The session is still good: a valid query right after is answered.
  C.sendAll("points-to Main.main/0::x\n");
  ASSERT_TRUE(parseLineResponse(C.readLine(), R, Err)) << Err;
  EXPECT_TRUE(R.Ok);
}

TEST(SnapshotServer, CorruptBinaryFrameAnswersErrorThenDisconnects) {
  LiveServer S;
  ASSERT_TRUE(S.Started);
  RawConn C(S.Server.port());
  ASSERT_TRUE(C.ok());

  // Magic byte locks binary mode; type 0x7f is not a thing.
  std::string Bad;
  Bad.push_back(static_cast<char>(FrameMagic));
  Bad.push_back(0x7f);
  Bad.append(4, '\0');
  C.sendAll(Bad);
  Frame F = C.readFrame();
  EXPECT_EQ(F.Type, MsgType::RespError);
  Response R;
  ASSERT_TRUE(decodeResponsePayload(F.Payload, false, R));
  EXPECT_FALSE(R.Text.empty());
  EXPECT_TRUE(C.atEof()) << "a corrupt stream must end the connection";
}

TEST(SnapshotServer, HostileLengthPrefixIsBoundedBeforeAllocation) {
  LiveServer S;
  ASSERT_TRUE(S.Started);
  RawConn C(S.Server.port());
  ASSERT_TRUE(C.ok());

  // Claims a 4 GiB payload; the server must refuse from the header alone
  // (under ASan this is also an allocation test).
  std::string Bad;
  Bad.push_back(static_cast<char>(FrameMagic));
  Bad.push_back(static_cast<char>(MsgType::Query));
  Bad.append(4, static_cast<char>(0xFF));
  C.sendAll(Bad);
  Frame F = C.readFrame();
  EXPECT_EQ(F.Type, MsgType::RespError);
  EXPECT_TRUE(C.atEof());
}

TEST(SnapshotServer, PipelinedHalfCloseDrainsEveryRequest) {
  LiveServer S;
  ASSERT_TRUE(S.Started);
  RawConn C(S.Server.port());
  ASSERT_TRUE(C.ok());

  // Fire 32 queries, close our write side, then collect: every one must
  // be answered, in order, before the server closes its side.
  std::string Batch;
  for (int I = 0; I < 32; ++I)
    appendFrame(Batch, MsgType::Query, "points-to Main.main/0::x");
  C.sendAll(Batch);
  C.shutdownWrite();
  for (int I = 0; I < 32; ++I) {
    Frame F = C.readFrame();
    EXPECT_EQ(F.Type, MsgType::RespOk) << "response " << I;
  }
  EXPECT_TRUE(C.atEof());
}

TEST(SnapshotServer, HalfCloseDrainsPipeliningBeyondTheInflightBound) {
  // The backlog past MaxInflight parks in the server's read buffer;
  // after a half-close it must still be parsed and answered — draining
  // stops socket reads, not the parsing of what already arrived.
  ServerConfig Cfg;
  Cfg.MaxInflight = 8;
  LiveServer S(Cfg);
  ASSERT_TRUE(S.Started);
  RawConn C(S.Server.port());
  ASSERT_TRUE(C.ok());

  std::string Batch;
  for (int I = 0; I < 100; ++I)
    appendFrame(Batch, MsgType::Query, "points-to Main.main/0::x");
  // Trailing truncated header: the peer dies mid-frame. It can never
  // complete, so the drain must discard it rather than hang the close.
  Batch.push_back(static_cast<char>(FrameMagic));
  Batch.push_back(static_cast<char>(MsgType::Query));
  C.sendAll(Batch);
  C.shutdownWrite();
  for (int I = 0; I < 100; ++I) {
    Frame F = C.readFrame();
    EXPECT_EQ(F.Type, MsgType::RespOk) << "response " << I;
  }
  EXPECT_TRUE(C.atEof());
}

TEST(SnapshotServer, LineErrorsAnswerInRequestOrder) {
  // Clients correlate responses by position; a malformed line's error
  // must answer in its queue slot, not jump ahead of earlier requests.
  LiveServer S;
  ASSERT_TRUE(S.Started);
  RawConn C(S.Server.port());
  ASSERT_TRUE(C.ok());

  C.sendAll("points-to Main.main/0::x\n"
            "{\"q\": broken\n"
            "points-to Main.main/0::x\n");
  Response R;
  std::string Err;
  ASSERT_TRUE(parseLineResponse(C.readLine(), R, Err)) << Err;
  EXPECT_TRUE(R.Ok) << "first valid query answers first";
  ASSERT_TRUE(parseLineResponse(C.readLine(), R, Err)) << Err;
  EXPECT_FALSE(R.Ok) << "the parse error answers second, in its slot";
  EXPECT_NE(R.Text.find("JSON"), std::string::npos);
  ASSERT_TRUE(parseLineResponse(C.readLine(), R, Err)) << Err;
  EXPECT_TRUE(R.Ok) << "the session continues past the error";
}

TEST(SnapshotServer, WorkerPoolModePreservesPerConnectionOrder) {
  ServerConfig Cfg;
  Cfg.Workers = 2;
  LiveServer S(Cfg);
  ASSERT_TRUE(S.Started);
  RawConn C(S.Server.port());
  ASSERT_TRUE(C.ok());

  // Alternate two distinguishable queries; answers must come back in
  // exactly the request order even though a pool drains the queue.
  std::string Batch;
  for (int I = 0; I < 20; ++I)
    appendFrame(Batch, MsgType::Query,
                I % 2 ? "alias Main.main/0::x Main.main/0::x"
                      : "points-to Main.main/0::x");
  C.sendAll(Batch);
  C.shutdownWrite();
  for (int I = 0; I < 20; ++I) {
    Frame F = C.readFrame();
    Response R;
    ASSERT_TRUE(decodeResponsePayload(F.Payload, true, R));
    if (I % 2)
      EXPECT_EQ(R.Text, "true") << "response " << I;
    else
      EXPECT_NE(R.Text.find(','), std::string::npos) << "response " << I;
  }
  EXPECT_TRUE(C.atEof());
}

TEST(SnapshotServer, SwapVerbPublishesAndStampsTheNewEpoch) {
  auto NewData = snapOneObject();
  std::string Path = writeSnapshotFile(*NewData, "server_swap.mjsnap");

  LiveServer S;
  ASSERT_TRUE(S.Started);
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S.Server.port(), Err)) << Err;

  uint64_t OldDigest = S.Registry.pin()->digest();
  Response R;
  ASSERT_TRUE(C.swap(Path, R, Err)) << Err;
  ASSERT_TRUE(R.Ok) << R.Text;
  EXPECT_EQ(R.Epoch, 2u);
  EXPECT_EQ(R.Digest, serve::snapshotDigest(*NewData));

  // Queries after the swap answer from the new snapshot.
  ASSERT_TRUE(C.query("points-to Main.main/0::x", R, Err)) << Err;
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Epoch, 2u);
  EXPECT_NE(R.Digest, OldDigest);

  // A failed swap reports the loader's diagnostic and keeps epoch 2.
  ASSERT_TRUE(C.swap("/nonexistent/y.mjsnap", R, Err)) << Err;
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Epoch, 2u);
  EXPECT_EQ(S.Registry.swapCount(), 1u);
}

TEST(SnapshotServer, GracefulStopStopsAcceptingAndDrains) {
  LiveServer S;
  ASSERT_TRUE(S.Started);
  uint16_t Port = S.Server.port();
  {
    Client C;
    std::string Err;
    ASSERT_TRUE(C.connect("127.0.0.1", Port, Err)) << Err;
    Response R;
    ASSERT_TRUE(C.query("points-to Main.main/0::x", R, Err)) << Err;
    EXPECT_TRUE(R.Ok);
  }
  S.Server.stop();
  EXPECT_FALSE(S.Server.running());
  Client C2;
  std::string Err;
  EXPECT_FALSE(C2.connect("127.0.0.1", Port, Err));
  // Stop is idempotent.
  S.Server.stop();
}

TEST(SnapshotServer, CountersTrackTheSession) {
  LiveServer S;
  ASSERT_TRUE(S.Started);
  {
    Client C;
    std::string Err;
    ASSERT_TRUE(C.connect("127.0.0.1", S.Server.port(), Err)) << Err;
    Response R;
    for (int I = 0; I < 5; ++I)
      ASSERT_TRUE(C.query("points-to Main.main/0::x", R, Err)) << Err;
  }
  S.Server.stop();
  obs::MetricsRegistry &M = S.Server.metrics();
  EXPECT_EQ(M.counter("net.accepted_total").value(), 1u);
  EXPECT_EQ(M.counter("net.queries_total").value(), 5u);
  EXPECT_EQ(M.counter("net.frames_total").value(), 5u);
  EXPECT_GE(M.counter("net.bytes_read_total").value(), 5 * FrameHeaderSize);
  EXPECT_GT(M.counter("net.bytes_written_total").value(), 0u);
  EXPECT_GE(M.histogram("net.request_ns").count(), 5u);
}
