//===-- tests/net/ProtocolTest.cpp -------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Wire-protocol robustness, fuzz-shaped: the decoder must answer NeedMore
// / Ok / Corrupt for *every* byte string — truncated frames, hostile
// length prefixes (bounded before any allocation), bad magic, unknown
// types — and the line-mode JSON parser must reject garbage with a
// diagnostic instead of crashing. The deterministic mutation loops at the
// bottom are the ASan leg's main course.
//
//===----------------------------------------------------------------------===//

#include "net/Protocol.h"

#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

using namespace mahjong;
using namespace mahjong::net;

namespace {

std::string frameOf(MsgType T, std::string_view Payload) {
  std::string Out;
  appendFrame(Out, T, Payload);
  return Out;
}

} // namespace

TEST(Protocol, FrameRoundTripsEveryRequestType) {
  for (MsgType T : {MsgType::Query, MsgType::Swap, MsgType::Ping,
                    MsgType::RespOk, MsgType::RespError}) {
    std::string Buf = frameOf(T, "payload bytes \x01\x02\xff");
    Frame F;
    size_t Consumed = 0;
    std::string Err;
    ASSERT_EQ(decodeFrame(Buf, Consumed, F, Err), DecodeStatus::Ok);
    EXPECT_EQ(Consumed, Buf.size());
    EXPECT_EQ(F.Type, T);
    EXPECT_EQ(F.Payload, "payload bytes \x01\x02\xff");
  }
}

TEST(Protocol, TruncationAlwaysAsksForMore) {
  std::string Buf = frameOf(MsgType::Query, "points-to Main.main/0::x");
  // Every proper prefix is an incomplete frame, never an error.
  for (size_t N = 0; N < Buf.size(); ++N) {
    Frame F;
    size_t Consumed = 0;
    std::string Err;
    EXPECT_EQ(decodeFrame(std::string_view(Buf).substr(0, N), Consumed, F,
                          Err),
              DecodeStatus::NeedMore)
        << "prefix length " << N;
  }
}

TEST(Protocol, BadMagicIsCorrupt) {
  std::string Buf = frameOf(MsgType::Query, "q");
  Buf[0] = 0x7B; // '{' — the line-mode world, not a frame
  Frame F;
  size_t Consumed = 0;
  std::string Err;
  EXPECT_EQ(decodeFrame(Buf, Consumed, F, Err), DecodeStatus::Corrupt);
  EXPECT_FALSE(Err.empty());
}

TEST(Protocol, UnknownTypeIsCorrupt) {
  std::string Buf = frameOf(MsgType::Query, "q");
  Buf[1] = 0x7f;
  Frame F;
  size_t Consumed = 0;
  std::string Err;
  EXPECT_EQ(decodeFrame(Buf, Consumed, F, Err), DecodeStatus::Corrupt);
}

TEST(Protocol, OversizedLengthIsCorruptBeforeAllocation) {
  // Header claims 4 GiB; the decoder must refuse from the 6 header bytes
  // alone — if it tried to allocate first, ASan (or bad_alloc) would
  // scream here.
  std::string Buf;
  Buf.push_back(static_cast<char>(FrameMagic));
  Buf.push_back(static_cast<char>(MsgType::Query));
  for (int I = 0; I < 4; ++I)
    Buf.push_back(static_cast<char>(0xFF));
  Frame F;
  size_t Consumed = 0;
  std::string Err;
  EXPECT_EQ(decodeFrame(Buf, Consumed, F, Err), DecodeStatus::Corrupt);
  EXPECT_NE(Err.find("payload"), std::string::npos);
}

TEST(Protocol, MaxPayloadBoundaryIsExact) {
  std::string Ok = frameOf(MsgType::Query, std::string(MaxFramePayload, 'a'));
  Frame F;
  size_t Consumed = 0;
  std::string Err;
  EXPECT_EQ(decodeFrame(Ok, Consumed, F, Err), DecodeStatus::Ok);
  EXPECT_EQ(F.Payload.size(), MaxFramePayload);

  // One past the bound: craft the header by hand (appendFrame asserts).
  std::string Over;
  Over.push_back(static_cast<char>(FrameMagic));
  Over.push_back(static_cast<char>(MsgType::Query));
  uint32_t N = MaxFramePayload + 1;
  for (int I = 0; I < 4; ++I)
    Over.push_back(static_cast<char>((N >> (8 * I)) & 0xFF));
  EXPECT_EQ(decodeFrame(Over, Consumed, F, Err), DecodeStatus::Corrupt);
}

TEST(Protocol, PipelinedFramesDecodeInOrder) {
  std::string Buf = frameOf(MsgType::Query, "first") +
                    frameOf(MsgType::Ping, "") +
                    frameOf(MsgType::Swap, "/tmp/x.mjsnap");
  const char *Expect[] = {"first", "", "/tmp/x.mjsnap"};
  size_t Pos = 0;
  for (const char *Payload : Expect) {
    Frame F;
    size_t Consumed = 0;
    std::string Err;
    ASSERT_EQ(decodeFrame(std::string_view(Buf).substr(Pos), Consumed, F,
                          Err),
              DecodeStatus::Ok);
    EXPECT_EQ(F.Payload, Payload);
    Pos += Consumed;
  }
  EXPECT_EQ(Pos, Buf.size());
}

TEST(Protocol, ResponsePayloadRoundTrips) {
  Response In;
  In.Ok = true;
  In.Digest = 0xDEADBEEFCAFEF00Dull;
  In.Epoch = 42;
  In.Text = "true";
  std::string Payload = encodeResponsePayload(In);
  Response Out;
  ASSERT_TRUE(decodeResponsePayload(Payload, /*Ok=*/true, Out));
  EXPECT_TRUE(Out.Ok);
  EXPECT_EQ(Out.Digest, In.Digest);
  EXPECT_EQ(Out.Epoch, 42u);
  EXPECT_EQ(Out.Text, "true");

  // Any truncation of the 12-byte prefix must fail cleanly.
  for (size_t N = 0; N < 12; ++N)
    EXPECT_FALSE(decodeResponsePayload(
        std::string_view(Payload).substr(0, N), true, Out))
        << "prefix length " << N;
}

TEST(Protocol, LineRequestAcceptsRawAndJson) {
  std::string Q, Err;
  ASSERT_TRUE(parseLineRequest("points-to A.m/0::x", Q, Err));
  EXPECT_EQ(Q, "points-to A.m/0::x");
  ASSERT_TRUE(parseLineRequest(R"({"q": "alias a b"})", Q, Err));
  EXPECT_EQ(Q, "alias a b");
  ASSERT_TRUE(parseLineRequest(R"({"query": "stats"})", Q, Err));
  EXPECT_EQ(Q, "stats");
  // Escapes, including \uXXXX, decode into the query text.
  ASSERT_TRUE(parseLineRequest(R"({"q": "callers \u0041.m\/0"})", Q, Err));
  EXPECT_EQ(Q, "callers A.m/0");
}

TEST(Protocol, GarbageJsonIsAnErrorNotACrash) {
  std::string Q, Err;
  const char *Garbage[] = {
      "{",
      "{}",
      "{\"q\": }",
      "{\"q\": \"unterminated",
      "{\"q\": \"x\", }",
      "{\"other\": \"x\"}",
      "{\"q\": 42}",
      "{\"q\": \"x\"} trailing",
      "{\"q\": {\"nested\": \"x\"}}",
      "{\"q\": [\"x\"]}",
      "{\"q\": \"bad \\u12 escape\"}",
      "{\"q\": \"lone surrogate \\ud800\"}",
      "{\x80\xff\xfe binary junk",
  };
  for (const char *G : Garbage) {
    EXPECT_FALSE(parseLineRequest(G, Q, Err)) << G;
    EXPECT_FALSE(Err.empty()) << G;
  }
}

TEST(Protocol, LineResponseRoundTrips) {
  Response In;
  In.Ok = false;
  In.Digest = 0x0123456789ABCDEFull;
  In.Epoch = 7;
  In.Text = "unknown variable 'x\"y'\nsecond line";
  std::string Line = renderLineResponse(In);
  EXPECT_EQ(Line.find('\n'), std::string::npos)
      << "rendered responses must be single lines";
  Response Out;
  std::string Err;
  ASSERT_TRUE(parseLineResponse(Line, Out, Err)) << Err;
  EXPECT_FALSE(Out.Ok);
  EXPECT_EQ(Out.Digest, In.Digest);
  EXPECT_EQ(Out.Epoch, 7u);
  EXPECT_EQ(Out.Text, In.Text);
}

TEST(Protocol, ParseHostPort) {
  std::string Host, Err;
  uint16_t Port = 0;
  ASSERT_TRUE(parseHostPort("127.0.0.1:8080", Host, Port, Err));
  EXPECT_EQ(Host, "127.0.0.1");
  EXPECT_EQ(Port, 8080);
  ASSERT_TRUE(parseHostPort(":0", Host, Port, Err));
  EXPECT_EQ(Host, "127.0.0.1"); // empty host defaults to loopback
  EXPECT_EQ(Port, 0);
  EXPECT_FALSE(parseHostPort("127.0.0.1", Host, Port, Err));
  EXPECT_FALSE(parseHostPort("127.0.0.1:", Host, Port, Err));
  EXPECT_FALSE(parseHostPort("127.0.0.1:notaport", Host, Port, Err));
  EXPECT_FALSE(parseHostPort("127.0.0.1:65536", Host, Port, Err));
  EXPECT_FALSE(parseHostPort("127.0.0.1:-1", Host, Port, Err));
}

//===----------------------------------------------------------------------===//
// Deterministic fuzz loops (the ASan leg's main course)
//===----------------------------------------------------------------------===//

TEST(ProtocolFuzz, RandomBytesNeverCrashTheFrameDecoder) {
  uint64_t Rng = 0xF00DF00Du;
  auto Next = [&Rng] { return Rng = splitmix64(Rng); };
  for (int Round = 0; Round < 2000; ++Round) {
    std::string Buf;
    size_t Len = Next() % 64;
    for (size_t I = 0; I < Len; ++I)
      Buf.push_back(static_cast<char>(Next() & 0xFF));
    // Drain the buffer the way the server does: decode, consume, repeat.
    size_t Pos = 0, Guard = 0;
    while (Pos < Buf.size() && Guard++ < 128) {
      Frame F;
      size_t Consumed = 0;
      std::string Err;
      DecodeStatus S =
          decodeFrame(std::string_view(Buf).substr(Pos), Consumed, F, Err);
      if (S == DecodeStatus::Ok) {
        ASSERT_GT(Consumed, 0u);
        Pos += Consumed;
      } else {
        break; // NeedMore or Corrupt both stop the drain
      }
    }
  }
}

TEST(ProtocolFuzz, MutatedValidFramesNeverCrash) {
  std::string Seed = frameOf(MsgType::Query, "points-to Main.main/0::x");
  uint64_t Rng = 0xBEEFu;
  auto Next = [&Rng] { return Rng = splitmix64(Rng); };
  for (int Round = 0; Round < 2000; ++Round) {
    std::string Buf = Seed;
    // Flip 1-4 random bytes, sometimes truncate, sometimes append junk.
    unsigned Flips = 1 + Next() % 4;
    for (unsigned I = 0; I < Flips; ++I)
      Buf[Next() % Buf.size()] =
          static_cast<char>(Next() & 0xFF);
    if (Next() % 3 == 0)
      Buf.resize(Next() % (Buf.size() + 1));
    if (Next() % 3 == 0)
      Buf.push_back(static_cast<char>(Next() & 0xFF));
    Frame F;
    size_t Consumed = 0;
    std::string Err;
    DecodeStatus S = decodeFrame(Buf, Consumed, F, Err);
    if (S == DecodeStatus::Ok) {
      EXPECT_LE(Consumed, Buf.size());
    }
  }
}

TEST(ProtocolFuzz, RandomLinesNeverCrashTheJsonParser) {
  uint64_t Rng = 0xCAFEu;
  auto Next = [&Rng] { return Rng = splitmix64(Rng); };
  const char Alphabet[] = "{}[]\":\\,qrue aluestx0129\u00e9\n\t\x01\x80";
  for (int Round = 0; Round < 4000; ++Round) {
    std::string Line;
    size_t Len = Next() % 48;
    for (size_t I = 0; I < Len; ++I)
      Line.push_back(Alphabet[Next() % (sizeof(Alphabet) - 1)]);
    std::string Q, Err;
    parseLineRequest(Line, Q, Err); // either verdict is fine; no crash
    Response R;
    parseLineResponse(Line, R, Err);
  }
}
