//===-- tests/net/HotSwapTest.cpp --------------------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Hot swap under live traffic, the tentpole invariant: N client threads
// hammer a loopback server while M swaps alternate between two published
// snapshots. Every single response must identify one of the two
// snapshots by digest AND carry the answer *that snapshot* gives for the
// query — a digest/answer mismatch is a torn response. Afterward the
// retired-snapshot count must drain to zero. This suite is the TSan
// leg's main course (engine-per-epoch, pin/publish, the swap thread and
// the event loop all overlap here).
//
//===----------------------------------------------------------------------===//

#include "net/SnapshotServer.h"

#include "../TestUtil.h"
#include "net/Client.h"
#include "serve/Snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace mahjong;
using namespace mahjong::net;
using namespace mahjong::test;

namespace {

std::shared_ptr<const serve::SnapshotData> snapTwoObjects() {
  Analyzed A = analyze(R"(
    class A { }
    class B extends A { }
    class Main {
      static method main() {
        x = new A;
        x = new B;
      }
    }
  )");
  return std::make_shared<serve::SnapshotData>(serve::buildSnapshot(*A.R));
}

std::shared_ptr<const serve::SnapshotData> snapOneObject() {
  Analyzed A = analyze(R"(
    class A { }
    class Main {
      static method main() {
        x = new A;
      }
    }
  )");
  return std::make_shared<serve::SnapshotData>(serve::buildSnapshot(*A.R));
}

std::string writeSnapshotFile(const serve::SnapshotData &D,
                              const std::string &Name) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::ofstream Out(Path, std::ios::binary);
  Out << serve::encodeSnapshot(D, serve::SnapshotVersion);
  return Path;
}

} // namespace

TEST(HotSwap, ConcurrentTrafficSeesNoTornResponses) {
  auto DataA = snapTwoObjects();
  auto DataB = snapOneObject();
  const uint64_t DigestA = serve::snapshotDigest(*DataA);
  const uint64_t DigestB = serve::snapshotDigest(*DataB);
  ASSERT_NE(DigestA, DigestB);
  std::string PathA = writeSnapshotFile(*DataA, "hotswap_a.mjsnap");
  std::string PathB = writeSnapshotFile(*DataB, "hotswap_b.mjsnap");

  // The oracle: what each snapshot answers for the probe query. A torn
  // response would pair one snapshot's digest with the other's answer.
  const std::string Probe = "points-to Main.main/0::x";
  std::map<uint64_t, std::string> ExpectByDigest;
  {
    serve::QueryEngine EA(DataA), EB(DataB);
    ExpectByDigest[DigestA] = EA.run(Probe).toString();
    ExpectByDigest[DigestB] = EB.run(Probe).toString();
    ASSERT_NE(ExpectByDigest[DigestA], ExpectByDigest[DigestB]);
  }

  SnapshotRegistry Registry(DataA, PathA);
  SnapshotServer Server(Registry, {});
  std::string StartErr;
  ASSERT_TRUE(Server.start(StartErr)) << StartErr;

  constexpr unsigned NumClients = 4;
  constexpr unsigned NumSwaps = 6;
  std::atomic<bool> StopClients{false};
  std::atomic<uint64_t> Answered{0}, Torn{0}, TransportErrors{0};
  std::atomic<uint32_t> MaxEpochSeen{0};

  std::vector<std::thread> Clients;
  for (unsigned T = 0; T < NumClients; ++T) {
    Clients.emplace_back([&] {
      Client C;
      std::string Err;
      if (!C.connect("127.0.0.1", Server.port(), Err)) {
        TransportErrors.fetch_add(1);
        return;
      }
      uint32_t LastEpoch = 0;
      while (!StopClients.load(std::memory_order_relaxed)) {
        Response R;
        if (!C.query(Probe, R, Err)) {
          TransportErrors.fetch_add(1);
          return;
        }
        Answered.fetch_add(1, std::memory_order_relaxed);
        auto It = ExpectByDigest.find(R.Digest);
        // The two invariants, response by response: a known digest, and
        // the answer that digest's snapshot gives.
        if (It == ExpectByDigest.end() || !R.Ok || R.Text != It->second)
          Torn.fetch_add(1, std::memory_order_relaxed);
        // Per-connection epochs never move backward: each query pins
        // the then-current snapshot, and publishes only go forward.
        if (R.Epoch < LastEpoch)
          Torn.fetch_add(1, std::memory_order_relaxed);
        LastEpoch = R.Epoch;
        uint32_t Seen = MaxEpochSeen.load(std::memory_order_relaxed);
        while (R.Epoch > Seen &&
               !MaxEpochSeen.compare_exchange_weak(
                   Seen, R.Epoch, std::memory_order_relaxed))
          ;
      }
    });
  }

  // The swapper drives M swaps through the same public surface the
  // clients use (its own connection), alternating the two snapshots.
  std::thread Swapper([&] {
    Client C;
    std::string Err;
    ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), Err)) << Err;
    for (unsigned I = 0; I < NumSwaps; ++I) {
      Response R;
      ASSERT_TRUE(C.swap(I % 2 ? PathA : PathB, R, Err)) << Err;
      EXPECT_TRUE(R.Ok) << R.Text;
      EXPECT_EQ(R.Digest, I % 2 ? DigestA : DigestB);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  Swapper.join();
  // One post-swap probe from this thread pins down the final state
  // deterministically (the client threads race the stop flag).
  {
    Client C;
    std::string Err;
    ASSERT_TRUE(C.connect("127.0.0.1", Server.port(), Err)) << Err;
    Response R;
    ASSERT_TRUE(C.query(Probe, R, Err)) << Err;
    EXPECT_EQ(R.Epoch, NumSwaps + 1);
    EXPECT_EQ(R.Digest, (NumSwaps - 1) % 2 ? DigestA : DigestB);
    EXPECT_EQ(R.Text, ExpectByDigest[R.Digest]);
  }
  StopClients.store(true);
  for (std::thread &T : Clients)
    T.join();
  Server.stop();

  EXPECT_EQ(Torn.load(), 0u);
  EXPECT_EQ(TransportErrors.load(), 0u);
  EXPECT_GT(Answered.load(), 0u);
  EXPECT_EQ(Registry.swapCount(), NumSwaps);
  EXPECT_GE(MaxEpochSeen.load(), 2u)
      << "traffic should have seen at least one swap land";

  // Drain: with the server stopped and every client gone, no pin is
  // left alive — all retired epochs must have been reclaimed.
  EXPECT_EQ(Registry.retiredAlive(), 0u);
  // And the survivor is the last snapshot published.
  EXPECT_EQ(Registry.pin()->digest(),
            (NumSwaps - 1) % 2 ? DigestA : DigestB);
}

TEST(HotSwap, RegistryLevelPublishRaceStaysConsistent) {
  // The same invariant without sockets: raw pin()/publish() overlap, so
  // TSan watches the registry's atomics in isolation too.
  auto DataA = snapTwoObjects();
  auto DataB = snapOneObject();
  const uint64_t DigestA = serve::snapshotDigest(*DataA);
  const uint64_t DigestB = serve::snapshotDigest(*DataB);

  SnapshotRegistry Registry(DataA, "<memory>");
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Torn{0};

  std::vector<std::thread> Readers;
  for (unsigned T = 0; T < 4; ++T) {
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_relaxed)) {
        auto Pin = Registry.pin();
        serve::QueryResult R =
            Pin->engine().run("points-to Main.main/0::x");
        size_t Expect = Pin->digest() == DigestA  ? 2u
                        : Pin->digest() == DigestB ? 1u
                                                   : 0u;
        if (!R.Ok || R.Items.size() != Expect)
          Torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (unsigned I = 0; I < 20; ++I) {
    Registry.publish(I % 2 ? DataA : DataB, "<memory>");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Stop.store(true);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_EQ(Torn.load(), 0u);
  EXPECT_EQ(Registry.swapCount(), 20u);
  EXPECT_EQ(Registry.retiredAlive(), 0u);
}
