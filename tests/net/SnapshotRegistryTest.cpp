//===-- tests/net/SnapshotRegistryTest.cpp -----------------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The RCU-style registry: epoch/digest bookkeeping, pin() keeping a
// retired snapshot alive until released, failed swaps leaving the current
// epoch untouched — and the cache-isolation audit: each epoch owns its
// QueryEngine and cache, so an answer cached before a swap can never be
// served for the snapshot published after it.
//
//===----------------------------------------------------------------------===//

#include "net/SnapshotRegistry.h"

#include "../TestUtil.h"
#include "serve/Snapshot.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace mahjong;
using namespace mahjong::net;
using namespace mahjong::test;

namespace {

// Two programs sharing the variable key Main.main/0::x with *different*
// points-to answers, so a cross-epoch cache leak is observable.
std::shared_ptr<const serve::SnapshotData> snapTwoObjects() {
  Analyzed A = analyze(R"(
    class A { }
    class B extends A { }
    class Main {
      static method main() {
        x = new A;
        x = new B;
      }
    }
  )");
  return std::make_shared<serve::SnapshotData>(serve::buildSnapshot(*A.R));
}

std::shared_ptr<const serve::SnapshotData> snapOneObject() {
  Analyzed A = analyze(R"(
    class A { }
    class Main {
      static method main() {
        x = new A;
      }
    }
  )");
  return std::make_shared<serve::SnapshotData>(serve::buildSnapshot(*A.R));
}

} // namespace

TEST(SnapshotRegistry, SeedsEpochOneWithContentDigest) {
  auto Data = snapTwoObjects();
  uint64_t Expect = serve::snapshotDigest(*Data);
  SnapshotRegistry Reg(Data, "<memory>");
  auto Pin = Reg.pin();
  EXPECT_EQ(Pin->epoch(), 1u);
  EXPECT_EQ(Pin->digest(), Expect);
  EXPECT_EQ(Pin->source(), "<memory>");
  EXPECT_EQ(Reg.swapCount(), 0u);
  EXPECT_EQ(Reg.retiredAlive(), 0u);
}

TEST(SnapshotRegistry, PublishBumpsEpochAndRetiresTheOld) {
  SnapshotRegistry Reg(snapTwoObjects(), "a");
  auto Old = Reg.pin();
  EXPECT_EQ(Reg.publish(snapOneObject(), "b"), 2u);
  auto New = Reg.pin();
  EXPECT_EQ(New->epoch(), 2u);
  EXPECT_NE(New->digest(), Old->digest());
  EXPECT_EQ(Reg.swapCount(), 1u);
  // Old is retired but alive: our pin still holds it.
  EXPECT_EQ(Reg.retiredAlive(), 1u);
  Old.reset();
  EXPECT_EQ(Reg.retiredAlive(), 0u);
}

TEST(SnapshotRegistry, DigestIsContentNotIdentity) {
  // Two independently built snapshots of the same program must digest
  // identically — the digest identifies content, not the allocation.
  auto A = snapTwoObjects();
  auto B = snapTwoObjects();
  EXPECT_EQ(serve::snapshotDigest(*A), serve::snapshotDigest(*B));
  EXPECT_NE(serve::snapshotDigest(*A),
            serve::snapshotDigest(*snapOneObject()));
}

TEST(SnapshotRegistry, FailedSwapLeavesCurrentUntouched) {
  SnapshotRegistry Reg(snapTwoObjects(), "a");
  auto Before = Reg.pin();
  std::string Err;
  EXPECT_FALSE(Reg.swapFromFile("/nonexistent/nope.mjsnap", Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(Reg.pin().get(), Before.get());
  EXPECT_EQ(Reg.swapCount(), 0u);

  // Corrupt bytes: decodes must fail validation, not publish garbage.
  std::string Bad = testing::TempDir() + "/corrupt.mjsnap";
  std::ofstream(Bad) << "these are not snapshot bytes";
  EXPECT_FALSE(Reg.swapFromFile(Bad, Err));
  EXPECT_EQ(Reg.pin().get(), Before.get());
}

TEST(SnapshotRegistry, SwapFromFilePublishesTheDecodedSnapshot) {
  auto Data = snapOneObject();
  std::string Path = testing::TempDir() + "/swap_ok.mjsnap";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << serve::encodeSnapshot(*Data, serve::SnapshotVersion);
  }
  SnapshotRegistry Reg(snapTwoObjects(), "a");
  std::string Err;
  ASSERT_TRUE(Reg.swapFromFile(Path, Err)) << Err;
  auto Pin = Reg.pin();
  EXPECT_EQ(Pin->epoch(), 2u);
  EXPECT_EQ(Pin->digest(), serve::snapshotDigest(*Data));
  EXPECT_EQ(Pin->source(), Path);
}

TEST(SnapshotRegistry, CachesAreEpochScopedNeverStaleAcrossSwap) {
  SnapshotRegistry Reg(snapTwoObjects(), "a");

  // Warm epoch 1's cache: x points to two objects here.
  auto E1 = Reg.pin();
  serve::QueryResult R1 = E1->engine().run("points-to Main.main/0::x");
  ASSERT_TRUE(R1.Ok) << R1.Error;
  ASSERT_EQ(R1.Items.size(), 2u);
  // Run it again so the answer is definitely served from cache.
  EXPECT_EQ(E1->engine().run("points-to Main.main/0::x").Items.size(), 2u);
  EXPECT_GE(E1->engine().cacheStats().Insertions, 1u);

  // Publish the one-object snapshot under the *same* query key.
  Reg.publish(snapOneObject(), "b");
  auto E2 = Reg.pin();
  serve::QueryResult R2 = E2->engine().run("points-to Main.main/0::x");
  ASSERT_TRUE(R2.Ok) << R2.Error;
  // The audit: epoch 2 must answer from its own snapshot, not epoch 1's
  // cache entry for the identical key.
  EXPECT_EQ(R2.Items.size(), 1u);
  // And the retired epoch still answers consistently for readers that
  // pinned it before the swap.
  EXPECT_EQ(E1->engine().run("points-to Main.main/0::x").Items.size(), 2u);
}
