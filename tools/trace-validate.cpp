//===-- tools/trace-validate.cpp - Chrome trace checker ----------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
// Validates a Chrome trace_event JSON file as produced by the obs layer
// (`analyze --trace-out`): the top-level object must carry a
// "traceEvents" array; every event needs name/ph/pid/tid/ts (and dur for
// complete "X" events); and within each (pid, tid) lane the X spans must
// nest properly — no partial overlaps. Exit 0 on success with a one-line
// summary, nonzero with a diagnostic otherwise.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

//===----------------------------------------------------------------------===//
// A minimal recursive-descent JSON parser — just enough for trace files.
// Deliberately dependency-free: the validator must not share code with
// the writer it checks.
//===----------------------------------------------------------------------===//

struct Value {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Elems;
  std::map<std::string, Value> Fields;

  const Value *field(const std::string &Name) const {
    auto It = Fields.find(Name);
    return It == Fields.end() ? nullptr : &It->second;
  }
};

class Parser {
public:
  Parser(const std::string &Text, std::string &Err)
      : Text(Text), Err(Err) {}

  bool parse(Value &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing bytes after the top-level value");
    return true;
  }

private:
  bool fail(const std::string &Why) {
    size_t Line = 1;
    for (size_t I = 0; I < Pos && I < Text.size(); ++I)
      Line += Text[I] == '\n';
    Err = "line " + std::to_string(Line) + ": " + Why;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t N = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, N, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += N;
    return true;
  }

  bool parseValue(Value &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = Value::String;
      return parseString(Out.Str);
    case 't':
      Out.K = Value::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = Value::Bool;
      Out.B = false;
      return literal("false");
    case 'n':
      Out.K = Value::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out) {
    Out.K = Value::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected a string key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after key");
      ++Pos;
      skipWs();
      if (!parseValue(Out.Fields[Key]))
        return false;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out) {
    Out.K = Value::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      Out.Elems.emplace_back();
      if (!parseValue(Out.Elems.back()))
        return false;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= Text.size())
          return fail("dangling escape");
        char E = Text[Pos + 1];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out.push_back(E);
          break;
        case 'b':
          Out.push_back('\b');
          break;
        case 'f':
          Out.push_back('\f');
          break;
        case 'n':
          Out.push_back('\n');
          break;
        case 'r':
          Out.push_back('\r');
          break;
        case 't':
          Out.push_back('\t');
          break;
        case 'u': {
          if (Pos + 5 >= Text.size())
            return fail("truncated \\u escape");
          // Validated but appended raw — the validator never compares
          // non-ASCII name bytes.
          for (size_t I = 2; I < 6; ++I)
            if (!std::isxdigit(
                    static_cast<unsigned char>(Text[Pos + I])))
              return fail("malformed \\u escape");
          Out.append(Text, Pos, 6);
          Pos += 4;
          break;
        }
        default:
          return fail("unknown escape");
        }
        Pos += 2;
        continue;
      }
      Out.push_back(C);
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    try {
      Out.Num = std::stod(Text.substr(Start, Pos - Start));
    } catch (...) {
      return fail("malformed number");
    }
    Out.K = Value::Number;
    return true;
  }

  const std::string &Text;
  std::string &Err;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Trace validation
//===----------------------------------------------------------------------===//

struct Span {
  double Ts;
  double Dur;
  std::string Name;
};

int fail(const std::string &Why) {
  std::fprintf(stderr, "trace-validate: %s\n", Why.c_str());
  return 1;
}

bool numberField(const Value &Ev, const char *Name, double &Out,
                 std::string &Why) {
  const Value *F = Ev.field(Name);
  if (!F || F->K != Value::Number) {
    Why = std::string("event missing numeric '") + Name + "'";
    return false;
  }
  Out = F->Num;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::fprintf(stderr, "usage: trace-validate <trace.json>\n");
    return 2;
  }
  std::ifstream In(Argv[1], std::ios::binary);
  if (!In)
    return fail(std::string("cannot open '") + Argv[1] + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  std::string Err;
  Value Root;
  if (!Parser(Text, Err).parse(Root))
    return fail("JSON error: " + Err);
  if (Root.K != Value::Object)
    return fail("top level is not an object");
  const Value *Events = Root.field("traceEvents");
  if (!Events || Events->K != Value::Array)
    return fail("missing 'traceEvents' array");

  // Collect the X spans per (pid, tid) lane; validate required fields.
  std::map<std::pair<double, double>, std::vector<Span>> Lanes;
  size_t NumEvents = 0;
  for (const Value &Ev : Events->Elems) {
    if (Ev.K != Value::Object)
      return fail("traceEvents entry is not an object");
    const Value *Name = Ev.field("name");
    const Value *Ph = Ev.field("ph");
    if (!Name || Name->K != Value::String || Name->Str.empty())
      return fail("event missing a non-empty string 'name'");
    if (!Ph || Ph->K != Value::String)
      return fail("event missing string 'ph'");
    double Pid, Tid, Ts = 0;
    std::string Why;
    if (!numberField(Ev, "pid", Pid, Why) ||
        !numberField(Ev, "tid", Tid, Why))
      return fail(Why);
    ++NumEvents;
    if (Ph->Str == "M")
      continue; // metadata events carry no timestamps
    if (!numberField(Ev, "ts", Ts, Why))
      return fail(Why);
    if (Ts < 0)
      return fail("event '" + Name->Str + "' has negative ts");
    if (Ph->Str != "X")
      return fail("unsupported event phase '" + Ph->Str + "'");
    double Dur;
    if (!numberField(Ev, "dur", Dur, Why))
      return fail(Why);
    if (Dur < 0)
      return fail("event '" + Name->Str + "' has negative dur");
    Lanes[{Pid, Tid}].push_back({Ts, Dur, Name->Str});
  }

  // Laminarity: within a lane, sort by start (ties: longer span first —
  // the would-be parent) and sweep with a stack of open intervals. Each
  // span must fit entirely inside the innermost open one.
  for (auto &[LaneId, Spans] : Lanes) {
    std::stable_sort(Spans.begin(), Spans.end(),
                     [](const Span &A, const Span &B) {
                       if (A.Ts != B.Ts)
                         return A.Ts < B.Ts;
                       return A.Dur > B.Dur;
                     });
    std::vector<const Span *> Open;
    for (const Span &S : Spans) {
      while (!Open.empty() &&
             S.Ts >= Open.back()->Ts + Open.back()->Dur)
        Open.pop_back();
      if (!Open.empty()) {
        const Span &P = *Open.back();
        // A strict fit test would reject same-microsecond boundaries
        // produced by timestamp rounding; allow exact-edge containment.
        if (S.Ts + S.Dur > P.Ts + P.Dur + 1e-9)
          return fail("lane (" + std::to_string(LaneId.first) + ", " +
                      std::to_string(LaneId.second) + "): span '" +
                      S.Name + "' overlaps '" + P.Name +
                      "' without nesting");
      }
      Open.push_back(&S);
    }
  }

  std::printf("ok: %zu events, %zu lanes\n", NumEvents, Lanes.size());
  return 0;
}
