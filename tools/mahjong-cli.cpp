//===-- tools/mahjong-cli.cpp - Command-line driver ---------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The command-line front door to the library, for users who want results
// rather than an API:
//
//   mahjong-cli analyze <file.mj> [--analysis NAME] [--heap KIND]
//                                 [--budget SECONDS] [--facts DIR]
//       Runs a points-to analysis and prints client metrics; optionally
//       dumps Doop-style .facts relations.
//       NAME: ci, 2cs, 2obj, 3obj, 2type, 3type (default 2obj)
//       KIND: site, type, mahjong                (default mahjong)
//
//   mahjong-cli merge-report <file.mj>
//       Prints the MAHJONG equivalence classes of the program's heap.
//
//   mahjong-cli dot-fpg <file.mj> <objIndex>
//   mahjong-cli dot-dfa <file.mj> <objIndex>
//   mahjong-cli dot-callgraph <file.mj>
//       Emit Graphviz on stdout (pipe into `dot -Tsvg`).
//
//===----------------------------------------------------------------------===//

#include "clients/Clients.h"
#include "core/GraphExport.h"
#include "core/Mahjong.h"
#include "ir/Parser.h"
#include "pta/FactsExport.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace mahjong;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mahjong-cli <command> <file.mj> [options]\n"
      "commands:\n"
      "  analyze <file.mj> [--analysis ci|2cs|2obj|3obj|2type|3type]\n"
      "                    [--heap site|type|mahjong] [--budget SECONDS]\n"
      "                    [--facts DIR]\n"
      "  merge-report <file.mj>\n"
      "  dot-fpg <file.mj> <objIndex>\n"
      "  dot-dfa <file.mj> <objIndex>\n"
      "  dot-callgraph <file.mj>\n");
  return 2;
}

std::unique_ptr<ir::Program> load(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return nullptr;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  auto P = ir::parseProgram(Buf.str(), Err);
  if (!P)
    std::fprintf(stderr, "%s:%s: parse error\n", Path, Err.c_str());
  return P;
}

bool parseAnalysis(const std::string &Name, pta::ContextKind &Kind,
                   unsigned &K) {
  if (Name == "ci") {
    Kind = pta::ContextKind::Insensitive;
    K = 0;
    return true;
  }
  if (Name.size() == 3 && Name.substr(1) == "cs") {
    Kind = pta::ContextKind::CallSite;
    K = Name[0] - '0';
    return K >= 1 && K <= 9;
  }
  if (Name.size() == 4 && Name.substr(1) == "obj") {
    Kind = pta::ContextKind::Object;
    K = Name[0] - '0';
    return K >= 1 && K <= 9;
  }
  if (Name.size() == 5 && Name.substr(1) == "type") {
    Kind = pta::ContextKind::Type;
    K = Name[0] - '0';
    return K >= 1 && K <= 9;
  }
  return false;
}

int cmdAnalyze(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Analysis = "2obj", HeapKind = "mahjong", FactsDir;
  double Budget = 0;
  for (int I = 3; I < Argc; ++I) {
    auto Want = [&](const char *Flag) {
      return std::strcmp(Argv[I], Flag) == 0 && I + 1 < Argc;
    };
    if (Want("--analysis"))
      Analysis = Argv[++I];
    else if (Want("--heap"))
      HeapKind = Argv[++I];
    else if (Want("--budget"))
      Budget = std::atof(Argv[++I]);
    else if (Want("--facts"))
      FactsDir = Argv[++I];
    else {
      std::fprintf(stderr, "unknown option '%s'\n", Argv[I]);
      return usage();
    }
  }
  pta::ContextKind Kind;
  unsigned K;
  if (!parseAnalysis(Analysis, Kind, K)) {
    std::fprintf(stderr, "unknown analysis '%s'\n", Analysis.c_str());
    return 2;
  }
  auto P = load(Argv[2]);
  if (!P)
    return 1;
  ir::ClassHierarchy CH(*P);

  std::unique_ptr<pta::AllocTypeAbstraction> TypeHeap;
  core::MahjongResult MR;
  pta::AnalysisOptions Opts;
  Opts.Kind = Kind;
  Opts.K = K;
  Opts.TimeBudgetSeconds = Budget;
  if (HeapKind == "mahjong") {
    MR = core::buildMahjongHeap(*P, CH);
    Opts.Heap = MR.Heap.get();
    std::printf("mahjong heap: %u sites -> %u objects (pre %.2fs)\n",
                MR.numAllocSiteObjects(), MR.numMahjongObjects(),
                MR.PreSeconds + MR.FPGSeconds + MR.MahjongSeconds);
  } else if (HeapKind == "type") {
    TypeHeap = std::make_unique<pta::AllocTypeAbstraction>(*P);
    Opts.Heap = TypeHeap.get();
  } else if (HeapKind != "site") {
    std::fprintf(stderr, "unknown heap '%s'\n", HeapKind.c_str());
    return 2;
  }

  auto R = pta::runPointerAnalysis(*P, CH, Opts);
  if (R->Stats.TimedOut) {
    std::printf("%s: exceeded the %.0fs budget (unscalable)\n",
                Analysis.c_str(), Budget);
    return 3;
  }
  clients::ClientResults CR = clients::evaluateClients(*R);
  std::printf("%s (%s heap): %.2fs\n", Analysis.c_str(), HeapKind.c_str(),
              R->Stats.Seconds);
  std::printf("  reachable methods:  %llu\n",
              (unsigned long long)CR.ReachableMethods);
  std::printf("  call graph edges:   %llu\n",
              (unsigned long long)CR.CallGraphEdges);
  std::printf("  poly call sites:    %llu (mono: %llu)\n",
              (unsigned long long)CR.PolyCallSites,
              (unsigned long long)CR.MonoCallSites);
  std::printf("  may-fail casts:     %llu / %llu\n",
              (unsigned long long)CR.MayFailCasts,
              (unsigned long long)CR.TotalCasts);
  if (!FactsDir.empty()) {
    if (!pta::writeAllFacts(*R, FactsDir)) {
      std::fprintf(stderr, "error: cannot write facts into '%s'\n",
                   FactsDir.c_str());
      return 1;
    }
    std::printf("facts written to %s/*.facts\n", FactsDir.c_str());
  }
  return 0;
}

int cmdMergeReport(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  auto P = load(Argv[2]);
  if (!P)
    return 1;
  ir::ClassHierarchy CH(*P);
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  auto Classes = core::equivalenceClasses(*MR.FPG, MR.Modeling);
  std::printf("%u sites -> %zu classes\n", MR.numAllocSiteObjects(),
              Classes.size());
  for (const auto &[Repr, Members] : Classes) {
    if (Members.size() == 1)
      continue;
    std::printf("  class of %s (%zu members):", P->describeObj(Repr).c_str(),
                Members.size());
    for (size_t I = 0; I < Members.size() && I < 8; ++I)
      std::printf(" o%u", Members[I].idx());
    if (Members.size() > 8)
      std::printf(" ...");
    std::printf("\n");
  }
  return 0;
}

int cmdDot(int Argc, char **Argv, const char *Which) {
  bool NeedsObj = std::strcmp(Which, "callgraph") != 0;
  if (Argc < (NeedsObj ? 4 : 3))
    return usage();
  auto P = load(Argv[2]);
  if (!P)
    return 1;
  ir::ClassHierarchy CH(*P);
  pta::AnalysisOptions PreOpts;
  auto Pre = pta::runPointerAnalysis(*P, CH, PreOpts);
  if (!NeedsObj) {
    std::fputs(core::callGraphToDot(*Pre).c_str(), stdout);
    return 0;
  }
  unsigned Idx = std::atoi(Argv[3]);
  if (Idx >= P->numObjs()) {
    std::fprintf(stderr, "error: object index %u out of range (0..%u)\n",
                 Idx, P->numObjs() - 1);
    return 2;
  }
  core::FieldPointsToGraph G(*Pre);
  if (std::strcmp(Which, "fpg") == 0) {
    std::fputs(core::fpgToDot(G, ObjId(Idx)).c_str(), stdout);
  } else {
    core::DFACache Cache(G);
    std::fputs(core::dfaToDot(G, Cache, ObjId(Idx)).c_str(), stdout);
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "analyze") == 0)
    return cmdAnalyze(Argc, Argv);
  if (std::strcmp(Argv[1], "merge-report") == 0)
    return cmdMergeReport(Argc, Argv);
  if (std::strcmp(Argv[1], "dot-fpg") == 0)
    return cmdDot(Argc, Argv, "fpg");
  if (std::strcmp(Argv[1], "dot-dfa") == 0)
    return cmdDot(Argc, Argv, "dfa");
  if (std::strcmp(Argv[1], "dot-callgraph") == 0)
    return cmdDot(Argc, Argv, "callgraph");
  return usage();
}
