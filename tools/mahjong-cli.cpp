//===-- tools/mahjong-cli.cpp - Command-line driver ---------------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The command-line front door to the library. All command logic lives in
// cli::runCli (src/cli/Driver.cpp) so the test suite can exercise every
// command and exit code in-process; this file only binds it to the real
// stdio streams.
//
//===----------------------------------------------------------------------===//

#include "cli/Driver.h"

#include <iostream>

int main(int Argc, char **Argv) {
  return mahjong::cli::runCli(Argc, Argv, std::cout, std::cerr);
}
