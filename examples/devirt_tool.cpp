//===-- examples/devirt_tool.cpp - A devirtualization report tool -------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// A small command-line tool built on the public API: parses a .mj program
// (a file path argument, or an embedded demo program when run without
// arguments), runs a MAHJONG-based 2-object-sensitive points-to analysis,
// and reports every virtual call site with its resolved targets —
// flagging the devirtualizable (mono-call) sites and the casts that may
// fail. This is the "type-dependent client as a user-facing tool" use
// case the paper motivates.
//
// Usage:  devirt_tool [program.mj]
//
//===----------------------------------------------------------------------===//

#include "clients/Clients.h"
#include "core/Mahjong.h"
#include "ir/Parser.h"
#include "ir/PrettyPrinter.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace mahjong;

// A small plugin registry: handlers are looked up through an interface
// map and invoked on events. handler0/handler1 are hot monomorphic
// sites; the dispatcher loop is genuinely polymorphic.
static const char *DemoProgram = R"(
  class Event { field payload: Object; }
  class Handler {
    abstract method handle(e);
  }
  class LogHandler extends Handler {
    method handle(e) { p = e.Event::payload; return p; }
  }
  class NetHandler extends Handler {
    method handle(e) { return e; }
  }
  class Registry {
    field slot: Handler;
    method put(h) { this.slot = h; return this; }
    method get() { r = this.slot; return r; }
  }
  class Main {
    static method main() {
      logReg = new Registry;
      netReg = new Registry;
      lh = new LogHandler;
      nh = new NetHandler;
      logReg.put(lh);
      netReg.put(nh);
      e = new Event;
      h0 = logReg.get();
      h0.handle(e);            // mono in truth: LogHandler.handle
      h1 = netReg.get();
      h1.handle(e);            // mono in truth: NetHandler.handle
      any = h0;
      any = h1;
      any.handle(e);           // genuinely polymorphic
      c = (LogHandler) h0;     // safe
      d = (NetHandler) h0;     // fails
    }
  }
)";

int main(int Argc, char **Argv) {
  std::string Source = DemoProgram;
  std::string Origin = "<embedded demo>";
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Argv[1]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
    Origin = Argv[1];
  }

  std::string Err;
  auto P = ir::parseProgram(Source, Err);
  if (!P) {
    std::fprintf(stderr, "%s: parse error: %s\n", Origin.c_str(),
                 Err.c_str());
    return 1;
  }
  ir::ClassHierarchy CH(*P);
  core::MahjongAnalysis MA =
      core::runMahjongAnalysis(*P, CH, pta::ContextKind::Object, 2);
  const pta::PTAResult &R = *MA.Result;

  std::printf("== devirtualization report for %s (M-2obj) ==\n\n",
              Origin.c_str());
  unsigned Mono = 0, Poly = 0;
  for (uint32_t I = 0; I < P->numCallSites(); ++I) {
    CallSiteId Site = CallSiteId(I);
    const ir::CallSiteInfo &CS = P->callSite(Site);
    if (CS.Kind != ir::CallKind::Virtual)
      continue;
    const std::vector<MethodId> &Targets = R.CG.calleesOf(Site);
    if (Targets.empty())
      continue; // unreachable site
    std::printf("  %s.%s  in %s\n", P->var(CS.Base).Name.c_str(),
                CS.Sig.c_str(), P->method(CS.Enclosing).Signature.c_str());
    for (MethodId T : Targets)
      std::printf("      -> %s\n", P->method(T).Signature.c_str());
    if (Targets.size() == 1) {
      std::printf("      DEVIRTUALIZABLE\n");
      ++Mono;
    } else {
      ++Poly;
    }
  }
  std::printf("\n== may-fail casts ==\n\n");
  unsigned MayFail = 0;
  for (uint32_t I = 0; I < P->numCastSites(); ++I) {
    const ir::CastSiteInfo &CS = P->castSite(I);
    if (!R.ReachableMethod[CS.Enclosing.idx()])
      continue;
    bool Fails = clients::castMayFail(R, I);
    MayFail += Fails;
    std::printf("  %s = (%s) %s  in %s: %s\n", P->var(CS.To).Name.c_str(),
                P->type(CS.Target).Name.c_str(),
                P->var(CS.From).Name.c_str(),
                P->method(CS.Enclosing).Signature.c_str(),
                Fails ? "MAY FAIL" : "safe");
  }
  std::printf("\nsummary: %u mono-call sites, %u poly-call sites, %u "
              "may-fail casts\n",
              Mono, Poly, MayFail);
  return 0;
}
