//===-- examples/quickstart.cpp - Figure 1 end to end -----------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 1 program, built through the textual frontend, then
// analyzed three ways: with the allocation-site abstraction, with the
// naive allocation-type abstraction, and with MAHJONG. Demonstrates that
// MAHJONG merges the two type-consistent A-objects (o2, o3) but not o1,
// and that doing so preserves devirtualization and cast safety while the
// allocation-type abstraction destroys both.
//
//===----------------------------------------------------------------------===//

#include "clients/Clients.h"
#include "core/Mahjong.h"
#include "ir/Parser.h"

#include <cstdio>

using namespace mahjong;

// Figure 1 of the paper, in the .mj language. Line numbers in comments
// refer to the paper's listing.
static const char *Figure1 = R"(
class A {
  field f: A;
  method foo() { return this; }
}
class B extends A {
  method foo() { return this; }
}
class C extends A {
  method foo() { return this; }
}
class Main {
  static method main() {
    x = new A;        // o1
    y = new A;        // o2
    z = new A;        // o3
    xf = new B;       // o4
    x.f = xf;
    yf = new C;       // o5
    y.f = yf;
    zf = new C;       // o6
    z.f = zf;
    a = z.f;          // line 7
    a.foo();          // line 8: mono-call in truth
    c = (C) a;        // line 9: safe in truth
  }
}
)";

int main() {
  std::string Err;
  auto P = ir::parseProgram(Figure1, Err);
  if (!P) {
    std::fprintf(stderr, "parse error: %s\n", Err.c_str());
    return 1;
  }
  ir::ClassHierarchy CH(*P);

  std::printf("== MAHJONG quickstart: the paper's Figure 1 ==\n\n");

  // Step 1: the MAHJONG pipeline (pre-analysis -> FPG -> merging).
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  std::printf("allocation sites (reachable): %u\n",
              MR.numAllocSiteObjects());
  std::printf("MAHJONG abstract objects:     %u\n", MR.numMahjongObjects());
  auto Classes = core::equivalenceClasses(*MR.FPG, MR.Modeling);
  for (const auto &[Repr, Members] : Classes) {
    std::printf("  class of %-22s:", P->describeObj(Repr).c_str());
    for (ObjId O : Members)
      std::printf(" %s", P->describeObj(O).c_str());
    std::printf("\n");
  }

  // Step 2: three analyses over the same program.
  pta::AllocTypeAbstraction TypeHeap(*P);
  struct Run {
    const char *Label;
    const pta::HeapAbstraction *Heap;
  } Runs[] = {
      {"alloc-site (baseline)", nullptr},
      {"alloc-type (naive)", &TypeHeap},
      {"mahjong", MR.Heap.get()},
  };
  std::printf("\n%-22s %10s %10s %12s\n", "analysis", "poly-calls",
              "mono-calls", "mayfail-casts");
  for (const Run &Cfg : Runs) {
    pta::AnalysisOptions Opts;
    Opts.Kind = pta::ContextKind::Insensitive;
    Opts.Heap = Cfg.Heap;
    auto R = pta::runPointerAnalysis(*P, CH, Opts);
    clients::ClientResults CR = clients::evaluateClients(*R);
    std::printf("%-22s %10llu %10llu %8llu / %llu\n", Cfg.Label,
                (unsigned long long)CR.PolyCallSites,
                (unsigned long long)CR.MonoCallSites,
                (unsigned long long)CR.MayFailCasts,
                (unsigned long long)CR.TotalCasts);
  }
  std::printf("\nExpected: MAHJONG merges o2/o3 (both store a C) but not o1"
              "\n(it stores a B); a.foo() stays a mono-call and (C) a stays"
              "\nsafe, while alloc-type merging makes the call polymorphic"
              "\nand the cast may-fail.\n");
  return 0;
}
