//===-- examples/compare_analyses.cpp - Analysis comparison -------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Runs a grid of analyses over one benchmark workload — context
// insensitive, 2cs/2obj/2type, each with the allocation-site, the
// allocation-type, and the MAHJONG heap — and prints time and client
// precision side by side. A miniature, single-program version of the
// paper's Table 2 that finishes in seconds.
//
// Usage:  compare_analyses [profile] [scale]
//
//===----------------------------------------------------------------------===//

#include "clients/Clients.h"
#include "core/Mahjong.h"
#include "workload/BenchmarkPrograms.h"

#include <cstdio>
#include <cstdlib>

using namespace mahjong;

int main(int Argc, char **Argv) {
  std::string Profile = Argc > 1 ? Argv[1] : "luindex";
  double Scale = Argc > 2 ? std::atof(Argv[2]) : 1.0;
  std::printf("== analysis comparison on %s (scale %.2f) ==\n\n",
              Profile.c_str(), Scale);
  auto P = workload::buildBenchmarkProgram(Profile, Scale);
  ir::ClassHierarchy CH(*P);
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  pta::AllocTypeAbstraction TypeHeap(*P);
  std::printf("program: %u types, %u methods, %u allocation sites\n",
              P->numTypes(), P->numMethods(), P->numObjs());
  std::printf("mahjong heap: %u -> %u objects (pre %.2fs + %.2fs)\n\n",
              MR.numAllocSiteObjects(), MR.numMahjongObjects(),
              MR.PreSeconds, MR.FPGSeconds + MR.MahjongSeconds);

  struct Ctx {
    const char *Label;
    pta::ContextKind Kind;
    unsigned K;
  } Ctxs[] = {
      {"ci", pta::ContextKind::Insensitive, 0},
      {"2cs", pta::ContextKind::CallSite, 2},
      {"2obj", pta::ContextKind::Object, 2},
      {"2type", pta::ContextKind::Type, 2},
  };
  struct Heap {
    const char *Prefix;
    const pta::HeapAbstraction *H;
  } Heaps[] = {
      {"", nullptr},
      {"T-", &TypeHeap},
      {"M-", MR.Heap.get()},
  };

  std::printf("%-9s %9s %10s %8s %9s %9s\n", "analysis", "time(s)",
              "cg-edges", "poly", "mayfail", "csobjs");
  for (const Ctx &C : Ctxs) {
    for (const Heap &H : Heaps) {
      pta::AnalysisOptions Opts;
      Opts.Kind = C.Kind;
      Opts.K = C.K;
      Opts.Heap = H.H;
      auto R = pta::runPointerAnalysis(*P, CH, Opts);
      clients::ClientResults CR = clients::evaluateClients(*R);
      std::printf("%s%-8s %9.3f %10llu %8llu %9llu %9llu\n", H.Prefix,
                  C.Label, R->Stats.Seconds,
                  (unsigned long long)CR.CallGraphEdges,
                  (unsigned long long)CR.PolyCallSites,
                  (unsigned long long)CR.MayFailCasts,
                  (unsigned long long)R->Stats.NumCSObjs);
    }
    std::printf("\n");
  }
  std::printf("How to read this: within each block, the M- row should "
              "match the\nbaseline row's precision columns while the T- "
              "row shows extra poly\ncalls and may-fail casts; M- and T- "
              "shrink cs-objects and time.\n");
  return 0;
}
