//===-- examples/heap_inspector.cpp - Inspect MAHJONG's heap ------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Runs the full MAHJONG pipeline on one of the named benchmark workloads
// (default: a scaled-down checkstyle; pass another profile name as the
// first argument, and an optional scale factor as the second) and prints
// what the heap modeler found: the timing breakdown, the biggest
// equivalence classes with the types their members store, and the class
// size distribution — the data behind the paper's Table 1 and Figure 9.
//
// Usage:  heap_inspector [profile] [scale]
//         heap_inspector pmd 0.5
//
//===----------------------------------------------------------------------===//

#include "core/Mahjong.h"
#include "workload/BenchmarkPrograms.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

using namespace mahjong;

int main(int Argc, char **Argv) {
  std::string Profile = Argc > 1 ? Argv[1] : "checkstyle";
  double Scale = Argc > 2 ? std::atof(Argv[2]) : 0.25;
  const auto &Names = workload::benchmarkNames();
  if (std::find(Names.begin(), Names.end(), Profile) == Names.end()) {
    std::fprintf(stderr, "unknown profile '%s'; known profiles:\n",
                 Profile.c_str());
    for (const std::string &N : Names)
      std::fprintf(stderr, "  %s\n", N.c_str());
    return 1;
  }

  std::printf("== MAHJONG heap inspector: %s (scale %.2f) ==\n\n",
              Profile.c_str(), Scale);
  auto P = workload::buildBenchmarkProgram(Profile, Scale);
  ir::ClassHierarchy CH(*P);
  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);

  std::printf("pipeline: ci=%.2fs  fpg=%.2fs  mahjong=%.2fs\n",
              MR.PreSeconds, MR.FPGSeconds, MR.MahjongSeconds);
  std::printf("heap: %u allocation sites -> %u abstract objects "
              "(%.1f%% reduction)\n\n",
              MR.numAllocSiteObjects(), MR.numMahjongObjects(),
              100.0 * (1.0 - static_cast<double>(MR.numMahjongObjects()) /
                                 MR.numAllocSiteObjects()));

  auto Classes = core::equivalenceClasses(*MR.FPG, MR.Modeling);
  std::printf("largest equivalence classes:\n");
  std::printf("  %-12s %6s  %s\n", "type", "size", "stored types");
  for (size_t I = 0; I < Classes.size() && I < 10; ++I) {
    const auto &[Repr, Members] = Classes[I];
    std::set<std::string> Stored;
    for (const auto &[F, Targets] : MR.FPG->fieldsOf(Repr))
      for (ObjId T : Targets)
        Stored.insert(P->isNullObj(T) ? "null"
                                      : P->type(P->obj(T).Type).Name);
    std::string Remark;
    for (const std::string &S : Stored)
      Remark += (Remark.empty() ? "" : ", ") + S;
    std::printf("  %-12s %6zu  %s\n",
                P->type(P->obj(Repr).Type).Name.c_str(), Members.size(),
                Remark.empty() ? "(no fields)" : Remark.c_str());
  }

  std::map<size_t, size_t> Histogram;
  for (const auto &[Repr, Members] : Classes)
    ++Histogram[Members.size()];
  std::printf("\nclass-size distribution (size: count):");
  int Shown = 0;
  for (const auto &[Size, Num] : Histogram) {
    if (Shown++ % 6 == 0)
      std::printf("\n  ");
    std::printf("%zu:%zu  ", Size, Num);
  }
  std::printf("\n");
  return 0;
}
