//===-- bench/bench_motivation.cpp - Section 2 motivation --------------------===//
//
// Part of mahjong-cpp. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's motivating comparison (§2.1): the pmd workload
// analyzed by 3obj with three heap abstractions —
//
//   3obj    allocation-site abstraction (precise, slow)
//   T-3obj  allocation-type abstraction (fast, imprecise)
//   M-3obj  the MAHJONG heap abstraction (fast AND precise)
//
// The paper reports 14469.3s / 50.3s / 127.7s and 44004 / 50666 / 44016
// call-graph edges on the real pmd; we reproduce the *shape*: T- fastest
// but imprecise, M- nearly as fast with baseline-equal precision.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace mahjong;
using namespace mahjong::bench;

int main() {
  // A generous budget so the baseline itself completes here (Table 2
  // enforces the tighter "scalability" budget instead).
  const double Budget = 60.0;
  std::printf("== Motivation (paper section 2.1): pmd under 3obj ==\n\n");
  auto P = workload::buildBenchmarkProgram("pmd");
  ir::ClassHierarchy CH(*P);

  core::MahjongResult MR = core::buildMahjongHeap(*P, CH);
  pta::AllocTypeAbstraction TypeHeap(*P);

  struct Row {
    const char *Label;
    const pta::HeapAbstraction *Heap;
  } Rows[] = {
      {"3obj (alloc-site)", nullptr},
      {"T-3obj (alloc-type)", &TypeHeap},
      {"M-3obj (mahjong)", MR.Heap.get()},
  };

  std::printf("%-22s %10s %14s %12s %14s\n", "analysis", "time(s)",
              "#cg-edges", "#poly-calls", "#mayfail-casts");
  double BaseTime = 0;
  for (const Row &R : Rows) {
    RunResult RR = runOne(*P, CH, pta::ContextKind::Object, 3, R.Heap,
                          Budget);
    if (R.Heap == nullptr)
      BaseTime = RR.Seconds;
    std::printf("%-22s %10s %14s %12s %14s\n", R.Label,
                fmtTime(RR).c_str(),
                fmtCount(RR, RR.Clients.CallGraphEdges).c_str(),
                fmtCount(RR, RR.Clients.PolyCallSites).c_str(),
                fmtCount(RR, RR.Clients.MayFailCasts).c_str());
    if (!RR.TimedOut && R.Heap != nullptr && BaseTime > 0)
      std::printf("%-22s %9.1fx speedup over the baseline\n", "",
                  BaseTime / RR.Seconds);
  }
  std::printf("\npre-analysis (shared by T-/M-): ci=%.2fs fpg=%.2fs "
              "mahjong=%.2fs\n",
              MR.PreSeconds, MR.FPGSeconds, MR.MahjongSeconds);
  std::printf("\nExpected shape: T-3obj fastest but with extra call-graph\n"
              "edges, poly calls and may-fail casts; M-3obj within a small\n"
              "factor of T-3obj while matching 3obj's client precision.\n");
  return 0;
}
